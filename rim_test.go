package rim_test

import (
	"math/rand"
	"testing"

	rim "repro"
)

// TestQuickstartFlow exercises the documented public-API flow end to end.
func TestQuickstartFlow(t *testing.T) {
	pts := rim.ExpChain(32, 1)
	topo := rim.AExp(pts)
	iv := rim.Interference(pts, topo)
	if iv.Max() <= 0 {
		t.Fatal("interference should be positive on a connected chain")
	}
	if iv.Max() > rim.AExpBound(32) {
		t.Fatalf("AExp exceeded its bound: %d > %d", iv.Max(), rim.AExpBound(32))
	}
	lin := rim.Interference(pts, rim.Linear(pts))
	if lin.Max() != 30 {
		t.Fatalf("linear chain I = %d, want n-2", lin.Max())
	}
}

func TestZooThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := rim.UniformSquare(rng, 60, 2)
	base := rim.UnitDiskGraph(pts)
	if base.N() != 60 {
		t.Fatal("UDG node count wrong")
	}
	for _, alg := range rim.Algorithms() {
		g := alg.Build(pts)
		iv := rim.Interference(pts, g)
		if len(iv) != 60 {
			t.Fatalf("%s: vector length wrong", alg.Name)
		}
		if _, max := rim.SenderInterference(pts, g); max < 0 {
			t.Fatalf("%s: sender interference negative", alg.Name)
		}
	}
	if rim.MaxDegree(pts) != base.MaxDegree() {
		t.Error("MaxDegree mismatch")
	}
}

func TestOptimizersThroughFacade(t *testing.T) {
	pts := rim.ExpChain(8, 1)
	res := rim.OptimalExact(pts)
	if !res.Exact || res.Interference < 2 {
		t.Fatalf("exact result suspicious: %+v", res.Interference)
	}
	rng := rand.New(rand.NewSource(2))
	ann := rim.OptimalAnneal(pts, rng, 500)
	if ann.Interference < res.Interference {
		t.Fatalf("anneal %d beat proven optimum %d", ann.Interference, res.Interference)
	}
}

func TestSimulatorThroughFacade(t *testing.T) {
	pts := rim.ExpChain(12, 1)
	nw := rim.NewNetwork(pts, rim.AExp(pts))
	cfg := rim.DefaultSimConfig()
	cfg.Slots = 5000
	s := rim.NewSimulator(nw, cfg)
	s.Schedule(0, func() { s.Inject(11, 0) })
	m := s.Run()
	if m.Delivered != 1 {
		t.Fatalf("delivered %d, want 1", m.Delivered)
	}
}

func TestHighwayHelpersThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := rim.HighwayUniform(rng, 100, 10)
	gamma, at := rim.Gamma(pts)
	if gamma < 1 || at < 0 {
		t.Fatalf("gamma = %d at %d", gamma, at)
	}
	for _, build := range []func([]rim.Point) *rim.Graph{rim.Linear, rim.AGen, rim.AApx} {
		g := build(pts)
		if g.N() != 100 {
			t.Fatal("node count wrong")
		}
	}
	impact := rim.MeasureAddition(pts, rim.MST)
	if impact.ReceiverAfter < 0 {
		t.Fatal("impact wrong")
	}
}
