package rim_test

// Facade coverage for the extended API surface: every re-export must be
// callable end-to-end through the public package.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	rim "repro"
)

func TestFacadeZooConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := rim.UniformSquare(rng, 50, 2)
	builders := map[string]func([]rim.Point) *rim.Graph{
		"NNF":     rim.NNF,
		"MST":     rim.MST,
		"GG":      rim.GG,
		"RNG":     rim.RNG,
		"XTC":     rim.XTC,
		"LMST":    rim.LMST,
		"LIFE":    rim.LIFE,
		"GreedyI": rim.GreedyMinI,
	}
	for name, b := range builders {
		g := b(pts)
		if g.N() != 50 {
			t.Errorf("%s: wrong node count", name)
		}
	}
	if g := rim.Yao(pts, 6); g.N() != 50 {
		t.Error("Yao wrong")
	}
	if g := rim.LISE(pts, 2); g.N() != 50 {
		t.Error("LISE wrong")
	}
	if g := rim.LLISE(pts, 2); g.N() != 50 {
		t.Error("LLISE wrong")
	}
	if g := rim.AGen2D(pts); g.N() != 50 {
		t.Error("AGen2D wrong")
	}
	if g, pick := rim.Best2D(pts); g.N() != 50 || pick == "" {
		t.Error("Best2D wrong")
	}
}

func TestFacadeProfile(t *testing.T) {
	pts := rim.ExpChain(16, 1)
	p := rim.ProfileOf(pts, rim.AExp(pts))
	if p.N != 16 || p.RecvMax <= 0 || !p.PreservesConnectivity {
		t.Errorf("profile = %+v", p)
	}
}

func TestFacadeTDMA(t *testing.T) {
	pts := rim.ExpChain(12, 1)
	nw := rim.NewNetwork(pts, rim.AExp(pts))
	sch := rim.TDMASchedule(nw)
	if sch.Frame <= 0 {
		t.Fatal("empty frame")
	}
	if _, _, ok := sch.Verify(nw); !ok {
		t.Fatal("schedule conflicts")
	}
	cfg := rim.DefaultSimConfig()
	cfg.Slots = int64(sch.Frame) * 200
	s, frame := rim.RunTDMA(nw, cfg)
	if frame != sch.Frame {
		t.Fatalf("frame mismatch %d vs %d", frame, sch.Frame)
	}
	s.Schedule(0, func() { s.Inject(11, 0) })
	m := s.Run()
	if m.Delivered != 1 || m.Collisions != 0 {
		t.Fatalf("TDMA delivery failed: %+v", *m)
	}
}

func TestFacadeEncodeRoundTrip(t *testing.T) {
	pts := rim.ExpChain(10, 1)
	g := rim.Linear(pts)
	var bi, bt bytes.Buffer
	if err := rim.WriteInstanceCSV(&bi, pts); err != nil {
		t.Fatal(err)
	}
	if err := rim.WriteTopologyCSV(&bt, g); err != nil {
		t.Fatal(err)
	}
	pts2, err := rim.ReadInstanceCSV(&bi)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := rim.ReadTopologyCSV(&bt, len(pts2))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts2) != 10 || g2.M() != g.M() {
		t.Fatal("round trip lost data")
	}
}

func TestFacadeSVG(t *testing.T) {
	pts := rim.ExpChain(8, 1)
	var sb strings.Builder
	if err := rim.WriteSVG(&sb, pts, rim.AExp(pts), true, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Fatal("no SVG emitted")
	}
}

func TestFacadeDistributedProtocols(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := rim.UniformSquare(rng, 40, 2)
	rt := rim.NewDistRuntime(pts, rim.DistXTC)
	got := rt.Run(10)
	want := rim.XTC(pts)
	if got.M() != want.M() {
		t.Fatalf("distributed XTC %d edges, centralized %d", got.M(), want.M())
	}
	if rt2 := rim.NewDistRuntime(pts, rim.DistNNF); rt2.Run(10).M() != rim.NNF(pts).M() {
		t.Fatal("distributed NNF mismatch")
	}
	if rt3 := rim.NewDistRuntime(pts, rim.DistLMST); rt3.Run(10).M() != rim.LMST(pts).M() {
		t.Fatal("distributed LMST mismatch")
	}
}

func TestFacadeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	if len(rim.ExpChainUnit(20)) != 20 {
		t.Error("ExpChainUnit wrong")
	}
	if len(rim.DoubleExpChain(5)) != 15 {
		t.Error("DoubleExpChain wrong")
	}
	if len(rim.Figure1Gadget(rng, 20, 0.2)) != 20 {
		t.Error("Figure1Gadget wrong")
	}
	if len(rim.HighwayUniform(rng, 30, 5)) != 30 {
		t.Error("HighwayUniform wrong")
	}
	if rim.AExpBound(16) != 5 || rim.ExpChainLowerBound(16) != 4 {
		t.Error("bounds wrong")
	}
}

func TestFacadeRemainingSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := rim.UniformSquare(rng, 40, 2)
	if r := rim.Radii(pts, rim.MST(pts)); len(r) != 40 {
		t.Error("Radii wrong")
	}
	if g := rim.CBTC(pts, 2*3.14159/3); g.N() != 40 {
		t.Error("CBTC wrong")
	}
	if g := rim.KNeigh(pts, 9); g.N() != 40 {
		t.Error("KNeigh wrong")
	}
	if g := rim.RCLISE(pts, 2); g.N() != 40 {
		t.Error("RCLISE wrong")
	}
	m := rim.NewMaintainer(pts, 0) // 0 = default factor
	m.Insert(rim.Pt(1, 1))
	if m.Events() != 1 {
		t.Error("maintainer wrong")
	}
	// Gathering trees through the facade.
	chain := rim.ExpChain(16, 1)
	for name, build := range map[string]func([]rim.Point, int) rim.GatherTree{
		"spt": rim.GatherSPT, "mst": rim.GatherMST, "greedy": rim.GatherGreedy,
	} {
		tr := build(chain, 0)
		if err := tr.Validate(chain); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
