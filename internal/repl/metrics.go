package repl

import "repro/internal/obs"

// Replication metric set, rim_repl_* in a shared obs.Registry.
// Registration is idempotent, so a leader and several followers in one
// process (tests, single-binary clusters) share one family set.
type metrics struct {
	subs       *obs.Counter
	framesOut  *obs.Counter
	recordsOut *obs.Counter
	acks       *obs.Counter
	framesIn   *obs.Counter
	recordsIn  *obs.Counter
	reconnects *obs.Counter
	gaps       *obs.Counter
	resyncs    *obs.Counter
	pruned     *obs.Counter
	promotions *obs.Counter
	lag        *obs.Histogram
	lagRecords *obs.Gauge
}

func registerMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		subs: reg.Counter("rim_repl_subscriptions_total",
			"Follower subscriptions accepted by the leader feed."),
		framesOut: reg.Counter("rim_repl_frames_out_total",
			"MsgReplRecords frames streamed to followers."),
		recordsOut: reg.Counter("rim_repl_records_out_total",
			"WAL records streamed to followers."),
		acks: reg.Counter("rim_repl_acks_total",
			"MsgReplAck frames received from followers."),
		framesIn: reg.Counter("rim_repl_frames_in_total",
			"MsgReplRecords frames applied by this follower."),
		recordsIn: reg.Counter("rim_repl_records_in_total",
			"WAL records delivered to this follower (redeliveries included)."),
		reconnects: reg.Counter("rim_repl_reconnects_total",
			"Follower feed reconnects (any connection death)."),
		gaps: reg.Counter("rim_repl_gaps_total",
			"Seq gaps detected in the replicated stream (each forces a resync)."),
		resyncs: reg.Counter("rim_repl_resyncs_total",
			"Full resyncs from the log start (gap or cursor mismatch)."),
		pruned: reg.Counter("rim_repl_cursor_pruned_total",
			"Subscribes refused because the cursor fell inside pruned segments."),
		promotions: reg.Counter("rim_repl_promotions_total",
			"Follower promotions to leader."),
		lag: reg.Histogram("rim_repl_batch_records",
			"Records per streamed MsgReplRecords frame.",
			1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
		lagRecords: reg.Gauge("rim_repl_follower_lag_records",
			"Records streamed to followers but not yet acknowledged, summed across followers (leader side)."),
	}
}
