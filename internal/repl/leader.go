package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

// Leader streams the store's committed WAL records to subscribed
// followers. One goroutine per connection writes MsgReplRecords frames;
// a sibling goroutine drains MsgReplAck frames. The stream is paged
// through store.ReadFrom, so the leader never holds more than one
// frame's worth of records in memory per follower and never sends a
// byte past the durable horizon.
//
// Catch-up and live tailing are the same loop: page from the cursor
// until ReadFrom returns nothing, then wait for an append notification
// (with a poll fallback — the notify kick is best-effort by design) and
// page again.

// LeaderConfig configures a feed.
type LeaderConfig struct {
	Store  *store.Store
	NodeID string
	// Epoch is this leader's term. A subscriber presenting a non-zero
	// epoch that differs is refused (StatusExists) — it is talking to a
	// leader from another life.
	Epoch uint64
	// MaxBatch bounds records per MsgReplRecords frame (default 256).
	MaxBatch int
	// MaxBytes bounds payload bytes per frame (default 1 MiB).
	MaxBytes int
	// Poll is the live-tail fallback interval (default 100ms).
	Poll time.Duration
	// WrapConn, when set, wraps every accepted connection — the fault
	// injection seam (wrap in a FaultConn to tear the write path).
	WrapConn func(net.Conn) net.Conn
	// Registry receives rim_repl_* metrics (default obs.Default()).
	Registry *obs.Registry
}

// Leader is a running feed. Create with NewLeader, start with Serve,
// stop with Close.
type Leader struct {
	cfg    LeaderConfig
	mx     *metrics
	notify chan struct{}
	bcast  broadcaster
	done   chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
	lns    []net.Listener
	conns  map[net.Conn]struct{}
	peers  map[string]*peerState
}

// PeerStats is the leader's view of one follower: replication position,
// lag in records, and a clock model estimated from ack round trips.
type PeerStats struct {
	NodeID string       `json:"node"`
	Acked  store.Cursor `json:"-"`
	// AckedCursor is Acked rendered for JSON consumers (/repl/status).
	AckedCursor string `json:"acked"`
	// LagRecords counts records streamed on the current connection that
	// the follower has not yet acknowledged.
	LagRecords uint64 `json:"lag_records"`
	// RTTNS is the last measured ack round trip (frame write to ack
	// arrival on the leader).
	RTTNS int64 `json:"rtt_ns"`
	// OffsetNS estimates the follower's wall clock minus the leader's,
	// from offset ≈ ack.WallNS − (send + RTT/2). Zero until the follower
	// sends wall-clock-stamped acks.
	OffsetNS int64 `json:"offset_ns"`
	// LastAckNS is the leader wall clock at the most recent ack.
	LastAckNS int64 `json:"last_ack_ns"`
}

// peerState is the per-follower accounting behind PeerStats. A fresh
// one is installed on every subscribe, so the streamed/acked counters
// are connection-scoped (a reconnect replays the unacked prefix, which
// re-counts as lag until the first ack lands — transient and honest).
type peerState struct {
	mu        sync.Mutex
	acked     store.Cursor
	streamed  uint64 // records written on this connection
	ackedRecs uint64 // records covered by the latest matched ack
	sent      map[store.Cursor]sentFrame
	rttNS     int64
	offsetNS  int64
	lastAckNS int64
}

// sentFrame remembers when a MsgReplRecords frame left the leader. The
// key is the frame's next-cursor — the one value the follower echoes
// back in its ack — because every records frame on a connection shares
// the subscribe frame's id and so ids cannot match acks to frames.
type sentFrame struct {
	atNS  int64
	total uint64 // cumulative records streamed through this frame
}

// NewLeader builds a feed over cfg.Store and hooks its append
// notifications.
func NewLeader(cfg LeaderConfig) *Leader {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 20
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 100 * time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	l := &Leader{
		cfg:    cfg,
		mx:     registerMetrics(cfg.Registry),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
		peers:  make(map[string]*peerState),
	}
	l.bcast.init()
	cfg.Store.SetAppendNotify(l.notify)
	l.wg.Add(1)
	go l.fanout()
	return l
}

// fanout turns the store's single notify channel into a wake for every
// connection's tail loop.
func (l *Leader) fanout() {
	defer l.wg.Done()
	for {
		select {
		case <-l.notify:
			l.bcast.wake()
		case <-l.done:
			return
		}
	}
}

// Serve accepts follower connections on ln until Close. Blocking; run
// it in a goroutine.
func (l *Leader) Serve(ln net.Listener) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ln.Close()
		return errors.New("repl: leader closed")
	}
	l.lns = append(l.lns, ln)
	l.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-l.done:
				return nil
			default:
				return err
			}
		}
		if l.cfg.WrapConn != nil {
			c = l.cfg.WrapConn(c)
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			c.Close()
			return nil
		}
		l.conns[c] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go l.handle(c)
	}
}

// Close stops accepting, tears down every feed connection, and detaches
// from the store.
func (l *Leader) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	lns := l.lns
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	close(l.done)
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	l.cfg.Store.SetAppendNotify(nil)
	l.wg.Wait()
}

// Acked reports the last cursor a named follower acknowledged (zero if
// none) — the leader's view of replication lag.
func (l *Leader) Acked(node string) store.Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ps := l.peers[node]; ps != nil {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		return ps.acked
	}
	return store.Cursor{}
}

// Peers snapshots the leader's per-follower replication view, sorted is
// not guaranteed — callers sort if they need stable output.
func (l *Leader) Peers() []PeerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]PeerStats, 0, len(l.peers))
	for node, ps := range l.peers {
		ps.mu.Lock()
		out = append(out, PeerStats{
			NodeID:      node,
			Acked:       ps.acked,
			AckedCursor: ps.acked.String(),
			LagRecords:  ps.streamed - ps.ackedRecs,
			RTTNS:       ps.rttNS,
			OffsetNS:    ps.offsetNS,
			LastAckNS:   ps.lastAckNS,
		})
		ps.mu.Unlock()
	}
	return out
}

// refreshLag re-derives the follower-lag gauge from every peer. Called
// on both the send and ack paths so a scrape between acks still sees
// the streamed-but-unacked backlog.
func (l *Leader) refreshLag() {
	l.mu.Lock()
	var lag uint64
	for _, ps := range l.peers {
		ps.mu.Lock()
		lag += ps.streamed - ps.ackedRecs
		ps.mu.Unlock()
	}
	l.mu.Unlock()
	l.mx.lagRecords.Set(float64(lag))
}

func (l *Leader) dropConn(c net.Conn) {
	c.Close()
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// handle speaks one feed connection: handshake, subscribe, stream.
func (l *Leader) handle(c net.Conn) {
	defer l.wg.Done()
	defer l.dropConn(c)
	r := wire.NewReader(c, 0)

	h, p, err := r.Next()
	if err != nil || h.Type != wire.MsgHello || wire.CheckHello(p) != nil {
		l.sendErr(c, h.ID, wire.StatusBad, "repl: expected hello")
		return
	}
	if _, err := c.Write(wire.AppendFrame(nil, wire.MsgHelloOK, 0, h.ID, wire.AppendHello(nil), false)); err != nil {
		return
	}

	h, p, err = r.Next()
	if err != nil || h.Type != wire.MsgReplSubscribe {
		l.sendErr(c, h.ID, wire.StatusBad, "repl: expected subscribe")
		return
	}
	sub, err := wire.DecodeReplSubscribe(p)
	if err != nil {
		l.sendErr(c, h.ID, wire.StatusBad, "repl: bad subscribe: "+err.Error())
		return
	}
	if sub.Epoch != 0 && sub.Epoch != l.cfg.Epoch {
		l.sendErr(c, h.ID, wire.StatusExists,
			fmt.Sprintf("repl: stale epoch %d (leader %s is at %d)", sub.Epoch, l.cfg.NodeID, l.cfg.Epoch))
		return
	}
	l.mx.subs.Inc()

	// A fresh peerState per subscribe: the send-time map and lag
	// counters are connection-scoped, while the installed entry itself
	// outlives the connection so /repl/status keeps the last known
	// position of a dead follower.
	ps := &peerState{sent: make(map[store.Cursor]sentFrame)}
	l.mu.Lock()
	if old := l.peers[sub.NodeID]; old != nil {
		old.mu.Lock()
		ps.acked = old.acked
		old.mu.Unlock()
	}
	l.peers[sub.NodeID] = ps
	l.mu.Unlock()

	// Ack drain: after subscribe the follower only ever sends acks, so
	// this goroutine owns the read half. Any read error (or non-ack
	// frame) kills the connection, which unblocks the stream loop.
	dead := make(chan struct{})
	go func() {
		defer close(dead)
		for {
			ah, ap, err := r.Next()
			if err != nil || ah.Type != wire.MsgReplAck {
				return
			}
			ack, err := wire.DecodeReplAck(ap)
			if err != nil {
				return
			}
			l.mx.acks.Inc()
			now := time.Now().UnixNano()
			ps.mu.Lock()
			ps.acked = ack.Cursor
			ps.lastAckNS = now
			if fr, ok := ps.sent[ack.Cursor]; ok {
				rtt := now - fr.atNS
				ps.rttNS = rtt
				if ack.WallNS != 0 {
					// The follower stamped its wall clock when it acked;
					// assume the ack spent half the round trip in flight.
					ps.offsetNS = ack.WallNS - (fr.atNS + rtt/2)
				}
				ps.ackedRecs = fr.total
				// This ack covers every earlier frame too — drop them so
				// the map stays bounded by the in-flight window.
				for cur, f := range ps.sent {
					if f.total <= fr.total {
						delete(ps.sent, cur)
					}
				}
			}
			ps.mu.Unlock()
			l.refreshLag()
		}
	}()

	l.stream(c, h.ID, sub, ps, dead)
	c.Close() // unblocks the ack drain
	<-dead
}

// errBatchFull stops a ReadFrom page at the frame byte budget; the
// rejected record stays unconsumed and leads the next page.
var errBatchFull = errors.New("repl: batch full")

// stream pages records from the subscribe cursor to the durable horizon
// and then tails live appends. The first frame is sent even when empty:
// it is the subscribe ack, carrying the echoed cursor the follower
// validates against its own.
func (l *Leader) stream(c net.Conn, id uint64, sub wire.ReplSubscribe, ps *peerState, dead chan struct{}) {
	var (
		cur   = sub.Cursor
		first = true
		recs  []store.Record
		buf   []byte
	)
	ticker := time.NewTicker(l.cfg.Poll)
	defer ticker.Stop()
	for {
		recs = recs[:0]
		bytes := 0
		next, n, err := l.cfg.Store.ReadFrom(cur, l.cfg.MaxBatch, func(rec store.Record) error {
			if bytes >= l.cfg.MaxBytes && len(recs) > 0 {
				return errBatchFull
			}
			recs = append(recs, rec)
			bytes += len(rec.Payload) + len(rec.Session) + 16
			return nil
		})
		if err != nil && !errors.Is(err, errBatchFull) {
			switch {
			case errors.Is(err, store.ErrCursorPruned):
				l.sendErr(c, id, wire.StatusGone, "repl: "+err.Error())
			case errors.Is(err, store.ErrCursorInvalid):
				l.sendErr(c, id, wire.StatusBad, "repl: "+err.Error())
			default:
				l.sendErr(c, id, wire.StatusInternal, "repl: "+err.Error())
			}
			return
		}
		if n > 0 || first {
			buf = wire.AppendReplRecords(buf[:0], l.cfg.Epoch, cur, next, recs)
			frame := wire.AppendFrame(nil, wire.MsgReplRecords, 0, id, buf, true)
			sendNS := time.Now().UnixNano()
			if _, err := c.Write(frame); err != nil {
				return
			}
			// Remember when this frame left, keyed by its next-cursor (the
			// value the follower echoes back): the ack drain matches on it
			// to measure RTT and estimate the follower's clock offset.
			ps.mu.Lock()
			ps.streamed += uint64(n)
			ps.sent[next] = sentFrame{atNS: sendNS, total: ps.streamed}
			ps.mu.Unlock()
			l.refreshLag()
			first = false
			cur = next
			l.mx.framesOut.Inc()
			l.mx.recordsOut.Add(int64(n))
			l.mx.lag.Observe(float64(n))
			if n > 0 {
				continue // drain the backlog before sleeping
			}
		}
		select {
		case <-l.bcast.wait():
		case <-ticker.C:
		case <-l.done:
			return
		case <-dead:
			return
		}
	}
}

func (l *Leader) sendErr(c net.Conn, id uint64, status uint16, msg string) {
	c.Write(wire.AppendFrame(nil, wire.MsgErr, status, id, wire.AppendString(nil, msg), false))
}

// broadcaster fans one edge-triggered kick out to any number of
// waiters: wake closes the current generation's channel and installs a
// fresh one.
type broadcaster struct {
	mu sync.Mutex
	ch chan struct{}
}

func (b *broadcaster) init() {
	b.ch = make(chan struct{})
}

func (b *broadcaster) wait() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ch
}

func (b *broadcaster) wake() {
	b.mu.Lock()
	close(b.ch)
	b.ch = make(chan struct{})
	b.mu.Unlock()
}
