package repl

import (
	"fmt"
	"testing"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("session-%04d", i)
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing("n1", "n2", "n3")
	b := NewRing("n3", "n1", "n2") // insertion order must not matter
	for _, k := range sampleKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owner %q vs %q across insertion orders", k, a.Owner(k), b.Owner(k))
		}
	}
	if got := NewRing().Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing("n1", "n2", "n3")
	counts := map[string]int{}
	keys := sampleKeys(9000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, n := range r.Nodes() {
		frac := float64(counts[n]) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys — ring badly unbalanced (%v)", n, 100*frac, counts)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	keys := sampleKeys(2000)
	r := NewRing("n1", "n2", "n3")
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	// Adding a node only pulls keys toward the new node.
	r.AddNode("n4")
	moved := 0
	for _, k := range keys {
		if got := r.Owner(k); got != before[k] {
			if got != "n4" {
				t.Fatalf("key %q moved %q -> %q on AddNode(n4): only n4 may gain keys", k, before[k], got)
			}
			moved++
		}
	}
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("AddNode moved %d/%d keys, want a modest nonzero share", moved, len(keys))
	}

	// Removing it restores the previous assignment exactly.
	r.RemoveNode("n4")
	for _, k := range keys {
		if got := r.Owner(k); got != before[k] {
			t.Fatalf("key %q owner %q after add+remove, want %q", k, got, before[k])
		}
	}
}

func TestRingSuccessor(t *testing.T) {
	r := NewRing("n1", "n2", "n3")
	succ := r.Successor("n1")
	if succ != "n2" && succ != "n3" {
		t.Fatalf("Successor(n1) = %q, want a surviving member", succ)
	}
	// Deterministic: every node computes the same answer.
	if again := NewRing("n2", "n3", "n1").Successor("n1"); again != succ {
		t.Fatalf("Successor(n1) = %q vs %q across instances", succ, again)
	}
	// The successor computation must not disturb the ring itself.
	if !r.Has("n1") || r.Len() != 3 {
		t.Fatal("Successor mutated the ring")
	}
	if got := r.Successor("nx"); got != "" {
		t.Fatalf("Successor of non-member = %q, want empty", got)
	}
	two := NewRing("a", "b")
	if got := two.Successor("a"); got != "b" {
		t.Fatalf("2-node Successor(a) = %q, want b", got)
	}
	if got := NewRing("solo").Successor("solo"); got != "" {
		t.Fatalf("last-node successor = %q, want empty", got)
	}
}

func TestRingCloneIndependent(t *testing.T) {
	r := NewRing("n1", "n2")
	c := r.Clone()
	c.RemoveNode("n1")
	if !r.Has("n1") {
		t.Fatal("RemoveNode on clone mutated the original")
	}
	if c.Owner("k") == "" || r.Owner("k") == "" {
		t.Fatal("owners lost after clone")
	}
}
