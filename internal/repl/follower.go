package repl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/wire"
)

// Follower consumes a leader's feed and applies every record through
// its manager's normal shard pipeline (serve.Manager.ApplyRecord), so a
// follower is just a rimd whose writes arrive over the wire instead of
// HTTP. Reads stay lock-free snapshot reads; mutations are refused with
// ErrReadOnly until promotion.
//
// The loop is crash-shaped end to end: any connection death — clean,
// torn mid-frame, partitioned — falls back to dial + resubscribe from
// the last applied cursor, and the apply path's idempotence guards
// absorb whatever prefix the leader replays. The only non-local repair
// is a seq gap or a pruned cursor, both of which force a resync from
// the log start (cursor zero). A follower therefore needs no state to
// restart beyond its own WAL and the persisted cursor, and survives
// losing the cursor file entirely.

// FollowerConfig configures a feed consumer.
type FollowerConfig struct {
	Manager *serve.Manager
	NodeID  string
	// LeaderAddr is the leader's feed listener address.
	LeaderAddr string
	// Epoch, when non-zero, pins the leader term this follower will
	// accept; a mismatched leader refuses the subscribe.
	Epoch uint64
	// CursorPath, when set, persists the applied cursor across restarts
	// (tmp+rename). Losing the file is safe — the follower resumes from
	// zero and skips the replayed prefix.
	CursorPath string
	// Dial, when set, replaces net.Dial — the fault injection seam
	// (return a FaultConn to tear the read path).
	Dial func(addr string) (net.Conn, error)
	// Backoff is the reconnect backoff floor (default 25ms, doubling to
	// 1s).
	Backoff time.Duration
	// Registry receives rim_repl_* metrics (default obs.Default()).
	Registry *obs.Registry
	// Logf, when set, receives operator-facing warnings (stuck-resync
	// transitions). Default discards.
	Logf func(format string, args ...any)
}

// FollowerStats is a snapshot of the feed counters.
type FollowerStats struct {
	Frames     uint64 // record frames applied
	Records    uint64 // records delivered (redeliveries included)
	Reconnects uint64 // connection deaths survived
	Gaps       uint64 // seq gaps detected (each forces a resync)
	Resyncs    uint64 // restarts from the log start
	Pruned     uint64 // StatusGone refusals (cursor inside pruned segments)
	// StuckResync reports a follower that can never catch up as-is: the
	// leader pruned the log start, so even a resync from cursor zero is
	// refused. The follower keeps serving its last applied state and
	// keeps retrying (a later prune cannot help, but a leader restart
	// with intact history can), but it is not a healthy promote
	// candidate and /repl/status must not present it as one.
	StuckResync bool
}

// Follower is a running feed consumer. Create with NewFollower, drive
// with Run (blocking; run it in a goroutine), stop with Stop or hand
// the node over with Promote.
type Follower struct {
	cfg FollowerConfig
	mx  *metrics

	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup

	mu     sync.Mutex
	cursor store.Cursor
	conn   net.Conn
	epoch  uint64 // last epoch observed on the stream

	frames     atomic.Uint64
	records    atomic.Uint64
	reconnects atomic.Uint64
	gaps       atomic.Uint64
	resyncs    atomic.Uint64
	pruned     atomic.Uint64
	stuck      atomic.Bool
}

// NewFollower builds a consumer, restoring the persisted cursor when
// CursorPath names one, and flips the manager read-only: from here
// until Promote the feed is the only writer.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Manager == nil {
		return nil, errors.New("repl: follower requires a manager")
	}
	if mc := cfg.Manager.Config(); !mc.NoCoalesce && !mc.Deterministic {
		// The leader logs post-coalesce batches, so each replicated
		// record's mutation count is exactly its seq advance; a coalescing
		// follower would merge mutations across record boundaries and fall
		// behind the leader's seq space (see internal/serve/replicate.go).
		return nil, errors.New("repl: follower manager must be built with serve.Config.NoCoalesce")
	}
	f := &Follower{cfg: cfg, mx: registerMetrics(cfg.Registry), done: make(chan struct{})}
	if cfg.CursorPath != "" {
		b, err := os.ReadFile(cfg.CursorPath)
		switch {
		case err == nil:
			cur, perr := store.ParseCursor(string(b))
			if perr != nil {
				return nil, fmt.Errorf("repl: cursor file %s: %w", cfg.CursorPath, perr)
			}
			f.cursor = cur
		case !errors.Is(err, os.ErrNotExist):
			return nil, fmt.Errorf("repl: cursor file: %w", err)
		}
	}
	cfg.Manager.SetReadOnly(true)
	return f, nil
}

// Cursor reports the applied-through position.
func (f *Follower) Cursor() store.Cursor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursor
}

// LeaderEpoch reports the epoch last seen on the stream (0 before the
// first frame).
func (f *Follower) LeaderEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Stats snapshots the feed counters.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		Frames:      f.frames.Load(),
		Records:     f.records.Load(),
		Reconnects:  f.reconnects.Load(),
		Gaps:        f.gaps.Load(),
		Resyncs:     f.resyncs.Load(),
		Pruned:      f.pruned.Load(),
		StuckResync: f.stuck.Load(),
	}
}

// Stop ends the feed loop. Idempotent; safe from any goroutine.
func (f *Follower) Stop() {
	f.stop.Do(func() {
		close(f.done)
	})
	f.mu.Lock()
	c := f.conn
	f.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (f *Follower) stopped() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Run consumes the feed until Stop (nil) or an unrecoverable apply
// error. Every connection death reconnects from the applied cursor with
// capped exponential backoff.
func (f *Follower) Run() error {
	f.wg.Add(1)
	defer f.wg.Done()
	backoff := f.cfg.Backoff
	for {
		if f.stopped() {
			return nil
		}
		progressed, err := f.session()
		if f.stopped() {
			return nil
		}
		if err != nil && errors.Is(err, serve.ErrReplGap) {
			// The stream skipped records this node never saw (e.g. the
			// cursor file outran the follower's own recovered WAL). Heal by
			// replaying from the log start: idempotence skips the known
			// prefix, the replay fills the hole.
			f.gaps.Add(1)
			f.mx.gaps.Inc()
			f.resync()
		} else if err != nil && isFatalApply(err) {
			return err
		}
		f.reconnects.Add(1)
		f.mx.reconnects.Inc()
		if progressed {
			backoff = f.cfg.Backoff
		} else if backoff < time.Second {
			backoff *= 2
		}
		select {
		case <-time.After(backoff):
		case <-f.done:
			return nil
		}
	}
}

// isFatalApply reports errors no reconnect can fix: the local apply
// pipeline itself rejected a record for a reason other than a gap.
func isFatalApply(err error) bool {
	var applyErr *applyError
	return errors.As(err, &applyErr)
}

type applyError struct{ err error }

func (e *applyError) Error() string { return e.err.Error() }
func (e *applyError) Unwrap() error { return e.err }

// resync discards the cursor: the next session replays from the log
// start.
func (f *Follower) resync() {
	f.mu.Lock()
	f.cursor = store.Cursor{}
	f.mu.Unlock()
	f.resyncs.Add(1)
	f.mx.resyncs.Inc()
	f.persistCursor(store.Cursor{})
}

// session runs one connection: dial, handshake, subscribe, apply frames
// until the connection dies. It reports whether any frame was applied
// (resets backoff) and a non-nil error only for conditions reconnecting
// cannot fix as-is (gap, fatal apply).
func (f *Follower) session() (progressed bool, fatal error) {
	conn, err := f.cfg.Dial(f.cfg.LeaderAddr)
	if err != nil {
		return false, nil
	}
	f.mu.Lock()
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		conn.Close()
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
	}()
	if f.stopped() {
		// Stop may have snapshotted f.conn before the assignment above and
		// so closed nothing; without this re-check the frame loop would
		// outlive Stop and Promote's wg.Wait would never return.
		return false, nil
	}

	r := wire.NewReader(conn, 0)
	if _, err := conn.Write(wire.AppendFrame(nil, wire.MsgHello, 0, 1, wire.AppendHello(nil), false)); err != nil {
		return false, nil
	}
	h, p, err := r.Next()
	if err != nil || h.Type != wire.MsgHelloOK || wire.CheckHello(p) != nil {
		return false, nil
	}

	cur := f.Cursor()
	sub := wire.ReplSubscribe{NodeID: f.cfg.NodeID, Epoch: f.cfg.Epoch, Cursor: cur}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.MsgReplSubscribe, 0, 2, wire.AppendReplSubscribe(nil, sub), false)); err != nil {
		return false, nil
	}

	var (
		recs []store.Record
		ackb []byte
	)
	for {
		h, p, err := r.Next()
		if err != nil {
			return progressed, nil // torn/partitioned/closed: reconnect
		}
		switch h.Type {
		case wire.MsgErr:
			msg, _, _ := wire.ReadString(p)
			switch h.Status {
			case wire.StatusGone:
				// Cursor pruned on the leader. From a non-zero cursor a
				// restart from the log start may still work (prune keeps
				// whole segments); from zero the log start is gone for good
				// and no resync can help — the follower is stuck serving
				// stale reads until an operator intervenes (there is no
				// checkpoint bootstrap yet), so the transition is surfaced
				// in FollowerStats and logged loudly instead of silently
				// retrying forever.
				f.pruned.Add(1)
				f.mx.pruned.Inc()
				if !cur.IsZero() {
					f.resync()
				} else if f.stuck.CompareAndSwap(false, true) {
					f.cfg.Logf("repl: follower %s cannot catch up: leader pruned the log start (%s); serving stale reads, not a promote candidate", f.cfg.NodeID, msg)
				}
				return progressed, nil
			default:
				// Stale epoch or malformed subscribe: retry after backoff —
				// a restarted leader may come up at this address with the
				// epoch we expect.
				_ = msg
				return progressed, nil
			}
		case wire.MsgReplRecords:
			epoch, from, next, got, derr := wire.DecodeReplRecords(p, recs[:0])
			if derr != nil {
				return progressed, nil // corrupt frame: reconnect
			}
			recs = got
			if from != cur {
				// The stream is not continuing from where we subscribed —
				// a protocol violation. Drop the connection and resubscribe
				// from the applied cursor (the heal path).
				return progressed, nil
			}
			f.mu.Lock()
			f.epoch = epoch
			f.mu.Unlock()
			f.records.Add(uint64(len(recs)))
			f.mx.recordsIn.Add(int64(len(recs)))
			for i := range recs {
				if aerr := f.cfg.Manager.ApplyRecord(recs[i]); aerr != nil {
					if errors.Is(aerr, serve.ErrReplGap) {
						return progressed, aerr
					}
					return progressed, &applyError{err: aerr}
				}
			}
			cur = next
			f.mu.Lock()
			f.cursor = cur
			f.mu.Unlock()
			f.persistCursor(cur)
			f.frames.Add(1)
			f.mx.framesIn.Inc()
			progressed = true
			if f.stuck.CompareAndSwap(true, false) {
				f.cfg.Logf("repl: follower %s caught the stream again", f.cfg.NodeID)
			}
			// WallNS lets the leader estimate this node's clock offset from
			// the ack round trip (see PeerStats.OffsetNS).
			ackb = wire.AppendFrame(ackb[:0], wire.MsgReplAck, 0, h.ID,
				wire.AppendReplAck(nil, wire.ReplAck{Epoch: epoch, Cursor: cur, WallNS: time.Now().UnixNano()}), false)
			if _, werr := conn.Write(ackb); werr != nil {
				return progressed, nil
			}
		default:
			return progressed, nil // protocol violation: reconnect
		}
	}
}

// persistCursor writes the cursor file atomically (tmp + rename).
// Best-effort: a lost update only widens the replayed prefix, which the
// apply path absorbs.
func (f *Follower) persistCursor(cur store.Cursor) {
	if f.cfg.CursorPath == "" {
		return
	}
	tmp := f.cfg.CursorPath + ".tmp"
	if err := os.WriteFile(tmp, []byte(cur.String()+"\n"), 0o644); err != nil {
		return
	}
	// The rename is durable enough for a cache: a lost or stale cursor
	// only replays a longer prefix.
	os.Rename(tmp, f.cfg.CursorPath)
}

// Promote hands the node over as leader: stop the feed, drain every
// session queue so all replicated records are applied and locally
// logged, then lift read-only. The caller bumps the epoch it serves
// with. Safe to call whether or not Run is active.
func (f *Follower) Promote(ctx context.Context) error {
	f.Stop()
	f.wg.Wait()
	m := f.cfg.Manager
	for _, id := range m.SessionIDs() {
		s, ok := m.Session(id)
		if !ok {
			continue
		}
		if err := s.Flush(ctx); err != nil {
			return fmt.Errorf("repl: promote: drain %q: %w", id, err)
		}
	}
	m.SetReadOnly(false)
	f.mx.promotions.Inc()
	return nil
}
