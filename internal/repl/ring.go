// Package repl replicates the rimd write-ahead log: a leader streams
// committed WAL records to follower nodes over rimwire push frames
// (MsgReplSubscribe / MsgReplRecords / MsgReplAck), followers apply
// them through the normal serve shard pipeline and answer reads from
// their own lock-free snapshots, and on leader death a follower is
// promoted — its WAL tail already replayed through recovery — to take
// over the keyspace.
//
// The unit of replication is the store.Record and the unit of progress
// is the store.Cursor: a (segment, offset) position in the leader's
// log. The leader streams only records at or below its durable horizon,
// so a promoted follower can never hold state the crashed leader would
// not itself recover — the invariant the failover matrix checks by
// comparing a promoted follower byte-for-byte against a from-scratch
// replay of the leader's WAL.
//
// Topology v1: one leader owns the whole keyspace and every follower
// subscribes to the full stream. The Ring generalizes serve's FNV-1a
// session sharding across nodes: today it decides promotion order
// (deterministically, with no coordination — every surviving node
// computes the same successor) and gives reads a session→node map;
// partitioning the stream itself across several leaders is the ring's
// next step, not this one.
package repl

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual points each node contributes. 64 keeps
// the per-node load spread within a few percent at 3-16 nodes while the
// whole ring stays cache-resident (64 × 12 bytes per node).
const ringVnodes = 64

type ringPoint struct {
	h    uint64
	node string
}

// Ring is a consistent-hash ring over node IDs — the cross-node
// generalization of serve.shardFor's FNV-1a hash. Keys (session IDs)
// map to the first virtual point clockwise from their hash; adding or
// removing one node moves only the keys adjacent to its virtual points.
// Not safe for concurrent mutation; copy-on-write via Clone for shared
// use.
type Ring struct {
	points []ringPoint
	nodes  map[string]bool
}

// NewRing builds a ring over the given node IDs (duplicates ignored).
func NewRing(nodes ...string) *Ring {
	r := &Ring{nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.AddNode(n)
	}
	return r
}

// hash64 is FNV-1a (the same family as serve's shard hash) with a
// splitmix64 finalizer. Raw FNV-1a is fine for "mod shards" (low bits
// mix well) but poor as a ring position: similar strings — and vnode
// labels differ only in a numeric suffix — land in narrow bands of the
// full 64-bit range, which collapses the ring's balance. The finalizer
// avalanches every input bit across the word.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// AddNode inserts a node's virtual points. No-op if present.
func (r *Ring) AddNode(node string) {
	if node == "" || r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < ringVnodes; i++ {
		r.points = append(r.points, ringPoint{h: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
}

// RemoveNode deletes a node's virtual points. No-op if absent.
func (r *Ring) RemoveNode(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports node membership.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len reports the node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the member IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner maps a key to its owning node: the first virtual point at or
// clockwise from the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Successor names the node that takes over when dead fails: the owner
// of the dead node's own ID on the ring without it. Every node computes
// the same answer from the same membership — promotion needs no
// election. Returns "" when dead was not a member or no nodes remain.
func (r *Ring) Successor(dead string) string {
	if !r.nodes[dead] {
		return ""
	}
	s := r.Clone()
	s.RemoveNode(dead)
	return s.Owner(dead)
}

// Clone returns an independent copy.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		points: append([]ringPoint(nil), r.points...),
		nodes:  make(map[string]bool, len(r.nodes)),
	}
	for n := range r.nodes {
		c.nodes[n] = true
	}
	return c
}
