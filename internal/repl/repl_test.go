package repl_test

// The cluster-grade fault-injection harness: basic leader→follower
// replication with byte-identical checkpoints, the cut-at-every-byte
// matrix over the replication stream (both sides of the wire), and the
// 3-node kill-the-leader failover matrix that promotes the ring
// successor and compares it byte-for-byte against a from-scratch replay
// of the leader's WAL. Followers run with the oracle DiffEvaluator as
// their engine, so every replicated mutation is shadow-checked as it
// applies.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/repl"
	"repro/internal/serve"
	"repro/internal/store"
)

func openStore(t *testing.T, dir string, policy store.SyncPolicy) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Sync: policy, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("store.Open(%q): %v", dir, err)
	}
	return st
}

func pts(n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(float64(i)*0.7, float64(i%3)*0.4)
	}
	return out
}

// snapKey flattens a snapshot into a comparable string (the durable_test
// idiom): full node set plus aggregates, so equal keys mean equal
// behavioral state.
func snapKey(s *serve.Snapshot) string {
	nodes := append([]serve.NodeState(nil), s.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d max=%d", s.N, s.Max)
	for _, nd := range nodes {
		fmt.Fprintf(&sb, " (%d %v %v %v %d)", nd.ID, nd.X, nd.Y, nd.R, nd.I)
	}
	return sb.String()
}

// stateKey flattens a whole manager: every session's id, seq, and
// snapshot key, sorted.
func stateKey(m *serve.Manager) string {
	ids := m.SessionIDs()
	sort.Strings(ids)
	var sb strings.Builder
	for _, id := range ids {
		s, ok := m.Session(id)
		if !ok {
			continue
		}
		snap := s.Snapshot()
		fmt.Fprintf(&sb, "%s@%d{%s}\n", id, snap.Seq, snapKey(snap))
	}
	return sb.String()
}

// node bundles one rimd's store and manager. Followers apply without
// coalescing (the replication contract) and shadow-check every mutation
// through the oracle's differential evaluator.
type node struct {
	id  string
	dir string
	st  *store.Store
	m   *serve.Manager
}

func newNode(t *testing.T, id string, policy store.SyncPolicy, follower bool) *node {
	t.Helper()
	dir := t.TempDir()
	st := openStore(t, dir, policy)
	cfg := serve.Config{Shards: 1, Store: st}
	if follower {
		cfg.NoCoalesce = true
		cfg.Engine = func(p []geom.Point) dynamic.Engine { return oracle.NewDiffEvaluator(p) }
	}
	return &node{id: id, dir: dir, st: st, m: serve.NewManager(cfg)}
}

func (n *node) close() {
	n.m.Close(context.Background())
	n.st.Close()
}

func mustCreate(t *testing.T, m *serve.Manager, id string, p []geom.Point) *serve.Session {
	t.Helper()
	s, err := m.CreateSession(id, p)
	if err != nil {
		t.Fatalf("CreateSession(%q): %v", id, err)
	}
	return s
}

func step(t *testing.T, s *serve.Session, mu serve.Mutation) {
	t.Helper()
	if _, err := s.Apply(mu); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// drain flushes every session so all enqueued (replicated) batches have
// applied before state comparison.
func drain(t *testing.T, m *serve.Manager) {
	t.Helper()
	for _, id := range m.SessionIDs() {
		if s, ok := m.Session(id); ok {
			if err := s.Flush(context.Background()); err != nil {
				t.Fatalf("drain %q: %v", id, err)
			}
		}
	}
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// ckptMap checkpoints every session and returns session → "seq payload"
// for byte-identity comparison across nodes.
func ckptMap(t *testing.T, n *node) map[string]string {
	t.Helper()
	if _, err := n.m.CheckpointAll(context.Background()); err != nil {
		t.Fatalf("CheckpointAll(%s): %v", n.id, err)
	}
	cks, _, err := n.st.LatestCheckpoints()
	if err != nil {
		t.Fatalf("LatestCheckpoints(%s): %v", n.id, err)
	}
	out := make(map[string]string, len(cks))
	for id, ck := range cks {
		out[id] = fmt.Sprintf("seq=%d %s", ck.Seq, ck.Payload)
	}
	return out
}

// workloadPhase1 / workloadPhase2 are the crash-matrix script adapted to
// the wire: two sessions, every mutation its own flushed batch, one
// session dropped mid-stream in phase 2.
func workloadPhase1(t *testing.T, m *serve.Manager) {
	t.Helper()
	a := mustCreate(t, m, "alpha", pts(4))
	step(t, a, serve.Add(0.8, 0.4))
	step(t, a, serve.SetRadius(1, 2))
	b := mustCreate(t, m, "beta", pts(3))
	step(t, b, serve.Move(0, 0.3, 0.3))
}

func workloadPhase2(t *testing.T, m *serve.Manager) {
	t.Helper()
	a, _ := m.Session("alpha")
	b, _ := m.Session("beta")
	step(t, a, serve.Move(2, 0.1, 0.9))
	step(t, b, serve.Add(1.1, 0.2))
	if err := m.DropSession("beta"); err != nil {
		t.Fatalf("DropSession: %v", err)
	}
	step(t, a, serve.Remove(0))
	step(t, a, serve.AnnealStep(40, 7))
}

// startLeader wires a feed over the node's store on a loopback listener.
func startLeader(t *testing.T, n *node, epoch uint64, wrap func(net.Conn) net.Conn) (*repl.Leader, net.Listener) {
	t.Helper()
	ldr := repl.NewLeader(repl.LeaderConfig{
		Store: n.st, NodeID: n.id, Epoch: epoch,
		Poll: 5 * time.Millisecond, WrapConn: wrap, Registry: obs.NewRegistry(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go ldr.Serve(ln)
	return ldr, ln
}

func newFollower(t *testing.T, n *node, addr string, dial func(string) (net.Conn, error)) *repl.Follower {
	t.Helper()
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Manager: n.m, NodeID: n.id, LeaderAddr: addr,
		CursorPath: filepath.Join(n.dir, "cursor"),
		Dial:       dial, Backoff: 2 * time.Millisecond, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("NewFollower(%s): %v", n.id, err)
	}
	return fol
}

func caughtUp(fol *repl.Follower, st *store.Store, tail store.Cursor) func() bool {
	return func() bool { return fol.Cursor() == tail }
}

func TestReplicateBasic(t *testing.T) {
	for _, policy := range []store.SyncPolicy{store.SyncNone, store.SyncAlways} {
		policy := policy
		t.Run(fmt.Sprintf("policy=%v", policy), func(t *testing.T) {
			t.Parallel()
			ldrN := newNode(t, "n1", policy, false)
			defer ldrN.close()
			ldr, ln := startLeader(t, ldrN, 1, nil)
			defer ldr.Close()

			folN := newNode(t, "n2", policy, true)
			fol := newFollower(t, folN, ln.Addr().String(), nil)
			go fol.Run()
			defer folN.close()
			defer fol.Stop()

			// The follower is read-only from the moment it exists.
			if _, err := folN.m.CreateSession("x", pts(3)); !errors.Is(err, serve.ErrReadOnly) {
				t.Fatalf("follower CreateSession err=%v, want ErrReadOnly", err)
			}

			workloadPhase1(t, ldrN.m)
			workloadPhase2(t, ldrN.m)
			tail := ldrN.st.ReplTail()
			waitUntil(t, 10*time.Second, "follower catch-up", caughtUp(fol, ldrN.st, tail))
			drain(t, folN.m)

			if got, want := stateKey(folN.m), stateKey(ldrN.m); got != want {
				t.Fatalf("follower state diverged\n got:\n%s\nwant:\n%s", got, want)
			}
			if st := fol.Stats(); st.Gaps != 0 || st.Resyncs != 0 {
				t.Fatalf("clean run recorded gaps/resyncs: %+v", st)
			}
			waitUntil(t, 5*time.Second, "leader ack horizon", func() bool {
				return ldr.Acked("n2") == tail
			})

			// Checkpoints on both sides must be byte-identical.
			if l, f := ckptMap(t, ldrN), ckptMap(t, folN); !reflect.DeepEqual(l, f) {
				t.Fatalf("checkpoint payloads differ\nleader:   %v\nfollower: %v", l, f)
			}

			// Restart the follower process: a new consumer over the same
			// manager resumes from the persisted cursor file, and only the
			// new records flow.
			fol.Stop()
			a, _ := ldrN.m.Session("alpha")
			step(t, a, serve.Add(2.0, 0.1))
			step(t, a, serve.SetRadius(0, 3))
			tail2 := ldrN.st.ReplTail()

			fol2 := newFollower(t, folN, ln.Addr().String(), nil)
			if cur := fol2.Cursor(); cur.IsZero() {
				t.Fatal("restarted follower lost its persisted cursor")
			}
			go fol2.Run()
			defer fol2.Stop()
			waitUntil(t, 10*time.Second, "restarted follower catch-up", caughtUp(fol2, ldrN.st, tail2))
			drain(t, folN.m)
			if got, want := stateKey(folN.m), stateKey(ldrN.m); got != want {
				t.Fatalf("restarted follower diverged\n got:\n%s\nwant:\n%s", got, want)
			}
			if st := fol2.Stats(); st.Gaps != 0 {
				t.Fatalf("restart recorded gaps: %+v", st)
			}
		})
	}
}

// countingConn counts bytes read — the harness's ruler for "how long is
// the whole replication conversation".
type countingConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// cutDialer returns a Dial whose FIRST connection dies after `cut`
// bytes read; reconnects are clean. cut < 0 disables the fault.
func cutDialer(cut int64) func(string) (net.Conn, error) {
	var dials atomic.Int32
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if cut >= 0 && dials.Add(1) == 1 {
			fc := repl.NewFaultConn(c)
			fc.CutReadAfter(cut)
			return fc, nil
		}
		return c, nil
	}
}

// TestReplCutEveryOffset severs the replication stream at every byte
// offset of the conversation — follower side (read path torn) and
// leader side (write path torn) — and demands the follower heal by
// resubscribing from its cursor: final state exact, zero gaps.
func TestReplCutEveryOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("cut matrix is slow; skipped in -short")
	}
	ldrN := newNode(t, "n1", store.SyncNone, false)
	defer ldrN.close()
	// Small workload on purpose: one session, three batches — the whole
	// conversation stays a few hundred bytes so every offset is testable.
	a := mustCreate(t, ldrN.m, "alpha", pts(3))
	step(t, a, serve.Add(0.8, 0.4))
	step(t, a, serve.SetRadius(1, 2))
	step(t, a, serve.Move(0, 0.2, 0.6))
	tail := ldrN.st.ReplTail()
	want := stateKey(ldrN.m)

	// Measure the clean conversation's length in leader→follower bytes.
	ldr, ln := startLeader(t, ldrN, 1, nil)
	var total atomic.Int64
	{
		folN := newNode(t, "probe", store.SyncNone, true)
		fol := newFollower(t, folN, ln.Addr().String(), func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return countingConn{Conn: c, n: &total}, nil
		})
		go fol.Run()
		waitUntil(t, 10*time.Second, "probe catch-up", caughtUp(fol, ldrN.st, tail))
		fol.Stop()
		folN.close()
	}
	size := total.Load()
	if size < 100 {
		t.Fatalf("conversation only %d bytes: probe did not stream", size)
	}
	stride := int64(1)
	if size > 512 {
		stride = size/512 + 1
	}
	t.Logf("conversation is %d bytes; cutting every %d", size, stride)

	runCut := func(t *testing.T, cut int64, dial func(string) (net.Conn, error), addr string) {
		t.Helper()
		folN := newNode(t, fmt.Sprintf("f%06d", cut), store.SyncNone, true)
		defer folN.close()
		fol := newFollower(t, folN, addr, dial)
		go fol.Run()
		defer fol.Stop()
		waitUntil(t, 10*time.Second, fmt.Sprintf("catch-up after cut at %d", cut), caughtUp(fol, ldrN.st, tail))
		drain(t, folN.m)
		if got := stateKey(folN.m); got != want {
			t.Fatalf("cut at %d: state diverged\n got:\n%s\nwant:\n%s", cut, got, want)
		}
		if st := fol.Stats(); st.Gaps != 0 {
			t.Fatalf("cut at %d: gaps=%d, want 0 (stream skipped records)", cut, st.Gaps)
		}
	}

	t.Run("follower-side", func(t *testing.T) {
		for cut := int64(0); cut <= size; cut += stride {
			runCut(t, cut, cutDialer(cut), ln.Addr().String())
		}
	})

	ldr.Close()
	ln.Close()

	t.Run("leader-side", func(t *testing.T) {
		for cut := int64(0); cut <= size; cut += stride {
			var accepts atomic.Int32
			wrap := func(c net.Conn) net.Conn {
				if accepts.Add(1) == 1 {
					fc := repl.NewFaultConn(c)
					fc.CutWriteAfter(cut)
					return fc
				}
				return c
			}
			cldr, cln := startLeader(t, ldrN, 1, wrap)
			runCut(t, cut, nil, cln.Addr().String())
			cldr.Close()
			cln.Close()
		}
	})
}

// copyDir clones a node's data directory (wal + ckpt) byte-for-byte —
// the "disk the dead leader left behind".
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copyDir: %v", err)
	}
}

// TestFailoverMatrix is the 3-node kill -9 drill: leader n1 streams to
// followers n2/n3, the ring successor's feed is torn at a byte offset
// mid-stream and heals, a checkpoint barrier optionally prunes the
// leader's log under the live cursors, the leader dies abruptly, the
// ring successor is promoted — and its state must be byte-identical
// (snapshots and checkpoint payloads) to a from-scratch replay of the
// dead leader's WAL.
func TestFailoverMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("failover matrix is slow; skipped in -short")
	}
	ring := repl.NewRing("n1", "n2", "n3")
	succ := ring.Successor("n1")
	other := "n2"
	if succ == "n2" {
		other = "n3"
	}
	cuts := []int64{0, 1, 16, 17, 63, 128, 300, -1} // -1 = no fault
	for _, withBarrier := range []bool{false, true} {
		for _, policy := range []store.SyncPolicy{store.SyncNone, store.SyncAlways} {
			withBarrier, policy := withBarrier, policy
			t.Run(fmt.Sprintf("barrier=%v/policy=%v", withBarrier, policy), func(t *testing.T) {
				t.Parallel()
				for _, cut := range cuts {
					ldrN := newNode(t, "n1", policy, false)
					ldr, ln := startLeader(t, ldrN, 1, nil)

					succN := newNode(t, succ, policy, true)
					succF := newFollower(t, succN, ln.Addr().String(), cutDialer(cut))
					go succF.Run()
					otherN := newNode(t, other, policy, true)
					otherF := newFollower(t, otherN, ln.Addr().String(), nil)
					go otherF.Run()

					workloadPhase1(t, ldrN.m)
					tail1 := ldrN.st.ReplTail()
					waitUntil(t, 10*time.Second, "phase-1 catch-up", func() bool {
						return succF.Cursor() == tail1 && otherF.Cursor() == tail1
					})
					if withBarrier {
						if _, err := ldrN.m.CheckpointAll(context.Background()); err != nil {
							t.Fatalf("cut=%d: barrier: %v", cut, err)
						}
					}
					workloadPhase2(t, ldrN.m)
					tail := ldrN.st.ReplTail()
					waitUntil(t, 10*time.Second, "phase-2 catch-up", func() bool {
						return succF.Cursor() == tail && otherF.Cursor() == tail
					})

					// Kill the leader abruptly: feed gone, WAL left as-is on
					// "disk". No drain, no final checkpoint.
					ldr.Close()
					ln.Close()
					grave := t.TempDir()
					copyDir(t, ldrN.dir, grave)

					// Promote the ring successor; retire the other follower.
					otherF.Stop()
					if err := succF.Promote(context.Background()); err != nil {
						t.Fatalf("cut=%d: Promote: %v", cut, err)
					}
					if st := succF.Stats(); st.Gaps != 0 {
						t.Fatalf("cut=%d: successor saw %d gaps", cut, st.Gaps)
					}

					// From-scratch replay of the dead leader's WAL, oracle-
					// verified, is the ground truth the promoted node must
					// match exactly.
					replayN := &node{id: "replay", dir: grave, st: openStore(t, grave, policy)}
					replayN.m = serve.NewManager(serve.Config{Shards: 1, Store: replayN.st})
					if _, err := replayN.m.Recover(true); err != nil {
						t.Fatalf("cut=%d: replay Recover: %v", cut, err)
					}
					if got, wantS := stateKey(succN.m), stateKey(replayN.m); got != wantS {
						t.Fatalf("cut=%d: promoted state != WAL replay\n got:\n%s\nwant:\n%s", cut, got, wantS)
					}
					if live := stateKey(ldrN.m); stateKey(succN.m) != live {
						t.Fatalf("cut=%d: promoted state != leader's live state\n%s\nvs\n%s", cut, stateKey(succN.m), live)
					}
					if p, r := ckptMap(t, succN), ckptMap(t, replayN); !reflect.DeepEqual(p, r) {
						t.Fatalf("cut=%d: checkpoint payloads differ\npromoted: %v\nreplay:   %v", cut, p, r)
					}

					// The promoted node serves writes again.
					if s, ok := succN.m.Session("alpha"); !ok {
						t.Fatalf("cut=%d: promoted node lost session alpha", cut)
					} else {
						step(t, s, serve.Add(3.0, 0.3))
					}
					if _, err := succN.m.CreateSession("post-failover", pts(2)); err != nil {
						t.Fatalf("cut=%d: promoted node refused create: %v", cut, err)
					}

					replayN.close()
					otherN.close()
					succN.close()
					ldrN.close()
				}
			})
		}
	}
}

// TestFollowerHealsAcrossBarrierPrune pins the cursor-normalization
// path end to end: a follower cut mid-stream reconnects with a cursor
// pointing into a segment a checkpoint barrier has since pruned — at
// its exact end — and must resume without a resync.
func TestFollowerHealsAcrossBarrierPrune(t *testing.T) {
	ldrN := newNode(t, "n1", store.SyncNone, false)
	defer ldrN.close()
	ldr, ln := startLeader(t, ldrN, 1, nil)
	defer ldr.Close()

	folN := newNode(t, "n2", store.SyncNone, true)
	defer folN.close()
	fol := newFollower(t, folN, ln.Addr().String(), nil)
	go fol.Run()
	defer fol.Stop()

	workloadPhase1(t, ldrN.m)
	tail1 := ldrN.st.ReplTail()
	waitUntil(t, 10*time.Second, "phase-1 catch-up", caughtUp(fol, ldrN.st, tail1))

	// Barrier: rotates and prunes the segment the follower's cursor ends.
	if _, err := ldrN.m.CheckpointAll(context.Background()); err != nil {
		t.Fatalf("CheckpointAll: %v", err)
	}
	workloadPhase2(t, ldrN.m)
	tail := ldrN.st.ReplTail()
	waitUntil(t, 10*time.Second, "post-barrier catch-up", caughtUp(fol, ldrN.st, tail))
	drain(t, folN.m)
	if got, want := stateKey(folN.m), stateKey(ldrN.m); got != want {
		t.Fatalf("state diverged across barrier\n got:\n%s\nwant:\n%s", got, want)
	}
	if st := fol.Stats(); st.Gaps != 0 || st.Resyncs != 0 {
		t.Fatalf("barrier forced gaps/resyncs: %+v — cursor normalization failed", st)
	}
}

// TestFaultConn exercises the injector itself: delay, duplicate-write
// tolerance on the ack path, and partition healing.
func TestFaultConn(t *testing.T) {
	ldrN := newNode(t, "n1", store.SyncNone, false)
	defer ldrN.close()
	a := mustCreate(t, ldrN.m, "alpha", pts(3))
	step(t, a, serve.Add(0.8, 0.4))
	step(t, a, serve.SetRadius(1, 2))
	tail := ldrN.st.ReplTail()
	want := stateKey(ldrN.m)
	ldr, ln := startLeader(t, ldrN, 1, nil)
	defer ldr.Close()

	// Delayed reads: cheap latency on every frame must not disturb the
	// stream.
	folN := newNode(t, "n2", store.SyncNone, true)
	defer folN.close()
	var fc *repl.FaultConn
	fol := newFollower(t, folN, ln.Addr().String(), func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		fc = repl.NewFaultConn(c)
		fc.DelayReads(time.Millisecond)
		return fc, nil
	})
	go fol.Run()
	defer fol.Stop()
	waitUntil(t, 10*time.Second, "delayed catch-up", caughtUp(fol, ldrN.st, tail))
	drain(t, folN.m)
	if got := stateKey(folN.m); got != want {
		t.Fatalf("delayed run diverged\n got:\n%s\nwant:\n%s", got, want)
	}
	waitUntil(t, 5*time.Second, "ack horizon", func() bool {
		return ldr.Acked("n2") == tail
	})

	// Duplicated writes on the established stream: every ack now arrives
	// twice, and the leader must tolerate it. (Armed after the handshake
	// — duplicating hello/subscribe is a protocol violation the leader
	// correctly refuses.)
	fc.DuplicateWrites(true)
	step(t, a, serve.Move(1, 0.6, 0.1))
	tailDup := ldrN.st.ReplTail()
	waitUntil(t, 10*time.Second, "catch-up through duplicated acks", caughtUp(fol, ldrN.st, tailDup))
	waitUntil(t, 5*time.Second, "acks through duplication", func() bool {
		return ldr.Acked("n2") == tailDup
	})

	// Partition: blackhole the live connection; the follower must drop
	// it, reconnect, and keep following new traffic.
	fc.Partition(50 * time.Millisecond)
	step(t, a, serve.Move(0, 0.5, 0.5))
	tail2 := ldrN.st.ReplTail()
	waitUntil(t, 10*time.Second, "post-partition catch-up", caughtUp(fol, ldrN.st, tail2))
	drain(t, folN.m)
	if got, wantS := stateKey(folN.m), stateKey(ldrN.m); got != wantS {
		t.Fatalf("post-partition diverged\n got:\n%s\nwant:\n%s", got, wantS)
	}
	if st := fol.Stats(); st.Gaps != 0 {
		t.Fatalf("partition produced gaps: %+v", st)
	}
}

// TestStaleEpochRefused pins the epoch fence: a follower pinned to a
// past epoch is refused and makes no progress, one pinned to the
// current epoch streams normally.
func TestStaleEpochRefused(t *testing.T) {
	ldrN := newNode(t, "n1", store.SyncNone, false)
	defer ldrN.close()
	a := mustCreate(t, ldrN.m, "alpha", pts(3))
	step(t, a, serve.Add(0.8, 0.4))
	tail := ldrN.st.ReplTail()
	ldr, ln := startLeader(t, ldrN, 7, nil)
	defer ldr.Close()

	staleN := newNode(t, "stale", store.SyncNone, true)
	defer staleN.close()
	stale, err := repl.NewFollower(repl.FollowerConfig{
		Manager: staleN.m, NodeID: "stale", LeaderAddr: ln.Addr().String(),
		Epoch: 6, Backoff: time.Millisecond, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	go stale.Run()
	time.Sleep(100 * time.Millisecond)
	stale.Stop()
	if st := stale.Stats(); st.Frames != 0 {
		t.Fatalf("stale-epoch follower received %d frames, want 0", st.Frames)
	}
	if !stale.Cursor().IsZero() {
		t.Fatalf("stale-epoch follower advanced to %v", stale.Cursor())
	}

	okN := newNode(t, "ok", store.SyncNone, true)
	defer okN.close()
	okF, err := repl.NewFollower(repl.FollowerConfig{
		Manager: okN.m, NodeID: "ok", LeaderAddr: ln.Addr().String(),
		Epoch: 7, Backoff: time.Millisecond, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	go okF.Run()
	defer okF.Stop()
	waitUntil(t, 10*time.Second, "pinned-epoch catch-up", caughtUp(okF, ldrN.st, tail))
	if got := okF.LeaderEpoch(); got != 7 {
		t.Fatalf("LeaderEpoch = %d, want 7", got)
	}
}

// TestFollowerRejectsCoalescingManager pins the replication contract at
// construction time: a manager that coalesces batches would merge
// mutations across record boundaries and fall behind the leader's seq
// space, so NewFollower must refuse it — and must not leave the manager
// read-only on the way out.
func TestFollowerRejectsCoalescingManager(t *testing.T) {
	st := openStore(t, t.TempDir(), store.SyncNone)
	defer st.Close()
	m := serve.NewManager(serve.Config{Shards: 1, Store: st})
	defer m.Close(context.Background())
	_, err := repl.NewFollower(repl.FollowerConfig{
		Manager: m, NodeID: "bad", LeaderAddr: "127.0.0.1:1", Registry: obs.NewRegistry(),
	})
	if err == nil {
		t.Fatal("NewFollower accepted a manager built without NoCoalesce")
	}
	if m.ReadOnly() {
		t.Fatal("refused NewFollower left the manager read-only")
	}
}

// TestFollowerStopDuringDial pins the Stop/session race: a Stop landing
// after Dial returns but before the connection is recorded must still
// terminate Run and close the fresh connection, or Promote's wg.Wait
// would block forever behind a frame loop nobody can reach.
func TestFollowerStopDuringDial(t *testing.T) {
	folN := newNode(t, "n2", store.SyncNone, true)
	defer folN.close()
	entered := make(chan struct{})
	release := make(chan struct{})
	peer := make(chan net.Conn, 1)
	dial := func(string) (net.Conn, error) {
		close(entered)
		<-release
		c1, c2 := net.Pipe()
		peer <- c2
		return c1, nil
	}
	fol := newFollower(t, folN, "unused", dial)
	done := make(chan error, 1)
	go func() { done <- fol.Run() }()
	<-entered
	fol.Stop() // f.conn is still nil: Stop has nothing to close yet
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never returned after Stop raced the dial")
	}
	c2 := <-peer
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c2.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("peer read err = %v, want io.EOF (connection closed by the stopped follower)", err)
	}
}

// TestFollowerStuckWhenLogStartPruned pins the no-bootstrap limitation
// as a *surfaced* state: once the leader prunes segment 1, a follower
// forced to subscribe from cursor zero can never catch up — it must say
// so (StuckResync, the pruned counter, a loud log line) instead of
// silently serving stale reads while retrying forever.
func TestFollowerStuckWhenLogStartPruned(t *testing.T) {
	st, err := store.Open(store.Options{
		Dir: t.TempDir(), Sync: store.SyncNone, SegmentBytes: 128, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 40; i++ {
		if err := st.Append(store.Record{
			Kind: store.RecordBatch, Session: "s", Seq: uint64(i + 1), Payload: []byte("padding-payload"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	tail := st.ReplTail()
	if tail.Seg < 3 {
		t.Fatalf("want >=3 segments for the prune, tail at %v", tail)
	}
	if _, err := st.Prune(tail.Seg); err != nil {
		t.Fatal(err)
	}

	ldr := repl.NewLeader(repl.LeaderConfig{
		Store: st, NodeID: "n1", Epoch: 1, Poll: 5 * time.Millisecond, Registry: obs.NewRegistry(),
	})
	defer ldr.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ldr.Serve(ln)

	folN := newNode(t, "n2", store.SyncNone, true)
	defer folN.close()
	var logged atomic.Int32
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Manager: folN.m, NodeID: "n2", LeaderAddr: ln.Addr().String(),
		Backoff: time.Millisecond, Registry: obs.NewRegistry(),
		Logf:    func(string, ...any) { logged.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	go fol.Run()
	defer fol.Stop()

	waitUntil(t, 10*time.Second, "stuck-resync surfaced", func() bool {
		s := fol.Stats()
		return s.StuckResync && s.Pruned > 0
	})
	if logged.Load() == 0 {
		t.Fatal("stuck-resync transition was never logged")
	}
	if s := fol.Stats(); s.Resyncs != 0 {
		t.Fatalf("zero-cursor follower counted a resync that cannot help: %+v", s)
	}
}
