package repl

import (
	"io"
	"net"
	"sync"
	"time"
)

// FaultConn wraps a net.Conn with deterministic, byte-precise network
// faults — the knob set the replication test harness turns. It injects
// on either side of the stream: wrap the follower's dialed connection
// (Follower.Dial) to tear the read path, or the leader's accepted
// connection (Leader.WrapConn) to tear the write path. All faults are
// one connection deep on purpose: replication's contract is that any
// single connection may die at any byte, and the follower heals by
// reconnecting from its cursor — so the harness kills connections, and
// correctness is judged on the state that survives.
type FaultConn struct {
	net.Conn

	mu          sync.Mutex
	readBudget  int64 // bytes until reads fail; -1 = unlimited
	writeBudget int64 // bytes until writes fail; -1 = unlimited
	readDelay   time.Duration
	stallUntil  time.Time // partition: block reads/writes, then fail
	dupWrites   bool      // write every buffer twice (duplicate delivery)
}

// NewFaultConn wraps c with no faults armed.
func NewFaultConn(c net.Conn) *FaultConn {
	return &FaultConn{Conn: c, readBudget: -1, writeBudget: -1}
}

// CutReadAfter arms a cut: after n more bytes are read the connection
// fails mid-frame (reads return ErrUnexpectedEOF and the underlying
// conn closes). n = 0 cuts the next read.
func (f *FaultConn) CutReadAfter(n int64) {
	f.mu.Lock()
	f.readBudget = n
	f.mu.Unlock()
}

// CutWriteAfter arms a cut on the write path: after n more bytes the
// peer sees a torn stream (writes fail and the conn closes).
func (f *FaultConn) CutWriteAfter(n int64) {
	f.mu.Lock()
	f.writeBudget = n
	f.mu.Unlock()
}

// DelayReads adds a fixed delay before every read — cheap latency
// injection to shake out timing assumptions.
func (f *FaultConn) DelayReads(d time.Duration) {
	f.mu.Lock()
	f.readDelay = d
	f.mu.Unlock()
}

// Partition blackholes the connection for d: reads and writes block
// until the window passes, then fail (a partitioned TCP peer looks like
// a stall that ends in a broken connection, not a clean close).
func (f *FaultConn) Partition(d time.Duration) {
	f.mu.Lock()
	f.stallUntil = time.Now().Add(d)
	f.mu.Unlock()
}

// DuplicateWrites makes every subsequent Write deliver its bytes twice.
// Only meaningful for idempotent message flows (acks); duplicating a
// framed request stream is a protocol error the peer must reject.
func (f *FaultConn) DuplicateWrites(on bool) {
	f.mu.Lock()
	f.dupWrites = on
	f.mu.Unlock()
}

// stall blocks through an armed partition window and reports whether
// one fired.
func (f *FaultConn) stall() bool {
	f.mu.Lock()
	until := f.stallUntil
	f.mu.Unlock()
	if until.IsZero() || !time.Now().Before(until) {
		return !until.IsZero()
	}
	time.Sleep(time.Until(until))
	return true
}

func (f *FaultConn) Read(p []byte) (int, error) {
	f.mu.Lock()
	delay := f.readDelay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if f.stall() {
		f.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	}
	f.mu.Lock()
	budget := f.readBudget
	f.mu.Unlock()
	if budget >= 0 && int64(len(p)) > budget {
		p = p[:budget]
	}
	if len(p) == 0 && budget >= 0 {
		f.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	}
	n, err := f.Conn.Read(p)
	if budget >= 0 {
		f.mu.Lock()
		f.readBudget -= int64(n)
		f.mu.Unlock()
	}
	return n, err
}

func (f *FaultConn) Write(p []byte) (int, error) {
	if f.stall() {
		f.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	}
	f.mu.Lock()
	budget := f.writeBudget
	dup := f.dupWrites
	f.mu.Unlock()
	if budget >= 0 && int64(len(p)) >= budget {
		// Deliver exactly the budget, then tear the stream: the peer sees
		// budget bytes and a broken conn — a frame cut at a precise byte.
		if budget > 0 {
			f.Conn.Write(p[:budget])
		}
		f.mu.Lock()
		f.writeBudget = 0
		f.mu.Unlock()
		f.Conn.Close()
		return int(budget), io.ErrUnexpectedEOF
	}
	n, err := f.Conn.Write(p)
	if err == nil && dup {
		f.Conn.Write(p[:n])
	}
	if budget >= 0 {
		f.mu.Lock()
		f.writeBudget -= int64(n)
		f.mu.Unlock()
	}
	return n, err
}
