// Package encode serializes instances and topologies so experiments can
// be dumped, diffed, and replayed: point sets and edge lists as CSV
// (stable, diff-friendly) with strict round-trip guarantees.
//
// Formats:
//
//	instance CSV:  header "x,y", one node per line, index = line order
//	topology CSV:  header "u,v,w", one undirected edge per line
//
// Coordinates use %.17g so every float64 round-trips exactly.
package encode

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/graph"
)

// WriteInstance writes pts as instance CSV.
func WriteInstance(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("x,y\n"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%.17g,%.17g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadInstance parses instance CSV written by WriteInstance.
func ReadInstance(r io.Reader) ([]geom.Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("encode: empty instance file")
	}
	if got := strings.TrimSpace(sc.Text()); got != "x,y" {
		return nil, fmt.Errorf("encode: bad instance header %q", got)
	}
	var pts []geom.Point
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("encode: line %d: want 2 fields, got %d", line, len(parts))
		}
		x, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("encode: line %d: %v", line, err)
		}
		y, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("encode: line %d: %v", line, err)
		}
		pts = append(pts, geom.Pt(x, y))
	}
	return pts, sc.Err()
}

// WriteTopology writes g as topology CSV, edges in canonical sorted
// order so equal topologies serialize identically.
func WriteTopology(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "u,v,w\n"); err != nil {
		return err
	}
	for _, e := range g.SortedEdges() {
		if _, err := fmt.Fprintf(bw, "%d,%d,%.17g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTopology parses topology CSV into a graph over n nodes. Edges
// referencing nodes outside [0, n) are an error.
func ReadTopology(r io.Reader, n int) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("encode: empty topology file")
	}
	if got := strings.TrimSpace(sc.Text()); got != "u,v,w" {
		return nil, fmt.Errorf("encode: bad topology header %q", got)
	}
	g := graph.New(n)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("encode: line %d: want 3 fields, got %d", line, len(parts))
		}
		u, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("encode: line %d: %v", line, err)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("encode: line %d: %v", line, err)
		}
		w, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("encode: line %d: %v", line, err)
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("encode: line %d: edge (%d,%d) outside [0,%d)", line, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("encode: line %d: self-loop at %d", line, u)
		}
		g.AddEdge(u, v, w)
	}
	return g, sc.Err()
}
