package encode

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/topology"
)

func TestInstanceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := gen.UniformSquare(rng, 100, 5)
	// Include awkward floats.
	pts = append(pts, gen.ExpChainUnit(20)...)
	var buf bytes.Buffer
	if err := WriteInstance(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("len %d vs %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d: %v vs %v — %%.17g must round-trip exactly", i, got[i], pts[i])
		}
	}
}

func TestTopologyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := gen.UniformSquare(rng, 60, 3)
	g := topology.MST(pts)
	var buf bytes.Buffer
	if err := WriteTopology(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTopology(&buf, len(pts))
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != g.M() {
		t.Fatalf("edges %d vs %d", got.M(), g.M())
	}
	for _, e := range g.Edges() {
		w, ok := got.EdgeWeight(e.U, e.V)
		if !ok || w != e.W {
			t.Fatalf("edge (%d,%d): %v,%v", e.U, e.V, w, ok)
		}
	}
}

func TestTopologySerializationCanonical(t *testing.T) {
	// Two graphs with identical edges inserted in different orders must
	// serialize byte-identically.
	rng := rand.New(rand.NewSource(3))
	pts := gen.UniformSquare(rng, 40, 2)
	g := topology.MST(pts)
	var a, b bytes.Buffer
	WriteTopology(&a, g)
	// Rebuild by reading back (different internal insertion order).
	g2, _ := ReadTopology(bytes.NewReader(a.Bytes()), len(pts))
	WriteTopology(&b, g2)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization is not canonical")
	}
}

func TestReadInstanceErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header\n1,2\n",
		"x,y\n1\n",
		"x,y\nfoo,2\n",
		"x,y\n1,bar\n",
	}
	for _, c := range cases {
		if _, err := ReadInstance(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
	// Blank lines are tolerated.
	pts, err := ReadInstance(strings.NewReader("x,y\n1,2\n\n3,4\n"))
	if err != nil || len(pts) != 2 {
		t.Errorf("blank-line input failed: %v %d", err, len(pts))
	}
}

func TestReadTopologyErrors(t *testing.T) {
	cases := []string{
		"",
		"bad\n",
		"u,v,w\n1\n",
		"u,v,w\nx,1,2\n",
		"u,v,w\n0,x,2\n",
		"u,v,w\n0,1,x\n",
		"u,v,w\n0,9,1\n",  // out of range for n=3
		"u,v,w\n-1,1,1\n", // negative
		"u,v,w\n1,1,1\n",  // self-loop
	}
	for _, c := range cases {
		if _, err := ReadTopology(strings.NewReader(c), 3); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestSpecialFloatValues(t *testing.T) {
	var buf bytes.Buffer
	// Subnormal-scale coordinates must round-trip.
	src := gen.ExpChain(3, math.SmallestNonzeroFloat64*1e10)
	if err := WriteInstance(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("subnormal point %d: %v vs %v", i, got[i], src[i])
		}
	}
}

// brokenWriter fails after the first n writes, exercising the error
// propagation paths of the writers.
type brokenWriter struct{ left int }

func (b *brokenWriter) Write(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, errSink
	}
	b.left--
	return len(p), nil
}

var errSink = &sinkErr{}

type sinkErr struct{}

func (*sinkErr) Error() string { return "sink failed" }

func TestWriteErrorsPropagate(t *testing.T) {
	pts := gen.ExpChain(8, 1)
	g := topology.MST(pts)
	// Instance writer: header write failure and body write failure both
	// surface. bufio coalesces small writes, so force tiny buffers by
	// writing enough points that Flush must hit the sink.
	if err := WriteInstance(&brokenWriter{left: 0}, pts); err == nil {
		t.Error("instance write to a dead sink should fail")
	}
	if err := WriteTopology(&brokenWriter{left: 0}, g); err == nil {
		t.Error("topology write to a dead sink should fail")
	}
}
