package encode

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadInstance feeds arbitrary bytes to the parser: it must never
// panic, and anything it accepts must survive a write/read round-trip.
func FuzzReadInstance(f *testing.F) {
	f.Add("x,y\n1,2\n")
	f.Add("x,y\n1e308,-1e-308\n0.1,0.2\n")
	f.Add("x,y\nNaN,Inf\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		pts, err := ReadInstance(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteInstance(&buf, pts); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(pts) {
			t.Fatalf("round-trip length %d vs %d", len(again), len(pts))
		}
		for i := range pts {
			// NaN coordinates compare unequal to themselves; accept them
			// as long as both sides are NaN.
			if pts[i] != again[i] && !(pts[i].X != pts[i].X || pts[i].Y != pts[i].Y) {
				t.Fatalf("point %d: %v vs %v", i, pts[i], again[i])
			}
		}
	})
}

// FuzzReadTopology: parser robustness and round-trip for the edge-list
// format.
func FuzzReadTopology(f *testing.F) {
	f.Add("u,v,w\n0,1,0.5\n", 4)
	f.Add("u,v,w\n", 0)
	f.Add("u,v,w\n3,2,1\n1,2,7\n", 5)
	f.Fuzz(func(t *testing.T, input string, n int) {
		if n < 0 || n > 1000 {
			return
		}
		g, err := ReadTopology(strings.NewReader(input), n)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTopology(&buf, g); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadTopology(&buf, n)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.M() != g.M() {
			t.Fatalf("round-trip edges %d vs %d", again.M(), g.M())
		}
	})
}
