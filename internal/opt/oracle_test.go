package opt_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/opt"
	"repro/internal/oracle"
)

// Differential tests against internal/oracle: the branch-and-bound and
// both annealers search heavily pruned, incrementally evaluated spaces;
// the oracle enumerates the same space with quadratic recomputes. At
// n ≤ 8 the two must agree exactly on the optimum, and every result's
// claimed interference must match a naive recompute of its radii.

// tinyInstances yields small instances across the shapes the searches
// care about: dense squares, near-boundary chains, and a disconnected
// pair of clusters.
func tinyInstances(rng *rand.Rand, trial int) []geom.Point {
	switch trial % 4 {
	case 0:
		return gen.UniformSquare(rng, 2+rng.Intn(7), 1.5)
	case 1:
		return gen.ExpChain(4+rng.Intn(5), 1)
	case 2:
		return gen.HighwayUniform(rng, 4+rng.Intn(5), 2)
	default:
		left := gen.UniformSquare(rng, 2+rng.Intn(3), 0.8)
		right := gen.UniformSquare(rng, 2+rng.Intn(3), 0.8)
		for i := range right {
			right[i] = right[i].Add(geom.Pt(10, 0))
		}
		return append(left, right...)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 24; trial++ {
		pts := tinyInstances(rng, trial)
		want, _ := oracle.BruteForceOptimal(pts)
		res := opt.Exact(pts)
		if !res.Exact {
			t.Fatalf("trial %d (n=%d): search budget exhausted on a tiny instance", trial, len(pts))
		}
		if res.Interference != want {
			t.Fatalf("trial %d (n=%d): Exact found %d, brute force %d", trial, len(pts), res.Interference, want)
		}
		if got := oracle.Interference(pts, res.Radii).Max(); got != res.Interference {
			t.Fatalf("trial %d: claimed %d but radii evaluate to %d", trial, res.Interference, got)
		}
		if !oracle.Feasible(pts, res.Radii) {
			t.Fatalf("trial %d: Exact returned infeasible radii", trial)
		}
		if got := oracle.InterferenceOf(pts, res.Topology); got > res.Interference {
			t.Fatalf("trial %d: realized topology has I=%d above the radii's %d", trial, got, res.Interference)
		}
	}
}

func TestAnnealersAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 16; trial++ {
		pts := tinyInstances(rng, trial)
		want, _ := oracle.BruteForceOptimal(pts)
		for name, run := range map[string]func() opt.Result{
			"Anneal":     func() opt.Result { return opt.Anneal(pts, rand.New(rand.NewSource(int64(trial))), 400) },
			"AnnealFull": func() opt.Result { return opt.AnnealFull(pts, rand.New(rand.NewSource(int64(trial))), 400) },
		} {
			res := run()
			if res.Interference < want {
				t.Fatalf("trial %d: %s reported %d below the true optimum %d", trial, name, res.Interference, want)
			}
			if got := oracle.Interference(pts, res.Radii).Max(); got != res.Interference {
				t.Fatalf("trial %d: %s claimed %d but radii evaluate to %d", trial, name, res.Interference, got)
			}
			if !oracle.Feasible(pts, res.Radii) {
				t.Fatalf("trial %d: %s returned infeasible radii", trial, name)
			}
		}
	}
}

// TestAnnealWalksMatch pins the documented contract that Anneal and
// AnnealFull draw identically from their RNG and hence walk the same move
// sequence: same seed, same iteration budget, same final best.
func TestAnnealWalksMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		pts := gen.UniformSquare(rng, 20+rng.Intn(20), 2)
		a := opt.Anneal(pts, rand.New(rand.NewSource(77)), 2000)
		b := opt.AnnealFull(pts, rand.New(rand.NewSource(77)), 2000)
		if a.Interference != b.Interference {
			t.Fatalf("trial %d: incremental anneal %d, full anneal %d", trial, a.Interference, b.Interference)
		}
		for u := range a.Radii {
			if a.Radii[u] != b.Radii[u] {
				t.Fatalf("trial %d: radius of %d differs: %v vs %v", trial, u, a.Radii[u], b.Radii[u])
			}
		}
	}
}
