package opt

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/highway"
	"repro/internal/udg"
)

func TestExactTrivial(t *testing.T) {
	r := Exact(nil)
	if r.Interference != 0 || !r.Exact {
		t.Error("empty instance wrong")
	}
	r = Exact([]geom.Point{geom.Pt(0, 0)})
	if r.Interference != 0 || r.Topology.M() != 0 {
		t.Error("singleton instance wrong")
	}
	r = Exact([]geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)})
	if r.Interference != 1 {
		t.Errorf("pair optimum = %d, want 1", r.Interference)
	}
}

func TestExactResultIsFeasibleAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(8)
		pts := gen.UniformSquare(rng, n, 1.6)
		res := Exact(pts)
		if !res.Exact {
			t.Fatalf("trial %d: budget exhausted on tiny instance", trial)
		}
		base := udg.Build(pts)
		if !graph.SameComponents(base, res.Topology) {
			t.Fatalf("trial %d: optimal topology breaks connectivity", trial)
		}
		// The claimed interference must match the radius assignment and
		// upper-bound the realized topology's interference.
		if got := core.InterferenceRadii(pts, res.Radii).Max(); got != res.Interference {
			t.Fatalf("trial %d: radii interference %d != claimed %d", trial, got, res.Interference)
		}
		if got := core.Interference(pts, res.Topology).Max(); got > res.Interference {
			t.Fatalf("trial %d: realized topology %d > claimed %d", trial, got, res.Interference)
		}
	}
}

func TestExactNeverWorseThanHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(7)
		pts := gen.UniformSquare(rng, n, 1.2)
		res := Exact(pts)
		mst := graph.EuclideanMST(pts, udg.Radius)
		mstI := core.Interference(pts, mst).Max()
		if res.Interference > mstI {
			t.Fatalf("trial %d: exact %d worse than MST %d", trial, res.Interference, mstI)
		}
	}
}

// TestExactBruteForceCrossCheck verifies the radius-assignment optimum
// against a brute-force enumeration of all radius assignments on very
// small instances.
func TestExactBruteForceCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(4) // up to 5 nodes
		pts := gen.UniformSquare(rng, n, 1.3)
		res := Exact(pts)
		want := bruteForceOpt(pts)
		if res.Interference != want {
			t.Fatalf("trial %d (n=%d): exact %d, brute force %d", trial, n, res.Interference, want)
		}
	}
}

// bruteForceOpt enumerates every radius assignment (each node chooses a
// distance to another node, or 0) and returns the minimum interference
// over assignments preserving UDG connectivity.
func bruteForceOpt(pts []geom.Point) int {
	n := len(pts)
	base := udg.Build(pts)
	wantLabel, wantK := base.Components()
	cands := make([][]float64, n)
	for u := range pts {
		cands[u] = []float64{0}
		for v := range pts {
			if v != u {
				if d := pts[u].Dist(pts[v]); d <= udg.Radius*(1+1e-9) {
					cands[u] = append(cands[u], d)
				}
			}
		}
	}
	best := 1 << 30
	radii := make([]float64, n)
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			g := MutualGraph(pts, radii)
			label, k := g.Components()
			if k != wantK {
				return
			}
			for i := range label {
				if label[i] != wantLabel[i] {
					return
				}
			}
			if iv := core.InterferenceRadii(pts, radii).Max(); iv < best {
				best = iv
			}
			return
		}
		for _, r := range cands[u] {
			radii[u] = r
			rec(u + 1)
		}
	}
	rec(0)
	return best
}

// TestTheorem52ExactMatchesLowerBound runs the exact solver on small
// exponential chains and confirms (a) OPT is Θ(√n) — it stays within the
// Lemma 5.5-style constants of √n — and (b) AExp is asymptotically
// optimal: AExp/OPT stays below a small constant.
func TestTheorem52ExactMatchesLowerBound(t *testing.T) {
	for _, n := range []int{4, 6, 8, 10, 12} {
		pts := gen.ExpChain(n, 1)
		res := Exact(pts)
		if !res.Exact {
			t.Fatalf("n=%d: exact search exhausted its budget", n)
		}
		aexp := core.Interference(pts, highway.AExp(pts)).Max()
		if aexp < res.Interference {
			t.Fatalf("n=%d: AExp %d beat the 'optimal' %d — solver bug", n, aexp, res.Interference)
		}
		if aexp > 3*res.Interference {
			t.Errorf("n=%d: AExp %d more than 3x optimal %d", n, aexp, res.Interference)
		}
		// Theorem 5.2 (asymptotic): OPT = Ω(√n). With the Lemma 5.5
		// constant, √(n/2) is a safe concrete floor for these sizes.
		if float64(res.Interference*res.Interference) < float64(n)/2-1e-9 {
			t.Errorf("n=%d: OPT %d below √(n/2) — contradicts Theorem 5.2", n, res.Interference)
		}
	}
}

func TestAnnealFeasibleAndNotWorseThanMST(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	for trial := 0; trial < 5; trial++ {
		pts := gen.HighwayUniform(rng, 30, 3)
		base := udg.Build(pts)
		res := Anneal(pts, rng, 2000)
		if res.Exact {
			t.Error("Anneal must not claim exactness")
		}
		if !graph.SameComponents(base, res.Topology) {
			t.Fatalf("trial %d: annealed topology breaks connectivity", trial)
		}
		mstI := core.Interference(pts, graph.EuclideanMST(pts, udg.Radius)).Max()
		if res.Interference > mstI {
			t.Fatalf("trial %d: anneal %d worse than its MST start %d", trial, res.Interference, mstI)
		}
		if got := core.InterferenceRadii(pts, res.Radii).Max(); got != res.Interference {
			t.Fatalf("trial %d: radii interference %d != claimed %d", trial, got, res.Interference)
		}
	}
}

func TestAnnealEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	res := Anneal(nil, rng, 100)
	if res.Interference != 0 {
		t.Error("empty anneal wrong")
	}
}

func TestExactPanicsOnLargeInstance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized instance should panic")
		}
	}()
	Exact(make([]geom.Point, MaxExactN+1))
}

func TestMutualGraphSemantics(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.4, 0), geom.Pt(0.9, 0)}
	radii := []float64{0.4, 0.5, 0.5}
	g := MutualGraph(pts, radii)
	if !g.HasEdge(0, 1) {
		t.Error("0-1 mutually reachable")
	}
	if !g.HasEdge(1, 2) {
		t.Error("1-2 mutually reachable")
	}
	if g.HasEdge(0, 2) {
		t.Error("0-2 out of both radii")
	}
	// One-sided reach is not an edge.
	radii = []float64{1, 0.1, 0.1}
	g = MutualGraph(pts, radii)
	if g.M() != 0 {
		t.Errorf("one-sided radii should give no edges, got %d", g.M())
	}
}

func BenchmarkExactExpChain10(b *testing.B) {
	pts := gen.ExpChain(10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(pts)
	}
}

func TestExactBudgetExhaustionStillFeasible(t *testing.T) {
	// A starved budget must degrade to an anytime heuristic: the result is
	// feasible (the seed at worst) and flagged inexact.
	pts := gen.ExpChain(12, 1)
	res := ExactBudget(pts, 10)
	if res.Exact {
		t.Fatal("10-node budget cannot prove optimality on a 12-node chain")
	}
	if !res.Topology.Connected() {
		t.Fatal("budgeted result must stay feasible")
	}
	full := Exact(pts)
	if res.Interference < full.Interference {
		t.Fatalf("budgeted %d beat proven optimum %d", res.Interference, full.Interference)
	}
	// And the visited counter respects the budget.
	if res.Visited > 10 {
		t.Errorf("visited %d exceeds the budget", res.Visited)
	}
}

// TestAnnealMatchesAnnealFull: the incremental annealer and the
// recompute-everything reference draw identically from the RNG and apply
// identical accept/reject decisions, so with the same seed they must
// return the same interference and radii — on every instance shape.
func TestAnnealMatchesAnnealFull(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	instances := [][]geom.Point{
		gen.UniformSquare(rng, 60, 3),
		gen.UniformSquare(rng, 120, 2),  // dense: one component
		gen.UniformSquare(rng, 60, 12),  // sparse: many components
		gen.HighwayUniform(rng, 80, 20), // 1-D
		gen.ExpChain(12, 1),             // exponential distances
	}
	for i, pts := range instances {
		fast := Anneal(pts, rand.New(rand.NewSource(int64(500+i))), 800)
		full := AnnealFull(pts, rand.New(rand.NewSource(int64(500+i))), 800)
		if fast.Interference != full.Interference {
			t.Fatalf("instance %d: incremental %d vs reference %d", i, fast.Interference, full.Interference)
		}
		for u := range fast.Radii {
			if fast.Radii[u] != full.Radii[u] {
				t.Fatalf("instance %d: radii diverge at node %d: %v vs %v", i, u, fast.Radii[u], full.Radii[u])
			}
		}
	}
}

// TestFeasCheckerMatchesMutualGraph cross-validates the union-find
// feasibility checker against the materialized mutual-reachability graph
// on random radius assignments.
func TestFeasCheckerMatchesMutualGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		side := 1 + rng.Float64()*4
		pts := gen.UniformSquare(rng, n, side)
		base := udg.Build(pts)
		wantLabel, wantK := base.Components()
		ev := core.NewEvaluator(pts)
		fc := newFeasChecker(pts, ev.Grid(), wantK)
		radii := make([]float64, n)
		for step := 0; step < 30; step++ {
			for u := range radii {
				switch rng.Intn(3) {
				case 0:
					radii[u] = 0
				default:
					radii[u] = rng.Float64() * 1.5
				}
			}
			g := MutualGraph(pts, radii)
			label, k := g.Components()
			want := k == wantK
			if want {
				for i := range label {
					if label[i] != wantLabel[i] {
						want = false
						break
					}
				}
			}
			if got := fc.feasible(radii); got != want {
				t.Fatalf("trial %d step %d: feasChecker %v, MutualGraph %v (radii=%v)", trial, step, got, want, radii)
			}
		}
	}
}

// TestCandidatesGridMatchesNaive: the grid-accelerated candidate lists
// must equal the all-pairs ones bit for bit.
func TestCandidatesGridMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(50)
		pts := gen.UniformSquare(rng, n, 1+rng.Float64()*5)
		base := udg.Build(pts)
		ev := core.NewEvaluator(pts)
		naive := candidates(pts, base)
		grid := candidatesGrid(pts, base, ev.Grid())
		for u := range naive {
			if len(naive[u]) != len(grid[u]) {
				t.Fatalf("trial %d node %d: %d vs %d candidates", trial, u, len(naive[u]), len(grid[u]))
			}
			for i := range naive[u] {
				if naive[u][i] != grid[u][i] {
					t.Fatalf("trial %d node %d cand %d: %v vs %v", trial, u, i, naive[u][i], grid[u][i])
				}
			}
		}
	}
}
