// Package opt computes minimum-interference connectivity-preserving
// topologies — the optimum the paper's theorems compare against.
//
// # Radius-assignment search
//
// The receiver-centric interference of a topology depends only on its
// radius vector (r_u): I(v) = |{u ≠ v : |u,v| ≤ r_u}|. Conversely, given
// any radius assignment r, the mutual-reachability graph
//
//	Ĝ(r) = { {u,v} : |u,v| ≤ min(r_u, r_v) and |u,v| ≤ 1 }
//
// contains every topology realizing r, and any spanning forest of Ĝ(r)
// realizes radii pointwise ≤ r, hence interference ≤ I(r). The minimum
// interference over connectivity-preserving topologies therefore equals
// the minimum of I(r) over radius assignments r (each r_u a distance from
// u to some other node) whose Ĝ(r) preserves the UDG's components.
// Searching radius vectors (≤ n candidate values per node) is
// exponentially smaller than searching spanning trees (n^{n−2} of them)
// and admits strong pruning:
//
//   - interference is monotone in every radius, so candidates are tried
//     in ascending order and a pruned radius prunes all larger ones;
//   - every node of a non-singleton UDG component needs some neighbor, so
//     r_u is at least the distance to u's nearest UDG neighbor; and
//   - a node whose assigned radius cannot reach any mutually reachable
//     partner (assigned or future) is a dead end.
//
// Exact is a depth-first branch-and-bound over this space, practical to
// n ≈ 14 — enough to verify Theorem 5.2 and the A_apx approximation
// ratios at small scale. Anneal is a simulated-annealing heuristic over
// the same space for larger instances; it yields upper bounds on the
// optimum and is labeled as such in experiments.
package opt

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/udg"
)

// Result is a minimum-interference topology search outcome.
type Result struct {
	// Interference is I(G') of the best topology found.
	Interference int
	// Radii is the radius assignment attaining it.
	Radii []float64
	// Topology is a spanning forest of the mutual-reachability graph of
	// Radii (one tree per UDG component).
	Topology *graph.Graph
	// Exact records whether the search proved optimality (false when the
	// node budget ran out or the annealer produced the result).
	Exact bool
	// Visited counts search-tree nodes (reporting/ablation only).
	Visited int64
}

// MaxExactN bounds the instance size Exact accepts; beyond it the search
// space stops being practical even with pruning.
const MaxExactN = 16

// defaultBudget caps the number of search-tree nodes Exact explores
// before giving up on the optimality proof.
const defaultBudget = 200_000_000

// Exact computes the minimum-interference connectivity-preserving
// topology by branch-and-bound over radius assignments. It panics when
// len(pts) > MaxExactN. If the internal node budget is exhausted the best
// topology found so far is returned with Exact == false.
func Exact(pts []geom.Point) Result {
	return ExactBudget(pts, defaultBudget)
}

// ExactBudget is Exact with an explicit search budget (search-tree nodes
// explored before giving up on the optimality proof). Small budgets turn
// the solver into an anytime heuristic that still returns the best
// topology found, flagged Exact == false.
func ExactBudget(pts []geom.Point, budget int64) Result {
	return ExactBudgetWith(core.GraphMeasure, pts, budget)
}

// ExactWith is Exact under an arbitrary interference measure; the
// feasibility constraint (preserving UDG components) is measure-
// independent, so only the objective changes.
func ExactWith(factory core.MeasureFactory, pts []geom.Point) Result {
	return ExactBudgetWith(factory, pts, defaultBudget)
}

// ExactBudgetWith is ExactBudget generalized over the measure engine.
// The branch-and-bound relies only on the core.Measure contract:
// monotonicity of Max in every radius (true for disk counts and for
// power sums alike) and exact Snapshot/Restore.
func ExactBudgetWith(factory core.MeasureFactory, pts []geom.Point, budget int64) Result {
	n := len(pts)
	if n > MaxExactN {
		panic("opt: instance too large for exact search; use Anneal")
	}
	if n == 0 {
		return Result{Topology: graph.New(0), Exact: true}
	}
	sp := obs.Start("opt.exact")
	defer sp.End()
	base := udg.Build(pts)
	_, wantK := base.Components()

	ev := factory(pts)
	s := &exactSearch{
		pts:    pts,
		cand:   candidatesGrid(pts, base, ev.Grid()),
		udgAdj: base,
		fc:     newFeasChecker(pts, ev.Grid(), wantK),
		radii:  make([]float64, n),
		budget: budget,
		ev:     ev,
	}

	// Seed the upper bound with the best feasible topology at hand: the
	// range-limited Euclidean MST, improved by a short annealing run. The
	// tighter the seed, the harder the bound prunes. The seed value is
	// measured through the same engine (then reset to all-zero for the
	// search invariant), so it is exact under any measure.
	seed := sp.Child("opt.exact.seed")
	mst := graph.EuclideanMST(pts, udg.Radius)
	seedRadii := core.Radii(pts, mst)
	ev.BatchSet(seedRadii, 0)
	seedI := ev.Max()
	ev.BatchSet(make([]float64, n), 0)
	if ann := AnnealWith(factory, pts, rand.New(rand.NewSource(1)), 400*n); ann.Interference < seedI {
		seedI = ann.Interference
		seedRadii = ann.Radii
	}
	s.best = seedI
	s.bestRadii = append([]float64(nil), seedRadii...)
	seed.End()

	search := sp.Child("opt.exact.search")
	s.search(0)
	search.End()
	if obs.On() {
		obsExactVisited.Add(s.visited)
	}

	return Result{
		Interference: s.best,
		Radii:        s.bestRadii,
		Topology:     RealizeForest(pts, s.bestRadii),
		Exact:        s.budget > 0,
		Visited:      s.visited,
	}
}

// candidates returns, for each node, the ascending list of admissible
// radii: distances to other nodes within unit range, starting at the
// nearest-UDG-neighbor distance (nodes of non-singleton components need
// at least one link), or {0} for isolated nodes.
func candidates(pts []geom.Point, base *graph.Graph) [][]float64 {
	n := len(pts)
	cand := make([][]float64, n)
	for u := 0; u < n; u++ {
		if base.Degree(u) == 0 {
			cand[u] = []float64{0}
			continue
		}
		var set []float64
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if d := pts[u].Dist(pts[v]); d <= udg.Radius*(1+1e-9) {
				set = append(set, d)
			}
		}
		cand[u] = dedupeSorted(set)
	}
	return cand
}

// candidatesGrid computes the same candidate lists as candidates but
// enumerates each node's unit disk through the grid instead of scanning
// all n² pairs — O(n + Σ_u |D(u, 1) ∩ V|) total, the difference between
// milliseconds and seconds at the annealer's n = 4096 scale.
func candidatesGrid(pts []geom.Point, base *graph.Graph, grid *geom.Grid) [][]float64 {
	n := len(pts)
	cand := make([][]float64, n)
	buf := make([]int, 0, 64)
	for u := 0; u < n; u++ {
		if base.Degree(u) == 0 {
			cand[u] = []float64{0}
			continue
		}
		var set []float64
		// Query slightly wide, then apply the exact admissibility test so
		// the lists match candidates bit-for-bit.
		buf = grid.Within(pts[u], udg.Radius*(1+1e-9), buf[:0])
		for _, v := range buf {
			if v == u {
				continue
			}
			if d := pts[u].Dist(pts[v]); d <= udg.Radius*(1+1e-9) {
				set = append(set, d)
			}
		}
		cand[u] = dedupeSorted(set)
	}
	return cand
}

// dedupeSorted sorts set ascending and removes duplicates in place.
func dedupeSorted(set []float64) []float64 {
	sort.Float64s(set)
	out := set[:1]
	for _, d := range set[1:] {
		if d != out[len(out)-1] {
			out = append(out, d)
		}
	}
	return out
}

// feasChecker tests whether a radius assignment's mutual-reachability
// graph Ĝ(r) preserves the UDG component structure, without building the
// graph: mutual edges are enumerated through the shared grid and merged
// in a reusable union-find. Because Ĝ(r) is always a subgraph of the
// UDG, its component count equals the UDG's iff the partitions are
// identical, so only the count is compared. Cost is O(n + Σ_u |D(u,
// min(r_u, 1)) ∩ V|) per call — output-sensitive, against the Θ(n²) of
// materializing MutualGraph.
type feasChecker struct {
	pts    []geom.Point
	grid   *geom.Grid
	wantK  int
	parent []int32
	buf    []int
}

func newFeasChecker(pts []geom.Point, grid *geom.Grid, wantK int) *feasChecker {
	return &feasChecker{
		pts:    pts,
		grid:   grid,
		wantK:  wantK,
		parent: make([]int32, len(pts)),
	}
}

func (fc *feasChecker) find(u int32) int32 {
	for fc.parent[u] != u {
		fc.parent[u] = fc.parent[fc.parent[u]] // path halving
		u = fc.parent[u]
	}
	return u
}

// feasible reports whether Ĝ(radii) preserves the UDG components.
func (fc *feasChecker) feasible(radii []float64) bool {
	n := len(fc.pts)
	for i := range fc.parent {
		fc.parent[i] = int32(i)
	}
	comps := n
	for u := 0; u < n; u++ {
		ru := radii[u]
		if ru <= 0 {
			continue
		}
		q := ru
		if q > udg.Radius {
			q = udg.Radius
		}
		fc.buf = fc.grid.Within(fc.pts[u], q*(1+1e-9), fc.buf[:0])
		for _, v := range fc.buf {
			if v <= u {
				continue // each unordered pair once, from its smaller side
			}
			// Unit-range membership uses the same squared-radius epsilon
			// as udg.Build, so checked edges are guaranteed UDG edges and
			// the comps ≥ wantK invariant (and its early exit) holds.
			if !geom.InDisk(fc.pts[u], udg.Radius, fc.pts[v]) {
				continue
			}
			d := fc.pts[u].Dist(fc.pts[v])
			if d > ru*(1+1e-9) || d > radii[v]*(1+1e-9) {
				continue
			}
			a, b := fc.find(int32(u)), fc.find(int32(v))
			if a != b {
				fc.parent[a] = b
				comps--
				if comps == fc.wantK {
					// Mutual edges never join distinct UDG components, so
					// comps ≥ wantK is invariant: hitting it is success.
					return true
				}
			}
		}
	}
	return comps == fc.wantK
}

type exactSearch struct {
	pts       []geom.Point
	cand      [][]float64
	udgAdj    *graph.Graph
	fc        *feasChecker
	radii     []float64
	ev        core.Measure
	best      int // best feasible interference found (inclusive bound)
	bestRadii []float64
	visited   int64
	budget    int64
}

// search assigns a radius to node u and recurses. Invariant: ev holds
// the radii of nodes < u (nodes ≥ u at 0, contributing nothing to
// interference yet, which underestimates — safe for pruning). Each
// speculative assignment is pushed with Snapshot and popped with
// Restore, so backtracking costs exactly the annuli it touched.
func (s *exactSearch) search(u int) {
	if s.budget <= 0 {
		return
	}
	n := len(s.pts)
	if u == n {
		if s.ev.Max() < s.best && s.feasible() {
			s.best = s.ev.Max()
			s.bestRadii = append(s.bestRadii[:0], s.radii...)
		}
		return
	}
	for _, r := range s.cand[u] {
		if s.budget <= 0 {
			return
		}
		s.visited++
		s.budget--
		s.ev.Snapshot()
		s.ev.SetRadius(u, r)
		s.radii[u] = r
		pruned := s.ev.Max() >= s.best
		if !pruned && !s.deadEnd(u, r) {
			s.search(u + 1)
		}
		s.ev.Restore()
		s.radii[u] = 0
		if pruned {
			// Candidates ascend and interference is monotone in the
			// radius: every larger candidate is pruned too.
			break
		}
	}
}

// deadEnd reports whether assigning radius r to node u makes connecting u
// impossible: u (in a non-singleton component) has no assigned partner it
// mutually reaches and no unassigned UDG neighbor within r.
func (s *exactSearch) deadEnd(u int, r float64) bool {
	if s.udgAdj.Degree(u) == 0 {
		return false
	}
	for _, v := range s.udgAdj.Neighbors(u) {
		d := s.pts[u].Dist(s.pts[v])
		if d > r*(1+1e-9) {
			continue
		}
		if v > u {
			return false // a future node can still meet u
		}
		if s.radii[v] >= d*(1-1e-9) {
			return false // mutually reachable assigned partner
		}
	}
	return true
}

// feasible reports whether the current radius assignment's mutual-
// reachability graph preserves the UDG component structure.
func (s *exactSearch) feasible() bool {
	return s.fc.feasible(s.radii)
}

// MutualGraph returns Ĝ(r): edges between nodes that can mutually reach
// each other within their radii and within unit range.
func MutualGraph(pts []geom.Point, radii []float64) *graph.Graph {
	g := graph.New(len(pts))
	for u := 0; u < len(pts); u++ {
		for v := u + 1; v < len(pts); v++ {
			d := pts[u].Dist(pts[v])
			if d <= udg.Radius*(1+1e-9) && d <= radii[u]*(1+1e-9) && d <= radii[v]*(1+1e-9) {
				g.AddEdge(u, v, d)
			}
		}
	}
	return g
}

// RealizeForest returns a spanning forest of the mutual-reachability
// graph of radii, preferring short edges (Kruskal), i.e. a concrete
// topology realizing at most the interference of the radius assignment.
func RealizeForest(pts []geom.Point, radii []float64) *graph.Graph {
	return graph.KruskalMSF(MutualGraph(pts, radii))
}

// Anneal searches radius assignments by simulated annealing, returning a
// feasible topology and an upper bound on the optimal interference. The
// search space and feasibility test match Exact; a move picks a node and
// retargets its radius to a random candidate, rejected outright when it
// breaks connectivity.
//
// The hot loop is fully incremental: interference deltas come from the
// persistent evaluator (O(|annulus|) per move instead of a full
// re-evaluation), and connectivity is only re-checked on radius
// decreases — growing a radius adds mutual edges, and adding edges to a
// subgraph of the UDG whose partition already equals the UDG's cannot
// change the partition. Decreases run through the grid-backed union-find
// checker. AnnealFull is the original recompute-everything implementation
// kept for the ablation benchmarks; both draw identically from rng, so
// they walk the same move sequence.
func Anneal(pts []geom.Point, rng *rand.Rand, iters int) Result {
	return AnnealWith(core.GraphMeasure, pts, rng, iters)
}

// AnnealWith is Anneal under an arbitrary interference measure: the
// move set, candidate lists, feasibility checks, and rng draws are
// identical to Anneal's, so AnnealWith(core.GraphMeasure, …) walks the
// same sequence bit-for-bit; only Max comes from the supplied engine.
func AnnealWith(factory core.MeasureFactory, pts []geom.Point, rng *rand.Rand, iters int) Result {
	n := len(pts)
	if n == 0 {
		return Result{Topology: graph.New(0)}
	}
	sp := obs.Start("opt.anneal")
	defer sp.End()
	setup := sp.Child("opt.anneal.setup")
	base := udg.Build(pts)
	_, wantK := base.Components()

	ev := factory(pts)
	fc := newFeasChecker(pts, ev.Grid(), wantK)
	cand := candidatesGrid(pts, base, ev.Grid())

	// Start from the MST radii (feasible by construction).
	mst := graph.EuclideanMST(pts, udg.Radius)
	cur := core.Radii(pts, mst)
	ev.BatchSet(cur, 0)
	curI := ev.Max()
	best := append([]float64(nil), cur...)
	bestI := curI
	setup.End()

	loop := sp.Child("opt.anneal.loop")
	var accepted, rejected int64
	var chunk *obs.Span
	temp := 2.0
	cool := math.Pow(0.01/temp, 1/math.Max(1, float64(iters)))
	for it := 0; it < iters; it++ {
		// One trace span per 64-iteration chunk keeps per-move timing
		// visible without a million-record trace; continues below are safe
		// because the chunk ends at the next boundary, not per iteration.
		if it&63 == 0 {
			chunk.End()
			chunk = loop.Child("opt.anneal.iters64")
		}
		u := rng.Intn(n)
		if len(cand[u]) == 0 {
			continue
		}
		r := cand[u][rng.Intn(len(cand[u]))]
		if r == cur[u] {
			temp *= cool
			continue
		}
		if r < cur[u] {
			// Shrinking can disconnect; test before touching the state.
			cur[u] = r
			ok := fc.feasible(cur)
			if !ok {
				cur[u] = ev.Radius(u)
				temp *= cool
				rejected++
				continue
			}
			cur[u] = ev.Radius(u)
		}
		old := ev.SetRadius(u, r)
		newI := ev.Max()
		dE := float64(newI - curI)
		if dE <= 0 || rng.Float64() < math.Exp(-dE/temp) {
			cur[u] = r
			curI = newI
			accepted++
			if curI < bestI {
				bestI = curI
				copy(best, cur)
			}
		} else {
			ev.SetRadius(u, old)
			rejected++
		}
		temp *= cool
	}
	chunk.End()
	loop.End()
	if obs.On() {
		obsAnnealIters.Add(int64(iters))
		obsAnnealAccepted.Add(accepted)
		obsAnnealRejected.Add(rejected)
	}
	return Result{
		Interference: bestI,
		Radii:        best,
		Topology:     RealizeForest(pts, best),
		Exact:        false,
	}
}

// AnnealFull is the pre-evaluator reference implementation of Anneal: it
// rebuilds the mutual-reachability graph and re-evaluates interference
// from scratch on every move. Kept verbatim for the ablation benchmarks
// (BenchmarkAnnealRecompute vs BenchmarkAnnealEvaluator) and for
// cross-checking the incremental path; prefer Anneal everywhere else.
func AnnealFull(pts []geom.Point, rng *rand.Rand, iters int) Result {
	n := len(pts)
	if n == 0 {
		return Result{Topology: graph.New(0)}
	}
	base := udg.Build(pts)
	wantLabel, wantK := base.Components()
	feasible := func(radii []float64) bool {
		g := MutualGraph(pts, radii)
		label, k := g.Components()
		if k != wantK {
			return false
		}
		for i := range label {
			if label[i] != wantLabel[i] {
				return false
			}
		}
		return true
	}

	mst := graph.EuclideanMST(pts, udg.Radius)
	cur := core.Radii(pts, mst)
	curI := core.InterferenceRadii(pts, cur).Max()
	best := append([]float64(nil), cur...)
	bestI := curI

	cand := candidates(pts, base)

	temp := 2.0
	cool := math.Pow(0.01/temp, 1/math.Max(1, float64(iters)))
	work := append([]float64(nil), cur...)
	for it := 0; it < iters; it++ {
		u := rng.Intn(n)
		if len(cand[u]) == 0 {
			continue
		}
		copy(work, cur)
		work[u] = cand[u][rng.Intn(len(cand[u]))]
		if work[u] == cur[u] || !feasible(work) {
			temp *= cool
			continue
		}
		newI := core.InterferenceRadii(pts, work).Max()
		dE := float64(newI - curI)
		if dE <= 0 || rng.Float64() < math.Exp(-dE/temp) {
			cur, work = work, cur
			curI = newI
			if curI < bestI {
				bestI = curI
				copy(best, cur)
			}
		}
		temp *= cool
	}
	return Result{
		Interference: bestI,
		Radii:        best,
		Topology:     RealizeForest(pts, best),
		Exact:        false,
	}
}
