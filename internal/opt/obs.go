package opt

import "repro/internal/obs"

// Optimizer metrics. The annealer counts moves locally in the loop and
// flushes once at the end, so the hot loop never touches shared atomics.
var (
	obsAnnealIters = obs.Default().Counter("rim_opt_anneal_iters_total",
		"Simulated-annealing iterations executed.")
	obsAnnealAccepted = obs.Default().Counter("rim_opt_anneal_accepted_total",
		"Annealing moves accepted (including downhill).")
	obsAnnealRejected = obs.Default().Counter("rim_opt_anneal_rejected_total",
		"Annealing moves rejected by the Metropolis test or feasibility.")
	obsExactVisited = obs.Default().Counter("rim_opt_exact_visited_total",
		"Branch-and-bound search-tree nodes visited.")
)
