package opt_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/opt"
)

// The exact solver proves the minimum interference of small instances —
// here the 10-node exponential chain, matching Theorem 5.2's Ω(√n).
func ExampleExact() {
	res := opt.Exact(gen.ExpChain(10, 1))
	fmt.Println("optimum:", res.Interference, "proved:", res.Exact)
	fmt.Println("edges:", res.Topology.M())
	// Output:
	// optimum: 4 proved: true
	// edges: 9
}
