package opt_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/oracle"
	"repro/internal/phys"
	"repro/internal/udg"
)

// TestAnnealWithGraphIsAnneal: the generic annealer under the graph
// factory must walk exactly the same trajectory as the specialized
// entry point — same rng draws, same result, bit for bit.
func TestAnnealWithGraphIsAnneal(t *testing.T) {
	pts := gen.UniformSquare(rand.New(rand.NewSource(2)), 96, 6)
	a := opt.Anneal(pts, rand.New(rand.NewSource(9)), 4000)
	b := opt.AnnealWith(core.GraphMeasure, pts, rand.New(rand.NewSource(9)), 4000)
	if a.Interference != b.Interference {
		t.Fatalf("interference diverged: %d vs %d", a.Interference, b.Interference)
	}
	for u := range a.Radii {
		if a.Radii[u] != b.Radii[u] {
			t.Fatalf("radius %d diverged: %v vs %v", u, a.Radii[u], b.Radii[u])
		}
	}
}

// TestExactBudgetWithGraphIsExactBudget: same equivalence for the
// branch-and-bound, including the visited count (the engine-measured
// seed bound must not change pruning).
func TestExactBudgetWithGraphIsExactBudget(t *testing.T) {
	pts := gen.UniformSquare(rand.New(rand.NewSource(4)), 11, 2)
	a := opt.ExactBudget(pts, 1_000_000)
	b := opt.ExactBudgetWith(core.GraphMeasure, pts, 1_000_000)
	if a.Interference != b.Interference || a.Exact != b.Exact || a.Visited != b.Visited {
		t.Fatalf("exact search diverged: I=%d/%d exact=%v/%v visited=%d/%d",
			a.Interference, b.Interference, a.Exact, b.Exact, a.Visited, b.Visited)
	}
	for u := range a.Radii {
		if a.Radii[u] != b.Radii[u] {
			t.Fatalf("radius %d diverged: %v vs %v", u, a.Radii[u], b.Radii[u])
		}
	}
}

// TestAnnealWithPhysMeasure: annealing the SINR objective on the
// paper's exponential gadget yields a feasible topology whose physical
// interference is at least as good as — and on some gadget strictly
// better than — the graph-model optimum scored under SINR. This is the
// measures-genuinely-diverge acceptance property.
func TestAnnealWithPhysMeasure(t *testing.T) {
	strict := false
	for _, k := range []int{4, 5, 6} {
		pts := gen.DoubleExpChain(k)
		base := udg.Build(pts)
		_, wantK := base.Components()

		graphRes := opt.AnnealWith(core.GraphMeasure, pts, rand.New(rand.NewSource(1)), 6000)
		physRes := opt.AnnealWith(phys.NewMeasure, pts, rand.New(rand.NewSource(1)), 6000)

		// Feasibility of the SINR-optimized assignment is measure-
		// independent: its mutual-reachability graph must preserve the
		// UDG components.
		if _, k2 := opt.MutualGraph(pts, physRes.Radii).Components(); k2 != wantK {
			t.Fatalf("k=%d: phys-annealed topology infeasible: %d components, want %d", k, k2, wantK)
		}

		graphUnderPhys := oracle.PhysLevels(pts, graphRes.Radii, phys.Default()).Max()
		if physRes.Interference > graphUnderPhys {
			t.Fatalf("k=%d: annealing the SINR objective (%d) lost to the graph optimum scored under SINR (%d)",
				k, physRes.Interference, graphUnderPhys)
		}
		if physRes.Interference < graphUnderPhys {
			strict = true
		}
		t.Logf("k=%d: graph-opt I=%d (SINR score %d), phys-opt SINR=%d",
			k, graphRes.Interference, graphUnderPhys, physRes.Interference)
	}
	if !strict {
		t.Fatal("physical annealing never strictly beat the graph optimum's SINR score on any gadget")
	}
}
