package serve

import (
	"context"
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/metrics.golden")

// TestMetricsGolden locks the /metrics exposition format: the legacy
// rimd_* block from Manager.WriteMetrics followed by the shared obs
// registry families (rim_core_*, rim_dynamic_*, rim_phys_*, …), composed
// exactly as the HTTP handler composes them. Family order, metric names,
// HELP/TYPE lines, and label structure must not drift (dashboards and
// scrape configs depend on them). Sample values are timing- and
// load-dependent, so every value is normalized to V before comparison —
// the golden file locks the skeleton, not the numbers. Refresh with
// `go test ./internal/serve/ -run Golden -update` after an intentional
// format change.
func TestMetricsGolden(t *testing.T) {
	m := NewManager(Config{Shards: 1, QueueCap: 16, BatchCap: 8})
	defer m.Close(context.Background())

	s, err := m.CreateSession("g1", []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(1.2, 0.3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(SetRadius(0, 0.6), Add(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.metrics.IncHTTP("mutate", 200)
	m.metrics.IncHTTP("metrics", 200)

	var sb strings.Builder
	m.WriteMetrics(&sb)
	obs.Default().WritePrometheus(&sb)
	got := normalizeExposition(sb.String())

	const path = "testdata/metrics.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition format drifted from %s (refresh with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}

	// The raw exposition must also be well-formed Prometheus text.
	if _, err := obs.CheckExposition(strings.NewReader(sb.String())); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}

// normalizeExposition replaces every sample value with V, keeping
// comments, names, and label sets verbatim.
func normalizeExposition(s string) string {
	lines := strings.Split(s, "\n")
	for i, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if j := strings.LastIndexByte(line, ' '); j >= 0 {
			lines[i] = line[:j] + " V"
		}
	}
	return strings.Join(lines, "\n")
}
