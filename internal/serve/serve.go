// Package serve is the concurrent topology-control service layered on the
// incremental interference engine: the long-lived, many-client front door
// the one-shot CLIs lack.
//
// # Architecture
//
// A Session is one network instance — a dynamic.Maintainer owning a
// core.Evaluator — identified by a client-chosen string ID and holding a
// stable external node-ID space (engine indices shift on removal; session
// IDs never do). Sessions are sharded across a fixed pool of worker
// goroutines by session ID, and each session's mutations flow through a
// single-writer pipeline:
//
//   - clients enqueue mutations (add/remove/move node, set radius, run an
//     anneal step budget) into the session's bounded queue; a full queue
//     reports ErrQueueFull, which the HTTP layer maps to 429 with
//     Retry-After — explicit backpressure instead of unbounded buffering;
//   - the session's shard drains the queue in batches (coalescing
//     redundant same-node radius writes outside deterministic mode) and
//     applies them on its own goroutine — the session's only writer, so
//     the engine needs no locks;
//   - after every batch the owner exports the engine state into an
//     immutable Snapshot and publishes it with one atomic pointer swap.
//
// Readers never block the writer and never see a torn state: every query
// is answered from the latest published snapshot, which reflects a prefix
// of the session's mutation log (all mutations up to Snapshot.Seq,
// nothing after).
//
// # Determinism
//
// With Config.Deterministic a session records every applied mutation as
// one line of a textual trace (initial instance included, coalescing
// disabled). The trace is self-contained: ParseTrace recovers the
// instance and the exact mutation sequence, so a recorded session can be
// re-executed through a fresh pipeline — byte-identically, checkable with
// oracle.ReplayText — or through a pipeline whose engine is the oracle's
// naive-shadowed DiffEvaluator, inheriting the differential-testing
// guarantees of the correctness layer.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/store"
)

// Service errors. The HTTP layer maps them onto status codes.
var (
	ErrClosed        = errors.New("serve: manager closed")
	ErrSessionClosed = errors.New("serve: session closed")
	ErrSessionExists = errors.New("serve: session already exists")
	ErrNoSession     = errors.New("serve: no such session")
	ErrQueueFull     = errors.New("serve: mutation queue full")
	// ErrReadOnly rejects client-originated writes on a manager serving
	// as a replication follower: every mutation must arrive through
	// ApplyRecord so the follower's state stays a prefix of the leader's
	// log. The HTTP layer maps it to 403, the wire layer to
	// StatusReadOnly.
	ErrReadOnly = errors.New("serve: manager is read-only (replication follower)")
)

// Config parameterizes a Manager. The zero value selects sane defaults.
type Config struct {
	// Shards is the number of worker goroutines; sessions are assigned by
	// ID hash. <= 0 selects min(GOMAXPROCS, 8).
	Shards int
	// QueueCap bounds each session's pending-mutation queue; <= 0 means
	// 1024. A full queue is backpressure, not an error to retry blindly.
	QueueCap int
	// BatchCap bounds how many mutations one batch applies before
	// publishing a snapshot; <= 0 means 256.
	BatchCap int
	// Deterministic records a replayable per-session mutation trace and
	// disables batch coalescing (so trace bytes are independent of batch
	// boundaries).
	Deterministic bool
	// TraceCap bounds the retained trace lines per session via a ring
	// buffer (sim.TraceBuffer); <= 0 retains everything. Replay requires
	// an uncapped (or never-overflowed) trace.
	TraceCap int
	// RebuildFactor is passed to dynamic.Maintainer; 0 means its default.
	RebuildFactor float64
	// MaxAnnealIters caps the per-mutation anneal budget; <= 0 means
	// 100_000. Larger requests are rejected at enqueue time.
	MaxAnnealIters int
	// MaxCoord bounds |x| and |y| of every node coordinate; <= 0 means
	// 1024. The engine's spatial index allocates cells over the instance's
	// bounding box, so one far-flung coordinate would balloon memory — the
	// service rejects such instances and mutations up front.
	MaxCoord float64
	// Engine overrides the evaluator engine factory for graph-measure
	// sessions (nil selects the production core.Evaluator). Tests inject
	// oracle.NewDiffEvaluator here to shadow-check a whole serving
	// pipeline.
	Engine dynamic.EngineFactory
	// SinrEngine is Engine's counterpart for sinr-measure sessions (nil
	// selects the production phys.Evaluator; tests inject the oracle's
	// DiffPhysEvaluator).
	SinrEngine dynamic.EngineFactory
	// DefaultMeasure is the measure CreateSession assigns when the
	// caller does not pick one: MeasureGraph or MeasureSinr ("" means
	// graph). rimd's -measure flag lands here.
	DefaultMeasure string
	// BeforeBatch and AfterBatch are debug/verification hooks called on
	// the owner goroutine around every batch (nil to disable). AfterBatch
	// receives the session's engine — a replay harness casts it to the
	// oracle's DiffEvaluator and verifies.
	BeforeBatch func(sessionID string)
	AfterBatch  func(sessionID string, eng dynamic.Engine)
	// AfterBatchDelta, when non-nil, makes every session accumulate a
	// per-batch dirty summary (see BatchDelta) and publish it — with the
	// post-batch engine and the external-ID translation — after each
	// applied batch, on the owner goroutine. The subscription matcher
	// (internal/sub) attaches here. Nil costs nothing: no delta is
	// accumulated. Runs after AfterBatch.
	AfterBatchDelta func(BatchView)
	// Store, when non-nil, write-ahead-logs every applied batch and backs
	// session checkpoints and boot-time recovery (see internal/store and
	// durable.go). Nil costs nothing: the logging branch is one flag
	// check per batch.
	Store *store.Store
	// NoCoalesce disables batch coalescing even outside deterministic
	// mode. A replication follower must set it: the leader logs batches
	// post-coalesce, so each replicated record's mutation count is
	// exactly its seq advance — re-coalescing across record boundaries
	// on the follower would drop mutations and diverge the seq space.
	NoCoalesce bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.BatchCap <= 0 {
		c.BatchCap = 256
	}
	if c.MaxAnnealIters <= 0 {
		c.MaxAnnealIters = 100_000
	}
	if c.MaxCoord <= 0 {
		c.MaxCoord = 1024
	}
	return c
}

// Manager owns the shard pool and the session table.
type Manager struct {
	cfg     Config
	metrics *Metrics
	shards  []*shard
	wg      sync.WaitGroup

	mu       sync.RWMutex
	sessions map[string]*Session
	closed   bool

	// ckptMu serializes the durability-ordering critical sections:
	// create-record+registration, checkpoint writes, and
	// checkpoint-deletion+drop-record (see durable.go and recover.go for
	// why each pairing matters).
	ckptMu    sync.Mutex
	walBroken atomic.Bool
	walErr    atomic.Pointer[error]

	// readOnly marks the manager as a replication follower: front-door
	// writes (CreateSession, DropSession, Session.Apply) are rejected
	// with ErrReadOnly; only ApplyRecord (and recovery replay) mutate.
	readOnly atomic.Bool
}

// SetReadOnly switches the follower write gate. Promotion flips it off
// after the WAL tail is replayed; reads are unaffected either way.
func (m *Manager) SetReadOnly(v bool) { m.readOnly.Store(v) }

// ReadOnly reports whether the manager rejects front-door writes.
func (m *Manager) ReadOnly() bool { return m.readOnly.Load() }

// NewManager starts the shard pool and returns an empty manager.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		metrics:  NewMetrics(),
		sessions: make(map[string]*Session),
	}
	m.shards = make([]*shard, m.cfg.Shards)
	for i := range m.shards {
		m.shards[i] = newShard()
		m.wg.Add(1)
		go m.shards[i].loop(&m.wg)
	}
	return m
}

// Config returns the manager's effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Metrics returns the manager's metric set.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// shardFor deterministically assigns a session ID to a shard.
func (m *Manager) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return m.shards[h.Sum32()%uint32(len(m.shards))]
}

// CreateSession builds a session over the initial instance and registers
// it. Construction (greedy topology + engine build) runs on the caller;
// the session is readable immediately (its initial snapshot is published
// before return) and writable through Apply.
func (m *Manager) CreateSession(id string, pts []geom.Point) (*Session, error) {
	return m.CreateSessionMeasure(id, pts, m.cfg.DefaultMeasure)
}

// CreateSessionMeasure is CreateSession with an explicit interference
// measure (MeasureGraph, MeasureSinr, or "" for the configured
// default). The measure is fixed for the session's lifetime and
// recorded durably with it.
func (m *Manager) CreateSessionMeasure(id string, pts []geom.Point, measure string) (*Session, error) {
	if m.readOnly.Load() {
		return nil, ErrReadOnly
	}
	if measure == "" {
		measure = m.cfg.DefaultMeasure
	}
	return m.createSession(id, pts, measure)
}

// createSession is CreateSessionMeasure without the read-only gate —
// the path replicated create records take on a follower.
func (m *Manager) createSession(id string, pts []geom.Point, measure string) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("serve: empty session id")
	}
	measure, err := normalizeMeasure(measure)
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		if err := checkCoord(p.X, p.Y, m.cfg.MaxCoord); err != nil {
			return nil, fmt.Errorf("serve: point %d: %w", i, err)
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := m.sessions[id]; dup {
		m.mu.Unlock()
		return nil, ErrSessionExists
	}
	// Reserve the ID while the (potentially slow) construction runs
	// outside the lock.
	m.sessions[id] = nil
	m.mu.Unlock()

	s := newSession(m, id, pts, measure)

	// The create record and the registration are one critical section
	// with the checkpoint barrier's rotate-and-list step: either this
	// session's record lands before a rotation and the session is listed
	// (so it gets a checkpoint before the record is pruned), or the
	// record lands in the post-rotation segment and survives the prune.
	m.ckptMu.Lock()
	if m.walOK() {
		rec := store.Record{Kind: store.RecordCreate, Session: id, Payload: createPayload(pts, measure)}
		if err := m.cfg.Store.Append(rec); err != nil {
			m.walFail(err)
		}
	}
	m.mu.Lock()
	m.sessions[id] = s
	m.mu.Unlock()
	m.ckptMu.Unlock()
	m.metrics.SessionsCreated.Add(1)
	return s, nil
}

// Session looks up a registered session.
func (m *Manager) Session(id string) (*Session, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	return s, ok && s != nil
}

// SessionIDs returns the registered session IDs, sorted.
func (m *Manager) SessionIDs() []string {
	m.mu.RLock()
	ids := make([]string, 0, len(m.sessions))
	for id, s := range m.sessions {
		if s != nil {
			ids = append(ids, id)
		}
	}
	m.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// liveSessions returns the registered sessions, sorted by ID (for
// deterministic metrics output and drain order).
func (m *Manager) liveSessions() []*Session {
	m.mu.RLock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			out = append(out, s)
		}
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// DropSession closes a session (further Apply calls fail) and removes it
// from the table. Mutations already queued are still applied by the
// owner; they just become unobservable once every snapshot holder lets
// go.
func (m *Manager) DropSession(id string) error {
	if m.readOnly.Load() {
		return ErrReadOnly
	}
	return m.dropSession(id)
}

// dropSession is DropSession without the read-only gate — the path
// replicated drop records take on a follower.
func (m *Manager) dropSession(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok || s == nil {
		m.mu.Unlock()
		return ErrNoSession
	}
	delete(m.sessions, id)
	m.mu.Unlock()
	s.mu.Lock()
	s.dropped = true // stops WAL logging of the still-draining queue
	s.mu.Unlock()
	s.close()
	if m.cfg.Store != nil {
		// Checkpoints die BEFORE the drop record is logged: a crash
		// between the two resurrects the session (safe — the drop was
		// never acknowledged durable), while the reverse order could
		// leave a stale checkpoint to poison a future session reusing
		// this ID. ckptMu keeps an in-flight barrier checkpoint from
		// landing between the delete and the record.
		m.ckptMu.Lock()
		derr := m.cfg.Store.DeleteCheckpoints(id)
		if m.walOK() {
			if err := m.cfg.Store.Append(store.Record{Kind: store.RecordDrop, Session: id}); err != nil {
				m.walFail(err)
			}
		}
		m.ckptMu.Unlock()
		if derr != nil {
			return fmt.Errorf("serve: drop %q: stale checkpoints remain: %w", id, derr)
		}
	}
	return nil
}

// DrainStats reports what a shutdown drain did — and, crucially, what it
// did NOT apply. Every number here used to be silent.
type DrainStats struct {
	// DroppedMutations counts queued-but-unapplied mutations explicitly
	// rejected when the drain deadline expired (also counted into the
	// rejected totals and rimd_drain_dropped_total).
	DroppedMutations int
	// DroppedSessions is how many sessions those mutations came from.
	DroppedSessions int
	// FinalCheckpoints counts checkpoints written after the pool stopped
	// (Config.Store only); CheckpointErrors counts the ones that failed.
	FinalCheckpoints int
	CheckpointErrors int
}

// Close drains and stops the manager; see CloseStats for the accounting.
func (m *Manager) Close(ctx context.Context) error {
	_, err := m.CloseStats(ctx)
	return err
}

// CloseStats drains and stops the manager: no new sessions or mutations
// are accepted, every queued mutation is applied, then the shard pool
// exits. On ctx expiry whatever is still queued is explicitly rejected —
// counted per mutation in the returned stats and the drain-dropped
// metric, never silently discarded — and the context error is returned.
// With Config.Store set, a final checkpoint of every surviving session is
// written after the pool stops, so a clean shutdown recovers from
// checkpoints alone with no WAL replay.
func (m *Manager) CloseStats(ctx context.Context) (DrainStats, error) {
	var ds DrainStats
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()

	sessions := m.liveSessions()
	for _, s := range sessions {
		s.close()
	}
	var err error
	for _, s := range sessions {
		// Keep flushing the rest even after the deadline expires — the
		// expired ctx returns immediately, and every remaining queue must
		// be measured, not abandoned mid-loop.
		if ferr := s.Flush(ctx); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		for _, s := range sessions {
			if n := s.rejectQueued(); n > 0 {
				ds.DroppedMutations += n
				ds.DroppedSessions++
			}
		}
		if ds.DroppedMutations > 0 {
			m.metrics.DrainDropped.Add(int64(ds.DroppedMutations))
		}
	}
	for _, sh := range m.shards {
		sh.stop()
	}
	m.wg.Wait()

	if m.cfg.Store != nil {
		for _, s := range sessions {
			s.failCheckpointWaiters(ErrSessionClosed)
			s.mu.Lock()
			dropped := s.dropped
			s.mu.Unlock()
			if dropped {
				continue
			}
			// The pool is stopped: owner-only state is quiescent, so the
			// capture is safe from this goroutine.
			seq, payload := s.encodeCheckpoint()
			m.ckptMu.Lock()
			cerr := m.cfg.Store.WriteCheckpoint(s.id, seq, payload)
			m.ckptMu.Unlock()
			if cerr != nil {
				ds.CheckpointErrors++
			} else {
				ds.FinalCheckpoints++
			}
		}
	}
	return ds, err
}
