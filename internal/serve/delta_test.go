package serve

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// deltaCapture is one AfterBatchDelta invocation, deep-copied (the hook
// argument is only valid during the call).
type deltaCapture struct {
	seq     uint64
	full    bool
	added   []NodeChange
	removed []NodeChange
	moved   []NodeChange
	radius  []RadiusChange
	disks   []Disk
	ids     []int64
	st      *core.State
}

// nodeView is the naive per-node view a snapshot diff compares.
type nodeView struct {
	pos geom.Point
	r   float64
	i   int
}

func captureView(v BatchView) deltaCapture {
	c := deltaCapture{
		seq:     v.Seq,
		full:    v.Delta.Full,
		added:   append([]NodeChange(nil), v.Delta.Added...),
		removed: append([]NodeChange(nil), v.Delta.Removed...),
		moved:   append([]NodeChange(nil), v.Delta.Moved...),
		radius:  append([]RadiusChange(nil), v.Delta.Radius...),
		disks:   append([]Disk(nil), v.Delta.Disks...),
		st:      v.Engine.ExportState(nil),
	}
	for i := 0; i < v.Engine.N(); i++ {
		c.ids = append(c.ids, v.IDOf(i))
	}
	return c
}

func (c *deltaCapture) view() map[int64]nodeView {
	m := make(map[int64]nodeView, len(c.ids))
	for i, id := range c.ids {
		m[id] = nodeView{pos: c.st.Points[i], r: c.st.Radii[i], i: c.st.I[i]}
	}
	return m
}

// coveredByDisk reports whether p lies inside any reported dirty disk.
func coveredByDisk(p geom.Point, disks []Disk) bool {
	const eps = 1e-9
	for _, d := range disks {
		if p.Dist(geom.Pt(d.X, d.Y)) <= d.R+eps {
			return true
		}
	}
	return false
}

// TestBatchDeltaMatchesSnapshotDiff is the satellite regression test: the
// per-batch dirty summary must agree with a naive diff of consecutive
// engine snapshots — presence and position changes exactly, radius and
// interference changes covered by the listed nodes or the dirty disks.
func TestBatchDeltaMatchesSnapshotDiff(t *testing.T) {
	var mu sync.Mutex
	var caps []deltaCapture
	m := NewManager(Config{
		Shards: 1,
		AfterBatchDelta: func(v BatchView) {
			c := captureView(v)
			mu.Lock()
			caps = append(caps, c)
			mu.Unlock()
		},
	})
	defer m.Close(nil)

	rng := rand.New(rand.NewSource(42))
	var pts []geom.Point
	for i := 0; i < 48; i++ {
		pts = append(pts, geom.Pt(rng.Float64()*8, rng.Float64()*8))
	}
	s, err := m.CreateSession("delta", pts)
	if err != nil {
		t.Fatal(err)
	}
	live := make([]int64, len(pts))
	for i := range live {
		live[i] = int64(i)
	}

	for round := 0; round < 120; round++ {
		var batch []Mutation
		n := 1 + rng.Intn(8)
		for k := 0; k < n && len(live) > 4; k++ {
			switch roll := rng.Intn(10); {
			case roll < 3:
				batch = append(batch, Add(rng.Float64()*8, rng.Float64()*8))
			case roll < 5:
				j := rng.Intn(len(live))
				batch = append(batch, Remove(live[j]))
				live = append(live[:j], live[j+1:]...)
			case roll < 8:
				batch = append(batch, Move(live[rng.Intn(len(live))], rng.Float64()*8, rng.Float64()*8))
			case roll < 9:
				batch = append(batch, SetRadius(live[rng.Intn(len(live))], rng.Float64()*1.5))
			default:
				batch = append(batch, AnnealStep(50, int64(round)))
			}
		}
		ids, err := s.Apply(batch...)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, ids...)
		if err := s.Flush(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(nil); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(caps) < 10 {
		t.Fatalf("captured only %d batches", len(caps))
	}

	// The pre-history baseline: creation-time state.
	prev := make(map[int64]nodeView)
	{
		// Recreate the creation-time view through a second, mutation-free
		// session over the same points: same engine construction, same
		// greedy radii.
		m2 := NewManager(Config{Shards: 1})
		defer m2.Close(nil)
		s2, err := m2.CreateSession("baseline", pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, ns := range s2.Snapshot().Nodes {
			prev[ns.ID] = nodeView{pos: geom.Pt(ns.X, ns.Y), r: ns.R, i: ns.I}
		}
	}

	checked := 0
	for ci := range caps {
		c := &caps[ci]
		cur := c.view()
		if c.full {
			prev = cur
			continue
		}
		addedNet := map[int64]bool{}
		for _, a := range c.added {
			addedNet[a.ID] = true
		}
		removedNet := map[int64]bool{}
		for _, r := range c.removed {
			if addedNet[r.ID] {
				delete(addedNet, r.ID) // added and removed within the batch
				continue
			}
			removedNet[r.ID] = true
		}
		// A node moved twice in one batch yields chained Moved entries;
		// fold them so Old stays the first entry's origin and X/Y the
		// last entry's destination.
		movedBy := map[int64]NodeChange{}
		for _, mv := range c.moved {
			if prev, ok := movedBy[mv.ID]; ok {
				prev.X, prev.Y = mv.X, mv.Y
				movedBy[mv.ID] = prev
			} else {
				movedBy[mv.ID] = mv
			}
		}
		radiusListed := map[int64]bool{}
		for _, rc := range c.radius {
			radiusListed[rc.ID] = true
		}

		// Presence: exact.
		for id := range prev {
			_, still := cur[id]
			if !still && !removedNet[id] {
				t.Fatalf("batch seq=%d: node %d disappeared but is not in Removed", c.seq, id)
			}
			if still && removedNet[id] {
				t.Fatalf("batch seq=%d: node %d listed Removed but still present", c.seq, id)
			}
		}
		for id := range cur {
			_, was := prev[id]
			if !was && !addedNet[id] {
				t.Fatalf("batch seq=%d: node %d appeared but is not in Added", c.seq, id)
			}
			if was && addedNet[id] {
				t.Fatalf("batch seq=%d: node %d listed Added but pre-existing", c.seq, id)
			}
		}

		// Positions: exact, endpoints included.
		for id, pv := range prev {
			cv, still := cur[id]
			if !still {
				continue
			}
			mv, listed := movedBy[id]
			if pv.pos != cv.pos {
				if !listed {
					t.Fatalf("batch seq=%d: node %d moved %v -> %v but is not in Moved", c.seq, id, pv.pos, cv.pos)
				}
				if geom.Pt(mv.OldX, mv.OldY) != pv.pos || geom.Pt(mv.X, mv.Y) != cv.pos {
					t.Fatalf("batch seq=%d: node %d Moved endpoints (%v,%v)->(%v,%v) disagree with snapshots %v -> %v",
						c.seq, id, mv.OldX, mv.OldY, mv.X, mv.Y, pv.pos, cv.pos)
				}
			} else if listed && geom.Pt(mv.X, mv.Y) != geom.Pt(mv.OldX, mv.OldY) {
				t.Fatalf("batch seq=%d: node %d listed Moved but its position is unchanged", c.seq, id)
			}

			// Radius: listed, moved (re-inserted), or disk-covered.
			if pv.r != cv.r {
				if !radiusListed[id] && !listed && !coveredByDisk(cv.pos, c.disks) {
					t.Fatalf("batch seq=%d: node %d radius %v -> %v not listed and not disk-covered",
						c.seq, id, pv.r, cv.r)
				}
				checked++
			}
			// Interference: moved, or disk-covered.
			if pv.i != cv.i {
				if !listed && !coveredByDisk(cv.pos, c.disks) {
					t.Fatalf("batch seq=%d: node %d interference %d -> %d but node neither moved nor disk-covered",
						c.seq, id, pv.i, cv.i)
				}
				checked++
			}
		}
		prev = cur
	}
	if checked == 0 {
		t.Fatal("the trace never exercised a radius or interference change; weak test")
	}
}
