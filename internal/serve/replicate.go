package serve

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/store"
)

// Replication apply: how a follower manager consumes the leader's WAL
// stream. Every record flows through the normal pipeline — a create
// builds the session (and logs a create record to the follower's own
// WAL, so the follower is independently recoverable), a batch is
// enqueued through the shard pipeline (and write-ahead-logged locally
// before apply, like any other batch), a drop closes the session. The
// follower must be configured with NoCoalesce: the leader already
// logged post-coalesce batches, and the shard drain may merge several
// replicated records into one owner batch, so coalescing again across
// record boundaries would drop mutations and diverge the seq space.
//
// Redelivery is the normal case, not an error: the follower
// acknowledges lazily and resubscribes after faults from its last
// persisted cursor, so the stream's head may replay records it already
// applied. The guards below make every record idempotent — a create for
// an existing session and a drop for a missing one are skips, and a
// batch at or below the session's replicated-seq watermark is a skip —
// while a batch that does not extend the watermark contiguously is a
// gap: a protocol violation the caller must treat as fatal for the
// connection (drop it, resubscribe from the cursor).

// ErrReplGap reports a replicated batch that neither replays a prefix
// nor extends the session's seq contiguously — the stream skipped
// records.
var ErrReplGap = errors.New("serve: replicated batch leaves a seq gap")

// ApplyRecord applies one replicated WAL record through the normal
// pipeline. Idempotent under redelivery; safe only from a single
// replication goroutine (the follower's feed loop).
func (m *Manager) ApplyRecord(rec store.Record) error {
	switch rec.Kind {
	case store.RecordCreate:
		pts, measure, err := parseCreatePayload(rec.Payload)
		if err != nil {
			return fmt.Errorf("serve: replicated create %q: %w", rec.Session, err)
		}
		if _, err := m.createSession(rec.Session, pts, measure); err != nil {
			if errors.Is(err, ErrSessionExists) {
				return nil // redelivery
			}
			return fmt.Errorf("serve: replicated create %q: %w", rec.Session, err)
		}
		return nil
	case store.RecordBatch:
		s, ok := m.Session(rec.Session)
		if !ok {
			return fmt.Errorf("%w: batch seq=%d for unknown session %q", ErrReplGap, rec.Seq, rec.Session)
		}
		return s.applyReplicated(rec)
	case store.RecordDrop:
		if err := m.dropSession(rec.Session); err != nil {
			if errors.Is(err, ErrNoSession) {
				return nil // redelivery
			}
			return fmt.Errorf("serve: replicated drop %q: %w", rec.Session, err)
		}
		return nil
	}
	return fmt.Errorf("serve: replicated record has unknown kind %d", rec.Kind)
}

// applyReplicated enqueues one replicated batch record, guarding the
// replicated-seq watermark. Queue-full is absorbed here — the follower
// has no client to push 429 back to — by flushing and retrying.
func (s *Session) applyReplicated(rec store.Record) error {
	s.mu.Lock()
	watermark := s.replSeq
	s.mu.Unlock()
	if rec.Seq <= watermark {
		return nil // redelivered prefix
	}
	muts, err := parseBatchPayload(rec.Payload)
	if err != nil {
		return fmt.Errorf("serve: replicated batch %q seq=%d: %w", s.id, rec.Seq, err)
	}
	if obs.On() && len(muts) > 0 {
		// A traced leader batch re-applies as a traced follower batch: the
		// stamp's span id is the leader's batch span, so the follower's
		// serve.batch span links straight back to the leader's commit.
		if tc, ok := ParseBatchTrace(rec.Payload); ok {
			muts[0].TC = &tc
		}
	}
	if rec.Seq != watermark+uint64(len(muts)) {
		return fmt.Errorf("%w: session %q batch seq=%d does not extend watermark %d by %d",
			ErrReplGap, s.id, rec.Seq, watermark, len(muts))
	}
	for {
		// Pinned: one leader batch record must become exactly one local
		// batch — the maintainer's end-of-batch deferral means merged or
		// split boundaries settle on a different radius assignment than
		// the leader's.
		_, err := s.applyPinned(muts)
		if err == nil {
			break
		}
		if errors.Is(err, ErrQueueFull) {
			if ferr := s.Flush(nil); ferr != nil {
				return fmt.Errorf("serve: replicated batch %q seq=%d: drain: %w", s.id, rec.Seq, ferr)
			}
			continue
		}
		return fmt.Errorf("serve: replicated batch %q seq=%d: %w", s.id, rec.Seq, err)
	}
	s.mu.Lock()
	s.replSeq = rec.Seq
	s.mu.Unlock()
	return nil
}
