package serve

import (
	"fmt"

	"repro/internal/dynamic"
	"repro/internal/phys"
)

// Session measures. A session is created under one interference measure
// and keeps it for life: the measure names the engine that scores every
// mutation, so it is part of the session's behavioral identity and is
// recorded in the trace header, the WAL create record, and the
// checkpoint header — replay, recovery, and replication all rebuild the
// session under the same engine, which is what keeps them byte-exact.
const (
	// MeasureGraph is the paper's receiver-centric disk measure
	// (core.Evaluator) — the default, and the implicit measure of every
	// trace or WAL written before measures existed.
	MeasureGraph = "graph"
	// MeasureSinr is the physical-model measure (phys.Evaluator):
	// per-receiver SINR power sums under phys.Default.
	MeasureSinr = "sinr"
)

// ValidMeasure reports whether the name is a known measure ("" counts:
// it means "the configured default"). Front doors use it to reject bad
// -measure values as usage errors before a manager exists.
func ValidMeasure(measure string) bool {
	_, err := normalizeMeasure(measure)
	return err == nil
}

// normalizeMeasure maps the empty string to the graph default and
// validates the name.
func normalizeMeasure(measure string) (string, error) {
	switch measure {
	case "", MeasureGraph:
		return MeasureGraph, nil
	case MeasureSinr:
		return MeasureSinr, nil
	}
	return "", fmt.Errorf("serve: unknown measure %q (want %q or %q)", measure, MeasureGraph, MeasureSinr)
}

// engineFor picks the engine factory for a measure. Config.Engine and
// Config.SinrEngine are the test-injection overrides (oracle shadows);
// production sessions get core.Evaluator or phys.Evaluator.
func (m *Manager) engineFor(measure string) dynamic.EngineFactory {
	if measure == MeasureSinr {
		if m.cfg.SinrEngine != nil {
			return m.cfg.SinrEngine
		}
		return phys.NewMeasure
	}
	return m.cfg.Engine
}
