package serve_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// BenchmarkBatchPipeline drives one mutation per op through the full
// enqueue→coalesce→apply→publish pipeline (Flush barriers each batch) —
// the path that pays the always-on flight-recorder write while
// observability is enabled. Here observability is runtime-disabled:
// `make obs-overhead` runs the obs_off build (flight machinery compiled
// out entirely) as the baseline and gates this build within OBS_TOL,
// pinning the flight guards to the same ≤3% disabled-path contract as
// the rest of the subsystem. The *enabled* write's cost is bounded
// absolutely by TestFlightWriteGate in internal/obs.
func BenchmarkBatchPipeline(b *testing.B) {
	prev := obs.SetEnabled(false)
	b.Cleanup(func() { obs.SetEnabled(prev) })
	m := serve.NewManager(serve.Config{Shards: 2})
	defer m.Close(context.Background())
	s, err := m.CreateSession("bench", line(64))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Apply(serve.SetRadius(rng.Int63n(64), 0.1+rng.Float64()*0.4)); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
