package serve_test

// End-to-end coverage for the physical (SINR) measure through the serve
// layer: a session created with measure=sinr runs the maintainer over
// the phys evaluator, stamps its trace header, persists the measure
// through WAL create records and checkpoints, and recovers to the exact
// pre-crash state. The graph default must stay byte-identical — these
// tests pin both sides.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/phys"
	"repro/internal/serve"
	"repro/internal/store"
)

// physCheck asserts the snapshot's interference column equals the naive
// O(n²) physical oracle over the same node set.
func physCheck(t *testing.T, snap *serve.Snapshot) {
	t.Helper()
	pts := make([]geom.Point, len(snap.Nodes))
	radii := make([]float64, len(snap.Nodes))
	for i, nd := range snap.Nodes {
		pts[i] = geom.Pt(nd.X, nd.Y)
		radii[i] = nd.R
	}
	lv := oracle.PhysLevels(pts, radii, phys.Default())
	for i, nd := range snap.Nodes {
		if nd.I != lv[i] {
			t.Fatalf("node %d: snapshot I=%d, physical oracle says %d", nd.ID, nd.I, lv[i])
		}
	}
	if snap.Max != lv.Max() {
		t.Fatalf("snapshot Max=%d, physical oracle says %d", snap.Max, lv.Max())
	}
}

func TestSinrSessionLifecycle(t *testing.T) {
	m := serve.NewManager(serve.Config{Shards: 1, Deterministic: true})
	defer m.Close(context.Background())

	s, err := m.CreateSessionMeasure("p1", line(5), serve.MeasureSinr)
	if err != nil {
		t.Fatalf("CreateSessionMeasure: %v", err)
	}
	if s.Measure() != serve.MeasureSinr {
		t.Fatalf("Measure()=%q, want %q", s.Measure(), serve.MeasureSinr)
	}

	mustApply(t, s,
		serve.Add(0.7, 0.3),
		serve.SetRadius(1, 1.25),
		serve.Move(0, 0.05, 0.1),
		serve.AnnealStep(300, 7),
	)
	flush(t, s)
	physCheck(t, s.Snapshot())

	// The trace header carries the measure, and the trace still parses.
	tr := s.TraceText()
	head, _, _ := strings.Cut(tr, "\n")
	if !strings.HasPrefix(head, "rimd-trace v1") || !strings.Contains(head, " measure=sinr") {
		t.Fatalf("sinr trace header %q lacks measure token", head)
	}
	if _, ops, err := serve.ParseTrace(tr); err != nil || len(ops) != 4 {
		t.Fatalf("sinr trace parse: ops=%d err=%v", len(ops), err)
	}

	// A plain graph session in the same manager keeps the pre-measure
	// header byte-for-byte: no measure token.
	g := mustCreate(t, m, "g1", line(3))
	if g.Measure() != serve.MeasureGraph {
		t.Fatalf("default Measure()=%q, want %q", g.Measure(), serve.MeasureGraph)
	}
	if gh, _, _ := strings.Cut(g.TraceText(), "\n"); strings.Contains(gh, "measure") {
		t.Fatalf("graph trace header %q grew a measure token", gh)
	}

	// Unknown measures are rejected at the door.
	if _, err := m.CreateSessionMeasure("bad", line(2), "fancy"); err == nil {
		t.Fatal("unknown measure accepted")
	}
}

// TestSinrOverHTTP drives the measure through the JSON API: create with
// "measure":"sinr", mutate, and read the measure back from the summary.
// Graph summaries must not grow a measure field.
func TestSinrOverHTTP(t *testing.T) {
	c, _ := newClient(t, serve.Config{Shards: 1, Deterministic: true})

	c.want(201, "POST", "/v1/sessions",
		map[string]any{"id": "ph", "n": 16, "seed": 3, "measure": "sinr"}, nil)
	c.want(201, "POST", "/v1/sessions", map[string]any{"id": "gr", "n": 4, "seed": 1}, nil)
	c.want(400, "POST", "/v1/sessions",
		map[string]any{"id": "bad", "n": 4, "measure": "fancy"}, nil)

	c.want(202, "POST", "/v1/sessions/ph/mutations", map[string]any{
		"ops": []map[string]any{
			{"op": "set_radius", "node": 0, "r": 0.5},
			{"op": "anneal", "iters": 200, "seed": 11},
		},
	}, nil)
	c.want(200, "POST", "/v1/sessions/ph/flush", nil, nil)

	var summary map[string]any
	c.want(200, "GET", "/v1/sessions/ph", nil, &summary)
	if summary["measure"] != "sinr" {
		t.Fatalf("sinr summary measure = %v", summary["measure"])
	}
	summary = nil
	c.want(200, "GET", "/v1/sessions/gr", nil, &summary)
	if _, leaked := summary["measure"]; leaked {
		t.Fatalf("graph summary grew a measure field: %v", summary)
	}
}

// TestSinrDurableRecovery crashes a sinr session twice — once with only
// WAL records, once with a checkpoint plus tail — and demands the exact
// pre-crash state and measure back. Recover(true) cross-checks every
// recovered session against the oracle, which for sinr sessions means
// the naive physical model: recovery succeeding at all is the proof the
// measure survived the trip.
func TestSinrDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, store.SyncNone)
	m := serve.NewManager(serve.Config{Shards: 1, Store: st})

	s, err := m.CreateSessionMeasure("p", line(6), serve.MeasureSinr)
	if err != nil {
		t.Fatalf("CreateSessionMeasure: %v", err)
	}
	mustApply(t, s, serve.Add(0.9, 0.4), serve.SetRadius(2, 1.5), serve.Remove(0))
	flush(t, s)
	want := snapKey(s.Snapshot())
	if err := st.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}

	// Crash 1: log-only recovery.
	st2 := openStore(t, dir, store.SyncNone)
	m2 := serve.NewManager(serve.Config{Shards: 1, Store: st2})
	rs, err := m2.Recover(true)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Sessions != 1 || rs.FromLog != 1 || rs.Verified != 1 {
		t.Fatalf("RecoveryStats=%+v, want 1 verified session from log", rs)
	}
	s2, ok := m2.Session("p")
	if !ok {
		t.Fatal("sinr session not recovered")
	}
	if s2.Measure() != serve.MeasureSinr {
		t.Fatalf("recovered Measure()=%q, want sinr", s2.Measure())
	}
	if got := snapKey(s2.Snapshot()); got != want {
		t.Fatalf("recovered state\n got %s\nwant %s", got, want)
	}
	physCheck(t, s2.Snapshot())

	// Checkpoint, keep mutating, crash again: checkpoint + tail recovery.
	if _, err := m2.CheckpointAll(context.Background()); err != nil {
		t.Fatalf("CheckpointAll: %v", err)
	}
	mustApply(t, s2, serve.Move(1, 0.33, 0.66), serve.SetRadius(3, 0.75))
	flush(t, s2)
	want = snapKey(s2.Snapshot())
	if err := m2.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}

	st3 := openStore(t, dir, store.SyncNone)
	defer st3.Close()
	m3 := serve.NewManager(serve.Config{Shards: 1, Store: st3})
	defer m3.Close(context.Background())
	rs, err = m3.Recover(true)
	if err != nil {
		t.Fatalf("Recover 2: %v", err)
	}
	if rs.FromCheckpoint != 1 || rs.Verified != 1 {
		t.Fatalf("RecoveryStats=%+v, want 1 verified session from checkpoint", rs)
	}
	s3, ok := m3.Session("p")
	if !ok {
		t.Fatal("sinr session not recovered from checkpoint")
	}
	if s3.Measure() != serve.MeasureSinr {
		t.Fatalf("checkpoint-recovered Measure()=%q, want sinr", s3.Measure())
	}
	if got := snapKey(s3.Snapshot()); got != want {
		t.Fatalf("checkpoint-recovered state\n got %s\nwant %s", got, want)
	}
	physCheck(t, s3.Snapshot())
}
