package serve

import "sync"

// shard is one worker of the pool: a run queue of sessions with pending
// mutations and the goroutine that drains them. A session appears in at
// most one shard (by ID hash) and at most once in its run queue (the
// session's scheduled flag), so every session has exactly one writer.
type shard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	runq    []*Session
	stopped bool
}

func newShard() *shard {
	sh := &shard{}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// schedule queues a session for a batch application. Called with the
// session's scheduled flag freshly set, so a session is never queued
// twice. After stop, scheduling is a no-op (drain has already flushed
// every queue that matters); the return value reports whether the
// session was actually queued, so callers that must not wait on a dead
// owner — Flush's snapshot-refresh pass — can back out.
func (sh *shard) schedule(s *Session) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopped {
		return false
	}
	sh.runq = append(sh.runq, s)
	sh.cond.Signal()
	return true
}

// stop makes the loop exit once the run queue is empty.
func (sh *shard) stop() {
	sh.mu.Lock()
	sh.stopped = true
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// loop pops sessions and applies one batch each — round-robin across the
// shard's sessions, so one hot session cannot starve its neighbors.
func (sh *shard) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		sh.mu.Lock()
		for len(sh.runq) == 0 && !sh.stopped {
			sh.cond.Wait()
		}
		if len(sh.runq) == 0 && sh.stopped {
			sh.mu.Unlock()
			return
		}
		s := sh.runq[0]
		sh.runq = sh.runq[1:]
		sh.mu.Unlock()
		s.runBatch()
	}
}
