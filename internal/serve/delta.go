package serve

import "repro/internal/dynamic"

// BatchDelta is the per-batch dirty-set summary the owner accumulates
// while applying mutations, published to Config.AfterBatchDelta so
// consumers (the subscription matcher, diff-based replication feeds)
// never have to diff consecutive snapshots. Its contract:
//
//   - Added/Removed/Moved are EXACT: a node is present in exactly one of
//     them iff its presence or position changed across the batch. Moved
//     carries both endpoints. A node added and removed within one batch
//     appears in both lists (net no-op at the boundary — consumers that
//     evaluate against the post-batch engine see it resolve to nothing).
//   - Radius is exact for client-initiated radius overrides
//     (OpSetRadius), old and new values included.
//   - Disks over-approximates everything else: every maintainer side
//     effect (a neighbor growing to answer an arrival, shrinks after a
//     departure, connectivity-repair growth) is reported as the disk
//     within which any node's received interference may have changed.
//     Every node whose radius or interference changed is covered by some
//     disk or listed above — the regression test in delta_test.go holds
//     this against a naive snapshot diff.
//   - Full marks a batch whose changes are unbounded (an anneal adopted
//     a whole new radius assignment, or drift control rebuilt the
//     topology): the lists and disks for that batch are not exhaustive
//     and consumers must re-evaluate everything.
//
// The delta (and its slices) is owned by the session and reused across
// batches: AfterBatchDelta consumers must copy anything they keep.
type BatchDelta struct {
	Added   []NodeChange
	Removed []NodeChange
	Moved   []NodeChange
	Radius  []RadiusChange
	Disks   []Disk
	Full    bool
}

// NodeChange is one presence or position change. Added entries carry the
// new position in X/Y; Removed entries the old position in OldX/OldY;
// Moved entries both.
type NodeChange struct {
	ID         int64
	X, Y       float64
	OldX, OldY float64
}

// RadiusChange is one client-initiated radius override.
type RadiusChange struct {
	ID       int64
	Old, New float64
}

// Disk is a region of potential interference change: any node within
// distance R of (X, Y) may have a different received interference after
// the batch.
type Disk struct {
	X, Y, R float64
}

// reset clears the delta for the next batch, keeping slice capacity.
func (d *BatchDelta) reset() {
	d.Added = d.Added[:0]
	d.Removed = d.Removed[:0]
	d.Moved = d.Moved[:0]
	d.Radius = d.Radius[:0]
	d.Disks = d.Disks[:0]
	d.Full = false
}

// Empty reports whether the batch recorded no changes at all.
func (d *BatchDelta) Empty() bool {
	return !d.Full && len(d.Added) == 0 && len(d.Removed) == 0 &&
		len(d.Moved) == 0 && len(d.Radius) == 0 && len(d.Disks) == 0
}

// BatchView is the argument to Config.AfterBatchDelta: the post-batch
// engine plus the batch's dirty summary and the session's external-ID
// translation. It is valid only for the duration of the hook call, on
// the session's owner goroutine — the engine and the translation
// closures must not be retained or called afterwards.
type BatchView struct {
	// Session is the session's ID.
	Session string
	// Seq is the post-batch mutation-log position.
	Seq uint64
	// Trace is the distributed trace id of the batch (0 = untraced);
	// consumers stamp it onto whatever they emit so one trace covers
	// mutation ingress through event delivery.
	Trace uint64
	// Engine is the session's live engine, positioned after the batch.
	Engine dynamic.Engine
	// Delta is the batch's dirty summary (owned by the session; copy to
	// keep).
	Delta *BatchDelta
	// IDOf translates an engine index to the stable external node ID
	// (valid for 0 <= idx < Engine.N()).
	IDOf func(idx int) int64
	// IdxOf translates an external node ID to its current engine index.
	IdxOf func(id int64) (int, bool)
}
