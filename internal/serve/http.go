package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/obs"
)

// HTTP/JSON front door. Routes (Go 1.22 pattern syntax):
//
//	GET    /healthz                     liveness
//	GET    /metrics                     Prometheus text exposition
//	POST   /v1/sessions                 create a session
//	GET    /v1/sessions                 list session IDs
//	GET    /v1/sessions/{id}            summary (from the snapshot)
//	DELETE /v1/sessions/{id}            drop a session
//	POST   /v1/sessions/{id}/mutations  enqueue mutations (202; 429 = backpressure)
//	POST   /v1/sessions/{id}/flush      wait until the queue drains
//	GET    /v1/sessions/{id}/nodes      per-node state
//	GET    /v1/sessions/{id}/edges      maintained topology edges
//	GET    /v1/sessions/{id}/trace      deterministic-mode mutation trace
//
// Every read is served from the session's published snapshot; no read
// path takes a session lock.

type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type createReq struct {
	ID     string      `json:"id"`
	Points []pointJSON `json:"points,omitempty"`
	// Alternatively, generate a uniform instance server-side:
	N    int     `json:"n,omitempty"`
	Seed int64   `json:"seed,omitempty"`
	Side float64 `json:"side,omitempty"` // 0 = sqrt(n)/5
	// Measure picks the interference measure: "graph" (default) or
	// "sinr". Empty falls back to the server's -measure setting.
	Measure string `json:"measure,omitempty"`
}

type opJSON struct {
	Op    string  `json:"op"`
	Node  *int64  `json:"node,omitempty"`
	X     float64 `json:"x,omitempty"`
	Y     float64 `json:"y,omitempty"`
	R     float64 `json:"r,omitempty"`
	Iters int     `json:"iters,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
}

type mutateReq struct {
	Ops []opJSON `json:"ops"`
}

type summaryJSON struct {
	ID       string  `json:"id"`
	N        int     `json:"n"`
	Max      int     `json:"max_interference"`
	Avg      float64 `json:"avg_interference"`
	Edges    int     `json:"edges"`
	Seq      uint64  `json:"seq"`
	Events   int     `json:"events"`
	Rebuilds int     `json:"rebuilds"`
	AgeMS    float64 `json:"snapshot_age_ms"`
	Queue    int     `json:"queue_depth"`
	// Measure is emitted only for non-graph sessions, keeping graph
	// summaries byte-identical to the pre-measure format.
	Measure string `json:"measure,omitempty"`
}

type errJSON struct {
	Error string `json:"error"`
}

// NewHandler mounts the service API over a manager.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	h := &api{m: m}
	mux.HandleFunc("GET /healthz", h.route("healthz", h.healthz))
	mux.HandleFunc("GET /metrics", h.route("metrics", h.metrics))
	mux.HandleFunc("POST /v1/sessions", h.route("create", h.create))
	mux.HandleFunc("GET /v1/sessions", h.route("list", h.list))
	mux.HandleFunc("GET /v1/sessions/{id}", h.route("summary", h.summary))
	mux.HandleFunc("DELETE /v1/sessions/{id}", h.route("drop", h.drop))
	mux.HandleFunc("POST /v1/sessions/{id}/mutations", h.route("mutate", h.mutate))
	mux.HandleFunc("POST /v1/sessions/{id}/flush", h.route("flush", h.flush))
	mux.HandleFunc("GET /v1/sessions/{id}/nodes", h.route("nodes", h.nodes))
	mux.HandleFunc("GET /v1/sessions/{id}/edges", h.route("edges", h.edges))
	mux.HandleFunc("GET /v1/sessions/{id}/trace", h.route("trace", h.trace))
	return mux
}

type api struct{ m *Manager }

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// route wraps a handler with request counting and panic containment.
func (h *api) route(name string, fn func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				writeErr(sw, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
			h.m.metrics.IncHTTP(name, sw.code)
		}()
		fn(sw, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errJSON{Error: msg})
}

func (h *api) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	s, ok := h.m.Session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such session")
	}
	return s, ok
}

func (h *api) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (h *api) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	h.m.WriteMetrics(w)
	// Registry-backed families (rim_core_*, rim_dynamic_*, …) render after
	// the legacy rimd_* block, whose byte layout the golden test locks.
	obs.Default().WritePrometheus(w)
}

func (h *api) create(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	var pts []geom.Point
	switch {
	case len(req.Points) > 0:
		pts = make([]geom.Point, len(req.Points))
		for i, p := range req.Points {
			pts[i] = geom.Pt(p.X, p.Y)
		}
	case req.N > 0:
		side := req.Side
		if side <= 0 {
			side = math.Sqrt(float64(req.N)) / 5
		}
		pts = gen.UniformSquare(rand.New(rand.NewSource(req.Seed)), req.N, side)
	}
	s, err := h.m.CreateSessionMeasure(req.ID, pts, req.Measure)
	switch {
	case errors.Is(err, ErrSessionExists):
		writeErr(w, http.StatusConflict, err.Error())
	case errors.Is(err, ErrReadOnly):
		writeErr(w, http.StatusForbidden, err.Error())
	case errors.Is(err, ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusCreated, map[string]any{"id": s.ID(), "n": s.Snapshot().N})
	}
}

func (h *api) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sessions": h.m.SessionIDs()})
}

func (h *api) summary(w http.ResponseWriter, r *http.Request) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	head := s.Head()
	sj := summaryJSON{
		ID: s.ID(), N: head.N, Max: head.Max, Avg: head.Avg,
		Edges: head.Edges, Seq: head.Seq, Events: head.Events,
		Rebuilds: head.Rebuilds, AgeMS: float64(head.Age()) / float64(time.Millisecond),
		Queue: s.QueueDepth(),
	}
	if mea := s.Measure(); mea != MeasureGraph {
		sj.Measure = mea
	}
	writeJSON(w, http.StatusOK, sj)
}

func (h *api) drop(w http.ResponseWriter, r *http.Request) {
	if err := h.m.DropSession(r.PathValue("id")); err != nil {
		if errors.Is(err, ErrReadOnly) {
			writeErr(w, http.StatusForbidden, err.Error())
			return
		}
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": r.PathValue("id")})
}

// mutate enqueues a batch of mutations. Backpressure surfaces as 429 with
// Retry-After; the client is expected to wait and resubmit.
func (h *api) mutate(w http.ResponseWriter, r *http.Request) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	var req mutateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	muts := make([]Mutation, 0, len(req.Ops))
	for i, op := range req.Ops {
		kind, known := opFromString(op.Op)
		if !known {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("ops[%d]: unknown op %q", i, op.Op))
			return
		}
		mu := Mutation{Op: kind, Node: -1, X: op.X, Y: op.Y, R: op.R, Iters: op.Iters, Seed: op.Seed}
		if op.Node != nil {
			mu.Node = *op.Node
		} else if kind != OpAdd && kind != OpAnneal {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("ops[%d]: %s requires node", i, kind))
			return
		}
		muts = append(muts, mu)
	}
	var tc *obs.TraceContext
	if obs.On() && len(muts) > 0 {
		t := traceFromHeader(r.Header.Get("X-Rim-Trace"))
		tc = &t
		muts[0].TC = tc
	}
	ids, err := s.Apply(muts...)
	if tc != nil {
		// Echoed on every outcome, including backpressure — the client
		// retries under the same trace.
		w.Header().Set("X-Rim-Trace", formatTraceHeader(*tc))
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrSessionClosed):
		writeErr(w, http.StatusGone, err.Error())
	case errors.Is(err, ErrReadOnly):
		writeErr(w, http.StatusForbidden, err.Error())
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{"queued": len(muts), "ids": ids})
	}
}

// traceFromHeader resurrects a caller-supplied trace context from an
// X-Rim-Trace header ("<trace hex>-<parent span hex>-<flags hex>"), or
// mints a fresh sampled root when the header is absent or malformed —
// the HTTP facade is a trace edge, so every mutate is traced while
// observability is on.
func traceFromHeader(v string) obs.TraceContext {
	if v != "" {
		var tid, sid, fl uint64
		if n, err := fmt.Sscanf(v, "%x-%x-%x", &tid, &sid, &fl); n == 3 && err == nil && tid != 0 && fl <= 0xff {
			return obs.TraceContext{TraceID: tid, SpanID: sid, Flags: uint8(fl)}
		}
	}
	return obs.TraceContext{TraceID: obs.NewTraceID(), Flags: obs.TraceFlagSampled}
}

// formatTraceHeader inverts traceFromHeader.
func formatTraceHeader(tc obs.TraceContext) string {
	return fmt.Sprintf("%016x-%016x-%02x", tc.TraceID, tc.SpanID, tc.Flags)
}

func (h *api) flush(w http.ResponseWriter, r *http.Request) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	if err := s.Flush(r.Context()); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": s.Snapshot().Seq})
}

func (h *api) nodes(w http.ResponseWriter, r *http.Request) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{"seq": snap.Seq, "nodes": snap.Nodes})
}

func (h *api) edges(w http.ResponseWriter, r *http.Request) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{"seq": snap.Seq, "edges": snap.Edges})
}

func (h *api) trace(w http.ResponseWriter, r *http.Request) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	text := s.TraceText()
	if text == "" {
		writeErr(w, http.StatusConflict, "session not in deterministic mode")
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprint(w, text)
}
