package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// The daemon's metric set, rendered in Prometheus text format. The
// counter/histogram machinery lives in internal/obs (promoted from here
// when the observability layer landed); this file keeps only the metric
// definitions, the per-session scrape-time gauges, and the exposition
// renderer — whose exact output is locked by the golden-file test.

// Counter and Histogram alias the obs primitives so the serve package's
// exported metric surface (Metrics.Batches etc.) is unchanged.
type (
	Counter   = obs.Counter
	Histogram = obs.Histogram
)

// NewHistogram builds a histogram over ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram { return obs.NewHistogram(bounds...) }

// Metrics is the daemon's metric set. Counters and histograms are updated
// on the hot paths; per-session gauges (queue depth, snapshot age, size)
// are computed at scrape time from the live session table.
type Metrics struct {
	SessionsCreated Counter
	Enqueued        Counter
	QueueFull       Counter
	Batches         Counter
	Rebuilds        Counter
	ApplyPanics     Counter
	DrainDropped    Counter
	WALFailures     Counter

	BatchSize    *Histogram
	ApplyLatency *Histogram

	httpMu   sync.Mutex
	httpReqs map[string]int64 // `route,code` -> count
}

// NewMetrics builds the metric set with the daemon's bucket layouts.
func NewMetrics() *Metrics {
	return &Metrics{
		BatchSize:    NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
		ApplyLatency: NewHistogram(1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1),
		httpReqs:     make(map[string]int64),
	}
}

// IncHTTP counts one served request by route and status code.
func (mx *Metrics) IncHTTP(route string, code int) {
	key := route + "," + strconv.Itoa(code)
	mx.httpMu.Lock()
	mx.httpReqs[key]++
	mx.httpMu.Unlock()
}

// WriteMetrics renders the full Prometheus text exposition: process-wide
// counters and histograms plus per-session gauges, in deterministic
// order.
func (m *Manager) WriteMetrics(w io.Writer) {
	mx := m.metrics

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("rimd_sessions_created_total", "Sessions created since start.", mx.SessionsCreated.Value())
	counter("rimd_mutations_enqueued_total", "Mutations accepted into session queues.", mx.Enqueued.Value())
	counter("rimd_queue_full_total", "Apply calls refused with backpressure.", mx.QueueFull.Value())
	counter("rimd_batches_total", "Mutation batches applied.", mx.Batches.Value())
	counter("rimd_rebuilds_total", "Full topology rebuilds across all sessions.", mx.Rebuilds.Value())
	counter("rimd_apply_panics_total", "Mutations contained after an engine panic.", mx.ApplyPanics.Value())
	counter("rimd_drain_dropped_total", "Queued mutations rejected at the shutdown drain deadline.", mx.DrainDropped.Value())
	counter("rimd_wal_failures_total", "WAL appends failed (durability logging disabled, serving continues).", mx.WALFailures.Value())

	sessions := m.liveSessions()
	var applied, rejected int64
	for _, s := range sessions {
		a, r := s.Counts()
		applied += a
		rejected += r
	}
	counter("rimd_mutations_applied_total", "Mutations applied across live sessions.", applied)
	counter("rimd_mutations_rejected_total", "Mutations rejected (unknown node, contained panic).", rejected)

	fmt.Fprintf(w, "# HELP rimd_http_requests_total Served HTTP requests.\n# TYPE rimd_http_requests_total counter\n")
	mx.httpMu.Lock()
	keys := make([]string, 0, len(mx.httpReqs))
	for k := range mx.httpReqs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		route, code, _ := cut2(k)
		fmt.Fprintf(w, "rimd_http_requests_total{route=%q,code=%q} %d\n", route, code, mx.httpReqs[k])
	}
	mx.httpMu.Unlock()

	fmt.Fprintf(w, "# HELP rimd_batch_size Mutations per applied batch.\n# TYPE rimd_batch_size histogram\n")
	mx.BatchSize.WriteProm(w, "rimd_batch_size")
	fmt.Fprintf(w, "# HELP rimd_apply_latency_seconds Batch apply latency.\n# TYPE rimd_apply_latency_seconds histogram\n")
	mx.ApplyLatency.WriteProm(w, "rimd_apply_latency_seconds")

	fmt.Fprintf(w, "# HELP rimd_sessions Live sessions.\n# TYPE rimd_sessions gauge\nrimd_sessions %d\n", len(sessions))
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	gauge("rimd_queue_depth", "Pending mutations per session.")
	for _, s := range sessions {
		fmt.Fprintf(w, "rimd_queue_depth{session=%q} %d\n", s.id, s.QueueDepth())
	}
	gauge("rimd_snapshot_age_seconds", "Age of the published head per session.")
	for _, s := range sessions {
		fmt.Fprintf(w, "rimd_snapshot_age_seconds{session=%q} %s\n", s.id, ftoa(s.Head().Age().Seconds()))
	}
	gauge("rimd_session_seq", "Mutation-log prefix length per session.")
	for _, s := range sessions {
		fmt.Fprintf(w, "rimd_session_seq{session=%q} %d\n", s.id, s.Head().Seq)
	}
	gauge("rimd_session_nodes", "Instance size per session.")
	for _, s := range sessions {
		fmt.Fprintf(w, "rimd_session_nodes{session=%q} %d\n", s.id, s.Head().N)
	}
	gauge("rimd_session_interference", "Maintained I(G') per session.")
	for _, s := range sessions {
		fmt.Fprintf(w, "rimd_session_interference{session=%q} %d\n", s.id, s.Head().Max)
	}
}

func cut2(key string) (route, code string, ok bool) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == ',' {
			return key[:i], key[i+1:], true
		}
	}
	return key, "", false
}
