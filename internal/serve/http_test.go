package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

type client struct {
	t   *testing.T
	srv *httptest.Server
}

func newClient(t *testing.T, cfg serve.Config) (*client, *serve.Manager) {
	t.Helper()
	m := serve.NewManager(cfg)
	srv := httptest.NewServer(serve.NewHandler(m))
	t.Cleanup(func() { srv.Close(); m.Close(context.Background()) })
	return &client{t: t, srv: srv}, m
}

// do issues a request and decodes the JSON body into out (skipped when
// out is nil), returning the response for header/status checks.
func (c *client) do(method, path string, body, out any) *http.Response {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatalf("request: %v", err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
	return resp
}

func (c *client) want(code int, method, path string, body, out any) {
	c.t.Helper()
	if resp := c.do(method, path, body, out); resp.StatusCode != code {
		c.t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, code)
	}
}

func TestHTTPAPIRoundTrip(t *testing.T) {
	c, _ := newClient(t, serve.Config{Shards: 2, Deterministic: true})

	// Create with server-side generation, then with explicit points.
	var created struct {
		ID string `json:"id"`
		N  int    `json:"n"`
	}
	c.want(http.StatusCreated, "POST", "/v1/sessions",
		map[string]any{"id": "gen", "n": 32, "seed": 9}, &created)
	if created.N != 32 {
		t.Fatalf("generated n = %d", created.N)
	}
	c.want(http.StatusCreated, "POST", "/v1/sessions",
		map[string]any{"id": "pts", "points": []map[string]float64{
			{"x": 0, "y": 0}, {"x": 0.5, "y": 0}, {"x": 1.0, "y": 0.2},
		}}, nil)
	c.want(http.StatusConflict, "POST", "/v1/sessions", map[string]any{"id": "pts"}, nil)

	var list struct {
		Sessions []string `json:"sessions"`
	}
	c.want(http.StatusOK, "GET", "/v1/sessions", nil, &list)
	if len(list.Sessions) != 2 || list.Sessions[0] != "gen" || list.Sessions[1] != "pts" {
		t.Fatalf("sessions = %v", list.Sessions)
	}

	// Mutate: one of each op kind; adds return assigned IDs.
	var accepted struct {
		Queued int     `json:"queued"`
		IDs    []int64 `json:"ids"`
	}
	c.want(http.StatusAccepted, "POST", "/v1/sessions/pts/mutations", map[string]any{
		"ops": []map[string]any{
			{"op": "add", "x": 0.25, "y": 0.1},
			{"op": "set_radius", "node": 0, "r": 0.75},
			{"op": "move", "node": 1, "x": 0.4, "y": 0.1},
			{"op": "anneal", "iters": 100, "seed": 5},
		},
	}, &accepted)
	if accepted.Queued != 4 || len(accepted.IDs) != 1 || accepted.IDs[0] != 3 {
		t.Fatalf("accepted = %+v", accepted)
	}

	var flushed struct {
		Seq uint64 `json:"seq"`
	}
	c.want(http.StatusOK, "POST", "/v1/sessions/pts/flush", nil, &flushed)
	if flushed.Seq != 4 {
		t.Fatalf("flushed seq = %d", flushed.Seq)
	}

	var summary struct {
		N     int    `json:"n"`
		Seq   uint64 `json:"seq"`
		Max   int    `json:"max_interference"`
		Queue int    `json:"queue_depth"`
	}
	c.want(http.StatusOK, "GET", "/v1/sessions/pts", nil, &summary)
	if summary.N != 4 || summary.Seq != 4 || summary.Queue != 0 {
		t.Fatalf("summary = %+v", summary)
	}

	var nodes struct {
		Nodes []serve.NodeState `json:"nodes"`
	}
	c.want(http.StatusOK, "GET", "/v1/sessions/pts/nodes", nil, &nodes)
	if len(nodes.Nodes) != 4 {
		t.Fatalf("nodes = %+v", nodes.Nodes)
	}
	var edges struct {
		Edges [][2]int64 `json:"edges"`
	}
	c.want(http.StatusOK, "GET", "/v1/sessions/pts/edges", nil, &edges)
	if len(edges.Edges) == 0 {
		t.Fatalf("no edges on a connected instance")
	}

	// Deterministic-mode trace is parseable and starts with the header.
	resp := c.do("GET", "/v1/sessions/pts/trace", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}

	c.want(http.StatusOK, "DELETE", "/v1/sessions/pts", nil, nil)
	c.want(http.StatusNotFound, "GET", "/v1/sessions/pts", nil, nil)
	c.want(http.StatusNotFound, "DELETE", "/v1/sessions/pts", nil, nil)
}

func TestHTTPErrors(t *testing.T) {
	c, _ := newClient(t, serve.Config{Shards: 1}) // non-deterministic
	c.want(http.StatusCreated, "POST", "/v1/sessions", map[string]any{"id": "s", "n": 4}, nil)

	c.want(http.StatusNotFound, "GET", "/v1/sessions/nope", nil, nil)
	c.want(http.StatusNotFound, "POST", "/v1/sessions/nope/mutations",
		map[string]any{"ops": []map[string]any{{"op": "add"}}}, nil)

	// Malformed JSON, unknown op, missing node, invalid values.
	req, _ := http.NewRequest("POST", c.srv.URL+"/v1/sessions", strings.NewReader("{nope"))
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}
	c.want(http.StatusBadRequest, "POST", "/v1/sessions/s/mutations",
		map[string]any{"ops": []map[string]any{{"op": "explode"}}}, nil)
	c.want(http.StatusBadRequest, "POST", "/v1/sessions/s/mutations",
		map[string]any{"ops": []map[string]any{{"op": "remove"}}}, nil)
	c.want(http.StatusBadRequest, "POST", "/v1/sessions/s/mutations",
		map[string]any{"ops": []map[string]any{{"op": "set_radius", "node": 0, "r": -2}}}, nil)

	// Trace only exists in deterministic mode.
	c.want(http.StatusConflict, "GET", "/v1/sessions/s/trace", nil, nil)

	// Empty-ID create.
	c.want(http.StatusBadRequest, "POST", "/v1/sessions", map[string]any{"n": 4}, nil)
}

// TestHTTPBackpressure fills a tiny queue behind a gated batch worker and
// expects 429 + Retry-After, then full recovery once the worker resumes.
func TestHTTPBackpressure(t *testing.T) {
	gate := make(chan struct{})
	c, _ := newClient(t, serve.Config{
		Shards: 1, QueueCap: 3,
		BeforeBatch: func(string) { <-gate },
	})
	c.want(http.StatusCreated, "POST", "/v1/sessions", map[string]any{"id": "bp", "n": 4}, nil)

	one := map[string]any{"ops": []map[string]any{{"op": "set_radius", "node": 0, "r": 0.5}}}
	for i := 0; i < 3; i++ {
		c.want(http.StatusAccepted, "POST", "/v1/sessions/bp/mutations", one, nil)
	}
	resp := c.do("POST", "/v1/sessions/bp/mutations", one, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}

	close(gate) // worker resumes; queue drains
	c.want(http.StatusOK, "POST", "/v1/sessions/bp/flush", nil, nil)
	c.want(http.StatusAccepted, "POST", "/v1/sessions/bp/mutations", one, nil)
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	c, _ := newClient(t, serve.Config{Shards: 1})
	c.want(http.StatusCreated, "POST", "/v1/sessions", map[string]any{"id": "m1", "n": 8}, nil)
	c.want(http.StatusAccepted, "POST", "/v1/sessions/m1/mutations",
		map[string]any{"ops": []map[string]any{{"op": "add", "x": 0.1, "y": 0.1}}}, nil)
	c.want(http.StatusOK, "POST", "/v1/sessions/m1/flush", nil, nil)

	resp := c.do("GET", "/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}

	req, _ := http.NewRequest("GET", c.srv.URL+"/metrics", nil)
	mresp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"rimd_sessions_created_total 1",
		"rimd_mutations_enqueued_total 1",
		"rimd_mutations_applied_total 1",
		"rimd_batches_total",
		"rimd_batch_size_bucket{le=\"1\"}",
		"rimd_apply_latency_seconds_bucket{le=\"+Inf\"}",
		"rimd_apply_latency_seconds_count 1",
		`rimd_queue_depth{session="m1"} 0`,
		`rimd_snapshot_age_seconds{session="m1"}`,
		`rimd_session_nodes{session="m1"} 9`,
		`rimd_session_seq{session="m1"} 1`,
		`rimd_http_requests_total{route="create",code="201"} 1`,
		"rimd_sessions 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		fmt.Println(text)
	}
}
