package serve

// White-box tests for the durability payload encodings: the WAL record
// and checkpoint formats must round-trip exactly, and the checkpoint
// decoder must reject damage instead of guessing.

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/store"
)

func TestBatchPayloadRoundTrip(t *testing.T) {
	batch := []Mutation{
		{Op: OpAdd, Node: 7, X: 1.25, Y: -0.5},
		{Op: OpRemove, Node: 3},
		{Op: OpMove, Node: 7, X: 0.1, Y: 0.2},
		{Op: OpSetRadius, Node: 7, R: 2.75},
		{Op: OpAnneal, Iters: 500, Seed: -42},
	}
	got, err := parseBatchPayload(encodeBatch(nil, batch))
	if err != nil {
		t.Fatalf("parseBatchPayload: %v", err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("round trip\n got %+v\nwant %+v", got, batch)
	}
	if muts, err := parseBatchPayload(nil); err != nil || len(muts) != 0 {
		t.Fatalf("empty payload: %v %v", muts, err)
	}
	if _, err := parseBatchPayload([]byte("frobnicate id=1\n")); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestCreatePayloadRoundTrip(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1.5, -2.25), geom.Pt(0.3333333333333333, 7)}
	got, measure, err := parseCreatePayload(createPayload(pts, MeasureGraph))
	if err != nil {
		t.Fatalf("parseCreatePayload: %v", err)
	}
	if !reflect.DeepEqual(got, pts) {
		t.Fatalf("round trip\n got %v\nwant %v", got, pts)
	}
	if measure != MeasureGraph {
		t.Fatalf("graph payload decoded as measure %q", measure)
	}
	// Graph payloads must stay byte-identical to the pre-measure format:
	// no measure token in the header line.
	if bytes.Contains(createPayload(pts, MeasureGraph), []byte("measure")) {
		t.Fatal("graph create payload grew a measure token")
	}
	got2, measure2, err := parseCreatePayload(createPayload(pts, MeasureSinr))
	if err != nil {
		t.Fatalf("parseCreatePayload sinr: %v", err)
	}
	if !reflect.DeepEqual(got2, pts) || measure2 != MeasureSinr {
		t.Fatalf("sinr round trip: measure %q", measure2)
	}
	if _, _, err := parseCreatePayload([]byte("rimd-trace v1 n=0\nm seq=1 remove id=0 n=0 max=0\n")); err == nil {
		t.Fatal("create payload with mutation lines accepted")
	}
}

// TestReplicatedCreateCarriesMeasure pins the replication path: a
// follower applying a leader's create record must build the session
// under the leader's measure, and redelivery stays an idempotent skip.
func TestReplicatedCreateCarriesMeasure(t *testing.T) {
	m := NewManager(Config{Shards: 1, NoCoalesce: true})
	defer m.Close(context.Background())
	rec := store.Record{
		Kind:    store.RecordCreate,
		Session: "r1",
		Payload: createPayload([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, MeasureSinr),
	}
	if err := m.ApplyRecord(rec); err != nil {
		t.Fatalf("ApplyRecord: %v", err)
	}
	s, ok := m.Session("r1")
	if !ok {
		t.Fatal("replicated session missing")
	}
	if s.Measure() != MeasureSinr {
		t.Fatalf("replicated Measure()=%q, want sinr", s.Measure())
	}
	if err := m.ApplyRecord(rec); err != nil {
		t.Fatalf("redelivered create: %v", err)
	}
}

func TestCheckpointPayloadRoundTrip(t *testing.T) {
	m := NewManager(Config{Shards: 1})
	defer m.Close(context.Background())
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(1, 0.25)}
	s, err := m.CreateSession("ck", pts)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if _, err := s.Apply(Add(0.25, 0.75), SetRadius(1, 1.5), Remove(0)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := s.Flush(nil); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// The owner is quiescent after Flush, so the capture is safe here —
	// the same reasoning CloseStats relies on.
	seq, payload := s.encodeCheckpoint()
	if seq != 3 {
		t.Fatalf("seq=%d, want 3", seq)
	}
	st, err := decodeCheckpoint(payload)
	if err != nil {
		t.Fatalf("decodeCheckpoint: %v", err)
	}
	if st.seq != s.seq || st.nextID != s.loadNextID() {
		t.Fatalf("decoded seq=%d next=%d, want %d %d", st.seq, st.nextID, s.seq, s.loadNextID())
	}
	if !reflect.DeepEqual(st.idOf, s.idOf) {
		t.Fatalf("decoded idOf=%v, want %v", st.idOf, s.idOf)
	}
	snap := s.mt.Snapshot()
	if !reflect.DeepEqual(st.rs.Points, snap.Points) || !reflect.DeepEqual(st.rs.Radii, snap.Radii) {
		t.Fatalf("decoded geometry diverges:\n%v %v\nvs\n%v %v", st.rs.Points, st.rs.Radii, snap.Points, snap.Radii)
	}
	if !reflect.DeepEqual(st.rs.Edges, snap.Edges) {
		t.Fatalf("decoded edges diverge:\n%v\nvs\n%v", st.rs.Edges, snap.Edges)
	}

	// Re-encoding the decoded state through a restored session must be
	// byte-identical — the stability the recovery path depends on.
	s2, err := m.restoreSession("ck2", st)
	if err != nil {
		t.Fatalf("restoreSession: %v", err)
	}
	_, payload2 := s2.encodeCheckpoint()
	if string(payload2) != string(payload) {
		t.Fatalf("checkpoint not byte-stable:\n%s\nvs\n%s", payload2, payload)
	}
}

func TestDecodeCheckpointRejectsDamage(t *testing.T) {
	good := "rimsess v1 seq=2 next=3 baseline=1 events=2 rebuilds=0 n=2 m=1\n" +
		"p id=0 x=0 y=0 r=1\np id=1 x=1 y=0 r=1\ne u=0 v=1 w=1\n"
	if _, err := decodeCheckpoint([]byte(good)); err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
	for name, bad := range map[string]string{
		"wrong magic":    strings.Replace(good, "rimsess v1", "rimsess v2", 1),
		"missing body":   strings.Split(good, "\n")[0] + "\n",
		"extra body":     good + "e u=0 v=1 w=2\n",
		"bad seq":        strings.Replace(good, "seq=2", "seq=x", 1),
		"unknown header": strings.Replace(good, "next=3", "nxt=3", 1),
		"bad point line": strings.Replace(good, "p id=1", "q id=1", 1),
		"bad float":      strings.Replace(good, "w=1", "w=one", 1),
	} {
		if _, err := decodeCheckpoint([]byte(bad)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
