package serve_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/serve"
)

func line(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*0.5, 0)
	}
	return pts
}

func mustCreate(t *testing.T, m *serve.Manager, id string, pts []geom.Point) *serve.Session {
	t.Helper()
	s, err := m.CreateSession(id, pts)
	if err != nil {
		t.Fatalf("CreateSession(%q): %v", id, err)
	}
	return s
}

func mustApply(t *testing.T, s *serve.Session, muts ...serve.Mutation) []int64 {
	t.Helper()
	ids, err := s.Apply(muts...)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return ids
}

func flush(t *testing.T, s *serve.Session) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	m := serve.NewManager(serve.Config{Shards: 2})
	defer m.Close(context.Background())

	s := mustCreate(t, m, "alpha", line(5))
	snap := s.Snapshot()
	if snap.N != 5 || snap.Seq != 0 {
		t.Fatalf("initial snapshot: n=%d seq=%d", snap.N, snap.Seq)
	}
	if snap.Max == 0 {
		t.Fatalf("connected line instance should have interference > 0")
	}

	// Mutate: add a node, move and remove by stable ID, then override a
	// radius (last, so no structural op can shrink it back before the
	// batch's snapshot publishes).
	ids := mustApply(t, s,
		serve.Add(2.5, 0.1),
		serve.Move(1, 0.6, 0.05),
		serve.Remove(3),
		serve.SetRadius(0, 1.25),
	)
	if len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("assigned ids = %v, want [5]", ids)
	}
	flush(t, s)

	snap = s.Snapshot()
	if snap.Seq != 4 || snap.N != 5 { // 5 initial +1 added -1 removed
		t.Fatalf("after batch: seq=%d n=%d", snap.Seq, snap.N)
	}
	if _, ok := snap.Node(3); ok {
		t.Fatalf("node 3 still present after remove")
	}
	if n, ok := snap.Node(1); !ok || n.X != 0.6 || n.Y != 0.05 {
		t.Fatalf("node 1 after move: %+v ok=%v", n, ok)
	}
	if n, ok := snap.Node(0); !ok || n.R != 1.25 {
		t.Fatalf("node 0 radius override: %+v ok=%v", n, ok)
	}
	applied, rejected := s.Counts()
	if applied != 4 || rejected != 0 {
		t.Fatalf("counts: applied=%d rejected=%d", applied, rejected)
	}

	// Mutations addressing dead IDs are rejected, not fatal.
	mustApply(t, s, serve.SetRadius(3, 1), serve.Remove(99))
	flush(t, s)
	if _, rejected = s.Counts(); rejected != 2 {
		t.Fatalf("rejected = %d, want 2", rejected)
	}

	// Duplicate and lifecycle errors.
	if _, err := m.CreateSession("alpha", nil); !errors.Is(err, serve.ErrSessionExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := m.DropSession("alpha"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if _, err := s.Apply(serve.Add(0, 0)); !errors.Is(err, serve.ErrSessionClosed) {
		t.Fatalf("apply after drop: %v", err)
	}
	if err := m.DropSession("alpha"); !errors.Is(err, serve.ErrNoSession) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestManagerCloseRejectsNewWork(t *testing.T) {
	m := serve.NewManager(serve.Config{Shards: 1})
	s := mustCreate(t, m, "s", line(3))
	mustApply(t, s, serve.SetRadius(0, 2))
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Drain applied the queued mutation before shutdown.
	if n, ok := s.Snapshot().Node(0); !ok || n.R != 2 {
		t.Fatalf("queued mutation not drained: %+v", n)
	}
	if _, err := m.CreateSession("late", nil); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
}

func TestValidationRejectsGarbage(t *testing.T) {
	m := serve.NewManager(serve.Config{Shards: 1})
	defer m.Close(context.Background())
	s := mustCreate(t, m, "v", line(3))
	for _, mu := range []serve.Mutation{
		serve.Add(math.NaN(), 0),
		serve.Add(2e9, 0), // would balloon the dense spatial index
		serve.Move(0, 0, math.Inf(1)),
		serve.SetRadius(0, -1),
		serve.SetRadius(0, math.NaN()),
		serve.AnnealStep(0, 1),
		serve.AnnealStep(1<<30, 1),
		{Op: serve.Op(99)},
	} {
		if _, err := s.Apply(mu); err == nil {
			t.Errorf("mutation %+v accepted, want validation error", mu)
		}
	}
	if applied, rejectedN := s.Counts(); applied != 0 || rejectedN != 0 {
		t.Fatalf("invalid mutations reached the pipeline: %d/%d", applied, rejectedN)
	}
	// Instances with out-of-bound points are refused at creation too.
	if _, err := m.CreateSession("far", []geom.Point{geom.Pt(0, 2e9)}); err == nil {
		t.Fatalf("far-flung instance accepted")
	}
}

// TestCoalescing pins the batched-pipeline contract: redundant same-node
// radius writes inside one batch collapse to the last one outside
// deterministic mode.
func TestCoalescing(t *testing.T) {
	gate := make(chan struct{})
	released := false
	m := serve.NewManager(serve.Config{
		Shards: 1, BatchCap: 64,
		BeforeBatch: func(string) {
			if !released {
				<-gate
				released = true
			}
		},
	})
	defer m.Close(context.Background())
	s := mustCreate(t, m, "c", line(4))

	var muts []serve.Mutation
	for i := 0; i < 10; i++ {
		muts = append(muts, serve.SetRadius(2, float64(i+1)))
	}
	mustApply(t, s, muts...)
	close(gate)
	flush(t, s)

	applied, _ := s.Counts()
	if applied != 1 {
		t.Fatalf("applied = %d, want 1 (coalesced)", applied)
	}
	if n, _ := s.Snapshot().Node(2); n.R != 10 {
		t.Fatalf("radius = %v, want last write 10", n.R)
	}
	// Seq still advances once per surviving mutation only.
	if seq := s.Snapshot().Seq; seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
}

func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	m := serve.NewManager(serve.Config{
		Shards: 1, QueueCap: 4,
		BeforeBatch: func(string) { <-gate },
	})
	s := mustCreate(t, m, "b", line(3))

	for i := 0; i < 4; i++ {
		mustApply(t, s, serve.SetRadius(0, float64(i)))
	}
	if _, err := s.Apply(serve.SetRadius(0, 9)); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("5th apply: %v, want ErrQueueFull", err)
	}
	if m.Metrics().QueueFull.Value() == 0 {
		t.Fatalf("backpressure not counted")
	}
	close(gate)
	flush(t, s)
	// Recovery: queue drained, applies succeed again.
	mustApply(t, s, serve.SetRadius(0, 9))
	flush(t, s)
	if n, _ := s.Snapshot().Node(0); n.R != 9 {
		t.Fatalf("post-recovery radius %v", n.R)
	}
	m.Close(context.Background())
}

func TestAnnealMutationDeterministic(t *testing.T) {
	// The same anneal budget with the same seed over the same instance must
	// land both sessions on identical state — the property session-trace
	// replay leans on.
	m := serve.NewManager(serve.Config{Shards: 2})
	defer m.Close(context.Background())
	rng := rand.New(rand.NewSource(7))
	pts := gen.UniformSquare(rng, 40, 2)
	var maxes [2]int
	var radii [2][]float64
	for i, id := range []string{"a1", "a2"} {
		s := mustCreate(t, m, id, pts)
		mustApply(t, s, serve.AnnealStep(2000, 11))
		flush(t, s)
		snap := s.Snapshot()
		maxes[i] = snap.Max
		for _, n := range snap.Nodes {
			radii[i] = append(radii[i], n.R)
		}
		if snap.Events == 0 {
			t.Fatalf("anneal not counted as maintainer event")
		}
		// Snapshot internal consistency: Max is the max per-node I.
		want := 0
		for _, n := range snap.Nodes {
			want = max(want, n.I)
		}
		if snap.Max != want {
			t.Fatalf("snapshot max %d != max over nodes %d", snap.Max, want)
		}
	}
	if maxes[0] != maxes[1] {
		t.Fatalf("anneal nondeterministic: %d vs %d", maxes[0], maxes[1])
	}
	for i := range radii[0] {
		if radii[0][i] != radii[1][i] {
			t.Fatalf("anneal radii diverge at node %d: %v vs %v", i, radii[0][i], radii[1][i])
		}
	}
}

// TestDiffEngineInjection runs a whole session pipeline on the oracle's
// naive-shadowed evaluator, verifying after every batch — the
// serving-layer inheritance of the differential-testing guarantees.
func TestDiffEngineInjection(t *testing.T) {
	var verr error
	m := serve.NewManager(serve.Config{
		Shards: 1, Deterministic: true,
		Engine: func(pts []geom.Point) dynamic.Engine { return oracle.NewDiffEvaluator(pts) },
		AfterBatch: func(_ string, eng dynamic.Engine) {
			if verr == nil {
				verr = eng.(*oracle.DiffEvaluator).Verify()
			}
		},
	})
	defer m.Close(context.Background())
	rng := rand.New(rand.NewSource(3))
	s := mustCreate(t, m, "diff", gen.UniformSquare(rng, 24, 2))
	for i := 0; i < 30; i++ {
		switch i % 4 {
		case 0:
			mustApply(t, s, serve.Add(rng.Float64()*2, rng.Float64()*2))
		case 1:
			mustApply(t, s, serve.SetRadius(int64(rng.Intn(10)), rng.Float64()))
		case 2:
			mustApply(t, s, serve.Move(int64(rng.Intn(10)+10), rng.Float64()*2, rng.Float64()*2))
		case 3:
			mustApply(t, s, serve.Remove(int64(24+i)))
		}
	}
	flush(t, s)
	if verr != nil {
		t.Fatalf("shadow verification failed: %v", verr)
	}
	if applied, _ := s.Counts(); applied == 0 {
		t.Fatalf("nothing applied")
	}
}

func TestParseTraceRoundTrip(t *testing.T) {
	m := serve.NewManager(serve.Config{Shards: 1, Deterministic: true})
	defer m.Close(context.Background())
	rng := rand.New(rand.NewSource(5))
	pts := gen.UniformSquare(rng, 16, 2)
	s := mustCreate(t, m, "rt", pts)
	mustApply(t, s,
		serve.Add(0.123456789, 1.9876543210987),
		serve.SetRadius(2, 0.333333333333333),
		serve.Remove(7),
		serve.Remove(7), // rejected second time
		serve.Move(1, 1e-9, 987.654321),
		serve.AnnealStep(100, 42),
	)
	flush(t, s)
	text := s.TraceText()

	gotPts, ops, err := serve.ParseTrace(text)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(gotPts) != len(pts) {
		t.Fatalf("parsed %d points, want %d", len(gotPts), len(pts))
	}
	for i := range pts {
		if gotPts[i] != pts[i] {
			t.Fatalf("point %d: %v != %v (float round-trip broken)", i, gotPts[i], pts[i])
		}
	}
	if len(ops) != 6 {
		t.Fatalf("parsed %d ops, want 6:\n%s", len(ops), text)
	}
	if ops[0].Op != serve.OpAdd || ops[0].Node != 16 {
		t.Fatalf("add parsed as %+v", ops[0])
	}
	if ops[5].Op != serve.OpAnneal || ops[5].Iters != 100 || ops[5].Seed != 42 {
		t.Fatalf("anneal parsed as %+v", ops[5])
	}
	if !strings.Contains(text, "reject remove id=7") {
		t.Fatalf("rejected op not recorded:\n%s", text)
	}
	// One Apply call enqueues atomically, so the six ops drained as one
	// pipeline batch — and the recorded boundary recovers it.
	_, batches, err := serve.ParseTraceBatches(text)
	if err != nil {
		t.Fatalf("ParseTraceBatches: %v", err)
	}
	if len(batches) != 1 || len(batches[0]) != 6 {
		t.Fatalf("recovered %d batches (first %d ops), want 1 batch of 6:\n%s", len(batches), len(batches[0]), text)
	}
}

// TestApplyBatchPinsBoundaries checks the batch-boundary fidelity
// primitive: pinned batches enqueued back-to-back (no flush between, so
// the drain could otherwise merge them) must each run as one pipeline
// batch — the trace markers prove where the boundaries fell. This is
// what replication and WAL recovery lean on to reproduce the leader's
// deferral points.
func TestApplyBatchPinsBoundaries(t *testing.T) {
	m := serve.NewManager(serve.Config{Shards: 1, Deterministic: true})
	defer m.Close(context.Background())
	rng := rand.New(rand.NewSource(9))
	s := mustCreate(t, m, "pin", gen.UniformSquare(rng, 12, 2))
	sizes := []int{3, 1, 5, 2}
	for _, k := range sizes {
		batch := make([]serve.Mutation, k)
		for i := range batch {
			batch[i] = serve.Move(int64(rng.Intn(12)), rng.Float64()*2, rng.Float64()*2)
		}
		if _, err := s.ApplyBatch(batch); err != nil {
			t.Fatalf("ApplyBatch: %v", err)
		}
	}
	flush(t, s)
	_, batches, err := serve.ParseTraceBatches(s.TraceText())
	if err != nil {
		t.Fatalf("ParseTraceBatches: %v", err)
	}
	if len(batches) != len(sizes) {
		t.Fatalf("drained as %d batches, want %d pinned", len(batches), len(sizes))
	}
	for i, b := range batches {
		if len(b) != sizes[i] {
			t.Fatalf("batch %d drained %d ops, want pinned size %d", i, len(b), sizes[i])
		}
	}
}

func TestTraceRingCap(t *testing.T) {
	m := serve.NewManager(serve.Config{Shards: 1, Deterministic: true, TraceCap: 8})
	defer m.Close(context.Background())
	s := mustCreate(t, m, "ring", line(3))
	for i := 0; i < 20; i++ {
		mustApply(t, s, serve.SetRadius(0, float64(i)))
	}
	flush(t, s)
	text := s.TraceText()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	// Op lines share the ring with batch-boundary markers, whose count
	// depends on how the queue drained — so bound the retained window
	// instead of asserting an exact split.
	var mLines, bLines int
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "m "):
			mLines++
		case strings.HasPrefix(l, "b "):
			bLines++
		}
	}
	if got := mLines + bLines; got > 8 || mLines == 0 {
		t.Fatalf("retained %d op + %d marker lines, want at most ring cap 8:\n%s", mLines, bLines, text)
	}
	if !strings.Contains(text, "# ring cap evicted ") {
		t.Fatalf("eviction marker missing:\n%s", text)
	}
	// The retained suffix is the most recent ops.
	if !strings.Contains(text, "seq=20") || strings.Contains(text, "seq=12 ") {
		t.Fatalf("ring kept wrong window:\n%s", text)
	}
}
