package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/serve"
)

// TestStressConcurrentMixed hammers one deterministic session with
// concurrent clients issuing a 90/10 read/mutation mix (run under -race
// by `make check` and CI), checking snapshot invariants on every read.
// Afterwards the recorded trace is cross-checked two ways:
//
//  1. replayed twice through fresh pipelines and compared byte-for-byte
//     (oracle.ReplayText), and against the original recording;
//  2. replayed through a pipeline whose engine is the oracle's
//     naive-shadowed DiffEvaluator, with a full shadow verification after
//     every batch.
func TestStressConcurrentMixed(t *testing.T) {
	const (
		clients = 8
		iters   = 300
	)
	mgr := serve.NewManager(serve.Config{Shards: 4, QueueCap: 4096, Deterministic: true})
	defer mgr.Close(context.Background())

	rng := rand.New(rand.NewSource(42))
	pts := gen.UniformSquare(rng, 96, 2)
	s := mustCreate(t, mgr, "stress", pts)

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			lastSeq := uint64(0)
			for i := 0; i < iters; i++ {
				if rng.Float64() < 0.9 {
					snap := s.Snapshot()
					// Monotonic: published snapshots never go backwards.
					if snap.Seq < lastSeq {
						errc <- fmt.Errorf("client %d: seq went backwards %d -> %d", c, lastSeq, snap.Seq)
						return
					}
					lastSeq = snap.Seq
					// Internally consistent: Max is the max per-node I, and
					// the node list matches N.
					if len(snap.Nodes) != snap.N {
						errc <- fmt.Errorf("client %d: %d nodes in snapshot of N=%d", c, len(snap.Nodes), snap.N)
						return
					}
					maxI := 0
					for _, n := range snap.Nodes {
						maxI = max(maxI, n.I)
					}
					if maxI != snap.Max {
						errc <- fmt.Errorf("client %d: snapshot max %d != max over nodes %d", c, snap.Max, maxI)
						return
					}
					continue
				}
				mu := randomMutation(rng, s.Snapshot())
				for {
					_, err := s.Apply(mu)
					if !errors.Is(err, serve.ErrQueueFull) {
						if err != nil {
							errc <- err
						}
						break
					}
					time.Sleep(time.Millisecond) // backpressure: wait, resubmit
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	flush(t, s)

	applied, _ := s.Counts()
	if applied == 0 {
		t.Fatal("stress run applied nothing")
	}
	recorded := s.TraceText()

	// (1) Byte-identical replay, and identical to the live recording.
	replayed, err := oracle.ReplayText(func() string { return replayTrace(t, recorded, nil, nil) })
	if err != nil {
		t.Fatalf("replay nondeterministic: %v", err)
	}
	if err := oracle.DiffText(recorded, replayed); err != nil {
		t.Fatalf("replay diverged from live recording: %v", err)
	}

	// (2) Shadow-checked replay through the oracle's DiffEvaluator.
	var verifyErr error
	shadow := replayTrace(t, recorded,
		func(pts []geom.Point) dynamic.Engine { return oracle.NewDiffEvaluator(pts) },
		func(_ string, eng dynamic.Engine) {
			if verifyErr == nil {
				verifyErr = eng.(*oracle.DiffEvaluator).Verify()
			}
		})
	if verifyErr != nil {
		t.Fatalf("shadow verification failed during replay: %v", verifyErr)
	}
	if err := oracle.DiffText(recorded, shadow); err != nil {
		t.Fatalf("shadow replay diverged: %v", err)
	}
}

// randomMutation picks a mutation against currently-live IDs (reads the
// snapshot for targets, so most ops hit; misses exercise rejection).
func randomMutation(rng *rand.Rand, snap *serve.Snapshot) serve.Mutation {
	pick := func() int64 {
		if len(snap.Nodes) == 0 {
			return 0
		}
		return snap.Nodes[rng.Intn(len(snap.Nodes))].ID
	}
	switch rng.Intn(10) {
	case 0, 1, 2:
		return serve.Add(rng.Float64()*2, rng.Float64()*2)
	case 3, 4:
		return serve.Remove(pick())
	case 5, 6:
		return serve.Move(pick(), rng.Float64()*2, rng.Float64()*2)
	case 7, 8:
		return serve.SetRadius(pick(), rng.Float64()*1.5)
	default:
		return serve.AnnealStep(50+rng.Intn(50), rng.Int63n(1<<30))
	}
}

// replayTrace re-executes a recorded session trace through a fresh
// single-shard deterministic pipeline and returns the new trace. The
// recorded batch boundaries are replayed exactly (ApplyBatch): the
// maintainer defers connectivity repair to the batch boundary, so the
// same ops batched differently would settle on different state.
func replayTrace(t *testing.T, text string, engine dynamic.EngineFactory, after func(string, dynamic.Engine)) string {
	t.Helper()
	pts, batches, err := serve.ParseTraceBatches(text)
	if err != nil {
		t.Fatalf("ParseTraceBatches: %v", err)
	}
	mgr := serve.NewManager(serve.Config{
		Shards: 1, QueueCap: 4096, Deterministic: true,
		Engine: engine, AfterBatch: after,
	})
	defer mgr.Close(context.Background())
	s := mustCreate(t, mgr, "stress", pts)
	for _, b := range batches {
		for {
			_, err := s.ApplyBatch(b)
			if err == nil {
				break
			}
			if !errors.Is(err, serve.ErrQueueFull) {
				t.Fatalf("replay apply: %v", err)
			}
			flush(t, s)
		}
	}
	flush(t, s)
	return s.TraceText()
}
