package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
)

// Durability glue: how the serving layer uses internal/store. The store
// frames, checksums, and fsyncs; this file owns the payload encodings —
//
//   - a create record carries the rimd-trace v1 instance preamble;
//   - a batch record carries one formatOp line per mutation, in apply
//     order (post-coalesce), with Record.Seq = the session's mutation-log
//     position after the batch;
//   - a checkpoint carries a full behavioral session snapshot in the
//     rimsess v1 text format below.
//
// Write-ahead ordering: runBatch appends the batch record before applying
// it, so an acknowledged batch is durable (under -fsync=always) even if
// the apply crashes halfway — recovery replays the whole batch and lands
// on the same state, one valid prefix of the mutation log.
//
// Failure policy: the service favors availability over durability. When a
// WAL append fails, the error is counted (rimd_wal_failures_total) and
// logging stops for the process; in-memory serving continues. Operators
// watching the metric can drain and restart; operators who need
// stop-on-failure semantics run -fsync=always and treat the metric as a
// page.

// ErrNoStore is returned by durability operations on a manager that was
// built without Config.Store.
var ErrNoStore = errors.New("serve: no store configured")

// walFail records a WAL append failure once and disables further logging.
// The first failure dumps the flight recorder to stderr — the last ~32k
// batches of per-stage timings, captured at the moment durability died.
func (m *Manager) walFail(err error) {
	m.metrics.WALFailures.Add(1)
	m.walBroken.Store(true)
	if m.walErr.CompareAndSwap(nil, &err) && obs.On() {
		obs.DefaultFlight().WriteText(os.Stderr, "wal failure: "+err.Error())
	}
}

// walOK reports whether batch logging is still active.
func (m *Manager) walOK() bool {
	return m.cfg.Store != nil && !m.walBroken.Load()
}

// createPayload renders the create-record payload: the same instance
// preamble a deterministic trace starts with, measure token included —
// recovery and replication must rebuild the session under the same
// engine, and graph-measure payloads stay byte-identical to pre-measure
// rimd.
func createPayload(pts []geom.Point, measure string) []byte {
	var sb strings.Builder
	for _, l := range traceHeaderMeasure(pts, measure) {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// parseCreatePayload inverts createPayload, returning the session's
// measure (graph for legacy records without the token).
func parseCreatePayload(payload []byte) ([]geom.Point, string, error) {
	text := string(payload)
	pts, ops, err := ParseTrace(text)
	if err != nil {
		return nil, "", err
	}
	if len(ops) != 0 {
		return nil, "", fmt.Errorf("serve: create record carries %d mutation lines", len(ops))
	}
	header, _, _ := strings.Cut(text, "\n")
	return pts, headerMeasure(header), nil
}

// encodeBatch renders one formatOp line per mutation, appending onto
// dst (pass dst[:0] to reuse a buffer across batches).
func encodeBatch(dst []byte, batch []Mutation) []byte {
	for i := range batch {
		dst = appendOp(dst, batch[i])
		dst = append(dst, '\n')
	}
	return dst
}

// parseBatchPayload inverts encodeBatch. '#'-comment lines (the trace
// stamp, or annotations from future writers) are skipped — they are
// metadata about the batch, not mutations of it.
func parseBatchPayload(payload []byte) ([]Mutation, error) {
	text := strings.TrimRight(string(payload), "\n")
	if text == "" {
		return nil, nil
	}
	lines := strings.Split(text, "\n")
	muts := make([]Mutation, 0, len(lines))
	for no, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Reuse the trace-line field parser with a synthetic record tag.
		kv, verb, rejected, err := parseFields(append([]string{"b"}, strings.Fields(line)...))
		if err != nil {
			return nil, fmt.Errorf("serve: batch line %d: %w", no+1, err)
		}
		mu, err := opFromTrace(verb, kv, rejected)
		if err != nil {
			return nil, fmt.Errorf("serve: batch line %d: %w", no+1, err)
		}
		muts = append(muts, mu)
	}
	return muts, nil
}

// traceStampPrefix opens the batch record's trace annotation line.
const traceStampPrefix = "# trace "

// appendTraceStamp renders the trace annotation a traced batch's WAL
// record carries after its op lines:
//
//	# trace id=<hex> span=<batch span id> flags=<n>
//
// The '#' keeps it invisible to parseBatchPayload; ParseBatchTrace
// recovers it so a replication follower can link its apply span back to
// the leader's batch span.
func appendTraceStamp(dst []byte, traceID, span uint64, flags uint8) []byte {
	dst = append(dst, traceStampPrefix...)
	dst = append(dst, "id="...)
	dst = strconv.AppendUint(dst, traceID, 16)
	dst = append(dst, " span="...)
	dst = strconv.AppendUint(dst, span, 10)
	dst = append(dst, " flags="...)
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	return append(dst, '\n')
}

// ParseBatchTrace extracts the trace stamp from a batch record payload.
// The returned context's SpanID is the *writer's* batch span — the causal
// parent a replicated re-apply links to. ok is false for untraced or
// legacy records.
func ParseBatchTrace(payload []byte) (tc obs.TraceContext, ok bool) {
	text := string(payload)
	for len(text) > 0 {
		line := text
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			line, text = text[:i], text[i+1:]
		} else {
			text = ""
		}
		if !strings.HasPrefix(line, traceStampPrefix) {
			continue
		}
		for _, tok := range strings.Fields(line[len(traceStampPrefix):]) {
			k, v, isKV := strings.Cut(tok, "=")
			if !isKV {
				continue
			}
			switch k {
			case "id":
				u, err := strconv.ParseUint(v, 16, 64)
				if err != nil {
					return obs.TraceContext{}, false
				}
				tc.TraceID = u
			case "span":
				u, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return obs.TraceContext{}, false
				}
				tc.SpanID = u
			case "flags":
				u, err := strconv.ParseUint(v, 10, 8)
				if err != nil {
					return obs.TraceContext{}, false
				}
				tc.Flags = uint8(u)
			}
		}
		return tc, tc.TraceID != 0
	}
	return obs.TraceContext{}, false
}

// logBatch write-ahead-logs one about-to-apply batch. Owner goroutine
// only. Errors trip the manager-wide fail-open switch. The append runs
// under ckptMu so a batch that raced past the dropped-flag check still
// lands before its session's drop record, never after. A traced batch's
// record carries the trace stamp: the span id was pre-allocated by
// runBatch so the record (written before apply) and the span (recorded
// after) name the same id.
func (s *Session) logBatch(batch []Mutation, tc *obs.TraceContext, batchSpan uint64) {
	// The payload buffer is owner-only scratch; Append consumes it
	// synchronously (the store copies it into its own encode buffer), so
	// reusing it across batches is safe and keeps the log path
	// allocation-free at steady state.
	s.walBuf = encodeBatch(s.walBuf[:0], batch)
	if tc != nil {
		s.walBuf = appendTraceStamp(s.walBuf, tc.TraceID, batchSpan, tc.Flags)
	}
	rec := store.Record{
		Kind:    store.RecordBatch,
		Session: s.id,
		Seq:     s.seq + uint64(len(batch)),
		Payload: s.walBuf,
	}
	s.mgr.ckptMu.Lock()
	err := s.mgr.cfg.Store.Append(rec)
	s.mgr.ckptMu.Unlock()
	if err != nil {
		s.mgr.walFail(err)
	}
}

// Session checkpoint payload ("rimsess v1"):
//
//	rimsess v1 seq=<s> next=<id> baseline=<b> events=<e> rebuilds=<r> n=<n> m=<m>
//	p id=<ext> x=<x> y=<y> r=<radius>     n lines, engine-index order
//	e u=<idx> v=<idx> w=<dist>            m lines
//
// Floats use strconv's shortest round-trip form, so restore rebuilds the
// engine over bit-identical coordinates and radii.

// sessState is the decoded form of a checkpoint payload.
type sessState struct {
	seq     uint64
	nextID  int64
	measure string
	idOf    []int64
	rs      dynamic.RestoreState
}

// encodeCheckpoint serializes the session's full behavioral state. Owner
// goroutine only (or owner-free, e.g. after the shard pool has stopped).
func (s *Session) encodeCheckpoint() (seq uint64, payload []byte) {
	st := s.mt.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "rimsess v1 seq=%d next=%d baseline=%d events=%d rebuilds=%d n=%d m=%d",
		s.seq, s.loadNextID(), st.Baseline, st.Events, st.Rebuilds, len(st.Points), len(st.Edges))
	if s.measure != "" && s.measure != MeasureGraph {
		// Non-default measure only: graph checkpoints stay byte-identical
		// to the pre-measure format.
		fmt.Fprintf(&sb, " measure=%s", s.measure)
	}
	sb.WriteByte('\n')
	for i, p := range st.Points {
		fmt.Fprintf(&sb, "p id=%d x=%s y=%s r=%s\n", s.idOf[i], ftoa(p.X), ftoa(p.Y), ftoa(st.Radii[i]))
	}
	for _, e := range st.Edges {
		fmt.Fprintf(&sb, "e u=%d v=%d w=%s\n", e.U, e.V, ftoa(e.W))
	}
	return s.seq, []byte(sb.String())
}

// loadNextID reads nextID under the session mutex (it is written at
// enqueue time, not by the owner).
func (s *Session) loadNextID() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// decodeCheckpoint inverts encodeCheckpoint.
func decodeCheckpoint(payload []byte) (sessState, error) {
	var st sessState
	text := strings.TrimRight(string(payload), "\n")
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "rimsess v1 ") {
		return st, fmt.Errorf("serve: not a rimsess v1 checkpoint: %q", first(lines))
	}
	var n, m int
	for _, tok := range strings.Fields(lines[0])[2:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return st, fmt.Errorf("serve: checkpoint header token %q", tok)
		}
		if k == "seq" {
			u, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return st, fmt.Errorf("serve: checkpoint seq: %w", err)
			}
			st.seq = u
			continue
		}
		if k == "measure" {
			if _, err := normalizeMeasure(v); err != nil {
				return st, fmt.Errorf("serve: checkpoint header: %w", err)
			}
			st.measure = v
			continue
		}
		i, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return st, fmt.Errorf("serve: checkpoint header %s: %w", k, err)
		}
		switch k {
		case "next":
			st.nextID = i
		case "baseline":
			st.rs.Baseline = int(i)
		case "events":
			st.rs.Events = int(i)
		case "rebuilds":
			st.rs.Rebuilds = int(i)
		case "n":
			n = int(i)
		case "m":
			m = int(i)
		default:
			return st, fmt.Errorf("serve: checkpoint header unknown key %q", k)
		}
	}
	body := lines[1:]
	if len(body) != n+m {
		return st, fmt.Errorf("serve: checkpoint body has %d lines, header says %d", len(body), n+m)
	}
	st.idOf = make([]int64, 0, n)
	st.rs.Points = make([]geom.Point, 0, n)
	st.rs.Radii = make([]float64, 0, n)
	for _, line := range body[:n] {
		var id int64
		var x, y, r float64
		if err := scanKV(line, "p", map[string]any{"id": &id, "x": &x, "y": &y, "r": &r}); err != nil {
			return st, err
		}
		st.idOf = append(st.idOf, id)
		st.rs.Points = append(st.rs.Points, geom.Pt(x, y))
		st.rs.Radii = append(st.rs.Radii, r)
	}
	st.rs.Edges = make([]graph.Edge, 0, m)
	for _, line := range body[n:] {
		var u, v int64
		var w float64
		if err := scanKV(line, "e", map[string]any{"u": &u, "v": &v, "w": &w}); err != nil {
			return st, err
		}
		st.rs.Edges = append(st.rs.Edges, graph.Edge{U: int(u), V: int(v), W: w})
	}
	return st, nil
}

// scanKV parses a "tag k=v k=v ..." checkpoint body line into typed
// destinations (*int64 or *float64).
func scanKV(line, tag string, dst map[string]any) error {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != tag {
		return fmt.Errorf("serve: checkpoint line %q: want tag %q", line, tag)
	}
	for _, tok := range fields[1:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return fmt.Errorf("serve: checkpoint token %q", tok)
		}
		switch p := dst[k].(type) {
		case *int64:
			i, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("serve: checkpoint %s: %w", tok, err)
			}
			*p = i
		case *float64:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("serve: checkpoint %s: %w", tok, err)
			}
			*p = f
		default:
			return fmt.Errorf("serve: checkpoint unknown key %q in %q", k, line)
		}
	}
	return nil
}

// ckptReply is what the owner hands a checkpoint waiter: the serialized
// state to persist, or the reason it cannot be.
type ckptReply struct {
	seq     uint64
	payload []byte
	err     error
}

// Checkpoint captures the session's state at a batch boundary and
// persists it crash-atomically. The capture runs on the session's owner
// goroutine (registered as a waiter, served between batches); the write
// — the slow part — runs on the caller. A nil ctx waits indefinitely.
func (s *Session) Checkpoint(ctx context.Context) error {
	st := s.mgr.cfg.Store
	if st == nil {
		return ErrNoStore
	}
	ch := make(chan ckptReply, 1)
	s.mu.Lock()
	if s.dropped {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.ckptW = append(s.ckptW, ch)
	sched := !s.scheduled
	s.scheduled = true
	s.mu.Unlock()
	if sched {
		s.sh.schedule(s)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case rep := <-ch:
		if rep.err != nil {
			return rep.err
		}
		return s.writeCheckpoint(rep.seq, rep.payload)
	case <-done:
		return ctx.Err()
	}
}

// writeCheckpoint persists a captured checkpoint under the manager's
// checkpoint mutex, which serializes it against session drops — so a
// checkpoint can never land after its session's drop record (the
// stale-checkpoint-resurrection hazard).
func (s *Session) writeCheckpoint(seq uint64, payload []byte) error {
	m := s.mgr
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	s.mu.Lock()
	dropped := s.dropped
	s.mu.Unlock()
	if dropped {
		return ErrSessionClosed
	}
	return m.cfg.Store.WriteCheckpoint(s.id, seq, payload)
}

// serveCheckpoints hands every registered checkpoint waiter the current
// state. Owner goroutine, between batches.
func (s *Session) serveCheckpoints() {
	s.mu.Lock()
	waiters := s.ckptW
	s.ckptW = nil
	dropped := s.dropped
	s.mu.Unlock()
	if len(waiters) == 0 {
		return
	}
	rep := ckptReply{err: ErrSessionClosed}
	if !dropped {
		seq, payload := s.encodeCheckpoint()
		rep = ckptReply{seq: seq, payload: payload}
	}
	for _, ch := range waiters {
		ch <- rep
	}
}

// failCheckpointWaiters rejects pending waiters (shutdown path, after the
// shard pool has stopped and no owner will serve them).
func (s *Session) failCheckpointWaiters(err error) {
	s.mu.Lock()
	waiters := s.ckptW
	s.ckptW = nil
	s.mu.Unlock()
	for _, ch := range waiters {
		ch <- ckptReply{err: err}
	}
}
