package serve_test

// Durability tests for the serve/store integration: write-ahead logging,
// checkpoint barriers, boot-time recovery, and the crash matrix that
// truncates the WAL at every byte offset and demands a valid mutation-log
// prefix back.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

// openStore opens a store over dir with an isolated metric registry.
func openStore(t *testing.T, dir string, policy store.SyncPolicy) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Sync: policy, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("store.Open(%q): %v", dir, err)
	}
	return st
}

// snapKey flattens a snapshot into a comparable string: the full node set
// (IDs, coordinates, radii, interference) plus the aggregate values. Two
// sessions in the same behavioral state produce the same key.
func snapKey(s *serve.Snapshot) string {
	nodes := append([]serve.NodeState(nil), s.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d max=%d", s.N, s.Max)
	for _, nd := range nodes {
		fmt.Fprintf(&sb, " (%d %v %v %v %d)", nd.ID, nd.X, nd.Y, nd.R, nd.I)
	}
	return sb.String()
}

func TestParseTraceTruncated(t *testing.T) {
	m := serve.NewManager(serve.Config{Shards: 1, Deterministic: true})
	defer m.Close(context.Background())
	s := mustCreate(t, m, "tr", line(4))
	mustApply(t, s, serve.Add(1.25, 0.5), serve.Move(0, 0.1, 0.2), serve.SetRadius(1, 2.5))
	flush(t, s)
	full := s.TraceText()
	pts, ops, err := serve.ParseTrace(full)
	if err != nil || len(pts) != 4 || len(ops) != 3 {
		t.Fatalf("intact trace: pts=%d ops=%d err=%v", len(pts), len(ops), err)
	}

	// Cutting anywhere inside the final line must surface ErrTruncated and
	// return only the complete-line prefix — including the nasty case
	// where the cut leaves a prefix that parses as a complete, different
	// record ("... id=31 ..." cut to "... id=3"). The final line is the
	// batch marker; cutting inside it keeps all three ops.
	last := strings.LastIndex(strings.TrimRight(full, "\n"), "\n") + 1
	for cut := last + 1; cut < len(full); cut++ {
		pts2, ops2, terr := serve.ParseTrace(full[:cut])
		if !errors.Is(terr, serve.ErrTruncated) {
			t.Fatalf("cut at %d: err=%v, want ErrTruncated", cut, terr)
		}
		if len(pts2) != 4 || len(ops2) != 3 {
			t.Fatalf("cut at %d: pts=%d ops=%d, want the 3-op complete prefix", cut, len(pts2), len(ops2))
		}
	}
	// Cutting inside the last op line instead drops that op.
	noMark := full[:last]
	opLast := strings.LastIndex(strings.TrimRight(noMark, "\n"), "\n") + 1
	for cut := opLast + 1; cut < len(noMark); cut++ {
		pts2, ops2, terr := serve.ParseTrace(noMark[:cut])
		if !errors.Is(terr, serve.ErrTruncated) {
			t.Fatalf("op cut at %d: err=%v, want ErrTruncated", cut, terr)
		}
		if len(pts2) != 4 || len(ops2) != 2 {
			t.Fatalf("op cut at %d: pts=%d ops=%d, want the 2-op complete prefix", cut, len(pts2), len(ops2))
		}
	}

	// A forged longer ID: the truncated tail "m seq=9 add id=3" looks like
	// a complete record but must NOT be returned as one.
	forged := "rimd-trace v1 n=0\nm seq=9 add id=31 x=2 y=7 n=1 max=0"
	_, ops3, terr := serve.ParseTrace(forged)
	if !errors.Is(terr, serve.ErrTruncated) || len(ops3) != 0 {
		t.Fatalf("forged tail: ops=%d err=%v, want 0 ops + ErrTruncated", len(ops3), terr)
	}

	// Even the header can be cut.
	if _, _, herr := serve.ParseTrace("rimd-trace v1 n="); !errors.Is(herr, serve.ErrTruncated) {
		t.Fatalf("cut header: err=%v, want ErrTruncated", herr)
	}
	// Empty input stays a header error, not a truncation.
	if _, _, eerr := serve.ParseTrace(""); errors.Is(eerr, serve.ErrTruncated) || eerr == nil {
		t.Fatalf("empty input: err=%v, want non-truncation header error", eerr)
	}
}

// TestDrainRejectsQueued locks in the shutdown-drain fix: mutations still
// queued when the drain deadline expires are explicitly rejected and
// counted, not silently dropped.
func TestDrainRejectsQueued(t *testing.T) {
	m := serve.NewManager(serve.Config{
		Shards:   1,
		BatchCap: 1,
		BeforeBatch: func(string) {
			time.Sleep(20 * time.Millisecond)
		},
	})
	s := mustCreate(t, m, "slow", line(3))
	const queued = 64
	for i := 0; i < queued; i++ {
		mustApply(t, s, serve.SetRadius(0, float64(i+1)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	ds, err := m.CloseStats(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseStats err=%v, want deadline exceeded", err)
	}
	if ds.DroppedMutations <= 0 || ds.DroppedSessions != 1 {
		t.Fatalf("DrainStats=%+v, want >0 dropped mutations from 1 session", ds)
	}
	if _, rejected := s.Counts(); rejected < int64(ds.DroppedMutations) {
		t.Fatalf("rejected count %d < dropped %d: drops not accounted", rejected, ds.DroppedMutations)
	}
	var sb strings.Builder
	m.WriteMetrics(&sb)
	want := fmt.Sprintf("rimd_drain_dropped_total %d", ds.DroppedMutations)
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("metrics exposition missing %q", want)
	}
	if err := s.Flush(nil); err != nil {
		t.Fatalf("Flush after drain: %v", err)
	}
}

// TestRecoverFromLogOnly crashes (no checkpoint, no clean shutdown) and
// rebuilds everything from create records plus batch replay.
func TestRecoverFromLogOnly(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, store.SyncNone)
	m := serve.NewManager(serve.Config{Shards: 1, Store: st})

	a := mustCreate(t, m, "a", line(4))
	mustApply(t, a, serve.Add(0.7, 0.3), serve.SetRadius(1, 2))
	flush(t, a)
	b := mustCreate(t, m, "b", line(2))
	mustApply(t, b, serve.Move(0, 0.9, 0.1))
	flush(t, b)
	if err := m.DropSession("b"); err != nil {
		t.Fatalf("DropSession: %v", err)
	}
	wantA := snapKey(a.Snapshot())
	wantSeq := a.Snapshot().Seq
	// Simulate a crash: seal the WAL but never checkpoint or drain.
	if err := st.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}

	st2 := openStore(t, dir, store.SyncNone)
	defer st2.Close()
	m2 := serve.NewManager(serve.Config{Shards: 1, Store: st2})
	defer m2.Close(context.Background())
	rs, err := m2.Recover(true)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Sessions != 1 || rs.FromLog != 1 || rs.FromCheckpoint != 0 {
		t.Fatalf("RecoveryStats=%+v, want 1 session from log", rs)
	}
	if rs.DroppedSessions != 1 {
		t.Fatalf("RecoveryStats=%+v, want the dropped session noticed", rs)
	}
	if rs.Verified != 1 {
		t.Fatalf("RecoveryStats=%+v, want oracle verification", rs)
	}
	if _, ok := m2.Session("b"); ok {
		t.Fatal("dropped session resurrected")
	}
	a2, ok := m2.Session("a")
	if !ok {
		t.Fatal("session a not recovered")
	}
	if got := snapKey(a2.Snapshot()); got != wantA {
		t.Fatalf("recovered state\n got %s\nwant %s", got, wantA)
	}
	if a2.Snapshot().Seq != wantSeq {
		t.Fatalf("recovered seq %d, want %d", a2.Snapshot().Seq, wantSeq)
	}
	// The recovered session keeps serving — and keeps logging.
	mustApply(t, a2, serve.Add(1.5, 1.5))
	flush(t, a2)
}

// TestRecoverFromCheckpoint runs the barrier mid-stream, keeps mutating,
// crashes, and recovers from checkpoint + WAL tail replay.
func TestRecoverFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, store.SyncBatch)
	m := serve.NewManager(serve.Config{Shards: 1, Store: st})

	a := mustCreate(t, m, "a", line(5))
	mustApply(t, a, serve.Add(0.4, 0.6), serve.SetRadius(2, 1.5))
	flush(t, a)
	if _, err := m.CheckpointAll(context.Background()); err != nil {
		t.Fatalf("CheckpointAll: %v", err)
	}
	mustApply(t, a, serve.Move(1, 0.2, 0.8))
	flush(t, a)
	mustApply(t, a, serve.Remove(3))
	flush(t, a)
	want := snapKey(a.Snapshot())
	wantSeq := a.Snapshot().Seq
	if err := st.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}

	st2 := openStore(t, dir, store.SyncBatch)
	defer st2.Close()
	m2 := serve.NewManager(serve.Config{Shards: 1, Store: st2})
	defer m2.Close(context.Background())
	rs, err := m2.Recover(true)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.FromCheckpoint != 1 || rs.FromLog != 0 {
		t.Fatalf("RecoveryStats=%+v, want recovery from checkpoint", rs)
	}
	if rs.ReplayedBatches != 2 || rs.ReplayedMutations != 2 {
		t.Fatalf("RecoveryStats=%+v, want exactly the 2 post-barrier batches replayed", rs)
	}
	a2, _ := m2.Session("a")
	if a2 == nil {
		t.Fatal("session a not recovered")
	}
	if got := snapKey(a2.Snapshot()); got != want || a2.Snapshot().Seq != wantSeq {
		t.Fatalf("recovered state\n got seq=%d %s\nwant seq=%d %s", a2.Snapshot().Seq, got, wantSeq, want)
	}
}

// TestCleanShutdownRecoversFromCheckpointsAlone verifies CloseStats's
// final checkpoints make WAL replay unnecessary.
func TestCleanShutdownRecoversFromCheckpointsAlone(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, store.SyncBatch)
	m := serve.NewManager(serve.Config{Shards: 2, Store: st})
	for _, id := range []string{"x", "y"} {
		s := mustCreate(t, m, id, line(3))
		mustApply(t, s, serve.Add(0.5, 0.5), serve.SetRadius(0, 2))
		flush(t, s)
	}
	ds, err := m.CloseStats(context.Background())
	if err != nil {
		t.Fatalf("CloseStats: %v", err)
	}
	if ds.FinalCheckpoints != 2 || ds.CheckpointErrors != 0 || ds.DroppedMutations != 0 {
		t.Fatalf("DrainStats=%+v, want 2 clean final checkpoints", ds)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}

	st2 := openStore(t, dir, store.SyncBatch)
	defer st2.Close()
	m2 := serve.NewManager(serve.Config{Shards: 2, Store: st2})
	defer m2.Close(context.Background())
	rs, err := m2.Recover(true)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Sessions != 2 || rs.FromCheckpoint != 2 || rs.ReplayedBatches != 0 {
		t.Fatalf("RecoveryStats=%+v, want 2 sessions from checkpoints with no replay", rs)
	}
}

// TestCheckpointBarrierPrunes forces several WAL rotations and verifies
// the barrier leaves only what recovery needs.
func TestCheckpointBarrierPrunes(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{
		Dir: dir, Sync: store.SyncNone, SegmentBytes: 256, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	m := serve.NewManager(serve.Config{Shards: 1, Store: st})
	s := mustCreate(t, m, "p", line(4))
	for i := 0; i < 30; i++ {
		mustApply(t, s, serve.SetRadius(int64(i%4), float64(i+1)))
		flush(t, s)
	}
	pruned, err := m.CheckpointAll(context.Background())
	if err != nil {
		t.Fatalf("CheckpointAll: %v", err)
	}
	if pruned == 0 {
		t.Fatal("barrier pruned nothing despite 256-byte segments")
	}
	mustApply(t, s, serve.Add(2, 2))
	flush(t, s)
	want := snapKey(s.Snapshot())
	if err := st.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}

	st2 := openStore(t, dir, store.SyncNone)
	defer st2.Close()
	m2 := serve.NewManager(serve.Config{Shards: 1, Store: st2})
	defer m2.Close(context.Background())
	rs, err := m2.Recover(true)
	if err != nil {
		t.Fatalf("Recover after prune: %v", err)
	}
	if rs.FromCheckpoint != 1 {
		t.Fatalf("RecoveryStats=%+v, want checkpoint recovery", rs)
	}
	s2, _ := m2.Session("p")
	if got := snapKey(s2.Snapshot()); got != want {
		t.Fatalf("post-prune recovery\n got %s\nwant %s", got, want)
	}
}

// TestRecoverCheckpointOnlySession pins the idle-after-barrier case: the
// barrier prunes every WAL record of a quiet session, leaving it visible
// only as a checkpoint — which recovery must still restore.
func TestRecoverCheckpointOnlySession(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, store.SyncNone)
	m := serve.NewManager(serve.Config{Shards: 1, Store: st})
	s := mustCreate(t, m, "idle", line(4))
	mustApply(t, s, serve.Add(0.6, 0.6), serve.SetRadius(0, 2))
	flush(t, s)
	if _, err := m.CheckpointAll(context.Background()); err != nil {
		t.Fatalf("CheckpointAll: %v", err)
	}
	want := snapKey(s.Snapshot())
	if err := st.Close(); err != nil { // crash with zero post-barrier records
		t.Fatalf("store.Close: %v", err)
	}

	st2 := openStore(t, dir, store.SyncNone)
	defer st2.Close()
	m2 := serve.NewManager(serve.Config{Shards: 1, Store: st2})
	defer m2.Close(context.Background())
	rs, err := m2.Recover(true)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Sessions != 1 || rs.FromCheckpoint != 1 || rs.ReplayedBatches != 0 {
		t.Fatalf("RecoveryStats=%+v, want the checkpoint-only session back", rs)
	}
	s2, _ := m2.Session("idle")
	if s2 == nil {
		t.Fatal("checkpoint-only session not recovered")
	}
	if got := snapKey(s2.Snapshot()); got != want {
		t.Fatalf("recovered state\n got %s\nwant %s", got, want)
	}
}

// TestWALFailureKeepsServing locks in the availability-over-durability
// policy: a failing WAL disables logging, counts the failure, and the
// session keeps applying mutations.
func TestWALFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	ffs := store.NewFaultFS(store.OSFS{})
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncAlways, FS: ffs, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	m := serve.NewManager(serve.Config{Shards: 1, Store: st})
	defer m.Close(context.Background())
	s := mustCreate(t, m, "w", line(3))
	mustApply(t, s, serve.Add(0.5, 0.5))
	flush(t, s)

	ffs.FailSyncs(1, errors.New("disk on fire"))
	mustApply(t, s, serve.SetRadius(0, 3))
	flush(t, s)
	mustApply(t, s, serve.SetRadius(1, 3))
	flush(t, s)

	snap := s.Snapshot()
	if snap.Seq != 3 {
		t.Fatalf("seq=%d, want all 3 mutations applied despite WAL failure", snap.Seq)
	}
	var sb strings.Builder
	m.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "rimd_wal_failures_total 1") {
		t.Fatalf("exposition missing rimd_wal_failures_total 1:\n%s", sb.String())
	}
}

// crashScript is the workload the crash matrix runs: two sessions, one of
// them dropped mid-stream, every mutation flushed so each becomes its own
// WAL batch record (seq == batch boundary).
type crashScript struct {
	withBarrier bool
	policy      store.SyncPolicy
}

// expected maps session -> seq -> snapshot key, recorded live.
type expectedStates map[string]map[uint64]string

// runCrashScript executes the workload in dir and returns the per-seq
// expected states plus the seq at which session b was dropped.
func runCrashScript(t *testing.T, dir string, sc crashScript) expectedStates {
	t.Helper()
	st := openStore(t, dir, sc.policy)
	m := serve.NewManager(serve.Config{Shards: 1, Store: st})
	exp := expectedStates{"a": {}, "b": {}}
	record := func(s *serve.Session) {
		snap := s.Snapshot()
		exp[s.ID()][snap.Seq] = snapKey(snap)
	}
	step := func(s *serve.Session, mu serve.Mutation) {
		mustApply(t, s, mu)
		flush(t, s)
		record(s)
	}

	a := mustCreate(t, m, "a", line(3))
	record(a)
	step(a, serve.Add(0.8, 0.4))
	step(a, serve.SetRadius(1, 2))
	b := mustCreate(t, m, "b", line(2))
	record(b)
	step(b, serve.Move(0, 0.3, 0.3))
	if sc.withBarrier {
		if _, err := m.CheckpointAll(context.Background()); err != nil {
			t.Fatalf("CheckpointAll: %v", err)
		}
	}
	step(a, serve.Move(2, 0.1, 0.9))
	step(b, serve.Add(1.1, 0.2))
	if err := m.DropSession("b"); err != nil {
		t.Fatalf("DropSession: %v", err)
	}
	step(a, serve.Remove(0))
	step(a, serve.AnnealStep(40, 7))
	if err := st.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}
	return exp
}

// copyCrashDir clones the golden data dir into dst, truncating the last
// WAL segment to cut bytes — the moment of death.
func copyCrashDir(t *testing.T, src, dst string, cut int64) (lastSegSize int64) {
	t.Helper()
	for _, sub := range []string{"wal", "ckpt"} {
		if err := os.MkdirAll(filepath.Join(dst, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, sub := range []string{"wal", "ckpt"} {
		ents, err := os.ReadDir(filepath.Join(src, sub))
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			if !e.IsDir() {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for i, name := range names {
			data, err := os.ReadFile(filepath.Join(src, sub, name))
			if err != nil {
				t.Fatal(err)
			}
			if sub == "wal" && i == len(names)-1 {
				lastSegSize = int64(len(data))
				if cut < int64(len(data)) {
					data = data[:cut]
				}
			}
			if err := os.WriteFile(filepath.Join(dst, sub, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return lastSegSize
}

// TestCrashRecoveryEveryOffset is the kill-at-every-offset property test:
// for each fsync policy and with/without a mid-stream checkpoint barrier,
// truncate the active WAL segment at every byte offset, recover with
// oracle verification on, and demand that every surviving session sits at
// an exact batch boundary of the acknowledged mutation log with exactly
// the state the live run had published at that seq.
func TestCrashRecoveryEveryOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is slow; skipped in -short")
	}
	for _, sc := range []crashScript{
		{withBarrier: false, policy: store.SyncNone},
		{withBarrier: false, policy: store.SyncAlways},
		{withBarrier: true, policy: store.SyncNone},
		{withBarrier: true, policy: store.SyncAlways},
	} {
		sc := sc
		name := fmt.Sprintf("barrier=%v/policy=%v", sc.withBarrier, sc.policy)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			golden := t.TempDir()
			exp := runCrashScript(t, golden, sc)

			// Probe once to learn the active segment's size.
			size := copyCrashDir(t, golden, t.TempDir(), 1<<40)
			if size == 0 {
				t.Fatal("empty active segment: workload logged nothing")
			}
			scratch := t.TempDir()
			for cut := int64(0); cut <= size; cut++ {
				dst := filepath.Join(scratch, fmt.Sprintf("c%06d", cut))
				copyCrashDir(t, golden, dst, cut)
				verifyCrashRecovery(t, dst, sc, exp, cut)
				if err := os.RemoveAll(dst); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func verifyCrashRecovery(t *testing.T, dir string, sc crashScript, exp expectedStates, cut int64) {
	t.Helper()
	st := openStore(t, dir, sc.policy)
	defer st.Close()
	m := serve.NewManager(serve.Config{Shards: 1, Store: st})
	defer m.Close(context.Background())
	if _, err := m.Recover(true); err != nil {
		t.Fatalf("cut=%d: Recover: %v", cut, err)
	}
	for _, id := range m.SessionIDs() {
		s, _ := m.Session(id)
		snap := s.Snapshot()
		want, ok := exp[id][snap.Seq]
		if !ok {
			t.Fatalf("cut=%d: session %q recovered at seq=%d, not a batch boundary of the live run", cut, id, snap.Seq)
		}
		if got := snapKey(snap); got != want {
			t.Fatalf("cut=%d: session %q at seq=%d\n got %s\nwant %s", cut, id, snap.Seq, got, want)
		}
	}
}

// TestCrashRecoveryIntactLog pins the no-truncation endpoint of the
// matrix: the full log recovers session a at its final state and session
// b not at all.
func TestCrashRecoveryIntactLog(t *testing.T) {
	for _, sc := range []crashScript{
		{withBarrier: false, policy: store.SyncBatch},
		{withBarrier: true, policy: store.SyncBatch},
	} {
		golden := t.TempDir()
		exp := runCrashScript(t, golden, sc)
		dst := t.TempDir()
		copyCrashDir(t, golden, dst, 1<<40)
		st := openStore(t, dst, sc.policy)
		m := serve.NewManager(serve.Config{Shards: 1, Store: st})
		rs, err := m.Recover(true)
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if _, ok := m.Session("b"); ok {
			t.Fatal("intact log resurrected dropped session b")
		}
		a, ok := m.Session("a")
		if !ok {
			t.Fatal("session a missing")
		}
		var maxSeq uint64
		for seq := range exp["a"] {
			if seq > maxSeq {
				maxSeq = seq
			}
		}
		if snap := a.Snapshot(); snap.Seq != maxSeq || snapKey(snap) != exp["a"][maxSeq] {
			t.Fatalf("intact recovery at seq=%d, want final seq=%d with matching state", snap.Seq, maxSeq)
		}
		if rs.DroppedSessions != 1 {
			t.Fatalf("RecoveryStats=%+v, want the drop noticed", rs)
		}
		m.Close(context.Background())
		st.Close()
	}
}
