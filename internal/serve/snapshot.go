package serve

import (
	"time"
)

// NodeState is one node's view in a snapshot, keyed by stable external
// ID.
type NodeState struct {
	ID int64   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	R  float64 `json:"r"`
	I  int     `json:"i"`
}

// Head is the scalar head of a session's published state, refreshed
// after every batch and read with one atomic load. It carries exactly
// what summary readers need; the full Snapshot (nodes + edges, ~40
// bytes per node) is rebuilt only on queue drain or the staleness
// bound, so the hot read path never pays for cold node dumps. Splitting
// the two is what lets the mutation pipeline sustain high batch rates:
// rebuilding the full view per batch was the serving layer's largest
// single cost under the wire workload (24% of CPU).
type Head struct {
	Seq      uint64
	N        int
	Max      int     // I(G') of the maintained topology
	Avg      float64 // mean per-node interference
	Edges    int     // maintained topology edge count
	Events   int
	Rebuilds int
	BuiltAt  time.Time
}

// Age reports how stale the head is. A hot session whose head age grows
// means the writer is behind — the liveness signal /metrics exposes.
func (h *Head) Age() time.Duration { return time.Since(h.BuiltAt) }

// Snapshot is the immutable, atomically-published view of a session's
// state. Consistency model: a snapshot reflects exactly the first Seq
// mutations of the session's log — every reader sees a prefix, never a
// torn batch. Holders must treat all fields as read-only.
//
// Under sustained mutation load the full snapshot may trail the Head by
// up to fullSnapshotEvery batches; Flush always leaves it fresh.
type Snapshot struct {
	Session  string
	Seq      uint64 // mutations processed (applied + rejected) when built
	N        int
	Max      int     // I(G') of the maintained topology
	Avg      float64 // mean per-node interference
	Nodes    []NodeState
	Edges    [][2]int64 // maintained topology edges, by node ID
	Events   int        // maintainer events applied so far
	Rebuilds int        // full rebuilds, including initial construction
	BuiltAt  time.Time
}

// Age reports how stale the snapshot is — the /metrics snapshot-age
// gauge. Freshly idle sessions age; that's a property of the session, not
// a bug, but a hot session whose age grows means the writer is behind.
func (s *Snapshot) Age() time.Duration { return time.Since(s.BuiltAt) }

// Node returns the state of the node with the given ID, if present.
// Snapshots keep nodes sorted by engine index, not ID, so this is a
// linear scan — fine for diagnostics; bulk consumers iterate Nodes.
func (s *Snapshot) Node(id int64) (NodeState, bool) {
	for _, n := range s.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return NodeState{}, false
}
