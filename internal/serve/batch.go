package serve

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/obs"
)

// Op enumerates the mutation kinds a session pipeline applies.
type Op uint8

const (
	OpAdd Op = iota + 1
	OpRemove
	OpMove
	OpSetRadius
	OpAnneal
)

// String names the op as it appears in traces and the HTTP API.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpMove:
		return "move"
	case OpSetRadius:
		return "set"
	case OpAnneal:
		return "anneal"
	}
	return "unknown"
}

// opFromString inverts Op.String (also accepting the HTTP API's
// "set_radius" spelling).
func opFromString(s string) (Op, bool) {
	switch s {
	case "add":
		return OpAdd, true
	case "remove":
		return OpRemove, true
	case "move":
		return OpMove, true
	case "set", "set_radius":
		return OpSetRadius, true
	case "anneal":
		return OpAnneal, true
	}
	return 0, false
}

// Mutation is one pipeline operation. Node addresses the stable external
// node ID (not the engine index); for OpAdd a negative Node requests
// automatic assignment — use the constructors below, whose zero-valued
// fields are always safe.
type Mutation struct {
	Op    Op
	Node  int64   // target ID; for OpAdd: -1 = assign, >= 0 = forced (replay)
	X, Y  float64 // OpAdd, OpMove
	R     float64 // OpSetRadius
	Iters int     // OpAnneal
	Seed  int64   // OpAnneal

	// TC carries the distributed trace context of the request that
	// enqueued this mutation (nil = untraced); the batch that drains it
	// adopts the first traced mutation's context. EnqNS is the enqueue
	// wall clock, stamped by Apply while observability is on — the
	// flight recorder's queue-wait stage. Neither field travels through
	// the WAL op encoding; the batch record carries one trace-stamp line
	// instead (see logBatch).
	TC    *obs.TraceContext
	EnqNS int64
}

// Add enqueues a new node at (x, y) with an automatically assigned ID.
func Add(x, y float64) Mutation { return Mutation{Op: OpAdd, Node: -1, X: x, Y: y} }

// Remove deletes node id.
func Remove(id int64) Mutation { return Mutation{Op: OpRemove, Node: id} }

// Move relocates node id to (x, y), keeping its ID.
func Move(id int64, x, y float64) Mutation { return Mutation{Op: OpMove, Node: id, X: x, Y: y} }

// SetRadius overrides node id's transmission radius.
func SetRadius(id int64, r float64) Mutation { return Mutation{Op: OpSetRadius, Node: id, R: r} }

// AnnealStep runs a deterministic simulated-annealing budget over the
// whole instance, adopting the result.
func AnnealStep(iters int, seed int64) Mutation {
	return Mutation{Op: OpAnneal, Iters: iters, Seed: seed}
}

// checkCoord rejects non-finite or out-of-bound coordinates. The bound
// matters operationally: the spatial index allocates cells over the
// instance's bounding box, so a single coordinate at 1e9 would make one
// cheap mutation allocate gigabytes.
func checkCoord(x, y, maxCoord float64) error {
	bad := func(f float64) bool { return math.IsNaN(f) || math.Abs(f) > maxCoord }
	if bad(x) || bad(y) {
		return fmt.Errorf("coordinates (%v, %v) outside [-%g, %g]", x, y, maxCoord, maxCoord)
	}
	return nil
}

// validate rejects malformed mutations at enqueue time, so the owner
// goroutine never has to crash on garbage (NaN or far-flung coordinates,
// negative radii, unbounded anneal budgets).
func (mu Mutation) validate(maxAnnealIters int, maxCoord float64) error {
	bad := func(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }
	switch mu.Op {
	case OpAdd, OpMove:
		if err := checkCoord(mu.X, mu.Y, maxCoord); err != nil {
			return fmt.Errorf("serve: %s with %w", mu.Op, err)
		}
	case OpSetRadius:
		if bad(mu.R) || mu.R < 0 {
			return fmt.Errorf("serve: set radius %v out of range", mu.R)
		}
	case OpAnneal:
		if mu.Iters <= 0 || mu.Iters > maxAnnealIters {
			return fmt.Errorf("serve: anneal iters %d outside (0, %d]", mu.Iters, maxAnnealIters)
		}
	case OpRemove:
	default:
		return fmt.Errorf("serve: unknown op %d", mu.Op)
	}
	return nil
}

// coalesce collapses redundant mutations within one drained batch: only
// the last set-radius per node survives. Dropping the earlier writes is
// sound because intermediate states inside a batch are unobservable
// (snapshots publish at batch boundaries only), radius overrides trigger
// no rebuilds, and the anneal step derives from positions alone. Used
// only outside deterministic mode: a deterministic trace must record
// every op the client enqueued, or replaying it would re-derive
// different rejections.
func coalesce(batch []Mutation) []Mutation {
	lastSet := make(map[int64]int)
	sets := 0
	for i, mu := range batch {
		if mu.Op == OpSetRadius {
			lastSet[mu.Node] = i
			sets++
		}
	}
	if sets <= len(lastSet) {
		return batch
	}
	out := batch[:0]
	for i, mu := range batch {
		if mu.Op == OpSetRadius && lastSet[mu.Node] != i {
			continue
		}
		out = append(out, mu)
	}
	return out
}

// Trace format. A deterministic-mode session emits a self-contained
// textual log:
//
//	rimd-trace v1 n=<n>
//	p i=<idx> x=<x> y=<y>                   one line per initial node
//	m seq=<s> <op fields> n=<n> max=<max>   one line per processed op
//	b seq=<s> k=<k> n=<n> max=<max>         one line per applied batch
//
// Applied op fields are, by kind,
//
//	add id=<id> x=<x> y=<y>
//	remove id=<id>
//	move id=<id> x=<x> y=<y>
//	set id=<id> r=<r>
//	anneal iters=<k> seed=<s>
//
// and a mutation targeting a nonexistent node keeps its slot as
// "reject <op fields>", so replays stay aligned with the recorded
// decision sequence. Floats use strconv's shortest round-trip form, which
// makes the format byte-stable under parse/format cycles.
//
// The b line closes the batch formed by the k preceding m lines and
// records the post-batch state — after the maintainer's deferred
// connectivity repair and rebuild-drift check have run, which the per-op
// lines cannot see. Because of that deferral the final state depends on
// where the boundaries fall, so an exact replay must reproduce them:
// ParseTraceBatches recovers the groups and Session.ApplyBatch pins
// each one to a single pipeline batch.

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// formatOp renders the op-specific fields of a trace line.
func formatOp(mu Mutation) string { return string(appendOp(nil, mu)) }

// appendOp is formatOp in append form — the WAL encode path renders
// batch payloads through it into a reused buffer, so the per-batch
// record costs no intermediate strings (the BENCH_3 WAL throughput
// fix). Output is byte-identical to the historical fmt.Sprintf
// rendering; parseFields round-trips both.
func appendOp(dst []byte, mu Mutation) []byte {
	appendFloat := func(dst []byte, f float64) []byte {
		return strconv.AppendFloat(dst, f, 'g', -1, 64)
	}
	switch mu.Op {
	case OpAdd:
		dst = append(dst, "add id="...)
		dst = strconv.AppendInt(dst, mu.Node, 10)
		dst = append(dst, " x="...)
		dst = appendFloat(dst, mu.X)
		dst = append(dst, " y="...)
		return appendFloat(dst, mu.Y)
	case OpRemove:
		dst = append(dst, "remove id="...)
		return strconv.AppendInt(dst, mu.Node, 10)
	case OpMove:
		dst = append(dst, "move id="...)
		dst = strconv.AppendInt(dst, mu.Node, 10)
		dst = append(dst, " x="...)
		dst = appendFloat(dst, mu.X)
		dst = append(dst, " y="...)
		return appendFloat(dst, mu.Y)
	case OpSetRadius:
		dst = append(dst, "set id="...)
		dst = strconv.AppendInt(dst, mu.Node, 10)
		dst = append(dst, " r="...)
		return appendFloat(dst, mu.R)
	case OpAnneal:
		dst = append(dst, "anneal iters="...)
		dst = strconv.AppendInt(dst, int64(mu.Iters), 10)
		dst = append(dst, " seed="...)
		return strconv.AppendInt(dst, mu.Seed, 10)
	}
	return append(dst, "unknown"...)
}

// traceHeader renders the instance preamble for a graph-measure
// session (the historical format, byte-identical to pre-measure rimd).
func traceHeader(pts []geom.Point) []string {
	return traceHeaderMeasure(pts, MeasureGraph)
}

// traceHeaderMeasure renders the instance preamble. Non-default
// measures append a measure= token to the header line; the graph
// default stays tokenless so existing traces, WALs, and their parsers
// round-trip unchanged.
func traceHeaderMeasure(pts []geom.Point, measure string) []string {
	lines := make([]string, 0, len(pts)+1)
	head := fmt.Sprintf("rimd-trace v1 n=%d", len(pts))
	if measure != "" && measure != MeasureGraph {
		head += " measure=" + measure
	}
	lines = append(lines, head)
	for i, p := range pts {
		lines = append(lines, fmt.Sprintf("p i=%d x=%s y=%s", i, ftoa(p.X), ftoa(p.Y)))
	}
	return lines
}

// headerMeasure extracts the measure token from a rimd-trace header
// line, defaulting to graph for legacy headers.
func headerMeasure(header string) string {
	for _, tok := range strings.Fields(header) {
		if v, ok := strings.CutPrefix(tok, "measure="); ok {
			return v
		}
	}
	return MeasureGraph
}

// ErrTruncated reports trace text that does not end in a newline: the
// final line may be a longer record cut short (a partial copy, a torn
// file), so it cannot be trusted. ParseTrace returns it alongside the
// mutations parsed from the complete lines, letting a caller that knows
// the cut is benign keep the prefix.
var ErrTruncated = errors.New("serve: trace truncated (no final newline)")

// ParseTrace recovers the initial instance and the mutation sequence from
// trace text. Rejected ops are returned like applied ones — re-executing
// them through a fresh pipeline reproduces the same rejections, which is
// what keeps replay byte-identical. Lines starting with '#' are ignored.
//
// Every trace line is newline-terminated (TraceText guarantees it), so
// text that stops mid-line is damaged: the bytes after the last newline
// could be a complete-looking prefix of a longer record ("m seq=5 add
// id=3" cut from "...id=31 x=2 y=7"). ParseTrace refuses to guess — it
// parses the complete lines and returns them with ErrTruncated.
func ParseTrace(text string) (pts []geom.Point, ops []Mutation, err error) {
	pts, ops, _, err = parseTrace(text)
	return pts, ops, err
}

// ParseTraceBatches is ParseTrace with the batch structure kept: the
// mutation sequence comes back split at the recorded b markers, each
// group being one pipeline batch of the original run. Re-applying the
// groups through Session.ApplyBatch (one call per group, in order)
// reproduces the run's deferral points exactly, which is what makes the
// replay byte-identical to the recording. Ops after the final marker — a
// batch still in flight when the trace was captured — form a last
// unterminated group. Each marker's k count is validated against its
// group, so a trace whose ring buffer evicted lines (mid-stream cut) is
// rejected rather than replayed misaligned.
func ParseTraceBatches(text string) (pts []geom.Point, batches [][]Mutation, err error) {
	pts, ops, marks, err := parseTrace(text)
	if err != nil {
		return nil, nil, err
	}
	prev := 0
	for _, mk := range marks {
		if mk.end-prev != mk.k {
			return nil, nil, fmt.Errorf("serve: batch marker seq=%d claims k=%d but %d ops precede it",
				mk.seq, mk.k, mk.end-prev)
		}
		batches = append(batches, ops[prev:mk.end])
		prev = mk.end
	}
	if prev < len(ops) {
		batches = append(batches, ops[prev:])
	}
	return pts, batches, nil
}

// batchMark is a parsed b line: the op index it closes at, plus its
// recorded fields for validation.
type batchMark struct {
	end int
	seq uint64
	k   int
}

func parseTrace(text string) (pts []geom.Point, ops []Mutation, marks []batchMark, err error) {
	var truncated string
	if n := len(text); n > 0 && text[n-1] != '\n' {
		i := strings.LastIndexByte(text, '\n')
		truncated = text[i+1:]
		text = text[:i+1] // i == -1 leaves text empty: even the header is cut
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "rimd-trace v1 ") {
		if truncated != "" {
			return nil, nil, nil, fmt.Errorf("serve: header line %q cut short: %w", truncated, ErrTruncated)
		}
		return nil, nil, nil, fmt.Errorf("serve: not a rimd-trace v1 header: %q", first(lines))
	}
	for no, line := range lines[1:] {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		kv, verb, rejected, perr := parseFields(fields)
		if perr != nil {
			return nil, nil, nil, fmt.Errorf("serve: trace line %d: %w", no+2, perr)
		}
		switch {
		case fields[0] == "p":
			pts = append(pts, geom.Pt(kv["x"], kv["y"]))
		case fields[0] == "m":
			mu, merr := opFromTrace(verb, kv, rejected)
			if merr != nil {
				return nil, nil, nil, fmt.Errorf("serve: trace line %d: %w", no+2, merr)
			}
			ops = append(ops, mu)
		case fields[0] == "b":
			marks = append(marks, batchMark{end: len(ops), seq: uint64(kv["seq"]), k: int(kv["k"])})
		default:
			return nil, nil, nil, fmt.Errorf("serve: trace line %d: unknown record %q", no+2, fields[0])
		}
	}
	if truncated != "" {
		return pts, ops, marks, fmt.Errorf("serve: final line %q cut short: %w", truncated, ErrTruncated)
	}
	return pts, ops, marks, nil
}

func first(lines []string) string {
	if len(lines) == 0 {
		return ""
	}
	return lines[0]
}

// parseFields splits a trace line's tokens into key=value pairs plus the
// op verb (the first bare token after the record tag, skipping "reject").
func parseFields(fields []string) (kv map[string]float64, verb string, rejected bool, err error) {
	kv = make(map[string]float64)
	for _, tok := range fields[1:] {
		k, v, isKV := strings.Cut(tok, "=")
		if !isKV {
			if tok == "reject" {
				rejected = true
			} else if verb == "" {
				verb = tok
			}
			continue
		}
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil {
			return nil, "", false, fmt.Errorf("bad value %q: %v", tok, perr)
		}
		kv[k] = f
	}
	return kv, verb, rejected, nil
}

func opFromTrace(verb string, kv map[string]float64, rejected bool) (Mutation, error) {
	op, ok := opFromString(verb)
	if !ok {
		return Mutation{}, fmt.Errorf("unknown op %q", verb)
	}
	_ = rejected // rejection is an outcome, not an input; replays re-derive it
	mu := Mutation{Op: op, Node: int64(kv["id"])}
	switch op {
	case OpAdd, OpMove:
		mu.X, mu.Y = kv["x"], kv["y"]
	case OpSetRadius:
		mu.R = kv["r"]
	case OpAnneal:
		mu.Iters = int(kv["iters"])
		mu.Seed = int64(kv["seed"])
	}
	return mu, nil
}
