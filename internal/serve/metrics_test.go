package serve

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, x := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(x)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+10+99+1000; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	h.write(&sb, "x")
	out := sb.String()
	// Cumulative counts: le=1 -> {0.5, 1}, le=10 -> +{5, 10}, le=100 -> +{99}.
	for _, want := range []string{
		`x_bucket{le="1"} 2`,
		`x_bucket{le="10"} 4`,
		`x_bucket{le="100"} 5`,
		`x_bucket{le="+Inf"} 6`,
		"x_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := NewHistogram(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("count=%d sum=%v, want 8000/8000 (CAS sum lost updates)", h.Count(), h.Sum())
	}
}

func TestCut2(t *testing.T) {
	route, code, ok := cut2("mutate,429")
	if !ok || route != "mutate" || code != "429" {
		t.Fatalf("cut2 = %q %q %v", route, code, ok)
	}
	if _, _, ok := cut2("nocomma"); ok {
		t.Fatalf("cut2 accepted comma-free key")
	}
}

func TestCoalesceKeepsNonSets(t *testing.T) {
	batch := []Mutation{
		SetRadius(1, 0.1),
		Add(0, 0),
		SetRadius(1, 0.2),
		SetRadius(2, 0.3),
		Remove(5),
		SetRadius(1, 0.4),
	}
	out := coalesce(batch)
	if len(out) != 4 {
		t.Fatalf("coalesced to %d ops: %+v", len(out), out)
	}
	// Order preserved, last set per node survives.
	if out[0].Op != OpAdd || out[1].Op != OpSetRadius || out[1].Node != 2 ||
		out[2].Op != OpRemove || out[3].Op != OpSetRadius || out[3].R != 0.4 {
		t.Fatalf("coalesce order wrong: %+v", out)
	}
}
