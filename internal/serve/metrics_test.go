package serve

import (
	"testing"
)

// The Counter/Histogram machinery (and its bucket/concurrent-sum tests)
// moved to internal/obs; this file keeps the serve-local helpers. The
// exposition format itself is locked by golden_test.go.

func TestCut2(t *testing.T) {
	route, code, ok := cut2("mutate,429")
	if !ok || route != "mutate" || code != "429" {
		t.Fatalf("cut2 = %q %q %v", route, code, ok)
	}
	if _, _, ok := cut2("nocomma"); ok {
		t.Fatalf("cut2 accepted comma-free key")
	}
}

func TestCoalesceKeepsNonSets(t *testing.T) {
	batch := []Mutation{
		SetRadius(1, 0.1),
		Add(0, 0),
		SetRadius(1, 0.2),
		SetRadius(2, 0.3),
		Remove(5),
		SetRadius(1, 0.4),
	}
	out := coalesce(batch)
	if len(out) != 4 {
		t.Fatalf("coalesced to %d ops: %+v", len(out), out)
	}
	// Order preserved, last set per node survives.
	if out[0].Op != OpAdd || out[1].Op != OpSetRadius || out[1].Node != 2 ||
		out[2].Op != OpRemove || out[3].Op != OpSetRadius || out[3].R != 0.4 {
		t.Fatalf("coalesce order wrong: %+v", out)
	}
}
