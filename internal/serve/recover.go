package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/store"
)

// RecoveryStats reports what a boot-time Recover reconstructed — the
// numbers rimd logs as its recovery manifest (they also land in the
// rim_store_* metrics, and from there in the run manifest).
type RecoveryStats struct {
	Sessions        int // sessions alive after recovery
	FromCheckpoint  int // restored from a checkpoint file
	FromLog         int // rebuilt from their create record alone
	DroppedSessions int // sessions whose log ends in a drop record
	// InterruptedDrops counts sessions recovered as dropped because their
	// batch records had neither a create record nor a checkpoint — the
	// signature of a DropSession interrupted by the crash (checkpoint
	// already deleted, create record long pruned, drop record not yet
	// durable). Finishing the drop is the only safe reading. Unsafe manual
	// segment deletion produces the same signature and also lands here —
	// visibly, in this counter — rather than failing the boot.
	InterruptedDrops   int
	ReplayedBatches    int      // WAL batch records replayed
	ReplayedMutations  int      // mutations inside those batches
	TornTail           bool     // the WAL ended mid-record (healed)
	TornBytes          int64    // bytes the torn tail dropped
	SkippedCheckpoints []string // invalid checkpoint files ignored
	Verified           int      // sessions cross-checked against the naive oracle
}

// incarnation is one create-to-drop lifetime of a session ID inside the
// WAL. A later create for the same ID starts a fresh incarnation.
type incarnation struct {
	created       bool
	createPayload []byte
	batches       []store.Record
}

// Recover rebuilds the manager's sessions from the store: newest valid
// checkpoint per session, plus a replay of the WAL tail through the
// normal batch pipeline. With verify set, every recovered session's
// interference vector is cross-checked against the naive O(n²) oracle —
// a recovery that cannot pass the paper's own definition fails loudly
// instead of serving silently wrong state.
//
// Call once, on boot, before exposing the manager to clients; replayed
// batches flow through the live shard pool but are not re-logged.
func (m *Manager) Recover(verify bool) (RecoveryStats, error) {
	var rs RecoveryStats
	st := m.cfg.Store
	if st == nil {
		return rs, ErrNoStore
	}
	sp := obs.Start("serve.recover")
	defer sp.End()

	ckpts, skipped, err := st.LatestCheckpoints()
	if err != nil {
		return rs, fmt.Errorf("serve: recover: checkpoints: %w", err)
	}
	rs.SkippedCheckpoints = skipped

	// One linear WAL pass: group records into per-session incarnations,
	// a drop discarding the current one. everDropped outlives re-creation:
	// it flags IDs whose on-disk checkpoint may belong to a pre-drop
	// incarnation (DropSession's checkpoint deletion is not crash-atomic
	// with its drop record).
	lives := make(map[string]*incarnation)
	droppedIDs := make(map[string]bool)
	everDropped := make(map[string]bool)
	tail, err := st.Scan(func(rec store.Record) error {
		switch rec.Kind {
		case store.RecordCreate:
			lives[rec.Session] = &incarnation{created: true, createPayload: rec.Payload}
			delete(droppedIDs, rec.Session)
		case store.RecordBatch:
			inc := lives[rec.Session]
			if inc == nil {
				inc = &incarnation{}
				lives[rec.Session] = inc
			}
			inc.batches = append(inc.batches, rec)
		case store.RecordDrop:
			delete(lives, rec.Session)
			droppedIDs[rec.Session] = true
			everDropped[rec.Session] = true
		}
		return nil
	})
	if err != nil {
		return rs, fmt.Errorf("serve: recover: wal scan: %w", err)
	}
	rs.TornTail, rs.TornBytes = tail.Truncated, tail.Dropped

	// A checkpoint can only outlive its session's drop record if the
	// machine died between the two during the drop itself — in which case
	// the drop record never landed and the session is live. A checkpoint
	// paired with a final drop record is therefore stale hygiene debt:
	// remove it rather than resurrect from it.
	for id := range droppedIDs {
		rs.DroppedSessions++
		if _, hasCkpt := ckpts[id]; hasCkpt {
			delete(ckpts, id)
			_ = st.DeleteCheckpoints(id)
		}
	}

	// A session that was checkpointed at a barrier and then idle has no
	// WAL records at all (the barrier pruned them) — it exists only as a
	// checkpoint and must still be recovered.
	for id := range ckpts {
		if _, ok := lives[id]; !ok {
			lives[id] = &incarnation{}
		}
	}

	ids := make([]string, 0, len(lives))
	for id := range lives {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for _, id := range ids {
		inc := lives[id]
		ckpt, hasCkpt := ckpts[id]
		// A live session with both a create record and an earlier drop is
		// a re-created ID; any checkpoint on disk may be the previous
		// incarnation's (its deletion raced the crash) and restoring from
		// it would silently serve the old state. The create record is the
		// ground truth — rebuild from it and let the next barrier replace
		// the suspect file.
		if hasCkpt && inc.created && everDropped[id] {
			hasCkpt = false
		}
		var s *Session
		switch {
		case hasCkpt:
			state, derr := decodeCheckpoint(ckpt.Payload)
			if derr != nil {
				return rs, fmt.Errorf("serve: recover %q: %w", id, derr)
			}
			s, err = m.restoreSession(id, state)
			if err != nil {
				return rs, fmt.Errorf("serve: recover %q: %w", id, err)
			}
			rs.FromCheckpoint++
		case inc.created:
			pts, measure, perr := parseCreatePayload(inc.createPayload)
			if perr != nil {
				return rs, fmt.Errorf("serve: recover %q: create record: %w", id, perr)
			}
			s = newSession(m, id, pts, measure)
			m.register(id, s)
			rs.FromLog++
		default:
			// Batches with no create record (pruned at a barrier, so a
			// checkpoint existed) and no checkpoint (deleted): a drop whose
			// record was lost in the crash. Finish it.
			rs.DroppedSessions++
			rs.InterruptedDrops++
			continue
		}

		// Replay the batch records past the restored position through the
		// normal pipeline, with WAL logging suppressed (they are already
		// in the log).
		s.setNoLog(true)
		for _, rec := range inc.batches {
			if rec.Seq <= s.seqFloor() {
				continue // covered by the checkpoint
			}
			muts, perr := parseBatchPayload(rec.Payload)
			if perr != nil {
				return rs, fmt.Errorf("serve: recover %q: batch seq=%d: %w", id, rec.Seq, perr)
			}
			if want := s.seqFloor() + uint64(len(muts)); want != rec.Seq {
				return rs, fmt.Errorf("serve: recover %q: batch seq=%d does not extend prefix at %d by %d",
					id, rec.Seq, s.seqFloor(), len(muts))
			}
			if _, aerr := s.applyPinned(muts); aerr != nil {
				return rs, fmt.Errorf("serve: recover %q: replay batch seq=%d: %w", id, rec.Seq, aerr)
			}
			if ferr := s.Flush(nil); ferr != nil {
				return rs, fmt.Errorf("serve: recover %q: %w", id, ferr)
			}
			rs.ReplayedBatches++
			rs.ReplayedMutations += len(muts)
		}
		if err := s.Flush(nil); err != nil {
			return rs, fmt.Errorf("serve: recover %q: %w", id, err)
		}
		s.setNoLog(false)
		// A follower resumes replication right after recovery: the
		// replicated-record guard must treat everything replayed locally
		// as already delivered. The session is quiescent post-Flush, so
		// reading s.seq here is safe.
		s.mu.Lock()
		s.replSeq = s.seq
		s.mu.Unlock()
		rs.Sessions++

		if verify {
			if err := verifySession(s); err != nil {
				return rs, fmt.Errorf("serve: recover %q: %w", id, err)
			}
			rs.Verified++
		}
	}

	st.CountRecovery(rs.ReplayedBatches, rs.TornBytes)
	return rs, nil
}

// verifySession recomputes the recovered interference vector with the
// naive O(n²) oracle for the session's measure and compares it to the
// engine's maintained state.
func verifySession(s *Session) error {
	st := s.mt.Snapshot()
	var iv core.Vector
	if s.measure == MeasureSinr {
		iv = oracle.PhysLevels(st.Points, st.Radii, phys.Default())
	} else {
		iv = oracle.Interference(st.Points, st.Radii)
	}
	snap := s.Snapshot()
	if max := iv.Max(); max != snap.Max {
		return fmt.Errorf("oracle cross-check: recovered max %d, oracle %d", snap.Max, max)
	}
	for i, want := range iv {
		if got := snap.Nodes[i].I; got != want {
			return fmt.Errorf("oracle cross-check: node %d interference %d, oracle %d", i, got, want)
		}
	}
	return nil
}

// restoreSession rebuilds a session from a decoded checkpoint and
// registers it, bypassing CreateSession (no create record is logged —
// recovery must not re-log history).
func (m *Manager) restoreSession(id string, st sessState) (*Session, error) {
	if len(st.idOf) != len(st.rs.Points) {
		return nil, fmt.Errorf("checkpoint carries %d ids for %d points", len(st.idOf), len(st.rs.Points))
	}
	measure, err := normalizeMeasure(st.measure)
	if err != nil {
		return nil, err
	}
	mt, err := dynamic.Restore(st.rs, m.cfg.RebuildFactor, m.engineFor(measure))
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:      id,
		mgr:     m,
		sh:      m.shardFor(id),
		det:     m.cfg.Deterministic,
		measure: measure,
		flShard: flightShardOf(id),
		nextID:  st.nextID,
		idOf:    append([]int64(nil), st.idOf...),
		idxOf:   make(map[int64]int, len(st.idOf)),
		seq:     st.seq,
		replSeq: st.seq,
		mt:      mt,
	}
	s.cond = sync.NewCond(&s.mu)
	for i, ext := range st.idOf {
		s.idxOf[ext] = i
	}
	if s.det {
		s.header = traceHeaderMeasure(st.rs.Points, measure)
		s.header = append(s.header, fmt.Sprintf("# restored from checkpoint at seq=%d; trace is not replayable from zero", st.seq))
		s.ops = &sim.TraceBuffer{Cap: m.cfg.TraceCap}
	}
	s.initHooks()
	s.publish()
	m.register(id, s)
	return s, nil
}

// seqFloor reads the owner-side mutation-log position. Safe during
// recovery's apply-then-flush loop: the queue is empty whenever it is
// called, so the owner is quiescent.
func (s *Session) seqFloor() uint64 { return s.seq }

// setNoLog toggles WAL logging suppression for replay.
func (s *Session) setNoLog(v bool) {
	s.mu.Lock()
	s.nolog = v
	s.mu.Unlock()
}

// register inserts a recovered session into the table.
func (m *Manager) register(id string, s *Session) {
	m.mu.Lock()
	m.sessions[id] = s
	m.mu.Unlock()
	m.metrics.SessionsCreated.Add(1)
}

// CheckpointAll runs the checkpoint barrier: rotate the WAL, checkpoint
// every live session at a batch boundary, then prune the segments every
// checkpoint now covers. After it returns, recovery needs only the
// checkpoints plus the post-rotation WAL tail.
//
// The rotate-and-list step shares the checkpoint mutex with session
// creation, so a session whose create record landed before the rotation
// is always in the list (and gets a checkpoint before its record is
// pruned); sessions created afterwards have their create records in the
// surviving active segment.
func (m *Manager) CheckpointAll(ctx context.Context) (pruned int, err error) {
	st := m.cfg.Store
	if st == nil {
		return 0, ErrNoStore
	}
	sp := obs.Start("serve.checkpoint-all")
	defer sp.End()

	m.ckptMu.Lock()
	active, rerr := st.Rotate()
	sessions := m.liveSessions()
	m.ckptMu.Unlock()
	if rerr != nil {
		return 0, fmt.Errorf("serve: checkpoint barrier: rotate: %w", rerr)
	}
	for _, s := range sessions {
		if cerr := s.Checkpoint(ctx); cerr != nil {
			// A session dropped mid-barrier is fine — its records die with
			// it. Anything else aborts the barrier before the prune.
			if cerr == ErrSessionClosed {
				continue
			}
			return 0, fmt.Errorf("serve: checkpoint %q: %w", s.id, cerr)
		}
	}
	pruned, perr := st.Prune(active)
	if perr != nil {
		return pruned, fmt.Errorf("serve: checkpoint barrier: prune: %w", perr)
	}
	return pruned, nil
}
