package serve

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Session is one network instance behind the pipeline: a
// dynamic.Maintainer (owning the incremental evaluator) plus the stable
// external node-ID space, a bounded mutation queue, and the published
// snapshot. All engine state is touched only by the owning shard's
// goroutine; clients interact through Apply/Flush/Snapshot.
type Session struct {
	id      string
	mgr     *Manager
	sh      *shard
	det     bool
	measure string // interference measure (MeasureGraph/MeasureSinr), fixed at creation
	flShard uint64 // flight-recorder shard (FNV of id), fixed at creation

	mu        sync.Mutex
	cond      *sync.Cond // signaled when the queue fully drains
	queue     []Mutation
	bounds    []int            // pinned batch sizes (ApplyBatch); runBatch drains one per entry
	scheduled bool             // in the shard's runq or mid-batch
	closed    atomic.Bool      // set under mu; read lock-free by Closed
	dropped   bool             // DropSession (vs. manager drain): stop WAL logging
	nolog     bool             // recovery replay: batches are already in the WAL
	ckptW     []chan ckptReply // checkpoint waiters served between batches
	flushW    int              // Flush waiters: drain publishes full before releasing them
	nextID    int64
	replSeq   uint64 // follower: seq through the last enqueued replicated record

	// Owner-only state (shard goroutine).
	mt      *dynamic.Maintainer
	idOf    []int64       // engine index -> external ID
	idxOf   map[int64]int // external ID -> engine index
	seq     uint64
	scratch *core.State // reused export buffer; snapshots copy out of it
	delta   BatchDelta  // per-batch dirty summary (AfterBatchDelta mode)
	deltaOn bool

	header []string // deterministic mode: instance preamble
	ops    *sim.TraceBuffer
	walBuf []byte // owner-only scratch for WAL batch payload encoding

	snap      atomic.Pointer[Snapshot]
	head      atomic.Pointer[Head]
	sinceFull int // owner-only: batches since the last full publish
	applied   atomic.Int64
	rejected  atomic.Int64
	depth     atomic.Int64 // mirrors len(queue); read lock-free by QueueDepth
}

// flightShardOf spreads sessions across the flight recorder's shards
// (FNV-1a over the id), so concurrent shards' always-on writes never
// share a ring cursor.
func flightShardOf(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// fullSnapshotEvery bounds how many batches may pass before the full
// node/edge snapshot is rebuilt anyway. Flush always forces a rebuild,
// so this only bounds how far Snapshot-path readers (node dumps,
// traces) can trail while nobody flushes.
const fullSnapshotEvery = 64

func newSession(m *Manager, id string, pts []geom.Point, measure string) *Session {
	s := &Session{
		id:      id,
		mgr:     m,
		sh:      m.shardFor(id),
		det:     m.cfg.Deterministic,
		measure: measure,
		flShard: flightShardOf(id),
		nextID:  int64(len(pts)),
		idOf:    make([]int64, len(pts)),
		idxOf:   make(map[int64]int, len(pts)),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range pts {
		s.idOf[i] = int64(i)
		s.idxOf[int64(i)] = i
	}
	if s.det {
		s.header = traceHeaderMeasure(pts, measure)
		s.ops = &sim.TraceBuffer{Cap: m.cfg.TraceCap}
	}
	s.mt = dynamic.NewWithEngine(pts, m.cfg.RebuildFactor, m.engineFor(measure))
	s.initHooks()
	s.publish()
	return s
}

// initHooks wires the maintainer's event and touch callbacks into the
// session: rebuild metrics, and — when the manager publishes per-batch
// deltas — dirty-disk accumulation and the rebuild full-dirty escalation.
// Shared by fresh construction and checkpoint restore.
func (s *Session) initHooks() {
	m := s.mgr
	s.mt.OnEvent = func(ev dynamic.Event) {
		if ev.Kind == dynamic.EventRebuild {
			m.metrics.Rebuilds.Add(1)
			// A drift rebuild replaces the whole radius assignment: the
			// batch's delta can no longer bound what changed.
			s.delta.Full = true
		}
	}
	if m.cfg.AfterBatchDelta != nil {
		s.deltaOn = true
		s.mt.OnTouch = func(at geom.Point, r float64) {
			s.delta.Disks = append(s.delta.Disks, Disk{X: at.X, Y: at.Y, R: r})
		}
	}
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Measure returns the interference measure the session was created
// under (MeasureGraph or MeasureSinr); immutable.
func (s *Session) Measure() string { return s.measure }

// Snapshot returns the latest published full state — one atomic load,
// never blocking the writer. The result is immutable and always
// non-nil. Under sustained mutation load it may trail Head by up to
// fullSnapshotEvery batches; after Flush it is exact.
func (s *Session) Snapshot() *Snapshot { return s.snap.Load() }

// Head returns the scalar head of the session's state — refreshed after
// every batch, one atomic load, never blocking the writer. Hot summary
// readers (the wire and HTTP front doors) use this instead of Snapshot
// so they never touch the full node dump.
func (s *Session) Head() *Head { return s.head.Load() }

// QueueDepth reports the pending-mutation count (metrics/backpressure
// introspection; racy by nature). It reads an atomic mirror of the
// queue length so high-rate summary scrapes — the wire front door reads
// it on every MsgSummary — never contend with the enqueue mutex.
func (s *Session) QueueDepth() int {
	return int(s.depth.Load())
}

// Counts reports processed mutations: applied and rejected.
func (s *Session) Counts() (applied, rejected int64) {
	return s.applied.Load(), s.rejected.Load()
}

// Apply validates and enqueues mutations, all or nothing, and returns the
// IDs assigned to OpAdd mutations (in order). ErrQueueFull means the
// bounded queue cannot take the whole batch — backpressure the caller
// must respond to (the HTTP layer answers 429 + Retry-After).
func (s *Session) Apply(muts ...Mutation) ([]int64, error) {
	if s.mgr.readOnly.Load() {
		return nil, ErrReadOnly
	}
	return s.apply(muts)
}

// ApplyBatch enqueues muts to be applied as exactly one pipeline batch:
// the drain will not merge them with other queued mutations or split
// them at BatchCap. Batch boundaries are semantically significant — the
// maintainer defers its connectivity repair and rebuild-drift check to
// the batch boundary, so the same op sequence batched differently can
// settle on a different (equally valid) radius assignment. Replaying a
// recorded run byte-for-byte therefore requires replaying its exact
// boundaries, and this is the primitive that pins them. Pinned and
// unpinned applies must not be interleaved on one session: the sizes are
// matched against the queue head in FIFO order.
func (s *Session) ApplyBatch(muts []Mutation) ([]int64, error) {
	if s.mgr.readOnly.Load() {
		return nil, ErrReadOnly
	}
	return s.applyPinned(muts)
}

// apply is Apply without the read-only gate — recovery replay and the
// replication apply path (which are the only legal writers on a
// follower) come through here.
func (s *Session) apply(muts []Mutation) ([]int64, error) {
	return s.applyOpts(muts, false)
}

// applyPinned is ApplyBatch without the read-only gate: a follower's
// replication apply and recovery's WAL replay re-apply the leader's
// recorded batches and must land on its exact batch boundaries.
func (s *Session) applyPinned(muts []Mutation) ([]int64, error) {
	return s.applyOpts(muts, true)
}

func (s *Session) applyOpts(muts []Mutation, pinned bool) ([]int64, error) {
	if len(muts) == 0 {
		return nil, nil
	}
	for _, mu := range muts {
		if err := mu.validate(s.mgr.cfg.MaxAnnealIters, s.mgr.cfg.MaxCoord); err != nil {
			return nil, err
		}
	}
	if obs.On() {
		// Enqueue stamp for the flight recorder's queue-wait stage. One
		// clock read per Apply call, amortized over the batch.
		enq := time.Now().UnixNano()
		for i := range muts {
			muts[i].EnqNS = enq
		}
	}
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if len(s.queue)+len(muts) > s.mgr.cfg.QueueCap {
		s.mu.Unlock()
		s.mgr.metrics.QueueFull.Add(1)
		return nil, ErrQueueFull
	}
	var ids []int64
	for i := range muts {
		if muts[i].Op == OpAdd {
			if muts[i].Node < 0 {
				muts[i].Node = s.nextID
				s.nextID++
			} else if muts[i].Node >= s.nextID { // replayed forced ID
				s.nextID = muts[i].Node + 1
			}
			ids = append(ids, muts[i].Node)
		}
	}
	s.queue = append(s.queue, muts...)
	if pinned {
		s.bounds = append(s.bounds, len(muts))
	}
	s.depth.Store(int64(len(s.queue)))
	sched := !s.scheduled
	s.scheduled = true
	s.mu.Unlock()
	if sched {
		s.sh.schedule(s)
	}
	s.mgr.metrics.Enqueued.Add(int64(len(muts)))
	return ids, nil
}

// Flush blocks until every queued mutation has been applied and the
// resulting full snapshot published. A nil ctx waits indefinitely.
//
// Because the full snapshot is only rebuilt on demand, Flush registers
// itself as a waiter (the owner publishes full before releasing waiters)
// and, if it finds the session quiescent with the snapshot trailing the
// head, schedules one empty owner pass to refresh it. The re-check runs
// in a loop so a waiter that registered after the owner's drain check
// can never return with a stale snapshot.
func (s *Session) Flush(ctx context.Context) error {
	if ctx != nil {
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		defer stop()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushW++
	defer func() { s.flushW-- }()
	for {
		for len(s.queue) > 0 || s.scheduled {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			s.cond.Wait()
		}
		if s.snap.Load().Seq == s.head.Load().Seq {
			return nil
		}
		// Quiescent but the full snapshot trails the head. Holding the
		// scheduled flag with an empty queue makes this goroutine the
		// session's owner — no shard pass can start — so it can rebuild
		// the full snapshot in place instead of paying an empty batch.
		s.scheduled = true
		s.mu.Unlock()
		s.publishFull()
		s.mu.Lock()
		if len(s.queue) > 0 || len(s.ckptW) > 0 {
			// Work arrived while we published: Apply/checkpoint saw
			// scheduled=true and left dispatch to us. Hand the session
			// back to its shard and keep waiting.
			s.mu.Unlock()
			ok := s.sh.schedule(s)
			s.mu.Lock()
			if !ok {
				// Shard stopped mid-shutdown; the queue will be
				// rejected. Accept the snapshot we just built.
				s.scheduled = false
				s.cond.Broadcast()
				return nil
			}
			continue
		}
		s.scheduled = false
		s.cond.Broadcast()
		return nil
	}
}

// close rejects future Apply calls; queued mutations still drain.
func (s *Session) close() {
	s.mu.Lock()
	s.closed.Store(true)
	s.mu.Unlock()
}

// Closed reports whether the session has stopped accepting mutations
// (dropped, or the manager is draining). Lock-free: front doors that
// cache session handles across requests use it to invalidate without
// touching the enqueue mutex.
func (s *Session) Closed() bool { return s.closed.Load() }

// rejectQueued clears the pending queue, counting every discarded
// mutation as rejected. Shutdown-deadline path only: the owner may still
// be applying the batch it already drained, but nothing cleared here
// will ever run.
func (s *Session) rejectQueued() int {
	s.mu.Lock()
	n := len(s.queue)
	s.queue = s.queue[:0]
	s.bounds = s.bounds[:0]
	s.depth.Store(0)
	s.cond.Broadcast()
	s.mu.Unlock()
	if n > 0 {
		s.rejected.Add(int64(n))
	}
	return n
}

// TraceText renders the deterministic-mode trace: the instance preamble
// plus every processed-op line. Outside deterministic mode it returns
// "". When the ring buffer has evicted lines, a '#'-comment records the
// count (such a trace is no longer replayable from the beginning — the
// guard that keeps soak sessions from OOMing the daemon).
func (s *Session) TraceText() string {
	if !s.det {
		return ""
	}
	var sb strings.Builder
	for _, l := range s.header {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	if d := s.ops.Dropped(); d > 0 {
		sb.WriteString("# ring cap evicted ")
		sb.WriteString(strconv.FormatInt(d, 10))
		sb.WriteString(" lines\n")
	}
	sb.WriteString(s.ops.String())
	return sb.String()
}

// runBatch is the owner-side pipeline step: drain up to BatchCap
// mutations, coalesce (non-deterministic mode), apply, publish one
// snapshot, reschedule if more arrived meanwhile.
func (s *Session) runBatch() {
	cfg, mx := &s.mgr.cfg, s.mgr.metrics
	if cfg.BeforeBatch != nil {
		cfg.BeforeBatch(s.id)
	}
	s.mu.Lock()
	n := min(len(s.queue), cfg.BatchCap)
	if len(s.bounds) > 0 {
		// Boundary-pinned batch (ApplyBatch): drain exactly the enqueued
		// size, even past BatchCap — a recorded batch was already capped
		// by its producer, and splitting it would move the deferral point.
		n = min(s.bounds[0], len(s.queue))
		s.bounds = s.bounds[1:]
	}
	batch := append([]Mutation(nil), s.queue[:n]...)
	rest := copy(s.queue, s.queue[n:])
	s.queue = s.queue[:rest]
	s.depth.Store(int64(rest))
	s.mu.Unlock()

	// Always-on flight accounting plus tail-sampled trace spans: every
	// non-empty batch writes one compact flight record while observability
	// is on; full span trees are recorded only for traced batches that
	// pass the tail-retention bar (slow, errored, or no bar set). The
	// batch adopts the first traced mutation's context, and its span id is
	// pre-allocated so the WAL stamp (written before apply) and the span
	// records (written after) agree on it.
	var fl obs.FlightRecord
	var tc *obs.TraceContext
	var batchSpan uint64
	var tMark time.Time
	flOn := obs.On() && len(batch) > 0
	if flOn {
		tMark = time.Now()
		fl.Start = tMark.UnixNano()
		fl.Session = s.id
		if e := batch[0].EnqNS; e != 0 { // FIFO: index 0 is the oldest
			fl.QueueUS = obs.US(time.Duration(fl.Start - e))
		}
		for i := range batch {
			if batch[i].TC != nil {
				tc = batch[i].TC
				batchSpan = obs.DefaultRecorder().NextID()
				break
			}
		}
	}

	if !s.det && !cfg.NoCoalesce {
		batch = coalesce(batch)
	}
	if flOn {
		fl.Ops = uint32(len(batch))
		now := time.Now()
		fl.CoalesceUS = obs.US(now.Sub(tMark))
		tMark = now
	}
	if len(batch) > 0 && s.mgr.walOK() {
		s.mu.Lock()
		skip := s.dropped || s.nolog
		s.mu.Unlock()
		if !skip {
			// Write-ahead: the batch is durable (per the fsync policy)
			// before it is applied, so recovery can only ever land on a
			// batch boundary of the acknowledged mutation log.
			s.logBatch(batch, tc, batchSpan)
		}
	}
	if flOn {
		now := time.Now()
		fl.WALUS = obs.US(now.Sub(tMark))
		tMark = now
	}
	var sp *obs.Span
	if tc == nil {
		// Untraced batches keep the sampled local span; traced batches
		// record their tree explicitly below, under tail retention.
		sp = obs.Start("serve.batch")
	}
	t0 := time.Now()
	rej0 := s.rejected.Load()
	if s.deltaOn {
		s.delta.reset()
	}
	// One connectivity repair/drift pass per batch instead of one per
	// mutation — the passes are O(n) each and dominated sustained-churn
	// batches before the deferral.
	s.mt.BeginBatch()
	for i := range batch {
		s.applyOne(batch[i])
	}
	s.mt.EndBatch()
	s.traceBatchMark(len(batch))
	if flOn {
		now := time.Now()
		fl.ApplyUS = obs.US(now.Sub(tMark))
		tMark = now
	}
	pub := sp.Child("serve.publish")
	s.publishHead()
	pub.End()
	sp.End()
	mx.Batches.Add(1)
	mx.BatchSize.Observe(float64(len(batch)))
	mx.ApplyLatency.Observe(time.Since(t0).Seconds())
	if cfg.AfterBatch != nil {
		cfg.AfterBatch(s.id, s.mt.Engine())
	}
	if s.deltaOn {
		var trace uint64
		if tc != nil {
			trace = tc.TraceID
		}
		// Published even for an empty batch: the consumer may have
		// pending work (the subscription matcher integrates new
		// subscriptions at the top of its pass) and returns in O(1) when
		// it does not.
		cfg.AfterBatchDelta(BatchView{
			Session: s.id,
			Seq:     s.seq,
			Trace:   trace,
			Engine:  s.mt.Engine(),
			Delta:   &s.delta,
			IDOf:    s.externalID,
			IdxOf:   s.indexOf,
		})
	}
	if flOn {
		end := time.Now()
		fl.PublishUS = obs.US(end.Sub(tMark))
		fl.Seq = s.seq
		failed := s.rejected.Load() > rej0 || (s.mgr.cfg.Store != nil && !s.mgr.walOK())
		if failed {
			fl.Err = 1
		}
		if tc != nil {
			fl.Trace, fl.Span = tc.TraceID, batchSpan
		}
		obs.DefaultFlight().Add(s.flShard, fl)
		if tc != nil {
			s.recordBatchSpans(tc, batchSpan, fl, end, failed)
		}
	}
	s.serveCheckpoints()

	// The full node/edge snapshot is rebuilt only when a Flush waiter is
	// about to be released or at the staleness bound — rebuilding it per
	// batch was the serving layer's largest single cost under the wire
	// workload (small batches drain the queue constantly, so "publish
	// full on drain" degenerates to "publish full per batch").
	s.mu.Lock()
	more := len(s.queue) > 0 || len(s.ckptW) > 0
	// A read-only manager is a replication follower: its readers never
	// call Flush, so without the refresh-on-drain below the full snapshot
	// would freeze at creation state while the head kept advancing. A
	// drain there is frame-bounded (one per replicated records frame),
	// not per-client-batch, so the rebuild cost stays amortized.
	wantFull := s.flushW > 0 || s.mgr.readOnly.Load()
	s.mu.Unlock()
	s.sinceFull++
	if (!more && wantFull) || s.sinceFull >= fullSnapshotEvery {
		s.publishFull()
		s.sinceFull = 0
	}

	s.mu.Lock()
	// Pending checkpoint waiters that slipped in after serveCheckpoints
	// count as work: reschedule so the next pass serves them. The full
	// publish above happens before the Broadcast; a Flush waiter that
	// registered too late to be seen by the drain check re-checks
	// snapshot freshness on wake and schedules its own refresh pass.
	more = len(s.queue) > 0 || len(s.ckptW) > 0
	if !more {
		s.scheduled = false
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	if more {
		s.sh.schedule(s)
	}
}

// recordBatchSpans publishes a traced batch's span tree: the root
// carries the pre-allocated batch span id (already stamped into the WAL
// record) and links to the remote parent span; the children replay the
// flight record's stage stamps. Tail sampling decides retention here, at
// completion time, when the latency and failure outcome are known.
func (s *Session) recordBatchSpans(tc *obs.TraceContext, batchSpan uint64, fl obs.FlightRecord, end time.Time, failed bool) {
	rootStart := fl.Start - int64(fl.QueueUS)*1e3
	durNS := end.UnixNano() - rootStart
	if !obs.TailKeep(durNS, failed) {
		return
	}
	r := obs.DefaultRecorder()
	lane := r.NextLane()
	r.Record(obs.SpanRecord{
		ID: batchSpan, Lane: lane, Name: "serve.batch",
		Start: rootStart, Dur: durNS,
		Trace: tc.TraceID, Link: tc.SpanID,
	})
	at := rootStart
	stage := func(name string, us uint32) {
		d := int64(us) * 1e3
		r.Record(obs.SpanRecord{
			Parent: batchSpan, Lane: lane, Name: name,
			Start: at, Dur: d, Trace: tc.TraceID,
		})
		at += d
	}
	stage("serve.queue", fl.QueueUS)
	stage("serve.coalesce", fl.CoalesceUS)
	stage("serve.wal", fl.WALUS)
	stage("serve.apply", fl.ApplyUS)
	stage("serve.publish", fl.PublishUS)
}

// applyOne executes a single mutation against the maintainer, translating
// external IDs to engine indices. Mutations addressing IDs that no longer
// exist are rejected (recorded, counted, otherwise a no-op); an
// unexpected engine panic is contained the same way so one poisoned
// mutation cannot take the daemon down.
func (s *Session) applyOne(mu Mutation) {
	ok := true
	defer func() {
		if p := recover(); p != nil {
			s.mgr.metrics.ApplyPanics.Add(1)
			ok = false
		}
		s.seq++
		if ok {
			s.applied.Add(1)
		} else {
			s.rejected.Add(1)
		}
		s.trace(mu, ok)
	}()

	switch mu.Op {
	case OpAdd:
		if _, dup := s.idxOf[mu.Node]; dup { // forced-ID collision (bad replay input)
			ok = false
			return
		}
		s.insert(mu.Node, geom.Pt(mu.X, mu.Y))
		if s.deltaOn {
			s.delta.Added = append(s.delta.Added, NodeChange{ID: mu.Node, X: mu.X, Y: mu.Y})
		}
	case OpRemove:
		idx, found := s.idxOf[mu.Node]
		if !found {
			ok = false
			return
		}
		old := s.mt.Engine().Points()[idx]
		s.mt.Remove(idx)
		s.dropID(mu.Node, idx)
		if s.deltaOn {
			s.delta.Removed = append(s.delta.Removed, NodeChange{ID: mu.Node, OldX: old.X, OldY: old.Y})
		}
	case OpMove:
		idx, found := s.idxOf[mu.Node]
		if !found {
			ok = false
			return
		}
		old := s.mt.Engine().Points()[idx]
		// In-place relocation: the node keeps its engine index, so the
		// external-ID maps are untouched and the per-move cost is the
		// touched disks, not an O(n) index shift.
		s.mt.Move(idx, geom.Pt(mu.X, mu.Y))
		if s.deltaOn {
			s.delta.Moved = append(s.delta.Moved, NodeChange{ID: mu.Node, X: mu.X, Y: mu.Y, OldX: old.X, OldY: old.Y})
		}
	case OpSetRadius:
		idx, found := s.idxOf[mu.Node]
		if !found {
			ok = false
			return
		}
		var oldR float64
		if s.deltaOn {
			oldR = s.mt.Engine().Radius(idx)
		}
		s.mt.SetRadius(idx, mu.R)
		if s.deltaOn {
			s.delta.Radius = append(s.delta.Radius, RadiusChange{ID: mu.Node, Old: oldR, New: mu.R})
		}
	case OpAnneal:
		s.mt.Anneal(mu.Seed, mu.Iters)
		// A successful anneal adopts a whole new radius assignment.
		s.delta.Full = true
	}
}

func (s *Session) insert(id int64, p geom.Point) {
	idx := s.mt.Insert(p)
	s.idOf = append(s.idOf, id)
	s.idxOf[id] = idx
}

// externalID translates an engine index to the stable external node ID.
// Owner-goroutine only (BatchView.IDOf).
func (s *Session) externalID(idx int) int64 {
	if idx < 0 || idx >= len(s.idOf) {
		return -1
	}
	return s.idOf[idx]
}

// indexOf translates an external node ID to its current engine index.
// Owner-goroutine only (BatchView.IdxOf).
func (s *Session) indexOf(id int64) (int, bool) {
	idx, ok := s.idxOf[id]
	return idx, ok
}

// dropID removes id's mapping and shifts the indices above idx down by
// one, mirroring the engine's slice semantics.
func (s *Session) dropID(id int64, idx int) {
	delete(s.idxOf, id)
	s.idOf = append(s.idOf[:idx], s.idOf[idx+1:]...)
	for i := idx; i < len(s.idOf); i++ {
		s.idxOf[s.idOf[i]] = i
	}
}

// traceBatchMark records a batch-boundary line in deterministic mode.
// EndBatch's deferred connectivity repair makes the maintained state
// depend on where batch boundaries fall, so a replay must reproduce
// them: ParseTraceBatches splits the op sequence at these markers, and
// ApplyBatch re-applies each group as one batch. n/max record the
// post-EndBatch state, which the per-op lines cannot see.
func (s *Session) traceBatchMark(k int) {
	if !s.det || k == 0 {
		return
	}
	eng := s.mt.Engine()
	var sb strings.Builder
	sb.WriteString("b seq=")
	sb.WriteString(strconv.FormatUint(s.seq, 10))
	sb.WriteString(" k=")
	sb.WriteString(strconv.Itoa(k))
	sb.WriteString(" n=")
	sb.WriteString(strconv.Itoa(eng.N()))
	sb.WriteString(" max=")
	sb.WriteString(strconv.Itoa(eng.Max()))
	s.ops.Append(sb.String())
}

// trace records one processed-op line in deterministic mode.
func (s *Session) trace(mu Mutation, applied bool) {
	if !s.det {
		return
	}
	eng := s.mt.Engine()
	var sb strings.Builder
	sb.WriteString("m seq=")
	sb.WriteString(strconv.FormatUint(s.seq, 10))
	sb.WriteByte(' ')
	if !applied {
		sb.WriteString("reject ")
	}
	sb.WriteString(formatOp(mu))
	sb.WriteString(" n=")
	sb.WriteString(strconv.Itoa(eng.N()))
	sb.WriteString(" max=")
	sb.WriteString(strconv.Itoa(eng.Max()))
	s.ops.Append(sb.String())
}

// publish refreshes both published views; session construction and
// recovery use it so readers start with an exact full snapshot.
func (s *Session) publish() {
	s.publishHead()
	s.publishFull()
}

// publishHead swaps in a fresh scalar head: O(max I) for the mean (read
// off the engine's interference histogram), everything else O(1). This
// runs after every batch, so it must stay cheap.
func (s *Session) publishHead() {
	eng := s.mt.Engine()
	n := eng.N()
	avg := 0.0
	if n > 0 {
		avg = float64(eng.SumI()) / float64(n)
	}
	s.head.Store(&Head{
		Seq:      s.seq,
		N:        n,
		Max:      eng.Max(),
		Avg:      avg,
		Edges:    s.mt.Topology().M(),
		Events:   s.mt.Events(),
		Rebuilds: s.mt.Rebuilds(),
		BuiltAt:  time.Now(),
	})
}

// publishFull exports the engine state into a fresh immutable snapshot and
// swaps it in. The export itself reuses an owner-only scratch buffer; only
// the snapshot's own node/edge slices are freshly allocated (readers keep
// references to them indefinitely).
func (s *Session) publishFull() {
	st := s.mt.Engine().ExportState(s.scratch)
	s.scratch = st
	nodes := make([]NodeState, st.N())
	sum := 0
	for i := range nodes {
		nodes[i] = NodeState{ID: s.idOf[i], X: st.Points[i].X, Y: st.Points[i].Y, R: st.Radii[i], I: st.I[i]}
		sum += st.I[i]
	}
	avg := 0.0
	if st.N() > 0 {
		avg = float64(sum) / float64(st.N())
	}
	topo := s.mt.Topology()
	edges := make([][2]int64, 0, topo.M())
	for _, e := range topo.Edges() {
		edges = append(edges, [2]int64{s.idOf[e.U], s.idOf[e.V]})
	}
	s.snap.Store(&Snapshot{
		Session:  s.id,
		Seq:      s.seq,
		N:        st.N(),
		Max:      st.Max,
		Avg:      avg,
		Nodes:    nodes,
		Edges:    edges,
		Events:   s.mt.Events(),
		Rebuilds: s.mt.Rebuilds(),
		BuiltAt:  time.Now(),
	})
}
