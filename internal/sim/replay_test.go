package sim_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Deterministic-replay tests through the oracle harness: a simulation is
// fully determined by its construction, so building the same simulator
// twice and running both must yield a byte-identical event trace and
// bit-identical Metrics — under plain random access, under carrier
// sensing, under node failures, under SINR reception, and with per-node
// accounting on. The final test injects nondeterminism on purpose and
// requires the harness to catch it (the property would be worthless if
// it could not fail).

// replayConfig is a scenario: a named way to construct a ready-to-run
// simulator. Every construction must be self-contained — no state shared
// between invocations — which is exactly what the replay harness checks.
type replayConfig struct {
	name string
	mk   func() *sim.Simulator
}

func replayScenarios() []replayConfig {
	build := func(seed int64, mutate func(*sim.Config, *sim.Simulator)) func() *sim.Simulator {
		return func() *sim.Simulator {
			rng := rand.New(rand.NewSource(seed))
			pts := gen.UniformSquare(rng, 30, 2)
			nw := sim.NewNetwork(pts, topology.GreedyMinI(pts))
			cfg := sim.DefaultConfig()
			cfg.Slots = 1500
			cfg.Seed = seed
			if mutate != nil {
				mutate(&cfg, nil)
			}
			s := sim.New(nw, cfg)
			if mutate != nil {
				mutate(nil, s)
			}
			sim.PoissonPairs{N: len(pts), Rate: 0.3, Slots: cfg.Slots, Seed: seed + 100}.Install(s)
			return s
		}
	}
	return []replayConfig{
		{"random-access", build(11, nil)},
		{"carrier-sense", build(12, func(cfg *sim.Config, s *sim.Simulator) {
			if cfg != nil {
				cfg.CarrierSense = true
			}
		})},
		{"failures", build(13, func(cfg *sim.Config, s *sim.Simulator) {
			if s != nil {
				s.FailNodeAt(200, 3)
				s.FailNodeAt(700, 17)
			}
		})},
		{"csma-failures-pernode", build(14, func(cfg *sim.Config, s *sim.Simulator) {
			if cfg != nil {
				cfg.CarrierSense = true
				cfg.PerNode = true
				cfg.QueueCap = 4
			}
			if s != nil {
				s.FailNodeAt(400, 5)
			}
		})},
		{"sinr", build(15, func(cfg *sim.Config, s *sim.Simulator) {
			if cfg != nil {
				cfg.Physical = sim.DefaultPhysical()
			}
		})},
	}
}

func TestReplayDeterminism(t *testing.T) {
	for _, sc := range replayScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			run, err := oracle.Replay(sc.mk)
			if err != nil {
				t.Fatal(err)
			}
			if run.Metrics.Injected == 0 {
				t.Fatal("scenario injected no traffic; the replay check was vacuous")
			}
			if run.Trace == "" {
				t.Fatal("empty trace; the replay check was vacuous")
			}
		})
	}
}

// TestReplayCatchesInjectedNondeterminism is the negative control demanded
// by the harness's contract: when the construction is NOT deterministic —
// here a closure counter leaks state between the two builds, changing the
// MAC seed — Replay must report a divergence, and the report must point
// at a concrete trace line or Metrics field.
func TestReplayCatchesInjectedNondeterminism(t *testing.T) {
	calls := 0
	mk := func() *sim.Simulator {
		calls++
		rng := rand.New(rand.NewSource(9))
		pts := gen.UniformSquare(rng, 20, 2)
		nw := sim.NewNetwork(pts, topology.GreedyMinI(pts))
		cfg := sim.DefaultConfig()
		cfg.Slots = 800
		cfg.Seed = int64(calls) // the deliberate bug
		s := sim.New(nw, cfg)
		sim.PoissonPairs{N: len(pts), Rate: 0.4, Slots: cfg.Slots, Seed: 42}.Install(s)
		return s
	}
	_, err := oracle.Replay(mk)
	if err == nil {
		t.Fatal("replay accepted a run whose MAC seed changed between executions")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergence report lacks a location: %v", err)
	}
}

// TestReplayCatchesMetricsOnlyDrift covers the second reporting path:
// when the traces agree but untraced accounting differs, DiffRuns must
// name the Metrics field. (Constructed directly — two honest runs with
// one doctored field — since the simulator itself has no such bug to
// exploit.)
func TestReplayCatchesMetricsOnlyDrift(t *testing.T) {
	mk := replayScenarios()[0].mk
	a := oracle.Record(mk)
	b := a
	b.Metrics.Energy += 1
	err := oracle.DiffRuns(a, b)
	if err == nil {
		t.Fatal("DiffRuns missed a doctored Metrics field")
	}
	if !strings.Contains(err.Error(), "Metrics.Energy") {
		t.Fatalf("report does not name the diverging field: %v", err)
	}
}

// TestConvergecastReplay exercises the second workload: periodic
// convergecast reports with staggered starts, replayed under carrier
// sensing.
func TestConvergecastReplay(t *testing.T) {
	mk := func() *sim.Simulator {
		rng := rand.New(rand.NewSource(33))
		pts := gen.UniformSquare(rng, 25, 2)
		nw := sim.NewNetwork(pts, topology.MST(pts))
		cfg := sim.DefaultConfig()
		cfg.Slots = 1200
		cfg.Seed = 33
		cfg.CarrierSense = true
		s := sim.New(nw, cfg)
		sim.Convergecast{N: len(pts), Sink: 0, Period: 50, Slots: cfg.Slots, Stagger: true}.Install(s)
		return s
	}
	run, err := oracle.Replay(mk)
	if err != nil {
		t.Fatal(err)
	}
	if run.Metrics.Delivered == 0 {
		t.Fatal("convergecast delivered nothing; replay check was vacuous")
	}
}
