package sim

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/highway"
)

func TestCarrierSenseReducesCollisions(t *testing.T) {
	// Heavy convergecast on the linear exponential chain: CSMA must cut
	// the collision rate relative to plain p-persistence under the same
	// workload and seed.
	pts := gen.ExpChain(20, 1)
	topo := highway.Linear(pts)
	run := func(cs bool) *Metrics {
		nw := NewNetwork(pts, topo)
		cfg := DefaultConfig()
		cfg.Slots = 30000
		cfg.CarrierSense = cs
		s := New(nw, cfg)
		Convergecast{N: 20, Sink: 0, Period: 300, Slots: 15000, Stagger: true}.Install(s)
		return s.Run()
	}
	plain := run(false)
	csma := run(true)
	if csma.Deferrals == 0 {
		t.Fatal("CSMA run never deferred — sensing inactive")
	}
	if plain.Deferrals != 0 {
		t.Fatal("plain run should never defer")
	}
	if csma.CollisionRate() >= plain.CollisionRate() {
		t.Errorf("CSMA collision rate %.4f not below plain %.4f",
			csma.CollisionRate(), plain.CollisionRate())
	}
}

func TestNodeFailureStopsForwarding(t *testing.T) {
	// A 5-node line; the middle node fails mid-run. Frames injected after
	// the failure cannot cross it and are dropped after retries.
	nw := lineNetwork(5, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 20000
	s := New(nw, cfg)
	s.FailNodeAt(5000, 2)
	// One frame before the failure (delivered), one after (dropped).
	s.Schedule(0, func() { s.Inject(0, 4) })
	s.Schedule(10000, func() { s.Inject(0, 4) })
	m := s.Run()
	if m.Delivered != 1 {
		t.Fatalf("delivered %d, want 1 (pre-failure frame only)", m.Delivered)
	}
	if m.DroppedHop != 1 {
		t.Errorf("dropped %d, want 1 (post-failure frame)", m.DroppedHop)
	}
	if m.DeadRx == 0 {
		t.Error("expected transmissions toward the dead node to be counted")
	}
	total := m.Delivered + m.DroppedHop + m.DroppedQ + m.Unroutable + m.InFlight + m.LostAtFail
	if total != m.Injected {
		t.Errorf("conservation violated: %d of %d", total, m.Injected)
	}
}

func TestNodeFailureDestroysQueuedFrames(t *testing.T) {
	// Stuff the relay's queue, then fail it: queued frames are lost and
	// counted.
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.P = 1
	cfg.Slots = 100
	s := New(nw, cfg)
	s.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			s.Inject(0, 2)
		}
	})
	// With P = 1 the first frame reaches the relay in slot 0; failing the
	// relay at slot 1 destroys it in-queue.
	s.FailNodeAt(1, 1)
	m := s.Run()
	if m.LostAtFail == 0 {
		t.Error("expected frames lost in the failed relay's queue")
	}
	total := m.Delivered + m.DroppedHop + m.DroppedQ + m.Unroutable + m.InFlight + m.LostAtFail
	if total != m.Injected {
		t.Errorf("conservation violated: %d of %d", total, m.Injected)
	}
}

func TestFailNodeIdempotent(t *testing.T) {
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 10
	s := New(nw, cfg)
	s.FailNodeAt(1, 1)
	s.FailNodeAt(2, 1) // second failure of the same node: no double count
	s.Schedule(0, func() { s.Inject(0, 2) })
	m := s.Run()
	if m.LostAtFail > 1 {
		t.Errorf("LostAtFail = %d; double-counted on repeated failure", m.LostAtFail)
	}
}

func TestDeadNodeDoesNotTransmit(t *testing.T) {
	nw := lineNetwork(2, 0.5)
	cfg := DefaultConfig()
	cfg.P = 1
	cfg.Slots = 50
	s := New(nw, cfg)
	s.FailNodeAt(0, 0)
	s.Schedule(1, func() { s.Inject(0, 1) })
	m := s.Run()
	if m.TxAttempts != 0 {
		t.Errorf("dead node transmitted %d times", m.TxAttempts)
	}
	if m.InFlight != 1 {
		t.Errorf("frame should rot in the dead node's queue (InFlight=%d)", m.InFlight)
	}
}

func TestCarrierSenseDeterministic(t *testing.T) {
	pts := gen.ExpChain(16, 1)
	topo := highway.AExp(pts)
	run := func() Metrics {
		nw := NewNetwork(pts, topo)
		cfg := DefaultConfig()
		cfg.Slots = 10000
		cfg.CarrierSense = true
		s := New(nw, cfg)
		Convergecast{N: 16, Sink: 0, Period: 400, Slots: 5000, Stagger: true}.Install(s)
		return *s.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("CSMA runs diverged:\n%+v\n%+v", a, b)
	}
}
