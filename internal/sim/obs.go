package sim

import "repro/internal/obs"

// Simulator metrics, mirrored from the run's Metrics once at the end of
// Run — the event loop itself stays free of shared atomics.
var (
	obsSlots = obs.Default().Counter("rim_sim_slots_total",
		"Simulated MAC slots executed.")
	obsInjected = obs.Default().Counter("rim_sim_injected_total",
		"Frames injected into the network.")
	obsDelivered = obs.Default().Counter("rim_sim_delivered_total",
		"Frames delivered end-to-end.")
	obsTxAttempts = obs.Default().Counter("rim_sim_tx_attempts_total",
		"Transmissions attempted (including retransmissions).")
	obsCollisions = obs.Default().Counter("rim_sim_collisions_total",
		"Receptions destroyed by a covering transmission.")
	obsDropped = obs.Default().Counter("rim_sim_dropped_total",
		"Frames dropped (retries, queue overflow, unroutable, failures).")
)
