// Package sim is a packet-level simulator for wireless ad-hoc networks
// whose collision semantics are exactly the paper's interference model:
// a reception at node v fails iff some third node w transmits in the same
// slot and v lies inside w's transmission disk D(w, r_w) — the very disks
// Definition 3.1 counts. Running the same workload over two topologies
// therefore turns the static measure I(G') into measurable packet loss,
// retransmissions, latency, and energy.
//
// Time advances in slots (one frame per slot). Media access is
// p-persistent slotted CSMA with binary exponential backoff; traffic and
// node behavior are deterministic given the seed. A small discrete-event
// queue schedules future work (frame arrivals, traffic generation),
// keeping workload logic independent of the slot loop.
package sim

import "container/heap"

// Event is a scheduled action. Fire runs when the simulation reaches the
// event's slot.
type Event struct {
	Slot int64
	Fire func()
	seq  int64 // insertion order breaks ties deterministically
}

// eventQueue is a binary min-heap on (Slot, seq).
type eventQueue struct {
	items []*Event
	seq   int64
}

func (q *eventQueue) Len() int { return len(q.items) }
func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].Slot != q.items[j].Slot {
		return q.items[i].Slot < q.items[j].Slot
	}
	return q.items[i].seq < q.items[j].seq
}
func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *eventQueue) Push(x interface{}) {
	q.items = append(q.items, x.(*Event))
}
func (q *eventQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// Scheduler dispatches events in slot order, insertion order within a
// slot.
type Scheduler struct {
	q eventQueue
}

// At schedules fn to run when the simulation reaches the given slot.
// Scheduling into the past (before the slot currently being drained) is
// the caller's bug; RunUntil will still fire it, but ordering against
// already-fired events is lost.
func (s *Scheduler) At(slot int64, fn func()) {
	s.q.seq++
	heap.Push(&s.q, &Event{Slot: slot, Fire: fn, seq: s.q.seq})
}

// DrainSlot fires every event scheduled at or before the given slot, in
// order.
func (s *Scheduler) DrainSlot(slot int64) {
	for s.q.Len() > 0 && s.q.items[0].Slot <= slot {
		ev := heap.Pop(&s.q).(*Event)
		ev.Fire()
	}
}

// Pending returns the number of events still queued.
func (s *Scheduler) Pending() int { return s.q.Len() }

// NextSlot returns the slot of the earliest pending event, or -1 when the
// queue is empty.
func (s *Scheduler) NextSlot() int64 {
	if s.q.Len() == 0 {
		return -1
	}
	return s.q.items[0].Slot
}
