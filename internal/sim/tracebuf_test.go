package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceBufferUncappedMatchesWriter(t *testing.T) {
	// Same simulation, two tracers: the uncapped buffer must render
	// byte-identically to WriterTracer.
	run := func(tr Tracer) {
		nw := lineNetwork(3, 0.5)
		cfg := DefaultConfig()
		cfg.Slots = 200
		cfg.P = 1
		s := New(nw, cfg)
		s.SetTracer(tr)
		s.Schedule(0, func() { s.Inject(0, 2); s.Inject(2, 0) })
		s.Run()
	}
	var sb strings.Builder
	run(&WriterTracer{W: &sb})
	tb := &TraceBuffer{}
	run(tb)
	if tb.String() != sb.String() {
		t.Errorf("buffer render diverges from WriterTracer:\n%q\nvs\n%q", tb.String(), sb.String())
	}
	if tb.Dropped() != 0 {
		t.Errorf("uncapped buffer dropped %d", tb.Dropped())
	}
}

func TestTraceBufferRingEviction(t *testing.T) {
	tb := &TraceBuffer{Cap: 3}
	for i := 0; i < 10; i++ {
		tb.Append(fmt.Sprintf("line %d", i))
	}
	if tb.Len() != 3 {
		t.Fatalf("len = %d, want 3", tb.Len())
	}
	if tb.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tb.Dropped())
	}
	want := []string{"line 7", "line 8", "line 9"}
	got := tb.Lines()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lines = %v, want %v", got, want)
		}
	}
	if tb.String() != "line 7\nline 8\nline 9\n" {
		t.Fatalf("string = %q", tb.String())
	}
	tb.Reset()
	if tb.Len() != 0 || tb.Dropped() != 0 || tb.String() != "" {
		t.Fatalf("reset left state: len=%d dropped=%d", tb.Len(), tb.Dropped())
	}
	// Post-reset appends start a fresh window.
	tb.Append("x")
	if tb.String() != "x\n" {
		t.Fatalf("post-reset string = %q", tb.String())
	}
}

// TestTraceBufferBoundsSimTrace is the size-guard scenario: a long
// simulation traced into a capped buffer retains exactly the cap, with the
// overflow counted, while an unbounded recording of the same run confirms
// the retained lines are the true suffix.
func TestTraceBufferBoundsSimTrace(t *testing.T) {
	run := func(tr Tracer) {
		nw := lineNetwork(4, 0.5)
		cfg := DefaultConfig()
		cfg.Slots = 500
		cfg.P = 1
		s := New(nw, cfg)
		s.SetTracer(tr)
		for i := 0; i < 20; i++ {
			slot := int64(i * 10)
			s.Schedule(slot, func() { s.Inject(0, 3) })
		}
		s.Run()
	}
	full := &TraceBuffer{}
	run(full)
	capped := &TraceBuffer{Cap: 16}
	run(capped)

	if full.Len() <= 16 {
		t.Skipf("run produced only %d lines; cap not exercised", full.Len())
	}
	if capped.Len() != 16 {
		t.Fatalf("capped retained %d lines", capped.Len())
	}
	if want := int64(full.Len() - 16); capped.Dropped() != want {
		t.Fatalf("dropped = %d, want %d", capped.Dropped(), want)
	}
	suffix := full.Lines()[full.Len()-16:]
	for i, l := range capped.Lines() {
		if l != suffix[i] {
			t.Fatalf("retained line %d = %q, want suffix %q", i, l, suffix[i])
		}
	}
}

func TestTraceBufferConcurrentReaders(t *testing.T) {
	tb := &TraceBuffer{Cap: 64}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = tb.String()
					_ = tb.Len()
					_ = tb.Dropped()
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		tb.OnTx(int64(i), 0, 1, int64(i), "ok")
	}
	close(done)
	wg.Wait()
	if tb.Len() != 64 {
		t.Fatalf("len = %d", tb.Len())
	}
}
