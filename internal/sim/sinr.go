package sim

import (
	"math"

	"repro/internal/phys"
)

// This file adds the physical (SINR) reception model as an alternative to
// the paper's protocol (disk) model, so experiments can ask how well the
// receiver-centric disk measure predicts physical-layer outages.
//
// Under the physical model, node u transmits with the minimum power that
// reaches its farthest neighbor at the SINR threshold:
//
//	P_u = β · N · r_u^α
//
// so the received signal of u at distance d is S = P_u / d^α, and a
// transmission u→v is decoded iff
//
//	S / (N + Σ_{w sending, w≠u} P_w / |w,v|^α) ≥ β .
//
// With a single sender this reduces exactly to "v within D(u, r_u)" — the
// physical model degenerates to the paper's disks when there is no
// concurrent traffic, which is what makes the two comparable: they differ
// only in how simultaneous transmissions combine (binary disk membership
// vs accumulated fractional interference).

// PhysicalConfig parameterizes SINR reception.
type PhysicalConfig struct {
	// Enabled switches reception from the disk model to SINR.
	Enabled bool
	// PathLoss is the path-loss exponent α (2–6 in practice).
	PathLoss float64
	// Beta is the SINR decoding threshold β (> 0).
	Beta float64
	// Noise is the ambient noise floor N (> 0).
	Noise float64
}

// DefaultPhysical returns the standard parameterization (α = 3, β = 2,
// unit-less noise floor) — the same constants phys.Default() uses, so
// the simulator's reception model and the phys interference measure
// describe one physical layer.
func DefaultPhysical() PhysicalConfig {
	m := phys.Default()
	return PhysicalConfig{Enabled: true, PathLoss: m.PathLoss, Beta: m.Beta, Noise: m.Noise}
}

// model views the reception parameters as a phys.Model (the simulator
// has no far-field cutoff: reception sums interference network-wide).
func (pc PhysicalConfig) model() phys.Model {
	return phys.Model{PathLoss: pc.PathLoss, Beta: pc.Beta, Noise: pc.Noise}
}

// txPower returns P_u for a node with transmission radius r under the
// physical configuration. Delegates to phys.Model.TxPower so the two
// packages cannot drift.
func (pc PhysicalConfig) txPower(r float64) float64 {
	return pc.model().TxPower(r)
}

// sinrOK reports whether the transmission u→v is decodable this slot
// under the physical model. It accumulates interference from every other
// concurrent sender in the whole network (not only disk-coverers — the
// physical model has no sharp edge).
func (s *Simulator) sinrOK(u, v int) bool {
	pc := s.cfg.Physical
	d := s.nw.Pts[u].Dist(s.nw.Pts[v])
	if d == 0 {
		return true // coincident: infinite signal
	}
	signal := pc.txPower(s.nw.Radii[u]) / math.Pow(d, pc.PathLoss)
	interf := 0.0
	for w := range s.sending {
		if w == u || !s.sending[w] {
			continue
		}
		dw := s.nw.Pts[w].Dist(s.nw.Pts[v])
		if dw == 0 {
			return false // co-located interferer obliterates reception
		}
		interf += pc.txPower(s.nw.Radii[w]) / math.Pow(dw, pc.PathLoss)
	}
	return signal >= pc.Beta*(pc.Noise+interf)
}
