package sim

import (
	"strings"
	"testing"
)

func TestTraceSingleDelivery(t *testing.T) {
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 100
	cfg.P = 1
	s := New(nw, cfg)
	var sb strings.Builder
	tr := &WriterTracer{W: &sb}
	s.SetTracer(tr)
	s.Schedule(0, func() { s.Inject(0, 2) })
	s.Run()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "t=0 tx 0->1 frame=1 ok\nt=1 tx 1->2 frame=1 ok\nt=1 deliver frame=1 0=>2 hops=2\n"
	if out != want {
		t.Errorf("trace:\n%q\nwant:\n%q", out, want)
	}
}

func TestTraceCollisionAndDrop(t *testing.T) {
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 300
	cfg.P = 1
	cfg.BackoffBase = 0
	cfg.MaxRetries = 1
	s := New(nw, cfg)
	var sb strings.Builder
	s.SetTracer(&WriterTracer{W: &sb})
	s.Schedule(0, func() { s.Inject(0, 1); s.Inject(2, 1) })
	s.Run()
	out := sb.String()
	if !strings.Contains(out, "collision") {
		t.Error("no collision traced")
	}
	if !strings.Contains(out, "drop frame=1 retries") || !strings.Contains(out, "drop frame=2 retries") {
		t.Errorf("drops missing:\n%s", out)
	}
}

func TestTraceNodeFailure(t *testing.T) {
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.P = 1
	cfg.Slots = 50
	s := New(nw, cfg)
	var sb strings.Builder
	s.SetTracer(&WriterTracer{W: &sb})
	s.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			s.Inject(0, 2)
		}
	})
	s.FailNodeAt(1, 1)
	s.Run()
	out := sb.String()
	if !strings.Contains(out, "node-failure") {
		t.Errorf("node failure not traced:\n%s", out)
	}
	if !strings.Contains(out, "dead-rx") {
		t.Errorf("dead-rx transmissions not traced:\n%s", out)
	}
}

func TestTraceDeterministic(t *testing.T) {
	run := func() string {
		nw := lineNetwork(5, 0.5)
		cfg := DefaultConfig()
		cfg.Slots = 2000
		s := New(nw, cfg)
		var sb strings.Builder
		s.SetTracer(&WriterTracer{W: &sb})
		Convergecast{N: 5, Sink: 0, Period: 100, Slots: 1000, Stagger: true}.Install(s)
		s.Run()
		return sb.String()
	}
	if run() != run() {
		t.Fatal("traces of identical runs differ")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink broken" }

func TestTraceWriteErrorsSticky(t *testing.T) {
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 100
	cfg.P = 1
	s := New(nw, cfg)
	tr := &WriterTracer{W: &failWriter{}}
	s.SetTracer(tr)
	s.Schedule(0, func() { s.Inject(0, 2) })
	m := s.Run() // must not panic or fail the run
	if m.Delivered != 1 {
		t.Error("run should succeed despite broken trace sink")
	}
	if tr.Err() == nil {
		t.Error("write error should be sticky and visible")
	}
}
