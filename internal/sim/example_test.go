package sim_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/highway"
	"repro/internal/sim"
)

// Run identical convergecast traffic over a high- and a low-interference
// topology of the same instance: the collision budget follows I(G').
func Example() {
	pts := gen.ExpChain(16, 1)
	for _, tc := range []struct {
		name string
		g    func() *sim.Network
	}{
		{"linear", func() *sim.Network { return sim.NewNetwork(pts, highway.Linear(pts)) }},
		{"aexp", func() *sim.Network { return sim.NewNetwork(pts, highway.AExp(pts)) }},
	} {
		cfg := sim.DefaultConfig()
		cfg.Slots = 20000
		s := sim.New(tc.g(), cfg)
		sim.Convergecast{N: 16, Sink: 0, Period: 500, Slots: 10000, Stagger: true}.Install(s)
		m := s.Run()
		fmt.Printf("%s: I=%d collisions=%d delivered=%d/%d\n",
			tc.name, tc.g().MaxInterference(), m.Collisions, m.Delivered, m.Injected)
	}
	// Output:
	// linear: I=14 collisions=1550 delivered=299/300
	// aexp: I=5 collisions=612 delivered=300/300
}
