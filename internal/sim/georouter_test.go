package sim

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/udg"
)

func TestGreedyGeoAdvancesOnLine(t *testing.T) {
	nw := lineNetwork(5, 0.5)
	r := NewGreedyGeoRouter(nw)
	if h := r.NextHop(0, 4); h != 1 {
		t.Errorf("NextHop(0,4) = %d", h)
	}
	if h := r.NextHop(4, 0); h != 3 {
		t.Errorf("NextHop(4,0) = %d", h)
	}
	if h := r.NextHop(2, 2); h != -1 {
		t.Errorf("NextHop to self = %d", h)
	}
}

func TestGreedyGeoLocalMinimum(t *testing.T) {
	// A "C" shape: from the tip, every neighbor moves AWAY from the
	// destination across the gap — greedy strands the packet.
	pts := []geom.Point{
		geom.Pt(0, 0),   // 0: source tip
		geom.Pt(0, 0.5), // 1: up the C
		geom.Pt(0.5, 0.9),
		geom.Pt(1.0, 0.5),
		geom.Pt(1.0, 0), // 4: destination tip (gap 0→4 is 1.0… but UDG edge!) — widen it
	}
	// Move the destination out of range of the source: distance 1.2.
	pts[4] = geom.Pt(1.2, 0)
	topo := graph.New(5)
	for i := 1; i < 5; i++ {
		topo.AddEdge(i-1, i, pts[i-1].Dist(pts[i]))
	}
	nw := NewNetwork(pts, topo)
	r := NewGreedyGeoRouter(nw)
	// From 0 toward 4: neighbor 1 is at distance √(1.2²+0.5²) ≈ 1.3 > 1.2
	// — no progress, local minimum.
	if h := r.NextHop(0, 4); h != -1 {
		t.Errorf("expected local minimum, got hop %d", h)
	}
	// The simulator drops such frames as unroutable and conserves counts.
	cfg := DefaultConfig()
	cfg.Slots = 100
	cfg.P = 1
	s := New(nw, cfg)
	s.SetRouter(r)
	s.Schedule(0, func() { s.Inject(0, 4) })
	m := s.Run()
	if m.Unroutable != 1 || m.Delivered != 0 {
		t.Errorf("unroutable %d delivered %d", m.Unroutable, m.Delivered)
	}
	total := m.Delivered + m.DroppedHop + m.DroppedQ + m.Unroutable + m.InFlight + m.LostAtFail
	if total != m.Injected {
		t.Errorf("conservation violated")
	}
}

func TestGreedyGeoDeliversOnDenseSpanner(t *testing.T) {
	// On a Gabriel graph over a dense uniform instance, greedy forwarding
	// succeeds for the overwhelming majority of pairs (GG is a classic
	// substrate for geographic routing).
	rng := rand.New(rand.NewSource(7))
	pts := gen.UniformSquare(rng, 120, 2.5)
	base := udg.Build(pts)
	if !base.Connected() {
		t.Skip("instance not connected for this seed")
	}
	gg := topology.GG(pts)
	nw := NewNetwork(pts, gg)
	cfg := DefaultConfig()
	cfg.Slots = 200000
	s := New(nw, cfg)
	s.SetRouter(NewGreedyGeoRouter(nw))
	PoissonPairs{N: 120, Rate: 0.01, Slots: 50000, Seed: 9, SameComponentOnly: true}.Install(s)
	m := s.Run()
	if m.Injected == 0 {
		t.Fatal("no traffic")
	}
	if m.DeliveryRatio() < 0.9 {
		t.Errorf("greedy-on-GG delivery %.3f too low", m.DeliveryRatio())
	}
}

func TestGreedyGeoStrandsMoreOnTreesThanSpanners(t *testing.T) {
	// Trees strand greedy packets far more often than spanners: count
	// stranded pairs combinatorially (router-level, no MAC noise).
	rng := rand.New(rand.NewSource(8))
	pts := gen.UniformSquare(rng, 100, 2.2)
	count := func(topo *graph.Graph) int {
		nw := NewNetwork(pts, topo)
		r := NewGreedyGeoRouter(nw)
		stranded := 0
		for s := 0; s < len(pts); s += 3 {
			for d := 0; d < len(pts); d += 7 {
				if s == d {
					continue
				}
				// Walk greedily up to n hops.
				cur, ok := s, false
				for hops := 0; hops < len(pts); hops++ {
					nxt := r.NextHop(cur, d)
					if nxt == d {
						ok = true
						break
					}
					if nxt < 0 {
						break
					}
					cur = nxt
				}
				if !ok {
					stranded++
				}
			}
		}
		return stranded
	}
	mstStranded := count(topology.MST(pts))
	ggStranded := count(topology.GG(pts))
	if ggStranded >= mstStranded {
		t.Errorf("stranded pairs: GG %d should be below MST %d", ggStranded, mstStranded)
	}
}
