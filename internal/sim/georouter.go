package sim

import "repro/internal/geom"

// GreedyGeoRouter forwards geographically: from u, pick the topology
// neighbor strictly closer to the destination than u itself (the greedy
// rule of the position-based routing literature the paper cites — Bose
// et al. [1], GPSR [7], Kuhn et al. [8]). When no neighbor makes
// progress the packet is at a local minimum and greedy gives up
// (NextHop returns -1); recovery schemes like face routing are beyond
// this reproduction's scope, and the tests measure exactly how often
// trees vs spanners strand greedy packets.
type GreedyGeoRouter struct {
	pts  []geom.Point
	topo topoAdj
}

// topoAdj is the minimal adjacency view the router needs (satisfied by
// *graph.Graph).
type topoAdj interface {
	Neighbors(u int) []int
}

// NewGreedyGeoRouter builds a geographic router over the network's
// topology and node positions.
func NewGreedyGeoRouter(nw *Network) *GreedyGeoRouter {
	return &GreedyGeoRouter{pts: nw.Pts, topo: nw.Topo}
}

// NextHop implements Router: the neighbor closest to the destination,
// provided it improves on u's own distance. Ties break toward the
// smaller index, so routes are deterministic.
func (r *GreedyGeoRouter) NextHop(from, to int) int {
	if from == to {
		return -1
	}
	dst := r.pts[to]
	best := -1
	bestD2 := r.pts[from].Dist2(dst)
	for _, v := range r.topo.Neighbors(from) {
		d2 := r.pts[v].Dist2(dst)
		if d2 < bestD2 || (d2 == bestD2 && best >= 0 && v < best) {
			best, bestD2 = v, d2
		}
	}
	return best
}

// SetRouter swaps the simulator's routing strategy; call before
// injecting traffic. Frames already queued keep routing through the new
// router, so swapping mid-run is the caller's responsibility to avoid.
func (s *Simulator) SetRouter(r Router) { s.router = r }
