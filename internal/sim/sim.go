package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/obs"
)

// Config sets the MAC and accounting parameters of a run.
type Config struct {
	// Slots is the simulation horizon.
	Slots int64
	// P is the transmit probability of the p-persistent MAC when a node
	// has a frame and its backoff has expired. Typical 0.1–0.5.
	P float64
	// MaxRetries bounds retransmissions of one hop before the frame is
	// dropped.
	MaxRetries int
	// BackoffBase is the mean backoff (slots) after the k-th failure; the
	// actual wait is uniform in [0, BackoffBase·2^k).
	BackoffBase int
	// Alpha is the path-loss exponent for the energy model: one
	// transmission by u costs r_u^Alpha (plus a fixed electronics cost).
	Alpha float64
	// Seed drives all randomness of the run.
	Seed int64
	// QueueCap bounds each node's forwarding queue; arrivals beyond it are
	// dropped (counted). Zero means unbounded.
	QueueCap int
	// CarrierSense enables CSMA: a node defers (without burning a backoff)
	// when any node whose disk covers it transmitted in the previous slot.
	// Sensing range is the interference disk system itself — a node hears
	// exactly the transmitters that could collide at it.
	CarrierSense bool
	// Physical, when enabled, replaces the paper's disk reception model
	// with SINR decoding (see sinr.go). Failures still count as
	// Collisions.
	Physical PhysicalConfig
	// SlotGate, when non-nil, turns the MAC into scheduled access: node u
	// may transmit its head frame to its next hop v in slot t only when
	// SlotGate(t, u, v) is true (and it then transmits deterministically,
	// ignoring P). internal/schedule derives gates from TDMA link
	// schedules; a correct schedule yields zero collisions by
	// construction.
	SlotGate func(slot int64, from, to int) bool
	// AwakeGate, when non-nil, lets nodes sleep: node u's radio is on in
	// slot t iff AwakeGate(t, u). Sleeping nodes neither transmit nor pay
	// idle-listening energy. Under random access every node must listen
	// every slot (nil gate); under TDMA a node needs its radio only in
	// slots where it sends or receives — internal/schedule derives the
	// gate, and the energy gap is the point of the X7 experiment.
	AwakeGate func(slot int64, node int) bool
	// IdleListenCost is the energy one awake node pays per slot for
	// listening (radios burn nearly as much receiving/idling as
	// transmitting; this is what sleep scheduling saves).
	IdleListenCost float64
	// PerNode enables per-node accounting (Metrics.NodeRxFailures and
	// NodeTxAttempts), the data behind the node-level I(v)↔collisions
	// correlation experiment.
	PerNode bool
}

// DefaultConfig returns sane MAC parameters for the experiments.
func DefaultConfig() Config {
	return Config{
		Slots:       20000,
		P:           0.25,
		MaxRetries:  7,
		BackoffBase: 2,
		Alpha:       2,
		Seed:        1,
		// Idle listening costs a large fraction of a short transmission:
		// the standard radio-energy regime that makes sleeping worthwhile.
		IdleListenCost: 0.005,
	}
}

// Frame is one end-to-end message hopping through the network.
type Frame struct {
	ID      int64
	Src     int
	Dst     int
	Born    int64 // slot of injection at Src
	Hops    int
	retries int
}

// Metrics aggregates a run's outcome.
type Metrics struct {
	Injected     int64 // frames entering the network
	Delivered    int64 // frames that reached their destination
	DroppedHop   int64 // frames dropped after MaxRetries on some hop
	DroppedQ     int64 // frames dropped on queue overflow
	Unroutable   int64 // frames with no path to the destination
	InFlight     int64 // frames still queued at the horizon
	Collisions   int64 // receptions destroyed by a covering transmission
	HalfDuplex   int64 // receptions missed because the receiver was sending
	TxAttempts   int64 // transmissions (incl. retransmissions)
	Retransmits  int64
	Deferrals    int64   // transmissions postponed by carrier sensing
	DeadRx       int64   // transmissions toward a failed node
	LostAtFail   int64   // frames destroyed in a failing node's queue
	Energy       float64 // Σ per-transmission r^α + electronics
	ListenEnergy float64 // Σ idle-listening cost over awake node-slots
	LatencySum   int64   // Σ (delivery slot − Born) over delivered frames
	HopSum       int64   // Σ hops over delivered frames
	// Per-node accounting (nil unless Config.PerNode):
	// NodeRxFailures[v] counts receptions addressed to v destroyed by a
	// covering transmission — the dynamic counterpart of I(v);
	// NodeTxAttempts[u] counts u's transmissions.
	NodeRxFailures []int64
	NodeTxAttempts []int64
}

// TotalEnergy returns transmission plus listening energy.
func (m *Metrics) TotalEnergy() float64 { return m.Energy + m.ListenEnergy }

// DeliveryRatio returns Delivered/Injected (1 for an idle run).
func (m *Metrics) DeliveryRatio() float64 {
	if m.Injected == 0 {
		return 1
	}
	return float64(m.Delivered) / float64(m.Injected)
}

// MeanLatency returns the average end-to-end latency in slots over
// delivered frames (0 when none were delivered).
func (m *Metrics) MeanLatency() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.LatencySum) / float64(m.Delivered)
}

// CollisionRate returns Collisions/TxAttempts (0 for an idle run).
func (m *Metrics) CollisionRate() float64 {
	if m.TxAttempts == 0 {
		return 0
	}
	return float64(m.Collisions) / float64(m.TxAttempts)
}

// Simulator runs a workload over a Network.
type Simulator struct {
	cfg    Config
	nw     *Network
	router Router
	rng    *rand.Rand
	sched  Scheduler
	// Per-node sender state.
	queues  [][]*Frame // head = queues[u][0]
	backoff []int64    // slot until which u stays silent
	// Per-slot scratch.
	txFrame     []*Frame // frame being sent by u this slot (nil = silent)
	txTarget    []int
	sending     []bool
	prevSending []bool // last slot's senders, for carrier sensing
	dead        []bool // failed nodes (failure injection)
	m           Metrics
	tracer      Tracer
	frameSeq    int64
	now         int64
	slotSpan    *obs.Span // sampled per-slot span (nil off the sample)
}

// New builds a simulator over the network with BFS minimum-hop routing.
func New(nw *Network, cfg Config) *Simulator {
	if cfg.P <= 0 || cfg.P > 1 {
		panic(fmt.Sprintf("sim: transmit probability %v out of (0,1]", cfg.P))
	}
	n := len(nw.Pts)
	var nodeRx, nodeTx []int64
	if cfg.PerNode {
		nodeRx = make([]int64, n)
		nodeTx = make([]int64, n)
	}
	return &Simulator{
		m:           Metrics{NodeRxFailures: nodeRx, NodeTxAttempts: nodeTx},
		cfg:         cfg,
		nw:          nw,
		router:      NewBFSRouter(nw.Topo),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		queues:      make([][]*Frame, n),
		backoff:     make([]int64, n),
		txFrame:     make([]*Frame, n),
		txTarget:    make([]int, n),
		sending:     make([]bool, n),
		prevSending: make([]bool, n),
		dead:        make([]bool, n),
	}
}

// FailNodeAt schedules a permanent failure of the node at the given
// slot: its queued frames are destroyed (counted in LostAtFail) and it
// neither transmits nor receives afterwards. Routing is static, so
// frames whose path crosses the failed node retry and eventually drop —
// the failure-injection experiments measure exactly that exposure.
func (s *Simulator) FailNodeAt(slot int64, node int) {
	s.Schedule(slot, func() {
		if s.dead[node] {
			return
		}
		s.dead[node] = true
		s.m.LostAtFail += int64(len(s.queues[node]))
		if s.tracer != nil {
			for _, f := range s.queues[node] {
				s.tracer.OnDrop(s.now, f.ID, "node-failure")
			}
		}
		s.queues[node] = nil
	})
}

// Now returns the current slot.
func (s *Simulator) Now() int64 { return s.now }

// Metrics returns the accumulated metrics (valid after Run).
func (s *Simulator) Metrics() *Metrics { return &s.m }

// Schedule registers fn to run at the given slot (workload hook).
func (s *Simulator) Schedule(slot int64, fn func()) { s.sched.At(slot, fn) }

// Inject enters a new frame at src destined for dst at the current slot.
// Frames to self are delivered immediately.
func (s *Simulator) Inject(src, dst int) {
	s.m.Injected++
	if src == dst {
		s.m.Delivered++
		return
	}
	if s.router.NextHop(src, dst) < 0 {
		s.m.Unroutable++
		return
	}
	s.frameSeq++
	f := &Frame{ID: s.frameSeq, Src: src, Dst: dst, Born: s.now}
	s.enqueue(src, f)
}

func (s *Simulator) enqueue(u int, f *Frame) {
	if s.cfg.QueueCap > 0 && len(s.queues[u]) >= s.cfg.QueueCap {
		s.m.DroppedQ++
		if s.tracer != nil {
			s.tracer.OnDrop(s.now, f.ID, "queue")
		}
		return
	}
	s.queues[u] = append(s.queues[u], f)
}

// Run executes the configured number of slots.
func (s *Simulator) Run() *Metrics {
	sp := obs.Start("sim.run")
	for s.now = 0; s.now < s.cfg.Slots; s.now++ {
		// Every 64th slot gets its own span with tx/rx phase children —
		// enough trace detail to see the loop's shape without one record
		// per slot.
		if sp != nil && s.now&63 == 0 {
			s.slotSpan = sp.Child("sim.slot")
		}
		s.sched.DrainSlot(s.now)
		s.step()
		s.slotSpan.End()
		s.slotSpan = nil
	}
	for _, q := range s.queues {
		s.m.InFlight += int64(len(q))
	}
	sp.End()
	if obs.On() {
		obsSlots.Add(s.cfg.Slots)
		obsInjected.Add(s.m.Injected)
		obsDelivered.Add(s.m.Delivered)
		obsTxAttempts.Add(s.m.TxAttempts)
		obsCollisions.Add(s.m.Collisions)
		obsDropped.Add(s.m.DroppedHop + s.m.DroppedQ + s.m.Unroutable + s.m.LostAtFail)
	}
	return &s.m
}

// step simulates one slot: transmit decisions, then reception resolution.
func (s *Simulator) step() {
	n := len(s.nw.Pts)
	// Phase 1: every backlogged node with expired backoff transmits with
	// probability P (p-persistent slotted access).
	tx := s.slotSpan.Child("sim.tx-phase")
	for u := 0; u < n; u++ {
		s.sending[u] = false
		s.txFrame[u] = nil
		if s.dead[u] {
			continue
		}
		awake := s.cfg.AwakeGate == nil || s.cfg.AwakeGate(s.now, u)
		if awake {
			s.m.ListenEnergy += s.cfg.IdleListenCost
		}
		if !awake || len(s.queues[u]) == 0 || s.backoff[u] > s.now {
			continue
		}
		if s.cfg.CarrierSense && s.channelBusy(u) {
			s.m.Deferrals++
			continue
		}
		f := s.queues[u][0]
		hop := s.router.NextHop(u, f.Dst)
		if hop < 0 {
			// With BFS routing this cannot happen (routes are static); a
			// geographic router strands frames at local minima. Drop and
			// account the frame so conservation holds.
			s.pop(u)
			s.m.Unroutable++
			if s.tracer != nil {
				s.tracer.OnDrop(s.now, f.ID, "unroutable")
			}
			continue
		}
		if s.cfg.SlotGate != nil {
			// Scheduled access: transmit deterministically in owned slots.
			if !s.cfg.SlotGate(s.now, u, hop) {
				continue
			}
		} else if s.rng.Float64() >= s.cfg.P {
			// p-persistent random access.
			continue
		}
		s.sending[u] = true
		s.txFrame[u] = f
		s.txTarget[u] = hop
		s.m.TxAttempts++
		if s.m.NodeTxAttempts != nil {
			s.m.NodeTxAttempts[u]++
		}
		if f.retries > 0 {
			s.m.Retransmits++
		}
		s.m.Energy += math.Pow(s.nw.Radii[u], s.cfg.Alpha) + electronicsCost
	}

	tx.End()

	// Phase 2: resolve receptions. A frame u→v succeeds iff v is not
	// itself sending (half-duplex) and no OTHER sender's disk covers v.
	rx := s.slotSpan.Child("sim.rx-phase")
	for u := 0; u < n; u++ {
		if !s.sending[u] {
			continue
		}
		v := s.txTarget[u]
		f := s.txFrame[u]
		ok := true
		if s.dead[v] {
			ok = false
			s.m.DeadRx++
		} else if s.sending[v] {
			ok = false
			s.m.HalfDuplex++
		} else if s.cfg.Physical.Enabled {
			if !s.sinrOK(u, v) {
				ok = false
				s.m.Collisions++
				if s.m.NodeRxFailures != nil {
					s.m.NodeRxFailures[v]++
				}
			}
		} else {
			for _, w := range s.nw.CoveredBy[v] {
				if w != u && s.sending[w] {
					ok = false
					s.m.Collisions++
					if s.m.NodeRxFailures != nil {
						s.m.NodeRxFailures[v]++
					}
					break
				}
			}
		}
		if s.tracer != nil {
			outcome := "ok"
			switch {
			case ok:
			case s.dead[v]:
				outcome = "dead-rx"
			case s.sending[v]:
				outcome = "half-duplex"
			default:
				outcome = "collision"
			}
			s.tracer.OnTx(s.now, u, v, f.ID, outcome)
		}
		if ok {
			s.pop(u)
			f.retries = 0
			f.Hops++
			if v == f.Dst {
				s.m.Delivered++
				s.m.LatencySum += s.now - f.Born
				s.m.HopSum += int64(f.Hops)
				if s.tracer != nil {
					s.tracer.OnDeliver(s.now, f.ID, f.Src, f.Dst, f.Hops)
				}
			} else {
				s.enqueue(v, f)
			}
			s.backoff[u] = 0
		} else {
			f.retries++
			if f.retries > s.cfg.MaxRetries {
				s.pop(u)
				s.m.DroppedHop++
				if s.tracer != nil {
					s.tracer.OnDrop(s.now, f.ID, "retries")
				}
			} else {
				// Binary exponential backoff.
				window := int64(s.cfg.BackoffBase) << uint(f.retries-1)
				if window < 1 {
					window = 1
				}
				s.backoff[u] = s.now + 1 + s.rng.Int63n(window)
			}
		}
	}
	rx.End()
	copy(s.prevSending, s.sending)
}

// channelBusy reports whether node u sensed a transmission in the
// previous slot: some node whose interference disk covers u was sending.
func (s *Simulator) channelBusy(u int) bool {
	for _, w := range s.nw.CoveredBy[u] {
		if s.prevSending[w] {
			return true
		}
	}
	return false
}

// electronicsCost is the fixed per-transmission energy (radio
// electronics), keeping zero-radius transmissions from being free.
const electronicsCost = 0.01

func (s *Simulator) pop(u int) {
	q := s.queues[u]
	copy(q, q[1:])
	s.queues[u] = q[:len(q)-1]
}
