package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
)

// Network is the static radio layout a simulation runs over: node
// positions, the topology's links, each node's transmission radius
// r_u (distance to its farthest neighbor, as in the model), and the
// precomputed coverage sets that drive collision detection.
type Network struct {
	Pts   []geom.Point
	Topo  *graph.Graph
	Radii []float64
	// Covers[w] lists the nodes inside D(w, Radii[w]) other than w: the
	// nodes a transmission by w disturbs. This is the adjacency the
	// paper's I(v) counts, transposed.
	Covers [][]int
	// CoveredBy[v] lists the nodes whose disks contain v; len(CoveredBy[v])
	// is exactly I(v).
	CoveredBy [][]int
}

// NewNetwork precomputes the radio layout for a topology over pts.
func NewNetwork(pts []geom.Point, topo *graph.Graph) *Network {
	if topo.N() != len(pts) {
		panic(fmt.Sprintf("sim: topology over %d nodes, %d points", topo.N(), len(pts)))
	}
	n := len(pts)
	nw := &Network{
		Pts:       pts,
		Topo:      topo,
		Radii:     core.Radii(pts, topo),
		Covers:    make([][]int, n),
		CoveredBy: make([][]int, n),
	}
	if n == 0 {
		return nw
	}
	grid := geom.NewGrid(pts, gridCellFor(pts))
	buf := make([]int, 0, 64)
	for w := 0; w < n; w++ {
		if nw.Radii[w] <= 0 {
			continue
		}
		buf = grid.Within(pts[w], nw.Radii[w], buf[:0])
		for _, v := range buf {
			if v == w {
				continue
			}
			nw.Covers[w] = append(nw.Covers[w], v)
			nw.CoveredBy[v] = append(nw.CoveredBy[v], w)
		}
	}
	return nw
}

// Interference returns I(v) for node v — the length of its covered-by
// list, by construction identical to core.Interference.
func (nw *Network) Interference(v int) int { return len(nw.CoveredBy[v]) }

// MaxInterference returns I(G') of the underlying topology.
func (nw *Network) MaxInterference() int {
	m := 0
	for v := range nw.CoveredBy {
		if len(nw.CoveredBy[v]) > m {
			m = len(nw.CoveredBy[v])
		}
	}
	return m
}

func gridCellFor(pts []geom.Point) float64 {
	b := geom.Bounds(pts)
	ext := b.Width()
	if b.Height() > ext {
		ext = b.Height()
	}
	if ext <= 0 {
		return 1
	}
	c := ext / float64(1+len(pts)/4)
	if c <= 0 {
		return 1
	}
	return c
}

// Router chooses the next hop toward a destination over the topology.
type Router interface {
	// NextHop returns the neighbor of `from` on a shortest path to `to`,
	// or -1 when `to` is unreachable. NextHop(to, to) is never asked.
	NextHop(from, to int) int
}

// BFSRouter routes along minimum-hop paths, computing and caching one
// BFS tree per destination on first use. Ties between equal-hop parents
// resolve to the smallest neighbor index, so routes are deterministic.
type BFSRouter struct {
	topo *graph.Graph
	// parent[dst][u] = next hop from u toward dst (-1 unreachable).
	parent map[int][]int
}

// NewBFSRouter returns a router over the given topology.
func NewBFSRouter(topo *graph.Graph) *BFSRouter {
	return &BFSRouter{topo: topo, parent: make(map[int][]int)}
}

// NextHop implements Router.
func (r *BFSRouter) NextHop(from, to int) int {
	tree, ok := r.parent[to]
	if !ok {
		tree = r.buildTree(to)
		r.parent[to] = tree
	}
	return tree[from]
}

// buildTree runs BFS from dst and records, for every node, its parent
// toward dst.
func (r *BFSRouter) buildTree(dst int) []int {
	n := r.topo.N()
	par := make([]int, n)
	dist := make([]int, n)
	for i := range par {
		par[i] = -1
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range r.topo.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				par[v] = u
				queue = append(queue, v)
			} else if dist[v] == dist[u]+1 && u < par[v] {
				par[v] = u // deterministic tie-break
			}
		}
	}
	return par
}
