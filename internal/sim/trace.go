package sim

import (
	"fmt"
	"io"
)

// Tracer receives the simulator's per-slot events. All methods are called
// synchronously from the slot loop, in deterministic order, so traces of
// identically-seeded runs are byte-identical.
type Tracer interface {
	// OnTx fires for every transmission attempt; outcome is one of
	// "ok", "collision", "half-duplex", "dead-rx".
	OnTx(slot int64, from, to int, frame int64, outcome string)
	// OnDeliver fires when a frame reaches its destination.
	OnDeliver(slot int64, frame int64, src, dst int, hops int)
	// OnDrop fires when a frame leaves the system undelivered; reason is
	// one of "retries", "queue", "unroutable", "node-failure".
	OnDrop(slot int64, frame int64, reason string)
}

// SetTracer installs a tracer (nil disables tracing). Install before Run.
func (s *Simulator) SetTracer(t Tracer) { s.tracer = t }

// WriterTracer renders events as compact text lines, one per event:
//
//	t=SLOT tx FROM->TO frame=ID outcome
//	t=SLOT deliver frame=ID SRC=>DST hops=H
//	t=SLOT drop frame=ID reason
//
// Write errors are sticky and reported by Err (the simulation itself
// never fails on a broken trace sink).
type WriterTracer struct {
	W   io.Writer
	err error
}

// Err returns the first write error, if any.
func (w *WriterTracer) Err() error { return w.err }

func (w *WriterTracer) printf(format string, args ...interface{}) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.W, format, args...)
}

// OnTx implements Tracer.
func (w *WriterTracer) OnTx(slot int64, from, to int, frame int64, outcome string) {
	w.printf("t=%d tx %d->%d frame=%d %s\n", slot, from, to, frame, outcome)
}

// OnDeliver implements Tracer.
func (w *WriterTracer) OnDeliver(slot int64, frame int64, src, dst int, hops int) {
	w.printf("t=%d deliver frame=%d %d=>%d hops=%d\n", slot, frame, src, dst, hops)
}

// OnDrop implements Tracer.
func (w *WriterTracer) OnDrop(slot int64, frame int64, reason string) {
	w.printf("t=%d drop frame=%d %s\n", slot, frame, reason)
}
