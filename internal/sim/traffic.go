package sim

import (
	"math"
	"math/rand"
)

// Workload installs traffic onto a simulator before Run.
type Workload interface {
	Install(s *Simulator)
}

// PoissonPairs injects frames between uniformly random source/destination
// pairs: in every slot, each of Rate expected frames arrives. Arrivals
// are pre-scheduled through the event queue, making the workload
// byte-identical across topologies compared under the same seed.
type PoissonPairs struct {
	N     int     // node count
	Rate  float64 // expected injections per slot (whole network)
	Slots int64
	Seed  int64
	// SameComponentOnly, when set, redraws pairs until source and
	// destination share a UDG component (checked via the simulator's
	// router), so delivery ratios are not polluted by unroutable traffic.
	SameComponentOnly bool
}

// Install implements Workload.
func (w PoissonPairs) Install(s *Simulator) {
	rng := rand.New(rand.NewSource(w.Seed))
	if w.N < 2 || w.Rate <= 0 {
		return
	}
	for slot := int64(0); slot < w.Slots; slot++ {
		// Poisson thinning: number of arrivals this slot.
		k := poisson(rng, w.Rate)
		for i := 0; i < k; i++ {
			src := rng.Intn(w.N)
			dst := rng.Intn(w.N)
			for dst == src {
				dst = rng.Intn(w.N)
			}
			if w.SameComponentOnly {
				for tries := 0; tries < 50 && s.router.NextHop(src, dst) < 0; tries++ {
					dst = rng.Intn(w.N)
					for dst == src {
						dst = rng.Intn(w.N)
					}
				}
			}
			at, a, b := slot, src, dst
			s.Schedule(at, func() { s.Inject(a, b) })
		}
	}
}

// poisson samples a Poisson variate by Knuth's method (fine for the small
// rates used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // guard against absurd rates
			return k
		}
	}
}

// Convergecast has every node periodically send a report to a single
// sink — the data-gathering pattern of sensor networks that motivated the
// receiver-centric measure's precursor [4].
type Convergecast struct {
	N      int
	Sink   int
	Period int64 // slots between successive reports of one node
	Slots  int64
	// Stagger spreads node start offsets deterministically so reports do
	// not all collide in slot 0.
	Stagger bool
}

// Install implements Workload.
func (w Convergecast) Install(s *Simulator) {
	if w.Period <= 0 || w.N == 0 {
		return
	}
	for u := 0; u < w.N; u++ {
		if u == w.Sink {
			continue
		}
		start := int64(0)
		if w.Stagger {
			start = int64(u) % w.Period
		}
		for slot := start; slot < w.Slots; slot += w.Period {
			at, src := slot, u
			s.Schedule(at, func() { s.Inject(src, w.Sink) })
		}
	}
}
