package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/highway"
	"repro/internal/topology"
)

func lineNetwork(n int, gap float64) *Network {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*gap, 0)
	}
	topo := graph.New(n)
	for i := 1; i < n; i++ {
		topo.AddEdge(i-1, i, gap)
	}
	return NewNetwork(pts, topo)
}

func TestSchedulerOrder(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(5, func() { got = append(got, 5) })
	s.At(1, func() { got = append(got, 1) })
	s.At(5, func() { got = append(got, 50) }) // same slot: insertion order
	s.At(3, func() { got = append(got, 3) })
	if s.NextSlot() != 1 {
		t.Errorf("NextSlot = %d", s.NextSlot())
	}
	s.DrainSlot(4)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("after DrainSlot(4): %v", got)
	}
	s.DrainSlot(10)
	if len(got) != 4 || got[2] != 5 || got[3] != 50 {
		t.Fatalf("final order: %v", got)
	}
	if s.Pending() != 0 || s.NextSlot() != -1 {
		t.Error("queue should be empty")
	}
}

func TestNetworkCoverageMatchesCoreInterference(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(60)
		pts := gen.UniformSquare(rng, n, 3)
		topo := topology.MST(pts)
		nw := NewNetwork(pts, topo)
		iv := core.Interference(pts, topo)
		for v := 0; v < n; v++ {
			if nw.Interference(v) != iv[v] {
				t.Fatalf("trial %d node %d: network I=%d, core I=%d", trial, v, nw.Interference(v), iv[v])
			}
		}
		if nw.MaxInterference() != iv.Max() {
			t.Fatalf("trial %d: max %d vs %d", trial, nw.MaxInterference(), iv.Max())
		}
	}
}

func TestBFSRouterShortestHops(t *testing.T) {
	nw := lineNetwork(5, 0.5)
	r := NewBFSRouter(nw.Topo)
	if h := r.NextHop(0, 4); h != 1 {
		t.Errorf("NextHop(0,4) = %d, want 1", h)
	}
	if h := r.NextHop(4, 0); h != 3 {
		t.Errorf("NextHop(4,0) = %d, want 3", h)
	}
	// Unreachable.
	topo := graph.New(3)
	topo.AddEdge(0, 1, 1)
	r2 := NewBFSRouter(topo)
	if h := r2.NextHop(0, 2); h != -1 {
		t.Errorf("unreachable NextHop = %d, want -1", h)
	}
}

func TestSingleFrameDelivery(t *testing.T) {
	nw := lineNetwork(4, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 2000
	cfg.P = 1 // only one sender ever: deterministic success each slot
	s := New(nw, cfg)
	s.Schedule(0, func() { s.Inject(0, 3) })
	m := s.Run()
	if m.Injected != 1 || m.Delivered != 1 {
		t.Fatalf("injected %d delivered %d", m.Injected, m.Delivered)
	}
	if m.Collisions != 0 {
		t.Errorf("collisions = %d on a lone frame", m.Collisions)
	}
	if m.HopSum != 3 {
		t.Errorf("hops = %d, want 3", m.HopSum)
	}
	// The first hop fires in the injection slot, so a 3-hop delivery
	// completes 2 slots after birth at the earliest.
	if m.MeanLatency() < 2 {
		t.Errorf("latency %v below hops-1", m.MeanLatency())
	}
	if m.Energy <= 0 {
		t.Error("energy should accumulate")
	}
}

func TestSelfAndUnroutableFrames(t *testing.T) {
	topo := graph.New(3)
	topo.AddEdge(0, 1, 0.5)
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(5, 0)}
	s := New(NewNetwork(pts, topo), DefaultConfig())
	s.Schedule(0, func() {
		s.Inject(0, 0) // self: immediate delivery
		s.Inject(0, 2) // unroutable
	})
	m := s.Run()
	if m.Delivered != 1 || m.Unroutable != 1 {
		t.Errorf("delivered %d unroutable %d", m.Delivered, m.Unroutable)
	}
}

func TestTwoSendersCollideAtSharedReceiver(t *testing.T) {
	// Nodes 0 and 2 both flood frames to 1 in the middle; with P = 1 both
	// transmit every slot and every reception at 1 is destroyed: zero
	// deliveries, only drops.
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 500
	cfg.P = 1
	cfg.BackoffBase = 0 // retry immediately: perpetual collision
	s := New(nw, cfg)
	s.Schedule(0, func() { s.Inject(0, 1); s.Inject(2, 1) })
	m := s.Run()
	if m.Delivered != 0 {
		t.Fatalf("delivered %d, want 0 (P=1 lockstep collision)", m.Delivered)
	}
	if m.Collisions == 0 {
		t.Error("expected collisions")
	}
	if m.DroppedHop != 2 {
		t.Errorf("dropped %d, want both frames dropped", m.DroppedHop)
	}
}

func TestBackoffResolvesContention(t *testing.T) {
	// Same duel, but probabilistic access and backoff let both through.
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 5000
	cfg.P = 0.3
	s := New(nw, cfg)
	s.Schedule(0, func() { s.Inject(0, 1); s.Inject(2, 1) })
	m := s.Run()
	if m.Delivered != 2 {
		t.Fatalf("delivered %d, want 2", m.Delivered)
	}
}

func TestHalfDuplexAccounting(t *testing.T) {
	// 0 → 1 and 1 → 2 simultaneously: node 1 cannot receive while sending.
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 1
	cfg.P = 1
	s := New(nw, cfg)
	s.Schedule(0, func() { s.Inject(0, 1); s.Inject(1, 2) })
	m := s.Run()
	if m.HalfDuplex != 1 {
		t.Errorf("half-duplex misses = %d, want 1 (0→1 while 1 sends)", m.HalfDuplex)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	pts := gen.UniformSquare(rng, 40, 2)
	topo := topology.MST(pts)
	run := func() Metrics {
		nw := NewNetwork(pts, topo)
		cfg := DefaultConfig()
		cfg.Slots = 3000
		s := New(nw, cfg)
		PoissonPairs{N: 40, Rate: 0.05, Slots: 3000, Seed: 7, SameComponentOnly: true}.Install(s)
		return *s.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different metrics:\n%+v\n%+v", a, b)
	}
}

func TestConvergecastAllReportsAccounted(t *testing.T) {
	nw := lineNetwork(6, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 30000
	s := New(nw, cfg)
	Convergecast{N: 6, Sink: 0, Period: 600, Slots: 6000, Stagger: true}.Install(s)
	m := s.Run()
	wantInjected := int64(5 * 10) // 5 senders × 10 periods
	if m.Injected != wantInjected {
		t.Fatalf("injected %d, want %d", m.Injected, wantInjected)
	}
	total := m.Delivered + m.DroppedHop + m.DroppedQ + m.Unroutable + m.InFlight
	if total != m.Injected {
		t.Fatalf("conservation violated: %d accounted of %d", total, m.Injected)
	}
	if m.DeliveryRatio() < 0.9 {
		t.Errorf("delivery ratio %.2f too low for light convergecast", m.DeliveryRatio())
	}
}

// TestInterferenceDrivesCollisions is the X2 validation: under identical
// workloads, the high-interference linear chain suffers more collisions
// than the AExp topology on the same exponential instance.
func TestInterferenceDrivesCollisions(t *testing.T) {
	pts := gen.ExpChain(24, 1)
	linear := highway.Linear(pts)
	aexp := highway.AExp(pts)
	run := func(topo *graph.Graph) *Metrics {
		nw := NewNetwork(pts, topo)
		cfg := DefaultConfig()
		cfg.Slots = 40000
		s := New(nw, cfg)
		Convergecast{N: 24, Sink: 0, Period: 400, Slots: 20000, Stagger: true}.Install(s)
		return s.Run()
	}
	mLin := run(linear)
	mExp := run(aexp)
	iLin := core.Interference(pts, linear).Max()
	iExp := core.Interference(pts, aexp).Max()
	if iLin <= iExp {
		t.Fatalf("setup broken: I_lin=%d should exceed I_aexp=%d", iLin, iExp)
	}
	if mLin.CollisionRate() <= mExp.CollisionRate() {
		t.Errorf("collision rates: linear %.4f <= aexp %.4f — interference should drive collisions",
			mLin.CollisionRate(), mExp.CollisionRate())
	}
}

func TestQueueCapDropsAccounted(t *testing.T) {
	nw := lineNetwork(3, 0.5)
	cfg := DefaultConfig()
	cfg.Slots = 10
	cfg.QueueCap = 1
	s := New(nw, cfg)
	s.Schedule(0, func() {
		s.Inject(0, 2)
		s.Inject(0, 2)
		s.Inject(0, 2)
	})
	m := s.Run()
	if m.DroppedQ != 2 {
		t.Errorf("queue drops = %d, want 2", m.DroppedQ)
	}
}

func TestNewPanicsOnBadP(t *testing.T) {
	nw := lineNetwork(2, 0.5)
	for _, p := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("P=%v should panic", p)
				}
			}()
			cfg := DefaultConfig()
			cfg.P = p
			New(nw, cfg)
		}()
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{}
	if m.DeliveryRatio() != 1 || m.MeanLatency() != 0 || m.CollisionRate() != 0 {
		t.Error("idle metrics wrong")
	}
	m = Metrics{Injected: 4, Delivered: 2, LatencySum: 10, TxAttempts: 8, Collisions: 2}
	if m.DeliveryRatio() != 0.5 {
		t.Error("ratio wrong")
	}
	if m.MeanLatency() != 5 {
		t.Error("latency wrong")
	}
	if m.CollisionRate() != 0.25 {
		t.Error("collision rate wrong")
	}
}

func TestPoissonSamplerMean(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	lambda := 0.7
	sum := 0
	trials := 20000
	for i := 0; i < trials; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / float64(trials)
	if math.Abs(mean-lambda) > 0.05 {
		t.Errorf("poisson mean %.3f, want ≈ %.1f", mean, lambda)
	}
	if poisson(rng, 0) != 0 {
		t.Error("zero-rate poisson should be 0")
	}
}

func BenchmarkSimSlot(b *testing.B) {
	rng := rand.New(rand.NewSource(404))
	pts := gen.UniformSquare(rng, 200, 4)
	topo := topology.MST(pts)
	nw := NewNetwork(pts, topo)
	cfg := DefaultConfig()
	cfg.Slots = int64(b.N)
	s := New(nw, cfg)
	PoissonPairs{N: 200, Rate: 0.2, Slots: cfg.Slots, Seed: 5, SameComponentOnly: true}.Install(s)
	b.ResetTimer()
	s.Run()
}
