package sim

import (
	"fmt"
	"strings"
	"sync"
)

// TraceBuffer is an in-memory Tracer with an optional ring-buffer cap, so
// a long-running process (the rimd daemon with deterministic tracing left
// on, a soak test) retains the most recent Cap lines instead of growing
// without bound. Cap <= 0 keeps every line — the faithful-recording mode
// the replay oracles want.
//
// Lines are stored in event order. When the cap is exceeded the oldest
// lines are dropped and counted; String and Lines return only the
// retained suffix. Unlike WriterTracer, TraceBuffer is safe for one
// writer plus concurrent readers (the daemon's owner goroutine appends
// while HTTP scrapes read).
type TraceBuffer struct {
	// Cap bounds the number of retained lines; <= 0 means unlimited. Set
	// before the first event and leave unchanged.
	Cap int

	mu      sync.Mutex
	lines   []string
	start   int // ring head when len(lines) == Cap
	dropped int64
}

// Append records one raw line (no trailing newline), evicting the oldest
// retained line once the cap is reached.
func (tb *TraceBuffer) Append(line string) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.Cap > 0 && len(tb.lines) == tb.Cap {
		tb.lines[tb.start] = line
		tb.start = (tb.start + 1) % tb.Cap
		tb.dropped++
		return
	}
	tb.lines = append(tb.lines, line)
}

// Len returns the number of retained lines.
func (tb *TraceBuffer) Len() int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return len(tb.lines)
}

// Dropped returns how many lines the ring evicted.
func (tb *TraceBuffer) Dropped() int64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.dropped
}

// Lines returns a copy of the retained lines in event order.
func (tb *TraceBuffer) Lines() []string {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	out := make([]string, 0, len(tb.lines))
	out = append(out, tb.lines[tb.start:]...)
	out = append(out, tb.lines[:tb.start]...)
	return out
}

// String renders the retained lines newline-terminated, matching what a
// WriterTracer would have written for the same suffix of events.
func (tb *TraceBuffer) String() string {
	lines := tb.Lines()
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// Reset discards all retained lines and the drop count.
func (tb *TraceBuffer) Reset() {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.lines = tb.lines[:0]
	tb.start = 0
	tb.dropped = 0
}

// OnTx implements Tracer with WriterTracer's line format.
func (tb *TraceBuffer) OnTx(slot int64, from, to int, frame int64, outcome string) {
	tb.Append(fmt.Sprintf("t=%d tx %d->%d frame=%d %s", slot, from, to, frame, outcome))
}

// OnDeliver implements Tracer.
func (tb *TraceBuffer) OnDeliver(slot int64, frame int64, src, dst int, hops int) {
	tb.Append(fmt.Sprintf("t=%d deliver frame=%d %d=>%d hops=%d", slot, frame, src, dst, hops))
}

// OnDrop implements Tracer.
func (tb *TraceBuffer) OnDrop(slot int64, frame int64, reason string) {
	tb.Append(fmt.Sprintf("t=%d drop frame=%d %s", slot, frame, reason))
}
