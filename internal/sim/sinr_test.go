package sim

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/highway"
)

func physCfg() Config {
	cfg := DefaultConfig()
	cfg.Physical = DefaultPhysical()
	return cfg
}

func TestSINRSingleSenderMatchesDiskModel(t *testing.T) {
	// With no concurrent traffic the physical model degenerates to the
	// disk model: a lone frame crosses a line exactly as before.
	nw := lineNetwork(4, 0.5)
	cfg := physCfg()
	cfg.Slots = 2000
	cfg.P = 1
	s := New(nw, cfg)
	s.Schedule(0, func() { s.Inject(0, 3) })
	m := s.Run()
	if m.Delivered != 1 || m.Collisions != 0 {
		t.Fatalf("delivered %d collisions %d", m.Delivered, m.Collisions)
	}
}

func TestSINRBoundaryReception(t *testing.T) {
	// A receiver exactly at distance r decodes at exactly β — boundary
	// inclusive, like the closed disks.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	topo := graph.New(2)
	topo.AddEdge(0, 1, 1)
	nw := NewNetwork(pts, topo)
	cfg := physCfg()
	cfg.Slots = 10
	cfg.P = 1
	s := New(nw, cfg)
	s.Schedule(0, func() { s.Inject(0, 1) })
	m := s.Run()
	if m.Delivered != 1 {
		t.Fatalf("boundary reception failed: %+v", *m)
	}
}

func TestSINRConcurrentSendersCollide(t *testing.T) {
	// The lockstep duel of the disk-model test: under SINR the two equal
	// interferers at the shared receiver also destroy each other.
	nw := lineNetwork(3, 0.5)
	cfg := physCfg()
	cfg.Slots = 300
	cfg.P = 1
	cfg.BackoffBase = 0
	s := New(nw, cfg)
	s.Schedule(0, func() { s.Inject(0, 1); s.Inject(2, 1) })
	m := s.Run()
	if m.Delivered != 0 {
		t.Fatalf("delivered %d under lockstep interference", m.Delivered)
	}
	if m.Collisions == 0 {
		t.Fatal("expected SINR outages")
	}
}

func TestSINRGradedInterference(t *testing.T) {
	// The physical model grades interference by distance instead of the
	// disks' sharp edge. Each sender has radius 0.5 (set by a dummy far
	// neighbor) but transmits to a receiver at 0.25, so the link enjoys a
	// 2^α = 8x power margin: a nearby concurrent sender still breaks it,
	// a far one does not — and a zero-margin link (receiver exactly at
	// the radius) breaks under ANY interference, which the dedicated
	// margin tests cover.
	run := func(interfererX float64) int64 {
		pts := []geom.Point{
			geom.Pt(0, 0), geom.Pt(0.25, 0), geom.Pt(0.5, 0), // link under test + radius setter
			geom.Pt(interfererX, 0), geom.Pt(interfererX+0.25, 0), geom.Pt(interfererX+0.5, 0),
		}
		topo := graph.New(6)
		topo.AddEdge(0, 1, 0.25)
		topo.AddEdge(0, 2, 0.5)
		topo.AddEdge(3, 4, 0.25)
		topo.AddEdge(3, 5, 0.5)
		nw := NewNetwork(pts, topo)
		cfg := physCfg()
		cfg.Slots = 1
		cfg.P = 1
		s := New(nw, cfg)
		s.Schedule(0, func() { s.Inject(0, 1); s.Inject(3, 4) })
		return s.Run().Collisions
	}
	if c := run(0.55); c == 0 {
		t.Error("nearby interferer (0.3 from receiver) should break the margined link")
	}
	if c := run(100); c != 0 {
		t.Error("far interferer should be harmless against an 8x margin")
	}
}

func TestSINRVsDiskCollisionOrdering(t *testing.T) {
	// Does the paper's disk measure predict physical outages? For
	// direction-neutral traffic, yes: the low-I(G') AExp topology also
	// collides less under SINR. (Directional traffic is a different
	// story — see TestSINRMarginAsymmetry.)
	pts := gen.ExpChain(20, 1)
	run := func(topo *graph.Graph, physical bool) *Metrics {
		nw := NewNetwork(pts, topo)
		cfg := DefaultConfig()
		if physical {
			cfg.Physical = DefaultPhysical()
		}
		cfg.Slots = 30000
		s := New(nw, cfg)
		PoissonPairs{N: 20, Rate: 0.04, Slots: 15000, Seed: 3, SameComponentOnly: true}.Install(s)
		return s.Run()
	}
	linPhys := run(highway.Linear(pts), true)
	aexpPhys := run(highway.AExp(pts), true)
	if linPhys.CollisionRate() <= aexpPhys.CollisionRate() {
		t.Errorf("SINR: linear %.4f not above aexp %.4f — disk measure should predict physical outages",
			linPhys.CollisionRate(), aexpPhys.CollisionRate())
	}
	// And the disk model agrees on the same workload.
	linDisk := run(highway.Linear(pts), false)
	aexpDisk := run(highway.AExp(pts), false)
	if linDisk.CollisionRate() <= aexpDisk.CollisionRate() {
		t.Errorf("disk: linear %.4f not above aexp %.4f", linDisk.CollisionRate(), aexpDisk.CollisionRate())
	}
}

func TestSINRMarginAsymmetry(t *testing.T) {
	// A finding the disk model cannot express: transmission-power margins.
	// A hop whose receiver sits exactly at the sender's radius decodes at
	// exactly β with zero margin and is destroyed by ANY concurrent
	// sender; a hop to a closer neighbor enjoys a (r/d)^α margin.
	//
	// On the exponential chain, convergecast toward the LEFT rides the
	// linear chain's 2^α margins (each node's radius is its larger right
	// gap, but it transmits to its nearer left neighbor), while the
	// reverse direction transmits at zero margin. The disk model sees both
	// directions identically; SINR separates them sharply.
	pts := gen.ExpChain(20, 1)
	topo := highway.Linear(pts)
	run := func(sink int) *Metrics {
		nw := NewNetwork(pts, topo)
		cfg := physCfg()
		cfg.Slots = 30000
		s := New(nw, cfg)
		Convergecast{N: 20, Sink: sink, Period: 400, Slots: 15000, Stagger: true}.Install(s)
		return s.Run()
	}
	left := run(0)   // downhill: margin 2^α per hop
	right := run(19) // uphill: zero margin per hop
	if left.CollisionRate() >= right.CollisionRate() {
		t.Errorf("margined direction %.4f should beat zero-margin %.4f",
			left.CollisionRate(), right.CollisionRate())
	}
	if left.DeliveryRatio() <= right.DeliveryRatio() {
		t.Errorf("delivery: margined %.3f should beat zero-margin %.3f",
			left.DeliveryRatio(), right.DeliveryRatio())
	}
}

func TestSINRDeterministic(t *testing.T) {
	pts := gen.ExpChain(16, 1)
	topo := highway.AExp(pts)
	run := func() Metrics {
		nw := NewNetwork(pts, topo)
		cfg := physCfg()
		cfg.Slots = 8000
		s := New(nw, cfg)
		Convergecast{N: 16, Sink: 0, Period: 400, Slots: 4000, Stagger: true}.Install(s)
		return *s.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("physical-model runs diverged under the same seed")
	}
}
