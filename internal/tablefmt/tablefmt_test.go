package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("Demo", "alg", "I")
	tb.AddRow("NNF", "12")
	tb.AddRow("AExp", "4")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "alg ") || !strings.Contains(lines[1], "I") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	// Column alignment: "I" column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "I")
	if lines[3][idx:idx+2] != "12" {
		t.Errorf("row misaligned: %q (expect 12 at col %d)", lines[3], idx)
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Errorf("trailing whitespace in %q", l)
		}
	}
}

func TestRenderNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("x")
	var sb strings.Builder
	tb.Render(&sb)
	if strings.HasPrefix(sb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := New("", "v", "f")
	tb.AddRowf(3, 0.123456)
	if tb.Rows[0][0] != "3" || tb.Rows[0][1] != "0.1235" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestAddRowShortRowPadded(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Errorf("short row not padded: %v", tb.Rows[0])
	}
}

func TestAddRowPanicsOnTooManyCells(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New("", "a").AddRow("1", "2")
}

func TestRenderCSV(t *testing.T) {
	tb := New("ignored", "name", "note")
	tb.AddRow("a", `plain`)
	tb.AddRow("b", `has,comma`)
	tb.AddRow("c", `has"quote`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,note\na,plain\nb,\"has,comma\"\nc,\"has\"\"quote\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestRenderLaTeX(t *testing.T) {
	tb := New("Demo & more", "alg_name", "I")
	tb.AddRow("A_exp", "5")
	tb.AddRow("100%", "$2")
	var sb strings.Builder
	if err := tb.RenderLaTeX(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`\begin{tabular}{ll}`, `\toprule`, `\midrule`, `\bottomrule`,
		`alg\_name & I \\`, `A\_exp & 5 \\`, `100\% & \$2 \\`,
		"% Demo & more",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderAlignsMultibyteRunes(t *testing.T) {
	tb := New("", "name", "v")
	tb.AddRow("A_exp (I=O(√n))", "1") // multi-byte √
	tb.AddRow("plain", "2")
	var sb strings.Builder
	tb.Render(&sb)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	// The "v" column must start at the same rune offset on both data rows.
	find := func(l string) int {
		runes := []rune(l)
		for i := len(runes) - 1; i >= 0; i-- {
			if runes[i] == ' ' {
				return i
			}
		}
		return -1
	}
	if find(lines[2]) != find(lines[3]) {
		t.Errorf("columns misaligned:\n%s", sb.String())
	}
}
