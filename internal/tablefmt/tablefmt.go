// Package tablefmt renders the experiment harness's output: aligned ASCII
// tables for terminals and CSV for downstream tooling. Every experiment
// binary and the paperrepro driver emit their rows through this package so
// the reproduction's tables share one format.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned table with a title and header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are rejected.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Header) {
		panic(fmt.Sprintf("tablefmt: row with %d cells exceeds %d columns", len(cells), len(t.Header)))
	}
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v, floats with %.4g.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, c := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(c)
			line.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
		}
		sb.WriteString(strings.TrimRight(line.String(), " "))
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) RenderCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderLaTeX writes the table as a LaTeX tabular environment (booktabs
// style rules), escaping the characters LaTeX treats specially.
func (t *Table) RenderLaTeX(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("% ")
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	sb.WriteString(`\begin{tabular}{` + strings.Repeat("l", len(t.Header)) + "}\n")
	sb.WriteString("\\toprule\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(" & ")
			}
			sb.WriteString(latexEscape(c))
		}
		sb.WriteString(" \\\\\n")
	}
	writeRow(t.Header)
	sb.WriteString("\\midrule\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	sb.WriteString("\\bottomrule\n\\end{tabular}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// latexEscape protects the LaTeX special characters occurring in cell
// text (we never emit backslashes ourselves, so a simple replacement
// table suffices).
func latexEscape(s string) string {
	r := strings.NewReplacer(
		`&`, `\&`, `%`, `\%`, `$`, `\$`, `#`, `\#`,
		`_`, `\_`, `{`, `\{`, `}`, `\}`, `~`, `\textasciitilde{}`,
		`^`, `\textasciicircum{}`, `\`, `\textbackslash{}`,
	)
	return r.Replace(s)
}
