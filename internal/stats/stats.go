// Package stats provides the summary statistics and curve fits the
// experiment harness reports: means, deviations, percentiles, histograms,
// and least-squares fits for the I ~ c·n^k scaling laws the paper's
// theorems predict.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than 2 samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation between closest ranks. It panics on empty input or p
// outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0,100]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the standard descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P25, P75         float64
}

// Summarize computes a Summary (zero value for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		Std:    Stddev(s),
		Min:    s[0],
		Median: Percentile(s, 50),
		Max:    s[len(s)-1],
		P25:    Percentile(s, 25),
		P75:    Percentile(s, 75),
	}
}

// String renders the summary compactly for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g±%.2g min=%.3g med=%.3g max=%.3g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// LinFit fits y = a + b·x by least squares, returning (a, b). It panics
// when fewer than two points are given or all x are equal.
func LinFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinFit needs >= 2 paired samples")
	}
	mx, my := Mean(xs), Mean(ys)
	num, den := 0.0, 0.0
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		panic("stats: LinFit with constant x")
	}
	b = num / den
	a = my - b*mx
	return a, b
}

// PowerFit fits y = c·x^k by least squares in log-log space, returning
// (c, k). All samples must be positive. The theorems predict k ≈ 0.5 for
// A_exp on exponential chains (I ~ √n) and for A_gen over Δ.
func PowerFit(xs, ys []float64) (c, k float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: PowerFit needs positive samples")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	a, b := LinFit(lx, ly)
	return math.Exp(a), b
}

// RSquared returns the coefficient of determination of predictions ps
// against observations ys.
func RSquared(ys, ps []float64) float64 {
	if len(ys) != len(ps) || len(ys) == 0 {
		panic("stats: RSquared needs paired samples")
	}
	my := Mean(ys)
	ssTot, ssRes := 0.0, 0.0
	for i := range ys {
		ssTot += (ys[i] - my) * (ys[i] - my)
		ssRes += (ys[i] - ps[i]) * (ys[i] - ps[i])
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// Histogram counts samples into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram bins xs into k equal-width bins spanning the data range
// (or [0,1] for empty input). Values at the upper edge land in the last
// bin.
func NewHistogram(xs []float64, k int) Histogram {
	if k < 1 {
		panic("stats: histogram needs >= 1 bin")
	}
	h := Histogram{Min: 0, Max: 1, Counts: make([]int, k)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	span := h.Max - h.Min
	for _, x := range xs {
		i := 0
		if span > 0 {
			f := (x - h.Min) / span * float64(k)
			switch {
			case math.IsNaN(f) || f < 0: // extreme ranges can overflow to ±Inf/NaN
				i = 0
			case f >= float64(k):
				i = k - 1
			default:
				i = int(f)
			}
		}
		h.Counts[i]++
	}
	return h
}

// IntsToFloats converts an int sample to float64 for the helpers above.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of paired samples.
// It panics on mismatched or too-short input and returns 0 when either
// side is constant (correlation undefined).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: Pearson needs >= 2 paired samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of paired samples:
// Pearson over fractional ranks (ties get the average rank), the robust
// choice for monotone-association questions like "does I(v) order the
// per-node collision counts?".
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns fractional ranks (1-based; ties averaged).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
