package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if Stddev(xs) != 2 {
		t.Errorf("Stddev = %v", Stddev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate cases wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 4 {
		t.Error("extremes wrong")
	}
	if !almost(Percentile(xs, 50), 2.5, 1e-12) {
		t.Errorf("median = %v", Percentile(xs, 50))
	}
	if Percentile([]float64{7}, 50) != 7 {
		t.Error("singleton wrong")
	}
	if !almost(Median([]float64{3, 1, 2}), 2, 1e-12) {
		t.Error("median of odd sample wrong")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary wrong")
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}

func TestLinFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := LinFit(xs, ys)
	if !almost(a, 1, 1e-12) || !almost(b, 2, 1e-12) {
		t.Errorf("fit = (%v, %v)", a, b)
	}
}

func TestLinFitPanics(t *testing.T) {
	for _, f := range []func(){
		func() { LinFit([]float64{1}, []float64{1}) },
		func() { LinFit([]float64{2, 2}, []float64{1, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPowerFitRecoversSqrtLaw(t *testing.T) {
	// y = 3·x^0.5 with noise-free samples: the fit the Theorem 5.1
	// experiment applies to AExp's interference curve.
	var xs, ys []float64
	for x := 4.0; x <= 4096; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 3*math.Sqrt(x))
	}
	c, k := PowerFit(xs, ys)
	if !almost(c, 3, 1e-9) || !almost(k, 0.5, 1e-12) {
		t.Errorf("power fit = (%v, %v), want (3, 0.5)", c, k)
	}
}

func TestPowerFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for x := 8.0; x <= 1<<20; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 2*math.Pow(x, 0.5)*(1+0.05*(rng.Float64()-0.5)))
	}
	_, k := PowerFit(xs, ys)
	if math.Abs(k-0.5) > 0.03 {
		t.Errorf("noisy exponent = %v, want ≈ 0.5", k)
	}
}

func TestPowerFitPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PowerFit([]float64{1, 0}, []float64{1, 2})
}

func TestRSquared(t *testing.T) {
	ys := []float64{1, 2, 3}
	if RSquared(ys, ys) != 1 {
		t.Error("perfect fit should be 1")
	}
	if r := RSquared(ys, []float64{2, 2, 2}); r != 0 {
		t.Errorf("mean predictor R² = %v, want 0", r)
	}
	if RSquared([]float64{5, 5}, []float64{5, 5}) != 1 {
		t.Error("constant data perfect fit wrong")
	}
}

func TestHistogram(t *testing.T) {
	// 0.5 sits exactly on the bin boundary and lands in the upper bin.
	h := NewHistogram([]float64{0, 0.1, 0.5, 0.9, 1}, 2)
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Errorf("counts = %v", h.Counts)
	}
	// Upper edge lands in the last bin.
	h = NewHistogram([]float64{0, 1}, 4)
	if h.Counts[3] != 1 {
		t.Error("max value should land in last bin")
	}
	// Constant data: everything in bin 0.
	h = NewHistogram([]float64{2, 2, 2}, 3)
	if h.Counts[0] != 3 {
		t.Error("constant data should fill bin 0")
	}
}

func TestHistogramTotalPreserved(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		h := NewHistogram(xs, 7)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntsToFloats(t *testing.T) {
	fs := IntsToFloats([]int{1, 2})
	if len(fs) != 2 || fs[0] != 1 || fs[1] != 2 {
		t.Error("conversion wrong")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if r := Pearson(xs, []float64{2, 4, 6, 8}); !almost(r, 1, 1e-12) {
		t.Errorf("perfect positive = %v", r)
	}
	if r := Pearson(xs, []float64{8, 6, 4, 2}); !almost(r, -1, 1e-12) {
		t.Errorf("perfect negative = %v", r)
	}
	if r := Pearson(xs, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant side = %v, want 0", r)
	}
}

func TestPearsonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1})
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform preserves Spearman = 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 125, 1e6}
	if r := Spearman(xs, ys); !almost(r, 1, 1e-12) {
		t.Errorf("monotone Spearman = %v", r)
	}
	// Reversal gives -1.
	rev := []float64{5, 4, 3, 2, 1}
	if r := Spearman(xs, rev); !almost(r, -1, 1e-12) {
		t.Errorf("reversed Spearman = %v", r)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}
