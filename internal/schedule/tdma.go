package schedule

import "repro/internal/sim"

// Gate adapts the schedule to the simulator's scheduled-access hook: node
// u may transmit to v in slot t iff the directed link (u → v) owns slot
// t mod Frame.
func (s Schedule) Gate() func(slot int64, from, to int) bool {
	return func(slot int64, from, to int) bool {
		assigned, ok := s.Slots[Link{From: from, To: to}]
		if !ok {
			return false // link not in the schedule: never transmit
		}
		return int(slot%int64(s.Frame)) == assigned
	}
}

// AwakeGate returns the sleep schedule implied by the link schedule:
// node u's radio must be on in slot t iff some link it sends or receives
// on owns t mod Frame. Everything else is sleep — the energy saving that
// motivates scheduled access.
func (s Schedule) AwakeGate() func(slot int64, node int) bool {
	// awakeSlots[node] = set of frame offsets the node participates in.
	awake := make(map[int]map[int]bool)
	for l, slot := range s.Slots {
		for _, node := range []int{l.From, l.To} {
			if awake[node] == nil {
				awake[node] = make(map[int]bool)
			}
			awake[node][slot] = true
		}
	}
	return func(slot int64, node int) bool {
		m := awake[node]
		if m == nil {
			return false
		}
		return m[int(slot%int64(s.Frame))]
	}
}

// RunTDMA is a convenience: it builds the link schedule for the network,
// installs the transmit and sleep gates, and returns both the configured
// simulator and the frame length, so callers measure scheduled access
// with one call site.
func RunTDMA(nw *sim.Network, cfg sim.Config) (*sim.Simulator, int) {
	sch := GreedyLinkSchedule(nw)
	if sch.Frame > 0 {
		cfg.SlotGate = sch.Gate()
		cfg.AwakeGate = sch.AwakeGate()
	}
	return sim.New(nw, cfg), sch.Frame
}
