package schedule

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/highway"
	"repro/internal/sim"
)

func TestTDMAZeroCollisions(t *testing.T) {
	// Scheduled access over a conflict-free schedule: no collisions, ever,
	// on either topology, under heavy convergecast.
	pts := gen.ExpChain(20, 1)
	for _, tc := range []struct {
		name string
		nw   *sim.Network
	}{
		{"linear", sim.NewNetwork(pts, highway.Linear(pts))},
		{"aexp", sim.NewNetwork(pts, highway.AExp(pts))},
	} {
		cfg := sim.DefaultConfig()
		cfg.Slots = 120000
		s, frame := RunTDMA(tc.nw, cfg)
		if frame <= 0 {
			t.Fatalf("%s: empty frame", tc.name)
		}
		// Offered load must fit the TDMA capacity: the sink's incoming
		// link carries every report and serves one frame per TDMA frame.
		sim.Convergecast{N: 20, Sink: 0, Period: 1500, Slots: 30000, Stagger: true}.Install(s)
		m := s.Run()
		if m.Collisions != 0 {
			t.Errorf("%s: %d collisions under TDMA", tc.name, m.Collisions)
		}
		if m.HalfDuplex != 0 {
			t.Errorf("%s: %d half-duplex misses — schedule should forbid them", tc.name, m.HalfDuplex)
		}
		if m.DeliveryRatio() < 0.999 {
			t.Errorf("%s: delivery %.4f under collision-free TDMA", tc.name, m.DeliveryRatio())
		}
		if m.Retransmits != 0 {
			t.Errorf("%s: %d retransmissions without collisions", tc.name, m.Retransmits)
		}
	}
}

func TestTDMALatencyTracksFrameLength(t *testing.T) {
	// The price of scheduling: per-hop delay ~ frame length. The linear
	// chain's frame (≈ n) makes its TDMA latency much worse than A_exp's
	// (frame ≈ √n·c) on the same workload — the paper's interference
	// measure surfaces as scheduled-access latency.
	pts := gen.ExpChain(20, 1)
	run := func(nw *sim.Network) (float64, int) {
		cfg := sim.DefaultConfig()
		cfg.Slots = 120000
		s, frame := RunTDMA(nw, cfg)
		sim.Convergecast{N: 20, Sink: 0, Period: 1500, Slots: 60000, Stagger: true}.Install(s)
		m := s.Run()
		if m.DeliveryRatio() < 0.99 {
			t.Fatalf("delivery %.3f too low to compare latencies", m.DeliveryRatio())
		}
		return m.MeanLatency(), frame
	}
	linLat, linFrame := run(sim.NewNetwork(pts, highway.Linear(pts)))
	aexpLat, aexpFrame := run(sim.NewNetwork(pts, highway.AExp(pts)))
	if linFrame <= aexpFrame {
		t.Fatalf("frames: linear %d should exceed aexp %d", linFrame, aexpFrame)
	}
	if linLat <= aexpLat {
		t.Errorf("TDMA latency: linear %.1f should exceed aexp %.1f", linLat, aexpLat)
	}
}

func TestGateRejectsUnknownLinks(t *testing.T) {
	pts := gen.ExpChain(6, 1)
	nw := sim.NewNetwork(pts, highway.Linear(pts))
	sch := GreedyLinkSchedule(nw)
	gate := sch.Gate()
	// (0, 5) is not a topology link.
	for slot := int64(0); slot < int64(sch.Frame); slot++ {
		if gate(slot, 0, 5) {
			t.Fatal("gate admitted a non-link")
		}
	}
	// Every scheduled link fires exactly once per frame.
	for l, want := range sch.Slots {
		fired := 0
		for slot := int64(0); slot < int64(sch.Frame); slot++ {
			if gate(slot, l.From, l.To) {
				fired++
				if int(slot) != want {
					t.Fatalf("link %v fired in slot %d, owns %d", l, slot, want)
				}
			}
		}
		if fired != 1 {
			t.Fatalf("link %v fired %d times per frame", l, fired)
		}
	}
}

func TestTDMASleepSavesListeningEnergy(t *testing.T) {
	// Same workload, CSMA vs TDMA: scheduled nodes sleep outside their
	// slots, so listening energy collapses while delivery stays perfect.
	pts := gen.ExpChain(16, 1)
	nw := sim.NewNetwork(pts, highway.AExp(pts))
	base := sim.DefaultConfig()
	base.Slots = 60000

	csma := sim.New(nw, base)
	sim.Convergecast{N: 16, Sink: 0, Period: 1500, Slots: 30000, Stagger: true}.Install(csma)
	mCsma := csma.Run()

	tdma, _ := RunTDMA(nw, base)
	sim.Convergecast{N: 16, Sink: 0, Period: 1500, Slots: 30000, Stagger: true}.Install(tdma)
	mTdma := tdma.Run()

	if mTdma.DeliveryRatio() < 0.999 {
		t.Fatalf("TDMA delivery %.3f", mTdma.DeliveryRatio())
	}
	if mCsma.ListenEnergy <= 0 || mTdma.ListenEnergy <= 0 {
		t.Fatal("listening energy not accounted")
	}
	// With ~16 nodes awake every slot vs only schedule participants, the
	// saving should be at least 2x (typically much more).
	if mTdma.ListenEnergy*2 > mCsma.ListenEnergy {
		t.Errorf("TDMA listening %.1f not well below CSMA %.1f", mTdma.ListenEnergy, mCsma.ListenEnergy)
	}
	if mTdma.TotalEnergy() >= mCsma.TotalEnergy() {
		t.Errorf("TDMA total energy %.1f should beat CSMA %.1f", mTdma.TotalEnergy(), mCsma.TotalEnergy())
	}
}

func TestAwakeGateCoversScheduledLinks(t *testing.T) {
	pts := gen.ExpChain(10, 1)
	nw := sim.NewNetwork(pts, highway.Linear(pts))
	sch := GreedyLinkSchedule(nw)
	awake := sch.AwakeGate()
	for l, slot := range sch.Slots {
		if !awake(int64(slot), l.From) || !awake(int64(slot), l.To) {
			t.Fatalf("link %v endpoints not awake in their slot %d", l, slot)
		}
		// And in the next frame too (modular behavior).
		later := int64(slot) + int64(sch.Frame)
		if !awake(later, l.From) || !awake(later, l.To) {
			t.Fatalf("link %v endpoints asleep in a later frame", l)
		}
	}
}
