// Package schedule turns the receiver-centric interference structure into
// collision-free TDMA link schedules, making the paper's motivation
// quantitative from the other side: if random access pays for
// interference with collisions, scheduled access pays with frame length —
// and the frame length needed is governed by the very disks Definition
// 3.1 counts.
//
// Two directed transmissions (u→v) and (w→x) conflict when they cannot
// share a slot:
//
//   - u == w (one radio, one frame per slot),
//   - v == x (a receiver decodes one frame per slot),
//   - u == x or w == v (half-duplex), or
//   - w's disk covers v, or u's disk covers x (the paper's interference).
//
// GreedyLinkSchedule colors the directed links of a topology greedily in
// a deterministic order; the classical greedy bound gives frame length at
// most one more than the maximum conflict degree, which is O(Δ_G + I(G'))
// — the test suite checks the concrete bound.
package schedule

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/sim"
)

// Link is a directed transmission over a topology edge.
type Link struct {
	From, To int
}

// Schedule assigns each directed link a slot in [0, Frame).
type Schedule struct {
	Slots map[Link]int
	Frame int
}

// GreedyLinkSchedule builds a collision-free schedule for every directed
// link of the network's topology.
func GreedyLinkSchedule(nw *sim.Network) Schedule {
	links := allLinks(nw)
	// Deterministic order: by (From, To). Sorting by conflict degree
	// first is the classic Welsh–Powell improvement; keep the simple
	// order so results are reproducible and the bound test meaningful.
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	slots := make(map[Link]int, len(links))
	frame := 0
	used := make(map[int]bool)
	for _, l := range links {
		for k := range used {
			delete(used, k)
		}
		for _, m := range links {
			s, ok := slots[m]
			if !ok {
				continue
			}
			if Conflict(nw, l, m) {
				used[s] = true
			}
		}
		s := 0
		for used[s] {
			s++
		}
		slots[l] = s
		if s+1 > frame {
			frame = s + 1
		}
	}
	return Schedule{Slots: slots, Frame: frame}
}

// allLinks enumerates both directions of every topology edge.
func allLinks(nw *sim.Network) []Link {
	var links []Link
	for _, e := range nw.Topo.Edges() {
		links = append(links, Link{e.U, e.V}, Link{e.V, e.U})
	}
	return links
}

// Conflict reports whether two directed links cannot share a slot under
// the paper's disk model.
func Conflict(nw *sim.Network, a, b Link) bool {
	if a == b {
		return false
	}
	if a.From == b.From || a.To == b.To {
		return true
	}
	if a.From == b.To || b.From == a.To {
		return true
	}
	// b's sender disturbs a's receiver?
	if covers(nw, b.From, a.To) {
		return true
	}
	// a's sender disturbs b's receiver?
	if covers(nw, a.From, b.To) {
		return true
	}
	return false
}

func covers(nw *sim.Network, w, v int) bool {
	return nw.Radii[w] > 0 && geom.InDisk(nw.Pts[w], nw.Radii[w], nw.Pts[v])
}

// Verify checks that no two links sharing a slot conflict; it returns the
// first offending pair, or ok = true.
func (s Schedule) Verify(nw *sim.Network) (a, b Link, ok bool) {
	bySlot := make(map[int][]Link)
	for l, slot := range s.Slots {
		bySlot[slot] = append(bySlot[slot], l)
	}
	for _, ls := range bySlot {
		for i := 0; i < len(ls); i++ {
			for j := i + 1; j < len(ls); j++ {
				if Conflict(nw, ls[i], ls[j]) {
					return ls[i], ls[j], false
				}
			}
		}
	}
	return Link{}, Link{}, true
}

// MaxConflictDegree returns the largest number of links any single link
// conflicts with — the greedy coloring's frame length is at most this
// plus one.
func MaxConflictDegree(nw *sim.Network) int {
	links := allLinks(nw)
	max := 0
	for _, l := range links {
		d := 0
		for _, m := range links {
			if Conflict(nw, l, m) {
				d++
			}
		}
		if d > max {
			max = d
		}
	}
	return max
}
