package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/highway"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestScheduleIsConflictFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		pts := gen.UniformSquare(rng, 10+rng.Intn(60), 1+rng.Float64()*2)
		nw := sim.NewNetwork(pts, topology.MST(pts))
		s := GreedyLinkSchedule(nw)
		if a, b, ok := s.Verify(nw); !ok {
			t.Fatalf("trial %d: links %v and %v share a slot but conflict", trial, a, b)
		}
		if len(s.Slots) != 2*nw.Topo.M() {
			t.Fatalf("trial %d: scheduled %d links, want %d", trial, len(s.Slots), 2*nw.Topo.M())
		}
	}
}

func TestFrameLengthWithinGreedyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		pts := gen.UniformSquare(rng, 10+rng.Intn(50), 2)
		nw := sim.NewNetwork(pts, topology.MST(pts))
		s := GreedyLinkSchedule(nw)
		if bound := MaxConflictDegree(nw) + 1; s.Frame > bound {
			t.Fatalf("trial %d: frame %d exceeds greedy bound %d", trial, s.Frame, bound)
		}
	}
}

func TestFrameLengthTracksInterference(t *testing.T) {
	// The headline connection: on the exponential chain, the linear
	// topology (I = n−2) needs a frame ~n while A_exp (I = O(√n)) gets
	// away with a much shorter one. Scheduled access pays for
	// interference with frame length.
	pts := gen.ExpChain(24, 1)
	lin := sim.NewNetwork(pts, highway.Linear(pts))
	aexp := sim.NewNetwork(pts, highway.AExp(pts))
	fLin := GreedyLinkSchedule(lin).Frame
	fAexp := GreedyLinkSchedule(aexp).Frame
	iLin := core.Interference(pts, lin.Topo).Max()
	iAexp := core.Interference(pts, aexp.Topo).Max()
	if iLin <= iAexp {
		t.Fatal("setup: linear should have higher interference")
	}
	if fLin <= fAexp {
		t.Errorf("frames: linear %d should exceed aexp %d", fLin, fAexp)
	}
	// The frame is at least the maximum receiver load I(v)+... every link
	// into a node and every coverer of that node serialize; check the
	// lower anchor frame ≥ I(G)+1 is not violated in the other direction:
	// frame can exceed I but never be below max degree.
	if fLin < lin.Topo.MaxDegree() {
		t.Errorf("frame %d below max degree %d", fLin, lin.Topo.MaxDegree())
	}
}

func TestConflictSymmetricAndIrreflexive(t *testing.T) {
	pts := gen.ExpChain(10, 1)
	nw := sim.NewNetwork(pts, highway.Linear(pts))
	links := []Link{{0, 1}, {1, 2}, {2, 3}, {5, 4}}
	for _, a := range links {
		if Conflict(nw, a, a) {
			t.Errorf("link %v conflicts with itself", a)
		}
		for _, b := range links {
			if Conflict(nw, a, b) != Conflict(nw, b, a) {
				t.Errorf("conflict asymmetric for %v,%v", a, b)
			}
		}
	}
	// Shared sender and shared receiver always conflict.
	if !Conflict(nw, Link{0, 1}, Link{0, 2}) {
		t.Error("shared sender must conflict")
	}
	if !Conflict(nw, Link{0, 1}, Link{2, 1}) {
		t.Error("shared receiver must conflict")
	}
	// Half-duplex.
	if !Conflict(nw, Link{0, 1}, Link{1, 2}) {
		t.Error("half-duplex must conflict")
	}
}

func TestScheduleEmptyTopology(t *testing.T) {
	single := gen.ExpChain(1, 1)
	nw2 := sim.NewNetwork(single, topology.NNF(single))
	s := GreedyLinkSchedule(nw2)
	if s.Frame != 0 || len(s.Slots) != 0 {
		t.Error("edgeless schedule should be empty")
	}
	if _, _, ok := s.Verify(nw2); !ok {
		t.Error("empty schedule trivially verifies")
	}
}
