package schedule_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/highway"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// A conflict-free TDMA schedule derived from the interference disks: the
// frame length is the scheduled-access price of I(G').
func ExampleGreedyLinkSchedule() {
	pts := gen.ExpChain(12, 1)
	low := schedule.GreedyLinkSchedule(sim.NewNetwork(pts, highway.AExp(pts)))
	high := schedule.GreedyLinkSchedule(sim.NewNetwork(pts, highway.Linear(pts)))
	fmt.Println("A_exp frame: ", low.Frame)
	fmt.Println("linear frame:", high.Frame)
	// Output:
	// A_exp frame:  15
	// linear frame: 21
}
