package topology_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/topology"
)

// Differential tests against internal/oracle: every algorithm in the zoo
// runs through the full optimized-stack cross-check (radii, all
// interference evaluation paths, witness queries, the sender measure,
// and the simulator's precomputed coverage), and the connectivity
// contracts recorded in Algorithm are re-verified against the naive
// UDG component oracle.

func zooInstances(rng *rand.Rand) map[string][]geom.Point {
	return map[string][]geom.Point{
		"uniform":      gen.UniformSquare(rng, 60, 2),
		"sparse":       gen.UniformSquare(rng, 40, 4),
		"clustered":    gen.Clustered(rng, 50, 4, 3, 0.25),
		"expchain":     gen.ExpChain(20, 1),
		"gadget":       gen.DoubleExpChain(6),
		"collinear":    {geom.Pt(0, 0), geom.Pt(0.25, 0), geom.Pt(0.5, 0), geom.Pt(0.75, 0), geom.Pt(1, 0)},
		"coincident":   {geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(1.5, 1)},
		"two-clusters": append(gen.UniformSquare(rng, 8, 0.8), translate(gen.UniformSquare(rng, 8, 0.8), 10)...),
	}
}

func translate(pts []geom.Point, dx float64) []geom.Point {
	for i := range pts {
		pts[i] = pts[i].Add(geom.Pt(dx, 0))
	}
	return pts
}

func TestZooAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for name, pts := range zooInstances(rng) {
		name, pts := name, pts
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			wantLabel, wantK := oracle.Components(pts)
			for _, alg := range topology.All() {
				g := alg.Build(pts)
				if err := oracle.Check(pts, g); err != nil {
					t.Errorf("%s: %v", alg.Name, err)
					continue
				}
				if alg.PreservesConnectivity {
					gotLabel, gotK := g.Components()
					if gotK != wantK {
						t.Errorf("%s: %d components, UDG has %d", alg.Name, gotK, wantK)
					} else if i, j, ok := samePartition(gotLabel, wantLabel); !ok {
						t.Errorf("%s: partition differs from UDG at (%d,%d)", alg.Name, i, j)
					}
				}
			}
		})
	}
}

// samePartition reports whether two component labelings induce the same
// partition, returning a witness pair on disagreement.
func samePartition(a, b []int) (int, int, bool) {
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			if (a[i] == a[j]) != (b[i] == b[j]) {
				return i, j, false
			}
		}
	}
	return -1, -1, true
}

// TestGreedyNeverWorseThanNaiveBaselines pins the greedy constructor's
// reason to exist: on connected instances it should not exceed the
// interference of the naive nearest-neighbor-forest-plus-repair bound by
// the oracle's measure of the plain MST (a loose but durable sanity
// bound; the exact quality numbers live in EXPERIMENTS.md).
func TestGreedyNeverWorseThanNaiveBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		pts := gen.UniformSquare(rng, 40, 1.5)
		greedyI := oracle.InterferenceOf(pts, topology.GreedyMinI(pts))
		mstI := oracle.InterferenceOf(pts, topology.MST(pts))
		if greedyI > mstI {
			t.Errorf("trial %d: GreedyMinI %d above MST %d", trial, greedyI, mstI)
		}
	}
}
