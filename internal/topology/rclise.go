package topology

import (
	"container/heap"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

// RCLISE is LISE re-targeted at the paper's measure: build a t-spanner of
// the UDG while greedily minimizing the RECEIVER-centric interference
// I(G') instead of the sender-centric coverage of [2]. Edges are chosen
// by the exact interference the partial topology would have after adding
// them (ties by shorter length, then ids); an edge is added only when its
// endpoints are not yet connected within t times its length; the loop
// ends when every UDG edge is t-spanned.
//
// Like GreedyMinI this uses lazy greedy: I(G') is monotone in the edge
// set, so a stale evaluation is a lower bound and the heap's usual
// re-check argument applies; and "already spanned" is absorbing (edges
// only shrink distances), so spanned candidates are dropped for good.
func RCLISE(pts []geom.Point, t float64) *graph.Graph {
	base := udg.Build(pts)
	g := graph.New(len(pts))
	if len(pts) < 2 {
		return g
	}
	inc := core.NewEvaluator(pts)

	evaluate := func(e graph.Edge) int {
		oldU := inc.GrowTo(e.U, e.W)
		oldV := inc.GrowTo(e.V, e.W)
		cand := inc.Max()
		inc.SetRadius(e.U, oldU)
		inc.SetRadius(e.V, oldV)
		return cand
	}
	spanned := func(e graph.Edge) bool {
		d := g.Dijkstra(e.U)
		return d[e.V] <= t*e.W*(1+1e-9) && !math.IsInf(d[e.V], 1)
	}

	h := &candHeap{}
	for _, e := range base.Edges() {
		heap.Push(h, candidate{cost: evaluate(e), w: e.W, u: e.U, v: e.V})
	}
	for h.Len() > 0 {
		c := heap.Pop(h).(candidate)
		e := graph.NewEdge(c.u, c.v, c.w)
		if spanned(e) {
			continue
		}
		cur := evaluate(e)
		if cur != c.cost && h.Len() > 0 && !c.less(candidate{cost: cur, w: c.w, u: c.u, v: c.v}, h.items[0]) {
			c.cost = cur
			heap.Push(h, c)
			continue
		}
		g.AddEdge(e.U, e.V, e.W)
		inc.GrowTo(e.U, e.W)
		inc.GrowTo(e.V, e.W)
	}
	return g
}
