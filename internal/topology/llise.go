package topology

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

// LLISE implements the local variant of LISE from Burkhart et al. [2]
// (LLISE: Locally Low Interference Spanner Establisher). For every UDG
// edge {u, v} independently, it finds the minimum-interference t-spanning
// path: the path from u to v of length at most t·|uv| that minimizes the
// maximum sender-centric coverage over its edges. The output topology is
// the union of these paths.
//
// The bottleneck path is found by binary search over the coverage
// threshold: for a candidate coverage c, a Dijkstra restricted to edges
// with coverage ≤ c checks whether a path of length ≤ t·|uv| exists. The
// smallest feasible c is the edge's local interference optimum, exactly
// the quantity LLISE's k-hop collection phase computes; running it on the
// full graph is the centralized equivalent (the local and global
// computations agree because a t-spanning path never leaves the
// ⌈t/2⌉-hop neighborhood of the edge).
func LLISE(pts []geom.Point, t float64) *graph.Graph {
	base := udg.Build(pts)
	cov, _ := core.SenderInterference(pts, base)
	// Coverage per edge, aligned with base.Edges().
	covOf := make(map[[2]int]int, len(cov))
	for i, e := range base.Edges() {
		covOf[[2]int{e.U, e.V}] = cov[i]
	}
	// Sorted unique thresholds for the binary search.
	thresholds := append([]int(nil), cov...)
	sort.Ints(thresholds)
	thresholds = uniqueInts(thresholds)

	out := graph.New(len(pts))
	for _, e := range base.Edges() {
		budget := t * e.W
		// Binary search the smallest threshold admitting a short-enough
		// path. The edge itself is always a path with its own coverage,
		// so feasibility is guaranteed at its threshold.
		lo, hi := 0, len(thresholds)-1
		var bestPath []int
		for lo <= hi {
			mid := (lo + hi) / 2
			if path := boundedPath(pts, base, covOf, e.U, e.V, thresholds[mid], budget); path != nil {
				bestPath = path
				hi = mid - 1
			} else {
				lo = mid + 1
			}
		}
		for i := 0; i+1 < len(bestPath); i++ {
			a, b := bestPath[i], bestPath[i+1]
			out.AddEdge(a, b, pts[a].Dist(pts[b]))
		}
	}
	return out
}

func uniqueInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// boundedPath returns a shortest path from src to dst using only edges
// with coverage ≤ maxCov, or nil if its length exceeds budget (with a
// relative tolerance so an edge's own path is always feasible at its own
// coverage threshold).
func boundedPath(pts []geom.Point, base *graph.Graph, covOf map[[2]int]int, src, dst, maxCov int, budget float64) []int {
	n := base.N()
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	h := &pathHeap{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pathItem)
		if it.d > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		u := it.node
		for _, v := range base.Neighbors(u) {
			key := [2]int{u, v}
			if u > v {
				key = [2]int{v, u}
			}
			if covOf[key] > maxCov {
				continue
			}
			w := pts[u].Dist(pts[v])
			if nd := dist[u] + w; nd < dist[v] && nd <= budget*(1+1e-9) {
				dist[v] = nd
				prev[v] = u
				heap.Push(h, pathItem{v, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type pathItem struct {
	node int
	d    float64
}

type pathHeap []pathItem

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(pathItem)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}
