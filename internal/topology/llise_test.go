package topology

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

func TestLLISEPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(50)
		side := 1.0 + rng.Float64()*2
		pts := uniformPoints(rng, n, side, side)
		base := udg.Build(pts)
		g := LLISE(pts, 2)
		if !graph.SameComponents(base, g) {
			t.Fatalf("trial %d: LLISE broke connectivity", trial)
		}
	}
}

func TestLLISEStretchBound(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	for _, tval := range []float64{1.5, 2, 3} {
		pts := uniformPoints(rng, 40, 1.5, 1.5)
		base := udg.Build(pts)
		g := LLISE(pts, tval)
		// Every UDG edge has a path of length ≤ t·|e| in the output: the
		// chosen path's edges are all present.
		for _, e := range base.Edges() {
			d := g.Dijkstra(e.U)
			if d[e.V] > tval*e.W*(1+1e-6) {
				t.Fatalf("t=%v: edge (%d,%d) stretched to %v > %v", tval, e.U, e.V, d[e.V], tval*e.W)
			}
		}
	}
}

func TestLLISEBottleneckNoWorseThanDirectEdge(t *testing.T) {
	// The local optimum never picks a path whose bottleneck coverage
	// exceeds the direct edge's own coverage (the edge itself is always a
	// candidate path).
	rng := rand.New(rand.NewSource(703))
	pts := uniformPoints(rng, 35, 1.5, 1.5)
	base := udg.Build(pts)
	cov, _ := core.SenderInterference(pts, base)
	covOf := map[[2]int]int{}
	for i, e := range base.Edges() {
		covOf[[2]int{e.U, e.V}] = cov[i]
	}
	g := LLISE(pts, 2)
	for _, e := range g.Edges() {
		if _, ok := covOf[[2]int{e.U, e.V}]; !ok {
			t.Fatalf("LLISE invented non-UDG edge (%d,%d)", e.U, e.V)
		}
	}
	// For each base edge, the realized path's bottleneck is ≤ its own
	// coverage.
	for _, e := range base.Edges() {
		// Recompute the path cheapest-bottleneck value realized in g
		// subject to the length budget via brute-force shortest path on g
		// (all g edges were chosen under some threshold ≤ cov(e')).
		d := g.Dijkstra(e.U)
		if d[e.V] > 2*e.W*(1+1e-6) {
			t.Fatalf("edge (%d,%d) not 2-spanned", e.U, e.V)
		}
	}
}

func TestLLISELowersInterferenceOnExponentialCluster(t *testing.T) {
	// A cluster plus a remote node: LISE/LLISE route around
	// high-coverage links where the stretch budget allows.
	rng := rand.New(rand.NewSource(704))
	pts := uniformPoints(rng, 30, 0.4, 0.4)
	g := LLISE(pts, 4)
	if g.M() == 0 {
		t.Fatal("LLISE produced no edges on a dense cluster")
	}
	// Sanity: with a generous stretch budget, LLISE's sender-centric
	// bottleneck is no worse than the raw UDG's maximum edge coverage.
	_, lliseMax := core.SenderInterference(pts, g)
	_, udgMax := core.SenderInterference(pts, udg.Build(pts))
	if lliseMax > udgMax {
		t.Errorf("LLISE bottleneck %d exceeds UDG max %d", lliseMax, udgMax)
	}
}

func TestLLISETrivial(t *testing.T) {
	if g := LLISE(nil, 2); g.N() != 0 {
		t.Error("empty wrong")
	}
	single := LLISE([]geom.Point{geom.Pt(0, 0)}, 2)
	if single.M() != 0 {
		t.Error("singleton wrong")
	}
}
