package topology

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/udg"
)

func TestGreedyMinIPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(60)
		side := 1 + rng.Float64()*4
		pts := uniformPoints(rng, n, side, side)
		base := udg.Build(pts)
		g := GreedyMinI(pts)
		if !graph.SameComponents(base, g) {
			t.Fatalf("trial %d: connectivity broken", trial)
		}
		// Spanning forest: |E| = n - components.
		_, k := base.Components()
		if g.M() != n-k {
			t.Fatalf("trial %d: %d edges, want %d", trial, g.M(), n-k)
		}
	}
}

func TestGreedyMinINeverWorseThanMSTOnGadget(t *testing.T) {
	for _, k := range []int{8, 16, 32} {
		pts := gen.DoubleExpChain(k)
		greedy := core.Interference(pts, GreedyMinI(pts)).Max()
		mst := core.Interference(pts, MST(pts)).Max()
		if greedy > mst {
			t.Errorf("k=%d: greedy %d worse than MST %d on the gadget", k, greedy, mst)
		}
		// And it should escape the Ω(n) trap entirely.
		if greedy > len(pts)/4 {
			t.Errorf("k=%d: greedy %d still Ω(n)", k, greedy)
		}
	}
}

func TestGreedyMinIOnExponentialChain(t *testing.T) {
	// The greedy tree should land near A_exp's O(√n) on the chain, far
	// below the linear n−2.
	pts := gen.ExpChain(32, 1)
	greedy := core.Interference(pts, GreedyMinI(pts)).Max()
	if greedy > 12 { // A_exp achieves 8; allow greedy some slack
		t.Errorf("greedy I = %d on 32-chain, want near O(√n)", greedy)
	}
}

func TestGreedyMinITrivial(t *testing.T) {
	if g := GreedyMinI(nil); g.N() != 0 {
		t.Error("empty wrong")
	}
	if g := GreedyMinI(uniformPoints(rand.New(rand.NewSource(1)), 1, 1, 1)); g.M() != 0 {
		t.Error("singleton wrong")
	}
}

func TestGreedyMinIDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	pts := uniformPoints(rng, 40, 2, 2)
	a, b := GreedyMinI(pts), GreedyMinI(pts)
	if a.M() != b.M() {
		t.Fatal("nondeterministic")
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatal("nondeterministic edges")
		}
	}
}

func BenchmarkGreedyMinI(b *testing.B) {
	rng := rand.New(rand.NewSource(903))
	pts := uniformPoints(rng, 150, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyMinI(pts)
	}
}

func TestGreedySumIPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(904))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(60)
		side := 1 + rng.Float64()*4
		pts := uniformPoints(rng, n, side, side)
		base := udg.Build(pts)
		g := GreedySumI(pts)
		if !graph.SameComponents(base, g) {
			t.Fatalf("trial %d: connectivity broken", trial)
		}
		_, k := base.Components()
		if g.M() != n-k {
			t.Fatalf("trial %d: %d edges, want spanning forest %d", trial, g.M(), n-k)
		}
	}
}

func TestGreedySumIOptimizesMeanNotMax(t *testing.T) {
	// The two objectives diverge: on random instances GreedySumI should
	// match or beat GreedyMinI on MEAN interference (its objective) over
	// a batch, while GreedyMinI owns the MAX.
	rng := rand.New(rand.NewSource(905))
	sumWinsMean, minWinsMax := 0, 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		pts := gen.Clustered(rng, 80, 3, 2.5, 0.25)
		ivSum := core.Interference(pts, GreedySumI(pts))
		ivMin := core.Interference(pts, GreedyMinI(pts))
		if ivSum.Mean() <= ivMin.Mean()+1e-9 {
			sumWinsMean++
		}
		if ivMin.Max() <= ivSum.Max() {
			minWinsMax++
		}
	}
	if sumWinsMean < trials/2 {
		t.Errorf("GreedySumI won mean on only %d/%d instances", sumWinsMean, trials)
	}
	if minWinsMax < trials/2 {
		t.Errorf("GreedyMinI won max on only %d/%d instances", minWinsMax, trials)
	}
}

func TestGreedySumITrivial(t *testing.T) {
	if g := GreedySumI(nil); g.N() != 0 {
		t.Error("empty wrong")
	}
	if g := GreedySumI(uniformPoints(rand.New(rand.NewSource(2)), 1, 1, 1)); g.M() != 0 {
		t.Error("singleton wrong")
	}
}
