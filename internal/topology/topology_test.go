package topology

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

func uniformPoints(rng *rand.Rand, n int, w, h float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*w, rng.Float64()*h)
	}
	return pts
}

func TestAllPreserveConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		// Mix of dense (connected) and sparse (multi-component) instances.
		n := 2 + rng.Intn(70)
		w := 1.0 + rng.Float64()*6
		pts := uniformPoints(rng, n, w, w)
		base := udg.Build(pts)
		for _, alg := range All() {
			got := alg.Build(pts)
			if alg.PreservesConnectivity && !graph.SameComponents(base, got) {
				t.Errorf("trial %d: %s does not preserve connectivity (n=%d)", trial, alg.Name, n)
			}
		}
	}
}

func TestAllAreSubgraphsOfUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	pts := uniformPoints(rng, 60, 4, 4)
	base := udg.Build(pts)
	for _, alg := range All() {
		g := alg.Build(pts)
		for _, e := range g.Edges() {
			if !base.HasEdge(e.U, e.V) {
				t.Errorf("%s uses non-UDG edge (%d,%d) of length %v", alg.Name, e.U, e.V, e.W)
			}
		}
	}
}

func TestNNFIsForest(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(100)
		pts := uniformPoints(rng, n, 3, 3)
		f := NNF(pts)
		_, k := f.Components()
		if f.M() > n-k {
			t.Fatalf("trial %d: NNF has %d edges over %d components — contains a cycle", trial, f.M(), k)
		}
	}
}

func TestNNFEveryNodeLinksToNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	pts := uniformPoints(rng, 50, 2, 2)
	f := NNF(pts)
	for u := range pts {
		v, d := geom.NearestBrute(pts, u)
		if d <= udg.Radius && !f.HasEdge(u, v) {
			t.Errorf("node %d missing link to nearest neighbor %d", u, v)
		}
	}
}

func TestNNFTrivial(t *testing.T) {
	if NNF(nil).N() != 0 {
		t.Error("empty NNF wrong")
	}
	if f := NNF([]geom.Point{geom.Pt(0, 0)}); f.M() != 0 {
		t.Error("single-node NNF should have no edges")
	}
	// Two nodes out of range: no link.
	if f := NNF([]geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)}); f.M() != 0 {
		t.Error("out-of-range pair should stay unlinked")
	}
}

// TestContainmentChain verifies the classical containment hierarchy
// NNF ⊆ MST ⊆ RNG ⊆ GG ⊆ UDG and XTC ⊆ RNG on random instances with
// distinct distances.
func TestContainmentChain(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(50)
		pts := uniformPoints(rng, n, 2.5, 2.5)
		nnf, mst, rng_, gg := NNF(pts), MST(pts), RNG(pts), GG(pts)
		xtc := XTC(pts)
		requireSubgraph(t, "NNF", nnf, "MST", mst)
		requireSubgraph(t, "MST", mst, "RNG", rng_)
		requireSubgraph(t, "RNG", rng_, "GG", gg)
		requireSubgraph(t, "XTC", xtc, "RNG", rng_)
		requireSubgraph(t, "MST", mst, "XTC", xtc)
	}
}

func requireSubgraph(t *testing.T, an string, a *graph.Graph, bn string, b *graph.Graph) {
	t.Helper()
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("%s ⊄ %s: edge (%d,%d) missing", an, bn, e.U, e.V)
		}
	}
}

func TestGGKnownExample(t *testing.T) {
	// Square of side 1 (diagonals √2): GG keeps the four sides; each
	// diagonal's diameter disk contains the other two corners.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	g := GG(pts)
	if g.M() != 4 {
		t.Fatalf("GG of unit square has %d edges, want 4", g.M())
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Error("diagonals must be pruned")
	}
}

func TestRNGKnownExample(t *testing.T) {
	// Equilateral-ish triangle plus center: center blocks the long sides.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 0.866), geom.Pt(0.5, 0.289)}
	g := RNG(pts)
	// All triangle sides have the center strictly inside their lune.
	if g.HasEdge(0, 1) || g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Error("triangle sides should be pruned by the center node")
	}
	if !g.Connected() {
		t.Error("RNG should stay connected via the center")
	}
}

func TestYaoConesCoverAllDirections(t *testing.T) {
	// A node with 8 neighbors on a circle: Yao(8) keeps them all (one per
	// cone). Note the symmetric closure can exceed k at a hub when spokes
	// select it back, so only the lower bound is exact.
	pts := []geom.Point{geom.Pt(0, 0)}
	for i := 0; i < 8; i++ {
		a := (float64(i) + 0.5) * math.Pi / 4
		pts = append(pts, geom.Pt(0.9*math.Cos(a), 0.9*math.Sin(a)))
	}
	g8 := Yao(pts, 8)
	if g8.Degree(0) != 8 {
		t.Errorf("Yao8 hub degree = %d, want 8", g8.Degree(0))
	}
}

func TestYaoSelectsNearestPerCone(t *testing.T) {
	// u sees a and b in the same quadrant cone (k=4); it selects only the
	// nearer a, and b reaches u only through a (b also prefers a).
	// a sits near the u–b segment, so it wins both quadrant cones: u's
	// cone toward b and b's cone toward u.
	pts := []geom.Point{
		geom.Pt(0, 0),      // u
		geom.Pt(0.45, 0),   // a — on the segment, nearer to both
		geom.Pt(0.9, 0.05), // b
	}
	g := Yao(pts, 4)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatalf("Yao4 should keep u-a and a-b: edges=%v", g.Edges())
	}
	if g.HasEdge(0, 2) {
		t.Error("u-b must be pruned: b loses to a in u's cone and u loses to a in b's cone")
	}
	// With very narrow cones a and b separate into distinct cones, so u-b
	// reappears.
	g256 := Yao(pts, 256)
	if !g256.HasEdge(0, 2) {
		t.Error("Yao256 should keep u-b (distinct cones)")
	}
}

func TestYaoContainsMST(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 10; trial++ {
		pts := uniformPoints(rng, 40, 2, 2)
		requireSubgraph(t, "MST", MST(pts), "Yao6", Yao(pts, 6))
	}
}

func TestLMSTDegreeBound(t *testing.T) {
	// LMST node degree is at most 6 (Li, Hou & Sha, Lemma 3).
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 10; trial++ {
		pts := uniformPoints(rng, 60, 2, 2)
		g := LMST(pts)
		if d := g.MaxDegree(); d > 6 {
			t.Fatalf("trial %d: LMST max degree = %d > 6", trial, d)
		}
	}
}

func TestLIFEMinimizesBottleneckCoverage(t *testing.T) {
	// On a connected instance LIFE's maximum edge coverage must not exceed
	// that of the MST (both are spanning trees; LIFE optimizes bottleneck
	// coverage among all spanning forests).
	rng := rand.New(rand.NewSource(108))
	for trial := 0; trial < 10; trial++ {
		pts := uniformPoints(rng, 40, 1.5, 1.5)
		life := LIFE(pts)
		mst := MST(pts)
		if !life.Connected() {
			t.Fatal("LIFE should be connected on a connected instance")
		}
		lifeMax := maxSenderCov(t, pts, life)
		mstMax := maxSenderCov(t, pts, mst)
		if lifeMax > mstMax {
			t.Fatalf("trial %d: LIFE bottleneck coverage %d > MST's %d", trial, lifeMax, mstMax)
		}
	}
}

func maxSenderCov(t *testing.T, pts []geom.Point, g *graph.Graph) int {
	t.Helper()
	max := 0
	for _, e := range g.Edges() {
		u, v := pts[e.U], pts[e.V]
		c := 0
		for w, p := range pts {
			if w == e.U || w == e.V {
				continue
			}
			if geom.InDisk(u, e.W, p) || geom.InDisk(v, e.W, p) {
				c++
			}
		}
		if c > max {
			max = c
		}
	}
	return max
}

func TestLISEStretchBound(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for _, tval := range []float64{1.5, 2, 4} {
		pts := uniformPoints(rng, 35, 1.5, 1.5)
		base := udg.Build(pts)
		g := LISE(pts, tval)
		// LISE guarantees stretch ≤ t for every UDG edge, which bounds
		// all-pairs stretch by t as well.
		for _, e := range base.Edges() {
			d := g.Dijkstra(e.U)
			if d[e.V] > tval*e.W+1e-9 {
				t.Fatalf("t=%v: edge (%d,%d) stretched to %v > %v", tval, e.U, e.V, d[e.V], tval*e.W)
			}
		}
	}
}

func TestLISEWithLargeTEqualsForest(t *testing.T) {
	// With t = ∞ every cycle-closing edge is rejected, so LISE degenerates
	// to LIFE's forest (same edge count).
	rng := rand.New(rand.NewSource(110))
	pts := uniformPoints(rng, 30, 1.2, 1.2)
	lise := LISE(pts, math.Inf(1))
	life := LIFE(pts)
	if lise.M() != life.M() {
		t.Errorf("LISE(∞) has %d edges, LIFE %d", lise.M(), life.M())
	}
}

func TestAlgorithmsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	pts := uniformPoints(rng, 45, 2, 2)
	for _, alg := range All() {
		a, b := alg.Build(pts), alg.Build(pts)
		if a.M() != b.M() {
			t.Errorf("%s is nondeterministic: %d vs %d edges", alg.Name, a.M(), b.M())
			continue
		}
		for _, e := range a.Edges() {
			if !b.HasEdge(e.U, e.V) {
				t.Errorf("%s is nondeterministic on edge (%d,%d)", alg.Name, e.U, e.V)
			}
		}
	}
}

func TestAllHandleDegenerateInputs(t *testing.T) {
	inputs := [][]geom.Point{
		{},
		{geom.Pt(0, 0)},
		{geom.Pt(0, 0), geom.Pt(0, 0)}, // coincident
		{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(9, 9)}, // far outlier
	}
	for _, pts := range inputs {
		for _, alg := range All() {
			g := alg.Build(pts) // must not panic
			if g.N() != len(pts) {
				t.Errorf("%s changed node count on %v", alg.Name, pts)
			}
		}
	}
}

func BenchmarkTopologies(b *testing.B) {
	rng := rand.New(rand.NewSource(112))
	pts := uniformPoints(rng, 300, 4, 4)
	for _, alg := range All() {
		b.Run(alg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Build(pts)
			}
		})
	}
}
