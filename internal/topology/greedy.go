package topology

import (
	"container/heap"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

// GreedyMinI grows a spanning forest that minimizes the receiver-centric
// interference greedily, in the spirit of the data-gathering trees of
// Fussen, Wattenhofer & Zollinger [4] that inspired the paper's measure:
// starting from each component's first node, it repeatedly attaches the
// outside node whose connecting edge minimizes the resulting I(G') —
// evaluated exactly with the incremental evaluator — breaking ties by
// shorter edge, then smaller ids.
//
// Unlike the NNF-containing constructions, the greedy tree will happily
// skip a nearest neighbor whose link would cover many nodes, which is
// precisely what Theorem 4.1's gadget punishes the zoo for; and unlike
// LIFE it optimizes the receiver-centric objective directly.
//
// Implementation: lazy greedy. Radii only grow as the tree grows, so
// interference is monotone and any stale evaluation of a candidate edge
// is a LOWER bound on its current cost. Candidates live in a min-heap
// keyed by their last evaluation; a popped candidate is re-evaluated and
// accepted only if it still beats the next key — the standard lazy
// evaluation argument makes this exactly equivalent to re-scanning every
// cut edge each round, at a fraction of the cost.
func GreedyMinI(pts []geom.Point) *graph.Graph {
	base := udg.Build(pts)
	g := graph.New(len(pts))
	if len(pts) < 2 {
		return g
	}
	inc := core.NewEvaluator(pts)
	inTree := make([]bool, len(pts))

	evaluate := func(u, v int, w float64) int {
		oldU := inc.GrowTo(u, w)
		oldV := inc.GrowTo(v, w)
		cand := inc.Max()
		inc.SetRadius(u, oldU)
		inc.SetRadius(v, oldV)
		return cand
	}

	h := &candHeap{}
	pushFrontier := func(u int) {
		for _, v := range base.Neighbors(u) {
			if !inTree[v] {
				w := pts[u].Dist(pts[v])
				heap.Push(h, candidate{cost: evaluate(u, v, w), w: w, u: u, v: v})
			}
		}
	}

	for start := 0; start < len(pts); start++ {
		if inTree[start] || base.Degree(start) == 0 {
			continue
		}
		inTree[start] = true
		h.items = h.items[:0]
		pushFrontier(start)
		for h.Len() > 0 {
			c := heap.Pop(h).(candidate)
			if inTree[c.v] {
				continue
			}
			// Lazy re-evaluation: the stored cost is a lower bound.
			cur := evaluate(c.u, c.v, c.w)
			if cur != c.cost && h.Len() > 0 && !c.less(candidate{cost: cur, w: c.w, u: c.u, v: c.v}, h.items[0]) {
				c.cost = cur
				heap.Push(h, c)
				continue
			}
			g.AddEdge(c.u, c.v, c.w)
			inc.GrowTo(c.u, c.w)
			inc.GrowTo(c.v, c.w)
			inTree[c.v] = true
			pushFrontier(c.v)
		}
	}
	return g
}

// candidate is a cut edge with its last-evaluated interference cost.
type candidate struct {
	cost int
	w    float64
	u, v int
}

// less orders candidates by (cost, w, u, v) — the greedy tie-break.
func (candidate) less(a, b candidate) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.w != b.w {
		return a.w < b.w
	}
	if a.u != b.u {
		return a.u < b.u
	}
	return a.v < b.v
}

type candHeap struct {
	items []candidate
}

func (h *candHeap) Len() int { return len(h.items) }
func (h *candHeap) Less(i, j int) bool {
	var c candidate
	return c.less(h.items[i], h.items[j])
}
func (h *candHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *candHeap) Push(x interface{}) { h.items = append(h.items, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := h.items
	it := old[len(old)-1]
	h.items = old[:len(old)-1]
	return it
}

// GreedySumI is GreedyMinI's sibling for the AVERAGE-interference
// objective: it grows a spanning forest greedily minimizing the TOTAL
// interference Σ_v I(v) — equivalently the total disk coverage
// Σ_u |D(u, r_u) ∩ V \ {u}| — instead of the maximum that Definition 3.2
// takes. Follow-up literature studies both objectives; having both
// greedy constructions makes the max-vs-average trade-off measurable
// (the X5/MC harness reports mean interference alongside the maximum).
//
// The attachment cost of an edge is the exact coverage increase
// |annulus(u; old r, new r)| + |D(v, |uv|)| − self-counts, computed from
// the grid index; costs only grow as radii grow, so the same lazy-greedy
// engine applies.
func GreedySumI(pts []geom.Point) *graph.Graph {
	base := udg.Build(pts)
	g := graph.New(len(pts))
	if len(pts) < 2 {
		return g
	}
	grid := geom.NewGrid(pts, sumICell(pts))
	radii := make([]float64, len(pts))
	inTree := make([]bool, len(pts))

	// coverage increase if u grows to ru and v grows to rv.
	cost := func(u int, ru float64, v int, rv float64) int {
		c := 0
		if ru > radii[u] {
			c += grid.CountWithin(pts[u], ru) - grid.CountWithin(pts[u], radii[u])
		}
		if rv > radii[v] {
			c += grid.CountWithin(pts[v], rv) - grid.CountWithin(pts[v], radii[v])
		}
		return c
	}

	h := &candHeap{}
	pushFrontier := func(u int) {
		for _, v := range base.Neighbors(u) {
			if !inTree[v] {
				w := pts[u].Dist(pts[v])
				heap.Push(h, candidate{cost: cost(u, w, v, w), w: w, u: u, v: v})
			}
		}
	}
	for start := 0; start < len(pts); start++ {
		if inTree[start] || base.Degree(start) == 0 {
			continue
		}
		inTree[start] = true
		h.items = h.items[:0]
		pushFrontier(start)
		for h.Len() > 0 {
			c := heap.Pop(h).(candidate)
			if inTree[c.v] {
				continue
			}
			cur := cost(c.u, c.w, c.v, c.w)
			if cur != c.cost && h.Len() > 0 && !c.less(candidate{cost: cur, w: c.w, u: c.u, v: c.v}, h.items[0]) {
				c.cost = cur
				heap.Push(h, c)
				continue
			}
			g.AddEdge(c.u, c.v, c.w)
			if c.w > radii[c.u] {
				radii[c.u] = c.w
			}
			if c.w > radii[c.v] {
				radii[c.v] = c.w
			}
			inTree[c.v] = true
			pushFrontier(c.v)
		}
	}
	return g
}

// sumICell mirrors the adaptive cell sizing used elsewhere.
func sumICell(pts []geom.Point) float64 {
	b := geom.Bounds(pts)
	ext := b.Width()
	if b.Height() > ext {
		ext = b.Height()
	}
	if ext <= 0 {
		return 1
	}
	c := ext / float64(1+len(pts)/4)
	if c <= 0 {
		return 1
	}
	return c
}
