// Package topology implements the topology-control algorithms the paper
// surveys in Sections 2 and 4: the Nearest Neighbor Forest that nearly all
// of them contain, the classical geometric constructions (Euclidean MST,
// Gabriel Graph, Relative Neighborhood Graph, Yao graph), the
// protocol-style constructions XTC and LMST, and the explicitly
// interference-aware LIFE/LISE algorithms of Burkhart et al. [2] — the
// "notable exception" the paper discusses.
//
// Every algorithm consumes a point set, takes the Unit Disk Graph as the
// communication graph, and emits a spanning subgraph of symmetric links.
// All constructions preserve the connectivity of the UDG (LIFE and the
// MST trivially; the geometric graphs because they contain the MST; XTC
// and LMST by their published proofs — and the property test
// TestAllPreserveConnectivity checks each one on random instances).
package topology

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

// Algorithm is a named topology-control construction.
type Algorithm struct {
	// Name identifies the construction in experiment tables.
	Name string
	// Build computes the topology over pts, treating the unit disk graph
	// as the underlying communication graph.
	Build func(pts []geom.Point) *graph.Graph
	// ContainsNNF records whether the construction provably contains the
	// Nearest Neighbor Forest — the property Theorem 4.1 shows to be a
	// "substantial mistake" under the receiver-centric measure.
	ContainsNNF bool
	// PreservesConnectivity records whether the construction keeps the
	// component structure of the UDG. The NNF alone does not (it is a
	// forest of nearest-neighbor links); it appears in the zoo as the
	// common subgraph of the others and as Theorem 4.1's culprit.
	PreservesConnectivity bool
}

// All returns the full algorithm zoo in presentation order.
func All() []Algorithm {
	return []Algorithm{
		{"NNF", NNF, true, false},
		{"MST", MST, true, true},
		{"RNG", RNG, true, true},
		{"GG", GG, true, true},
		{"XTC", XTC, true, true},
		{"LMST", LMST, true, true},
		{"Yao6", func(pts []geom.Point) *graph.Graph { return Yao(pts, 6) }, true, true},
		{"LIFE", LIFE, false, true},
		{"LISE2", func(pts []geom.Point) *graph.Graph { return LISE(pts, 2) }, false, true},
		{"CBTC", func(pts []geom.Point) *graph.Graph { return CBTC(pts, 2*math.Pi/3) }, true, true},
		{"KNeigh9", func(pts []geom.Point) *graph.Graph { return KNeigh(pts, 9) }, false, false},
		{"RCLISE2", func(pts []geom.Point) *graph.Graph { return RCLISE(pts, 2) }, false, true},
		{"GreedyI", GreedyMinI, false, true},
		{"GreedyAvgI", GreedySumI, false, true},
	}
}

// NNF builds the Nearest Neighbor Forest: every node establishes a
// symmetric link to its nearest neighbor within communication range. The
// result is a forest (cycles would require two consecutive strictly
// shorter edges; ties are broken by index, which preserves acyclicity on
// distinct distances and merely merges trees on ties).
func NNF(pts []geom.Point) *graph.Graph {
	g := graph.New(len(pts))
	if len(pts) < 2 {
		return g
	}
	grid := geom.NewGrid(pts, nnfCell(pts))
	for u := range pts {
		v, d := grid.Nearest(u)
		if v >= 0 && d <= udg.Radius*(1+1e-9) {
			g.AddEdge(u, v, d)
		}
	}
	return g
}

// nnfCell picks a spatial-index cell adapted to the instance extent so
// nearest-neighbor queries stay cheap on both dense clusters and
// exponentially spread chains.
func nnfCell(pts []geom.Point) float64 {
	b := geom.Bounds(pts)
	ext := b.Width()
	if b.Height() > ext {
		ext = b.Height()
	}
	if ext <= 0 {
		return 1
	}
	c := ext / float64(len(pts))
	if c <= 0 {
		return 1
	}
	return c
}

// MST builds the Euclidean minimum spanning forest restricted to
// communication range. It contains the NNF: each node's nearest-neighbor
// edge is the lightest edge across the cut separating it from the rest.
func MST(pts []geom.Point) *graph.Graph {
	return graph.EuclideanMST(pts, udg.Radius)
}

// GG builds the Gabriel Graph intersected with the UDG: edge {u,v} is kept
// iff no other node lies strictly inside the disk with diameter uv.
func GG(pts []geom.Point) *graph.Graph {
	return emptyRegionGraph(pts, geom.InGabrielDisk)
}

// RNG builds the Relative Neighborhood Graph intersected with the UDG:
// edge {u,v} is kept iff no other node lies strictly inside the lune of u
// and v. RNG ⊆ GG.
func RNG(pts []geom.Point) *graph.Graph {
	return emptyRegionGraph(pts, geom.InLune)
}

// emptyRegionGraph keeps each UDG edge whose associated region (defined by
// the blocked predicate) contains no third node.
func emptyRegionGraph(pts []geom.Point, blocked func(u, v, w geom.Point) bool) *graph.Graph {
	base := udg.Build(pts)
	g := graph.New(len(pts))
	grid := geom.NewGrid(pts, 1)
	buf := make([]int, 0, 64)
	for _, e := range base.Edges() {
		u, v := pts[e.U], pts[e.V]
		// Any blocking node lies within |uv| of both endpoints; scan the
		// disk around the midpoint with radius |uv| to find candidates.
		buf = grid.Within(u.Mid(v), e.W, buf[:0])
		keep := true
		for _, w := range buf {
			if w == e.U || w == e.V {
				continue
			}
			if blocked(u, v, pts[w]) {
				keep = false
				break
			}
		}
		if keep {
			g.AddEdge(e.U, e.V, e.W)
		}
	}
	return g
}

// Yao builds the symmetric closure of the Yao graph with k cones: every
// node keeps its nearest UDG neighbor in each of k equal angular sectors,
// and an undirected edge appears when either endpoint selected it. k ≥ 6
// guarantees connectivity (the MST is contained for k ≥ 6).
func Yao(pts []geom.Point, k int) *graph.Graph {
	base := udg.Build(pts)
	g := graph.New(len(pts))
	chosen := make([]int, k)
	chosenD := make([]float64, k)
	for u := range pts {
		for c := range chosen {
			chosen[c] = -1
		}
		for _, v := range base.Neighbors(u) {
			c := geom.ConeIndex(pts[u], pts[v], k)
			d := pts[u].Dist(pts[v])
			if chosen[c] < 0 || d < chosenD[c] || (d == chosenD[c] && v < chosen[c]) {
				chosen[c], chosenD[c] = v, d
			}
		}
		for c, v := range chosen {
			if v >= 0 {
				g.AddEdge(u, v, chosenD[c])
			}
		}
	}
	return g
}

// XTC implements the XTC algorithm of Wattenhofer & Zollinger [19]. Each
// node u orders its UDG neighbors by link quality (here Euclidean
// distance, with node index breaking ties, the standard instantiation)
// and drops the link to v iff some node w is better than v from u's view
// AND better than u from v's view — i.e. u and v both have the mutual
// "shortcut" w. The surviving links are exactly the edges with no such w,
// which in the Euclidean metric makes XTC a subgraph of the RNG that
// still contains the MST.
func XTC(pts []geom.Point) *graph.Graph {
	base := udg.Build(pts)
	g := graph.New(len(pts))
	better := func(w, v, u int) bool { // w ≺_u v ?
		dw, dv := pts[u].Dist2(pts[w]), pts[u].Dist2(pts[v])
		if dw != dv {
			return dw < dv
		}
		return w < v
	}
	for _, e := range base.Edges() {
		u, v := e.U, e.V
		drop := false
		for _, w := range base.Neighbors(u) {
			if w == v || !base.HasEdge(v, w) {
				continue
			}
			if better(w, v, u) && better(w, u, v) {
				drop = true
				break
			}
		}
		if !drop {
			g.AddEdge(u, v, e.W)
		}
	}
	return g
}

// LMST implements the Local Minimum Spanning Tree construction of Li,
// Hou & Sha [9]: every node u computes the Euclidean MST of its closed
// 1-hop neighborhood and marks the neighbors adjacent to u on that local
// tree; the final topology keeps edge {u,v} iff both u and v marked each
// other (the LMST "symmetric intersection" variant G₀^-, which preserves
// connectivity).
func LMST(pts []geom.Point) *graph.Graph {
	base := udg.Build(pts)
	n := len(pts)
	marked := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		hood := append([]int{u}, base.Neighbors(u)...)
		sort.Ints(hood)
		local := make([]geom.Point, len(hood))
		pos := make(map[int]int, len(hood))
		for i, x := range hood {
			local[i] = pts[x]
			pos[x] = i
		}
		lt := graph.EuclideanMST(local, udg.Radius)
		for _, v := range base.Neighbors(u) {
			if lt.HasEdge(pos[u], pos[v]) {
				marked[[2]int{u, v}] = true
			}
		}
	}
	g := graph.New(n)
	for _, e := range base.Edges() {
		if marked[[2]int{e.U, e.V}] && marked[[2]int{e.V, e.U}] {
			g.AddEdge(e.U, e.V, e.W)
		}
	}
	return g
}

// LIFE (Low Interference Forest Establisher, Burkhart et al. [2]) builds
// the spanning forest minimizing the sender-centric coverage of its
// heaviest link: Kruskal over UDG edges ordered by coverage. It is the
// "notable exception" of Section 4 — it does not necessarily contain the
// NNF — yet Theorem 4.1's discussion notes it still performs badly under
// the receiver-centric measure.
func LIFE(pts []geom.Point) *graph.Graph {
	base := udg.Build(pts)
	cov, _ := core.SenderInterference(pts, base)
	covOf := make(map[[2]int]int, len(cov))
	for i, e := range base.Edges() {
		covOf[[2]int{e.U, e.V}] = cov[i]
	}
	return graph.KruskalMSFBy(base, func(e graph.Edge) float64 {
		return float64(covOf[[2]int{e.U, e.V}])
	})
}

// LISE (Low Interference Spanner Establisher, Burkhart et al. [2]) builds
// a spanner with Euclidean stretch at most t while greedily minimizing the
// sender-centric coverage of the heaviest inserted link: edges are
// processed in increasing coverage order and inserted iff the current
// graph does not already connect their endpoints within t times their
// length.
func LISE(pts []geom.Point, t float64) *graph.Graph {
	base := udg.Build(pts)
	cov, _ := core.SenderInterference(pts, base)
	type ce struct {
		e graph.Edge
		c int
	}
	ces := make([]ce, len(cov))
	for i, e := range base.Edges() {
		ces[i] = ce{e, cov[i]}
	}
	sort.Slice(ces, func(i, j int) bool {
		if ces[i].c != ces[j].c {
			return ces[i].c < ces[j].c
		}
		if ces[i].e.W != ces[j].e.W {
			return ces[i].e.W < ces[j].e.W
		}
		if ces[i].e.U != ces[j].e.U {
			return ces[i].e.U < ces[j].e.U
		}
		return ces[i].e.V < ces[j].e.V
	})
	g := graph.New(len(pts))
	for _, x := range ces {
		d := g.Dijkstra(x.e.U)
		// Disconnected endpoints (d = +Inf) are always joined, which keeps
		// the insert rule meaningful even for t = +Inf (pure forest mode).
		if math.IsInf(d[x.e.V], 1) || d[x.e.V] > t*x.e.W {
			g.AddEdge(x.e.U, x.e.V, x.e.W)
		}
	}
	return g
}
