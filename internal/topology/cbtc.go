package topology

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

// CBTC implements the cone-based topology control of Wattenhofer, Li,
// Bahl & Wang [18] with parameter α: every node grows its power —
// equivalently, admits neighbors in increasing distance order — until
// every cone of angle α around it contains a neighbor (or its maximum
// power is reached). α = 2π/3 preserves connectivity.
//
// The cone condition is checked as: the selected neighbors' directions,
// sorted angularly, leave no gap larger than α (nodes that cannot
// satisfy it keep all their UDG neighbors, as the protocol's boundary
// case prescribes). The returned topology is the symmetric closure: an
// edge appears when either endpoint selected it, matching the protocol's
// asymmetric-edge removal phase being skipped — the conservative variant
// that always preserves connectivity.
func CBTC(pts []geom.Point, alpha float64) *graph.Graph {
	if alpha <= 0 || alpha > 2*math.Pi {
		panic("topology: CBTC cone angle out of (0, 2π]")
	}
	base := udg.Build(pts)
	g := graph.New(len(pts))
	type cand struct {
		v     int
		d     float64
		angle float64
	}
	for u := range pts {
		neigh := base.Neighbors(u)
		if len(neigh) == 0 {
			continue
		}
		cands := make([]cand, len(neigh))
		for i, v := range neigh {
			cands[i] = cand{v: v, d: pts[u].Dist(pts[v]), angle: pts[u].Angle(pts[v])}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].v < cands[j].v
		})
		// Admit in distance order until the angular gaps close.
		var selected []cand
		var angles []float64
		for _, c := range cands {
			selected = append(selected, c)
			angles = append(angles, c.angle)
			if maxAngularGap(angles) <= alpha {
				break
			}
		}
		// Boundary nodes (gap never closes) keep everything they admitted.
		for _, c := range selected {
			g.AddEdge(u, c.v, c.d)
		}
	}
	return g
}

// maxAngularGap returns the largest angular gap between consecutive
// directions (with wraparound); 2π for a single direction. The input is
// modified (sorted).
func maxAngularGap(angles []float64) float64 {
	if len(angles) <= 1 {
		return 2 * math.Pi
	}
	sort.Float64s(angles)
	maxGap := 2*math.Pi - angles[len(angles)-1] + angles[0]
	for i := 1; i < len(angles); i++ {
		if gap := angles[i] - angles[i-1]; gap > maxGap {
			maxGap = gap
		}
	}
	return maxGap
}

// KNeigh implements the k-neighbors protocol (Blough et al.): every node
// proposes links to its k nearest UDG neighbors and the topology keeps
// the symmetric intersection — edge {u, v} iff each is among the other's
// k nearest. The original protocol's recommended k ≈ 9 makes the result
// connected with high probability on uniform instances (it is NOT
// guaranteed; the zoo metadata marks it accordingly).
func KNeigh(pts []geom.Point, k int) *graph.Graph {
	if k < 1 {
		panic("topology: KNeigh needs k >= 1")
	}
	base := udg.Build(pts)
	g := graph.New(len(pts))
	chosen := make([]map[int]bool, len(pts))
	for u := range pts {
		neigh := append([]int(nil), base.Neighbors(u)...)
		sort.Slice(neigh, func(i, j int) bool {
			di, dj := pts[u].Dist2(pts[neigh[i]]), pts[u].Dist2(pts[neigh[j]])
			if di != dj {
				return di < dj
			}
			return neigh[i] < neigh[j]
		})
		if len(neigh) > k {
			neigh = neigh[:k]
		}
		chosen[u] = make(map[int]bool, len(neigh))
		for _, v := range neigh {
			chosen[u][v] = true
		}
	}
	for u := range pts {
		for v := range chosen[u] {
			if u < v && chosen[v][u] {
				g.AddEdge(u, v, pts[u].Dist(pts[v]))
			}
		}
	}
	return g
}
