package topology

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

func TestCBTCPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(80)
		side := 1 + rng.Float64()*4
		pts := uniformPoints(rng, n, side, side)
		base := udg.Build(pts)
		g := CBTC(pts, 2*math.Pi/3)
		if !graph.SameComponents(base, g) {
			t.Fatalf("trial %d: CBTC broke connectivity", trial)
		}
	}
}

func TestCBTCContainsNNF(t *testing.T) {
	// Every node's first admitted neighbor is its nearest: CBTC contains
	// the NNF (the Section 4 property).
	rng := rand.New(rand.NewSource(1002))
	pts := uniformPoints(rng, 60, 2, 2)
	requireSubgraph(t, "NNF", NNF(pts), "CBTC", CBTC(pts, 2*math.Pi/3))
}

func TestCBTCConeSatisfied(t *testing.T) {
	// Interior nodes (whose UDG neighborhood already closes every cone)
	// must end with max angular gap <= α in the DIRECTED selection; the
	// symmetric closure only adds edges. Verify via a dense disk of
	// neighbors around a center node.
	pts := []geom.Point{geom.Pt(0, 0)}
	for i := 0; i < 12; i++ {
		a := float64(i) * math.Pi / 6
		r := 0.3 + 0.05*float64(i%3)
		pts = append(pts, geom.Pt(r*math.Cos(a), r*math.Sin(a)))
	}
	alpha := 2 * math.Pi / 3
	g := CBTC(pts, alpha)
	// Collect the center's neighbor directions.
	var angles []float64
	for _, v := range g.Neighbors(0) {
		angles = append(angles, pts[0].Angle(pts[v]))
	}
	if gap := maxAngularGap(angles); gap > alpha+1e-9 {
		t.Errorf("center's angular gap %v exceeds α %v", gap, alpha)
	}
	// Note the center's final degree exceeds its own selection: the ring
	// nodes are boundary nodes (their cones never close), keep all their
	// neighbors, and the symmetric closure backfills edges to the center.
	// Power saving therefore shows at the population level — see
	// TestCBTCSparserThanUDG.
}

func TestCBTCSparserThanUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(1007))
	pts := uniformPoints(rng, 150, 2, 2) // dense: interior nodes dominate
	base := udg.Build(pts)
	g := CBTC(pts, 2*math.Pi/3)
	if g.M()*2 > base.M() {
		t.Errorf("CBTC kept %d of %d UDG edges — interior cones should prune most", g.M(), base.M())
	}
}

func TestCBTCBoundaryNodeKeepsAll(t *testing.T) {
	// A node with all neighbors on one side can never close the cones and
	// keeps every UDG neighbor.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.3, 0), geom.Pt(0.6, 0), geom.Pt(0.9, 0)}
	g := CBTC(pts, 2*math.Pi/3)
	if g.Degree(0) != 3 {
		t.Errorf("boundary node degree %d, want all 3", g.Degree(0))
	}
}

func TestCBTCPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("α=%v should panic", a)
				}
			}()
			CBTC([]geom.Point{geom.Pt(0, 0)}, a)
		}()
	}
}

func TestMaxAngularGap(t *testing.T) {
	if g := maxAngularGap([]float64{1}); g != 2*math.Pi {
		t.Errorf("single direction gap = %v", g)
	}
	// Four cardinal directions: gap π/2.
	if g := maxAngularGap([]float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}); math.Abs(g-math.Pi/2) > 1e-12 {
		t.Errorf("cardinal gap = %v", g)
	}
	// Wraparound: directions at 350° and 10° leave a 340° gap.
	a := []float64{350 * math.Pi / 180, 10 * math.Pi / 180}
	if g := maxAngularGap(a); math.Abs(g-340*math.Pi/180) > 1e-9 {
		t.Errorf("wraparound gap = %v", g)
	}
}

func TestKNeighSymmetricIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(1003))
	pts := uniformPoints(rng, 60, 2, 2)
	g := KNeigh(pts, 5)
	base := udg.Build(pts)
	// Every kept edge is mutual: v among u's 5 nearest and vice versa.
	for _, e := range g.Edges() {
		for _, x := range []struct{ a, b int }{{e.U, e.V}, {e.V, e.U}} {
			rank := 0
			for _, w := range base.Neighbors(x.a) {
				if w == x.b {
					continue
				}
				if pts[x.a].Dist2(pts[w]) < pts[x.a].Dist2(pts[x.b]) {
					rank++
				}
			}
			if rank >= 5 {
				t.Fatalf("edge (%d,%d): %d is not among %d's 5 nearest", e.U, e.V, x.b, x.a)
			}
		}
	}
	// Degree bound: at most k.
	if d := g.MaxDegree(); d > 5 {
		t.Errorf("max degree %d > k", d)
	}
}

func TestKNeighLargeKEqualsUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(1004))
	pts := uniformPoints(rng, 40, 1.2, 1.2)
	base := udg.Build(pts)
	g := KNeigh(pts, 100)
	if g.M() != base.M() {
		t.Errorf("k >= n should keep every UDG edge: %d vs %d", g.M(), base.M())
	}
}

func TestKNeighPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	KNeigh(nil, 0)
}

func TestRCLISEStretchAndConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1005))
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(50)
		pts := uniformPoints(rng, n, 1.8, 1.8)
		base := udg.Build(pts)
		g := RCLISE(pts, 2)
		if !graph.SameComponents(base, g) {
			t.Fatalf("trial %d: RCLISE broke connectivity", trial)
		}
		for _, e := range base.Edges() {
			d := g.Dijkstra(e.U)
			if d[e.V] > 2*e.W*(1+1e-6) {
				t.Fatalf("trial %d: edge (%d,%d) stretched to %v > %v", trial, e.U, e.V, d[e.V], 2*e.W)
			}
		}
	}
}

func TestRCLISEBeatsLISEOnReceiverMeasure(t *testing.T) {
	// The whole point: optimizing the receiver measure directly should
	// not lose to optimizing the sender measure, on instances where they
	// diverge (clusters).
	rng := rand.New(rand.NewSource(1006))
	worse := 0
	for trial := 0; trial < 6; trial++ {
		pts := gen.Clustered(rng, 80, 3, 2.5, 0.2)
		rc := core.Interference(pts, RCLISE(pts, 2)).Max()
		sc := core.Interference(pts, LISE(pts, 2)).Max()
		if rc > sc {
			worse++
		}
	}
	if worse > 2 {
		t.Errorf("RCLISE lost to LISE on %d of 6 clustered instances", worse)
	}
}

func TestRCLISETrivial(t *testing.T) {
	if g := RCLISE(nil, 2); g.N() != 0 {
		t.Error("empty wrong")
	}
	if g := RCLISE([]geom.Point{geom.Pt(0, 0)}, 2); g.M() != 0 {
		t.Error("singleton wrong")
	}
}
