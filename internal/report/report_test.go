package report

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

func TestProfileOnSimpleLine(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(1, 0)}
	g := graph.New(3)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 2, 0.5)
	p := Build(pts, g)
	if p.N != 3 || p.Edges != 2 || p.MaxDegree != 2 {
		t.Errorf("basic counts wrong: %+v", p)
	}
	if p.RecvMax != 2 { // middle node covered by both ends
		t.Errorf("RecvMax = %d", p.RecvMax)
	}
	if !p.PreservesConnectivity {
		t.Error("line preserves connectivity")
	}
	if math.Abs(p.TotalLength-1.0) > 1e-12 {
		t.Errorf("TotalLength = %v", p.TotalLength)
	}
	if math.Abs(p.RadiiEnergy-3*0.25) > 1e-12 { // each node r=0.5
		t.Errorf("RadiiEnergy = %v", p.RadiiEnergy)
	}
	if p.Bridges != 2 || p.CutVertices != 1 {
		t.Errorf("fault exposure = %d bridges, %d cut vertices; want 2, 1", p.Bridges, p.CutVertices)
	}
	// The UDG here includes the (0,2) edge of length 1, so the line's
	// stretch is (0.5+0.5)/1 = 1.
	if p.Stretch != 1 {
		t.Errorf("Stretch = %v", p.Stretch)
	}
}

func TestProfileDetectsDisconnection(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}
	p := Build(pts, graph.New(2))
	if p.PreservesConnectivity {
		t.Error("empty topology disconnects a connected UDG")
	}
	if !math.IsInf(p.Stretch, 1) {
		t.Errorf("Stretch = %v, want +Inf", p.Stretch)
	}
}

func TestProfilesOverZoo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := gen.UniformSquare(rng, 60, 2)
	for _, alg := range topology.All() {
		p := Build(pts, alg.Build(pts))
		if alg.PreservesConnectivity && !p.PreservesConnectivity {
			t.Errorf("%s: profile says connectivity broken", alg.Name)
		}
		if p.RecvMax < p.MaxDegree {
			t.Errorf("%s: I(G) %d below max degree %d", alg.Name, p.RecvMax, p.MaxDegree)
		}
		if alg.PreservesConnectivity && (p.Stretch < 1 || math.IsInf(p.Stretch, 1)) {
			t.Errorf("%s: stretch %v out of range", alg.Name, p.Stretch)
		}
		if p.RadiiEnergy < 0 || p.TotalLength < 0 {
			t.Errorf("%s: negative energy proxies", alg.Name)
		}
	}
}

func TestTreesAreAllBridges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := gen.UniformSquare(rng, 60, 1.5)
	mst := Build(pts, topology.MST(pts))
	if mst.Bridges != mst.Edges {
		t.Errorf("MST: %d bridges of %d edges — a tree is all bridges", mst.Bridges, mst.Edges)
	}
	gg := Build(pts, topology.GG(pts))
	if gg.Bridges >= gg.Edges {
		t.Errorf("GG: every edge a bridge on a dense instance — no redundancy?")
	}
}

func TestSpannersHaveLowerStretchThanTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := gen.UniformSquare(rng, 70, 2)
	mst := Build(pts, topology.MST(pts))
	gg := Build(pts, topology.GG(pts))
	if gg.Stretch > mst.Stretch {
		t.Errorf("GG stretch %v above MST's %v — GG ⊇ MST", gg.Stretch, mst.Stretch)
	}
	lise := Build(pts, topology.LISE(pts, 2))
	// LISE guarantees per-edge stretch ≤ 2; overall Euclidean stretch vs
	// the UDG is then ≤ 2 as well.
	if lise.Stretch > 2+1e-9 {
		t.Errorf("LISE2 stretch %v exceeds its guarantee", lise.Stretch)
	}
}
