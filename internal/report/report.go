// Package report computes per-topology quality profiles: both
// interference measures next to the classical topology-control goals the
// related-work section lists — node degree, spanner stretch, and energy.
// The trade-off experiment (interference vs. stretch vs. energy) and
// ifctl's detailed output are built on it.
package report

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

// Profile summarizes one topology over one instance.
type Profile struct {
	// Nodes and links.
	N, Edges  int
	MaxDegree int
	// Receiver-centric interference (the paper's measure).
	RecvMax  int
	RecvMean float64
	// Sender-centric interference (Burkhart et al. [2]).
	SendMax int
	// Euclidean spanner stretch versus the UDG (+Inf when the topology
	// disconnects a UDG-connected pair); 1 for n <= 1.
	Stretch float64
	// Energy proxies: the sum of transmission radii raised to the
	// path-loss exponent (radio power to maintain the topology) and the
	// total edge length.
	RadiiEnergy float64
	TotalLength float64
	// Connectivity preserved with respect to the UDG.
	PreservesConnectivity bool
	// Fault exposure: bridge edges and cut vertices. Trees are all
	// bridges — minimum interference buys maximum fragility — while
	// spanners pay interference for redundancy.
	Bridges     int
	CutVertices int
}

// Alpha is the path-loss exponent of the energy proxy.
const Alpha = 2

// Build computes the profile of topology g over pts.
func Build(pts []geom.Point, g *graph.Graph) Profile {
	base := udg.Build(pts)
	iv := core.Interference(pts, g)
	_, send := core.SenderInterference(pts, g)
	radii := core.Radii(pts, g)
	energy := 0.0
	for _, r := range radii {
		energy += math.Pow(r, Alpha)
	}
	cuts := 0
	for _, a := range g.ArticulationPoints() {
		if a {
			cuts++
		}
	}
	p := Profile{
		N:                     len(pts),
		Bridges:               len(g.Bridges()),
		CutVertices:           cuts,
		Edges:                 g.M(),
		MaxDegree:             g.MaxDegree(),
		RecvMax:               iv.Max(),
		RecvMean:              iv.Mean(),
		SendMax:               send,
		Stretch:               graph.Stretch(base, g),
		RadiiEnergy:           energy,
		TotalLength:           graph.TotalWeight(g),
		PreservesConnectivity: graph.SameComponents(base, g),
	}
	return p
}
