package store

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// Injected fault errors.
var (
	// ErrCrashed is returned by every FaultFS operation after the
	// crash-at-offset budget trips: the simulated machine is off.
	ErrCrashed = errors.New("store: faultfs crashed (power cut)")
	// ErrInjectedSync is the default error for injected fsync failures.
	ErrInjectedSync = errors.New("store: faultfs injected fsync error")
)

// FaultFS wraps a base FS (usually OSFS over a temp dir) and injects
// storage faults deterministically:
//
//   - CrashAfterBytes(n): a power cut after n more payload bytes reach
//     any file. The write that crosses the budget lands only its prefix
//     (a torn write), then every subsequent operation — writes, fsyncs,
//     renames, opens — fails with ErrCrashed. Recovery tests then re-open
//     the directory with a fresh FS, exactly like a reboot.
//   - ShortWrites(k): every write lands at most k bytes and reports a
//     short-write error, exercising the caller's partial-write handling.
//   - FailSyncs(n, err): the next n Sync calls fail with err (fsync
//     error handling must be fail-stop, never retry-and-hope).
//
// Directory fsyncs (0-byte writes) don't consume budget. The zero value
// with Base set injects nothing.
type FaultFS struct {
	Base FS

	mu         sync.Mutex
	budget     int64 // remaining payload bytes before the crash; -1 = unlimited
	crashed    bool
	shortWrite int   // max bytes per write; 0 = unlimited
	failSyncs  int   // remaining Sync calls to fail
	syncErr    error // error for injected sync failures
	bytes      int64 // total payload bytes written through this FS
}

// NewFaultFS wraps base with no faults armed.
func NewFaultFS(base FS) *FaultFS {
	return &FaultFS{Base: base, budget: -1}
}

// CrashAfterBytes arms a power cut after n more written bytes.
func (f *FaultFS) CrashAfterBytes(n int64) {
	f.mu.Lock()
	f.budget = n
	f.mu.Unlock()
}

// ShortWrites caps every write at k bytes (0 disarms).
func (f *FaultFS) ShortWrites(k int) {
	f.mu.Lock()
	f.shortWrite = k
	f.mu.Unlock()
}

// FailSyncs makes the next n Sync calls fail with err (nil selects
// ErrInjectedSync).
func (f *FaultFS) FailSyncs(n int, err error) {
	if err == nil {
		err = ErrInjectedSync
	}
	f.mu.Lock()
	f.failSyncs, f.syncErr = n, err
	f.mu.Unlock()
}

// Crashed reports whether the power cut has tripped.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// BytesWritten reports total payload bytes accepted so far — the offset
// axis of a kill-at-every-offset sweep.
func (f *FaultFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytes
}

func (f *FaultFS) alive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	file, err := f.Base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.Base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.Base.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.Base.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.Base.ReadDir(name)
}

// faultFile applies the FS-level fault state to one file's operations.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	allow := len(p)
	short := false
	if ff.fs.shortWrite > 0 && allow > ff.fs.shortWrite {
		allow, short = ff.fs.shortWrite, true
	}
	torn := false
	if ff.fs.budget >= 0 && int64(allow) >= ff.fs.budget {
		allow = int(ff.fs.budget)
		ff.fs.crashed = true
		torn = true
	}
	if ff.fs.budget >= 0 {
		ff.fs.budget -= int64(allow)
	}
	ff.fs.bytes += int64(allow)
	ff.fs.mu.Unlock()

	n, err := ff.f.Write(p[:allow])
	if err != nil {
		return n, err
	}
	if torn {
		return n, ErrCrashed
	}
	if short {
		return n, errShortWrite{}
	}
	return n, nil
}

// errShortWrite distinguishes an injected short write from io.ErrShortWrite
// so tests can assert the injection fired; it still reads as a write error.
type errShortWrite struct{}

func (errShortWrite) Error() string { return "store: faultfs short write" }

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return ErrCrashed
	}
	if ff.fs.failSyncs > 0 {
		ff.fs.failSyncs--
		err := ff.fs.syncErr
		ff.fs.mu.Unlock()
		return err
	}
	ff.fs.mu.Unlock()
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.alive(); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Close() error { return ff.f.Close() }
