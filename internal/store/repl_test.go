package store

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestCursorStringRoundTrip(t *testing.T) {
	for _, c := range []Cursor{{}, {Seg: 1, Off: 10}, {Seg: 42, Off: 1 << 40}} {
		got, err := ParseCursor(c.String())
		if err != nil {
			t.Fatalf("ParseCursor(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("round trip: %v != %v", got, c)
		}
	}
	for _, s := range []string{"", "5", "a:b", "1:-3", "x:1"} {
		if _, err := ParseCursor(s); err == nil {
			t.Fatalf("ParseCursor(%q): want error", s)
		}
	}
}

func TestCursorLess(t *testing.T) {
	a, b, c := Cursor{Seg: 1, Off: 500}, Cursor{Seg: 2, Off: 10}, Cursor{Seg: 2, Off: 20}
	if !a.Less(b) || !b.Less(c) || b.Less(a) || c.Less(c) {
		t.Fatal("cursor ordering broken")
	}
}

// readAll drains the log from cur in small pages and returns the records
// plus the final cursor.
func readAll(t *testing.T, s *Store, cur Cursor) ([]Record, Cursor) {
	t.Helper()
	var recs []Record
	for {
		next, n, err := s.ReadFrom(cur, 3, func(r Record) error {
			cp := r
			cp.Payload = append([]byte(nil), r.Payload...)
			recs = append(recs, cp)
			return nil
		})
		if err != nil {
			t.Fatalf("ReadFrom(%v): %v", cur, err)
		}
		cur = next
		if n == 0 {
			return recs, cur
		}
	}
}

func TestReadFromStreamsAndResumes(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncNone, SyncAlways} {
		t.Run(sync.String(), func(t *testing.T) {
			s := mustOpen(t, testOpts(t, t.TempDir(), func(o *Options) { o.Sync = sync }))
			defer s.Close()
			var want []Record
			for i := 0; i < 10; i++ {
				r := rec(RecordBatch, "sess", uint64(i+1), fmt.Sprintf("payload-%d", i))
				want = append(want, r)
				if err := s.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			got, cur := readAll(t, s, Cursor{})
			if len(got) != len(want) {
				t.Fatalf("streamed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Seq != want[i].Seq || string(got[i].Payload) != string(want[i].Payload) {
					t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
				}
			}
			if tail := s.ReplTail(); cur != tail {
				t.Fatalf("drained cursor %v != ReplTail %v", cur, tail)
			}
			// Resume from the tail: nothing more until a new append lands.
			if _, n, err := s.ReadFrom(cur, 0, func(Record) error { return nil }); err != nil || n != 0 {
				t.Fatalf("ReadFrom at tail: n=%d err=%v", n, err)
			}
			if err := s.Append(rec(RecordBatch, "sess", 11, "late")); err != nil {
				t.Fatal(err)
			}
			late, _ := readAll(t, s, cur)
			if len(late) != 1 || string(late[0].Payload) != "late" {
				t.Fatalf("resume after append: %+v", late)
			}
		})
	}
}

func TestReadFromHopsSegments(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), func(o *Options) { o.SegmentBytes = 128 }))
	defer s.Close()
	const total = 40
	for i := 0; i < total; i++ {
		if err := s.Append(rec(RecordBatch, "s", uint64(i+1), fmt.Sprintf("p%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := s.wal.segments()
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments for the hop test, got %v (%v)", segs, err)
	}
	got, cur := readAll(t, s, Cursor{})
	if len(got) != total {
		t.Fatalf("streamed %d records across segments, want %d", len(got), total)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: seq %d", i, r.Seq)
		}
	}
	if tail := s.ReplTail(); cur != tail {
		t.Fatalf("cursor %v != tail %v", cur, tail)
	}
}

func TestReadFromPrunedCursor(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), func(o *Options) { o.SegmentBytes = 128 }))
	defer s.Close()
	for i := 0; i < 40; i++ {
		if err := s.Append(rec(RecordBatch, "s", uint64(i+1), "padding-payload")); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := s.wal.segments()
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %v", segs)
	}
	if _, err := s.Prune(segs[1]); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.ReadFrom(Cursor{}, 0, func(Record) error { return nil })
	if !errors.Is(err, ErrCursorPruned) {
		t.Fatalf("zero cursor into pruned log: got %v, want ErrCursorPruned", err)
	}
	// A cursor at the first surviving segment still streams.
	got, _ := readAll(t, s, Cursor{Seg: segs[1], Off: 0})
	if len(got) == 0 {
		t.Fatal("no records streamed from the surviving segments")
	}
}

func TestReadFromRejectsBadCursors(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), nil))
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Append(rec(RecordBatch, "s", uint64(i+1), "x")); err != nil {
			t.Fatal(err)
		}
	}
	tail := s.ReplTail()
	// Misaligned: one byte into a record frame.
	mis := Cursor{Seg: tail.Seg, Off: int64(len(segmentHeader)) + 1}
	if _, _, err := s.ReadFrom(mis, 0, func(Record) error { return nil }); !errors.Is(err, ErrCursorInvalid) {
		t.Fatalf("misaligned cursor: got %v, want ErrCursorInvalid", err)
	}
	// Beyond the durable tail.
	past := Cursor{Seg: tail.Seg, Off: tail.Off + 8}
	if _, _, err := s.ReadFrom(past, 0, func(Record) error { return nil }); !errors.Is(err, ErrCursorInvalid) {
		t.Fatalf("past-tail cursor: got %v, want ErrCursorInvalid", err)
	}
	// Future segment.
	if _, _, err := s.ReadFrom(Cursor{Seg: tail.Seg + 7, Off: 0}, 0, func(Record) error { return nil }); !errors.Is(err, ErrCursorInvalid) {
		t.Fatalf("future-segment cursor: got %v, want ErrCursorInvalid", err)
	}
}

func TestReadFromDurableGateSyncBatch(t *testing.T) {
	// Under SyncBatch the reader must never see past the fsynced
	// watermark; after Sync() the horizon covers everything.
	s := mustOpen(t, testOpts(t, t.TempDir(), func(o *Options) { o.Sync = SyncBatch }))
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Append(rec(RecordBatch, "s", uint64(i+1), "y")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	got, cur := readAll(t, s, Cursor{})
	if len(got) != 8 {
		t.Fatalf("after Sync: streamed %d, want 8", len(got))
	}
	if tail := s.ReplTail(); cur != tail {
		t.Fatalf("cursor %v != tail %v", cur, tail)
	}
}

func TestReadFromAtRestAndAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testOpts(t, dir, nil))
	for i := 0; i < 6; i++ {
		if err := s.Append(rec(RecordBatch, "s", uint64(i+1), "z")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh handle that has never appended can still serve the stream.
	s2 := mustOpen(t, testOpts(t, dir, nil))
	defer s2.Close()
	got, cur := readAll(t, s2, Cursor{})
	if len(got) != 6 {
		t.Fatalf("cold read: streamed %d, want 6", len(got))
	}
	if tail := s2.ReplTail(); cur != tail {
		t.Fatalf("cold cursor %v != tail %v", cur, tail)
	}
}

func TestAppendNotify(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), nil))
	defer s.Close()
	ch := make(chan struct{}, 1)
	s.SetAppendNotify(ch)
	if err := s.Append(rec(RecordBatch, "s", 1, "n")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no notify after append")
	}
	s.SetAppendNotify(nil)
	if err := s.Append(rec(RecordBatch, "s", 2, "n")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Fatal("notify after unregister")
	default:
	}
}

// TestReadFromRollsAcrossPrunedBoundary pins the checkpoint-barrier
// interaction: a follower caught up to the end of a sealed segment must
// survive that segment being pruned (its cursor lost no records), while
// a cursor strictly inside the pruned segment must still fail.
func TestReadFromRollsAcrossPrunedBoundary(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), nil))
	defer s.Close()
	for i := 1; i <= 4; i++ {
		if err := s.Append(rec(RecordBatch, "s", uint64(i), "xxxx")); err != nil {
			t.Fatal(err)
		}
	}
	// Catch up fully: the cursor now sits at the end of segment 1.
	got, cur := readAll(t, s, Cursor{})
	if len(got) != 4 || cur.Seg != 1 {
		t.Fatalf("catch-up: %d records, cursor %v", len(got), cur)
	}
	midCur := Cursor{Seg: 1, Off: cur.Off - 1} // strictly inside segment 1

	active, err := s.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if _, err := s.Prune(active); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if err := s.Append(rec(RecordBatch, "s", 5, "after")); err != nil {
		t.Fatal(err)
	}

	// The caught-up cursor rolls forward and streams the new record.
	after, next := readAll(t, s, cur)
	if len(after) != 1 || after[0].Seq != 5 {
		t.Fatalf("post-prune resume: got %d records (want seq=5)", len(after))
	}
	if next.Seg != active {
		t.Fatalf("post-prune cursor in segment %d, want active %d", next.Seg, active)
	}
	// Resuming from the rolled-forward cursor is a no-op, not an error.
	if more, _ := readAll(t, s, next); len(more) != 0 {
		t.Fatalf("tail resume streamed %d records, want 0", len(more))
	}

	// A mid-segment cursor into pruned history is genuinely lost.
	if _, _, err := s.ReadFrom(midCur, 0, func(Record) error { return nil }); !errors.Is(err, ErrCursorPruned) {
		t.Fatalf("mid-pruned-segment cursor: err=%v, want ErrCursorPruned", err)
	}
	// And so is a zero cursor: segment 1 is gone.
	if _, _, err := s.ReadFrom(Cursor{}, 0, func(Record) error { return nil }); !errors.Is(err, ErrCursorPruned) {
		t.Fatalf("zero cursor after prune: err=%v, want ErrCursorPruned", err)
	}
}
