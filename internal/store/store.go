// Package store is the durability subsystem under the rimd serving
// layer: a segmented, CRC-framed write-ahead log for applied mutation
// batches, crash-atomic checkpoint files for session state, and the
// recovery scan that reconciles the two.
//
// # Contract
//
// The store guarantees that after any crash — at any byte offset of any
// write — recovery observes a *prefix* of the appended record sequence:
// every record either survives completely (CRC-validated) or is
// discarded with everything after it. This is the durable mirror of the
// serving layer's live guarantee that reads see a prefix of the mutation
// log. The kill-at-every-offset property test in internal/serve holds
// the two against each other.
//
// Payloads are opaque here. internal/serve encodes mutation batches in
// its rimd-trace v1 record syntax and maintainer state in its
// checkpoint syntax; the store frames, checksums, fsyncs, rotates,
// scans, and heals.
//
// # Fsync discipline
//
//   - WAL appends follow the configured SyncPolicy (always / batch /
//     none); segment seals and Close always fsync.
//   - New segments are fsynced (header) and their directory entry made
//     durable before the first record lands.
//   - Checkpoints are written to a temp name, fsynced, renamed, and the
//     directory fsynced — visible means valid.
//   - The first write or fsync failure is sticky: the WAL fail-stops
//     rather than retrying an fsync whose dirty pages may already be
//     gone.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Options configures Open. The zero value of every field selects a sane
// default except Dir, which is required.
type Options struct {
	// Dir is the data directory; wal/ and ckpt/ are created beneath it.
	Dir string
	// SegmentBytes rotates the WAL when the active segment would exceed
	// this size; <= 0 means 64 MiB.
	SegmentBytes int64
	// Sync selects the fsync discipline (default SyncBatch).
	Sync SyncPolicy
	// FS overrides the filesystem (tests inject FaultFS); nil means OSFS.
	FS FS
	// Registry receives the rim_store_* metrics; nil means obs.Default().
	Registry *obs.Registry
}

// Store is the durability handle: one WAL plus one checkpoint directory.
// Append and WriteCheckpoint are safe for concurrent use; Scan is the
// recovery-time read pass and must not run concurrently with appends.
type Store struct {
	fs      FS
	dir     string
	ckptDir string
	mx      *metrics
	wal     wal
}

// Open prepares the directory layout and returns a handle. No segment is
// read or written until the first Append or Scan.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default()
	}
	s := &Store{
		fs:      opts.FS,
		dir:     opts.Dir,
		ckptDir: filepath.Join(opts.Dir, "ckpt"),
		mx:      registerMetrics(opts.Registry),
	}
	s.wal = wal{
		fs:       opts.FS,
		dir:      filepath.Join(opts.Dir, "wal"),
		segBytes: opts.SegmentBytes,
		policy:   opts.Sync,
		mx:       s.mx,
	}
	for _, d := range []string{s.wal.dir, s.ckptDir, filepath.Join(s.ckptDir, "tmp")} {
		if err := s.fs.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	if opts.Sync == SyncBatch {
		s.wal.kick = make(chan struct{}, 1)
		s.wal.done = make(chan struct{})
		s.wal.idle = make(chan struct{})
		go s.wal.syncLoop()
	}
	return s, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Policy returns the configured fsync policy.
func (s *Store) Policy() SyncPolicy { return s.wal.policy }

// Append writes one record to the WAL under the configured fsync policy.
func (s *Store) Append(rec Record) error { return s.wal.append(rec) }

// AppendBatch writes a group of records as one contiguous WAL write:
// they are framed back to back in the encode buffer, hit the segment in
// a single syscall, and share one fsync under SyncAlways. The crash
// contract is unchanged — each record still carries its own CRC frame,
// so recovery keeps any valid prefix of the group.
func (s *Store) AppendBatch(recs []Record) error { return s.wal.append(recs...) }

// Sync forces the WAL durable up to everything appended so far.
func (s *Store) Sync() error {
	s.wal.mu.Lock()
	end := s.wal.written
	s.wal.mu.Unlock()
	return s.wal.syncTo(end)
}

// Scan walks every WAL segment in order, calling fn for each valid
// record, and reports the tail state (whether a torn tail was found and
// how many bytes it drops). Corruption anywhere but the tail fails with
// ErrCorrupt. Recovery-only: do not Scan a store that is appending.
func (s *Store) Scan(fn func(Record) error) (TailInfo, error) {
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	return s.wal.scan(fn)
}

// Rotate seals the active segment and opens the next one, returning the
// new active index. The checkpoint barrier calls this so every record
// older than the checkpoints it is about to write lands in prunable
// segments.
func (s *Store) Rotate() (uint64, error) {
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	if s.wal.closed {
		return 0, ErrStoreClosed
	}
	if s.wal.failed != nil {
		return 0, s.wal.failed
	}
	if !s.wal.started {
		if err := s.wal.start(); err != nil {
			return 0, s.wal.fail(err)
		}
		return s.wal.index, nil // fresh log: nothing to seal
	}
	if err := s.wal.rotateLocked(); err != nil {
		return 0, s.wal.fail(err)
	}
	return s.wal.index, nil
}

// Prune removes WAL segments with index < before. Safe only after every
// live session has a checkpoint at or past its last record in those
// segments — the barrier CheckpointAll in internal/serve enforces that.
func (s *Store) Prune(before uint64) (removed int, err error) {
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	segs, err := s.wal.segments()
	if err != nil {
		return 0, err
	}
	for _, idx := range segs {
		if idx >= before || idx == s.wal.index {
			continue
		}
		end, serr := s.segSize(idx)
		if rerr := s.fs.Remove(s.wal.segPath(idx)); rerr != nil {
			if err == nil {
				err = rerr
			}
			continue
		}
		if serr == nil {
			if s.wal.prunedEnd == nil {
				s.wal.prunedEnd = make(map[uint64]int64)
			}
			s.wal.prunedEnd[idx] = end
		}
		removed++
	}
	return removed, err
}

// segSize reports a segment file's byte size. Caller holds wal.mu.
func (s *Store) segSize(idx uint64) (int64, error) {
	f, err := s.fs.OpenFile(s.wal.segPath(idx), os.O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return f.Seek(0, io.SeekEnd)
}

// WriteCheckpoint persists a session checkpoint crash-atomically and
// garbage-collects older checkpoints of the same session.
func (s *Store) WriteCheckpoint(session string, seq uint64, payload []byte) error {
	return s.writeCheckpoint(session, seq, payload)
}

// LatestCheckpoints returns the newest valid checkpoint per session plus
// a list of skipped (invalid) checkpoint files for the recovery report.
func (s *Store) LatestCheckpoints() (map[string]Checkpoint, []string, error) {
	return s.latestCheckpoints()
}

// DeleteCheckpoints removes every checkpoint for a session (called
// before its drop record is logged).
func (s *Store) DeleteCheckpoints(session string) error {
	return s.deleteCheckpoints(session)
}

// Metrics accessors used by recovery reporting in internal/serve.
func (s *Store) CountRecovery(replayedBatches int, tornBytes int64) {
	s.mx.recoveries.Inc()
	s.mx.replayedBatches.Add(int64(replayedBatches))
	s.mx.tornBytes.Add(tornBytes)
}

// Close seals the WAL (final fsync) and stops the background syncer.
func (s *Store) Close() error { return s.wal.closeWAL() }
