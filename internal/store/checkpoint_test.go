package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func ckptFiles(t *testing.T, s *Store) []string {
	t.Helper()
	ents, err := os.ReadDir(s.ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestCheckpointRoundTripAndGC(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), nil))
	defer s.Close()

	if err := s.WriteCheckpoint("alpha", 10, []byte("state at 10")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint("beta", 3, []byte("beta state")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint("alpha", 25, []byte("state at 25")); err != nil {
		t.Fatal(err)
	}

	latest, skipped, err := s.LatestCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped: %v", skipped)
	}
	if c := latest["alpha"]; c.Seq != 25 || string(c.Payload) != "state at 25" {
		t.Fatalf("alpha checkpoint: %+v", c)
	}
	if c := latest["beta"]; c.Seq != 3 || string(c.Payload) != "beta state" {
		t.Fatalf("beta checkpoint: %+v", c)
	}
	// GC removed alpha's seq-10 file.
	for _, name := range ckptFiles(t, s) {
		if strings.Contains(name, fmt.Sprintf("%016x", 10)) {
			t.Fatalf("stale checkpoint survived gc: %s", name)
		}
	}
}

func TestCheckpointSessionNameEscaping(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), nil))
	defer s.Close()
	// Hostile session IDs must not escape the ckpt directory or collide.
	ids := []string{"../../etc/passwd", "a/b", "a b", "x%2F", "plain-1"}
	for i, id := range ids {
		if err := s.WriteCheckpoint(id, uint64(i+1), []byte(id)); err != nil {
			t.Fatalf("%q: %v", id, err)
		}
	}
	for _, name := range ckptFiles(t, s) {
		if strings.Contains(name, "/") {
			t.Fatalf("checkpoint name contains a path separator: %q", name)
		}
	}
	latest, _, err := s.LatestCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(latest) != len(ids) {
		t.Fatalf("got %d sessions, want %d: %v", len(latest), len(ids), latest)
	}
	for i, id := range ids {
		if c := latest[id]; c.Seq != uint64(i+1) || string(c.Payload) != id {
			t.Fatalf("%q round trip: %+v", id, c)
		}
	}
}

func TestCheckpointInvalidFilesSkipped(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), nil))
	defer s.Close()
	if err := s.WriteCheckpoint("good", 5, []byte("valid payload")); err != nil {
		t.Fatal(err)
	}

	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(s.ckptDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A torn temp file (crash before rename) is invisible, not an error.
	write(filepath.Join("tmp", ckptName("good", 6)), "rimckpt v1 sess")
	// Damaged payload: wrong CRC.
	write(ckptName("bad1", 1), "rimckpt v1 session=bad1 seq=1 len=3 crc=00000000\nxyz")
	// Payload cut short.
	write(ckptName("bad2", 2), "rimckpt v1 session=bad2 seq=2 len=100 crc=00000000\nshort")
	// Header/name mismatch.
	write(ckptName("bad3", 3), "rimckpt v1 session=other seq=3 len=0 crc=00000000\n")
	// Unparseable name.
	write("garbage.ckpt", "rimckpt v1 session=g seq=1 len=0 crc=00000000\n")

	latest, skipped, err := s.LatestCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(latest) != 1 || latest["good"].Seq != 5 {
		t.Fatalf("latest: %+v", latest)
	}
	if len(skipped) != 4 {
		t.Fatalf("skipped %d files, want 4: %v", len(skipped), skipped)
	}
}

func TestCheckpointCrashMidWriteInvisible(t *testing.T) {
	// A power cut anywhere inside WriteCheckpoint must leave either the
	// complete new checkpoint or only the old state — never a half file
	// that recovery trusts.
	payload := []byte("the full checkpoint payload, long enough to tear")
	for budget := int64(0); budget <= int64(len(payload)+64); budget += 3 {
		dir := t.TempDir()
		ffs := NewFaultFS(OSFS{})
		s, err := Open(testOpts(t, dir, func(o *Options) { o.FS = ffs }))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteCheckpoint("s", 1, []byte("old state")); err != nil {
			t.Fatal(err)
		}
		ffs.CrashAfterBytes(budget)
		_ = s.WriteCheckpoint("s", 2, payload) // may or may not fail: power cut

		s2 := mustOpen(t, testOpts(t, dir, nil))
		latest, _, err := s2.LatestCheckpoints()
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		c, ok := latest["s"]
		if !ok {
			t.Fatalf("budget %d: old checkpoint lost", budget)
		}
		switch c.Seq {
		case 1:
			if string(c.Payload) != "old state" {
				t.Fatalf("budget %d: old checkpoint damaged: %q", budget, c.Payload)
			}
		case 2:
			if string(c.Payload) != string(payload) {
				t.Fatalf("budget %d: new checkpoint incomplete: %q", budget, c.Payload)
			}
		default:
			t.Fatalf("budget %d: unexpected seq %d", budget, c.Seq)
		}
		s2.Close()
	}
}

func TestDeleteCheckpoints(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), nil))
	defer s.Close()
	if err := s.WriteCheckpoint("keep", 1, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint("drop", 1, []byte("d1")); err != nil {
		t.Fatal(err)
	}
	// A stale temp file from a crashed checkpoint of the dropped session.
	stale := filepath.Join(s.ckptDir, "tmp", ckptName("drop", 9))
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteCheckpoints("drop"); err != nil {
		t.Fatal(err)
	}
	latest, _, err := s.LatestCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := latest["drop"]; ok {
		t.Fatal("dropped session still has a checkpoint")
	}
	if _, ok := latest["keep"]; !ok {
		t.Fatal("unrelated session's checkpoint deleted")
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived delete: %v", err)
	}
	for _, name := range ckptFiles(t, s) {
		if strings.Contains(name, "drop") {
			t.Fatalf("file for dropped session survived: %s", name)
		}
	}
}

func TestParseCkptName(t *testing.T) {
	for _, tc := range []struct {
		name string
		sess string
		seq  uint64
		ok   bool
	}{
		{ckptName("abc", 7), "abc", 7, true},
		{ckptName("a-b-c", 1 << 33), "a-b-c", 1 << 33, true},
		{"noseq.ckpt", "", 0, false},
		{"a-00ff.ckpt", "", 0, false}, // seq not 16 digits
		{"a-000000000000000g.ckpt", "", 0, false},
		{"plain.wal", "", 0, false},
	} {
		sess, seq, ok := parseCkptName(tc.name)
		if ok != tc.ok || sess != tc.sess || seq != tc.seq {
			t.Errorf("parseCkptName(%q) = %q, %d, %v; want %q, %d, %v",
				tc.name, sess, seq, ok, tc.sess, tc.seq, tc.ok)
		}
	}
}
