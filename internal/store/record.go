package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL record framing. A segment file is the header line
//
//	rimwal v1\n
//
// followed by length-prefixed, CRC-guarded records:
//
//	[uint32 LE body length][uint32 LE CRC32-C of body][body]
//
// where body is
//
//	[1 byte kind][uint64 LE seq][uvarint session length][session][payload]
//
// The payload is opaque to the store — the serving layer encodes mutation
// batches there in the rimd-trace v1 record syntax. The seq is the
// session's mutation-log position after the record applies, which is what
// lets recovery skip records already covered by a checkpoint without
// parsing payloads.

// RecordKind labels what a WAL record means to recovery.
type RecordKind uint8

const (
	// RecordCreate carries a session's initial instance.
	RecordCreate RecordKind = iota + 1
	// RecordBatch carries one applied mutation batch.
	RecordBatch
	// RecordDrop marks a session deleted; earlier records for it are dead.
	RecordDrop
)

// String names the kind for logs and errors.
func (k RecordKind) String() string {
	switch k {
	case RecordCreate:
		return "create"
	case RecordBatch:
		return "batch"
	case RecordDrop:
		return "drop"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one WAL entry.
type Record struct {
	Kind    RecordKind
	Session string
	Seq     uint64 // session mutation-log position after this record
	Payload []byte
}

// Decode/scan errors. ErrTruncated is the *clean* failure — a crash cut
// the final record short, and recovery heals by truncating to the last
// valid frame. ErrCorrupt is data damage recovery must not paper over.
var (
	ErrTruncated = errors.New("store: wal truncated mid-record")
	ErrCorrupt   = errors.New("store: wal corrupt")
)

const (
	segmentHeader = "rimwal v1\n"
	frameHead     = 8        // length + crc words
	maxRecordSize = 64 << 20 // sanity bound; a larger length word is corruption
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord encodes rec (frame and body) onto buf and returns it.
// The body is built in place after an 8-byte placeholder and the frame
// head patched afterwards — no intermediate body slice, so a caller
// reusing buf appends without allocating (the BENCH_3 WAL throughput
// fix: the old encode built a fresh body per record and copied it).
func appendRecord(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame head placeholder
	buf = append(buf, byte(rec.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Session)))
	buf = append(buf, rec.Session...)
	buf = append(buf, rec.Payload...)
	body := buf[start+frameHead:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, crcTable))
	return buf
}

// decodeBody parses a frame body into a Record.
func decodeBody(body []byte) (Record, error) {
	if len(body) < 1+8+1 {
		return Record{}, fmt.Errorf("%w: body too short (%d bytes)", ErrCorrupt, len(body))
	}
	rec := Record{Kind: RecordKind(body[0])}
	if rec.Kind < RecordCreate || rec.Kind > RecordDrop {
		return Record{}, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, body[0])
	}
	rec.Seq = binary.LittleEndian.Uint64(body[1:9])
	slen, n := binary.Uvarint(body[9:])
	if n <= 0 || slen > uint64(len(body)-9-n) {
		return Record{}, fmt.Errorf("%w: bad session length", ErrCorrupt)
	}
	off := 9 + n
	rec.Session = string(body[off : off+int(slen)])
	rec.Payload = append([]byte(nil), body[off+int(slen):]...)
	return rec, nil
}

// readRecord reads one framed record from r. It returns io.EOF at a clean
// record boundary, ErrTruncated when the stream ends mid-frame, and
// ErrCorrupt on CRC mismatch or an insane length word. size is the number
// of bytes the complete frame occupies.
func readRecord(r io.Reader) (rec Record, size int64, err error) {
	var head [frameHead]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("%w: frame header cut short", ErrTruncated)
	}
	length := binary.LittleEndian.Uint32(head[0:4])
	sum := binary.LittleEndian.Uint32(head[4:8])
	if length > maxRecordSize {
		return Record{}, 0, fmt.Errorf("%w: record length %d exceeds sanity bound", ErrCorrupt, length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, 0, fmt.Errorf("%w: record body cut short", ErrTruncated)
	}
	if crc32.Checksum(body, crcTable) != sum {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	rec, err = decodeBody(body)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHead + int64(length), nil
}
