package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Replication support: tailing the WAL as a record stream.
//
// A Cursor names a byte position inside the segmented log — the segment
// index plus the offset of the next record frame within that segment.
// Segment indices are monotonic and never reused, and bytes inside a
// sealed segment never move, so a cursor handed to a follower stays
// valid across leader restarts, rotations, and torn-tail healing (a
// healed tail only ever discards bytes past the durable horizon, which
// a cursor can never point beyond).
//
// ReadFrom streams records from a cursor up to the durable horizon: the
// fsynced watermark under SyncAlways/SyncBatch, the written watermark
// under SyncNone (benchmarks and tests that simulate the disk
// elsewhere). Streaming only durable records is what keeps a follower
// from ever being *ahead* of what the leader itself would recover after
// a crash — the invariant the failover matrix asserts when it compares
// a promoted follower against a from-scratch replay of the leader's
// WAL.

// Cursor is a replication position: the next record frame's segment
// index and byte offset. The zero Cursor means "from the beginning of
// the log".
type Cursor struct {
	Seg uint64
	Off int64
}

// IsZero reports whether c is the log-start sentinel.
func (c Cursor) IsZero() bool { return c.Seg == 0 && c.Off == 0 }

// Less orders cursors by log position (segment, then offset).
func (c Cursor) Less(o Cursor) bool {
	if c.Seg != o.Seg {
		return c.Seg < o.Seg
	}
	return c.Off < o.Off
}

// String renders "seg:off" (ParseCursor inverts it) — the form the
// follower persists between runs.
func (c Cursor) String() string { return fmt.Sprintf("%d:%d", c.Seg, c.Off) }

// ParseCursor inverts Cursor.String.
func ParseCursor(s string) (Cursor, error) {
	segs, offs, ok := strings.Cut(strings.TrimSpace(s), ":")
	if !ok {
		return Cursor{}, fmt.Errorf("store: cursor %q: want seg:off", s)
	}
	seg, err := strconv.ParseUint(segs, 10, 64)
	if err != nil {
		return Cursor{}, fmt.Errorf("store: cursor segment: %w", err)
	}
	off, err := strconv.ParseInt(offs, 10, 64)
	if err != nil || off < 0 {
		return Cursor{}, fmt.Errorf("store: cursor offset %q", offs)
	}
	return Cursor{Seg: seg, Off: off}, nil
}

// Cursor errors. ErrCursorPruned means the follower is behind the
// checkpoint-barrier prune horizon and must resync from a checkpoint
// rather than the log; ErrCursorInvalid means the cursor does not name
// a record boundary of this log at all (wrong log, forged offset, or a
// position past the durable tail).
var (
	ErrCursorPruned  = errors.New("store: cursor points into pruned segments")
	ErrCursorInvalid = errors.New("store: cursor is not a record boundary of this log")
)

// SetAppendNotify registers ch to receive a non-blocking kick whenever
// the durable horizon may have advanced (append under SyncNone, fsync
// completion otherwise). One channel per store; nil unregisters.
func (s *Store) SetAppendNotify(ch chan struct{}) {
	s.wal.nmu.Lock()
	s.wal.notifyCh = ch
	s.wal.nmu.Unlock()
}

// ReplTail reports the durable horizon — the cursor a fully caught-up
// follower sits at.
func (s *Store) ReplTail() Cursor {
	s.wal.mu.Lock()
	defer s.wal.mu.Unlock()
	if err := s.wal.ensureTailLocked(); err != nil {
		return Cursor{}
	}
	return s.wal.durableLocked()
}

// ensureTailLocked makes the tail (and durable horizon) known without
// starting an appender. Caller holds mu.
func (w *wal) ensureTailLocked() error {
	if w.started || w.tailKnown {
		return nil
	}
	_, err := w.scan(nil)
	return err
}

// durableLocked returns the durable horizon as a cursor. Caller holds
// mu (and has ensured the tail is known).
func (w *wal) durableLocked() Cursor {
	if w.started {
		return Cursor{Seg: w.durSeg, Off: w.durOff}
	}
	// At rest every valid byte on disk is the durable horizon.
	if w.tailIndex == 0 {
		return Cursor{}
	}
	off := w.tailSize
	if off < int64(len(segmentHeader)) {
		off = int64(len(segmentHeader))
	}
	return Cursor{Seg: w.tailIndex, Off: off}
}

// ReadFrom streams records from cur toward the durable horizon, calling
// fn for each, up to maxRecords per call (<= 0 selects 1024). It
// returns the cursor after the last streamed record — pass it back in
// to resume — plus the record count. A cursor inside pruned segments
// fails with ErrCursorPruned; one that does not name a record boundary
// fails with ErrCursorInvalid. Safe to call while the store is
// appending: it reads only bytes at or below the durable horizon, which
// always lands on a frame boundary.
func (s *Store) ReadFrom(cur Cursor, maxRecords int, fn func(Record) error) (Cursor, int, error) {
	if maxRecords <= 0 {
		maxRecords = 1024
	}
	s.wal.mu.Lock()
	if s.wal.closed {
		s.wal.mu.Unlock()
		return cur, 0, ErrStoreClosed
	}
	if err := s.wal.ensureTailLocked(); err != nil {
		s.wal.mu.Unlock()
		return cur, 0, err
	}
	dur := s.wal.durableLocked()
	segs, err := s.wal.segments()
	var prunedEnd map[uint64]int64
	if len(s.wal.prunedEnd) > 0 {
		prunedEnd = make(map[uint64]int64, len(s.wal.prunedEnd))
		for k, v := range s.wal.prunedEnd {
			prunedEnd[k] = v
		}
	}
	s.wal.mu.Unlock()
	if err != nil {
		return cur, 0, err
	}
	if len(segs) == 0 || dur.IsZero() {
		if cur.IsZero() {
			return cur, 0, nil
		}
		return cur, 0, fmt.Errorf("%w: log is empty", ErrCursorInvalid)
	}
	if cur.IsZero() {
		if segs[0] != 1 {
			// Segment indices start at 1; a higher floor means history was
			// pruned, and "from the beginning" cannot be honored.
			return cur, 0, fmt.Errorf("%w: log starts at segment %08d", ErrCursorPruned, segs[0])
		}
		cur = Cursor{Seg: segs[0], Off: int64(len(segmentHeader))}
	}
	if cur.Off < int64(len(segmentHeader)) {
		cur.Off = int64(len(segmentHeader))
	}
	// A cursor at the *end* of a pruned sealed segment lost nothing —
	// every record at or before it was already streamed. Roll it forward
	// across the pruned boundary (chaining through empty sealed segments)
	// instead of stranding the caught-up follower a checkpoint barrier
	// just pruned out from under it.
	for cur.Seg < segs[0] {
		end, ok := prunedEnd[cur.Seg]
		if !ok || cur.Off != end {
			break
		}
		cur = Cursor{Seg: cur.Seg + 1, Off: int64(len(segmentHeader))}
	}
	if cur.Seg < segs[0] {
		return cur, 0, fmt.Errorf("%w: segment %08d < oldest %08d", ErrCursorPruned, cur.Seg, segs[0])
	}
	if dur.Less(cur) {
		return cur, 0, fmt.Errorf("%w: %s is past the durable tail %s", ErrCursorInvalid, cur, dur)
	}

	n := 0
	for n < maxRecords && cur.Less(dur) {
		bound, err := s.readSegment(&cur, dur, maxRecords-n, &n, fn)
		if err != nil {
			return cur, n, err
		}
		if cur.Off >= bound && cur.Seg < dur.Seg {
			// Sealed segment exhausted: hop to the next one.
			cur = Cursor{Seg: cur.Seg + 1, Off: int64(len(segmentHeader))}
			continue
		}
		if n == 0 {
			// No progress and no hop: the cursor sits at the durable
			// horizon (or fn consumed nothing) — nothing more to stream.
			break
		}
		if cur.Off >= bound {
			break
		}
	}
	return cur, n, nil
}

// readSegment streams records inside one segment, advancing *cur and
// *n, and returns the read bound used for that segment.
func (s *Store) readSegment(cur *Cursor, dur Cursor, budget int, n *int, fn func(Record) error) (int64, error) {
	path := s.wal.segPath(cur.Seg)
	f, err := s.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: segment %08d removed", ErrCursorPruned, cur.Seg)
		}
		return 0, err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	bound := size
	if cur.Seg == dur.Seg && dur.Off < bound {
		bound = dur.Off
	}
	if cur.Off > bound {
		return bound, fmt.Errorf("%w: offset %d past segment %08d end %d", ErrCursorInvalid, cur.Off, cur.Seg, bound)
	}
	if cur.Off == bound {
		return bound, nil
	}
	if _, err := f.Seek(cur.Off, io.SeekStart); err != nil {
		return bound, err
	}
	r := bufio.NewReaderSize(io.LimitReader(f, bound-cur.Off), 1<<16)
	stop := *n + budget
	for *n < stop && cur.Off < bound {
		rec, sz, err := readRecord(r)
		if err != nil {
			// Bytes below the durable horizon are CRC-valid by the
			// prefix-recovery contract, so any decode failure here means
			// the cursor was not a record boundary.
			return bound, fmt.Errorf("%w: %v", ErrCursorInvalid, err)
		}
		if err := fn(rec); err != nil {
			return bound, err
		}
		cur.Off += sz
		*n++
	}
	return bound, nil
}
