package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects the WAL's fsync discipline.
type SyncPolicy uint8

const (
	// SyncBatch (the default) appends without waiting: a background
	// syncer fsyncs soon after, coalescing bursts into one fsync. A crash
	// can lose the last few batches but never tears committed state —
	// recovery still sees a valid prefix.
	SyncBatch SyncPolicy = iota
	// SyncAlways makes Append return only after the record is durable.
	// Concurrent appenders share fsyncs (group commit): a leader syncs
	// the tail once for every waiter behind the same watermark.
	SyncAlways
	// SyncNone fsyncs only at segment seal and Close — benchmarks and
	// tests that simulate the disk elsewhere.
	SyncNone
)

// String names the policy as the rimd -fsync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	}
	return "unknown"
}

// ParseSyncPolicy inverts SyncPolicy.String.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, batch, or none)", s)
}

// ErrStoreClosed is returned by operations on a closed Store.
var ErrStoreClosed = errors.New("store: closed")

const walSuffix = ".wal"

// wal is the segmented log writer. All writer state is guarded by mu;
// fsync runs under syncMu→mu so concurrent SyncAlways appenders group
// behind one leader.
type wal struct {
	fs       FS
	dir      string
	segBytes int64
	policy   SyncPolicy
	mx       *metrics

	mu      sync.Mutex
	f       File
	index   uint64 // active segment index
	size    int64  // bytes in the active segment
	written int64  // process-local logical append watermark
	started bool
	closed  bool
	failed  error  // sticky fail-stop error: first write/fsync failure
	encBuf  []byte // reusable frame-encode buffer (guarded by mu)

	synced atomic.Int64 // durable watermark (process-local)
	syncMu sync.Mutex   // serializes group-commit leaders

	// durable horizon as a log position (segment, offset): the bytes a
	// replication reader may stream. Guarded by mu; advances on fsync
	// (or on write under SyncNone).
	durSeg uint64
	durOff int64

	// prunedEnd remembers each pruned segment's final size. A follower
	// caught up to the end of a sealed segment holds a cursor the next
	// checkpoint barrier would otherwise strand (the segment is gone,
	// but no record past the cursor was lost) — ReadFrom uses this map
	// to roll such cursors forward across the pruned boundary.
	// In-memory only: after a restart those cursors resync instead.
	prunedEnd map[uint64]int64

	nmu      sync.Mutex    // guards notifyCh
	notifyCh chan struct{} // replication kick: durable horizon advanced

	kick chan struct{} // SyncBatch: wake the background syncer
	done chan struct{} // closed to stop the syncer
	idle chan struct{} // closed by the syncer when it exits

	// tail knowledge from the last Scan, reused by start so the append
	// path doesn't rescan segments recovery already walked.
	tailKnown bool
	tailIndex uint64
	tailSize  int64
}

func (w *wal) segPath(index uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%08d%s", index, walSuffix))
}

// segments lists the existing segment indices, ascending.
func (w *wal) segments() ([]uint64, error) {
	ents, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var idx []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, walSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(name, walSuffix), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		idx = append(idx, n)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx, nil
}

// start prepares the append position: heal the torn tail of the last
// segment (or create segment 1) and open it for appending. Called lazily
// by the first Append under mu.
func (w *wal) start() error {
	if !w.tailKnown {
		// No prior Scan located the valid end — find it now.
		if _, err := w.scan(nil); err != nil {
			return err
		}
	}
	if w.tailIndex == 0 {
		return w.createSegment(1)
	}
	path := w.segPath(w.tailIndex)
	f, err := w.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if w.tailSize < int64(len(segmentHeader)) {
		// Crash during segment creation left a partial header; rewrite it.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		if _, err := io.WriteString(f, segmentHeader); err != nil {
			f.Close()
			return err
		}
		w.tailSize = int64(len(segmentHeader))
	} else if err := f.Truncate(w.tailSize); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(w.tailSize, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	w.f, w.index, w.size = f, w.tailIndex, w.tailSize
	w.started = true
	w.durSeg, w.durOff = w.index, w.size
	return nil
}

// createSegment opens a fresh segment (header written, file and directory
// fsynced) and makes it the active one.
func (w *wal) createSegment(index uint64) error {
	path := w.segPath(index)
	f, err := w.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, segmentHeader); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.fs, w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.index, w.size = f, index, int64(len(segmentHeader))
	w.started, w.tailKnown = true, true
	w.tailIndex, w.tailSize = index, w.size
	w.durSeg, w.durOff = index, w.size
	return nil
}

// fail records the sticky fail-stop error. After the first write or fsync
// failure the WAL refuses further appends: retrying an fsync that already
// failed can silently drop the dirty pages it claimed to flush.
func (w *wal) fail(err error) error {
	if w.failed == nil {
		w.failed = err
		w.mx.errors.Inc()
	}
	return w.failed
}

// append frames recs, writes them to the active segment in one write
// (rotating first when the segment is full), and applies the sync
// policy once for the whole group. Encoding runs under mu into a
// reused buffer, so the steady-state append path performs zero
// allocations and a multi-record group costs one syscall and at most
// one fsync.
func (w *wal) append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrStoreClosed
	}
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return err
	}
	if !w.started {
		if err := w.start(); err != nil {
			err = w.fail(err)
			w.mu.Unlock()
			return err
		}
	}
	frame := w.encBuf[:0]
	for i := range recs {
		frame = appendRecord(frame, recs[i])
	}
	w.encBuf = frame
	if w.size > int64(len(segmentHeader)) && w.size+int64(len(frame)) > w.segBytes {
		if err := w.rotateLocked(); err != nil {
			err = w.fail(err)
			w.mu.Unlock()
			return err
		}
	}
	t0 := time.Now()
	n, err := w.f.Write(frame)
	if err != nil {
		// A partial write leaves a torn tail; recovery heals it, but this
		// writer is done (the segment's byte position is now unknown).
		_ = n
		err = w.fail(fmt.Errorf("store: wal write: %w", err))
		w.mu.Unlock()
		return err
	}
	w.size += int64(len(frame))
	w.written += int64(len(frame))
	end := w.written
	if w.policy == SyncNone {
		// No fsync discipline: the written watermark is the horizon.
		w.durSeg, w.durOff = w.index, w.size
	}
	w.mu.Unlock()

	switch w.policy {
	case SyncAlways:
		if err := w.syncTo(end); err != nil {
			return err
		}
	case SyncBatch:
		select {
		case w.kick <- struct{}{}:
		default: // a wakeup is already pending; it will cover this append
		}
	case SyncNone:
		w.kickNotify()
	}
	w.mx.appendNs.Observe(float64(time.Since(t0).Nanoseconds()))
	w.mx.walRecords.Add(int64(len(recs)))
	w.mx.walBytes.Add(int64(len(frame)))
	return nil
}

// syncTo blocks until the durable watermark covers end. One leader fsyncs
// for every waiter queued behind the same watermark (group commit).
func (w *wal) syncTo(end int64) error {
	if w.synced.Load() >= end {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= end {
		return nil // a leader that ran while we waited covered us
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if w.closed || w.f == nil {
		return ErrStoreClosed
	}
	cover := w.written
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		return w.fail(fmt.Errorf("store: wal fsync: %w", err))
	}
	w.mx.fsyncNs.Observe(float64(time.Since(t0).Nanoseconds()))
	storeMax(&w.synced, cover)
	w.durSeg, w.durOff = w.index, w.size
	w.kickNotify()
	return nil
}

// kickNotify pokes the replication notifier (if registered) without
// blocking. Safe to call with or without mu held.
func (w *wal) kickNotify() {
	w.nmu.Lock()
	ch := w.notifyCh
	w.nmu.Unlock()
	if ch != nil {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// storeMax raises a monotonically to at least v.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// syncLoop is the SyncBatch background syncer.
func (w *wal) syncLoop() {
	defer close(w.idle)
	for {
		select {
		case <-w.kick:
			w.mu.Lock()
			end := w.written
			w.mu.Unlock()
			_ = w.syncTo(end) // sticky error surfaces on the next append
		case <-w.done:
			return
		}
	}
}

// rotateLocked seals the active segment (fsync, close) and starts the
// next one. Caller holds mu.
func (w *wal) rotateLocked() error {
	if w.f != nil {
		t0 := time.Now()
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: seal fsync: %w", err)
		}
		w.mx.fsyncNs.Observe(float64(time.Since(t0).Nanoseconds()))
		storeMax(&w.synced, w.written)
		w.durSeg, w.durOff = w.index, w.size
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	w.mx.rotations.Inc()
	return w.createSegment(w.index + 1)
}

// scan walks every segment in order, invoking fn (when non-nil) per valid
// record, and reports tail state. Caller must not be appending
// concurrently; scan is the recovery-time read pass. Caller holds mu or
// has exclusive use.
func (w *wal) scan(fn func(Record) error) (TailInfo, error) {
	segs, err := w.segments()
	if err != nil {
		return TailInfo{}, err
	}
	var tail TailInfo
	if len(segs) == 0 {
		w.tailKnown, w.tailIndex, w.tailSize = true, 0, 0
		return tail, nil
	}
	for si, index := range segs {
		last := si == len(segs)-1
		info, err := w.scanSegment(index, last, fn)
		if err != nil {
			return info, err
		}
		if last {
			tail = info
			w.tailKnown, w.tailIndex, w.tailSize = true, index, info.ValidSize
		}
	}
	return tail, nil
}

// scanSegment reads one segment. In the last segment a short or
// CRC-damaged final record is a torn tail (reported, healed by start);
// anywhere else it is ErrCorrupt.
func (w *wal) scanSegment(index uint64, last bool, fn func(Record) error) (TailInfo, error) {
	path := w.segPath(index)
	f, err := w.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return TailInfo{}, err
	}
	defer f.Close()
	fileSize, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return TailInfo{}, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return TailInfo{}, err
	}
	r := bufio.NewReaderSize(f, 1<<16)

	info := TailInfo{Segment: index}
	head := make([]byte, len(segmentHeader))
	if _, err := io.ReadFull(r, head); err != nil || string(head) != segmentHeader {
		if last {
			// Crash during segment creation: nothing valid in this file.
			info.Truncated, info.ValidSize, info.Dropped = true, 0, fileSize
			return info, nil
		}
		return info, fmt.Errorf("%w: segment %08d has bad header", ErrCorrupt, index)
	}
	valid := int64(len(segmentHeader))
	for {
		rec, n, err := readRecord(r)
		switch {
		case err == io.EOF:
			info.ValidSize = valid
			return info, nil
		case errors.Is(err, ErrTruncated):
			if !last {
				return info, fmt.Errorf("%w: segment %08d truncated but not last: %v", ErrCorrupt, index, err)
			}
			info.Truncated, info.ValidSize, info.Dropped = true, valid, fileSize-valid
			return info, nil
		case errors.Is(err, ErrCorrupt):
			if !last {
				return info, fmt.Errorf("segment %08d: %w", index, err)
			}
			// Damage at the very tail of the log: indistinguishable from a
			// torn write into reused space, so heal it — but flag it so the
			// operator sees more than a clean cut.
			info.Truncated, info.Corrupt = true, true
			info.ValidSize, info.Dropped = valid, fileSize-valid
			return info, nil
		case err != nil:
			return info, err
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return info, err
			}
		}
		valid += n
	}
}

// closeWAL stops the syncer and seals the active segment.
func (w *wal) closeWAL() error {
	if w.done != nil {
		close(w.done)
		<-w.idle
		w.done = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	var err error
	if w.failed == nil {
		err = w.f.Sync()
		if err == nil {
			w.durSeg, w.durOff = w.index, w.size
		}
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// TailInfo describes the state of the WAL's final segment after a scan.
type TailInfo struct {
	Truncated bool   // a torn tail was found (and will be healed)
	Corrupt   bool   // the tail was CRC-damaged rather than cleanly cut
	Segment   uint64 // segment index holding the tail
	ValidSize int64  // byte offset of the end of the last valid frame
	Dropped   int64  // bytes past ValidSize that recovery discards
}
