package store

import (
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/metrics.golden")

// TestStoreMetricsGolden locks the rim_store_* exposition skeleton:
// family order, names, HELP/TYPE lines, and histogram bucket labels.
// Values are normalized to V (timings vary); refresh with
// `go test ./internal/store/ -run Golden -update`.
func TestStoreMetricsGolden(t *testing.T) {
	reg := obs.NewRegistry()
	s := mustOpen(t, testOpts(t, t.TempDir(), func(o *Options) { o.Registry = reg; o.Sync = SyncAlways }))
	defer s.Close()

	// Touch every family so the golden shows live counters, not zeros.
	if err := s.Append(rec(RecordBatch, "g", 1, "m add id=0 x=1 y=2\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint("g", 1, []byte("state")); err != nil {
		t.Fatal(err)
	}
	s.CountRecovery(3, 17)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	got := normalizeExposition(sb.String())

	const path = "testdata/metrics.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("rim_store_* exposition drifted from %s (refresh with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
	if _, err := obs.CheckExposition(strings.NewReader(sb.String())); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}

// TestMetricsSharedRegistry: two Stores against one registry must share
// metric families instead of colliding on registration.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	s1 := mustOpen(t, testOpts(t, t.TempDir(), func(o *Options) { o.Registry = reg }))
	defer s1.Close()
	s2 := mustOpen(t, testOpts(t, t.TempDir(), func(o *Options) { o.Registry = reg }))
	defer s2.Close()
	if err := s1.Append(rec(RecordBatch, "a", 1, "x")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(rec(RecordBatch, "b", 1, "y")); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["rim_store_wal_records_total"] != 2 {
		t.Fatalf("shared counter = %v, want 2", snap["rim_store_wal_records_total"])
	}
}

// normalizeExposition replaces every sample value with V, keeping
// comments, names, and label sets verbatim (same convention as the serve
// golden test).
func normalizeExposition(s string) string {
	lines := strings.Split(s, "\n")
	for i, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if j := strings.LastIndexByte(line, ' '); j >= 0 {
			lines[i] = line[:j] + " V"
		}
	}
	return strings.Join(lines, "\n")
}
