package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
)

func testOpts(t *testing.T, dir string, mut func(*Options)) Options {
	t.Helper()
	o := Options{Dir: dir, Sync: SyncNone, Registry: obs.NewRegistry()}
	if mut != nil {
		mut(&o)
	}
	return o
}

func mustOpen(t *testing.T, o Options) *Store {
	t.Helper()
	s, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rec(kind RecordKind, sess string, seq uint64, payload string) Record {
	return Record{Kind: kind, Session: sess, Seq: seq, Payload: []byte(payload)}
}

func scanAll(t *testing.T, s *Store) ([]Record, TailInfo) {
	t.Helper()
	var got []Record
	tail, err := s.Scan(func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return got, tail
}

func TestWALAppendScanRoundTrip(t *testing.T) {
	s := mustOpen(t, testOpts(t, t.TempDir(), nil))
	defer s.Close()

	want := []Record{
		rec(RecordCreate, "alpha", 0, "rimd-trace v1 n=0\n"),
		rec(RecordBatch, "alpha", 3, "m add id=0 x=1 y=2\nm add id=1 x=3 y=4\nm set id=0 r=1\n"),
		rec(RecordBatch, "alpha", 4, "m remove id=1\n"),
		rec(RecordDrop, "alpha", 4, ""),
		rec(RecordCreate, "sess/with spaces%", 0, "rimd-trace v1 n=0\n"),
	}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, tail := scanAll(t, s)
	if tail.Truncated {
		t.Fatalf("unexpected torn tail: %+v", tail)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		if w.Payload == nil {
			w.Payload = []byte{}
		}
		g := got[i]
		if g.Payload == nil {
			g.Payload = []byte{}
		}
		if g.Kind != w.Kind || g.Session != w.Session || g.Seq != w.Seq || string(g.Payload) != string(w.Payload) {
			t.Errorf("record %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestWALReopenAppends(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testOpts(t, dir, nil))
	if err := s.Append(rec(RecordBatch, "a", 1, "one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, testOpts(t, dir, nil))
	defer s2.Close()
	if err := s2.Append(rec(RecordBatch, "a", 2, "two")); err != nil {
		t.Fatal(err)
	}
	got, _ := scanAll(t, s2)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("reopened log: %+v", got)
	}
}

func TestWALRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every ~2 records forces a rotation.
	s := mustOpen(t, testOpts(t, dir, func(o *Options) { o.SegmentBytes = 128 }))
	defer s.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Append(rec(RecordBatch, "a", uint64(i+1), fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := s.wal.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected >=3 segments at 128B each, got %v", segs)
	}
	got, _ := scanAll(t, s)
	if len(got) != n {
		t.Fatalf("scan across segments: %d records, want %d", len(got), n)
	}

	// A rotate-then-prune barrier keeps only the new active segment.
	active, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	removed, err := s.Prune(active)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(segs) {
		t.Fatalf("pruned %d segments, want %d", removed, len(segs))
	}
	got, _ = scanAll(t, s)
	if len(got) != 0 {
		t.Fatalf("records survived prune: %+v", got)
	}
	if err := s.Append(rec(RecordBatch, "a", 99, "after-prune")); err != nil {
		t.Fatal(err)
	}
	if got, _ = scanAll(t, s); len(got) != 1 || got[0].Seq != 99 {
		t.Fatalf("post-prune append: %+v", got)
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncBatch, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			s := mustOpen(t, testOpts(t, t.TempDir(), func(o *Options) { o.Sync = policy }))
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						if err := s.Append(rec(RecordBatch, fmt.Sprintf("s%d", c), uint64(i+1), "x")); err != nil {
							t.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := mustOpen(t, testOpts(t, s.Dir(), nil))
			defer s2.Close()
			got, tail := scanAll(t, s2)
			if len(got) != 100 || tail.Truncated {
				t.Fatalf("got %d records (tail %+v), want 100 clean", len(got), tail)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"always", SyncAlways, false},
		{"batch", SyncBatch, false},
		{"", SyncBatch, false},
		{"none", SyncNone, false},
		{"yolo", 0, true},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestWALTornTailEveryOffset is the store-level half of the
// kill-at-every-offset property: build a WAL, then for every byte offset
// k of the segment file, truncate a copy to k bytes and require the scan
// to recover exactly the records whose frames fit entirely within k —
// a strict prefix, never a partial or corrupted record.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testOpts(t, dir, nil))
	const n = 12
	ends := make([]int64, 0, n+1) // cumulative frame end offsets
	off := int64(len(segmentHeader))
	ends = append(ends, off)
	for i := 0; i < n; i++ {
		r := rec(RecordBatch, "sess", uint64(i+1), fmt.Sprintf("payload %d with some bulk", i))
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
		off += int64(len(appendRecord(nil, r)))
		ends = append(ends, off)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "wal", "00000001.wal")
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != off {
		t.Fatalf("segment size %d, bookkeeping says %d", len(full), off)
	}

	for k := 0; k <= len(full); k++ {
		// Expected record count: the largest i with ends[i] <= k.
		wantRecs := 0
		for i, e := range ends {
			if e <= int64(k) {
				wantRecs = i
			}
		}
		cut := t.TempDir()
		if err := os.MkdirAll(filepath.Join(cut, "wal"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cut, "wal", "00000001.wal"), full[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		sc := mustOpen(t, testOpts(t, cut, nil))
		var got []Record
		tail, err := sc.Scan(func(r Record) error { got = append(got, r); return nil })
		if err != nil {
			t.Fatalf("offset %d: scan failed: %v", k, err)
		}
		if len(got) != wantRecs {
			t.Fatalf("offset %d: recovered %d records, want %d", k, len(got), wantRecs)
		}
		for i, g := range got {
			if g.Seq != uint64(i+1) {
				t.Fatalf("offset %d: record %d has seq %d", k, i, g.Seq)
			}
		}
		atBoundary := int64(k) == ends[wantRecs]
		if !atBoundary && !tail.Truncated {
			t.Fatalf("offset %d: mid-record cut not reported as torn tail (%+v)", k, tail)
		}
		// Healing: appending after the scan must truncate the tail and
		// produce a valid log again.
		if err := sc.Append(rec(RecordBatch, "sess", 999, "healed")); err != nil {
			t.Fatalf("offset %d: append after heal: %v", k, err)
		}
		got2, tail2 := scanAll(t, sc)
		if len(got2) != wantRecs+1 || tail2.Truncated || got2[len(got2)-1].Seq != 999 {
			t.Fatalf("offset %d: after heal got %d records (tail %+v)", k, len(got2), tail2)
		}
		sc.Close()
	}
}

// TestWALCorruptMiddleFails flips a byte in a sealed (non-final) segment
// and requires the scan to fail loudly with ErrCorrupt instead of
// silently resuming at the next segment.
func TestWALCorruptMiddleFails(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testOpts(t, dir, func(o *Options) { o.SegmentBytes = 64 }))
	for i := 0; i < 10; i++ {
		if err := s.Append(rec(RecordBatch, "a", uint64(i+1), "some payload bytes here")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg1 := filepath.Join(dir, "wal", "00000001.wal")
	raw, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(segmentHeader)+frameHead+2] ^= 0xFF
	if err := os.WriteFile(seg1, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, testOpts(t, dir, nil))
	defer s2.Close()
	_, err = s2.Scan(nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt middle segment: err = %v, want ErrCorrupt", err)
	}
}

// TestWALCorruptTailHealsButFlags damages the final record of the last
// segment: the scan heals (prefix preserved) but flags the tail as
// corrupt rather than cleanly truncated.
func TestWALCorruptTailHealsButFlags(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testOpts(t, dir, nil))
	for i := 0; i < 3; i++ {
		if err := s.Append(rec(RecordBatch, "a", uint64(i+1), "abcdefgh")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal", "00000001.wal")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // damage the last record's payload
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, testOpts(t, dir, nil))
	defer s2.Close()
	got, tail := scanAll(t, s2)
	if len(got) != 2 || !tail.Truncated || !tail.Corrupt {
		t.Fatalf("corrupt tail: %d records, tail %+v", len(got), tail)
	}
}

// TestWALFaultFSCrashSweep drives the write path through FaultFS with a
// crash budget at every offset: the written prefix must always scan to a
// strict record prefix, mirroring the byte-truncation sweep but through
// the injected-fault write path (short final write, then a dead FS).
func TestWALFaultFSCrashSweep(t *testing.T) {
	// First, measure the fault-free byte stream.
	probeDir := t.TempDir()
	probe := mustOpen(t, testOpts(t, probeDir, nil))
	records := make([]Record, 8)
	for i := range records {
		records[i] = rec(RecordBatch, "s", uint64(i+1), fmt.Sprintf("crash sweep payload %d", i))
		if err := probe.Append(records[i]); err != nil {
			t.Fatal(err)
		}
	}
	probe.Close()
	raw, err := os.ReadFile(filepath.Join(probeDir, "wal", "00000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(raw))

	for budget := int64(0); budget <= total; budget += 7 { // stride keeps the sweep fast; offsets inside and at frame bounds
		dir := t.TempDir()
		ffs := NewFaultFS(OSFS{})
		s, err := Open(testOpts(t, dir, func(o *Options) { o.FS = ffs }))
		if err != nil {
			t.Fatal(err)
		}
		ffs.CrashAfterBytes(budget)
		for _, r := range records {
			if err := s.Append(r); err != nil {
				break // the power went out
			}
		}
		// Reboot: recover through a fresh, healthy FS.
		s2 := mustOpen(t, testOpts(t, dir, nil))
		var got []Record
		if _, err := s2.Scan(func(r Record) error { got = append(got, r); return nil }); err != nil {
			t.Fatalf("budget %d: scan: %v", budget, err)
		}
		for i, g := range got {
			if g.Seq != uint64(i+1) || string(g.Payload) != string(records[i].Payload) {
				t.Fatalf("budget %d: recovered record %d = %+v, not a prefix", budget, i, g)
			}
		}
		s2.Close()
	}
}

// TestWALFsyncErrorIsSticky: after an injected fsync failure the WAL
// fail-stops — every later append reports the original error instead of
// pretending the log is still durable.
func TestWALFsyncErrorIsSticky(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	s, err := Open(testOpts(t, t.TempDir(), func(o *Options) { o.FS = ffs; o.Sync = SyncAlways }))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(rec(RecordBatch, "a", 1, "ok")); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncs(1, nil)
	if err := s.Append(rec(RecordBatch, "a", 2, "boom")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("append with failing fsync: %v", err)
	}
	if err := s.Append(rec(RecordBatch, "a", 3, "after")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("append after fsync failure not sticky: %v", err)
	}
}

// TestWALShortWriteFails: an injected short write is reported, not
// swallowed.
func TestWALShortWriteFails(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	s, err := Open(testOpts(t, t.TempDir(), func(o *Options) { o.FS = ffs }))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(rec(RecordBatch, "a", 1, "full")); err != nil {
		t.Fatal(err)
	}
	ffs.ShortWrites(5)
	if err := s.Append(rec(RecordBatch, "a", 2, "this will land short")); err == nil {
		t.Fatal("short write not reported")
	}
}

func TestRecordEncodeDecode(t *testing.T) {
	want := rec(RecordBatch, "κ-session", 1<<40, "payload\x00with\xffbinary")
	frame := appendRecord(nil, want)
	got, n, err := readRecord(bytes.NewReader(frame))
	if err != nil || n != int64(len(frame)) {
		t.Fatalf("readRecord: n=%d err=%v", n, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}
