package store

import "repro/internal/obs"

// The store's metric set, registered in a shared obs.Registry under
// rim_store_* names (the exposition skeleton is locked by the golden
// test). Histogram timings are recorded unconditionally — they sit at
// batch granularity, not per-mutation, so the cost is two clock reads
// per WAL append.
type metrics struct {
	appendNs   *obs.Histogram
	fsyncNs    *obs.Histogram
	walRecords *obs.Counter
	walBytes   *obs.Counter
	rotations  *obs.Counter
	errors     *obs.Counter

	ckptBytes *obs.Histogram
	ckptNs    *obs.Histogram
	ckpts     *obs.Counter

	recoveries      *obs.Counter
	replayedBatches *obs.Counter
	tornBytes       *obs.Counter
}

// registerMetrics binds the rim_store_* families into reg (idempotent —
// re-registration returns the existing metrics, so multiple Stores in one
// process share one family set).
func registerMetrics(reg *obs.Registry) *metrics {
	nsBounds := []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	return &metrics{
		appendNs: reg.Histogram("rim_store_wal_append_ns",
			"WAL append latency (encode+write+policy fsync) in nanoseconds.", nsBounds...),
		fsyncNs: reg.Histogram("rim_store_fsync_ns",
			"WAL fsync latency in nanoseconds.", nsBounds...),
		walRecords: reg.Counter("rim_store_wal_records_total",
			"Records appended to the WAL."),
		walBytes: reg.Counter("rim_store_wal_bytes_total",
			"Bytes appended to the WAL (frames included)."),
		rotations: reg.Counter("rim_store_wal_rotations_total",
			"WAL segment rotations."),
		errors: reg.Counter("rim_store_errors_total",
			"Store operations failed (append, fsync, checkpoint)."),
		ckptBytes: reg.Histogram("rim_store_checkpoint_bytes",
			"Checkpoint file sizes in bytes.", 1<<10, 1<<12, 1<<14, 1<<16, 1<<18, 1<<20, 1<<24),
		ckptNs: reg.Histogram("rim_store_checkpoint_ns",
			"Checkpoint write latency (write+fsync+rename+dirsync) in nanoseconds.", nsBounds...),
		ckpts: reg.Counter("rim_store_checkpoints_total",
			"Checkpoints written."),
		recoveries: reg.Counter("rim_store_recoveries_total",
			"Recovery passes completed."),
		replayedBatches: reg.Counter("rim_store_recovery_replayed_batches_total",
			"WAL batch records replayed during recovery."),
		tornBytes: reg.Counter("rim_store_recovery_torn_bytes_total",
			"Bytes discarded from torn WAL tails during recovery."),
	}
}
