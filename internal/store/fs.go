package store

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the store writes through. The
// production implementation is OSFS; tests substitute FaultFS to inject
// torn writes, short writes, fsync failures, and crash-at-offset power
// cuts without touching a real disk's failure modes.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
}

// File is the per-file surface: sequential reads for recovery scans,
// appends for the WAL, Sync for the fsync discipline, Truncate for
// sealing a torn tail.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OSFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                    { return os.Remove(name) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error)  { return os.ReadDir(name) }

// syncDir fsyncs a directory, making a just-renamed or just-created
// entry durable. Required after every checkpoint rename and segment
// creation: without it, a crash can roll back the rename even though the
// file's own bytes were fsynced.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// syncParentDir fsyncs the directory containing path.
func syncParentDir(fsys FS, path string) error {
	return syncDir(fsys, filepath.Dir(path))
}
