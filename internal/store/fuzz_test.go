package store

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the record reader and checks
// the decode invariants that recovery leans on:
//
//   - readRecord never panics and never returns a record alongside an
//     error;
//   - every error is one of io.EOF (clean boundary), ErrTruncated, or
//     ErrCorrupt — recovery classifies on exactly these;
//   - a successful decode survives an encode/decode round trip
//     unchanged, and the reported frame size never runs past the input.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segmentHeader))
	f.Add(appendRecord(nil, Record{Kind: RecordCreate, Session: "s", Seq: 0, Payload: []byte("rimd-trace v1 n=0\n")}))
	f.Add(appendRecord(nil, Record{Kind: RecordBatch, Session: "alpha", Seq: 42, Payload: []byte("m add id=7 x=1.5 y=-2\n")}))
	f.Add(appendRecord(nil, Record{Kind: RecordDrop, Session: "alpha", Seq: 42}))
	// Two records back to back.
	f.Add(appendRecord(appendRecord(nil, Record{Kind: RecordBatch, Session: "a", Seq: 1, Payload: []byte("x")}),
		Record{Kind: RecordBatch, Session: "a", Seq: 2, Payload: []byte("y")}))
	// A frame cut mid-body.
	full := appendRecord(nil, Record{Kind: RecordBatch, Session: "sess", Seq: 9, Payload: []byte("torn")})
	f.Add(full[:len(full)-2])
	// A frame with a flipped payload byte (CRC mismatch).
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0x01
	f.Add(bad)
	// An insane length word.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		consumed := int64(0)
		for {
			rec, n, err := readRecord(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unclassified decode error: %v", err)
				}
				return
			}
			if n <= frameHead {
				t.Fatalf("impossible frame size %d", n)
			}
			consumed += n
			if consumed > int64(len(data)) {
				t.Fatalf("reported size runs past input: consumed %d of %d", consumed, len(data))
			}
			// Round trip: the decoded record must encode and decode back
			// to itself.
			enc := appendRecord(nil, rec)
			rec2, n2, err2 := readRecord(bytes.NewReader(enc))
			if err2 != nil || n2 != int64(len(enc)) || !reflect.DeepEqual(rec2, rec) {
				t.Fatalf("round trip: %+v / %+v (n2=%d err=%v)", rec, rec2, n2, err2)
			}
		}
	})
}
