package store

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Checkpoint files. One file per (session, seq):
//
//	ckpt/<escaped-session>-<seq as 16 hex digits>.ckpt
//
// with the content
//
//	rimckpt v1 session=<escaped> seq=<n> len=<payload bytes> crc=<crc32c hex>\n
//	<payload>
//
// The payload is opaque to the store (the serving layer serializes a
// session's maintainer state there). Writes are crash-atomic: payload
// goes to ckpt/tmp/ first, is fsynced, renamed into place, and the
// directory is fsynced — a checkpoint either exists completely and
// validly or not at all. Temp files live in a subdirectory rather than
// under a dotted name so no session ID, however escaped, can collide
// with one. LatestCheckpoints quietly skips anything that fails
// validation (a damaged payload, a foreign file), so a crash
// mid-checkpoint costs nothing but the checkpoint.

const ckptSuffix = ".ckpt"

// Checkpoint is one validated checkpoint file.
type Checkpoint struct {
	Session string
	Seq     uint64
	Payload []byte
	Path    string
}

func escapeSession(id string) string { return url.PathEscape(id) }

func ckptName(session string, seq uint64) string {
	return fmt.Sprintf("%s-%016x%s", escapeSession(session), seq, ckptSuffix)
}

// parseCkptName inverts ckptName.
func parseCkptName(name string) (session string, seq uint64, ok bool) {
	if !strings.HasSuffix(name, ckptSuffix) {
		return "", 0, false
	}
	stem := strings.TrimSuffix(name, ckptSuffix)
	i := strings.LastIndexByte(stem, '-')
	if i < 0 || len(stem)-i-1 != 16 {
		return "", 0, false
	}
	seq, err := strconv.ParseUint(stem[i+1:], 16, 64)
	if err != nil {
		return "", 0, false
	}
	session, err = url.PathUnescape(stem[:i])
	if err != nil {
		return "", 0, false
	}
	return session, seq, true
}

// writeCheckpoint persists one checkpoint crash-atomically and garbage
// collects older checkpoints of the same session.
func (s *Store) writeCheckpoint(session string, seq uint64, payload []byte) error {
	t0 := time.Now()
	name := ckptName(session, seq)
	final := filepath.Join(s.ckptDir, name)
	tmp := filepath.Join(s.ckptDir, "tmp", name)

	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	header := fmt.Sprintf("rimckpt v1 session=%s seq=%d len=%d crc=%08x\n",
		escapeSession(session), seq, len(payload), crc32.Checksum(payload, crcTable))
	if _, err := io.WriteString(f, header); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.mx.errors.Inc()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: checkpoint %s: %w", session, err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.mx.errors.Inc()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: checkpoint %s: %w", session, err)
	}
	if err := syncDir(s.fs, s.ckptDir); err != nil {
		s.mx.errors.Inc()
		return fmt.Errorf("store: checkpoint %s: dir sync: %w", session, err)
	}
	s.mx.ckpts.Inc()
	s.mx.ckptBytes.Observe(float64(len(header) + len(payload)))
	s.mx.ckptNs.Observe(float64(time.Since(t0).Nanoseconds()))
	s.gcCheckpoints(session, seq)
	return nil
}

// gcCheckpoints removes this session's checkpoints older than keep
// (best-effort; recovery picks the newest valid one regardless).
func (s *Store) gcCheckpoints(session string, keep uint64) {
	ents, err := s.fs.ReadDir(s.ckptDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if sess, seq, ok := parseCkptName(e.Name()); ok && sess == session && seq < keep {
			_ = s.fs.Remove(filepath.Join(s.ckptDir, e.Name()))
		}
	}
}

// deleteCheckpoints removes every checkpoint (and stale temp file) for a
// session. Called before a drop record is logged, so a crash between the
// two resurrects the session rather than leaving a stale checkpoint to
// poison a future session with the same ID.
func (s *Store) deleteCheckpoints(session string) error {
	var firstErr error
	for _, dir := range []string{s.ckptDir, filepath.Join(s.ckptDir, "tmp")} {
		ents, err := s.fs.ReadDir(dir)
		if err != nil {
			if dir == s.ckptDir {
				return err
			}
			continue // tmp dir may not exist on a foreign layout
		}
		for _, e := range ents {
			if sess, _, ok := parseCkptName(e.Name()); ok && sess == session {
				if err := s.fs.Remove(filepath.Join(dir, e.Name())); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// latestCheckpoints returns the newest valid checkpoint per session,
// skipping (and reporting) files that fail validation.
func (s *Store) latestCheckpoints() (map[string]Checkpoint, []string, error) {
	ents, err := s.fs.ReadDir(s.ckptDir)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]Checkpoint)
	var skipped []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			continue // ckpt/tmp/
		}
		sess, seq, ok := parseCkptName(name)
		if !ok {
			if strings.HasSuffix(name, ckptSuffix) {
				skipped = append(skipped, name+": unparseable name")
			}
			continue // foreign entries
		}
		if prev, dup := out[sess]; dup && prev.Seq >= seq {
			continue
		}
		path := filepath.Join(s.ckptDir, name)
		payload, err := s.loadCheckpoint(path, sess, seq)
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		out[sess] = Checkpoint{Session: sess, Seq: seq, Payload: payload, Path: path}
	}
	return out, skipped, nil
}

// loadCheckpoint reads and validates one checkpoint file.
func (s *Store) loadCheckpoint(path, wantSess string, wantSeq uint64) ([]byte, error) {
	f, err := s.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	header, err := r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	var esc string
	var seq uint64
	var length int
	var sum uint32
	if _, err := fmt.Sscanf(strings.TrimSuffix(header, "\n"),
		"rimckpt v1 session=%s seq=%d len=%d crc=%08x", &esc, &seq, &length, &sum); err != nil {
		return nil, fmt.Errorf("bad header %q", header)
	}
	sess, err := url.PathUnescape(esc)
	if err != nil || sess != wantSess || seq != wantSeq {
		return nil, fmt.Errorf("header/name mismatch (header session=%q seq=%d)", sess, seq)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("payload cut short: %w", err)
	}
	if _, err := r.ReadByte(); err == nil {
		return nil, fmt.Errorf("trailing bytes after payload")
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("payload crc mismatch")
	}
	return payload, nil
}
