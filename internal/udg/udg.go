// Package udg builds Unit Disk Graphs, the standard connectivity model of
// the paper (Clark, Colbourn, Johnson 1990): nodes u and v share an edge
// iff their Euclidean distance is at most the (uniform) maximum
// transmission range, normalized to 1.
//
// Both a grid-accelerated and a naive constructor are provided; the naive
// one exists so property tests can cross-validate the fast path.
package udg

import (
	"repro/internal/geom"
	"repro/internal/graph"
)

// Radius is the normalized maximum transmission range of every node.
const Radius = 1.0

// Build returns the Unit Disk Graph over pts using the default unit
// radius, grid-accelerated.
func Build(pts []geom.Point) *graph.Graph {
	return BuildRadius(pts, Radius)
}

// BuildRadius returns the disk graph over pts for an arbitrary uniform
// range r: edge {u,v} iff |u,v| <= r.
func BuildRadius(pts []geom.Point, r float64) *graph.Graph {
	g := graph.New(len(pts))
	if len(pts) == 0 || r < 0 {
		return g
	}
	grid := geom.NewGrid(pts, cellFor(r))
	buf := make([]int, 0, 32)
	for i, p := range pts {
		buf = grid.Within(p, r, buf[:0])
		for _, j := range buf {
			if j > i { // each unordered pair once
				g.AddEdge(i, j, p.Dist(pts[j]))
			}
		}
	}
	return g
}

// cellFor picks a grid cell size proportional to the query radius, with a
// floor so a zero radius still builds a valid grid.
func cellFor(r float64) float64 {
	if r <= 0 {
		return 1
	}
	return r
}

// BuildNaive is the O(n²) reference constructor.
func BuildNaive(pts []geom.Point, r float64) *graph.Graph {
	g := graph.New(len(pts))
	r2 := r * r
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist2(pts[j]) <= r2*(1+1e-9) {
				g.AddEdge(i, j, pts[i].Dist(pts[j]))
			}
		}
	}
	return g
}

// MaxDegree returns Δ of the UDG over pts without materializing the graph;
// used by the highway algorithms, which need only the degree bound.
func MaxDegree(pts []geom.Point, r float64) int {
	if len(pts) == 0 {
		return 0
	}
	grid := geom.NewGrid(pts, cellFor(r))
	d := 0
	for _, p := range pts {
		// CountWithin includes the node itself.
		if c := grid.CountWithin(p, r) - 1; c > d {
			d = c
		}
	}
	return d
}
