package udg

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestBuildSmall(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(2, 0), geom.Pt(2.9, 0)}
	g := Build(pts)
	type pair struct{ u, v int }
	want := map[pair]bool{{0, 1}: true, {2, 3}: true}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if g.HasEdge(u, v) != want[pair{u, v}] {
				t.Errorf("edge (%d,%d) presence = %v, want %v", u, v, g.HasEdge(u, v), want[pair{u, v}])
			}
		}
	}
}

func TestBuildBoundaryInclusive(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	if !Build(pts).HasEdge(0, 1) {
		t.Error("distance exactly 1 must be an edge (closed disk)")
	}
}

func TestBuildMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(120)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*6, rng.Float64()*6)
		}
		r := rng.Float64() * 2
		fast := BuildRadius(pts, r)
		slow := BuildNaive(pts, r)
		if fast.M() != slow.M() {
			t.Fatalf("trial %d: edges %d vs %d", trial, fast.M(), slow.M())
		}
		for _, e := range slow.Edges() {
			if !fast.HasEdge(e.U, e.V) {
				t.Fatalf("trial %d: fast missing edge (%d,%d)", trial, e.U, e.V)
			}
		}
	}
}

func TestMaxDegreeMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(100)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*4, rng.Float64()*4)
		}
		g := Build(pts)
		if got, want := MaxDegree(pts, Radius), g.MaxDegree(); got != want {
			t.Fatalf("trial %d: MaxDegree = %d, graph says %d", trial, got, want)
		}
	}
}

func TestMaxDegreeEmpty(t *testing.T) {
	if MaxDegree(nil, 1) != 0 {
		t.Error("empty set should have degree 0")
	}
}

func TestBuildZeroRadius(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(1, 1)}
	g := BuildRadius(pts, 0)
	// Coincident points are at distance 0 <= 0: they are connected.
	if !g.HasEdge(0, 1) {
		t.Error("coincident nodes should connect at radius 0")
	}
	if g.HasEdge(0, 2) {
		t.Error("distinct nodes should not connect at radius 0")
	}
}

func TestExponentialChainUDG(t *testing.T) {
	// The paper's §5.1 assumption: an exponential chain whose total extent
	// is <= 1 is a complete graph (Δ = n-1).
	n := 8
	pts := make([]geom.Point, n)
	x := 0.0
	d := 1.0 / 256.0
	for i := range pts {
		pts[i] = geom.Pt(x, 0)
		x += d
		d *= 2
	}
	g := Build(pts)
	if g.M() != n*(n-1)/2 {
		t.Fatalf("chain within unit extent should be complete: M=%d", g.M())
	}
	if g.MaxDegree() != n-1 {
		t.Fatalf("Δ = %d, want %d", g.MaxDegree(), n-1)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*20, rng.Float64()*20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}
