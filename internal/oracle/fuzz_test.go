package oracle_test

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/oracle"
)

// decodeInstance maps fuzz bytes to a small instance the same way the
// core fuzzers do: pairs of uint16 become coordinates in [0, 8), one
// extra byte per node a radius in [0, 4). Capped at 48 nodes so the
// quadratic oracle stays fast under the fuzzing engine's iteration rate.
func decodeInstance(data []byte) ([]geom.Point, []float64) {
	const stride = 5
	n := len(data) / stride
	if n > 48 {
		n = 48
	}
	pts := make([]geom.Point, n)
	radii := make([]float64, n)
	for i := 0; i < n; i++ {
		off := i * stride
		x := float64(binary.LittleEndian.Uint16(data[off:])) / 65535 * 8
		y := float64(binary.LittleEndian.Uint16(data[off+2:])) / 65535 * 8
		pts[i] = geom.Pt(x, y)
		radii[i] = float64(data[off+4]) / 255 * 4
	}
	return pts, radii
}

// FuzzCheckRadii runs the whole evaluation-path cross-check on
// byte-derived instances: coincident points, nodes exactly on disk
// boundaries, all-zero assignments. Any divergence between the naive
// model and any optimized path fails the run.
func FuzzCheckRadii(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 0, 0, 128})
	f.Add(make([]byte, 12*5))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, radii := decodeInstance(data)
		if len(pts) == 0 {
			return
		}
		if err := oracle.CheckRadii(pts, radii); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzLaws drives every metamorphic law from a fuzz-chosen seed, letting
// the mutation engine explore the laws' instance spaces beyond the fixed
// sweep in laws_test.go.
func FuzzLaws(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(424242))
	f.Fuzz(func(t *testing.T, seed int64) {
		for _, law := range oracle.Laws() {
			if err := law.Check(rand.New(rand.NewSource(seed))); err != nil {
				t.Fatalf("%s: %v", law.Name, err)
			}
		}
	})
}
