package oracle_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/topology"
	"repro/internal/udg"
)

// instances returns the deterministic instance families the oracle's own
// tests sweep: uniform squares, clusters, highway chains, and the paper's
// gadgets, at sizes where the quadratic references stay fast.
func instances(seed int64) map[string][]geom.Point {
	rng := rand.New(rand.NewSource(seed))
	return map[string][]geom.Point{
		"uniform":   gen.UniformSquare(rng, 60, 2),
		"clustered": gen.Clustered(rng, 50, 4, 3, 0.25),
		"expchain":  gen.ExpChain(24, 1),
		"highway":   gen.HighwayUniform(rng, 40, 6),
		"gadget":    gen.DoubleExpChain(8),
		"pair":      {geom.Pt(0, 0), geom.Pt(0.5, 0)},
		"single":    {geom.Pt(1, 1)},
	}
}

func TestCheckAcrossInstanceFamilies(t *testing.T) {
	for name, pts := range instances(1) {
		for _, alg := range []struct {
			name  string
			build func([]geom.Point) *graph.Graph
		}{
			{"MST", topology.MST},
			{"NNF", topology.NNF},
			{"GreedyI", topology.GreedyMinI},
		} {
			if err := oracle.Check(pts, alg.build(pts)); err != nil {
				t.Errorf("%s/%s: %v", name, alg.name, err)
			}
		}
	}
}

func TestCheckRejectsMismatchedTopology(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	if err := oracle.Check(pts, graph.New(3)); err == nil {
		t.Fatal("size mismatch not reported")
	}
}

func TestNaiveAgreesWithPrimitiveBrutes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := gen.UniformSquare(rng, 80, 2)
	grid := geom.NewGrid(pts, 0.3)
	for trial := 0; trial < 50; trial++ {
		c := geom.Pt(rng.Float64()*2, rng.Float64()*2)
		r := rng.Float64() * 1.5
		lo := r * rng.Float64()

		within := oracle.Within(pts, c, r)
		fast := grid.Within(c, r, nil)
		sort.Ints(fast)
		if !equal(within, fast) {
			t.Fatalf("Within(%v, %v): naive %v, grid %v", c, r, within, fast)
		}

		ann := oracle.WithinAnnulus(pts, c, lo, r)
		fastAnn := grid.WithinAnnulus(c, lo, r, nil)
		sort.Ints(fastAnn)
		if !equal(ann, fastAnn) {
			t.Fatalf("WithinAnnulus(%v, %v, %v): naive %v, grid %v", c, lo, r, ann, fastAnn)
		}
	}
}

func TestNaiveUDGAndComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		pts := gen.UniformSquare(rng, 40, 4) // side 4: usually disconnected
		naive := oracle.UDG(pts)
		fast := udg.Build(pts)
		if naive.M() != fast.M() {
			t.Fatalf("trial %d: UDG edge count naive %d, fast %d", trial, naive.M(), fast.M())
		}
		nl, nk := oracle.Components(pts)
		fl, fk := fast.Components()
		if nk != fk {
			t.Fatalf("trial %d: components naive %d, fast %d", trial, nk, fk)
		}
		for i := range nl {
			for j := range nl {
				if (nl[i] == nl[j]) != (fl[i] == fl[j]) {
					t.Fatalf("trial %d: partition disagreement at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestNaiveNNFMatchesTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		pts := gen.UniformSquare(rng, 50, 2)
		naive := oracle.NNF(pts)
		fast := topology.NNF(pts)
		if naive.M() != fast.M() {
			t.Fatalf("trial %d: NNF edge count naive %d, fast %d", trial, naive.M(), fast.M())
		}
		for _, e := range naive.Edges() {
			if !fast.HasEdge(e.U, e.V) {
				t.Fatalf("trial %d: NNF edge {%d,%d} missing from fast construction", trial, e.U, e.V)
			}
		}
	}
}

func TestNaiveMSTWeightMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		pts := gen.UniformSquare(rng, 40, 3)
		want := oracle.MSTWeight(pts)
		got := graph.TotalWeight(graph.EuclideanMST(pts, udg.Radius))
		if diff := want - got; diff > 1e-9*want || diff < -1e-9*want {
			t.Fatalf("trial %d: MST weight naive %v, Kruskal %v", trial, want, got)
		}
	}
}

func TestBruteForceOptimalTinyChains(t *testing.T) {
	// Three collinear nodes, middle one nearer the left: the optimum makes
	// everyone reach their nearest viable partner; I = 2 is unavoidable
	// (both endpoints hear the middle and one endpoint) but I = n-1 = 2
	// equals the chain bound — mostly this pins the oracle's plumbing.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.3, 0), geom.Pt(0.9, 0)}
	best, radii := oracle.BruteForceOptimal(pts)
	if best < 1 || best > 2 {
		t.Fatalf("3-chain optimum %d out of range", best)
	}
	if !oracle.Feasible(pts, radii) {
		t.Fatal("claimed optimum is infeasible")
	}
	if got := oracle.Interference(pts, radii).Max(); got != best {
		t.Fatalf("claimed optimum %d but assignment evaluates to %d", best, got)
	}

	// Two isolated components: feasibility is per-component.
	pts = []geom.Point{geom.Pt(0, 0), geom.Pt(0.4, 0), geom.Pt(10, 0), geom.Pt(10.4, 0)}
	best, radii = oracle.BruteForceOptimal(pts)
	if !oracle.Feasible(pts, radii) {
		t.Fatal("disconnected-instance optimum infeasible")
	}
	if best != 1 {
		t.Fatalf("two far pairs: optimum %d, want 1", best)
	}

	// A singleton is feasible at zero radius and zero interference.
	best, radii = oracle.BruteForceOptimal([]geom.Point{geom.Pt(0, 0)})
	if best != 0 || len(radii) != 1 || radii[0] != 0 {
		t.Fatalf("singleton: got %d, %v", best, radii)
	}
}

func TestBruteForceOptimalNeverBeatenByConstructions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		pts := gen.UniformSquare(rng, 2+rng.Intn(5), 1.5)
		best, _ := oracle.BruteForceOptimal(pts)
		for _, build := range []func([]geom.Point) *graph.Graph{topology.MST, topology.GreedyMinI} {
			if got := oracle.InterferenceOf(pts, build(pts)); got < best {
				t.Fatalf("trial %d: construction reached %d below claimed optimum %d", trial, got, best)
			}
		}
	}
}

func TestDiffEvaluatorCatchesShadowDivergence(t *testing.T) {
	// Sanity that Verify actually fails on divergence: mutate the engine
	// behind the shadow's back and require an error.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(1, 0)}
	d := oracle.NewDiffEvaluator(pts)
	d.SetRadius(0, 0.6)
	if err := d.Verify(); err != nil {
		t.Fatalf("clean state: %v", err)
	}
	d.Evaluator().SetRadius(1, 0.7) // bypasses the shadow
	if err := d.Verify(); err == nil {
		t.Fatal("divergence not detected")
	}
}

func TestDiffRunsReportsDivergence(t *testing.T) {
	a := oracle.Run{Trace: "t=0 tx 0->1 frame=1 ok\n"}
	b := oracle.Run{Trace: "t=0 tx 0->1 frame=1 collision\n"}
	err := oracle.DiffRuns(a, b)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("trace divergence not reported: %v", err)
	}
	b = a
	b.Metrics.Delivered = 5
	err = oracle.DiffRuns(a, b)
	if err == nil || !strings.Contains(err.Error(), "Delivered") {
		t.Fatalf("metrics divergence not reported: %v", err)
	}
	if err := oracle.DiffRuns(a, a); err != nil {
		t.Fatalf("identical runs reported divergent: %v", err)
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
