package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/phys"
)

// Metamorphic laws for the physical (SINR) measure. Same floating-point
// discipline as the graph laws: the scale law multiplies coordinates
// and radii by powers of two, which is exact in IEEE double — both the
// squared distances and the r²/d² ratios inside phys.Model.Units come
// out bit-identical, so quantized power sums must match exactly, not
// approximately. (In raw watts, scaling space by s rescales transmit
// power by s^α automatically — P(r)=β·N·r^α — which is why received
// power in β·N units is scale-free without adjusting β.)

func physLaws() []Law {
	return []Law{
		{"phys-scale-invariance", lawPhysScaleInvariance},
		{"phys-radius-monotonicity", lawPhysMonotonicity},
		{"phys-snapshot-roundtrip", lawPhysSnapshotRoundTrip},
		{"phys-disk-domination", lawPhysDiskDomination},
		{"phys-far-field-cutoff", lawPhysFarField},
	}
}

// lawPhysScaleInvariance: quantized received power is scale-free —
// multiplying every coordinate and radius by the same power of two
// leaves every pw(v) bit-identical, on both the naive and the
// incremental path.
func lawPhysScaleInvariance(rng *rand.Rand) error {
	m := phys.Default()
	pts, radii := lawInstance(rng, 2+rng.Intn(24), 4)
	s := []float64{0.25, 0.5, 2, 4, 8}[rng.Intn(5)]
	scaledPts := make([]geom.Point, len(pts))
	scaledRadii := make([]float64, len(radii))
	for i := range pts {
		scaledPts[i] = pts[i].Scale(s)
		scaledRadii[i] = radii[i] * s
	}
	orig := PhysPower(pts, radii, m)
	scaled := PhysPower(scaledPts, scaledRadii, m)
	for v := range orig {
		if orig[v] != scaled[v] {
			return fmt.Errorf("pw(%d) changed under ×%v scaling: %d → %d", v, s, orig[v], scaled[v])
		}
	}
	ev := phys.NewEvaluator(scaledPts, m)
	ev.BatchSet(scaledRadii, 0)
	for v := range orig {
		if ev.Power(v) != orig[v] {
			return fmt.Errorf("evaluator pw(%d) under ×%v scaling: %d, naive original %d", v, s, ev.Power(v), orig[v])
		}
	}
	return nil
}

// lawPhysMonotonicity: raising one node's radius never decreases any
// receiver's power sum (larger radius means more transmit power at
// every distance and a wider far-field support). Checked on the naive
// model and on the incremental SetRadius path.
func lawPhysMonotonicity(rng *rand.Rand) error {
	m := phys.Default()
	pts, radii := lawInstance(rng, 2+rng.Intn(24), 4)
	u := rng.Intn(len(pts))
	grown := append([]float64(nil), radii...)
	grown[u] = radii[u] + rng.Float64()*2

	before := PhysPower(pts, radii, m)
	after := PhysPower(pts, grown, m)
	for v := range before {
		if after[v] < before[v] {
			return fmt.Errorf("pw(%d) decreased when r_%d grew %v → %v: %d → %d",
				v, u, radii[u], grown[u], before[v], after[v])
		}
	}

	ev := phys.NewEvaluator(pts, m)
	ev.BatchSet(radii, 0)
	ev.SetRadius(u, grown[u])
	for v := range after {
		if ev.Power(v) != after[v] {
			return fmt.Errorf("incremental pw(%d) after growing r_%d: %d, naive %d", v, u, ev.Power(v), after[v])
		}
	}
	return nil
}

// lawPhysSnapshotRoundTrip: a Snapshot/mutate/Restore cycle lands on
// bit-identical power sums — the integer deltas the undo log replays
// cancel exactly, which is the property that makes speculative search
// (opt's branch-and-bound) sound under the physical measure.
func lawPhysSnapshotRoundTrip(rng *rand.Rand) error {
	m := phys.Default()
	pts, radii := lawInstance(rng, 2+rng.Intn(24), 4)
	ev := phys.NewEvaluator(pts, m)
	ev.BatchSet(radii, 0)

	before := make([]int64, len(pts))
	for v := range before {
		before[v] = ev.Power(v)
	}
	beforeMax, beforeSum := ev.Max(), ev.SumI()

	ev.Snapshot()
	for k := 0; k < 12; k++ {
		u := rng.Intn(len(pts))
		switch rng.Intn(3) {
		case 0:
			ev.SetRadius(u, 0)
		case 1:
			ev.GrowTo(u, rng.Float64()*6)
		default:
			ev.SetRadius(u, rng.Float64()*4)
		}
		if rng.Intn(4) == 0 {
			ev.Snapshot()
			ev.SetRadius(rng.Intn(len(pts)), rng.Float64()*4)
			ev.Restore()
		}
	}
	ev.Restore()

	for v := range before {
		if ev.Power(v) != before[v] {
			return fmt.Errorf("pw(%d) after round-trip: %d, want %d", v, ev.Power(v), before[v])
		}
	}
	if ev.Max() != beforeMax || ev.SumI() != beforeSum {
		return fmt.Errorf("max/sum after round-trip: %d/%d, want %d/%d", ev.Max(), ev.SumI(), beforeMax, beforeSum)
	}
	return nil
}

// lawPhysDiskDomination: a sender whose disk strictly covers a receiver
// (d² ≤ r², no epsilon) delivers at least one full decode threshold,
// so level(v) is at least the strict cover count — the bridge between
// the physical levels and the paper's disk-count measure. (Stated for
// strict containment only: a coverer in the 1e-9 boundary ring can
// quantize to UnitScale−1.)
func lawPhysDiskDomination(rng *rand.Rand) error {
	m := phys.Default()
	pts, radii := lawInstance(rng, 2+rng.Intn(24), 4)
	levels := PhysLevels(pts, radii, m)
	for v := range pts {
		cover := 0
		for u := range pts {
			if u != v && radii[u] > 0 && pts[u].Dist2(pts[v]) <= radii[u]*radii[u] {
				cover++
			}
		}
		if levels[v] < cover {
			return fmt.Errorf("level(%d) = %d below strict cover count %d", v, levels[v], cover)
		}
	}
	return nil
}

// lawPhysFarField: Units is zero exactly outside the far-field cutoff
// (F·r)²·(1+1e-9) — the same epsilon geom's disk queries apply — and
// positive inside it under the default model, so the grid query's
// support set and the power definition agree on every boundary case.
func lawPhysFarField(rng *rand.Rand) error {
	m := phys.Default()
	const grow = 1 + 1e-9
	for trial := 0; trial < 64; trial++ {
		r := rng.Float64()*4 + 1.0/(1<<12)
		reach2 := (m.FarField * r) * (m.FarField * r)
		var d2 float64
		switch trial % 4 {
		case 0:
			d2 = reach2 * grow // exact cutoff: still inside
		case 1:
			d2 = reach2 * grow * (1 + 1e-12) // just past: outside
		case 2:
			d2 = rng.Float64() * reach2
		default:
			d2 = reach2 * (1 + rng.Float64()*4)
		}
		u := m.Units(r, d2)
		inside := d2 <= reach2*grow
		if inside && u <= 0 {
			return fmt.Errorf("Units(%v, %v) = %d inside the cutoff", r, d2, u)
		}
		if !inside && u != 0 {
			return fmt.Errorf("Units(%v, %v) = %d beyond the cutoff", r, d2, u)
		}
	}
	return nil
}
