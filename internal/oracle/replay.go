package oracle

import (
	"fmt"
	"reflect"
	"strings"

	"repro/internal/sim"
)

// Deterministic-replay harness for the packet simulator. A simulation is
// fully determined by its construction (instance, topology, Config.Seed,
// scheduled workload), so re-executing the same construction must
// reproduce bit-identical Metrics and a byte-identical event trace. The
// harness turns that contract into a checkable property: any hidden
// nondeterminism — map iteration, time dependence, shared mutable state
// between runs, goroutine scheduling — shows up as a trace or metrics
// divergence.

// Run captures one complete simulation: the final metrics and the full
// per-event trace recorded through sim.Tracer.
type Run struct {
	Metrics sim.Metrics
	Trace   string
}

// Record builds a simulator with mk, attaches a trace recorder, runs it
// to the horizon, and captures the outcome. mk must return a fresh,
// not-yet-run simulator with its workload installed.
func Record(mk func() *sim.Simulator) Run {
	s := mk()
	var sb strings.Builder
	s.SetTracer(&sim.WriterTracer{W: &sb})
	m := s.Run()
	return Run{Metrics: *m, Trace: sb.String()}
}

// Replay executes mk twice and requires the two runs to be bit-identical:
// every Metrics field equal (including per-node slices) and the event
// traces byte-for-byte the same. It returns the first run and an error
// describing the earliest divergence, nil when the runs agree.
func Replay(mk func() *sim.Simulator) (Run, error) {
	first := Record(mk)
	second := Record(mk)
	return first, DiffRuns(first, second)
}

// DiffText compares two textual traces byte-for-byte, reporting the
// earliest differing line (nil when identical). It is the shared
// comparator behind DiffRuns and the serving layer's trace replay.
func DiffText(a, b string) error {
	if a == b {
		return nil
	}
	al := strings.Split(a, "\n")
	bl := strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		la, lb := "<end of trace>", "<end of trace>"
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la != lb {
			return fmt.Errorf("oracle: replay diverged at trace line %d:\n  run 1: %s\n  run 2: %s", i+1, la, lb)
		}
	}
	return fmt.Errorf("oracle: traces differ but no line diverges (impossible)")
}

// DiffRuns compares two captured runs, reporting the first divergence:
// the earliest differing trace line, or the differing Metrics field when
// the traces agree (possible when divergence hides in untraced
// accounting such as energy or deferrals).
func DiffRuns(a, b Run) error {
	if err := DiffText(a.Trace, b.Trace); err != nil {
		return err
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		va, vb := reflect.ValueOf(a.Metrics), reflect.ValueOf(b.Metrics)
		for i := 0; i < va.NumField(); i++ {
			if !reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
				return fmt.Errorf("oracle: replay diverged in Metrics.%s: run 1 %v, run 2 %v",
					va.Type().Field(i).Name, va.Field(i).Interface(), vb.Field(i).Interface())
			}
		}
		return fmt.Errorf("oracle: replay metrics diverged")
	}
	return nil
}
