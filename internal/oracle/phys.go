package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/phys"
)

// Naive physical-model reference: recompute every receiver's quantized
// power sum from the definition, O(n²), no grid, no incrementality.
// phys.Evaluator must agree bit-for-bit — both sides call
// phys.Model.Units with identical float arguments and sum exact
// integers, so "close" is not accepted anywhere.

// PhysPower recomputes the quantized received-power sums from the
// definition: pw(v) = Σ_{u≠v} Units(r_u, d²(u,v)).
func PhysPower(pts []geom.Point, radii []float64, m phys.Model) []int64 {
	pw := make([]int64, len(pts))
	for u, r := range radii {
		if r <= 0 {
			continue
		}
		for v := range pts {
			if v != u {
				pw[v] += m.Units(r, pts[u].Dist2(pts[v]))
			}
		}
	}
	return pw
}

// PhysLevels reduces PhysPower to integer interference levels
// (⌊pw/UnitScale⌋), the physical analogue of the naive Interference
// vector.
func PhysLevels(pts []geom.Point, radii []float64, m phys.Model) core.Vector {
	pw := PhysPower(pts, radii, m)
	lv := make(core.Vector, len(pw))
	for i, p := range pw {
		lv[i] = int(p >> phys.LogUnitScale)
	}
	return lv
}

// CheckPhysRadii cross-checks the incremental physical evaluator
// against the naive model on one assignment, driving both the BatchSet
// path and the per-node SetRadius path.
func CheckPhysRadii(pts []geom.Point, radii []float64, m phys.Model) error {
	want := PhysPower(pts, radii, m)

	batch := phys.NewEvaluator(pts, m)
	batch.BatchSet(radii, 0)
	if err := comparePhys("BatchSet", batch, pts, radii, want); err != nil {
		return err
	}

	incr := phys.NewEvaluator(pts, m)
	for u, r := range radii {
		incr.SetRadius(u, r)
	}
	return comparePhys("SetRadius", incr, pts, radii, want)
}

func comparePhys(path string, ev *phys.Evaluator, pts []geom.Point, radii []float64, want []int64) error {
	maxL, sumL := 0, 0
	for v, w := range want {
		if got := ev.Power(v); got != w {
			return fmt.Errorf("oracle: phys %s: pw(%d) = %d, naive %d", path, v, got, w)
		}
		l := int(w >> phys.LogUnitScale)
		sumL += l
		if l > maxL {
			maxL = l
		}
	}
	if ev.Max() != maxL {
		return fmt.Errorf("oracle: phys %s: max = %d, naive %d", path, ev.Max(), maxL)
	}
	if ev.SumI() != sumL {
		return fmt.Errorf("oracle: phys %s: sumI = %d, naive %d", path, ev.SumI(), sumL)
	}
	return nil
}

// DiffPhysEvaluator shadows a phys.Evaluator exactly as DiffEvaluator
// shadows the graph engine: every mutation hits both the incremental
// engine and a plain (points, radii, stack) model, and Verify
// recomputes the power sums naively and compares bit-for-bit.
type DiffPhysEvaluator struct {
	ev    *phys.Evaluator
	pts   []geom.Point
	radii []float64
	stack [][]float64
}

var _ dynamic.Engine = (*DiffPhysEvaluator)(nil)

// NewDiffPhysEvaluator starts both sides from the all-zero assignment.
func NewDiffPhysEvaluator(pts []geom.Point, m phys.Model) *DiffPhysEvaluator {
	return &DiffPhysEvaluator{
		ev:    phys.NewEvaluator(pts, m),
		pts:   append([]geom.Point(nil), pts...),
		radii: make([]float64, len(pts)),
	}
}

// Evaluator exposes the engine under test.
func (d *DiffPhysEvaluator) Evaluator() *phys.Evaluator { return d.ev }

// N returns the current number of points.
func (d *DiffPhysEvaluator) N() int { return len(d.pts) }

// Depth returns the number of active snapshots.
func (d *DiffPhysEvaluator) Depth() int { return len(d.stack) }

// SetRadius mirrors phys.Evaluator.SetRadius.
func (d *DiffPhysEvaluator) SetRadius(u int, r float64) float64 {
	old := d.ev.SetRadius(u, r)
	d.radii[u] = r
	return old
}

// GrowTo mirrors phys.Evaluator.GrowTo.
func (d *DiffPhysEvaluator) GrowTo(u int, r float64) float64 {
	old := d.ev.GrowTo(u, r)
	if r > d.radii[u] {
		d.radii[u] = r
	}
	return old
}

// Points delegates to the engine; Verify compares the shadow's copy.
func (d *DiffPhysEvaluator) Points() []geom.Point { return d.ev.Points() }

// Grid delegates the engine's spatial index.
func (d *DiffPhysEvaluator) Grid() *geom.Grid { return d.ev.Grid() }

// Max delegates to the engine; Verify independently recomputes it.
func (d *DiffPhysEvaluator) Max() int { return d.ev.Max() }

// SumI delegates to the engine; Verify covers the underlying sums.
func (d *DiffPhysEvaluator) SumI() int { return d.ev.SumI() }

// Radius delegates the per-node radius read.
func (d *DiffPhysEvaluator) Radius(u int) float64 { return d.ev.Radius(u) }

// I delegates the per-node level read.
func (d *DiffPhysEvaluator) I(v int) int { return d.ev.I(v) }

// ExportState delegates the engine's copy-on-read export.
func (d *DiffPhysEvaluator) ExportState(dst *core.State) *core.State {
	return d.ev.ExportState(dst)
}

// Snapshot mirrors phys.Evaluator.Snapshot; the shadow pushes a deep
// copy of the radii.
func (d *DiffPhysEvaluator) Snapshot() {
	d.ev.Snapshot()
	d.stack = append(d.stack, append([]float64(nil), d.radii...))
}

// Restore mirrors phys.Evaluator.Restore.
func (d *DiffPhysEvaluator) Restore() {
	d.ev.Restore()
	d.radii = d.stack[len(d.stack)-1]
	d.stack = d.stack[:len(d.stack)-1]
}

// BatchSet mirrors phys.Evaluator.BatchSet.
func (d *DiffPhysEvaluator) BatchSet(radii []float64, workers int) {
	d.ev.BatchSet(radii, workers)
	copy(d.radii, radii)
}

// AddPoint mirrors phys.Evaluator.AddPoint.
func (d *DiffPhysEvaluator) AddPoint(p geom.Point) int {
	idx := d.ev.AddPoint(p)
	d.pts = append(d.pts, p)
	d.radii = append(d.radii, 0)
	return idx
}

// RemovePoint mirrors phys.Evaluator.RemovePoint.
func (d *DiffPhysEvaluator) RemovePoint(idx int) {
	d.ev.RemovePoint(idx)
	d.pts = append(d.pts[:idx], d.pts[idx+1:]...)
	d.radii = append(d.radii[:idx], d.radii[idx+1:]...)
}

// MovePoint mirrors phys.Evaluator.MovePoint; the shadow just rewrites
// the position, so Verify's naive recount independently checks the
// engine's silence-recount-relight bookkeeping.
func (d *DiffPhysEvaluator) MovePoint(idx int, p geom.Point) {
	d.ev.MovePoint(idx, p)
	d.pts[idx] = p
}

// Reset mirrors phys.Evaluator.Reset.
func (d *DiffPhysEvaluator) Reset() {
	d.ev.Reset()
	for i := range d.radii {
		d.radii[i] = 0
	}
	d.stack = d.stack[:0]
}

// Unwind pops every remaining snapshot.
func (d *DiffPhysEvaluator) Unwind() {
	for len(d.stack) > 0 {
		d.Restore()
	}
}

// Verify recomputes the naive power sums of the shadow state and
// compares every observable bit-for-bit.
func (d *DiffPhysEvaluator) Verify() error {
	if d.ev.N() != len(d.pts) {
		return fmt.Errorf("oracle: phys evaluator has %d points, shadow %d", d.ev.N(), len(d.pts))
	}
	for u, r := range d.radii {
		if d.ev.Radius(u) != r {
			return fmt.Errorf("oracle: phys radius of node %d: evaluator %v, shadow %v", u, d.ev.Radius(u), r)
		}
	}
	return comparePhys("shadow", d.ev, d.pts, d.radii, PhysPower(d.pts, d.radii, d.ev.Model()))
}
