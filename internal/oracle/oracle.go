// Package oracle encodes the paper's definitions as executable reference
// implementations and cross-checks the optimized engine against them.
//
// PR 1 replaced the textbook evaluation of Definition 3.2 with an
// incremental, grid-backed engine (core.Evaluator); every future
// performance PR risks silently diverging from the paper. This package is
// the correctness backstop: straight-from-the-paper naive implementations
// (quadratic loops, no spatial index, no incremental state) behind a
// single Check entry point, a differential evaluator that shadows every
// core.Evaluator operation with the obvious slice semantics, metamorphic
// laws the measure must satisfy on any instance, and a deterministic-
// replay harness for the packet simulator.
//
// The package deliberately depends only on the layers it validates (core,
// sim) plus the primitive geometry/graph layers. Algorithm packages (opt,
// topology, highway, dynamic) consume it from their external test
// packages, so no import cycles arise.
//
// Conventions:
//
//   - Reference implementations share the single boundary predicate
//     geom.InDisk with the optimized paths. Differential tests compare
//     *implementations* (naive vs optimized), not *conventions*; using
//     two boundary epsilons would report spurious diffs on the paper's
//     exactly-on-the-boundary constructions.
//   - All checks return an error describing the first divergence found
//     (never panic), so fuzzers and property tests can report minimal
//     counterexamples.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Check cross-validates the whole optimized interference stack on one
// instance: radii derivation, the grid-accelerated and parallel
// evaluators, the incremental Evaluator (both BatchSet and a sequential
// SetRadius walk), witness queries, the sender-centric measure, and the
// simulator's precomputed coverage sets. It returns nil when every path
// agrees with the naive model, or an error naming the first divergence.
//
// Cost is O(n²); intended for test instances, not production calls.
func Check(pts []geom.Point, g *graph.Graph) error {
	if g.N() != len(pts) {
		return fmt.Errorf("oracle: topology over %d nodes, %d points", g.N(), len(pts))
	}
	want := Radii(pts, g)
	got := core.Radii(pts, g)
	for u := range want {
		if got[u] != want[u] {
			return fmt.Errorf("oracle: radius of node %d: core %v, naive %v", u, got[u], want[u])
		}
	}
	if err := CheckRadii(pts, want); err != nil {
		return err
	}

	// Witness queries: CoveredBy must list exactly the I(v) witnesses.
	iv := Interference(pts, want)
	for v := range pts {
		naive := CoveredBy(pts, want, v)
		fast := core.CoveredBy(pts, g, v)
		if !equalInts(fast, naive) {
			return fmt.Errorf("oracle: CoveredBy(%d): core %v, naive %v", v, fast, naive)
		}
		if len(naive) != iv[v] {
			return fmt.Errorf("oracle: |CoveredBy(%d)| = %d but I(v) = %d", v, len(naive), iv[v])
		}
	}

	// Sender-centric measure (Figure 1's comparison baseline).
	fastSend, fastMax := core.SenderInterference(pts, g)
	naiveSend, naiveMax := core.SenderInterferenceNaive(pts, g)
	if fastMax != naiveMax {
		return fmt.Errorf("oracle: sender interference max: core %d, naive %d", fastMax, naiveMax)
	}
	for u := range naiveSend {
		if fastSend[u] != naiveSend[u] {
			return fmt.Errorf("oracle: sender interference of %d: core %d, naive %d", u, fastSend[u], naiveSend[u])
		}
	}

	// The simulator's precomputed radio layout is the same disk system.
	nw := sim.NewNetwork(pts, g)
	for v := range pts {
		if nw.Interference(v) != iv[v] {
			return fmt.Errorf("oracle: sim.Network I(%d) = %d, naive %d", v, nw.Interference(v), iv[v])
		}
		covered := append([]int(nil), nw.CoveredBy[v]...)
		sort.Ints(covered)
		if !equalInts(covered, CoveredBy(pts, want, v)) {
			return fmt.Errorf("oracle: sim.Network.CoveredBy[%d] = %v, naive %v", v, covered, CoveredBy(pts, want, v))
		}
	}
	if nw.MaxInterference() != iv.Max() {
		return fmt.Errorf("oracle: sim.Network max %d, naive %d", nw.MaxInterference(), iv.Max())
	}
	return nil
}

// CheckRadii cross-validates every interference-evaluation path on one
// radius assignment (the topology-free core of Check, usable on raw
// radius vectors the way opt's searches produce them).
func CheckRadii(pts []geom.Point, radii []float64) error {
	if len(radii) != len(pts) {
		return fmt.Errorf("oracle: %d radii for %d points", len(radii), len(pts))
	}
	want := Interference(pts, radii)

	if err := diffVector("InterferenceRadii", core.InterferenceRadii(pts, radii), want); err != nil {
		return err
	}
	if err := diffVector("InterferenceParallel", core.InterferenceParallel(pts, radii, 4), want); err != nil {
		return err
	}

	// Incremental evaluator, whole-vector path.
	ev := core.NewEvaluator(pts)
	ev.BatchSet(radii, 0)
	if err := diffEvaluatorState("BatchSet", ev, want); err != nil {
		return err
	}

	// Incremental evaluator, one annulus update at a time.
	ev = core.NewEvaluator(pts)
	for u, r := range radii {
		ev.SetRadius(u, r)
	}
	return diffEvaluatorState("SetRadius walk", ev, want)
}

func diffVector(path string, got, want core.Vector) error {
	for v := range want {
		if got[v] != want[v] {
			return fmt.Errorf("oracle: %s: I(%d) = %d, naive %d", path, v, got[v], want[v])
		}
	}
	if got.Max() != want.Max() {
		return fmt.Errorf("oracle: %s: max %d, naive %d", path, got.Max(), want.Max())
	}
	return nil
}

func diffEvaluatorState(path string, ev *core.Evaluator, want core.Vector) error {
	for v := range want {
		if ev.I(v) != want[v] {
			return fmt.Errorf("oracle: evaluator (%s): I(%d) = %d, naive %d", path, v, ev.I(v), want[v])
		}
	}
	if ev.Max() != want.Max() {
		return fmt.Errorf("oracle: evaluator (%s): max %d, naive %d", path, ev.Max(), want.Max())
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
