package oracle

import "repro/internal/dynamic"

// Trace adapter: the deterministic-replay harness generalized beyond the
// packet simulator to any component that can deterministically re-emit a
// textual trace — in particular the serving layer's per-session mutation
// log. Two contracts are checkable:
//
//   - byte identity: executing the same construction twice must produce
//     byte-identical trace text (ReplayText), exactly the property Replay
//     checks for simulations; and
//   - shadow equivalence: because *DiffEvaluator satisfies
//     dynamic.Engine, a recorded mutation trace can be re-applied through
//     a maintenance pipeline whose engine is the naive-shadowed
//     evaluator, so every radius/interference observable of the replay is
//     cross-checked against the from-the-definition model (Verify).
//
// The compile-time assertion below is the load-bearing piece of the
// second contract: it keeps the shadow evaluator drop-in compatible with
// every pipeline built on the engine interface.
var _ dynamic.Engine = (*DiffEvaluator)(nil)

// ReplayText executes run twice and requires the produced traces to be
// byte-identical, returning the first run's text and an error describing
// the earliest divergence (nil when the runs agree). run must perform a
// complete, self-contained execution — shared mutable state between the
// two invocations is exactly the nondeterminism this harness exists to
// expose.
func ReplayText(run func() string) (string, error) {
	first := run()
	second := run()
	return first, DiffText(first, second)
}
