package oracle

import (
	"fmt"
	"strings"
	"testing"
)

func TestReplayTextDeterministic(t *testing.T) {
	run := func() string {
		var sb strings.Builder
		for i := 0; i < 5; i++ {
			fmt.Fprintf(&sb, "step %d\n", i*i)
		}
		return sb.String()
	}
	text, err := ReplayText(run)
	if err != nil {
		t.Fatalf("deterministic producer flagged: %v", err)
	}
	if text != run() {
		t.Fatalf("ReplayText returned %q", text)
	}
}

func TestReplayTextCatchesNondeterminism(t *testing.T) {
	// Shared mutable state across runs — the bug class this exists for.
	calls := 0
	run := func() string {
		calls++
		return fmt.Sprintf("a\nrun %d\nb\n", calls)
	}
	if _, err := ReplayText(run); err == nil {
		t.Fatal("nondeterministic producer not flagged")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("divergence not localized to line 2: %v", err)
	}
}

func TestDiffTextLocalizesEarliestDivergence(t *testing.T) {
	if err := DiffText("x\ny\n", "x\ny\n"); err != nil {
		t.Fatalf("equal texts flagged: %v", err)
	}
	err := DiffText("x\ny\nz\n", "x\nY\nz\n")
	if err == nil {
		t.Fatal("differing texts not flagged")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("wrong localization: %v", err)
	}
	// Length-only divergence (one trace is a prefix of the other).
	if err := DiffText("x\n", "x\ny\n"); err == nil {
		t.Fatal("prefix divergence not flagged")
	}
}
