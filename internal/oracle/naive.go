package oracle

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

// This file holds the straight-from-the-paper reference implementations:
// quadratic loops over all pairs, no spatial index, no incremental state.
// They are deliberately boring — the point is that each one is obviously
// a transcription of a definition, so agreement with the optimized paths
// is evidence about the optimized paths, not about shared cleverness.

// Radii returns the transmission radius r_u = max_{v ∈ N_u} |u, v| of
// every node (Definition: minimum power reaching the farthest neighbor),
// recomputing every distance from the geometry rather than trusting the
// stored edge weights — so a topology built with wrong weights diverges
// here.
func Radii(pts []geom.Point, g *graph.Graph) []float64 {
	r := make([]float64, len(pts))
	for u := range pts {
		for _, v := range g.Neighbors(u) {
			if d := pts[u].Dist(pts[v]); d > r[u] {
				r[u] = d
			}
		}
	}
	return r
}

// Interference evaluates Definition 3.1 by the double loop it is stated
// as: I(v) = |{u ≠ v : v ∈ D(u, r_u)}|.
func Interference(pts []geom.Point, radii []float64) core.Vector {
	iv := make(core.Vector, len(pts))
	for u := range pts {
		if radii[u] <= 0 {
			continue
		}
		for v := range pts {
			if v != u && geom.InDisk(pts[u], radii[u], pts[v]) {
				iv[v]++
			}
		}
	}
	return iv
}

// InterferenceOf is Definition 3.2 for a topology: derive the radii, count
// the disks, take the maximum.
func InterferenceOf(pts []geom.Point, g *graph.Graph) int {
	return Interference(pts, Radii(pts, g)).Max()
}

// CoveredBy lists the witnesses behind I(v) — the nodes u ≠ v whose disks
// contain v — in ascending index order.
func CoveredBy(pts []geom.Point, radii []float64, v int) []int {
	var out []int
	for u := range pts {
		if u != v && radii[u] > 0 && geom.InDisk(pts[u], radii[u], pts[v]) {
			out = append(out, u)
		}
	}
	return out
}

// Within is the naive range query: every index within distance r of c
// (boundary-inclusive, same predicate as the grid), ascending.
func Within(pts []geom.Point, c geom.Point, r float64) []int {
	var out []int
	for j := range pts {
		if geom.InDisk(c, r, pts[j]) {
			out = append(out, j)
		}
	}
	return out
}

// WithinAnnulus is the naive annulus query: indices j with
// lo < |c, p_j| ≤ hi under the shared boundary predicate, ascending —
// the reference for the grid query behind Evaluator.SetRadius.
func WithinAnnulus(pts []geom.Point, c geom.Point, lo, hi float64) []int {
	var out []int
	for j := range pts {
		if geom.InDisk(c, hi, pts[j]) && !geom.InDisk(c, lo, pts[j]) {
			out = append(out, j)
		}
	}
	return out
}

// NNF builds the Nearest Neighbor Forest by the definition: every node
// links to its nearest neighbor within communication range, ties broken
// toward the smaller index.
func NNF(pts []geom.Point) *graph.Graph {
	g := graph.New(len(pts))
	for u := range pts {
		best, bestD := -1, math.Inf(1)
		for v := range pts {
			if v == u {
				continue
			}
			if d := pts[u].Dist(pts[v]); d < bestD {
				best, bestD = v, d
			}
		}
		if best >= 0 && bestD <= udg.Radius*(1+1e-9) {
			g.AddEdge(u, best, bestD)
		}
	}
	return g
}

// UDG builds the unit disk graph by the quadratic definition: an edge for
// every pair within communication range.
func UDG(pts []geom.Point) *graph.Graph {
	g := graph.New(len(pts))
	for u := range pts {
		for v := u + 1; v < len(pts); v++ {
			if d := pts[u].Dist(pts[v]); d <= udg.Radius*(1+1e-9) {
				g.AddEdge(u, v, d)
			}
		}
	}
	return g
}

// Components labels the UDG components by brute-force flood fill over the
// pairwise distance matrix, returning the label vector and the count.
func Components(pts []geom.Point) ([]int, int) {
	n := len(pts)
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	k := 0
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		queue := []int{s}
		label[s] = k
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if label[v] < 0 && pts[u].Dist(pts[v]) <= udg.Radius*(1+1e-9) {
					label[v] = k
					queue = append(queue, v)
				}
			}
		}
		k++
	}
	return label, k
}

// MSTWeight returns the total weight of a minimum spanning forest of the
// UDG by the textbook O(n³) Prim (one pass per component, no heap) — the
// reference for graph.EuclideanMST's filtered Kruskal.
func MSTWeight(pts []geom.Point) float64 {
	n := len(pts)
	inTree := make([]bool, n)
	dist := make([]float64, n)
	total := 0.0
	for root := 0; root < n; root++ {
		if inTree[root] {
			continue
		}
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[root] = 0
		for {
			u, best := -1, math.Inf(1)
			for v := 0; v < n; v++ {
				if !inTree[v] && dist[v] < best {
					u, best = v, dist[v]
				}
			}
			if u < 0 {
				break
			}
			inTree[u] = true
			total += dist[u]
			for v := 0; v < n; v++ {
				if inTree[v] {
					continue
				}
				if d := pts[u].Dist(pts[v]); d <= udg.Radius*(1+1e-9) && d < dist[v] {
					dist[v] = d
				}
			}
		}
	}
	return total
}

// MutualGraph returns Ĝ(r) by the definition in internal/opt: edges
// between nodes that mutually reach each other within their radii and
// within unit range.
func MutualGraph(pts []geom.Point, radii []float64) *graph.Graph {
	g := graph.New(len(pts))
	for u := range pts {
		for v := u + 1; v < len(pts); v++ {
			d := pts[u].Dist(pts[v])
			if d <= udg.Radius*(1+1e-9) && d <= radii[u]*(1+1e-9) && d <= radii[v]*(1+1e-9) {
				g.AddEdge(u, v, d)
			}
		}
	}
	return g
}

// Feasible reports whether the radius assignment preserves the UDG
// component structure: the partition of Ĝ(r) equals the UDG's (compared
// label-by-label, not just by count).
func Feasible(pts []geom.Point, radii []float64) bool {
	wantLabel, wantK := Components(pts)
	gotLabel, gotK := MutualGraph(pts, radii).Components()
	if gotK != wantK {
		return false
	}
	// Both labelings are canonical (first-seen order), so after count
	// equality a pointwise comparison via a remap detects any difference.
	remap := make(map[int]int)
	for i := range wantLabel {
		m, ok := remap[gotLabel[i]]
		if !ok {
			remap[gotLabel[i]] = wantLabel[i]
		} else if m != wantLabel[i] {
			return false
		}
	}
	return true
}

// MaxBruteN bounds the instance size BruteForceOptimal accepts.
const MaxBruteN = 9

// BruteForceOptimal enumerates every radius assignment over the
// per-node candidate sets (distances to in-range nodes, exactly the space
// internal/opt searches) and returns the minimum interference over
// assignments whose mutual-reachability graph preserves the UDG
// components, together with an attaining assignment. It is the oracle for
// opt.Exact at n ≤ MaxBruteN.
//
// The only concession to tractability is the obvious monotonicity skip —
// interference of a prefix (unassigned radii zero) never exceeds the
// finished assignment's, so prefixes already at or above the incumbent
// are not extended. Every evaluation is a fresh quadratic recompute.
func BruteForceOptimal(pts []geom.Point) (int, []float64) {
	n := len(pts)
	if n > MaxBruteN {
		panic("oracle: instance too large for brute force")
	}
	if n == 0 {
		return 0, nil
	}
	base := UDG(pts)
	cand := make([][]float64, n)
	for u := 0; u < n; u++ {
		if base.Degree(u) == 0 {
			cand[u] = []float64{0}
			continue
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if d := pts[u].Dist(pts[v]); d <= udg.Radius*(1+1e-9) {
				cand[u] = append(cand[u], d)
			}
		}
	}

	best := math.MaxInt
	var bestRadii []float64
	radii := make([]float64, n)
	var enumerate func(u int)
	enumerate = func(u int) {
		if Interference(pts, radii).Max() >= best {
			return
		}
		if u == n {
			if Feasible(pts, radii) {
				best = Interference(pts, radii).Max()
				bestRadii = append(bestRadii[:0], radii...)
			}
			return
		}
		for _, r := range cand[u] {
			radii[u] = r
			enumerate(u + 1)
			radii[u] = 0
		}
	}
	enumerate(0)
	if bestRadii == nil {
		return -1, nil // no feasible assignment (cannot happen: UDG radii are feasible)
	}
	return best, bestRadii
}
