package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestMovePointAgainstShadow drives a randomized walk of relocations,
// radius updates, arrivals, and departures through the DiffEvaluator and
// verifies every engine observable against the naive recount after each
// step — the correctness gate for the in-place MovePoint path.
func TestMovePointAgainstShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(7311))
	var pts []geom.Point
	for i := 0; i < 40; i++ {
		pts = append(pts, geom.Pt(rng.Float64()*6, rng.Float64()*6))
	}
	d := NewDiffEvaluator(pts)
	for i := range pts {
		d.SetRadius(i, rng.Float64()*2)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 600; step++ {
		switch roll := rng.Intn(10); {
		case roll < 6:
			d.MovePoint(rng.Intn(d.N()), geom.Pt(rng.Float64()*6, rng.Float64()*6))
		case roll < 8:
			d.SetRadius(rng.Intn(d.N()), rng.Float64()*2)
		case roll < 9:
			d.AddPoint(geom.Pt(rng.Float64()*6, rng.Float64()*6))
		default:
			if d.N() > 8 {
				d.RemovePoint(rng.Intn(d.N()))
			}
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
