package oracle_test

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/phys"
)

// FuzzPhysEvaluator drives the shadow-checked physical evaluator with a
// byte-coded op interpreter: the first bytes seed an instance (same
// 5-byte encoding as FuzzCheckRadii), the rest are 4-byte ops covering
// every mutation path — radius updates at arbitrary snapshot depth,
// structural edits at depth zero, whole-vector resets. Verify
// recomputes the quantized power sums naively and requires bit-exact
// agreement after every few ops and again after unwinding.
func FuzzPhysEvaluator(f *testing.F) {
	// One mid-size instance with a pair of coincident points and a mix
	// of ops; one tiny instance driven through structural churn.
	f.Add([]byte{
		0, 0, 0, 0, 255, 0, 0, 0, 0, 128, 255, 255, 255, 255, 64,
		0xff, // end of instance (odd stride tail ignored)
		0, 0, 200, 0, 2, 0, 0, 0, 4, 100, 100, 0, 3, 0, 0, 0,
	})
	f.Add([]byte{
		16, 0, 16, 0, 40, 240, 0, 240, 0, 40,
		0xff,
		4, 50, 50, 0, 6, 0, 200, 200, 7, 13, 7, 0, 5, 0, 0, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Split instance bytes from op bytes at the first 0xff marker.
		inst := data
		var ops []byte
		for i, b := range data {
			if b == 0xff {
				inst, ops = data[:i], data[i+1:]
				break
			}
		}
		pts, radii := decodeInstance(inst)
		if len(pts) == 0 {
			pts = []geom.Point{geom.Pt(0, 0)}
			radii = []float64{0}
		}
		d := oracle.NewDiffPhysEvaluator(pts, phys.Default())
		d.BatchSet(radii, 0)
		if err := d.Verify(); err != nil {
			t.Fatalf("after seed BatchSet: %v", err)
		}

		for i := 0; i+4 <= len(ops) && d.N() > 0; i += 4 {
			op, a, b, c := ops[i], ops[i+1], ops[i+2], ops[i+3]
			u := int(a) % d.N()
			switch op % 8 {
			case 0:
				d.SetRadius(u, float64(b)/255*4)
			case 1:
				d.GrowTo(u, float64(b)/255*4)
			case 2:
				if d.Depth() < 6 {
					d.Snapshot()
				}
			case 3:
				if d.Depth() > 0 {
					d.Restore()
				}
			case 4:
				if d.Depth() == 0 && d.N() < 64 {
					d.AddPoint(geom.Pt(float64(b)/255*8, float64(c)/255*8))
				}
			case 5:
				if d.Depth() == 0 && d.N() > 1 {
					d.RemovePoint(u)
				}
			case 6:
				if d.Depth() == 0 {
					d.MovePoint(u, geom.Pt(float64(b)/255*8, float64(c)/255*8))
				}
			default:
				if d.Depth() == 0 {
					rr := make([]float64, d.N())
					for j := range rr {
						rr[j] = float64((int(b)+j*int(c))%256) / 255 * 4
					}
					d.BatchSet(rr, 0)
				}
			}
			if i/4%8 == 7 {
				if err := d.Verify(); err != nil {
					t.Fatalf("after op %d (code %d): %v", i/4, op%8, err)
				}
			}
		}
		d.Unwind()
		if err := d.Verify(); err != nil {
			t.Fatalf("after unwind: %v", err)
		}
	})
}
