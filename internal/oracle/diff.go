package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// DiffEvaluator shadows a core.Evaluator with the obvious slice
// semantics: every mutation is applied to both the optimized engine and a
// plain (points, radii, snapshot-stack) model, and Verify recomputes the
// naive interference vector and compares every observable — radii,
// per-node I(v), and the maximum. Fuzzers and property tests drive this
// instead of hand-rolling their own shadow state.
//
// Mutations mirror the Evaluator API including its contracts: BatchSet,
// AddPoint, and RemovePoint must not be called while a snapshot is
// active (the underlying engine panics, by design).
type DiffEvaluator struct {
	ev    *core.Evaluator
	pts   []geom.Point
	radii []float64
	stack [][]float64 // shadow of the snapshot marks
}

// NewDiffEvaluator starts both the engine and the shadow model from the
// all-zero assignment over pts.
func NewDiffEvaluator(pts []geom.Point) *DiffEvaluator {
	return &DiffEvaluator{
		ev:    core.NewEvaluator(pts),
		pts:   append([]geom.Point(nil), pts...),
		radii: make([]float64, len(pts)),
	}
}

// Evaluator exposes the engine under test (for assertions beyond Verify).
func (d *DiffEvaluator) Evaluator() *core.Evaluator { return d.ev }

// N returns the current number of points.
func (d *DiffEvaluator) N() int { return len(d.pts) }

// Depth returns the number of active snapshots.
func (d *DiffEvaluator) Depth() int { return len(d.stack) }

// SetRadius mirrors Evaluator.SetRadius, returning the prior radius.
func (d *DiffEvaluator) SetRadius(u int, r float64) float64 {
	old := d.ev.SetRadius(u, r)
	d.radii[u] = r
	return old
}

// GrowTo mirrors Evaluator.GrowTo, returning the prior radius.
func (d *DiffEvaluator) GrowTo(u int, r float64) float64 {
	old := d.ev.GrowTo(u, r)
	if r > d.radii[u] {
		d.radii[u] = r
	}
	return old
}

// Points delegates to the engine (the maintainer reads positions through
// this); Verify still compares against the shadow's own copy.
func (d *DiffEvaluator) Points() []geom.Point { return d.ev.Points() }

// Grid delegates the engine's spatial index, so maintenance pipelines
// that run range queries off the evaluator work unchanged on the shadow.
func (d *DiffEvaluator) Grid() *geom.Grid { return d.ev.Grid() }

// Max delegates to the engine; Verify independently recomputes it.
func (d *DiffEvaluator) Max() int { return d.ev.Max() }

// SumI delegates to the engine; Verify covers the underlying vector.
func (d *DiffEvaluator) SumI() int { return d.ev.SumI() }

// Radius delegates the per-node radius read; Verify checks the radii.
func (d *DiffEvaluator) Radius(u int) float64 { return d.ev.Radius(u) }

// I delegates the per-node interference read; Verify recomputes the
// whole vector naively.
func (d *DiffEvaluator) I(v int) int { return d.ev.I(v) }

// ExportState delegates the engine's copy-on-read snapshot export.
func (d *DiffEvaluator) ExportState(dst *core.State) *core.State {
	return d.ev.ExportState(dst)
}

// Snapshot mirrors Evaluator.Snapshot; the shadow pushes a deep copy of
// the radii, so Restore is checked against an independent implementation
// of the same semantics rather than against the engine's own undo log.
func (d *DiffEvaluator) Snapshot() {
	d.ev.Snapshot()
	d.stack = append(d.stack, append([]float64(nil), d.radii...))
}

// Restore mirrors Evaluator.Restore.
func (d *DiffEvaluator) Restore() {
	d.ev.Restore()
	d.radii = d.stack[len(d.stack)-1]
	d.stack = d.stack[:len(d.stack)-1]
}

// BatchSet mirrors Evaluator.BatchSet.
func (d *DiffEvaluator) BatchSet(radii []float64, workers int) {
	d.ev.BatchSet(radii, workers)
	copy(d.radii, radii)
}

// AddPoint mirrors Evaluator.AddPoint and returns the new index.
func (d *DiffEvaluator) AddPoint(p geom.Point) int {
	idx := d.ev.AddPoint(p)
	d.pts = append(d.pts, p)
	d.radii = append(d.radii, 0)
	return idx
}

// RemovePoint mirrors Evaluator.RemovePoint.
func (d *DiffEvaluator) RemovePoint(idx int) {
	d.ev.RemovePoint(idx)
	d.pts = append(d.pts[:idx], d.pts[idx+1:]...)
	d.radii = append(d.radii[:idx], d.radii[idx+1:]...)
}

// MovePoint mirrors Evaluator.MovePoint: the shadow just rewrites the
// position, so Verify's naive recount independently checks the engine's
// incremental relocation bookkeeping.
func (d *DiffEvaluator) MovePoint(idx int, p geom.Point) {
	d.ev.MovePoint(idx, p)
	d.pts[idx] = p
}

// Reset mirrors Evaluator.Reset.
func (d *DiffEvaluator) Reset() {
	d.ev.Reset()
	for i := range d.radii {
		d.radii[i] = 0
	}
	d.stack = d.stack[:0]
}

// Unwind pops every remaining snapshot (engine and shadow alike), so a
// test can end a random operation sequence in a verifiable base state.
func (d *DiffEvaluator) Unwind() {
	for len(d.stack) > 0 {
		d.Restore()
	}
}

// Verify recomputes the naive interference of the shadow state and
// compares every observable of the engine against it, returning an error
// naming the first divergence.
func (d *DiffEvaluator) Verify() error {
	if d.ev.N() != len(d.pts) {
		return fmt.Errorf("oracle: evaluator has %d points, shadow %d", d.ev.N(), len(d.pts))
	}
	for u, r := range d.radii {
		if d.ev.Radius(u) != r {
			return fmt.Errorf("oracle: radius of node %d: evaluator %v, shadow %v", u, d.ev.Radius(u), r)
		}
	}
	want := Interference(d.pts, d.radii)
	for v := range want {
		if d.ev.I(v) != want[v] {
			return fmt.Errorf("oracle: I(%d): evaluator %d, naive %d", v, d.ev.I(v), want[v])
		}
	}
	if d.ev.Max() != want.Max() {
		return fmt.Errorf("oracle: max: evaluator %d, naive %d", d.ev.Max(), want.Max())
	}
	return nil
}
