package oracle_test

import (
	"math/rand"
	"testing"

	"repro/internal/oracle"
)

// TestLawsHoldOnRandomInstances sweeps every metamorphic law over many
// independently seeded instances. Each law draws its own instance shape,
// so this is the package's broad property net; fuzzing extends the same
// checks to adversarial byte-derived instances.
func TestLawsHoldOnRandomInstances(t *testing.T) {
	for _, law := range oracle.Laws() {
		law := law
		t.Run(law.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 150; seed++ {
				if err := law.Check(rand.New(rand.NewSource(seed))); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestLawNamesUnique guards the catalogue against copy-paste entries; test
// filters and corpus directories key on the name.
func TestLawNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, law := range oracle.Laws() {
		if seen[law.Name] {
			t.Fatalf("duplicate law name %q", law.Name)
		}
		seen[law.Name] = true
	}
}
