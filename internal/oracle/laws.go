package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
)

// Metamorphic laws: properties the interference measure satisfies on
// every instance, stated as generators — each law draws its own random
// instance from the supplied source and checks the property against both
// the naive model and the optimized engine. Property tests loop Laws()
// over many seeds; fuzzers can call an individual law with a
// fuzz-controlled source.
//
// Floating-point discipline: the scale law multiplies by powers of two
// (exact in IEEE double, so disk membership is preserved bit-for-bit even
// for nodes exactly on a boundary) and the translation law quantizes
// coordinates to multiples of 2⁻¹⁶ and translates by integers (coordinate
// differences, hence all distances, are then bit-identical). Anything
// sloppier would report fp ties as law violations.

// Law is one named metamorphic property.
type Law struct {
	// Name identifies the law in test output.
	Name string
	// Check draws a random instance and verifies the property, returning
	// an error describing the violation (nil when the law holds).
	Check func(rng *rand.Rand) error
}

// Laws returns the full catalogue, graph-measure laws followed by the
// physical-measure laws from physlaws.go.
func Laws() []Law {
	return append([]Law{
		{"arrival-delta-at-most-one", lawArrivalDelta},
		{"scale-invariance", lawScaleInvariance},
		{"translate-invariance", lawTranslateInvariance},
		{"radius-monotonicity", lawMonotonicity},
		{"snapshot-roundtrip", lawSnapshotRoundTrip},
	}, physLaws()...)
}

// lawInstance draws n points quantized to multiples of 2⁻¹⁶ in a square
// of the given side, and radii that mix exact pairwise distances (nodes
// exactly on disk boundaries, the hard case) with arbitrary values.
func lawInstance(rng *rand.Rand, n int, side float64) ([]geom.Point, []float64) {
	const q = 1.0 / (1 << 16)
	pts := make([]geom.Point, n)
	cells := int(side / q)
	for i := range pts {
		pts[i] = geom.Pt(float64(rng.Intn(cells))*q, float64(rng.Intn(cells))*q)
	}
	radii := make([]float64, n)
	for u := range radii {
		switch rng.Intn(3) {
		case 0: // silent
		case 1: // exactly reaching some other node
			if n > 1 {
				v := rng.Intn(n - 1)
				if v >= u {
					v++
				}
				radii[u] = pts[u].Dist(pts[v])
			}
		default:
			radii[u] = rng.Float64() * side
		}
	}
	return pts, radii
}

// lawArrivalDelta: with existing radii fixed, one arrival raises any
// existing node's interference by at most 1 and lowers none — the paper's
// robustness theorem (Section 3). Checked against the naive model and
// against core.FixedTopologyDelta.
func lawArrivalDelta(rng *rand.Rand) error {
	n := 2 + rng.Intn(30)
	pts, radii := lawInstance(rng, n, 4)
	newcomer := geom.Pt(rng.Float64()*4, rng.Float64()*4)
	newR := rng.Float64() * 6

	before := Interference(pts, radii)
	after := Interference(append(append([]geom.Point(nil), pts...), newcomer),
		append(append([]float64(nil), radii...), newR))
	fast := core.FixedTopologyDelta(append(append([]geom.Point(nil), pts...), newcomer), radii, newR)
	for v := 0; v < n; v++ {
		d := after[v] - before[v]
		if d < 0 || d > 1 {
			return fmt.Errorf("arrival delta of node %d is %d, want 0 or 1", v, d)
		}
		if fast[v] != d {
			return fmt.Errorf("node %d: FixedTopologyDelta %d, naive %d", v, fast[v], d)
		}
	}
	return nil
}

// lawScaleInvariance: I is scale-free — multiplying every coordinate and
// radius by the same factor leaves the whole vector unchanged. Factors
// are powers of two so the transformation is exact in fp.
func lawScaleInvariance(rng *rand.Rand) error {
	pts, radii := lawInstance(rng, 2+rng.Intn(30), 4)
	s := []float64{0.25, 0.5, 2, 4, 8}[rng.Intn(5)]
	scaledPts := make([]geom.Point, len(pts))
	scaledRadii := make([]float64, len(radii))
	for i := range pts {
		scaledPts[i] = pts[i].Scale(s)
		scaledRadii[i] = radii[i] * s
	}
	orig := Interference(pts, radii)
	scaled := Interference(scaledPts, scaledRadii)
	for v := range orig {
		if orig[v] != scaled[v] {
			return fmt.Errorf("I(%d) changed under ×%v scaling: %d → %d", v, s, orig[v], scaled[v])
		}
	}
	// The optimized path must be scale-free too.
	fast := core.InterferenceRadii(scaledPts, scaledRadii)
	for v := range orig {
		if fast[v] != orig[v] {
			return fmt.Errorf("core I(%d) under ×%v scaling: %d, want %d", v, s, fast[v], orig[v])
		}
	}
	return nil
}

// lawTranslateInvariance: I depends only on relative positions. Integer
// translations of quantized coordinates keep every coordinate difference
// bit-identical, so the vectors must match exactly.
func lawTranslateInvariance(rng *rand.Rand) error {
	pts, radii := lawInstance(rng, 2+rng.Intn(30), 4)
	dx := float64(rng.Intn(2001) - 1000)
	dy := float64(rng.Intn(2001) - 1000)
	moved := make([]geom.Point, len(pts))
	for i := range pts {
		moved[i] = pts[i].Add(geom.Pt(dx, dy))
	}
	orig := Interference(pts, radii)
	trans := Interference(moved, radii)
	for v := range orig {
		if orig[v] != trans[v] {
			return fmt.Errorf("I(%d) changed under (%v,%v) translation: %d → %d", v, dx, dy, orig[v], trans[v])
		}
	}
	fast := core.InterferenceRadii(moved, radii)
	for v := range orig {
		if fast[v] != orig[v] {
			return fmt.Errorf("core I(%d) under translation: %d, want %d", v, fast[v], orig[v])
		}
	}
	return nil
}

// lawMonotonicity: growing one node's radius never lowers any node's
// interference, and the incremental engine agrees with a naive recompute
// after the growth.
func lawMonotonicity(rng *rand.Rand) error {
	pts, radii := lawInstance(rng, 2+rng.Intn(30), 4)
	u := rng.Intn(len(pts))
	grown := append([]float64(nil), radii...)
	grown[u] = radii[u] + rng.Float64()*4

	before := Interference(pts, radii)
	after := Interference(pts, grown)
	for v := range before {
		if after[v] < before[v] {
			return fmt.Errorf("I(%d) dropped from %d to %d when r_%d grew", v, before[v], after[v], u)
		}
	}
	ev := core.NewEvaluator(pts)
	ev.BatchSet(radii, 0)
	ev.SetRadius(u, grown[u])
	for v := range after {
		if ev.I(v) != after[v] {
			return fmt.Errorf("evaluator I(%d) after growth: %d, naive %d", v, ev.I(v), after[v])
		}
	}
	return nil
}

// lawSnapshotRoundTrip: a Snapshot, any sequence of radius mutations (and
// nested snapshot/restore pairs), then Restore must return the engine to
// the exact pre-snapshot state — radii, vector, and maximum.
func lawSnapshotRoundTrip(rng *rand.Rand) error {
	pts, radii := lawInstance(rng, 2+rng.Intn(30), 4)
	d := NewDiffEvaluator(pts)
	d.BatchSet(radii, 0)
	wantRadii := append([]float64(nil), radii...)
	wantVec := d.Evaluator().Vector()
	wantMax := d.Evaluator().Max()

	d.Snapshot()
	for i, ops := 0, 4+rng.Intn(24); i < ops; i++ {
		switch rng.Intn(4) {
		case 0:
			d.GrowTo(rng.Intn(len(pts)), rng.Float64()*6)
		case 1:
			if d.Depth() < 4 {
				d.Snapshot()
			}
		case 2:
			if d.Depth() > 1 { // keep the outermost snapshot for the round trip
				d.Restore()
			}
		default:
			d.SetRadius(rng.Intn(len(pts)), rng.Float64()*6)
		}
	}
	for d.Depth() > 1 {
		d.Restore()
	}
	d.Restore()

	if err := d.Verify(); err != nil {
		return err
	}
	ev := d.Evaluator()
	for u := range wantRadii {
		if ev.Radius(u) != wantRadii[u] {
			return fmt.Errorf("radius of %d after round trip: %v, want %v", u, ev.Radius(u), wantRadii[u])
		}
	}
	for v := range wantVec {
		if ev.I(v) != wantVec[v] {
			return fmt.Errorf("I(%d) after round trip: %d, want %d", v, ev.I(v), wantVec[v])
		}
	}
	if ev.Max() != wantMax {
		return fmt.Errorf("max after round trip: %d, want %d", ev.Max(), wantMax)
	}
	return nil
}
