package phys

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Evaluator maintains per-receiver quantized power sums incrementally
// under the core.Measure mutation surface. Where core.Evaluator counts
// covering disks (±1 per annulus node), this engine adds and removes
// Units(r, d²) contributions per far-field neighborhood node: a radius
// change r→r' touches Within(u, F·max(r, r')) — power changes at every
// distance, not just in the annulus — and each touched receiver's sum
// moves by the exact integer delta, so the update is reversible and
// order-independent.
//
// Max is kept by a (maxLevel, count-at-max) pair instead of core's
// dense histogram — levels can reach ~2^20 for coincident points, far
// too sparse to array-index. Increases update the pair in O(1);
// the rare decrease that empties the top level falls back to one O(n)
// rescan, counted by rim_phys_max_rescans_total.
type Evaluator struct {
	model Model
	pts   []geom.Point
	grid  *geom.Grid
	radii []float64
	pw    []int64 // quantized received power per node, Σ Units(r_u, d²(u,v))

	sumLevels int64
	maxLevel  int
	atMax     int     // nodes with level == maxLevel
	maxR      float64 // upper bound on max_u radii[u] (never shrinks eagerly)
	buf       []int

	// Undo log: SetRadius journals prior radii while snapshots are
	// active; Restore replays the tail in reverse (exact, because
	// integer deltas cancel).
	undo  []undoRec
	marks []int
}

type undoRec struct {
	u int
	r float64
}

// NewEvaluator starts from the all-zero radius assignment under the
// given model. The point slice is copied.
func NewEvaluator(pts []geom.Point, m Model) *Evaluator {
	own := append([]geom.Point(nil), pts...)
	ev := &Evaluator{
		model: m,
		pts:   own,
		radii: make([]float64, len(own)),
		pw:    make([]int64, len(own)),
		atMax: len(own),
	}
	if len(own) > 0 {
		ev.grid = geom.NewGrid(own, core.GridCell(own))
	}
	if obs.On() {
		obsTruncBound.Set(m.TruncationBound(len(own)))
	}
	return ev
}

// NewMeasure is the core.MeasureFactory for the default physical model.
func NewMeasure(pts []geom.Point) core.Measure {
	return NewEvaluator(pts, Default())
}

var _ core.Measure = (*Evaluator)(nil)

// Model returns the physical-layer constants this evaluator runs under.
func (ev *Evaluator) Model() Model { return ev.model }

// N returns the number of points under evaluation.
func (ev *Evaluator) N() int { return len(ev.pts) }

// Points returns the evaluated point slice (shared; treat as read-only).
func (ev *Evaluator) Points() []geom.Point { return ev.pts }

// Grid returns the evaluator's spatial index (shared; treat as
// read-only).
func (ev *Evaluator) Grid() *geom.Grid { return ev.grid }

// Radius returns the current radius of u.
func (ev *Evaluator) Radius(u int) float64 { return ev.radii[u] }

// Radii returns a copy of the current radius assignment.
func (ev *Evaluator) Radii() []float64 {
	return append([]float64(nil), ev.radii...)
}

// Power returns v's quantized received power sum (UnitScale units per
// decode threshold). This is the exact quantity the naive oracle
// recomputes from scratch.
func (ev *Evaluator) Power(v int) int64 { return ev.pw[v] }

// I returns v's integer interference level — received power in whole
// decode thresholds, ⌊pw/UnitScale⌋.
func (ev *Evaluator) I(v int) int { return level(ev.pw[v]) }

// Max returns the maximum interference level over all receivers.
func (ev *Evaluator) Max() int { return ev.maxLevel }

// SumI returns Σ_v level(v), maintained incrementally.
func (ev *Evaluator) SumI() int { return int(ev.sumLevels) }

func level(pw int64) int { return int(pw >> LogUnitScale) }

// SetRadius changes node u's transmission radius and returns the
// previous value. Cost is O(|D(u, F·max(old, new)) ∩ V|) — every
// receiver inside the larger far-field disk re-weighs u's contribution.
func (ev *Evaluator) SetRadius(u int, r float64) float64 {
	old := ev.radii[u]
	if r == old {
		return old
	}
	if r < 0 {
		panic(fmt.Sprintf("phys: negative radius %v for node %d", r, u))
	}
	if len(ev.marks) > 0 {
		ev.undo = append(ev.undo, undoRec{u, old})
	}
	ev.apply(u, r)
	return old
}

// apply performs the radius change without journaling.
func (ev *Evaluator) apply(u int, r float64) {
	old := ev.radii[u]
	ev.radii[u] = r
	if r > ev.maxR {
		ev.maxR = r
	}
	hi := old
	if r > hi {
		hi = r
	}
	if hi <= 0 || ev.grid == nil {
		return
	}
	p := ev.pts[u]
	ev.buf = ev.grid.Within(p, ev.model.FarField*hi, ev.buf[:0])
	if obs.On() {
		obsSetRadius.Inc()
		obsReachNodes.Add(int64(len(ev.buf)))
	}
	for _, v := range ev.buf {
		if v == u {
			continue
		}
		d2 := p.Dist2(ev.pts[v])
		if delta := ev.model.Units(r, d2) - ev.model.Units(old, d2); delta != 0 {
			ev.addPW(v, delta)
		}
	}
}

// GrowTo raises u's radius to at least r (no-op if already larger),
// returning the previous radius.
func (ev *Evaluator) GrowTo(u int, r float64) float64 {
	if r <= ev.radii[u] {
		return ev.radii[u]
	}
	return ev.SetRadius(u, r)
}

// addPW moves v's power sum by delta and maintains sumLevels and the
// (maxLevel, atMax) pair.
func (ev *Evaluator) addPW(v int, delta int64) {
	oldL := level(ev.pw[v])
	ev.pw[v] += delta
	newL := level(ev.pw[v])
	if newL == oldL {
		return
	}
	ev.sumLevels += int64(newL - oldL)
	if newL > oldL {
		if newL > ev.maxLevel {
			ev.maxLevel, ev.atMax = newL, 1
			if obs.On() {
				obsMaxLevel.Set(float64(newL))
			}
		} else if newL == ev.maxLevel {
			ev.atMax++
		}
	} else if oldL == ev.maxLevel {
		ev.atMax--
		if ev.atMax == 0 {
			ev.rescanMax()
		}
	}
}

// rescanMax recounts the (maxLevel, atMax) pair in one pass — the
// fallback when every holder of the previous maximum decreased.
func (ev *Evaluator) rescanMax() {
	if obs.On() {
		obsMaxRescans.Inc()
	}
	maxL, cnt := 0, 0
	for _, p := range ev.pw {
		if l := level(p); l > maxL {
			maxL, cnt = l, 1
		} else if l == maxL {
			cnt++
		}
	}
	ev.maxLevel, ev.atMax = maxL, cnt
	if obs.On() {
		obsMaxLevel.Set(float64(maxL))
	}
}

// Snapshot marks the current radius assignment; see core.Evaluator.
func (ev *Evaluator) Snapshot() {
	ev.marks = append(ev.marks, len(ev.undo))
}

// Restore rolls back to the most recent Snapshot exactly: integer
// deltas cancel bit-for-bit, so restored state is identical to the
// state at Snapshot, not merely close.
func (ev *Evaluator) Restore() {
	if len(ev.marks) == 0 {
		panic("phys: Restore without Snapshot")
	}
	mark := ev.marks[len(ev.marks)-1]
	ev.marks = ev.marks[:len(ev.marks)-1]
	for i := len(ev.undo) - 1; i >= mark; i-- {
		rec := ev.undo[i]
		if ev.radii[rec.u] != rec.r {
			ev.apply(rec.u, rec.r)
		}
	}
	ev.undo = ev.undo[:mark]
}

// BatchSet replaces the entire radius assignment in one pass over the
// senders' far-field disks. workers is accepted for interface parity
// and ignored: accumulation is serial because it is already
// output-sensitive over the grid, and the quantized integer adds keep
// any future sharding bit-identical. It panics while a snapshot is
// active.
func (ev *Evaluator) BatchSet(radii []float64, workers int) {
	_ = workers
	if len(radii) != len(ev.pts) {
		panic("phys: radius vector length mismatch")
	}
	if len(ev.marks) > 0 {
		panic("phys: BatchSet during active snapshot")
	}
	copy(ev.radii, radii)
	ev.maxR = 0
	for _, r := range ev.radii {
		if r < 0 {
			panic("phys: negative radius in BatchSet")
		}
		if r > ev.maxR {
			ev.maxR = r
		}
	}
	if len(ev.pts) == 0 {
		return
	}
	if obs.On() {
		obsBatchSets.Inc()
		sp := obs.Start("phys.batchset")
		defer sp.End()
	}
	for i := range ev.pw {
		ev.pw[i] = 0
	}
	for u, r := range ev.radii {
		if r <= 0 {
			continue
		}
		p := ev.pts[u]
		ev.buf = ev.grid.Within(p, ev.model.FarField*r, ev.buf[:0])
		for _, v := range ev.buf {
			if v == u {
				continue
			}
			ev.pw[v] += ev.model.Units(r, p.Dist2(ev.pts[v]))
		}
	}
	ev.rebuildLevels()
}

// rebuildLevels recomputes sumLevels and the max pair from pw.
func (ev *Evaluator) rebuildLevels() {
	ev.sumLevels = 0
	maxL, cnt := 0, 0
	for _, p := range ev.pw {
		l := level(p)
		ev.sumLevels += int64(l)
		if l > maxL {
			maxL, cnt = l, 1
		} else if l == maxL {
			cnt++
		}
	}
	ev.maxLevel, ev.atMax = maxL, cnt
	if obs.On() {
		obsMaxLevel.Set(float64(maxL))
	}
}

// AddPoint appends a new (initially silent) node and returns its index.
// The newcomer's own power sum is one range query bounded by the
// largest current far-field reach. It panics while a snapshot is
// active.
func (ev *Evaluator) AddPoint(p geom.Point) int {
	if len(ev.marks) > 0 {
		panic("phys: AddPoint during active snapshot")
	}
	if obs.On() {
		obsAddPoints.Inc()
	}
	if ev.grid == nil {
		ev.pts = append(ev.pts, p)
		ev.grid = geom.NewGrid(ev.pts, 1)
	} else {
		ev.grid.Add(p)
		ev.pts = ev.grid.Points()
	}
	idx := len(ev.pts) - 1
	ev.radii = append(ev.radii, 0)
	ev.pw = append(ev.pw, ev.recount(idx, p))
	l := level(ev.pw[idx])
	ev.sumLevels += int64(l)
	if l > ev.maxLevel {
		ev.maxLevel, ev.atMax = l, 1
	} else if l == ev.maxLevel {
		ev.atMax++
	}
	if obs.On() {
		obsMaxLevel.Set(float64(ev.maxLevel))
		obsTruncBound.Set(ev.model.TruncationBound(len(ev.pts)))
	}
	return idx
}

// recount computes node idx's power sum from scratch at position p:
// one range query bounded by the largest current far-field reach.
func (ev *Evaluator) recount(idx int, p geom.Point) int64 {
	if ev.maxR <= 0 {
		return 0
	}
	var pw int64
	ev.buf = ev.grid.Within(p, ev.model.FarField*ev.maxR, ev.buf[:0])
	for _, u := range ev.buf {
		if u != idx && ev.radii[u] > 0 {
			pw += ev.model.Units(ev.radii[u], ev.pts[u].Dist2(p))
		}
	}
	return pw
}

// RemovePoint deletes the node at idx: its signal is silenced and it
// stops counting as a receiver. Indices above idx shift down by one.
// It panics while a snapshot is active.
func (ev *Evaluator) RemovePoint(idx int) {
	if len(ev.marks) > 0 {
		panic("phys: RemovePoint during active snapshot")
	}
	if idx < 0 || idx >= len(ev.pts) {
		panic(fmt.Sprintf("phys: RemovePoint index %d out of range", idx))
	}
	if obs.On() {
		obsRemovePoints.Inc()
	}
	ev.SetRadius(idx, 0)
	l := level(ev.pw[idx])
	ev.sumLevels -= int64(l)
	wasMax := l == ev.maxLevel
	ev.grid.Remove(idx)
	ev.pts = ev.grid.Points()
	ev.radii = append(ev.radii[:idx], ev.radii[idx+1:]...)
	ev.pw = append(ev.pw[:idx], ev.pw[idx+1:]...)
	if wasMax {
		ev.atMax--
		if ev.atMax == 0 {
			ev.rescanMax()
		}
	}
	if obs.On() {
		obsMaxLevel.Set(float64(ev.maxLevel))
		obsTruncBound.Set(ev.model.TruncationBound(len(ev.pts)))
	}
}

// MovePoint relocates the node at idx, keeping its index and radius:
// silence at the old position, recount own power at the new position,
// re-light at the new position. It panics while a snapshot is active.
func (ev *Evaluator) MovePoint(idx int, p geom.Point) {
	if len(ev.marks) > 0 {
		panic("phys: MovePoint during active snapshot")
	}
	if idx < 0 || idx >= len(ev.pts) {
		panic(fmt.Sprintf("phys: MovePoint index %d out of range", idx))
	}
	if obs.On() {
		obsMovePoints.Inc()
	}
	r := ev.radii[idx]
	ev.SetRadius(idx, 0)
	// ev.pts aliases the grid's slice, so the grid update is visible
	// through ev.pts[idx] immediately.
	ev.grid.Move(idx, p)
	if delta := ev.recount(idx, p) - ev.pw[idx]; delta != 0 {
		ev.addPW(idx, delta)
	}
	ev.SetRadius(idx, r)
}

// Reset returns the evaluator to the all-zero assignment without
// reallocating, discarding any active snapshots.
func (ev *Evaluator) Reset() {
	for i := range ev.radii {
		ev.radii[i] = 0
		ev.pw[i] = 0
	}
	ev.sumLevels = 0
	ev.maxLevel = 0
	ev.atMax = len(ev.pts)
	ev.maxR = 0
	ev.undo = ev.undo[:0]
	ev.marks = ev.marks[:0]
}

// ExportState copies the observables into dst (levels as the I
// vector), mirroring core.Evaluator.ExportState.
func (ev *Evaluator) ExportState(dst *core.State) *core.State {
	if dst == nil {
		dst = &core.State{}
	}
	dst.Points = append(dst.Points[:0], ev.pts...)
	dst.Radii = append(dst.Radii[:0], ev.radii...)
	dst.I = dst.I[:0]
	for _, p := range ev.pw {
		dst.I = append(dst.I, level(p))
	}
	dst.Max = ev.maxLevel
	return dst
}
