package phys

import "repro/internal/obs"

// Physical-evaluator metrics, mirroring internal/core's guard idiom:
// every update site checks obs.On() first, so the disabled path is one
// atomic load.
var (
	obsSetRadius = obs.Default().Counter("rim_phys_set_radius_total",
		"Single-radius physical-model evaluator updates applied.")
	obsReachNodes = obs.Default().Counter("rim_phys_reach_nodes_total",
		"Nodes enumerated inside far-field disks during physical radius updates.")
	obsBatchSets = obs.Default().Counter("rim_phys_batch_sets_total",
		"Whole-vector BatchSet evaluations on physical-model evaluators.")
	obsAddPoints = obs.Default().Counter("rim_phys_add_points_total",
		"Dynamic point insertions into physical-model evaluators.")
	obsRemovePoints = obs.Default().Counter("rim_phys_remove_points_total",
		"Dynamic point removals from physical-model evaluators.")
	obsMovePoints = obs.Default().Counter("rim_phys_move_points_total",
		"Dynamic in-place point relocations in physical-model evaluators.")
	obsMaxRescans = obs.Default().Counter("rim_phys_max_rescans_total",
		"O(n) recount fallbacks of the max-level tracker (every holder of the maximum decreased).")
	obsMaxLevel = obs.Default().Gauge("rim_phys_max_level",
		"Maximum per-receiver SINR interference level last maintained by any physical evaluator.")
	obsTruncBound = obs.Default().Gauge("rim_phys_truncation_bound",
		"Worst-case per-receiver received power ignored beyond the far-field cutoff, in decode-threshold units, for the largest instance observed.")
)
