package phys_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/phys"
)

func TestUnitsProperties(t *testing.T) {
	m := phys.Default()
	if got := m.Units(0, 1); got != 0 {
		t.Fatalf("silent sender contributes %d units", got)
	}
	if got := m.Units(1, 0); got != phys.PairCap {
		t.Fatalf("coincident pair: %d units, want PairCap", got)
	}
	// A sender exactly at distance r delivers exactly one threshold.
	if got := m.Units(2, 4); got != phys.UnitScale {
		t.Fatalf("boundary sender: %d units, want UnitScale", got)
	}
	// Strict containment dominates the threshold.
	if got := m.Units(2, 3.9); got < phys.UnitScale {
		t.Fatalf("covering sender: %d units, below UnitScale", got)
	}
	// Far field is exactly zero.
	reach := m.Reach(1)
	if got := m.Units(1, reach*reach*2); got != 0 {
		t.Fatalf("far-field sender: %d units, want 0", got)
	}
	// Monotone in r at fixed distance.
	prev := int64(-1)
	for r := 0.1; r < 8; r += 0.1 {
		u := m.Units(r, 2.25)
		if u < prev {
			t.Fatalf("Units not monotone in r at r=%v: %d < %d", r, u, prev)
		}
		prev = u
	}
	if b := m.TruncationBound(65); b != 64*math.Pow(4, -3) {
		t.Fatalf("TruncationBound(65) = %v", b)
	}
}

// zoo returns the paper's instance families at test-friendly sizes.
func zoo(rng *rand.Rand) map[string][]geom.Point {
	return map[string][]geom.Point{
		"expchain":  gen.ExpChain(12, 1<<11),
		"doubleexp": gen.DoubleExpChain(6),
		"figure1":   gen.Figure1(rng, 24, 0.3),
		"uniform":   gen.UniformSquare(rng, 40, 10),
		"clustered": gen.Clustered(rng, 40, 4, 10, 0.5),
		"highway":   gen.HighwayUniform(rng, 32, 50),
	}
}

// TestZooExactness drives every incremental path on every zoo family
// and requires bit-exact agreement with the naive O(n²) oracle: the
// acceptance bar for the physical evaluator.
func TestZooExactness(t *testing.T) {
	m := phys.Default()
	for name, pts := range zoo(rand.New(rand.NewSource(7))) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			side := gen.Bounds(pts).Width() + 1

			// Per-op SetRadius path vs BatchSet path vs naive.
			radii := make([]float64, len(pts))
			for u := range radii {
				if rng.Intn(4) > 0 {
					radii[u] = rng.Float64() * side / 4
				}
			}
			if err := oracle.CheckPhysRadii(pts, radii, m); err != nil {
				t.Fatal(err)
			}

			// Churn path: moves, removals, arrivals, speculative stacks.
			d := oracle.NewDiffPhysEvaluator(pts, m)
			d.BatchSet(radii, 0)
			for step := 0; step < 60; step++ {
				switch rng.Intn(6) {
				case 0:
					d.SetRadius(rng.Intn(d.N()), rng.Float64()*side/4)
				case 1:
					d.MovePoint(rng.Intn(d.N()), geom.Pt(rng.Float64()*side, rng.Float64()*side))
				case 2:
					if d.N() > 4 {
						d.RemovePoint(rng.Intn(d.N()))
					}
				case 3:
					d.AddPoint(geom.Pt(rng.Float64()*side, rng.Float64()*side))
				case 4:
					d.Snapshot()
					d.SetRadius(rng.Intn(d.N()), rng.Float64()*side/2)
					d.SetRadius(rng.Intn(d.N()), 0)
					d.Restore()
				default:
					d.GrowTo(rng.Intn(d.N()), rng.Float64()*side/4)
				}
				if step%10 == 9 {
					if err := d.Verify(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := d.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMaxRescanFallback forces the O(n) recount: several co-maximal
// receivers whose shared senders all go quiet.
func TestMaxRescanFallback(t *testing.T) {
	// Two tight clusters; cluster A's senders cover everyone in A.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(0.1, 0), geom.Pt(0, 0.1), geom.Pt(0.1, 0.1),
		geom.Pt(50, 50), geom.Pt(50.1, 50),
	}
	ev := phys.NewEvaluator(pts, phys.Default())
	for u := 0; u < 4; u++ {
		ev.SetRadius(u, 1)
	}
	if ev.Max() < 3 {
		t.Fatalf("cluster max level %d, want >= 3", ev.Max())
	}
	for u := 0; u < 4; u++ {
		ev.SetRadius(u, 0)
	}
	if ev.Max() != 0 || ev.SumI() != 0 {
		t.Fatalf("after silencing: max %d sum %d, want 0/0", ev.Max(), ev.SumI())
	}
	ev.SetRadius(4, 0.2)
	if ev.I(5) < 1 {
		t.Fatalf("cluster B receiver level %d, want >= 1", ev.I(5))
	}
	if ev.Max() != ev.I(5) {
		t.Fatalf("max %d != I(5) %d after rescan", ev.Max(), ev.I(5))
	}
}

func TestStructuralOpsPanicDuringSnapshot(t *testing.T) {
	for name, op := range map[string]func(*phys.Evaluator){
		"BatchSet":    func(ev *phys.Evaluator) { ev.BatchSet(make([]float64, ev.N()), 0) },
		"AddPoint":    func(ev *phys.Evaluator) { ev.AddPoint(geom.Pt(1, 1)) },
		"RemovePoint": func(ev *phys.Evaluator) { ev.RemovePoint(0) },
		"MovePoint":   func(ev *phys.Evaluator) { ev.MovePoint(0, geom.Pt(1, 1)) },
	} {
		t.Run(name, func(t *testing.T) {
			ev := phys.NewEvaluator([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, phys.Default())
			ev.Snapshot()
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic during active snapshot", name)
				}
			}()
			op(ev)
		})
	}
}

// TestScaleInvarianceExact pins the power-of-two exactness the laws
// rely on: scaling coordinates and radii by 2^k leaves every quantized
// pair contribution bit-identical.
func TestScaleInvarianceExact(t *testing.T) {
	m := phys.Default()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		r := rng.Float64() * 4
		dx, dy := rng.Float64()*8, rng.Float64()*8
		base := m.Units(r, geom.Pt(0, 0).Dist2(geom.Pt(dx, dy)))
		for _, s := range []float64{0.125, 0.5, 2, 16, 1024} {
			scaled := m.Units(r*s, geom.Pt(0, 0).Dist2(geom.Pt(dx*s, dy*s)))
			if scaled != base {
				t.Fatalf("Units changed under ×%v: %d → %d (r=%v d=(%v,%v))", s, base, scaled, r, dx, dy)
			}
		}
	}
}

func TestExportStateAndReset(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	ev := phys.NewEvaluator(pts, phys.Default())
	ev.SetRadius(0, 2.5)
	ev.SetRadius(1, 1)
	st := ev.ExportState(nil)
	if st.N() != 3 || st.Max != ev.Max() {
		t.Fatalf("export: n=%d max=%d, want 3/%d", st.N(), st.Max, ev.Max())
	}
	for v := 0; v < 3; v++ {
		if st.I[v] != ev.I(v) || st.Radii[v] != ev.Radius(v) {
			t.Fatalf("export node %d: I=%d r=%v, want %d/%v", v, st.I[v], st.Radii[v], ev.I(v), ev.Radius(v))
		}
	}
	ev.Reset()
	if ev.Max() != 0 || ev.SumI() != 0 || ev.Radius(0) != 0 {
		t.Fatal("Reset left residue")
	}
	// Post-reset mutations still agree with the oracle.
	ev.SetRadius(2, 3)
	want := oracle.PhysPower(pts, []float64{0, 0, 3}, ev.Model())
	for v := range want {
		if ev.Power(v) != want[v] {
			t.Fatalf("post-reset pw(%d) = %d, want %d", v, ev.Power(v), want[v])
		}
	}
}
