// Package phys evaluates interference in the physical (SINR) model and
// maintains it incrementally under the same mutation surface as
// core.Evaluator, so the optimizers, the dynamic maintainer, and the
// serving layer can run either measure through core.Measure.
//
// In the physical model a node transmitting with radius r uses power
// P(r) = β·N·r^α (the least power that closes an SINR link of length r
// against the noise floor N at threshold β), and a receiver at distance
// d sees P(r)/d^α. Dividing by β·N makes the received power scale-free:
//
//	recv(r, d) = (r/d)^α   in units of β·N.
//
// The measure maintained here is the per-receiver sum of recv over all
// other senders, truncated at the far-field cutoff d > F·r (senders
// whose signal has decayed below F^{-α} ≈ 1/64 of the decode threshold
// are ignored — Korman's bounded-radius regime). The cutoff is what
// makes updates O(local): a radius change touches only the grid
// neighborhood Within(u, F·max(r_old, r_new)), and the ignored tail is
// bounded by n·F^{-α} per receiver (exposed as a gauge metric).
//
// Exactness. "Incremental agrees exactly with the naive O(n²) oracle"
// is a hard requirement (recovery verification and replication both
// re-derive state), but float sums are order-dependent. The evaluator
// therefore quantizes each sender→receiver contribution once —
// Units(r, d²), an int64 — and maintains integer sums. Integer adds
// commute and cancel exactly, so any op order, any snapshot/restore
// depth, and the naive oracle all land on bit-identical state. The
// integer interference level of a receiver is its power sum in whole
// multiples of the decode threshold: level(v) = pw(v)/UnitScale. A
// sender whose disk strictly covers v (d² ≤ r²) contributes at least
// UnitScale, so levels are the SINR analogue of the graph measure's
// disk counts — comparable numbers, different physics.
package phys

import "math"

const (
	// LogUnitScale is the base-2 log of UnitScale.
	LogUnitScale = 20
	// UnitScale is the quantization of one decode threshold (β·N) of
	// received power: a sender exactly at distance r contributes
	// UnitScale units; integer level = pw >> LogUnitScale.
	UnitScale = int64(1) << LogUnitScale
	// PairCap bounds a single pair's quantized contribution (hit at
	// d → 0). 2^40 units keeps sums of millions of capped pairs far
	// from int64 overflow while still dominating every realistic sum.
	PairCap = int64(1) << 40

	// boundaryGrow mirrors geom's disk epsilon (1+1e-9 on the squared
	// radius) so the far-field support set is exactly the set returned
	// by geom.Grid.Within(p, F·r) — no boundary disagreements between
	// the incremental path and the naive oracle.
	boundaryGrow = 1 + 1e-9
)

// Model fixes the physical-layer constants. The zero value is not
// valid; use Default (the single source of truth shared with
// internal/sim's SINR collision mode).
type Model struct {
	PathLoss float64 // α, the path-loss exponent (> 2 in practice)
	Beta     float64 // β, the SINR decode threshold
	Noise    float64 // N, the ambient noise floor
	FarField float64 // F, the cutoff multiple: senders beyond F·r are ignored
}

// Default returns the model used across the repo: α=3, β=2, N=1e-6
// (matching internal/sim's SINR mode since PR 2) and a far-field
// cutoff of 4 radii (a truncated signal is ≤ 4^-3 = 1/64 threshold).
func Default() Model {
	return Model{PathLoss: 3, Beta: 2, Noise: 1e-6, FarField: 4}
}

// TxPower is the transmit power that closes an SINR link of length r
// against noise alone: P = β·N·r^α.
func (m Model) TxPower(r float64) float64 {
	return m.Beta * m.Noise * math.Pow(r, m.PathLoss)
}

// RecvFrac is the received power at distance d from a radius-r sender,
// in units of the decode threshold β·N: (r/d)^α. Unquantized; the
// evaluator path uses Units.
func (m Model) RecvFrac(r, d float64) float64 {
	return math.Pow(r/d, m.PathLoss)
}

// Reach is the far-field support radius of a radius-r sender.
func (m Model) Reach(r float64) float64 { return m.FarField * r }

// Units quantizes one sender→receiver contribution: the received power
// of a radius-r sender at squared distance d2, in 1/UnitScale-ths of
// the decode threshold, floored. Zero outside the far-field cutoff
// (with the same boundary epsilon geom.Grid.Within applies, so the
// support set and the grid query agree exactly); capped at PairCap for
// coincident points. This is the only place power is computed — the
// incremental evaluator and the naive oracle both call it with
// identical float arguments, which is what makes them bit-identical.
func (m Model) Units(r, d2 float64) int64 {
	if r <= 0 {
		return 0
	}
	reach := m.FarField * r
	if d2 > reach*reach*boundaryGrow {
		return 0
	}
	if d2 <= 0 {
		return PairCap
	}
	u := float64(UnitScale) * math.Pow(r*r/d2, m.PathLoss/2)
	if u >= float64(PairCap) {
		return PairCap
	}
	return int64(u)
}

// TruncationBound is the worst-case power a single receiver could be
// missing to the far-field cutoff, in decode-threshold units: each of
// the n-1 ignored senders contributes < F^{-α}.
func (m Model) TruncationBound(n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) * math.Pow(m.FarField, -m.PathLoss)
}
