package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mobility"
	"repro/internal/stats"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// MobilityX4 runs the random-waypoint model and rebuilds the MST topology
// at every sample, recording the time series of both interference
// measures. It reports each measure's volatility — standard deviation
// and the largest step-to-step jump, both normalized by the series mean —
// quantifying the paper's robustness claim under continuous motion: the
// receiver-centric measure drifts, the sender-centric one spikes whenever
// a straggler forces a long link.
func MobilityX4(seed int64, n, steps int) *tablefmt.Table {
	rng := rand.New(rand.NewSource(seed))
	// A corridor: occasional stragglers at the ends force long MST links,
	// the moving version of the Figure-1 gadget.
	m := mobility.NewWaypoint(rng, n, 6, 0.4, 0.05, 0.4, 0.5)

	var recv, send []float64
	for step := 0; step < steps; step++ {
		m.Step(0.5)
		pts := m.Positions()
		g := topology.MST(pts)
		recv = append(recv, float64(core.Interference(pts, g).Max()))
		_, s := core.SenderInterference(pts, g)
		send = append(send, float64(s))
	}

	t := tablefmt.New(
		fmt.Sprintf("X4: measure volatility under random-waypoint motion (n=%d, %d samples, MST rebuilt per sample)", n, steps),
		"measure", "mean", "std", "max", "std/mean", "max_jump", "max_jump/mean")
	for _, row := range []struct {
		name   string
		series []float64
	}{
		{"receiver-centric", recv},
		{"sender-centric", send},
	} {
		s := stats.Summarize(row.series)
		jump := maxJump(row.series)
		t.AddRowf(row.name, s.Mean, s.Std, s.Max, s.Std/s.Mean, jump, jump/s.Mean)
	}
	return t
}

// maxJump returns the largest absolute difference between consecutive
// samples.
func maxJump(xs []float64) float64 {
	best := 0.0
	for i := 1; i < len(xs); i++ {
		d := xs[i] - xs[i-1]
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
		}
	}
	return best
}
