package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/highway"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// NodeCorrX10 is the sharpest validation of Definition 3.1: it runs the
// packet simulator with per-node accounting and correlates each node's
// STATIC interference I(v) with its MEASURED reception-failure count,
// per topology. A receiver-centric measure should predict per-receiver
// collision pressure — rank correlations well above 0 say it does; the
// sender-centric measure cannot even be stated per node.
func NodeCorrX10(n int, seed int64) *tablefmt.Table {
	pts := gen.ExpChain(n, 1)
	t := tablefmt.New(
		fmt.Sprintf("X10: per-node I(v) vs measured reception failures (%d-node exponential chain, Poisson traffic)", n),
		"topology", "I(G)", "spearman", "pearson", "busiest_node_matches")
	topos := []struct {
		name string
		g    *graph.Graph
	}{
		{"linear", highway.Linear(pts)},
		{"aexp", highway.AExp(pts)},
		{"agen", highway.AGen(pts)},
		{"mst2d", topology.MST(pts)},
	}
	for _, tc := range topos {
		nw := sim.NewNetwork(pts, tc.g)
		cfg := sim.DefaultConfig()
		cfg.Slots = 80000
		cfg.Seed = seed
		cfg.PerNode = true
		s := sim.New(nw, cfg)
		sim.PoissonPairs{N: n, Rate: 0.08, Slots: 40000, Seed: seed, SameComponentOnly: true}.Install(s)
		m := s.Run()

		iv := core.Interference(pts, tc.g)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for v := 0; v < n; v++ {
			xs[v] = float64(iv[v])
			ys[v] = float64(m.NodeRxFailures[v])
		}
		spear := stats.Spearman(xs, ys)
		pear := stats.Pearson(xs, ys)
		// Does the statically most-interfered node also fail most?
		maxI, maxF := iv.ArgMax(), argmax64(m.NodeRxFailures)
		t.AddRowf(tc.name, iv.Max(), spear, pear, maxI == maxF)
	}
	return t
}

func argmax64(xs []int64) int {
	best, bestV := -1, int64(-1)
	for i, x := range xs {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}
