package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/opt"
	"repro/internal/phys"
	"repro/internal/tablefmt"
)

// PhysLabX13 asks whether the paper's graph measure is a faithful proxy
// for the physical layer: anneal the same instance twice — once under
// the receiver-centric disk measure, once under the SINR measure
// (internal/phys) — and score both optima under both measures. Where
// the columns agree, the disk abstraction is a safe optimization target;
// where they diverge (the exponential gadgets), a graph-optimal radius
// assignment can be catastrophically loud in accumulated physical
// interference, because the disk measure counts coverers binarily while
// SINR sums fractional power from every far-field sender.
func PhysLabX13(seed int64) (*tablefmt.Table, string) {
	type inst struct {
		name  string
		pts   []geom.Point
		iters int
	}
	instances := []inst{
		{"gadget-k4", gen.DoubleExpChain(4), 6000},
		{"gadget-k5", gen.DoubleExpChain(5), 6000},
		{"gadget-k6", gen.DoubleExpChain(6), 6000},
		{"expchain-24", gen.ExpChain(24, 1), 8000},
		{"uniform-48", gen.UniformSquare(rand.New(rand.NewSource(seed)), 48, 1.4), 8000},
	}

	t := tablefmt.New(
		"X13: graph vs physical (SINR) optima — each optimum scored under both measures",
		"instance", "n", "graph_I/graph_opt", "sinr_I/graph_opt", "graph_I/sinr_opt", "sinr_I/sinr_opt")
	wins := 0
	for _, in := range instances {
		graphRes := opt.Anneal(in.pts, rand.New(rand.NewSource(seed)), in.iters)
		physRes := opt.AnnealWith(phys.NewMeasure, in.pts, rand.New(rand.NewSource(seed)), in.iters)
		graphUnderSinr := PhysScore(in.pts, graphRes.Radii)
		sinrUnderGraph := core.InterferenceRadii(in.pts, physRes.Radii).Max()
		if physRes.Interference < graphUnderSinr {
			wins++
		}
		t.AddRowf(in.name, len(in.pts),
			graphRes.Interference, graphUnderSinr,
			sinrUnderGraph, physRes.Interference)
	}
	note := fmt.Sprintf(
		"sinr_I is the max integer SINR interference level (received power / 2^%d) under phys.Default; "+
			"the SINR-annealed assignment strictly beat the graph optimum's physical score on %d/%d instances",
		phys.LogUnitScale, wins, len(instances))
	return t, note
}

// PhysScore is the physical-measure analogue of
// core.InterferenceRadii(…).Max(): the max integer SINR level of a
// radius assignment under phys.Default.
func PhysScore(pts []geom.Point, radii []float64) int {
	ev := phys.NewEvaluator(pts, phys.Default())
	ev.BatchSet(radii, 0)
	return ev.Max()
}
