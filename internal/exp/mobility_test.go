package exp

import "testing"

func TestMobilityX4SenderMoreVolatile(t *testing.T) {
	tb := MobilityX4(1, 60, 300)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var recvRow, sendRow []string
	for _, row := range tb.Rows {
		switch row[0] {
		case "receiver-centric":
			recvRow = row
		case "sender-centric":
			sendRow = row
		}
	}
	if recvRow == nil || sendRow == nil {
		t.Fatal("missing measure rows")
	}
	recvVol := cellFloat(t, recvRow[4]) // std/mean
	sendVol := cellFloat(t, sendRow[4])
	if sendVol <= recvVol {
		t.Errorf("sender volatility %.3f not above receiver %.3f", sendVol, recvVol)
	}
	recvJump := cellFloat(t, recvRow[6]) // max_jump/mean
	sendJump := cellFloat(t, sendRow[6])
	if sendJump <= recvJump {
		t.Errorf("sender max jump %.3f not above receiver %.3f", sendJump, recvJump)
	}
}

func TestMaxJump(t *testing.T) {
	if j := maxJump([]float64{1, 4, 2, 2}); j != 3 {
		t.Errorf("maxJump = %v", j)
	}
	if j := maxJump([]float64{5}); j != 0 {
		t.Errorf("single sample jump = %v", j)
	}
	if j := maxJump(nil); j != 0 {
		t.Errorf("empty jump = %v", j)
	}
}
