package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gather"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// DynamicX8 replays a churn sequence (arrivals and departures on a
// square) through the online maintainer at several rebuild factors and
// through the rebuild-every-event baseline, reporting the interference
// drift and the rebuild counts — the robustness property as an
// engineering win: local O(1) rules absorb most events.
func DynamicX8(seed int64, events int) *tablefmt.Table {
	t := tablefmt.New(
		fmt.Sprintf("X8: online maintenance under churn (%d events, uniform arrivals/departures)", events),
		"policy", "rebuilds", "final_I", "fresh_rebuild_I", "drift_ratio")
	type policy struct {
		name   string
		factor float64
	}
	for _, p := range []policy{
		{"rebuild-every-event", 1},
		{"maintain-1.5x", 1.5},
		{"maintain-2x", 2},
		{"maintain-3x", 3},
	} {
		rng := rand.New(rand.NewSource(seed)) // identical sequence per policy
		m := dynamic.New(gen.UniformSquare(rng, 60, 2), p.factor)
		for e := 0; e < events; e++ {
			if rng.Float64() < 0.5 || len(m.Points()) < 10 {
				m.Insert(geom.Pt(rng.Float64()*2, rng.Float64()*2))
			} else {
				m.Remove(rng.Intn(len(m.Points())))
			}
		}
		pts := m.Points()
		fresh := core.Interference(pts, topology.GreedyMinI(pts)).Max()
		final := m.Interference()
		t.AddRowf(p.name, m.Rebuilds(), final, fresh, float64(final)/float64(fresh))
	}
	return t
}

// GatherX9 compares directed data-gathering trees on the exponential
// chain and a clustered field: the [4] setting the paper generalized.
// The "undirected_I" column shows what the same tree costs under the
// paper's symmetric model — the adaptation gap.
func GatherX9(seed int64) *tablefmt.Table {
	rng := rand.New(rand.NewSource(seed))
	t := tablefmt.New(
		"X9: directed data-gathering trees ([4]'s setting) — directed vs undirected interference",
		"instance", "tree", "directed_I", "undirected_I", "depth")
	instances := []struct {
		name string
		pts  []geom.Point
		sink int
	}{
		{"expchain-24", gen.ExpChain(24, 1), 0},
		{"clustered-120", gen.Clustered(rng, 120, 4, 2.5, 0.2), 0},
	}
	trees := []struct {
		name  string
		build func([]geom.Point, int) gather.Tree
	}{
		{"spt", gather.ShortestPathTree},
		{"mst", gather.MSTTree},
		{"greedy", gather.GreedyMinITree},
	}
	for _, in := range instances {
		for _, tb := range trees {
			tr := tb.build(in.pts, in.sink)
			dir := tr.Interference(in.pts).Max()
			und := core.Interference(in.pts, tr.Undirected(in.pts)).Max()
			t.AddRowf(in.name, tb.name, dir, und, tr.Depth())
		}
	}
	return t
}
