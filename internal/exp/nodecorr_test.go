package exp

import "testing"

func TestNodeCorrX10StrongRankCorrelation(t *testing.T) {
	tb := NodeCorrX10(24, 1)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		spear := cellFloat(t, row[2])
		if spear < 0.5 {
			t.Errorf("%s: Spearman %.3f — static I(v) should rank-order measured failures", row[0], spear)
		}
	}
}
