package exp

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/oracle"
	"repro/internal/phys"
)

// TestPhysLabMeasuresDiverge pins the experiment's headline property
// rather than golden numbers (annealing is randomized): on the
// exponential gadget, optimizing under the SINR measure must find a
// radius assignment whose physical score strictly beats the
// graph-optimal assignment's physical score — the two measures genuinely
// disagree about what "low interference" means.
func TestPhysLabMeasuresDiverge(t *testing.T) {
	won := false
	for _, k := range []int{4, 5, 6} {
		pts := gen.DoubleExpChain(k)
		graphRes := opt.Anneal(pts, rand.New(rand.NewSource(1)), 6000)
		physRes := opt.AnnealWith(phys.NewMeasure, pts, rand.New(rand.NewSource(1)), 6000)
		graphUnderSinr := PhysScore(pts, graphRes.Radii)
		if physRes.Interference > graphUnderSinr {
			t.Errorf("k=%d: sinr anneal (%d) worse than graph optimum under sinr (%d)",
				k, physRes.Interference, graphUnderSinr)
		}
		if physRes.Interference < graphUnderSinr {
			won = true
		}
	}
	if !won {
		t.Error("sinr annealing never strictly beat the graph optimum's physical score on any gadget")
	}
}

// TestPhysScoreMatchesOracle cross-checks the experiment's scoring
// helper (incremental phys evaluator) against the naive O(n²) oracle on
// every instance family the experiment uses.
func TestPhysScoreMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{4, 6} {
		pts := gen.DoubleExpChain(k)
		radii := make([]float64, len(pts))
		for i := range radii {
			radii[i] = rng.Float64() * 2
		}
		if got, want := PhysScore(pts, radii), oracle.PhysLevels(pts, radii, phys.Default()).Max(); got != want {
			t.Fatalf("k=%d: PhysScore=%d, oracle says %d", k, got, want)
		}
	}
}

// TestPhysLabRuns smoke-runs the registered experiment: the table
// renders, has one row per instance, and the note reports at least one
// strict SINR win.
func TestPhysLabRuns(t *testing.T) {
	tab, note := PhysLabX13(1)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"gadget-k4", "expchain-24", "uniform-48"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing row %q:\n%s", want, out)
		}
	}
	if strings.Contains(note, "on 0/") {
		t.Errorf("note reports no strict SINR wins: %s", note)
	}
}
