package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRenderFiguresWritesAllFiles(t *testing.T) {
	dir := t.TempDir()
	files, err := RenderFigures(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig1_before.svg", "fig1_after.svg", "fig2.svg",
		"fig4_nnf.svg", "fig5_opt.svg",
		"fig7_linear.svg", "fig8_aexp.svg", "fig9_agen.svg",
	}
	if len(files) != len(want) {
		t.Fatalf("wrote %d files, want %d", len(files), len(want))
	}
	for _, name := range want {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := string(data)
		if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "</svg>") {
			t.Errorf("%s: not an SVG", name)
		}
		if !strings.Contains(s, "<circle") {
			t.Errorf("%s: no nodes drawn", name)
		}
	}
	// The topological figures must contain edges.
	for _, name := range []string{"fig4_nnf.svg", "fig5_opt.svg", "fig7_linear.svg", "fig8_aexp.svg", "fig9_agen.svg"} {
		data, _ := os.ReadFile(filepath.Join(dir, name))
		if !strings.Contains(string(data), "<line") {
			t.Errorf("%s: no edges drawn", name)
		}
	}
}

func TestRenderFiguresBadDir(t *testing.T) {
	// A path under a regular file cannot be created.
	dir := t.TempDir()
	f := filepath.Join(dir, "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RenderFigures(filepath.Join(f, "sub"), 1); err == nil {
		t.Error("expected error for uncreatable directory")
	}
}
