package exp

import "testing"

func TestTdmaX7Shape(t *testing.T) {
	tb := TdmaX7(20, 1)
	get := func(topo string) []string {
		for _, row := range tb.Rows {
			if row[0] == topo {
				return row
			}
		}
		t.Fatalf("row %s missing", topo)
		return nil
	}
	lin, aexp := get("linear"), get("aexp")
	// Zero collisions and full delivery across the board.
	for _, row := range tb.Rows {
		if row[3] != "0" {
			t.Errorf("%s: collisions %s under TDMA", row[0], row[3])
		}
		if cellFloat(t, row[4]) < 0.999 {
			t.Errorf("%s: delivery %s", row[0], row[4])
		}
	}
	// Higher interference ⇒ longer frame ⇒ higher latency.
	if cellInt(t, lin[2]) <= cellInt(t, aexp[2]) {
		t.Errorf("frames: linear %s should exceed aexp %s", lin[2], aexp[2])
	}
	if cellFloat(t, lin[5]) <= cellFloat(t, aexp[5]) {
		t.Errorf("latency: linear %s should exceed aexp %s", lin[5], aexp[5])
	}
}
