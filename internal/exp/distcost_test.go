package exp

import "testing"

func TestDistCostX11AllMatch(t *testing.T) {
	tb := DistCostX11(1, 100)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[5] != "true" {
			t.Errorf("%s diverged from its centralized counterpart", row[0])
		}
		if cellInt(t, row[1]) != 2 {
			t.Errorf("%s took %s rounds, want 2", row[0], row[1])
		}
	}
}

func TestStabilityX12Shape(t *testing.T) {
	tb := StabilityX12(1, 40, 30)
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	for _, name := range []string{"NNF", "MST", "GG", "GreedyI"} {
		if byName[name] == nil {
			t.Fatalf("%s missing", name)
		}
		churn := cellFloat(t, byName[name][1])
		if churn < 0 || churn > 1 {
			t.Errorf("%s churn %.3f out of [0,1]", name, churn)
		}
	}
	// The trade-off direction: the dense Gabriel graph is more stable
	// than the greedy minimum-interference tree, which pays for its low
	// interference with volatility.
	if cellFloat(t, byName["GG"][1]) >= cellFloat(t, byName["GreedyI"][1]) {
		t.Errorf("GG churn %s should be below GreedyI %s",
			byName["GG"][1], byName["GreedyI"][1])
	}
	if cellFloat(t, byName["GreedyI"][2]) >= cellFloat(t, byName["GG"][2]) {
		t.Errorf("GreedyI mean I %s should be below GG %s",
			byName["GreedyI"][2], byName["GG"][2])
	}
}

func TestEdgeChurnSemantics(t *testing.T) {
	a := newTestGraph(3, [][2]int{{0, 1}, {1, 2}})
	same := newTestGraph(3, [][2]int{{0, 1}, {1, 2}})
	if c := edgeChurn(a, same); c != 0 {
		t.Errorf("identical graphs churn %v", c)
	}
	disjoint := newTestGraph(3, [][2]int{{0, 2}})
	if c := edgeChurn(a, disjoint); c != 1 {
		t.Errorf("disjoint edge sets churn %v, want 1", c)
	}
	empty := newTestGraph(3, nil)
	if c := edgeChurn(empty, empty); c != 0 {
		t.Errorf("empty churn %v", c)
	}
}
