package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mobility"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// DistCostX11 tabulates the distributed protocols' costs (rounds,
// messages per node) and confirms each output matches its centralized
// counterpart — the evidence that the paper's constructions are
// implementable in the LOCAL model the ad-hoc setting demands.
func DistCostX11(seed int64, n int) *tablefmt.Table {
	rng := rand.New(rand.NewSource(seed))
	pts := gen.UniformSquare(rng, n, 3)
	t := tablefmt.New(
		fmt.Sprintf("X11: distributed protocol costs (uniform 2-D, n=%d)", n),
		"protocol", "rounds", "msgs_per_node", "edges", "recv_I", "matches_centralized")
	protos := []struct {
		name        string
		factory     func() dist.Node
		centralized func([]geom.Point) *graph.Graph
	}{
		{"XTC", dist.NewXTCNode, topology.XTC},
		{"NNF", dist.NewNNFNode, topology.NNF},
		{"LMST", dist.NewLMSTNode, topology.LMST},
		{"GG", dist.NewGGNode, topology.GG},
		{"RNG", dist.NewRNGNode, topology.RNG},
	}
	for _, p := range protos {
		rt := dist.NewRuntime(pts, p.factory)
		got := rt.Run(16)
		want := p.centralized(pts)
		match := got.M() == want.M()
		if match {
			for _, e := range want.Edges() {
				if !got.HasEdge(e.U, e.V) {
					match = false
					break
				}
			}
		}
		t.AddRowf(p.name, rt.Rounds, float64(rt.Messages)/float64(n), got.M(),
			core.Interference(pts, got).Max(), match)
	}
	return t
}

// StabilityX12 measures topology stability under motion: nodes follow
// random waypoints, the topology is rebuilt each sample, and the table
// reports the mean fraction of edges replaced between consecutive
// samples per construction. Low-interference trees are the most
// volatile (one nearest-neighbor change rewires a path); denser spanners
// absorb motion — stability is yet another axis of the X5 trade-off.
func StabilityX12(seed int64, n, steps int) *tablefmt.Table {
	t := tablefmt.New(
		fmt.Sprintf("X12: topology churn under random-waypoint motion (n=%d, %d samples)", n, steps),
		"algorithm", "mean_edge_churn", "mean_I")
	algs := []topology.Algorithm{}
	for _, a := range topology.All() {
		switch a.Name {
		case "NNF", "MST", "GG", "RNG", "LMST", "GreedyI":
			algs = append(algs, a)
		}
	}
	for _, alg := range algs {
		rng := rand.New(rand.NewSource(seed)) // identical trajectories per algorithm
		m := mobility.NewWaypoint(rng, n, 3, 3, 0.02, 0.1, 0.5)
		var prev *graph.Graph
		churnSum, iSum := 0.0, 0.0
		for step := 0; step < steps; step++ {
			m.Step(1)
			pts := m.Positions()
			g := alg.Build(pts)
			iSum += float64(core.Interference(pts, g).Max())
			if prev != nil {
				churnSum += edgeChurn(prev, g)
			}
			prev = g
		}
		t.AddRowf(alg.Name, churnSum/float64(steps-1), iSum/float64(steps))
	}
	return t
}

// edgeChurn returns the fraction of edges of either graph not present in
// the other (Jaccard distance of the edge sets).
func edgeChurn(a, b *graph.Graph) float64 {
	if a.M() == 0 && b.M() == 0 {
		return 0
	}
	shared := 0
	for _, e := range a.Edges() {
		if b.HasEdge(e.U, e.V) {
			shared++
		}
	}
	union := a.M() + b.M() - shared
	return 1 - float64(shared)/float64(union)
}

// newTestGraph is a tiny helper shared with the tests.
func newTestGraph(n int, edges [][2]int) *graph.Graph {
	g := graph.New(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1], 1)
	}
	return g
}
