package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/highway"
	"repro/internal/stats"
	"repro/internal/tablefmt"
	"repro/internal/udg"
)

// ReplicatedT54 is Theorem 5.4's measurement with proper error bars: for
// each (family, n) cell it draws `seeds` independent instances in
// parallel and reports mean ± std of I(A_gen)/√Δ. The single-seed T54
// table shows one draw; this one shows the distribution, confirming the
// O(√Δ) constant is stable (≈ 1.4–2.1 across every family and scale).
func ReplicatedT54(baseSeed int64, seeds, workers int) *tablefmt.Table {
	t := tablefmt.New(
		fmt.Sprintf("T5.4 replicated: I(A_gen)/√Δ over %d seeds per cell (mean ± std)", seeds),
		"family", "n", "ratio_mean", "ratio_std", "ratio_max")
	type family struct {
		name string
		make func(rng *rand.Rand, n int) []geom.Point
	}
	families := []family{
		{"uniform", func(rng *rand.Rand, n int) []geom.Point {
			return gen.HighwayUniform(rng, n, float64(n)/20)
		}},
		{"dense", func(rng *rand.Rand, n int) []geom.Point {
			return gen.HighwayUniform(rng, n, float64(n)/100)
		}},
		{"bursty", func(rng *rand.Rand, n int) []geom.Point {
			return gen.HighwayBursty(rng, n, 1+n/64, float64(n)/20, 0.3)
		}},
	}
	for _, fam := range families {
		for _, n := range []int{256, 1024} {
			ratios := ParallelMap(seeds, workers, func(i int) float64 {
				rng := rand.New(rand.NewSource(baseSeed + int64(i)*7919))
				pts := fam.make(rng, n)
				delta := udg.MaxDegree(pts, udg.Radius)
				if delta == 0 {
					return 0
				}
				got := core.Interference(pts, highway.AGen(pts)).Max()
				return float64(got) / math.Sqrt(float64(delta))
			})
			s := stats.Summarize(ratios)
			t.AddRowf(fam.name, n, s.Mean, s.Std, s.Max)
		}
	}
	return t
}

// ReplicatedT56 draws `seeds` random highway instances per family and
// reports the distribution of A_apx's ratio to the Lemma 5.5 lower
// bound, together with how often each branch fired — the statistical
// form of the Theorem 5.6 table.
func ReplicatedT56(baseSeed int64, seeds, workers int) *tablefmt.Table {
	t := tablefmt.New(
		fmt.Sprintf("T5.6 replicated: I(A_apx)/√(γ/2) over %d seeds per family", seeds),
		"family", "ratio_mean", "ratio_std", "ratio_max", "agen_branch_frac")
	type family struct {
		name string
		make func(rng *rand.Rand) []geom.Point
	}
	families := []family{
		{"uniform", func(rng *rand.Rand) []geom.Point { return gen.HighwayUniform(rng, 400, 40) }},
		{"bursty", func(rng *rand.Rand) []geom.Point { return gen.HighwayBursty(rng, 400, 8, 40, 0.2) }},
		{"expfrag", func(rng *rand.Rand) []geom.Point { return gen.HighwayExpFragments(rng, 5, 9, 40) }},
	}
	for _, fam := range families {
		type draw struct {
			ratio float64
			agen  bool
			ok    bool
		}
		draws := ParallelMap(seeds, workers, func(i int) draw {
			rng := rand.New(rand.NewSource(baseSeed + int64(i)*104729))
			pts := fam.make(rng)
			gamma, _ := highway.Gamma(pts)
			lb := highway.GammaLowerBound(gamma)
			if lb <= 0 {
				return draw{}
			}
			g, branch := highway.AApxExplain(pts)
			got := core.Interference(pts, g).Max()
			return draw{ratio: float64(got) / float64(lb), agen: branch == "agen", ok: true}
		})
		var ratios []float64
		agenCount := 0
		for _, d := range draws {
			if !d.ok {
				continue
			}
			ratios = append(ratios, d.ratio)
			if d.agen {
				agenCount++
			}
		}
		s := stats.Summarize(ratios)
		frac := 0.0
		if len(ratios) > 0 {
			frac = float64(agenCount) / float64(len(ratios))
		}
		t.AddRowf(fam.name, s.Mean, s.Std, s.Max, frac)
	}
	return t
}
