package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/highway"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// TdmaX7 measures scheduled access: for each topology of the same
// exponential-chain instance it builds the greedy conflict-free TDMA link
// schedule and runs identical convergecast traffic. Random access pays
// for interference with collisions (X2); scheduled access pays with
// frame length and hence latency — I(G') governs both prices.
func TdmaX7(n int, seed int64) *tablefmt.Table {
	pts := gen.ExpChain(n, 1)
	t := tablefmt.New(
		fmt.Sprintf("X7: TDMA scheduled access on a %d-node exponential chain (energy: tx + idle listening; CSMA column for contrast)", n),
		"topology", "I(G)", "frame_len", "collisions", "delivery", "mean_latency", "tdma_energy", "csma_energy")
	topos := []struct {
		name string
		g    *graph.Graph
	}{
		{"linear", highway.Linear(pts)},
		{"aexp", highway.AExp(pts)},
		{"agen", highway.AGen(pts)},
		{"mst", topology.MST(pts)},
	}
	for _, tc := range topos {
		nw := sim.NewNetwork(pts, tc.g)
		cfg := sim.DefaultConfig()
		cfg.Slots = 120000
		cfg.Seed = seed
		s, frame := schedule.RunTDMA(nw, cfg)
		sim.Convergecast{N: n, Sink: 0, Period: 1500, Slots: 60000, Stagger: true}.Install(s)
		m := s.Run()
		// The CSMA baseline on identical traffic, for the energy contrast.
		cs := sim.New(nw, cfg2(cfg))
		sim.Convergecast{N: n, Sink: 0, Period: 1500, Slots: 60000, Stagger: true}.Install(cs)
		mc := cs.Run()
		t.AddRowf(tc.name, core.Interference(pts, tc.g).Max(), frame,
			m.Collisions, m.DeliveryRatio(), m.MeanLatency(), m.TotalEnergy(), mc.TotalEnergy())
	}
	return t
}

// cfg2 strips the scheduling gates off a config, yielding the CSMA twin.
func cfg2(c sim.Config) sim.Config {
	c.SlotGate = nil
	c.AwakeGate = nil
	return c
}
