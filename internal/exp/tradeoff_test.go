package exp

import (
	"math"
	"testing"

	"repro/internal/topology"
)

func TestTradeoffX5Shape(t *testing.T) {
	tb := TradeoffX5(1)
	want := 2 * len(topology.All())
	if len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), want)
	}
	byKey := map[string][]string{}
	for _, row := range tb.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	for _, inst := range []string{"uniform-2d", "clustered-2d"} {
		mst := byKey[inst+"/MST"]
		gg := byKey[inst+"/GG"]
		greedy := byKey[inst+"/GreedyI"]
		if mst == nil || gg == nil || greedy == nil {
			t.Fatalf("%s: missing rows", inst)
		}
		// The tension: the Gabriel graph (a spanner) has lower stretch but
		// at least the MST's interference; trees the reverse.
		if cellFloat(t, gg[5]) > cellFloat(t, mst[5]) {
			t.Errorf("%s: GG stretch above MST's", inst)
		}
		if cellInt(t, gg[2]) < cellInt(t, mst[2]) {
			t.Errorf("%s: GG interference below MST's — GG contains MST", inst)
		}
		// GreedyI optimizes the receiver measure: never worse than MST.
		if cellInt(t, greedy[2]) > cellInt(t, mst[2]) {
			t.Errorf("%s: GreedyI %s worse than MST %s", inst, greedy[2], mst[2])
		}
		// Stretch of any connectivity-preserving construction is finite.
		for _, alg := range topology.All() {
			if !alg.PreservesConnectivity {
				continue
			}
			row := byKey[inst+"/"+alg.Name]
			if s := cellFloat(t, row[5]); math.IsInf(s, 1) || s < 1 {
				t.Errorf("%s/%s: stretch %v", inst, alg.Name, s)
			}
		}
	}
}
