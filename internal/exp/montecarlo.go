package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/planar"
	"repro/internal/stats"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// ParallelMap runs fn over 0..n-1 on a bounded worker pool and collects
// the results in index order. It is the fan-out primitive of the
// Monte-Carlo experiments: trials are independent, each takes its own
// seeded RNG, and the output is deterministic regardless of scheduling.
func ParallelMap[T any](n, workers int, fn func(i int) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// MonteCarlo runs the full algorithm zoo (plus the 2-D hub construction)
// over `trials` random instances of each family, in parallel, and
// reports the distribution of the receiver-centric interference per
// algorithm. This is the statistical complement to the single-instance
// S4 table: it shows whether the single-seed ordering is typical.
func MonteCarlo(baseSeed int64, trials, workers int) *tablefmt.Table {
	type algo struct {
		name  string
		build func([]geom.Point) *graph.Graph
	}
	algos := make([]algo, 0, len(topology.All())+1)
	for _, a := range topology.All() {
		algos = append(algos, algo{a.Name, a.Build})
	}
	algos = append(algos, algo{"AGen2D", planar.AGen2D})

	families := []struct {
		name string
		make func(rng *rand.Rand) []geom.Point
	}{
		{"uniform-2d", func(rng *rand.Rand) []geom.Point { return gen.UniformSquare(rng, 200, 4) }},
		{"clustered-2d", func(rng *rand.Rand) []geom.Point { return gen.Clustered(rng, 200, 5, 4, 0.25) }},
	}

	t := tablefmt.New(
		fmt.Sprintf("Monte-Carlo: receiver-centric I(G') over %d random instances per family", trials),
		"family", "algorithm", "mean_I", "std", "min", "median", "max")
	for _, fam := range families {
		// One instance per trial; every algorithm sees the same instance
		// so the comparison is paired.
		type row struct{ is []int }
		results := ParallelMap(trials, workers, func(i int) row {
			rng := rand.New(rand.NewSource(baseSeed + int64(i)))
			pts := fam.make(rng)
			is := make([]int, len(algos))
			for k, a := range algos {
				is[k] = core.Interference(pts, a.build(pts)).Max()
			}
			return row{is}
		})
		for k, a := range algos {
			xs := make([]float64, trials)
			for i, r := range results {
				xs[i] = float64(r.is[k])
			}
			s := stats.Summarize(xs)
			t.AddRowf(fam.name, a.name, s.Mean, s.Std, s.Min, s.Median, s.Max)
		}
	}
	return t
}

// Planar2D is the future-work experiment (the paper's conclusion:
// "adaptation of our approach to higher dimensions remains an open
// problem"): the AGen2D hub construction against the classical zoo on
// 2-D instances including the Theorem 4.1 gadget, with the √Δ reference
// the 1-D theorem suggests.
func Planar2D(seed int64) *tablefmt.Table {
	rng := rand.New(rand.NewSource(seed))
	t := tablefmt.New(
		"X3 (future work): 2-D hub construction AGen2D and the Best2D portfolio vs the zoo",
		"instance", "n", "delta", "sqrt_delta", "I_agen2d", "I_best2d", "best_pick", "I_mst", "I_lmst", "I_life", "I_nnf")
	instances := []struct {
		name string
		pts  []geom.Point
	}{
		{"uniform-2d", gen.UniformSquare(rng, 250, 4)},
		{"dense-2d", gen.UniformSquare(rng, 500, 3)},
		{"clustered-2d", gen.Clustered(rng, 250, 6, 4, 0.25)},
		{"gadget-T41", gen.DoubleExpChain(80)},
	}
	for _, in := range instances {
		delta := 0
		if len(in.pts) > 0 {
			delta = maxDeg(in.pts)
		}
		bestG, pick := planar.Best2D(in.pts)
		t.AddRowf(in.name, len(in.pts), delta, sqrtF(delta),
			core.Interference(in.pts, planar.AGen2D(in.pts)).Max(),
			core.Interference(in.pts, bestG).Max(),
			pick,
			core.Interference(in.pts, topology.MST(in.pts)).Max(),
			core.Interference(in.pts, topology.LMST(in.pts)).Max(),
			core.Interference(in.pts, topology.LIFE(in.pts)).Max(),
			core.Interference(in.pts, topology.NNF(in.pts)).Max())
	}
	return t
}
