package exp

import (
	"sync/atomic"
	"testing"
)

func TestParallelMapOrderAndCompleteness(t *testing.T) {
	n := 200
	out := ParallelMap(n, 8, func(i int) int { return i * i })
	for i := 0; i < n; i++ {
		if out[i] != i*i {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestParallelMapRunsEveryIndexOnce(t *testing.T) {
	n := 500
	var counters [500]int64
	ParallelMap(n, 16, func(i int) struct{} {
		atomic.AddInt64(&counters[i], 1)
		return struct{}{}
	})
	for i, c := range counters {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestParallelMapDegenerate(t *testing.T) {
	if out := ParallelMap(0, 4, func(int) int { return 1 }); len(out) != 0 {
		t.Error("n=0 wrong")
	}
	// workers <= 0 falls back to GOMAXPROCS; workers > n clamps.
	out := ParallelMap(3, 0, func(i int) int { return i })
	if len(out) != 3 || out[2] != 2 {
		t.Error("default-workers map wrong")
	}
	out = ParallelMap(2, 100, func(i int) int { return i + 1 })
	if out[0] != 1 || out[1] != 2 {
		t.Error("clamped-workers map wrong")
	}
}

func TestParallelMapDeterministicAggregation(t *testing.T) {
	// Two runs with different worker counts must agree element-wise:
	// parallelism never changes results.
	a := ParallelMap(64, 1, func(i int) int { return i * 3 })
	b := ParallelMap(64, 13, func(i int) int { return i * 3 })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker-count dependence at %d", i)
		}
	}
}

func TestMonteCarloTable(t *testing.T) {
	tb := MonteCarlo(42, 4, 4)
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Paired design: every algorithm appears once per family.
	perFamily := map[string]int{}
	for _, row := range tb.Rows {
		perFamily[row[0]]++
	}
	for fam, k := range perFamily {
		if k < 9 {
			t.Errorf("family %s has only %d algorithm rows", fam, k)
		}
	}
	// Reproducibility across runs (and across worker counts).
	tb2 := MonteCarlo(42, 4, 1)
	if len(tb2.Rows) != len(tb.Rows) {
		t.Fatal("row count changed")
	}
	for i := range tb.Rows {
		for j := range tb.Rows[i] {
			if tb.Rows[i][j] != tb2.Rows[i][j] {
				t.Fatalf("row %d col %d differs across worker counts: %q vs %q",
					i, j, tb.Rows[i][j], tb2.Rows[i][j])
			}
		}
	}
}

func TestPlanar2DTable(t *testing.T) {
	tb := Planar2D(1)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		agen2d := cellInt(t, row[4])
		best := cellInt(t, row[5])
		mst := cellInt(t, row[7])
		nnf := cellInt(t, row[10])
		// The portfolio never loses to either of its members.
		if best > agen2d || best > mst {
			t.Errorf("%s: Best2D %d worse than a member (agen2d %d, mst %d)", row[0], best, agen2d, mst)
		}
		if row[0] == "gadget-T41" {
			if agen2d >= nnf {
				t.Errorf("gadget: AGen2D %d should beat NNF-chained %d", agen2d, nnf)
			}
			if agen2d*2 > mst {
				t.Errorf("gadget: AGen2D %d not well below MST %d", agen2d, mst)
			}
			if row[6] == "mst" {
				t.Error("gadget: portfolio should not pick the MST")
			}
		}
	}
}
