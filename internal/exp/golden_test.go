package exp

import (
	"strings"
	"testing"
)

// Golden tests: the deterministic experiments (no RNG involved) must
// reproduce these tables byte-for-byte. They are the repository's
// headline numbers — EXPERIMENTS.md quotes them — so any drift is a
// regression, either numerical (epsilon handling) or algorithmic.

func TestGoldenTheorem41(t *testing.T) {
	var sb strings.Builder
	if err := Theorem41().Render(&sb); err != nil {
		t.Fatal(err)
	}
	want := `T4.1: NNF is Ω(n) on the Figure-3 gadget; the optimal tree stays O(1)
n    I_NNF  I_opt_tree  ratio
---  -----  ----------  -----
12   6      5           1.2
24   9      5           1.8
48   17     5           3.4
96   33     5           6.6
192  65     5           13
384  129    5           25.8
`
	if sb.String() != want {
		t.Errorf("T4.1 table drifted:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestGoldenFigure7(t *testing.T) {
	var sb strings.Builder
	if err := Figure7().Render(&sb); err != nil {
		t.Fatal(err)
	}
	want := `F6/F7: linearly connected exponential chain — I(G_lin) = n−2
n    I_lin  I_at_leftmost  n-2
---  -----  -------------  ---
4    2      2              2
8    6      6              6
16   14     14             14
32   30     30             30
64   62     62             62
128  126    126            126
256  254    254            254
500  498    498            498
`
	if sb.String() != want {
		t.Errorf("F7 table drifted:\n%s", sb.String())
	}
}

func TestGoldenTheorem52(t *testing.T) {
	var sb strings.Builder
	if err := Theorem52().Render(&sb); err != nil {
		t.Fatal(err)
	}
	want := `T5.2: exact minimum interference on small exponential chains
n   OPT  sqrt_n_floor  I_aexp  aexp/OPT  proved
--  ---  ------------  ------  --------  ------
4   2    2             2       1         true
6   3    2             3       1         true
8   4    2             4       1         true
10  4    3             4       1         true
12  5    3             5       1         true
14  5    3             5       1         true
`
	if sb.String() != want {
		t.Errorf("T5.2 table drifted:\n%s", sb.String())
	}
}

func TestGoldenTheorem51Fit(t *testing.T) {
	_, fit := Theorem51()
	want := "power fit: I_aexp ≈ 1.10 · n^0.551 (theory: Θ(n^0.5))"
	if fit != want {
		t.Errorf("scaling fit drifted: %q, want %q", fit, want)
	}
}
