package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/highway"
	"repro/internal/sim"
	"repro/internal/tablefmt"
)

// SinrX6 compares the paper's protocol (disk) reception model against
// the physical (SINR) model on the exponential chain: the same MAC and
// workload, both models, three traffic patterns. It quantifies where the
// disk abstraction predicts physical outages (direction-neutral traffic)
// and where it cannot (directional traffic, where per-hop power margins
// — invisible to disks — dominate).
func SinrX6(n int, seed int64) *tablefmt.Table {
	pts := gen.ExpChain(n, 1)
	topos := []struct {
		name string
		g    *graph.Graph
	}{
		{"linear", highway.Linear(pts)},
		{"aexp", highway.AExp(pts)},
		{"agen", highway.AGen(pts)},
	}
	workloads := []struct {
		name    string
		install func(s *sim.Simulator, slots int64)
	}{
		{"conv-left", func(s *sim.Simulator, slots int64) {
			sim.Convergecast{N: n, Sink: 0, Period: 400, Slots: slots / 2, Stagger: true}.Install(s)
		}},
		{"conv-right", func(s *sim.Simulator, slots int64) {
			sim.Convergecast{N: n, Sink: n - 1, Period: 400, Slots: slots / 2, Stagger: true}.Install(s)
		}},
		{"poisson", func(s *sim.Simulator, slots int64) {
			sim.PoissonPairs{N: n, Rate: 0.04, Slots: slots / 2, Seed: seed, SameComponentOnly: true}.Install(s)
		}},
	}
	t := tablefmt.New(
		fmt.Sprintf("X6: protocol (disk) vs physical (SINR) reception, %d-node exponential chain", n),
		"workload", "topology", "I(G)", "disk_collrate", "sinr_collrate", "disk_delivery", "sinr_delivery")
	const slots = 30000
	for _, wl := range workloads {
		for _, tc := range topos {
			run := func(physical bool) *sim.Metrics {
				nw := sim.NewNetwork(pts, tc.g)
				cfg := sim.DefaultConfig()
				cfg.Slots = slots
				cfg.Seed = seed
				if physical {
					cfg.Physical = sim.DefaultPhysical()
				}
				s := sim.New(nw, cfg)
				wl.install(s, slots)
				return s.Run()
			}
			d := run(false)
			p := run(true)
			t.AddRowf(wl.name, tc.name, core.Interference(pts, tc.g).Max(),
				d.CollisionRate(), p.CollisionRate(), d.DeliveryRatio(), p.DeliveryRatio())
		}
	}
	return t
}
