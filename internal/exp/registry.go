package exp

import "repro/internal/tablefmt"

// Params carries the knobs shared by the experiment runners.
type Params struct {
	// Seed drives every randomized instance family.
	Seed int64
	// SimN is the chain size of the packet-simulation experiments.
	SimN int
	// MCTrials is the instance count per family for the Monte-Carlo
	// experiment; MCWorkers its worker-pool size (0 = GOMAXPROCS).
	MCTrials  int
	MCWorkers int
	// ChurnEvents is the event count of the dynamic-maintenance run.
	ChurnEvents int
}

// DefaultParams returns the parameters the reproduction documents.
func DefaultParams() Params {
	return Params{Seed: 1, SimN: 24, MCTrials: 16, ChurnEvents: 300}
}

// Experiment is one catalogued reproduction artifact.
type Experiment struct {
	// ID is the stable identifier used by cmd/paperrepro -exp.
	ID string
	// Title is a one-line description for listings.
	Title string
	// Run produces the experiment's table and an optional free-form note
	// (e.g. a fitted scaling law).
	Run func(p Params) (*tablefmt.Table, string)
}

// Registry returns the full experiment catalogue in presentation order —
// the single source of truth consumed by cmd/paperrepro and the tests.
func Registry() []Experiment {
	return []Experiment{
		{"f1", "Figure 1 — robustness of both measures under one arrival",
			func(p Params) (*tablefmt.Table, string) { return Figure1(p.Seed), "" }},
		{"t41", "Theorem 4.1 — NNF is Ω(n) on the gadget",
			func(p Params) (*tablefmt.Table, string) { return Theorem41(), "" }},
		{"f7", "Figures 6–7 — linear exponential chain has I = n−2",
			func(p Params) (*tablefmt.Table, string) { return Figure7(), "" }},
		{"t51", "Theorem 5.1 / Figure 8 — A_exp achieves O(√n)",
			func(p Params) (*tablefmt.Table, string) { return Theorem51() }},
		{"f8", "Figure 8 detail — per-node interference labels under A_exp",
			func(p Params) (*tablefmt.Table, string) { return Figure8Detail(16), "" }},
		{"t52", "Theorem 5.2 — exact optimum vs the √n lower bound",
			func(p Params) (*tablefmt.Table, string) { return Theorem52(), "" }},
		{"t54", "Theorem 5.4 / Figure 9 — A_gen achieves O(√Δ)",
			func(p Params) (*tablefmt.Table, string) { return Theorem54(p.Seed), "" }},
		{"t56", "Theorem 5.6 — A_apx approximation quality",
			func(p Params) (*tablefmt.Table, string) { return Theorem56(p.Seed), "" }},
		{"s4", "Section 4 — the topology-control zoo under the new measure",
			func(p Params) (*tablefmt.Table, string) { return Section4(p.Seed), "" }},
		{"x1", "X1 — per-arrival interference deltas",
			func(p Params) (*tablefmt.Table, string) { return RobustnessX1(p.Seed, 12), "" }},
		{"x2", "X2 — packet-level validation of the measure",
			func(p Params) (*tablefmt.Table, string) { return SimX2(p.SimN, p.Seed), "" }},
		{"x3", "X3 — the 2-D future work: AGen2D and Best2D",
			func(p Params) (*tablefmt.Table, string) { return Planar2D(p.Seed), "" }},
		{"x4", "X4 — measure volatility under random-waypoint motion",
			func(p Params) (*tablefmt.Table, string) { return MobilityX4(p.Seed, 60, 400), "" }},
		{"x5", "X5 — interference vs classical topology-control goals",
			func(p Params) (*tablefmt.Table, string) { return TradeoffX5(p.Seed), "" }},
		{"x6", "X6 — protocol (disk) vs physical (SINR) reception",
			func(p Params) (*tablefmt.Table, string) { return SinrX6(p.SimN, p.Seed), "" }},
		{"x7", "X7 — TDMA: interference as frame length and sleep energy",
			func(p Params) (*tablefmt.Table, string) { return TdmaX7(p.SimN, p.Seed), "" }},
		{"x8", "X8 — online maintenance under churn",
			func(p Params) (*tablefmt.Table, string) { return DynamicX8(p.Seed, p.ChurnEvents), "" }},
		{"x9", "X9 — directed data-gathering trees ([4]'s setting)",
			func(p Params) (*tablefmt.Table, string) { return GatherX9(p.Seed), "" }},
		{"x10", "X10 — per-node I(v) vs measured reception failures",
			func(p Params) (*tablefmt.Table, string) { return NodeCorrX10(p.SimN, p.Seed), "" }},
		{"x11", "X11 — distributed protocol costs (LOCAL model)",
			func(p Params) (*tablefmt.Table, string) { return DistCostX11(p.Seed, 150), "" }},
		{"x12", "X12 — topology churn under motion",
			func(p Params) (*tablefmt.Table, string) { return StabilityX12(p.Seed, 60, 60), "" }},
		{"x13", "X13 — graph vs physical (SINR) optima",
			func(p Params) (*tablefmt.Table, string) { return PhysLabX13(p.Seed) }},
		{"r54", "T5.4 replicated — O(√Δ) constant with error bars",
			func(p Params) (*tablefmt.Table, string) { return ReplicatedT54(p.Seed, p.MCTrials, p.MCWorkers), "" }},
		{"r56", "T5.6 replicated — approximation ratio distribution",
			func(p Params) (*tablefmt.Table, string) { return ReplicatedT56(p.Seed, p.MCTrials, p.MCWorkers), "" }},
		{"mc", "MC — parallel Monte-Carlo over random instances",
			func(p Params) (*tablefmt.Table, string) { return MonteCarlo(p.Seed, p.MCTrials, p.MCWorkers), "" }},
	}
}
