package exp

import "testing"

func TestDynamicX8Shape(t *testing.T) {
	tb := DynamicX8(1, 200)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var baseline, maintain2 []string
	for _, row := range tb.Rows {
		switch row[0] {
		case "rebuild-every-event":
			baseline = row
		case "maintain-2x":
			maintain2 = row
		}
	}
	if baseline == nil || maintain2 == nil {
		t.Fatal("missing rows")
	}
	if cellInt(t, baseline[1]) != 201 { // initial + every event
		t.Errorf("baseline rebuilds = %s, want 201", baseline[1])
	}
	if r := cellInt(t, maintain2[1]); r*10 > cellInt(t, baseline[1]) {
		t.Errorf("maintain-2x rebuilds = %d — not amortizing", r)
	}
	if d := cellFloat(t, maintain2[4]); d > 2.5 {
		t.Errorf("maintain-2x drift ratio %.2f exceeds its own bound", d)
	}
}

func TestGatherX9Shape(t *testing.T) {
	tb := GatherX9(1)
	get := func(inst, tree string) []string {
		for _, row := range tb.Rows {
			if row[0] == inst && row[1] == tree {
				return row
			}
		}
		t.Fatalf("row %s/%s missing", inst, tree)
		return nil
	}
	// The chain: directing the MST collapses interference to O(1), while
	// the same tree under the undirected model is Θ(n) — the adaptation
	// gap the paper generalizes away from.
	mst := get("expchain-24", "mst")
	if cellInt(t, mst[2]) > 2 {
		t.Errorf("directed MST chain I = %s, want O(1)", mst[2])
	}
	if cellInt(t, mst[3]) < 20 {
		t.Errorf("undirected MST chain I = %s, want ≈ n-2", mst[3])
	}
	// The SPT on a complete chain is a star: terrible both ways.
	spt := get("expchain-24", "spt")
	if cellInt(t, spt[2]) < 20 {
		t.Errorf("directed star I = %s, want ≈ n-1", spt[2])
	}
	// Greedy never loses to SPT on either instance, directed measure.
	for _, inst := range []string{"expchain-24", "clustered-120"} {
		if cellInt(t, get(inst, "greedy")[2]) > cellInt(t, get(inst, "spt")[2]) {
			t.Errorf("%s: greedy worse than SPT", inst)
		}
	}
}
