package exp

import (
	"math/rand"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/report"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// TradeoffX5 profiles the whole zoo on one uniform and one clustered
// instance, putting both interference measures next to the classical
// topology-control goals (degree, spanner stretch, energy). It makes the
// related-work tension concrete: the constructions that optimize
// sparseness or stretch do not optimize interference, and vice versa —
// trees minimize interference but pay unbounded stretch, spanners pay
// interference for stretch.
func TradeoffX5(seed int64) *tablefmt.Table {
	rng := rand.New(rand.NewSource(seed))
	t := tablefmt.New(
		"X5: interference vs classical topology-control goals",
		"instance", "algorithm", "recv_I", "send_I", "max_deg", "stretch", "radii_energy", "total_len", "bridges")
	instances := []struct {
		name string
		pts  []geom.Point
	}{
		{"uniform-2d", gen.UniformSquare(rng, 120, 2.5)},
		{"clustered-2d", gen.Clustered(rng, 120, 4, 2.5, 0.2)},
	}
	for _, in := range instances {
		for _, alg := range topology.All() {
			p := report.Build(in.pts, alg.Build(in.pts))
			t.AddRowf(in.name, alg.Name, p.RecvMax, p.SendMax, p.MaxDegree,
				p.Stretch, p.RadiiEnergy, p.TotalLength, p.Bridges)
		}
	}
	return t
}
