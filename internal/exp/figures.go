package exp

import (
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/highway"
	"repro/internal/topology"
	"repro/internal/viz"
)

// RenderFigures writes SVG renderings of the paper's figures into dir
// (created if needed) and returns the list of files written:
//
//	fig1_before.svg / fig1_after.svg — the cluster gadget without/with
//	    the remote node (MST topology, interference disks)
//	fig2.svg — the five-node I(u)=2 example
//	fig4_nnf.svg / fig5_opt.svg — the Theorem 4.1 gadget under the NNF
//	    and under the constant-interference tree
//	fig7_linear.svg / fig8_aexp.svg — the exponential chain connected
//	    linearly and by the scan-line algorithm
//	fig9_agen.svg — A_gen's segment/hub structure on a random highway
func RenderFigures(dir string, seed int64) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var written []string
	emit := func(name string, pts []geom.Point, g *graph.Graph, opt viz.Options) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := viz.WriteSVG(f, pts, g, opt); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	// Figure 1: the gadget before and after the remote arrival.
	fig1 := gen.Figure1(rng, 40, 0.2)
	before := fig1[:len(fig1)-1]
	if err := emit("fig1_before.svg", before, topology.MST(before), viz.Options{Disks: true}); err != nil {
		return written, err
	}
	if err := emit("fig1_after.svg", fig1, topology.MST(fig1), viz.Options{Disks: true}); err != nil {
		return written, err
	}

	// Figure 2: the five-node example (same layout as TestFigure2).
	fig2 := []geom.Point{
		geom.Pt(0, 0), geom.Pt(0.3, 0), geom.Pt(1.0, 0), geom.Pt(2.2, 0), geom.Pt(2.5, 0),
	}
	g2 := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}} {
		g2.AddEdge(e[0], e[1], fig2[e[0]].Dist(fig2[e[1]]))
	}
	if err := emit("fig2.svg", fig2, g2, viz.Options{Disks: true, Labels: true}); err != nil {
		return written, err
	}

	// Figures 3–5: the gadget under the NNF and the optimal tree.
	gadget := gen.DoubleExpChain(12)
	if err := emit("fig4_nnf.svg", gadget, topology.NNF(gadget), viz.Options{Labels: true}); err != nil {
		return written, err
	}
	if err := emit("fig5_opt.svg", gadget, OptTreeGadget(gadget, 12), viz.Options{Labels: true}); err != nil {
		return written, err
	}

	// Figures 6–8: the exponential chain, linear vs A_exp. Drawn on the
	// chain itself (not log scale): the long edges dominate, as in the
	// paper's Figure 6.
	chain := gen.ExpChain(16, 1)
	if err := emit("fig7_linear.svg", chain, highway.Linear(chain), viz.Options{Disks: true, Labels: true}); err != nil {
		return written, err
	}
	if err := emit("fig8_aexp.svg", chain, highway.AExp(chain), viz.Options{Disks: true, Labels: true}); err != nil {
		return written, err
	}

	// Figure 9: A_gen's hubs on a random highway instance.
	hw := gen.HighwayUniform(rng, 60, 4)
	if err := emit("fig9_agen.svg", hw, highway.AGen(hw), viz.Options{Disks: true, Labels: true}); err != nil {
		return written, err
	}
	return written, nil
}
