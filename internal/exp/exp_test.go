package exp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/udg"
)

func cellInt(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("cell %q not an int: %v", s, err)
	}
	return v
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", s, err)
	}
	return v
}

// TestFigure1Shape asserts the paper's Figure 1 claim on the generated
// table: the sender-centric measure lands near n after the arrival while
// the receiver-centric per-node delta stays O(1).
func TestFigure1Shape(t *testing.T) {
	tb := Figure1(1)
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tb.Rows {
		n := cellInt(t, row[0])
		maxDelta := cellInt(t, row[3])
		sendBefore := cellInt(t, row[4])
		sendAfter := cellInt(t, row[5])
		if sendAfter < n-2 {
			t.Errorf("n=%d: sender-centric after arrival = %d, expected ≈ n", n, sendAfter)
		}
		if sendBefore > n/2 {
			t.Errorf("n=%d: sender-centric before arrival = %d, expected well below n", n, sendBefore)
		}
		if maxDelta > 6 {
			t.Errorf("n=%d: receiver-centric per-node delta = %d, expected O(1)", n, maxDelta)
		}
	}
	// The "before" value is a density constant of the homogeneous cluster:
	// it must not scale with n the way "after" does.
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	nGrowth := float64(cellInt(t, last[0])) / float64(cellInt(t, first[0]))
	beforeGrowth := float64(cellInt(t, last[4])) / float64(cellInt(t, first[4]))
	if beforeGrowth > nGrowth/2 {
		t.Errorf("sender-centric 'before' grew %.1fx while n grew %.1fx — should stay near-constant", beforeGrowth, nGrowth)
	}
}

// TestTheorem41Shape asserts NNF grows linearly while the optimal tree's
// interference stays constant on the gadget.
func TestTheorem41Shape(t *testing.T) {
	tb := Theorem41()
	var lastRatio float64
	for _, row := range tb.Rows {
		n := cellInt(t, row[0])
		nnf := cellInt(t, row[1])
		optTree := cellInt(t, row[2])
		if nnf < n/4 {
			t.Errorf("n=%d: NNF interference %d not Ω(n)", n, nnf)
		}
		if optTree > 8 {
			t.Errorf("n=%d: optimal tree interference %d not O(1)", n, optTree)
		}
		lastRatio = cellFloat(t, row[3])
	}
	if lastRatio < 10 {
		t.Errorf("final NNF/opt ratio %.1f too small — gap should diverge", lastRatio)
	}
}

func TestOptTreeGadgetConnected(t *testing.T) {
	for _, k := range []int{4, 16, 64} {
		pts := gen.DoubleExpChain(k)
		g := OptTreeGadget(pts, k)
		if !g.Connected() {
			t.Errorf("k=%d: gadget optimal tree disconnected", k)
		}
		if g.M() != len(pts)-1 {
			t.Errorf("k=%d: %d edges, want spanning tree %d", k, g.M(), len(pts)-1)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	tb := Figure7()
	for _, row := range tb.Rows {
		n := cellInt(t, row[0])
		if lin := cellInt(t, row[1]); lin != n-2 {
			t.Errorf("n=%d: I_lin = %d, want n-2", n, lin)
		}
		if left := cellInt(t, row[2]); left != n-2 {
			t.Errorf("n=%d: leftmost I = %d, want n-2", n, left)
		}
	}
}

func TestTheorem51Shape(t *testing.T) {
	tb, fit := Theorem51()
	for _, row := range tb.Rows {
		n := cellInt(t, row[0])
		aexp := cellInt(t, row[1])
		bound := cellInt(t, row[2])
		if aexp > bound {
			t.Errorf("n=%d: A_exp %d exceeds bound %d", n, aexp, bound)
		}
	}
	if !strings.Contains(fit, "n^0.5") && !strings.Contains(fit, "n^0.4") {
		// The fitted exponent must round near 0.5; accept 0.45–0.55 as
		// formatted with three decimals.
		if !strings.Contains(fit, "n^0.") {
			t.Fatalf("fit line malformed: %s", fit)
		}
	}
}

func TestTheorem52Shape(t *testing.T) {
	tb := Theorem52()
	for _, row := range tb.Rows {
		n := cellInt(t, row[0])
		optI := cellInt(t, row[1])
		ratio := cellFloat(t, row[4])
		if row[5] != "true" {
			t.Errorf("n=%d: optimality not proven", n)
		}
		if float64(optI*optI) < float64(n)/2 {
			t.Errorf("n=%d: OPT %d below the √(n/2) floor", n, optI)
		}
		if ratio > 3 {
			t.Errorf("n=%d: A_exp/OPT = %.2f too large", n, ratio)
		}
	}
}

func TestTheorem54Shape(t *testing.T) {
	tb := Theorem54(1)
	for _, row := range tb.Rows {
		ratio := cellFloat(t, row[5])
		if ratio > 8 {
			t.Errorf("%s n=%s: I_agen/√Δ = %.2f — O(√Δ) constant blown", row[0], row[1], ratio)
		}
	}
}

func TestTheorem56Shape(t *testing.T) {
	tb := Theorem56(1)
	sawLinear, sawAgen := false, false
	for _, row := range tb.Rows {
		switch row[2] {
		case "linear":
			sawLinear = true
		case "agen":
			sawAgen = true
		default:
			t.Errorf("unknown branch %q", row[2])
		}
		// The approximation guarantee: I_apx/lb ≤ c·Δ^¼ with a modest c.
		if row[6] != "NaN" {
			ratio := cellFloat(t, row[6])
			d14 := cellFloat(t, row[7])
			if ratio > 10*d14 {
				t.Errorf("%s: ratio %.2f exceeds 10·Δ^¼ = %.2f", row[0], ratio, 10*d14)
			}
		}
	}
	if !sawLinear || !sawAgen {
		t.Errorf("expected both branches exercised (linear=%v agen=%v)", sawLinear, sawAgen)
	}
}

func TestSection4GadgetSeparatesNNFContainers(t *testing.T) {
	tb := Section4(1)
	// On the T4.1 gadget every NNF-containing algorithm must show Ω(n)
	// receiver-centric interference; record LIFE for comparison.
	var gadgetRows [][]string
	for _, row := range tb.Rows {
		if row[0] == "gadget-T41" {
			gadgetRows = append(gadgetRows, row)
		}
	}
	if len(gadgetRows) != len(topology.All()) {
		t.Fatalf("gadget rows = %d", len(gadgetRows))
	}
	byName := map[string]int{}
	for _, row := range gadgetRows {
		byName[row[1]] = cellInt(t, row[2])
	}
	n := 120 // DoubleExpChain(40)
	for _, alg := range topology.All() {
		if alg.ContainsNNF && byName[alg.Name] < n/6 {
			t.Errorf("%s on gadget: I = %d, expected Ω(n) for NNF-containing algorithms", alg.Name, byName[alg.Name])
		}
	}
}

func TestRobustnessX1Bounded(t *testing.T) {
	tb := RobustnessX1(7, 10)
	for _, row := range tb.Rows {
		if d := cellInt(t, row[2]); d > 1 {
			t.Errorf("trial %s: receiver-centric delta %d > 1", row[0], d)
		}
	}
}

func TestSimX2InterferenceOrdersCollisions(t *testing.T) {
	tb := SimX2(20, 3)
	// Find linear and aexp rows; linear must have both higher static
	// interference and a higher collision rate.
	var lin, aexp []string
	for _, row := range tb.Rows {
		switch row[0] {
		case "linear":
			lin = row
		case "aexp":
			aexp = row
		}
	}
	if lin == nil || aexp == nil {
		t.Fatal("missing rows")
	}
	if cellInt(t, lin[1]) <= cellInt(t, aexp[1]) {
		t.Fatal("setup: linear should have higher I")
	}
	if cellFloat(t, lin[3]) <= cellFloat(t, aexp[3]) {
		t.Errorf("collision rates: linear %s <= aexp %s", lin[3], aexp[3])
	}
}

func TestConnectedNNFPreservesComponents(t *testing.T) {
	pts := gen.ExpChain(16, 1)
	g := connectedNNF(pts)
	base := udg.Build(pts)
	if !graph.SameComponents(base, g) {
		t.Error("connectedNNF must restore UDG connectivity")
	}
	// It must still contain the NNF.
	nnf := topology.NNF(pts)
	for _, e := range nnf.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("bridge construction dropped NNF edge (%d,%d)", e.U, e.V)
		}
	}
	_ = core.Interference(pts, g) // sanity: evaluates without panic
}

func TestFigure8DetailStructure(t *testing.T) {
	n := 16
	tb := Figure8Detail(n)
	if len(tb.Rows) != n {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Figure 8's caption: only hubs interfere with the leftmost node, and
	// hub degrees grow left to right.
	hubCount := 0
	prevHubDeg := 0
	sawShrink := false
	for i, row := range tb.Rows {
		if row[1] == "true" {
			hubCount++
			deg := cellInt(t, row[2])
			if deg < prevHubDeg && i < n-2 {
				sawShrink = true
			}
			prevHubDeg = deg
		}
	}
	if hubCount < 3 {
		t.Errorf("only %d hubs on a 16-chain", hubCount)
	}
	if sawShrink {
		t.Error("hub degrees should be non-decreasing along the chain")
	}
	// Leftmost node: linear label is n-2, A_exp label is bounded by hubs.
	if got := cellInt(t, tb.Rows[0][4]); got != n-2 {
		t.Errorf("linear label at v0 = %d, want %d", got, n-2)
	}
	if got := cellInt(t, tb.Rows[0][3]); got > hubCount {
		t.Errorf("A_exp label at v0 = %d exceeds hub count %d", got, hubCount)
	}
}
