package exp

import "testing"

func TestSinrX6Shapes(t *testing.T) {
	tb := SinrX6(20, 1)
	get := func(wl, topo string) []string {
		for _, row := range tb.Rows {
			if row[0] == wl && row[1] == topo {
				return row
			}
		}
		t.Fatalf("row %s/%s missing", wl, topo)
		return nil
	}
	// Direction-neutral traffic: the disk ordering persists under SINR.
	linP := cellFloat(t, get("poisson", "linear")[4])
	aexpP := cellFloat(t, get("poisson", "aexp")[4])
	if aexpP >= linP {
		t.Errorf("poisson SINR: aexp %.4f not below linear %.4f", aexpP, linP)
	}
	// Directional traffic: the margin asymmetry flips the linear chain
	// between directions under SINR but not under disks.
	leftSinr := cellFloat(t, get("conv-left", "linear")[4])
	rightSinr := cellFloat(t, get("conv-right", "linear")[4])
	if leftSinr >= rightSinr {
		t.Errorf("linear chain SINR: downhill %.4f should be far below uphill %.4f", leftSinr, rightSinr)
	}
	// Uphill linear delivery collapses under SINR relative to disks.
	rightDiskDel := cellFloat(t, get("conv-right", "linear")[5])
	rightSinrDel := cellFloat(t, get("conv-right", "linear")[6])
	if rightSinrDel >= rightDiskDel {
		t.Errorf("uphill linear: SINR delivery %.3f should fall below disk %.3f", rightSinrDel, rightDiskDel)
	}
}
