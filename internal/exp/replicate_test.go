package exp

import "testing"

func TestReplicatedT54ConstantStable(t *testing.T) {
	tb := ReplicatedT54(1, 6, 0)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		mean := cellFloat(t, row[2])
		std := cellFloat(t, row[3])
		max := cellFloat(t, row[4])
		if mean < 0.5 || mean > 4 {
			t.Errorf("%s n=%s: mean ratio %.2f outside the O(√Δ) constant band", row[0], row[1], mean)
		}
		if std > mean {
			t.Errorf("%s n=%s: std %.2f exceeds mean %.2f — unstable", row[0], row[1], std, mean)
		}
		if max > 8 {
			t.Errorf("%s n=%s: worst ratio %.2f blows the bound", row[0], row[1], max)
		}
	}
}

func TestReplicatedT56WithinGuarantee(t *testing.T) {
	tb := ReplicatedT56(1, 6, 0)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if max := cellFloat(t, row[3]); max > 20 {
			t.Errorf("%s: worst ratio %.2f implausibly large", row[0], max)
		}
		frac := cellFloat(t, row[4])
		if frac < 0 || frac > 1 {
			t.Errorf("%s: branch fraction %.2f out of range", row[0], frac)
		}
	}
}
