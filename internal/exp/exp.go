// Package exp implements the reproduction experiments: one runner per
// figure/theorem of the paper (see DESIGN.md's per-experiment index).
// Each runner returns a tablefmt.Table whose rows are the series the
// paper's artifact shows, so cmd/paperrepro, the CLIs, and the benchmark
// harness all print identical numbers.
//
// Experiment ids:
//
//	F1   Figure 1    — sender- vs receiver-centric robustness under one arrival
//	T41  Theorem 4.1 — NNF Ω(n) vs constant-interference tree on the gadget
//	F7   Figures 6–7 — linearly connected exponential chain: I = n−2
//	T51  Theorem 5.1 — A_exp achieves O(√n) on the exponential chain
//	T52  Theorem 5.2 — √n lower bound: exact OPT on small chains
//	T54  Theorem 5.4 — A_gen achieves O(√Δ) on random highway instances
//	T56  Theorem 5.6 — A_apx approximation ratio vs the Ω(√γ) bound
//	S4   Section 4   — the topology-control zoo under the new measure
//	X1   extension   — per-node robustness deltas across arrival sequences
//	X2   extension   — packet-level validation: I(G') vs collision rate
package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/highway"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tablefmt"
	"repro/internal/topology"
	"repro/internal/udg"
)

// Figure1 measures both interference measures on the Figure 1 gadget,
// before and after the remote node joins, across cluster sizes. The
// paper's claim: the sender-centric measure jumps from a small constant
// to ≈ n, the receiver-centric measure moves by O(1).
func Figure1(seed int64) *tablefmt.Table {
	t := tablefmt.New(
		"F1: one arrival, Figure-1 gadget (topology = MST; sender-centric jumps to ~n, receiver-centric moves by O(1))",
		"n", "recv_before", "recv_after", "max_node_delta", "send_before", "send_after")
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{16, 32, 64, 128, 256, 512} {
		pts := gen.Figure1(rng, n, 0.2)
		impact := core.MeasureAddition(pts, topology.MST)
		t.AddRowf(n, impact.ReceiverBefore, impact.ReceiverAfter, impact.MaxNodeDelta,
			impact.SenderBefore, impact.SenderAfter)
	}
	return t
}

// Theorem41 builds the double-exponential-chain gadget at growing sizes
// and compares the NNF's interference against the Figure-5-style optimal
// tree (and the exact optimum where n is small enough).
func Theorem41() *tablefmt.Table {
	t := tablefmt.New(
		"T4.1: NNF is Ω(n) on the Figure-3 gadget; the optimal tree stays O(1)",
		"n", "I_NNF", "I_opt_tree", "ratio")
	for _, k := range []int{4, 8, 16, 32, 64, 128} {
		pts := gen.DoubleExpChain(k)
		n := len(pts)
		nnfI := core.Interference(pts, topology.NNF(pts)).Max()
		optI := core.Interference(pts, OptTreeGadget(pts, k)).Max()
		t.AddRowf(n, nnfI, optI, float64(nnfI)/float64(optI))
	}
	return t
}

// OptTreeGadget builds the Figure 5 optimal topology for the
// DoubleExpChain gadget: each horizontal node h_i hangs off its partner
// v_i, the diagonal chain is glued v_{i-1} — t_i — v_i, and t_0 hangs off
// v_0. Interference is constant regardless of k.
func OptTreeGadget(pts []geom.Point, k int) *graph.Graph {
	g := graph.New(len(pts))
	h := func(i int) int { return 3 * i }
	v := func(i int) int { return 3*i + 1 }
	tt := func(i int) int { return 3*i + 2 }
	d := func(a, b int) float64 { return pts[a].Dist(pts[b]) }
	for i := 0; i < k; i++ {
		g.AddEdge(h(i), v(i), d(h(i), v(i)))
	}
	g.AddEdge(tt(0), v(0), d(tt(0), v(0)))
	for i := 1; i < k; i++ {
		g.AddEdge(v(i-1), tt(i), d(v(i-1), tt(i)))
		g.AddEdge(tt(i), v(i), d(tt(i), v(i)))
	}
	return g
}

// Figure7 reports the interference of the linearly connected exponential
// chain: n−2, concentrated at the leftmost node.
func Figure7() *tablefmt.Table {
	t := tablefmt.New(
		"F6/F7: linearly connected exponential chain — I(G_lin) = n−2",
		"n", "I_lin", "I_at_leftmost", "n-2")
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256, 500} {
		pts, r := chainFor(n)
		g := highway.LinearRange(pts, r)
		iv := core.Interference(pts, g)
		t.AddRowf(n, iv.Max(), iv[0], n-2)
	}
	return t
}

// chainFor returns an exponential chain of n nodes and the communication
// range to use with it: unit-extent chains (complete UDG, r = 1) while
// float64 can resolve the gaps, unnormalized chains with r = ∞ beyond
// (the measure is scale-invariant; see gen.ExpChainUnit).
func chainFor(n int) ([]geom.Point, float64) {
	if n <= gen.MaxExpChainN {
		return gen.ExpChain(n, 1), udg.Radius
	}
	return gen.ExpChainUnit(n), math.Inf(1)
}

// Theorem51 runs A_exp over exponential chains, reporting achieved
// interference against the closed-form bound of the proof and the √n
// lower bound, and fits the scaling law I ≈ c·n^k (expect k ≈ 0.5).
func Theorem51() (*tablefmt.Table, string) {
	t := tablefmt.New(
		"T5.1/F8: A_exp on the exponential chain — I = O(√n), matching the Theorem 5.2 lower bound",
		"n", "I_aexp", "thm51_bound", "sqrt_n_lower", "I_lin")
	var xs, ys []float64
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256, 500} {
		pts, r := chainFor(n)
		aexpI := core.Interference(pts, highway.AExp(pts)).Max()
		linI := core.Interference(pts, highway.LinearRange(pts, r)).Max()
		t.AddRowf(n, aexpI, highway.AExpBound(n), highway.LowerBoundExpChain(n), linI)
		xs = append(xs, float64(n))
		ys = append(ys, float64(aexpI))
	}
	c, k := stats.PowerFit(xs, ys)
	return t, fmt.Sprintf("power fit: I_aexp ≈ %.2f · n^%.3f (theory: Θ(n^0.5))", c, k)
}

// Theorem52 computes the exact optimum on small chains and compares it
// against A_exp and the √n lower bound, establishing the asymptotic
// optimality claim at reproducible scale.
func Theorem52() *tablefmt.Table {
	t := tablefmt.New(
		"T5.2: exact minimum interference on small exponential chains",
		"n", "OPT", "sqrt_n_floor", "I_aexp", "aexp/OPT", "proved")
	for _, n := range []int{4, 6, 8, 10, 12, 14} {
		pts := gen.ExpChain(n, 1)
		res := opt.Exact(pts)
		aexpI := core.Interference(pts, highway.AExp(pts)).Max()
		t.AddRowf(n, res.Interference, highway.LowerBoundExpChain(n), aexpI,
			float64(aexpI)/float64(res.Interference), res.Exact)
	}
	return t
}

// Theorem54 measures A_gen's interference against √Δ across the random
// highway families.
func Theorem54(seed int64) *tablefmt.Table {
	t := tablefmt.New(
		"T5.4/F9: A_gen on random highway instances — I = O(√Δ)",
		"family", "n", "delta", "sqrt_delta", "I_agen", "I_agen/sqrt_delta", "I_lin")
	rng := rand.New(rand.NewSource(seed))
	type inst struct {
		name string
		pts  []geom.Point
	}
	var instances []inst
	for _, n := range []int{64, 256, 1024, 4096} {
		instances = append(instances,
			inst{"uniform", gen.HighwayUniform(rng, n, float64(n)/20)},
			inst{"dense", gen.HighwayUniform(rng, n, float64(n)/100)},
			inst{"bursty", gen.HighwayBursty(rng, n, 1+n/64, float64(n)/20, 0.3)},
		)
	}
	instances = append(instances,
		inst{"expfrag", gen.HighwayExpFragments(rng, 6, 10, 50)},
		inst{"expchain", gen.ExpChain(40, 1)},
	)
	for _, in := range instances {
		delta := udg.MaxDegree(in.pts, udg.Radius)
		agenI := core.Interference(in.pts, highway.AGen(in.pts)).Max()
		linI := core.Interference(in.pts, highway.Linear(in.pts)).Max()
		sq := math.Sqrt(float64(delta))
		t.AddRowf(in.name, len(in.pts), delta, sq, agenI, float64(agenI)/sq, linI)
	}
	return t
}

// Theorem56 measures A_apx's approximation quality: achieved interference
// against the Lemma 5.5 lower bound Ω(√γ) (all instances) and the exact
// optimum (small instances), with the branch it chose.
func Theorem56(seed int64) *tablefmt.Table {
	t := tablefmt.New(
		"T5.6: A_apx — achieved interference vs lower bound and Δ^¼ guarantee",
		"family", "n", "branch", "gamma", "lb=sqrt(gamma/2)", "I_apx", "I_apx/lb", "delta^1/4", "OPT(small n)")
	rng := rand.New(rand.NewSource(seed))
	type inst struct {
		name string
		pts  []geom.Point
	}
	instances := []inst{
		{"uniform-sm", gen.HighwayUniform(rng, 12, 3)},
		{"expchain-sm", gen.ExpChain(12, 1)},
		{"uniform", gen.HighwayUniform(rng, 400, 40)},
		{"even", evenChain(200, 0.4)},
		{"bursty", gen.HighwayBursty(rng, 400, 8, 40, 0.2)},
		{"expfrag", gen.HighwayExpFragments(rng, 5, 9, 40)},
		{"expchain", gen.ExpChain(40, 1)},
	}
	for _, in := range instances {
		g, branch := highway.AApxExplain(in.pts)
		apxI := core.Interference(in.pts, g).Max()
		gamma, _ := highway.Gamma(in.pts)
		lb := highway.GammaLowerBound(gamma)
		delta := udg.MaxDegree(in.pts, udg.Radius)
		ratio := math.NaN()
		if lb > 0 {
			ratio = float64(apxI) / float64(lb)
		}
		optCell := "-"
		if len(in.pts) <= opt.MaxExactN {
			res := opt.Exact(in.pts)
			optCell = fmt.Sprintf("%d", res.Interference)
		}
		t.AddRowf(in.name, len(in.pts), branch, gamma, lb, apxI, ratio,
			math.Pow(float64(delta), 0.25), optCell)
	}
	return t
}

// evenChain returns n nodes with identical gaps — the benign instance of
// Section 5.3 where A_gen alone would waste O(√Δ).
func evenChain(n int, gap float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*gap, 0)
	}
	return pts
}

// Section4 runs the full topology-control zoo over 2-D instance families
// and the Theorem 4.1 gadget, reporting the receiver-centric and
// sender-centric interference of each construction.
func Section4(seed int64) *tablefmt.Table {
	t := tablefmt.New(
		"S4: known topology-control algorithms under the receiver-centric measure",
		"instance", "algorithm", "recv_I", "send_I", "max_degree", "edges")
	rng := rand.New(rand.NewSource(seed))
	type inst struct {
		name string
		pts  []geom.Point
	}
	instances := []inst{
		{"uniform-2d", gen.UniformSquare(rng, 250, 4)},
		{"clustered-2d", gen.Clustered(rng, 250, 6, 4, 0.25)},
		{"gadget-T41", gen.DoubleExpChain(40)},
	}
	for _, in := range instances {
		for _, alg := range topology.All() {
			g := alg.Build(in.pts)
			recv := core.Interference(in.pts, g).Max()
			_, send := core.SenderInterference(in.pts, g)
			t.AddRowf(in.name, alg.Name, recv, send, g.MaxDegree(), g.M())
		}
	}
	return t
}

// RobustnessX1 runs arrival sequences over random instances, measuring
// the distribution of per-node interference increases for both measures
// under a fixed (pre-arrival) radius assignment — the paper's robustness
// property (≤ 1 receiver-centric) and its sender-centric counterexample.
func RobustnessX1(seed int64, trials int) *tablefmt.Table {
	t := tablefmt.New(
		"X1: per-arrival interference deltas (fixed existing radii)",
		"trial", "n", "max_recv_delta", "send_before", "send_after_worst")
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		n := 20 + rng.Intn(80)
		pts := gen.UniformSquare(rng, n, 2)
		radii := core.Radii(pts[:n-1], topology.MST(pts[:n-1]))
		// New node arrives with the radius its MST attachment would give.
		newR := nearestDist(pts, n-1)
		deltas := core.FixedTopologyDelta(pts, radii, newR)
		maxD := 0
		for _, d := range deltas {
			if d > maxD {
				maxD = d
			}
		}
		// Sender-centric: worst single link the arrival could force.
		before := topology.MST(pts[:n-1])
		_, sBefore := core.SenderInterference(pts[:n-1], before)
		after := topology.MST(pts)
		_, sAfter := core.SenderInterference(pts, after)
		t.AddRowf(trial, n, maxD, sBefore, sAfter)
	}
	return t
}

func nearestDist(pts []geom.Point, i int) float64 {
	_, d := geom.NearestBrute(pts, i)
	if math.IsInf(d, 1) {
		return 0
	}
	return d
}

// SimX2 runs the packet simulator over several topologies on the same
// exponential-chain instance and workload, relating static interference
// to collision rate, delivery, retransmissions, latency, and energy.
func SimX2(n int, seed int64) *tablefmt.Table {
	t := tablefmt.New(
		fmt.Sprintf("X2: packet-level convergecast on a %d-node exponential chain (same workload, different topologies)", n),
		"topology", "I(G)", "delivery", "collision_rate", "retx", "mean_latency", "energy")
	pts := gen.ExpChain(n, 1)
	topos := []struct {
		name string
		g    *graph.Graph
	}{
		{"linear", highway.Linear(pts)},
		{"aexp", highway.AExp(pts)},
		{"agen", highway.AGen(pts)},
		{"mst", topology.MST(pts)},
		{"nnf+bridges", connectedNNF(pts)},
	}
	for _, tp := range topos {
		nw := sim.NewNetwork(pts, tp.g)
		cfg := sim.DefaultConfig()
		cfg.Slots = 60000
		cfg.Seed = seed
		s := sim.New(nw, cfg)
		sim.Convergecast{N: n, Sink: 0, Period: 500, Slots: 30000, Stagger: true}.Install(s)
		m := s.Run()
		t.AddRowf(tp.name, core.Interference(pts, tp.g).Max(),
			m.DeliveryRatio(), m.CollisionRate(), m.Retransmits, m.MeanLatency(), m.Energy)
	}
	return t
}

// maxDeg returns Δ of the UDG over pts.
func maxDeg(pts []geom.Point) int { return udg.MaxDegree(pts, udg.Radius) }

// sqrtF returns √x as float64 for table cells.
func sqrtF(x int) float64 { return math.Sqrt(float64(x)) }

// connectedNNF augments the NNF with MST edges between its components so
// it can carry traffic (the raw NNF may be disconnected); the added
// bridges are exactly the MST edges joining distinct NNF trees.
func connectedNNF(pts []geom.Point) *graph.Graph {
	g := topology.NNF(pts)
	mst := topology.MST(pts)
	label, _ := g.Components()
	for _, e := range mst.SortedEdges() {
		if label[e.U] != label[e.V] {
			g.AddEdge(e.U, e.V, e.W)
			// Relabel the smaller side lazily: recompute labels.
			label, _ = g.Components()
		}
	}
	return g
}

// Figure8Detail reproduces Figure 8's node-level annotation: for an
// n-node exponential chain under A_exp it lists each node's hub status,
// degree, and individual interference I(v) — the values the paper prints
// next to every node — plus the same chain connected linearly (Figure 7's
// labels) for contrast.
func Figure8Detail(n int) *tablefmt.Table {
	pts := gen.ExpChain(n, 1)
	aexp := highway.AExp(pts)
	lin := highway.Linear(pts)
	ivA := core.Interference(pts, aexp)
	ivL := core.Interference(pts, lin)
	hubs := map[int]bool{}
	for _, h := range highway.Hubs(aexp) {
		hubs[h] = true
	}
	t := tablefmt.New(
		fmt.Sprintf("F8 detail: per-node interference on the %d-node exponential chain", n),
		"node", "hub", "deg_aexp", "I_aexp(v)", "I_linear(v)")
	for v := 0; v < n; v++ {
		t.AddRowf(v, hubs[v], aexp.Degree(v), ivA[v], ivL[v])
	}
	return t
}
