package wire_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wire"
)

// startServer boots a manager + wire server on a loopback port and
// returns the dial address.
func startServer(t *testing.T, cfg serve.Config, scfg wire.ServerConfig) (string, *serve.Manager) {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	mgr := serve.NewManager(cfg)
	scfg.Manager = mgr
	if scfg.Registry == nil {
		scfg.Registry = obs.NewRegistry()
	}
	srv := wire.NewServer(scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
		mgr.Close(nil)
	})
	return ln.Addr().String(), mgr
}

func dialClient(t *testing.T, addr string, cfg wire.ClientConfig) *wire.Client {
	t.Helper()
	cfg.Addr = addr
	c, err := wire.Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func line(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*0.5, 0)
	}
	return pts
}

func TestWireEndToEnd(t *testing.T) {
	for _, crc := range []bool{false, true} {
		name := "plain"
		if crc {
			name = "crc"
		}
		t.Run(name, func(t *testing.T) {
			addr, _ := startServer(t, serve.Config{}, wire.ServerConfig{})
			c := dialClient(t, addr, wire.ClientConfig{Conns: 2, CRC: crc})

			if err := c.Ping(); err != nil {
				t.Fatalf("Ping: %v", err)
			}
			n, err := c.Create("alpha", line(5))
			if err != nil || n != 5 {
				t.Fatalf("Create: n=%d err=%v", n, err)
			}

			// Duplicate create maps to the 409 the HTTP facade sends.
			if _, err := c.Create("alpha", line(5)); err == nil {
				t.Fatal("duplicate create accepted")
			} else {
				var we *wire.Error
				if !errors.As(err, &we) || we.Status != wire.StatusExists {
					t.Fatalf("duplicate create: %v", err)
				}
			}

			ids, err := c.Mutate("alpha", []serve.Mutation{
				serve.Add(2.5, 0.1),
				serve.Move(1, 0.6, 0.05),
				serve.Remove(3),
				serve.SetRadius(0, 1.25),
			})
			if err != nil {
				t.Fatalf("Mutate: %v", err)
			}
			if len(ids) != 1 || ids[0] != 5 {
				t.Fatalf("assigned ids = %v, want [5]", ids)
			}
			if _, err := c.Flush("alpha"); err != nil {
				t.Fatalf("Flush: %v", err)
			}

			sum, err := c.Summary("alpha")
			if err != nil {
				t.Fatalf("Summary: %v", err)
			}
			if sum.N != 5 || sum.Seq != 4 {
				t.Fatalf("summary = %+v, want n=5 seq=4", sum)
			}

			seq, nodes, err := c.Nodes("alpha", nil)
			if err != nil || seq != sum.Seq || len(nodes) != 5 {
				t.Fatalf("Nodes: seq=%d n=%d err=%v", seq, len(nodes), err)
			}
			var got5, gotR bool
			for _, n := range nodes {
				if n.ID == 5 {
					got5 = true
				}
				if n.ID == 0 && n.R == 1.25 {
					gotR = true
				}
			}
			if !got5 || !gotR {
				t.Fatalf("nodes = %+v: added id missing (%v) or radius override missing (%v)", nodes, got5, gotR)
			}

			if err := c.Drop("alpha"); err != nil {
				t.Fatalf("Drop: %v", err)
			}
			if _, err := c.Summary("alpha"); err == nil {
				t.Fatal("summary of dropped session succeeded")
			} else {
				var we *wire.Error
				if !errors.As(err, &we) || we.Status != wire.StatusNotFound {
					t.Fatalf("summary after drop: %v", err)
				}
			}
		})
	}
}

func TestWireCreateGen(t *testing.T) {
	addr, _ := startServer(t, serve.Config{}, wire.ServerConfig{MaxGenN: 64})
	c := dialClient(t, addr, wire.ClientConfig{})

	n, err := c.CreateGen("gen", wire.GenSpec{N: 32, Seed: 7})
	if err != nil || n != 32 {
		t.Fatalf("CreateGen: n=%d err=%v", n, err)
	}
	// Over the server's generation cap: rejected, not generated.
	if _, err := c.CreateGen("huge", wire.GenSpec{N: 1 << 20, Seed: 7}); err == nil {
		t.Fatal("oversized CreateGen accepted")
	}
	// Same seed, second server-side generation is deterministic.
	n2, err := c.CreateGen("gen2", wire.GenSpec{N: 32, Seed: 7})
	if err != nil || n2 != 32 {
		t.Fatalf("CreateGen twice: %v", err)
	}
	_, a, err := c.Nodes("gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := c.Nodes("gen2", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].X != b[i].X || a[i].Y != b[i].Y {
			t.Fatalf("node %d: same seed produced different instances", i)
		}
	}
}

func TestWireValidationError(t *testing.T) {
	addr, _ := startServer(t, serve.Config{MaxCoord: 10}, wire.ServerConfig{})
	c := dialClient(t, addr, wire.ClientConfig{})
	if _, err := c.Create("v", line(3)); err != nil {
		t.Fatal(err)
	}
	// A rejected coordinate fails the whole batch with 400 — and a clean
	// batch pipelined right behind it must still land (per-frame
	// all-or-nothing, exactly as over HTTP).
	bad := c.GoMutate("v", []serve.Mutation{serve.Add(1e9, 0)})
	good := c.GoMutate("v", []serve.Mutation{serve.Add(1, 1)})
	if _, err := bad.MutateIDs(nil); err == nil {
		t.Fatal("out-of-range coordinate accepted")
	} else {
		var we *wire.Error
		if !errors.As(err, &we) || we.Status != wire.StatusBad {
			t.Fatalf("bad coord: %v", err)
		}
	}
	ids, err := good.MutateIDs(nil)
	if err != nil || len(ids) != 1 {
		t.Fatalf("clean neighbor batch: ids=%v err=%v", ids, err)
	}
	if _, err := c.Flush("v"); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary("v")
	if err != nil || sum.N != 4 {
		t.Fatalf("summary after mixed batch: %+v %v", sum, err)
	}
}

// TestWirePipelineCoalesces is the regression for the BENCH_3 finding
// that the HTTP path's batch-of-one enqueues kept coalesced_% at zero:
// pipelined wire mutate frames must reach the session owner as real
// multi-op batches, where redundant same-node set-radius ops collapse.
func TestWirePipelineCoalesces(t *testing.T) {
	addr, mgr := startServer(t, serve.Config{QueueCap: 4096, BatchCap: 512}, wire.ServerConfig{})
	c := dialClient(t, addr, wire.ClientConfig{})
	if _, err := c.Create("co", line(8)); err != nil {
		t.Fatal(err)
	}
	s, _ := mgr.Session("co")

	const frames = 256
	pend := make([]*wire.Pending, 0, frames)
	for i := 0; i < frames; i++ {
		// Every frame hammers the same node: a coalescible workload.
		pend = append(pend, c.GoMutate("co", []serve.Mutation{serve.SetRadius(0, float64(i))}))
	}
	for _, p := range pend {
		if _, err := p.MutateIDs(nil); err != nil {
			t.Fatalf("pipelined mutate: %v", err)
		}
	}
	if _, err := c.Flush("co"); err != nil {
		t.Fatal(err)
	}
	applied, rejected := s.Counts()
	enq := mgr.Metrics().Enqueued.Value()
	if rejected != 0 {
		t.Fatalf("rejected %d mutations", rejected)
	}
	if enq != frames {
		t.Fatalf("enqueued %d, want %d", enq, frames)
	}
	if applied >= enq {
		t.Fatalf("coalesced 0%% (enqueued %d, applied %d): pipelined wire batches are not coalescing", enq, applied)
	}
	t.Logf("coalesced %.1f%% (enqueued %d, applied %d)", float64(enq-applied)/float64(enq)*100, enq, applied)
}

// TestWireBackpressure drives a tiny queue past capacity and expects
// the 429 analog, which IsBackpressure recognizes.
func TestWireBackpressure(t *testing.T) {
	slow := func(string) { time.Sleep(2 * time.Millisecond) }
	addr, _ := startServer(t, serve.Config{QueueCap: 4, BatchCap: 2, BeforeBatch: slow}, wire.ServerConfig{})
	c := dialClient(t, addr, wire.ClientConfig{})
	if _, err := c.Create("bp", line(4)); err != nil {
		t.Fatal(err)
	}
	var saw429 bool
	for i := 0; i < 200 && !saw429; i++ {
		_, err := c.Mutate("bp", []serve.Mutation{serve.SetRadius(0, 0.5)})
		if err != nil {
			if !wire.IsBackpressure(err) {
				t.Fatalf("unexpected error: %v", err)
			}
			saw429 = true
		}
	}
	if !saw429 {
		t.Fatal("queue of 4 absorbed 200 rapid mutations without backpressure")
	}
}

// TestWireStaleSessionCache drops a session behind a connection's back;
// the connection's cached handle must not resurrect it.
func TestWireStaleSessionCache(t *testing.T) {
	addr, _ := startServer(t, serve.Config{}, wire.ServerConfig{})
	c1 := dialClient(t, addr, wire.ClientConfig{})
	c2 := dialClient(t, addr, wire.ClientConfig{})
	if _, err := c1.Create("st", line(4)); err != nil {
		t.Fatal(err)
	}
	// Prime c1's per-connection cache.
	if _, err := c1.Mutate("st", []serve.Mutation{serve.SetRadius(0, 0.5)}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Drop("st"); err != nil {
		t.Fatal(err)
	}
	_, err := c1.Mutate("st", []serve.Mutation{serve.SetRadius(0, 0.9)})
	var we *wire.Error
	if !errors.As(err, &we) || (we.Status != wire.StatusGone && we.Status != wire.StatusNotFound) {
		t.Fatalf("mutate after remote drop: %v", err)
	}
	// And a recreate under the same name must be reachable from c1.
	if _, err := c1.Create("st", line(6)); err != nil {
		t.Fatal(err)
	}
	sum, err := c1.Summary("st")
	if err != nil || sum.N != 6 {
		t.Fatalf("recreated session via cached conn: %+v %v", sum, err)
	}
}

// TestWireBadHello rejects a non-rimwire client before anything else.
func TestWireBadHello(t *testing.T) {
	addr, _ := startServer(t, serve.Config{}, wire.ServerConfig{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	n, _ := nc.Read(buf)
	if n >= wire.HeaderSize {
		h := wire.DecodeHeader(buf[:wire.HeaderSize])
		if h.Type != wire.MsgErr || h.Status != wire.StatusBad {
			t.Fatalf("hello rejection frame = %+v", h)
		}
	}
	// Connection must be closed either way.
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("connection survived a bad hello")
	}
}

// TestWireConcurrentClients exercises the pool and multiplexing under
// parallel mixed load.
func TestWireConcurrentClients(t *testing.T) {
	addr, _ := startServer(t, serve.Config{QueueCap: 8192, BatchCap: 256}, wire.ServerConfig{})
	c := dialClient(t, addr, wire.ClientConfig{Conns: 4})
	if _, err := c.Create("mix", line(64)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if i%10 == 0 {
					for {
						_, err := c.Mutate("mix", []serve.Mutation{serve.SetRadius(int64(g*8 + i%8), 0.25)})
						if err == nil {
							break
						}
						if !wire.IsBackpressure(err) {
							errs <- err
							return
						}
						time.Sleep(100 * time.Microsecond)
					}
				} else {
					if _, err := c.Summary("mix"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := c.Flush("mix"); err != nil {
		t.Fatal(err)
	}
}
