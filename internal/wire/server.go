package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sub"
)

// Server speaks rimwire v1 over persistent connections, feeding the
// serve.Manager's sharded batch pipeline directly — no JSON, no
// per-request connection handling, no intermediate goroutine hops. One
// goroutine owns each connection end to end: it decodes pipelined
// frames, answers reads from the session's lock-free published snapshot,
// and accumulates consecutive mutate frames into a single Apply call so
// a pipelined client's mutations reach the session queue in batches —
// which is what lets the owner-side coalescing (last-set-radius-wins)
// fire for wire clients the way it does for native callers.
type Server struct {
	cfg ServerConfig
	mx  *metrics

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerConfig parameterizes a Server. Manager is required; the zero
// value of everything else selects sane defaults.
type ServerConfig struct {
	// Manager is the session pipeline the server fronts.
	Manager *serve.Manager
	// MaxFrame bounds incoming payload lengths; <= 0 means the package
	// default (16 MiB). The bound is enforced on the length word alone,
	// before any buffer grows.
	MaxFrame int
	// MaxBatchOps caps how many pipelined mutations accumulate before a
	// forced enqueue; <= 0 means 512. Keep it at or below the manager's
	// QueueCap or large pipelines will see spurious backpressure.
	MaxBatchOps int
	// MaxGenN bounds server-side instance generation (MsgCreateGen);
	// <= 0 means 1<<20. Explicit-point creates are bounded by MaxFrame.
	MaxGenN int
	// Registry receives the rim_wire_* metrics; nil means obs.Default().
	Registry *obs.Registry
	// Hub, when set, enables the subscription frames (MsgSubscribe and
	// friends): the hub must be wired into the same manager via
	// serve.Config.AfterBatchDelta. Nil rejects subscription requests
	// with status 400.
	Hub *sub.Hub
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxFrame <= 0 {
		c.MaxFrame = MaxFrame
	}
	if c.MaxBatchOps <= 0 {
		c.MaxBatchOps = 512
	}
	if c.MaxGenN <= 0 {
		c.MaxGenN = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// NewServer builds a server over a session manager.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Manager == nil {
		panic("wire: ServerConfig.Manager is required")
	}
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		mx:    registerMetrics(cfg.Registry),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until Close. It returns nil after
// Close, or the first fatal accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("wire: server closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.mx.connsOpened.Inc()
		go s.handle(c)
	}
}

// Close stops accepting, closes every live connection, and waits for
// the handlers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// conn is one connection's owner-goroutine state: the frame reader, a
// write buffer (frames are built in buf and flushed in bursts), the
// pending pipelined-mutation accumulator, and a one-entry session cache
// so steady-state requests never re-hash the session table.
type conn struct {
	srv   *Server
	c     net.Conn
	r     *Reader
	crc   bool // client requested CRC trailers in the hello
	trace bool // client negotiated trace-context extensions in the hello

	buf        []byte // outgoing frames accumulate here until flushed
	frameStart int    // offset of the frame being built in buf
	muts       []serve.Mutation
	mutF       []mutFrame
	pts        []geom.Point // create scratch

	sess    *serve.Session
	sid     []byte
	mutSess *serve.Session // session the accumulated muts target

	// Push state, created lazily on the first MsgSubscribe. The pump
	// goroutine writes MsgEvent frames concurrently with the owner
	// goroutine's response flushes, so every socket write — both paths —
	// holds wmu; frames interleave whole, never torn.
	wmu      sync.Mutex
	pushSB   *sub.Subscriber
	pushDone chan struct{}
}

// mutFrame remembers one pipelined mutate frame awaiting its enqueue:
// the request id to acknowledge, and how many OpAdds it contributed (to
// slice the assigned ids back out of the combined Apply result).
type mutFrame struct {
	id   uint64
	adds int
	ops  int
}

func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	c := &conn{srv: s, c: nc, r: NewReader(nc, s.cfg.MaxFrame)}
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		// Detach the push subscriber before closing the socket (no new
		// events), then close, then join the pump — a pump blocked in a
		// write is unblocked by the close, so the join cannot hang.
		if c.pushSB != nil {
			s.cfg.Hub.CloseSubscriber(c.pushSB)
		}
		nc.Close()
		if c.pushDone != nil {
			<-c.pushDone
		}
		s.mx.connsClosed.Inc()
	}()

	// Handshake: the first frame pins protocol and version, and its CRC
	// flag opts the whole connection into CRC trailers both ways.
	h, p, err := c.r.Next()
	if err != nil || h.Type != MsgHello || CheckHello(p) != nil {
		c.writeErr(h.ID, StatusBad, "rimwire v1 hello required")
		c.flushWrites()
		return
	}
	c.crc = h.Flags&FlagCRC != 0
	c.trace = h.Flags&FlagTrace != 0
	c.begin(MsgHelloOK, StatusOK, h.ID)
	c.buf = AppendHello(c.buf)
	c.end()
	if c.trace {
		// Echo the capability so the client knows its trace blocks will be
		// honored. Header flags are outside the CRC trailer (it covers the
		// payload alone), so patching after end() is safe.
		c.buf[c.frameStart+5] |= FlagTrace
	}
	c.flushWrites()

	for {
		h, p, err := c.r.Next()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.writeErr(h.ID, StatusBad, err.Error())
				s.mx.errors.Inc()
			}
			c.flushMutations()
			c.flushWrites()
			return
		}
		s.mx.framesIn.Inc()
		s.mx.bytesIn.Add(int64(HeaderSize) + int64(h.Len))
		s.mx.requests.Inc()
		c.dispatch(h, p)
		// Pipelining heartbeat: as long as a complete next frame is
		// already buffered, keep accumulating; the moment the next Next
		// would touch the socket, enqueue pending mutations and flush
		// every buffered response in one write. (Buffered() == 0 is the
		// wrong condition here: sustained traffic keeps the bufio buffer
		// non-empty across torn-frame refills, which would delay
		// responses until an arrival gap.)
		if !c.r.FrameBuffered() {
			c.flushMutations()
			if err := c.flushWrites(); err != nil {
				return
			}
		}
	}
}

// dispatch handles one decoded frame. Responses are appended to the
// write buffer; mutate frames are accumulated for a combined enqueue.
func (c *conn) dispatch(h Header, p []byte) {
	switch h.Type {
	case MsgPing:
		c.flushMutations() // FIFO: answer in order
		c.begin(MsgPong, StatusOK, h.ID)
		c.end()

	case MsgMutate:
		sid, rest, err := ReadString(p)
		if err != nil {
			c.flushMutations()
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		sess := c.lookup(sid)
		if sess == nil {
			c.flushMutations()
			c.writeErr(h.ID, StatusNotFound, "no such session")
			return
		}
		if sess != c.mutSess {
			c.flushMutations() // session switch: keep batches single-session
		}
		before := len(c.muts)
		muts, tail, err := DecodeOps(rest, c.muts)
		if err != nil {
			c.flushMutations()
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		c.muts = muts
		if h.Flags&FlagTrace != 0 && c.trace {
			tc, _, terr := DecodeTraceContext(tail)
			if terr != nil {
				c.muts = c.muts[:before]
				c.flushMutations()
				c.writeErr(h.ID, StatusBad, terr.Error())
				return
			}
			if len(c.muts) > before {
				// The first mutation carries the context; the serve batch
				// adopts the first traced mutation it drains.
				tcp := tc
				c.muts[before].TC = &tcp
			}
		}
		adds := 0
		for i := before; i < len(c.muts); i++ {
			if c.muts[i].Op == serve.OpAdd {
				adds++
			}
		}
		c.mutSess = sess
		c.mutF = append(c.mutF, mutFrame{id: h.ID, adds: adds, ops: len(c.muts) - before})
		if len(c.muts) >= c.srv.cfg.MaxBatchOps {
			c.flushMutations()
		}

	case MsgSummary:
		c.flushMutations()
		t0 := time.Now()
		sid, _, err := ReadString(p)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		sess := c.lookup(sid)
		if sess == nil {
			c.writeErr(h.ID, StatusNotFound, "no such session")
			return
		}
		head := sess.Head()
		c.begin(MsgSummaryOK, StatusOK, h.ID)
		c.buf = AppendSummary(c.buf, Summary{
			N:        uint32(head.N),
			Max:      uint32(head.Max),
			Edges:    uint32(head.Edges),
			Events:   uint32(head.Events),
			Rebuilds: uint32(head.Rebuilds),
			Queue:    uint32(sess.QueueDepth()),
			Seq:      head.Seq,
			Avg:      head.Avg,
			AgeNS:    int64(head.Age()),
		})
		c.end()
		c.srv.mx.readLatency.Observe(time.Since(t0).Seconds())

	case MsgNodes:
		c.flushMutations()
		t0 := time.Now()
		sid, _, err := ReadString(p)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		sess := c.lookup(sid)
		if sess == nil {
			c.writeErr(h.ID, StatusNotFound, "no such session")
			return
		}
		snap := sess.Snapshot()
		c.begin(MsgNodesOK, StatusOK, h.ID)
		c.buf = AppendNodes(c.buf, snap.Seq, snap.Nodes)
		c.end()
		c.srv.mx.readLatency.Observe(time.Since(t0).Seconds())

	case MsgFlush:
		c.flushMutations()
		sid, _, err := ReadString(p)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		sess := c.lookup(sid)
		if sess == nil {
			c.writeErr(h.ID, StatusNotFound, "no such session")
			return
		}
		// Flush blocks this connection's goroutine — per-connection FIFO
		// is the contract, and queued responses were flushed above.
		c.flushWrites()
		if err := sess.Flush(nil); err != nil {
			c.writeErr(h.ID, StatusGone, err.Error())
			return
		}
		c.begin(MsgFlushOK, StatusOK, h.ID)
		c.buf = AppendU64(c.buf, sess.Snapshot().Seq)
		c.end()

	case MsgCreate:
		c.flushMutations()
		sid, rest, err := ReadString(p)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		pts, _, err := DecodePoints(rest, c.pts[:0])
		c.pts = pts
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		c.create(h.ID, string(sid), pts)

	case MsgCreateGen:
		c.flushMutations()
		sid, rest, err := ReadString(p)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		spec, err := DecodeGenSpec(rest)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		if int(spec.N) > c.srv.cfg.MaxGenN {
			c.writeErr(h.ID, StatusBad, fmt.Sprintf("gen n %d exceeds limit %d", spec.N, c.srv.cfg.MaxGenN))
			return
		}
		side := spec.Side
		if side <= 0 {
			side = math.Sqrt(float64(spec.N)) / 5
		}
		pts := gen.UniformSquare(rand.New(rand.NewSource(spec.Seed)), int(spec.N), side)
		c.create(h.ID, string(sid), pts)

	case MsgDrop:
		c.flushMutations()
		sid, _, err := ReadString(p)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		if err := c.srv.cfg.Manager.DropSession(string(sid)); err != nil {
			if errors.Is(err, serve.ErrReadOnly) {
				c.writeErr(h.ID, StatusReadOnly, err.Error())
				return
			}
			c.writeErr(h.ID, StatusNotFound, err.Error())
			return
		}
		if hub := c.srv.cfg.Hub; hub != nil {
			hub.DropSession(string(sid))
		}
		c.invalidate()
		c.begin(MsgDropOK, StatusOK, h.ID)
		c.end()

	case MsgSubscribe:
		c.flushMutations() // FIFO: the registration lands after queued mutations
		hub := c.srv.cfg.Hub
		if hub == nil {
			c.writeErr(h.ID, StatusBad, "subscriptions disabled")
			return
		}
		sid, rest, err := ReadString(p)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		pred, err := DecodePredicate(rest)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		if c.pushSB == nil {
			c.pushSB = hub.NewSubscriber()
			c.pushDone = make(chan struct{})
			go c.pump()
		}
		id, err := hub.Subscribe(string(sid), pred, c.pushSB)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		// The subscription is live from this instant, so an MsgEvent can
		// in principle beat this acknowledgment onto the wire — clients
		// learn the id from the event itself (header id = subscription id).
		c.begin(MsgSubscribeOK, StatusOK, h.ID)
		c.buf = AppendU64(c.buf, id)
		c.end()

	case MsgUnsubscribe:
		c.flushMutations()
		hub := c.srv.cfg.Hub
		if hub == nil {
			c.writeErr(h.ID, StatusBad, "subscriptions disabled")
			return
		}
		id, err := DecodeU64(p)
		if err != nil {
			c.writeErr(h.ID, StatusBad, err.Error())
			return
		}
		if !hub.Unsubscribe(id) {
			c.writeErr(h.ID, StatusNotFound, "no such subscription")
			return
		}
		c.begin(MsgUnsubscribeOK, StatusOK, h.ID)
		c.end()

	default:
		c.flushMutations()
		c.writeErr(h.ID, StatusBad, fmt.Sprintf("unknown message type %d", h.Type))
	}
}

// create runs session creation and answers MsgCreateOK / MsgErr.
func (c *conn) create(id uint64, sid string, pts []geom.Point) {
	s, err := c.srv.cfg.Manager.CreateSession(sid, pts)
	switch {
	case errors.Is(err, serve.ErrSessionExists):
		c.writeErr(id, StatusExists, err.Error())
	case errors.Is(err, serve.ErrReadOnly):
		c.writeErr(id, StatusReadOnly, err.Error())
	case errors.Is(err, serve.ErrClosed):
		c.writeErr(id, StatusGone, err.Error())
	case err != nil:
		c.writeErr(id, StatusBad, err.Error())
	default:
		c.begin(MsgCreateOK, StatusOK, id)
		c.buf = AppendU32(c.buf, uint32(s.Snapshot().N))
		c.end()
	}
}

// lookup resolves a session id, consulting the one-entry cache first so
// the steady state (one connection, one session) allocates nothing. A
// cached handle that has since closed (dropped on another connection)
// is discarded — the authoritative table decides, exactly as over HTTP.
func (c *conn) lookup(sid []byte) *serve.Session {
	if c.sess != nil && bytes.Equal(c.sid, sid) {
		if !c.sess.Closed() {
			return c.sess
		}
		c.invalidate()
	}
	s, ok := c.srv.cfg.Manager.Session(string(sid))
	if !ok {
		return nil
	}
	c.sess = s
	c.sid = append(c.sid[:0], sid...)
	return s
}

// invalidate clears the session cache (after drops, or when a cached
// session reports closed — it may have been dropped and re-created).
func (c *conn) invalidate() {
	c.sess = nil
	c.mutSess = nil
	c.sid = c.sid[:0]
}

// flushMutations enqueues every accumulated pipelined mutation in one
// Apply call and acknowledges each contributing frame. One combined
// enqueue is what hands the session owner real batches to coalesce —
// the HTTP facade's batch-of-one enqueues kept coalesced_% at zero.
func (c *conn) flushMutations() {
	if len(c.mutF) == 0 {
		return
	}
	sess := c.mutSess
	muts, frames := c.muts, c.mutF
	c.muts, c.mutF, c.mutSess = c.muts[:0], c.mutF[:0], nil

	ids, err := sess.Apply(muts...)
	if err == nil {
		c.srv.mx.batches.Inc()
		c.srv.mx.batchOps.Observe(float64(len(muts)))
		for _, f := range frames {
			c.begin(MsgMutateOK, StatusOK, f.id)
			c.buf = AppendIDs(c.buf, ids[:f.adds])
			ids = ids[f.adds:]
			c.end()
		}
		return
	}
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		// Backpressure applies to the whole accumulated window: nothing
		// was enqueued, every frame gets 429, the client waits and
		// resubmits — the Retry-After contract, one layer down.
		for _, f := range frames {
			c.srv.mx.backpressure.Inc()
			c.writeErr(f.id, StatusAgain, "queue full")
		}
	case errors.Is(err, serve.ErrSessionClosed):
		c.invalidate()
		for _, f := range frames {
			c.writeErr(f.id, StatusGone, err.Error())
		}
	case errors.Is(err, serve.ErrReadOnly):
		for _, f := range frames {
			c.writeErr(f.id, StatusReadOnly, err.Error())
		}
	default:
		// A validation error in a combined batch: re-apply frame by
		// frame so the rejection lands on the frame that earned it and
		// clean neighbors still enqueue (all-or-nothing per frame, as
		// over HTTP).
		off := 0
		for _, f := range frames {
			fids, ferr := sess.Apply(muts[off : off+f.ops]...)
			off += f.ops
			switch {
			case ferr == nil:
				c.begin(MsgMutateOK, StatusOK, f.id)
				c.buf = AppendIDs(c.buf, fids)
				c.end()
			case errors.Is(ferr, serve.ErrQueueFull):
				c.srv.mx.backpressure.Inc()
				c.writeErr(f.id, StatusAgain, "queue full")
			case errors.Is(ferr, serve.ErrSessionClosed):
				c.invalidate()
				c.writeErr(f.id, StatusGone, ferr.Error())
			default:
				c.writeErr(f.id, StatusBad, ferr.Error())
			}
		}
	}
}

// begin starts a response frame in the write buffer; end closes it.
func (c *conn) begin(typ uint8, status uint16, id uint64) {
	c.frameStart = len(c.buf)
	c.buf = BeginFrame(c.buf, typ, status, id)
}

func (c *conn) end() {
	c.buf = EndFrame(c.buf, c.frameStart, c.crc)
	c.srv.mx.framesOut.Inc()
}

// writeErr appends a MsgErr response.
func (c *conn) writeErr(id uint64, status uint16, msg string) {
	c.begin(MsgErr, status, id)
	c.buf = append(c.buf, msg...)
	c.end()
	c.srv.mx.errors.Inc()
}

// flushWrites pushes the buffered response frames to the socket in one
// write, serialized against the push pump by wmu.
func (c *conn) flushWrites() error {
	if len(c.buf) == 0 {
		return nil
	}
	c.wmu.Lock()
	n, err := c.c.Write(c.buf)
	c.wmu.Unlock()
	c.srv.mx.bytesOut.Add(int64(n))
	c.buf = c.buf[:0]
	return err
}

// pump delivers subscription events: it drains the connection's
// subscriber queue, batches whatever is already waiting into one socket
// write of MsgEvent frames, and keeps draining (without writing) after a
// write error so CloseSubscriber always finds an empty, closing channel.
// It exits when the subscriber channel closes and signals via pushDone.
func (c *conn) pump() {
	defer close(c.pushDone)
	var buf []byte
	var traced []uint64 // trace ids of traced events in the current write
	dead := false
	for ev := range c.pushSB.Events() {
		if dead {
			continue
		}
		traced = traced[:0]
		buf = appendEventFrame(buf[:0], ev, c.crc, c.trace)
		if c.trace && ev.Trace != 0 {
			traced = append(traced, ev.Trace)
		}
		frames := 1
	batch:
		for len(buf) < 64<<10 {
			select {
			case ev2, ok := <-c.pushSB.Events():
				if !ok {
					break batch // closed; write what we have, then exit above
				}
				buf = appendEventFrame(buf, ev2, c.crc, c.trace)
				if c.trace && ev2.Trace != 0 {
					traced = append(traced, ev2.Trace)
				}
				frames++
			default:
				break batch
			}
		}
		spanPush := len(traced) > 0 && obs.On()
		var t0 time.Time
		if spanPush {
			t0 = time.Now()
		}
		c.wmu.Lock()
		n, err := c.c.Write(buf)
		c.wmu.Unlock()
		c.srv.mx.bytesOut.Add(int64(n))
		c.srv.mx.framesOut.Add(int64(frames))
		if err != nil {
			dead = true
		} else if spanPush {
			// The delivery leg of a distributed trace: one span per traced
			// event, covering the socket write that pushed it. Start/Dur
			// are shared across the batched write — the stitcher cares
			// about trace membership and causal position, not per-frame
			// byte timing.
			dur := time.Since(t0).Nanoseconds()
			r := obs.DefaultRecorder()
			for _, tid := range traced {
				r.Record(obs.SpanRecord{Name: "wire.event_push", Start: t0.UnixNano(), Dur: dur, Trace: tid})
			}
		}
	}
}

// appendEventFrame encodes one complete MsgEvent frame. The header id
// slot carries the subscription id — push frames have no request id. On a
// trace-negotiated connection an event from a traced batch uses the
// extended record and marks the frame FlagTrace; otherwise the trace id
// is stripped so legacy decoders see the fixed 38-byte form.
func appendEventFrame(dst []byte, ev sub.Event, crc, trace bool) []byte {
	if !trace {
		ev.Trace = 0
	}
	start := len(dst)
	dst = BeginFrame(dst, MsgEvent, StatusOK, ev.SubID)
	dst = AppendEvent(dst, ev)
	dst = EndFrame(dst, start, crc)
	if ev.Trace != 0 {
		dst[start+5] |= FlagTrace
	}
	return dst
}
