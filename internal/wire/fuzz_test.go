package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/geom"
	"repro/internal/serve"
)

// fuzzMax is the frame limit the fuzz harness runs with — small enough
// that an input triggering buffer growth past it is immediately a
// finding, large enough to exercise real payloads.
const fuzzMax = 1 << 16

// FuzzWireDecode throws arbitrary byte streams at the frame reader and
// every payload decoder. The invariants: no panic, no payload longer
// than the limit ever escapes, and a frame that round-trips back
// through the encoder reproduces its bytes exactly.
func FuzzWireDecode(f *testing.F) {
	// Seed with one well-formed frame of every payload shape, with and
	// without CRC trailers, plus classic adversarial prefixes.
	var ops []byte
	ops = AppendString(ops, "fuzz")
	ops = AppendOps(ops, []serve.Mutation{
		serve.Add(1, 2), serve.Remove(3), serve.Move(4, 5, 6),
		serve.SetRadius(7, 8), serve.AnnealStep(9, 10),
	})
	var create []byte
	create = AppendString(create, "fuzz")
	create = AppendPoints(create, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})
	var gen []byte
	gen = AppendString(gen, "fuzz")
	gen = AppendGenSpec(gen, GenSpec{N: 16, Seed: 1, Side: 2})
	var nodes []byte
	nodes = AppendNodes(nodes, 3, []serve.NodeState{{ID: 1, X: 2, Y: 3, R: 4, I: 5}})

	for _, crc := range []bool{false, true} {
		var s []byte
		s = AppendFrame(s, MsgHello, 0, 0, AppendHello(nil), crc)
		s = AppendFrame(s, MsgMutate, 0, 1, ops, crc)
		s = AppendFrame(s, MsgCreate, 0, 2, create, crc)
		s = AppendFrame(s, MsgCreateGen, 0, 3, gen, crc)
		s = AppendFrame(s, MsgSummaryOK, 0, 4, AppendSummary(nil, Summary{N: 1, Avg: 0.5}), crc)
		s = AppendFrame(s, MsgNodesOK, 0, 5, nodes, crc)
		s = AppendFrame(s, MsgMutateOK, 0, 6, AppendIDs(nil, []int64{1, 2}), crc)
		s = AppendFrame(s, MsgErr, StatusBad, 7, []byte("bad"), crc)
		f.Add(s)
	}
	// Truncated header.
	f.Add([]byte{1, 2, 3})
	// Length word claiming 1 GiB.
	var bomb [HeaderSize]byte
	PutHeader(bomb[:], Header{Len: 1 << 30, Type: MsgMutate})
	f.Add(bomb[:])
	// Torn payload: header promises more bytes than follow.
	torn := AppendFrame(nil, MsgErr, StatusBad, 8, []byte("payload"), false)
	f.Add(torn[:len(torn)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), fuzzMax)
		var muts []serve.Mutation
		var pts []geom.Point
		var ids []int64
		var nodeBuf []Node
		for {
			h, p, err := r.Next()
			if err != nil {
				if err != io.EOF && cap(r.buf) > fuzzMax+4 {
					t.Fatalf("buffer grew to %d past the %d limit on error %v", cap(r.buf), fuzzMax, err)
				}
				return
			}
			if len(p) != int(h.Len) || len(p) > fuzzMax {
				t.Fatalf("payload %d bytes escaped (header len %d, limit %d)", len(p), h.Len, fuzzMax)
			}
			// Re-encoding the decoded frame must reproduce its bytes.
			re := AppendFrame(nil, h.Type, h.Status, h.ID, p, h.Flags&FlagCRC != 0)
			end := int(HeaderSize + h.Len)
			if h.Flags&FlagCRC != 0 {
				end += 4
			}
			if len(re) != end {
				t.Fatalf("re-encode produced %d bytes, want %d", len(re), end)
			}
			// Every payload decoder must survive every payload.
			CheckHello(p)
			if s, rest, err := ReadString(p); err == nil {
				_ = s
				muts, _, _ = DecodeOps(rest, muts[:0])
				pts, _, _ = DecodePoints(rest, pts[:0])
				DecodeGenSpec(rest)
			}
			ids, _ = DecodeIDs(p, ids[:0])
			DecodeSummary(p)
			_, nodeBuf, _ = DecodeNodes(p, nodeBuf[:0])
			DecodeU64(p)
			DecodeU32(p)
		}
	})
}
