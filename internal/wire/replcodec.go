package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/store"
)

// Replication payload layouts. Cursors travel as two little-endian
// words (segment index uint64, byte offset uint64); offsets with the
// top bit set are rejected at decode so they can never go negative
// through the int64 conversion.
//
//	MsgReplSubscribe: u16-str node id | u64 epoch | cursor
//	MsgReplRecords:   u64 epoch | cursor from | cursor next | u32 count |
//	                  count × (u8 kind | u64 seq | u16-str session |
//	                           u32 payload-len | payload)
//	MsgReplAck:       u64 epoch | cursor
//
// Every count and length word is validated against the remaining
// payload bytes before any allocation grows — the same length-bomb
// discipline as DecodeOps, exercised adversarially by FuzzReplDecode.

const replCursorSize = 16

func appendCursor(dst []byte, c store.Cursor) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, c.Seg)
	return binary.LittleEndian.AppendUint64(dst, uint64(c.Off))
}

func decodeCursor(p []byte) (store.Cursor, error) {
	off := binary.LittleEndian.Uint64(p[8:16])
	if off > math.MaxInt64 {
		return store.Cursor{}, fmt.Errorf("%w: cursor offset overflows", ErrBadPayload)
	}
	return store.Cursor{Seg: binary.LittleEndian.Uint64(p[0:8]), Off: int64(off)}, nil
}

// ReplSubscribe is a decoded MsgReplSubscribe payload: the follower's
// identity, the leader epoch it expects (0 accepts any), and the cursor
// to resume streaming from.
type ReplSubscribe struct {
	NodeID string
	Epoch  uint64
	Cursor store.Cursor
}

// AppendReplSubscribe appends a MsgReplSubscribe payload.
func AppendReplSubscribe(dst []byte, sub ReplSubscribe) []byte {
	dst = AppendString(dst, sub.NodeID)
	dst = binary.LittleEndian.AppendUint64(dst, sub.Epoch)
	return appendCursor(dst, sub.Cursor)
}

// DecodeReplSubscribe parses a MsgReplSubscribe payload.
func DecodeReplSubscribe(p []byte) (ReplSubscribe, error) {
	id, rest, err := ReadString(p)
	if err != nil {
		return ReplSubscribe{}, err
	}
	if len(rest) != 8+replCursorSize {
		return ReplSubscribe{}, fmt.Errorf("%w: subscribe tail is %d bytes (want %d)", ErrBadPayload, len(rest), 8+replCursorSize)
	}
	cur, err := decodeCursor(rest[8:])
	if err != nil {
		return ReplSubscribe{}, err
	}
	return ReplSubscribe{
		NodeID: string(id),
		Epoch:  binary.LittleEndian.Uint64(rest[0:8]),
		Cursor: cur,
	}, nil
}

// ReplAck is a decoded MsgReplAck payload: the epoch the follower is
// following, the cursor it has durably applied through, and the
// follower's wall clock when the ack was sent. WallNS is the raw
// material of cross-node clock-offset estimation (cmd/rimtrace): the
// leader remembers when it sent the records frame whose next-cursor the
// ack echoes, so ack arrival minus send time is the round trip and
// WallNS − (send + RTT/2) estimates the follower's clock offset.
type ReplAck struct {
	Epoch  uint64
	Cursor store.Cursor
	WallNS int64 // follower wall clock at ack send; 0 from legacy peers
}

// replAckLegacySize is the pre-tracing ack payload (no timestamp);
// replAckSize is the current form. Decode accepts both so a mid-upgrade
// cluster keeps replicating.
const (
	replAckLegacySize = 8 + replCursorSize
	replAckSize       = replAckLegacySize + 8
)

// AppendReplAck appends a MsgReplAck payload.
func AppendReplAck(dst []byte, ack ReplAck) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, ack.Epoch)
	dst = appendCursor(dst, ack.Cursor)
	return binary.LittleEndian.AppendUint64(dst, uint64(ack.WallNS))
}

// DecodeReplAck parses a MsgReplAck payload (with or without the
// trailing wall-clock word).
func DecodeReplAck(p []byte) (ReplAck, error) {
	if len(p) != replAckLegacySize && len(p) != replAckSize {
		return ReplAck{}, fmt.Errorf("%w: ack is %d bytes (want %d or %d)", ErrBadPayload, len(p), replAckLegacySize, replAckSize)
	}
	cur, err := decodeCursor(p[8:])
	if err != nil {
		return ReplAck{}, err
	}
	ack := ReplAck{Epoch: binary.LittleEndian.Uint64(p[0:8]), Cursor: cur}
	if len(p) == replAckSize {
		ack.WallNS = int64(binary.LittleEndian.Uint64(p[replAckLegacySize:]))
	}
	return ack, nil
}

// replRecordsHead is the fixed prefix of a MsgReplRecords payload:
// epoch, from cursor, next cursor, record count.
const replRecordsHead = 8 + 2*replCursorSize + 4

// replRecordMin is the smallest possible encoded record: kind, seq,
// empty session, empty payload.
const replRecordMin = 1 + 8 + 2 + 4

// AppendReplRecords appends a MsgReplRecords payload: a run of
// committed WAL records covering the log range [from, next).
func AppendReplRecords(dst []byte, epoch uint64, from, next store.Cursor, recs []store.Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = appendCursor(dst, from)
	dst = appendCursor(dst, next)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		r := &recs[i]
		dst = append(dst, byte(r.Kind))
		dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
		dst = AppendString(dst, r.Session)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Payload)))
		dst = append(dst, r.Payload...)
	}
	return dst
}

// DecodeReplRecords parses a MsgReplRecords payload into the caller's
// slice (appended to; pass into[:0] to reuse). Sessions and payloads
// are copied out of p, so the records outlive the reader's frame
// buffer. The count word is cross-checked against the remaining bytes
// record by record, so a forged count cannot balloon the slice.
func DecodeReplRecords(p []byte, into []store.Record) (epoch uint64, from, next store.Cursor, recs []store.Record, err error) {
	if len(p) < replRecordsHead {
		return 0, from, next, into, fmt.Errorf("%w: records head is %d bytes (want >= %d)", ErrBadPayload, len(p), replRecordsHead)
	}
	epoch = binary.LittleEndian.Uint64(p[0:8])
	if from, err = decodeCursor(p[8 : 8+replCursorSize]); err != nil {
		return 0, from, next, into, err
	}
	if next, err = decodeCursor(p[8+replCursorSize : 8+2*replCursorSize]); err != nil {
		return 0, from, next, into, err
	}
	count := int(binary.LittleEndian.Uint32(p[8+2*replCursorSize : replRecordsHead]))
	p = p[replRecordsHead:]
	if count < 0 || len(p) < count*replRecordMin {
		return 0, from, next, into, fmt.Errorf("%w: %d records but %d payload bytes", ErrBadPayload, count, len(p))
	}
	for i := 0; i < count; i++ {
		if len(p) < 9 {
			return 0, from, next, into, fmt.Errorf("%w: record %d head cut short", ErrBadPayload, i)
		}
		kind := store.RecordKind(p[0])
		if kind < store.RecordCreate || kind > store.RecordDrop {
			return 0, from, next, into, fmt.Errorf("%w: record %d has unknown kind %d", ErrBadPayload, i, p[0])
		}
		seq := binary.LittleEndian.Uint64(p[1:9])
		sess, rest, serr := ReadString(p[9:])
		if serr != nil {
			return 0, from, next, into, fmt.Errorf("record %d: %w", i, serr)
		}
		if len(rest) < 4 {
			return 0, from, next, into, fmt.Errorf("%w: record %d payload length cut short", ErrBadPayload, i)
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if plen < 0 || len(rest) < plen {
			return 0, from, next, into, fmt.Errorf("%w: record %d claims %d payload bytes, %d remain", ErrBadPayload, i, plen, len(rest))
		}
		into = append(into, store.Record{
			Kind:    kind,
			Session: string(sess),
			Seq:     seq,
			Payload: append([]byte(nil), rest[:plen]...),
		})
		p = rest[plen:]
	}
	if len(p) != 0 {
		return 0, from, next, into, fmt.Errorf("%w: %d trailing bytes after %d records", ErrBadPayload, len(p), count)
	}
	return epoch, from, next, into, nil
}
