package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

func TestReplSubscribeRoundTrip(t *testing.T) {
	for _, sub := range []ReplSubscribe{
		{},
		{NodeID: "n2", Epoch: 7, Cursor: store.Cursor{Seg: 3, Off: 4096}},
	} {
		got, err := DecodeReplSubscribe(AppendReplSubscribe(nil, sub))
		if err != nil {
			t.Fatalf("decode %+v: %v", sub, err)
		}
		if got != sub {
			t.Fatalf("round trip: %+v != %+v", got, sub)
		}
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	ack := ReplAck{Epoch: 2, Cursor: store.Cursor{Seg: 9, Off: 127}}
	got, err := DecodeReplAck(AppendReplAck(nil, ack))
	if err != nil || got != ack {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	if _, err := DecodeReplAck(make([]byte, 23)); err == nil {
		t.Fatal("short ack accepted")
	}
}

func replRecs() []store.Record {
	return []store.Record{
		{Kind: store.RecordCreate, Session: "alpha", Seq: 0, Payload: []byte("create-payload")},
		{Kind: store.RecordBatch, Session: "alpha", Seq: 3, Payload: []byte("b1\nb2\nb3\n")},
		{Kind: store.RecordDrop, Session: "beta", Seq: 0, Payload: nil},
	}
}

func TestReplRecordsRoundTrip(t *testing.T) {
	from := store.Cursor{Seg: 1, Off: 10}
	next := store.Cursor{Seg: 2, Off: 99}
	p := AppendReplRecords(nil, 5, from, next, replRecs())
	epoch, gf, gn, recs, err := DecodeReplRecords(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 5 || gf != from || gn != next {
		t.Fatalf("head mismatch: epoch %d from %v next %v", epoch, gf, gn)
	}
	want := replRecs()
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i].Kind != want[i].Kind || recs[i].Session != want[i].Session ||
			recs[i].Seq != want[i].Seq || string(recs[i].Payload) != string(want[i].Payload) {
			t.Fatalf("record %d: %+v != %+v", i, recs[i], want[i])
		}
	}
	// Records must not alias the input buffer.
	for i := range p {
		p[i] = 0xff
	}
	if string(recs[0].Payload) != "create-payload" || recs[1].Session != "alpha" {
		t.Fatal("decoded records alias the frame buffer")
	}
	// An empty run is legal (heartbeat/catch-up boundary).
	_, _, _, empty, err := DecodeReplRecords(AppendReplRecords(nil, 1, from, from, nil), nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty run: %d records, %v", len(empty), err)
	}
}

func TestDecodeReplRecordsRejectsAdversarial(t *testing.T) {
	from := store.Cursor{Seg: 1, Off: 10}
	good := AppendReplRecords(nil, 1, from, store.Cursor{Seg: 1, Off: 400}, replRecs())
	cases := map[string][]byte{
		"truncated head": good[:replRecordsHead-1],
		"trailing bytes": append(append([]byte(nil), good...), 0xAA),
	}
	// Forged count: claims 2^31 records in a tiny payload.
	bomb := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bomb[8+2*replCursorSize:], 1<<31-1)
	cases["count bomb"] = bomb
	// Unknown record kind.
	badKind := append([]byte(nil), good...)
	badKind[replRecordsHead] = 0x7F
	cases["unknown kind"] = badKind
	// Record payload length bomb: first record claims 2^30 bytes.
	plenOff := replRecordsHead + 1 + 8 + 2 + len("alpha")
	plBomb := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(plBomb[plenOff:], 1<<30)
	cases["payload length bomb"] = plBomb
	// Cursor offset with the sign bit set.
	negCur := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(negCur[8+8:], 1<<63)
	cases["negative cursor"] = negCur

	for name, p := range cases {
		if _, _, _, _, err := DecodeReplRecords(p, nil); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: got %v, want ErrBadPayload", name, err)
		}
	}
}

func TestIsResponseType(t *testing.T) {
	for _, typ := range []uint8{MsgHelloOK, MsgPong, MsgCreateOK, MsgMutateOK, MsgSummaryOK, MsgNodesOK, MsgFlushOK, MsgDropOK, MsgErr, MsgSubscribeOK, MsgUnsubscribeOK} {
		if !IsResponseType(typ) {
			t.Errorf("type %d should be a response type", typ)
		}
	}
	for _, typ := range []uint8{MsgHello, MsgPing, MsgMutate, MsgReplSubscribe, MsgReplRecords, MsgReplAck, MsgSubscribe, MsgUnsubscribe, MsgEvent, 0, 99} {
		if IsResponseType(typ) {
			t.Errorf("type %d must not be a response type", typ)
		}
	}
}

// TestClientRejectsUnknownFrameType is the regression test for the
// read-loop dispatch fix: a frame whose type is outside the response
// whitelist — here a MsgReplRecords push that happens to reuse a
// pending request's id — must fail the connection with ErrUnknownType
// instead of being handed to the waiting caller as its response.
func TestClientRejectsUnknownFrameType(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		r := NewReader(c, 0)
		h, p, err := r.Next()
		if err != nil || h.Type != MsgHello || CheckHello(p) != nil {
			return
		}
		c.Write(AppendFrame(nil, MsgHelloOK, 0, h.ID, AppendHello(nil), false))
		// Read the client's request, then push a replication frame with
		// the *same* request id — the trap the whitelist must catch.
		h, _, err = r.Next()
		if err != nil {
			return
		}
		push := AppendReplRecords(nil, 1, store.Cursor{}, store.Cursor{Seg: 1, Off: 10}, replRecs())
		c.Write(AppendFrame(nil, MsgReplRecords, 0, h.ID, push, false))
	}()

	c, err := Dial(ClientConfig{Addr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("ping against a pushing server: got %v, want ErrUnknownType", err)
	}
}

// replSeeds builds the committed FuzzReplDecode corpus: well-formed
// frames of all three repl payloads (with and without CRC) plus the
// adversarial shapes named in the harness — length bombs, stale
// cursors, wrong-kind records, and a flipped CRC trailer.
func replSeeds() map[string][]byte {
	sub := AppendReplSubscribe(nil, ReplSubscribe{NodeID: "n2", Epoch: 3, Cursor: store.Cursor{Seg: 2, Off: 777}})
	ack := AppendReplAck(nil, ReplAck{Epoch: 3, Cursor: store.Cursor{Seg: 2, Off: 999}})
	run := AppendReplRecords(nil, 3, store.Cursor{Seg: 2, Off: 777}, store.Cursor{Seg: 2, Off: 999}, replRecs())

	seeds := map[string][]byte{}
	for _, crc := range []bool{false, true} {
		var s []byte
		s = AppendFrame(s, MsgReplSubscribe, 0, 1, sub, crc)
		s = AppendFrame(s, MsgReplRecords, 0, 1, run, crc)
		s = AppendFrame(s, MsgReplAck, 0, 1, ack, crc)
		name := "seed-repl-frames"
		if crc {
			name = "seed-repl-frames-crc"
		}
		seeds[name] = s
	}
	// Count bomb inside an otherwise valid records frame.
	bomb := append([]byte(nil), run...)
	binary.LittleEndian.PutUint32(bomb[8+2*replCursorSize:], 1<<31-1)
	seeds["seed-repl-count-bomb"] = AppendFrame(nil, MsgReplRecords, 0, 2, bomb, false)
	// Stale/absurd cursor: max segment, sign-bit offset.
	stale := AppendReplSubscribe(nil, ReplSubscribe{NodeID: "n9", Epoch: 1, Cursor: store.Cursor{Seg: ^uint64(0), Off: 1}})
	binary.LittleEndian.PutUint64(stale[len(stale)-8:], 1<<63)
	seeds["seed-repl-stale-cursor"] = AppendFrame(nil, MsgReplSubscribe, 0, 3, stale, false)
	// Wrong-kind record (a "wrong incarnation" of the record stream).
	badKind := append([]byte(nil), run...)
	badKind[replRecordsHead] = 0xEE
	seeds["seed-repl-bad-kind"] = AppendFrame(nil, MsgReplRecords, 0, 4, badKind, false)
	// CRC flip: valid frame, last trailer byte xored.
	flip := AppendFrame(nil, MsgReplAck, 0, 5, ack, true)
	flip[len(flip)-1] ^= 0xFF
	seeds["seed-repl-crc-flip"] = flip
	return seeds
}

// TestWriteReplSeedCorpus regenerates the committed seed corpus when
// run with WIRE_WRITE_REPL_SEEDS=1; normally it only verifies the
// files on disk match what replSeeds builds.
func TestWriteReplSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzReplDecode")
	write := os.Getenv("WIRE_WRITE_REPL_SEEDS") == "1"
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range replSeeds() {
		path := filepath.Join(dir, name)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if write {
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s missing (regenerate with WIRE_WRITE_REPL_SEEDS=1): %v", path, err)
		}
		if string(got) != body {
			t.Fatalf("%s is stale (regenerate with WIRE_WRITE_REPL_SEEDS=1)", path)
		}
	}
}

// FuzzReplDecode throws arbitrary frame streams at the replication
// payload decoders. Invariants: no panic, every length/count word is
// validated before allocation, and a records payload that decodes
// successfully re-encodes to its exact input bytes (the codec is
// canonical).
func FuzzReplDecode(f *testing.F) {
	for _, data := range replSeeds() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// As raw payloads.
		fuzzReplPayload(t, data)
		// As a frame stream.
		r := NewReader(bytes.NewReader(data), fuzzMax)
		for {
			h, p, err := r.Next()
			if err != nil {
				return
			}
			if len(p) != int(h.Len) || len(p) > fuzzMax {
				t.Fatalf("payload %d bytes escaped (header len %d)", len(p), h.Len)
			}
			fuzzReplPayload(t, p)
		}
	})
}

func fuzzReplPayload(t *testing.T, p []byte) {
	t.Helper()
	DecodeReplSubscribe(p)
	DecodeReplAck(p)
	epoch, from, next, recs, err := DecodeReplRecords(p, nil)
	if err == nil {
		re := AppendReplRecords(nil, epoch, from, next, recs)
		if string(re) != string(p) {
			t.Fatalf("records payload is not canonical: % x -> % x", p, re)
		}
	}
}
