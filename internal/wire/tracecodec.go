package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/obs"
)

// Trace-context block: the 17-byte distributed-tracing extension a
// FlagTrace-marked MsgMutate frame appends after its op records —
//
//	offset 0   uint64  trace id (nonzero)
//	offset 8   uint64  parent span id (the sender's span; 0 for a root)
//	offset 16  uint8   flags (obs.TraceFlag* bits)
//
// Appending it after the ops keeps the block invisible to decoders that
// ignore the frame flag: DecodeOps returns trailing bytes untouched.

// TraceBlockSize is the fixed on-wire size of one trace-context block.
const TraceBlockSize = 17

// AppendTraceContext appends one fixed trace-context block.
func AppendTraceContext(dst []byte, tc obs.TraceContext) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, tc.TraceID)
	dst = binary.LittleEndian.AppendUint64(dst, tc.SpanID)
	return append(dst, tc.Flags)
}

// DecodeTraceContext parses a trace-context block off the front of p
// and returns the rest.
func DecodeTraceContext(p []byte) (obs.TraceContext, []byte, error) {
	if len(p) < TraceBlockSize {
		return obs.TraceContext{}, nil, fmt.Errorf("%w: trace block is %d bytes (want %d)", ErrBadPayload, len(p), TraceBlockSize)
	}
	return obs.TraceContext{
		TraceID: binary.LittleEndian.Uint64(p[0:8]),
		SpanID:  binary.LittleEndian.Uint64(p[8:16]),
		Flags:   p[16],
	}, p[TraceBlockSize:], nil
}
