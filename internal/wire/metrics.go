package wire

import "repro/internal/obs"

// The wire front door's metric set, registered under rim_wire_* names in
// a shared obs.Registry (rimd's /metrics exposition picks them up from
// the default registry automatically). Registration is idempotent, so
// multiple servers in one process — tests — share one family set.
type metrics struct {
	connsOpened  *obs.Counter
	connsClosed  *obs.Counter
	framesIn     *obs.Counter
	framesOut    *obs.Counter
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
	requests     *obs.Counter
	errors       *obs.Counter
	backpressure *obs.Counter
	batches      *obs.Counter
	batchOps     *obs.Histogram
	readLatency  *obs.Histogram
}

func registerMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		connsOpened: reg.Counter("rim_wire_connections_opened_total",
			"Wire connections accepted."),
		connsClosed: reg.Counter("rim_wire_connections_closed_total",
			"Wire connections closed."),
		framesIn: reg.Counter("rim_wire_frames_in_total",
			"Frames received."),
		framesOut: reg.Counter("rim_wire_frames_out_total",
			"Frames sent."),
		bytesIn: reg.Counter("rim_wire_bytes_in_total",
			"Payload bytes received (headers included)."),
		bytesOut: reg.Counter("rim_wire_bytes_out_total",
			"Payload bytes sent (headers included)."),
		requests: reg.Counter("rim_wire_requests_total",
			"Requests served (every frame type except hello)."),
		errors: reg.Counter("rim_wire_errors_total",
			"Error responses sent (any non-zero status)."),
		backpressure: reg.Counter("rim_wire_backpressure_total",
			"Mutate frames answered 429 (queue full: wait and resubmit)."),
		batches: reg.Counter("rim_wire_mutate_batches_total",
			"Coalesced enqueue calls (pipelined mutate frames per Apply)."),
		batchOps: reg.Histogram("rim_wire_batch_ops",
			"Mutations per coalesced enqueue.", 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
		// Sub-microsecond buckets on purpose: snapshot reads run in tens
		// of nanoseconds, and the coarser legacy layouts collapsed the
		// whole read tail into their first bucket (the BENCH_3
		// p99_read_ms=0.000051 lesson).
		readLatency: reg.Histogram("rim_wire_read_latency_seconds",
			"Server-side read handling latency (decode to encoded response).",
			obs.LatencyBuckets...),
	}
}
