// Package wire is rimd's binary front door: the rimwire v1 framing
// protocol spoken over persistent TCP connections, built to close the
// gap BENCH_3 measured between the engine (3.9M ops/s native) and the
// HTTP/JSON facade (14.8k ops/s). The JSON codec and per-request
// connection handling were eating ~300× of the throughput the
// incremental evaluator earns; rimwire removes both.
//
// # Frame layout
//
// Every message is one frame: a fixed 16-byte little-endian header
// followed by the payload and an optional CRC32-C trailer:
//
//	offset 0  uint32  payload length (bytes after the header, CRC excluded)
//	offset 4  uint8   message type (Msg* constants)
//	offset 5  uint8   flags (FlagCRC: a 4-byte CRC32-C of the payload follows it)
//	offset 6  uint16  status (responses: 0 ok, else an HTTP-alike code)
//	offset 8  uint64  request id (echoed verbatim in the response)
//
// The header is fixed-width on purpose — no varints on the hot path, so
// encode is straight stores and decode is straight loads. Strings
// (session IDs, error text) appear only inside payloads, length-prefixed
// with uint16. Mutation ops are fixed 33-byte records (see AppendOps).
// The length word is validated against MaxFrame before any allocation,
// so an adversarial length prefix cannot balloon memory — the same
// guard discipline as serve's MaxCoord and the store's maxRecordSize.
//
// # Pipelining and ordering
//
// A connection carries many requests in flight: the client writes
// frames back to back without waiting, and the server answers every
// frame exactly once, in request order (FIFO per connection). Request
// ids exist so a multiplexing client can hand responses back to the
// right caller without assuming order; the per-connection FIFO is
// nevertheless part of the v1 contract (it is what makes "flush, then
// read" meaningful inside one connection).
//
// Mutations are acknowledged at *enqueue* (the HTTP 202 analog): an ok
// MsgMutate response means the batch entered the session's bounded
// queue, not that it was applied. Reads observe a published snapshot —
// a prefix of the mutation log — exactly as over HTTP. MsgFlush blocks
// until the queue drains, again exactly as over HTTP.
//
// # Backpressure
//
// A full session queue is the same backpressure signal HTTP expresses
// as 429 + Retry-After: the server answers status 429 (StatusAgain) and
// the client is expected to wait and resubmit. No frame is ever
// silently dropped; a connection-fatal condition (bad magic, oversized
// frame, CRC mismatch) closes the connection after a best-effort
// status-400 frame.
package wire

import (
	"errors"
	"fmt"
)

// Protocol identity. The handshake payload pins both so a v2 can bump
// either without ambiguity.
const (
	Magic   = "rimwire"
	Version = 1
)

// HeaderSize is the fixed frame-header length in bytes.
const HeaderSize = 16

// MaxFrame is the default bound on a frame's payload length. Length
// words beyond the configured bound are rejected before any allocation.
const MaxFrame = 16 << 20

// Flags (header offset 5).
const (
	// FlagCRC marks a frame whose payload is followed by a uint32
	// little-endian CRC32-C of the payload bytes. Optional: the hot path
	// skips it (TCP already checksums); a client talking across storage
	// or relays can turn it on per connection.
	FlagCRC = 1 << 0

	// FlagTrace is the distributed-tracing capability and marker bit.
	// On a MsgHello header it asks the server to accept trace contexts;
	// the server echoes it on MsgHelloOK when it can (capability bits
	// live in the header because CheckHello pins the hello payload to an
	// exact length). On a MsgMutate header it marks a 17-byte trace
	// block (u64 trace id, u64 parent span id, u8 flags) appended after
	// the op records — DecodeOps already tolerates trailing bytes, so an
	// untraced peer skips it harmlessly. On a MsgEvent header it marks
	// the extended 46-byte event record whose tail carries the trace id.
	// Absent everywhere, nothing is encoded and nothing is paid: the
	// zero-cost-when-off contract is pinned by
	// TestTraceContextDisabledZeroAlloc.
	FlagTrace = 1 << 1
)

// Message types. Requests are odd jobs of the client; every request
// type has exactly one response frame (MsgErr substitutes for any of
// them on failure).
const (
	MsgHello     uint8 = 1  // handshake: payload "rimwire" + version byte
	MsgHelloOK   uint8 = 2  // server accepts; payload mirrors MsgHello
	MsgPing      uint8 = 3  // liveness probe
	MsgPong      uint8 = 4  // liveness answer
	MsgCreate    uint8 = 5  // create a session from explicit points
	MsgCreateGen uint8 = 6  // create a session from (n, seed, side)
	MsgCreateOK  uint8 = 7  // payload: uint32 n
	MsgMutate    uint8 = 8  // enqueue a mutation batch
	MsgMutateOK  uint8 = 9  // payload: assigned ids for OpAdd mutations
	MsgSummary   uint8 = 10 // read the session summary
	MsgSummaryOK uint8 = 11 // payload: fixed Summary record
	MsgNodes     uint8 = 12 // read per-node state
	MsgNodesOK   uint8 = 13 // payload: seq + fixed 36-byte node records
	MsgFlush     uint8 = 14 // wait until the session queue drains
	MsgFlushOK   uint8 = 15 // payload: uint64 seq
	MsgDrop      uint8 = 16 // drop a session
	MsgDropOK    uint8 = 17
	MsgErr       uint8 = 18 // status in header, human-readable text payload

	// Replication frames (see internal/repl). A follower opens a plain
	// rimwire connection to the leader's feed listener, handshakes, and
	// sends MsgReplSubscribe with its node id, epoch, and resume cursor.
	// The leader answers with a stream of MsgReplRecords frames — each a
	// run of committed WAL records plus the cursor to resume after them —
	// and the follower acknowledges applied positions with MsgReplAck.
	// MsgReplRecords frames are server-push: they share the subscribe
	// request's id but arrive many-for-one, which is why a client that
	// multiplexes by request id must treat them as unknown (see
	// ErrUnknownType) rather than as a response.
	MsgReplSubscribe uint8 = 19 // follower → leader: node id, epoch, cursor
	MsgReplRecords   uint8 = 20 // leader → follower: committed record run
	MsgReplAck       uint8 = 21 // follower → leader: applied-through cursor

	// Subscription frames (see internal/sub). A client registers a
	// standing predicate with MsgSubscribe (session string + fixed
	// 37-byte predicate record) and receives the subscription id in
	// MsgSubscribeOK. Matching events then arrive as MsgEvent frames —
	// server-push, never solicited by a request, interleaved with the
	// connection's ordinary responses. An MsgEvent frame's header id
	// carries the subscription id (NOT a request id) and its payload is
	// one fixed 38-byte event record; a multiplexing client must demux
	// these to its event handler before consulting the response
	// whitelist. MsgUnsubscribe (uint64 subscription id) detaches one
	// subscription; events already in flight may still arrive after the
	// MsgUnsubscribeOK.
	MsgSubscribe     uint8 = 22 // register a standing predicate
	MsgSubscribeOK   uint8 = 23 // payload: uint64 subscription id
	MsgUnsubscribe   uint8 = 24 // payload: uint64 subscription id
	MsgUnsubscribeOK uint8 = 25
	MsgEvent         uint8 = 26 // server-push: one fixed event record
)

// IsResponseType reports whether t is a frame type a server may send in
// answer to a plain request — the complete whitelist a multiplexing
// client accepts on its read loop. Push-stream types (MsgReplRecords,
// MsgEvent) and request types are deliberately excluded: anything
// outside this set must surface as ErrUnknownType, never be silently
// matched to a waiting request by id. (The wire.Client demuxes MsgEvent
// to its event handler before consulting this whitelist.)
func IsResponseType(t uint8) bool {
	switch t {
	case MsgHelloOK, MsgPong, MsgCreateOK, MsgMutateOK, MsgSummaryOK,
		MsgNodesOK, MsgFlushOK, MsgDropOK, MsgErr,
		MsgSubscribeOK, MsgUnsubscribeOK:
		return true
	}
	return false
}

// Response status codes (header offset 6). Deliberately the HTTP
// numbers, so the two front doors speak one operational language and
// the 429 semantics documented for the JSON facade carry over verbatim.
const (
	StatusOK       = 0
	StatusBad      = 400 // malformed frame or rejected mutation
	StatusReadOnly = 403 // follower role: mutations only via replication
	StatusNotFound = 404 // no such session
	StatusExists   = 409 // session id already taken / stale repl epoch
	StatusGone     = 410 // session closed / repl cursor pruned
	StatusAgain    = 429 // queue full: wait and resubmit (Retry-After analog)
	StatusInternal = 500
)

// Decode errors. ErrFrameTooBig is the allocation-bomb guard: it fires
// on the length word alone, before any payload buffer is grown.
var (
	ErrFrameTooBig = errors.New("wire: frame length exceeds limit")
	ErrTruncated   = errors.New("wire: frame truncated")
	ErrChecksum    = errors.New("wire: payload crc mismatch")
	ErrBadPayload  = errors.New("wire: malformed payload")
	// ErrUnknownType fires when a frame's type is outside the set the
	// receiver can legally handle — a client read loop that sees a
	// non-response type (IsResponseType false) fails the connection with
	// it instead of mis-parsing the frame as some request's answer.
	ErrUnknownType = errors.New("wire: unknown frame type")
)

// Error is a decoded MsgErr response: the status code plus the server's
// message text.
type Error struct {
	Status int
	Msg    string
}

func (e *Error) Error() string { return fmt.Sprintf("wire: status %d: %s", e.Status, e.Msg) }

// IsBackpressure reports whether err is the server's queue-full signal
// (status 429): not a failure, an instruction to wait and resubmit.
func IsBackpressure(err error) bool {
	var we *Error
	return errors.As(err, &we) && we.Status == StatusAgain
}

// Summary is the fixed-layout session summary a MsgSummaryOK carries —
// the binary twin of the HTTP summary document.
type Summary struct {
	N        uint32
	Max      uint32
	Edges    uint32
	Events   uint32
	Rebuilds uint32
	Queue    uint32
	Seq      uint64
	Avg      float64
	AgeNS    int64
}

// Node is one fixed 36-byte record of a MsgNodesOK payload.
type Node struct {
	ID      int64
	X, Y, R float64
	I       uint32
}
