package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sub"
)

// Subscription payloads: fixed little-endian records, same discipline as
// the mutation codec — no varints, append-style encode, length-checked
// decode into caller-owned values.

// PredicateSize is the fixed on-wire size of one predicate record —
//
//	offset 0   uint8   kind (sub.Kind)
//	offset 1   uint32  k (threshold, int32 bits)
//	offset 5   int64   receiver id
//	offset 13  float64 x
//	offset 21  float64 y
//	offset 29  float64 r
//
// following the session string in a MsgSubscribe payload. Fields a kind
// does not read are zero on the wire.
const PredicateSize = 37

// AppendPredicate appends one fixed predicate record.
func AppendPredicate(dst []byte, p sub.Predicate) []byte {
	dst = append(dst, byte(p.Kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.K))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Receiver))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Y))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.R))
}

// DecodePredicate parses a fixed predicate record. Semantic validation
// (unknown kinds, NaN radii) is sub.Predicate.Validate's job — the server
// runs it and answers status 400; this only checks the framing.
func DecodePredicate(p []byte) (sub.Predicate, error) {
	if len(p) != PredicateSize {
		return sub.Predicate{}, fmt.Errorf("%w: predicate is %d bytes (want %d)", ErrBadPayload, len(p), PredicateSize)
	}
	return sub.Predicate{
		Kind:     sub.Kind(p[0]),
		K:        int32(binary.LittleEndian.Uint32(p[1:5])),
		Receiver: int64(binary.LittleEndian.Uint64(p[5:13])),
		X:        math.Float64frombits(binary.LittleEndian.Uint64(p[13:21])),
		Y:        math.Float64frombits(binary.LittleEndian.Uint64(p[21:29])),
		R:        math.Float64frombits(binary.LittleEndian.Uint64(p[29:37])),
	}, nil
}

// EventSize is the fixed on-wire size of one event record — the whole
// payload of a MsgEvent frame:
//
//	offset 0   uint64  subscription id
//	offset 8   uint64  per-subscription sequence number
//	offset 16  uint64  batch sequence (session mutation seq)
//	offset 24  int64   node id (−1 when not node-scoped)
//	offset 32  uint32  value (int32 bits)
//	offset 36  uint8   kind
//	offset 37  uint8   flags
//
// An event produced by a traced batch may carry the extended record —
// the same 38 bytes plus a trailing uint64 trace id (EventTracedSize,
// frame marked FlagTrace) — so a subscriber's push delivery can be
// stitched into the mutation's distributed trace.
const EventSize = 38

// EventTracedSize is the extended event record carrying a trace id.
const EventTracedSize = EventSize + 8

// AppendEvent appends one fixed event record; a nonzero ev.Trace selects
// the extended traced form.
func AppendEvent(dst []byte, ev sub.Event) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, ev.SubID)
	dst = binary.LittleEndian.AppendUint64(dst, ev.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, ev.BatchSeq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ev.Node))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ev.Value))
	dst = append(dst, byte(ev.Kind), ev.Flags)
	if ev.Trace != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, ev.Trace)
	}
	return dst
}

// DecodeEvent parses a fixed event record, plain or traced.
func DecodeEvent(p []byte) (sub.Event, error) {
	if len(p) != EventSize && len(p) != EventTracedSize {
		return sub.Event{}, fmt.Errorf("%w: event is %d bytes (want %d or %d)", ErrBadPayload, len(p), EventSize, EventTracedSize)
	}
	ev := sub.Event{
		SubID:    binary.LittleEndian.Uint64(p[0:8]),
		Seq:      binary.LittleEndian.Uint64(p[8:16]),
		BatchSeq: binary.LittleEndian.Uint64(p[16:24]),
		Node:     int64(binary.LittleEndian.Uint64(p[24:32])),
		Value:    int32(binary.LittleEndian.Uint32(p[32:36])),
		Kind:     sub.Kind(p[36]),
		Flags:    p[37],
	}
	if len(p) == EventTracedSize {
		ev.Trace = binary.LittleEndian.Uint64(p[38:46])
	}
	return ev, nil
}
