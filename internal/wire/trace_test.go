package wire_test

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wire"
)

// TestTraceContextDisabledZeroAlloc pins the zero-cost-when-off contract
// of the trace extension: on a connection that did not negotiate
// tracing, GoMutateTraced allocates nothing beyond the base mutate path
// (which is itself zero-alloc at steady state) and puts not one extra
// byte on the wire — the frame is byte-identical to GoMutate's, modulo
// the request id.
func TestTraceContextDisabledZeroAlloc(t *testing.T) {
	addr, _ := startServer(t, serve.Config{}, wire.ServerConfig{})
	// Trace deliberately NOT set: the hello does not offer the capability.
	c := dialClient(t, addr, wire.ClientConfig{Conns: 1})
	if _, err := c.Create("s", line(8)); err != nil {
		t.Fatal(err)
	}
	if c.Traced() {
		t.Fatal("connection negotiated tracing without asking for it")
	}

	tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: 7, Flags: obs.TraceFlagSampled}
	ops := []serve.Mutation{serve.SetRadius(1, 0.5)}
	var ids []int64
	base := func() {
		p := c.GoMutate("s", ops)
		var err error
		ids, err = p.MutateIDs(ids[:0])
		if err != nil {
			panic("mutate failed")
		}
	}
	traced := func() {
		p := c.GoMutateTraced("s", ops, tc)
		var err error
		ids, err = p.MutateIDs(ids[:0])
		if err != nil {
			panic("mutate failed")
		}
	}
	base()
	traced() // reach steady-state buffer sizes
	// The base round trip has a small fixed alloc count (completion
	// wakeup); the trace-disabled path must add exactly zero on top.
	baseAllocs := testing.AllocsPerRun(200, base)
	tracedAllocs := testing.AllocsPerRun(200, traced)
	if extra := tracedAllocs - baseAllocs; extra != 0 {
		t.Errorf("GoMutateTraced on an untraced connection allocates %v more per op than GoMutate (%v vs %v), want 0 extra",
			extra, tracedAllocs, baseAllocs)
	}
}

// TestTraceDisabledNoWireBytes proxies the client through a recording
// tee and compares the raw mutate frames: with tracing unnegotiated,
// GoMutateTraced and GoMutate must emit identical bytes (the id field
// aside), with no FlagTrace and no trailing trace block.
func TestTraceDisabledNoWireBytes(t *testing.T) {
	addr, _ := startServer(t, serve.Config{}, wire.ServerConfig{})

	// A one-connection tee: record every client→server byte.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	var captured bytes.Buffer
	go func() {
		cl, err := ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", addr)
		if err != nil {
			cl.Close()
			return
		}
		go io.Copy(cl, up) // responses pass through untouched
		buf := make([]byte, 4096)
		for {
			n, err := cl.Read(buf)
			if n > 0 {
				mu.Lock()
				captured.Write(buf[:n])
				mu.Unlock()
				up.Write(buf[:n])
			}
			if err != nil {
				cl.Close()
				up.Close()
				return
			}
		}
	}()

	c := dialClient(t, ln.Addr().String(), wire.ClientConfig{Conns: 1})
	if _, err := c.Create("s", line(8)); err != nil {
		t.Fatal(err)
	}
	ops := []serve.Mutation{serve.SetRadius(1, 0.5)}
	if _, err := c.Mutate("s", ops); err != nil {
		t.Fatal(err)
	}
	tc := obs.TraceContext{TraceID: obs.NewTraceID(), Flags: obs.TraceFlagSampled}
	if _, err := c.GoMutateTraced("s", ops, tc).MutateIDs(nil); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	stream := append([]byte(nil), captured.Bytes()...)
	mu.Unlock()

	// Walk the captured stream and keep the MsgMutate frames whole
	// (header + payload).
	var frames [][]byte
	r := wire.NewReader(bytes.NewReader(stream), 0)
	off := 0
	for {
		h, p, err := r.Next()
		if err != nil {
			break
		}
		flen := wire.HeaderSize + len(p)
		if h.Type == wire.MsgMutate {
			frames = append(frames, append([]byte(nil), stream[off:off+flen]...))
		}
		off += flen
	}
	if len(frames) != 2 {
		t.Fatalf("captured %d mutate frames, want 2", len(frames))
	}
	plain, traced := frames[0], frames[1]
	if traced[5]&wire.FlagTrace != 0 {
		t.Error("untraced connection emitted FlagTrace")
	}
	// Mask the request id (bytes 8..16) and require byte equality.
	for _, f := range frames {
		for i := 8; i < 16; i++ {
			f[i] = 0
		}
	}
	if !bytes.Equal(plain, traced) {
		t.Errorf("GoMutateTraced frame differs from GoMutate with tracing off:\n  plain:  %x\n  traced: %x", plain, traced)
	}
}
