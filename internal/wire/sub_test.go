package wire_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/sub"
	"repro/internal/wire"
)

func TestPredicateEventCodecRoundTrip(t *testing.T) {
	preds := []sub.Predicate{
		{Kind: sub.KindThreshold, K: 7, Receiver: 1 << 40},
		{Kind: sub.KindRegion, X: -3.25, Y: 1e9, R: 0.125},
		{Kind: sub.KindMax},
	}
	for i, p := range preds {
		enc := wire.AppendPredicate(nil, p)
		if len(enc) != wire.PredicateSize {
			t.Fatalf("pred %d: %d bytes, want %d", i, len(enc), wire.PredicateSize)
		}
		got, err := wire.DecodePredicate(enc)
		if err != nil || got != p {
			t.Fatalf("pred %d: %+v err=%v, want %+v", i, got, err, p)
		}
	}
	if _, err := wire.DecodePredicate(make([]byte, wire.PredicateSize-1)); !errors.Is(err, wire.ErrBadPayload) {
		t.Fatalf("short predicate: %v, want ErrBadPayload", err)
	}

	evs := []sub.Event{
		{SubID: 9, Seq: 1, BatchSeq: 42, Node: -1, Value: 17, Kind: sub.KindMax, Flags: sub.FlagInit},
		{SubID: 1 << 50, Seq: 1 << 30, BatchSeq: 7, Node: 1 << 41, Value: -2, Kind: sub.KindRegion,
			Flags: sub.FlagRising | sub.FlagGap},
	}
	for i, ev := range evs {
		enc := wire.AppendEvent(nil, ev)
		if len(enc) != wire.EventSize {
			t.Fatalf("event %d: %d bytes, want %d", i, len(enc), wire.EventSize)
		}
		got, err := wire.DecodeEvent(enc)
		if err != nil || got != ev {
			t.Fatalf("event %d: %+v err=%v, want %+v", i, got, err, ev)
		}
	}
	if _, err := wire.DecodeEvent(make([]byte, wire.EventSize+1)); !errors.Is(err, wire.ErrBadPayload) {
		t.Fatalf("long event: %v, want ErrBadPayload", err)
	}
}

func nextEvent(t *testing.T, ch <-chan sub.Event) sub.Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a pushed event")
		return sub.Event{}
	}
}

// nextEventFor waits for the next event of one subscription, discarding
// other subscriptions' events (the connectivity maintainer reassigns
// radii as nodes move, so threshold and max activity is not predictable
// at this layer — internal/sub's oracle test owns those semantics).
func nextEventFor(t *testing.T, ch <-chan sub.Event, id uint64) sub.Event {
	t.Helper()
	for {
		ev := nextEvent(t, ch)
		if ev.SubID == id {
			return ev
		}
	}
}

// TestWireSubscribePush is the protocol round trip: subscribe over the
// wire, mutate, and receive server-push MsgEvent frames demuxed off the
// client's pipeline reader. Matching semantics are internal/sub's tests'
// job; this pins the framing, the demux, and the id plumbing.
func TestWireSubscribePush(t *testing.T) {
	hub := sub.NewHub(sub.Config{})
	addr, _ := startServer(t,
		serve.Config{AfterBatchDelta: hub.AfterBatchDelta},
		wire.ServerConfig{Hub: hub})
	events := make(chan sub.Event, 256)
	c := dialClient(t, addr, wire.ClientConfig{
		OnEvent: func(ev sub.Event) { events <- ev },
	})

	if _, err := c.Create("live", line(6)); err != nil {
		t.Fatal(err)
	}

	// A predicate the server cannot evaluate is rejected with 400.
	if _, err := c.Subscribe("live", sub.Predicate{Kind: sub.Kind(9)}); err == nil {
		t.Fatal("invalid predicate accepted")
	} else {
		var we *wire.Error
		if !errors.As(err, &we) || we.Status != wire.StatusBad {
			t.Fatalf("invalid predicate: %v, want status 400", err)
		}
	}

	thrID, err := c.Subscribe("live", sub.Predicate{Kind: sub.KindThreshold, K: 1, Receiver: 0})
	if err != nil {
		t.Fatal(err)
	}
	regID, err := c.Subscribe("live", sub.Predicate{Kind: sub.KindRegion, X: 10, Y: 0, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	maxID, err := c.Subscribe("live", sub.Predicate{Kind: sub.KindMax})
	if err != nil {
		t.Fatal(err)
	}
	if thrID == regID || regID == maxID || thrID == maxID {
		t.Fatalf("subscription ids collide: %d %d %d", thrID, regID, maxID)
	}

	flush := func(muts ...serve.Mutation) {
		t.Helper()
		if _, err := c.Mutate("live", muts); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Flush("live"); err != nil {
			t.Fatal(err)
		}
	}

	// Batch 1: any mutation integrates the pending subscriptions; the
	// Init events arrive in registration order (one queue, FIFO all the
	// way through pump, socket, and read loop).
	flush(serve.Move(0, 0, 0))
	for _, want := range []uint64{thrID, regID, maxID} {
		ev := nextEvent(t, events)
		if ev.SubID != want || ev.Seq != 1 || !ev.Init() || ev.BatchSeq != 1 {
			t.Fatalf("init event %+v, want sub %d seq 1 init batch 1", ev, want)
		}
	}

	// Batch 2: node 2 moves into the watched disk at (10, 0). Region
	// membership is pure geometry, so this event is fully deterministic;
	// the move may also shuffle radii (connectivity repair) and fire the
	// threshold/max subscriptions, which nextEventFor skips over.
	flush(serve.Move(2, 10, 0))
	ev := nextEventFor(t, events, regID)
	if ev.Seq != 2 || !ev.Rising() || ev.Node != 2 || ev.Kind != sub.KindRegion || ev.BatchSeq != 2 {
		t.Fatalf("region enter %+v", ev)
	}

	// Batch 3: node 2 moves back out — the falling edge.
	flush(serve.Move(2, 1, 0))
	ev = nextEventFor(t, events, regID)
	if ev.Seq != 3 || ev.Rising() || ev.Node != 2 || ev.BatchSeq != 3 {
		t.Fatalf("region leave %+v", ev)
	}

	// Unsubscribe is acknowledged once and 404s the second time.
	if err := c.Unsubscribe(regID); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	if err := c.Unsubscribe(regID); err == nil {
		t.Fatal("double unsubscribe accepted")
	} else {
		var we *wire.Error
		if !errors.As(err, &we) || we.Status != wire.StatusNotFound {
			t.Fatalf("double unsubscribe: %v, want status 404", err)
		}
	}

	// Dropping the session over the wire discards its standing
	// subscriptions hub-side.
	if err := c.Drop("live"); err != nil {
		t.Fatal(err)
	}
	if n := hub.Stats().Subs; n != 0 {
		t.Fatalf("%d subscriptions survive the session drop", n)
	}
}

// TestWireSubscribeDisabled pins the no-hub behavior: a server without a
// subscription hub rejects MsgSubscribe with status 400 instead of
// failing the connection.
func TestWireSubscribeDisabled(t *testing.T) {
	addr, _ := startServer(t, serve.Config{}, wire.ServerConfig{})
	c := dialClient(t, addr, wire.ClientConfig{})
	if _, err := c.Create("plain", line(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("plain", sub.Predicate{Kind: sub.KindMax}); err == nil {
		t.Fatal("subscribe accepted without a hub")
	} else {
		var we *wire.Error
		if !errors.As(err, &we) || we.Status != wire.StatusBad {
			t.Fatalf("subscribe without hub: %v, want status 400", err)
		}
	}
	// The connection survives the rejection.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after rejected subscribe: %v", err)
	}
}
