package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/geom"
	"repro/internal/serve"
)

// The codec: fixed little-endian stores and loads, append-style encode
// into caller-owned buffers, decode into caller-owned slices. Nothing in
// this file allocates once the caller's buffers have grown to the
// workload's steady-state sizes — the property BenchmarkWireCodec and
// TestCodecZeroAlloc enforce.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Header is the decoded fixed frame header.
type Header struct {
	Len    uint32 // payload length (CRC trailer excluded)
	Type   uint8
	Flags  uint8
	Status uint16
	ID     uint64
}

// DecodeHeader parses a 16-byte header. The caller guarantees
// len(b) >= HeaderSize.
func DecodeHeader(b []byte) Header {
	return Header{
		Len:    binary.LittleEndian.Uint32(b[0:4]),
		Type:   b[4],
		Flags:  b[5],
		Status: binary.LittleEndian.Uint16(b[6:8]),
		ID:     binary.LittleEndian.Uint64(b[8:16]),
	}
}

// PutHeader stores h into b. The caller guarantees len(b) >= HeaderSize.
func PutHeader(b []byte, h Header) {
	binary.LittleEndian.PutUint32(b[0:4], h.Len)
	b[4] = h.Type
	b[5] = h.Flags
	binary.LittleEndian.PutUint16(b[6:8], h.Status)
	binary.LittleEndian.PutUint64(b[8:16], h.ID)
}

// BeginFrame appends a header for a frame whose payload follows; the
// caller records start := len(dst) beforehand and closes the frame with
// EndFrame(dst, start, crc) once the payload is appended.
func BeginFrame(dst []byte, typ uint8, status uint16, id uint64) []byte {
	var hb [HeaderSize]byte
	PutHeader(hb[:], Header{Type: typ, Status: status, ID: id})
	return append(dst, hb[:]...)
}

// EndFrame patches the frame begun at start with the now-known payload
// length, optionally appending a CRC32-C trailer (and setting FlagCRC).
func EndFrame(dst []byte, start int, withCRC bool) []byte {
	payload := dst[start+HeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	if withCRC {
		dst[start+5] |= FlagCRC
		dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	}
	return dst
}

// AppendFrame encodes one complete frame with an already-built payload.
func AppendFrame(dst []byte, typ uint8, status uint16, id uint64, payload []byte, withCRC bool) []byte {
	start := len(dst)
	dst = BeginFrame(dst, typ, status, id)
	dst = append(dst, payload...)
	return EndFrame(dst, start, withCRC)
}

// Reader decodes frames from a stream through one reusable payload
// buffer. The payload returned by Next is valid only until the following
// Next call — callers that keep bytes must copy them (the typed decode
// helpers all copy into caller-owned values, so the normal path never
// needs to).
type Reader struct {
	br  *bufio.Reader
	max int
	buf []byte
	hb  [HeaderSize]byte // header scratch; a stack array would escape through io.ReadFull
}

// NewReader wraps r; max <= 0 selects MaxFrame.
func NewReader(r io.Reader, max int) *Reader {
	if max <= 0 {
		max = MaxFrame
	}
	return &Reader{br: bufio.NewReaderSize(r, 64<<10), max: max}
}

// Buffered reports the bytes already read from the connection but not
// yet consumed — the server's "is the pipeline still feeding me"
// signal that decides when to flush responses.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// FrameBuffered reports whether a complete frame is already buffered,
// so the next Next call will return without touching the socket. This —
// not Buffered() == 0 — is the server's flush condition: under
// sustained traffic bufio refills chain across torn frame boundaries
// and the buffer almost never fully drains, which would hold responses
// hostage to the next arrival gap (measured: ~15ms p50 on a 15µs-RTT
// loopback before the fix). A header that will fail to decode counts as
// "buffered" so Next surfaces the error promptly.
func (r *Reader) FrameBuffered() bool {
	b := r.br.Buffered()
	if b < HeaderSize {
		return false
	}
	hb, err := r.br.Peek(HeaderSize)
	if err != nil {
		return false
	}
	h := DecodeHeader(hb)
	if int(h.Len) > r.max {
		return true
	}
	need := HeaderSize + int(h.Len)
	if h.Flags&FlagCRC != 0 {
		need += 4
	}
	return b >= need
}

// Next reads one frame. It returns io.EOF only at a clean frame
// boundary; a stream cut mid-frame is ErrTruncated. The length word is
// checked against the limit before the payload buffer grows, so an
// adversarial frame cannot force an allocation (ErrFrameTooBig).
func (r *Reader) Next() (Header, []byte, error) {
	if _, err := io.ReadFull(r.br, r.hb[:]); err != nil {
		if err == io.EOF {
			return Header{}, nil, io.EOF
		}
		return Header{}, nil, fmt.Errorf("%w: header cut short", ErrTruncated)
	}
	h := DecodeHeader(r.hb[:])
	if int(h.Len) > r.max {
		return h, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, h.Len, r.max)
	}
	need := int(h.Len)
	if h.Flags&FlagCRC != 0 {
		need += 4
	}
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	buf := r.buf[:need]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return h, nil, fmt.Errorf("%w: payload cut short", ErrTruncated)
	}
	p := buf[:h.Len]
	if h.Flags&FlagCRC != 0 {
		if crc32.Checksum(p, crcTable) != binary.LittleEndian.Uint32(buf[h.Len:]) {
			return h, nil, ErrChecksum
		}
	}
	return h, p, nil
}

// Handshake payload: magic + version byte.

// AppendHello appends the rimwire handshake payload.
func AppendHello(dst []byte) []byte {
	dst = append(dst, Magic...)
	return append(dst, Version)
}

// CheckHello validates a handshake payload.
func CheckHello(p []byte) error {
	if len(p) != len(Magic)+1 || string(p[:len(Magic)]) != Magic {
		return fmt.Errorf("%w: not a rimwire hello", ErrBadPayload)
	}
	if p[len(Magic)] != Version {
		return fmt.Errorf("%w: version %d (want %d)", ErrBadPayload, p[len(Magic)], Version)
	}
	return nil
}

// Strings are uint16-length-prefixed; only session IDs and error text
// use them.

// AppendString appends a uint16-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// ReadString slices a length-prefixed string off the front of p,
// returning the string bytes (a view into p — copy to keep) and the
// rest.
func ReadString(p []byte) (s, rest []byte, err error) {
	if len(p) < 2 {
		return nil, nil, fmt.Errorf("%w: string length cut short", ErrBadPayload)
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p)-2 < n {
		return nil, nil, fmt.Errorf("%w: string body cut short", ErrBadPayload)
	}
	return p[2 : 2+n], p[2+n:], nil
}

// Mutation ops: fixed 33-byte records, one per serve.Mutation —
//
//	offset 0   uint8  op (the serve.Op value)
//	offset 1   int64  node id
//	offset 9   uint64 a
//	offset 17  uint64 b
//	offset 25  uint64 c
//
// with a/b/c carrying the op-specific fields as raw little-endian
// words: add/move store x/y float bits in a/b; set_radius stores r bits
// in a; anneal stores iters in a and seed in b. Unused words are zero.

// OpRecordSize is the fixed on-wire size of one mutation op.
const OpRecordSize = 33

// AppendOps appends the op-count word and the fixed records for ops.
func AppendOps(dst []byte, ops []serve.Mutation) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ops)))
	for i := range ops {
		mu := &ops[i]
		var a, b, c uint64
		switch mu.Op {
		case serve.OpAdd, serve.OpMove:
			a, b = math.Float64bits(mu.X), math.Float64bits(mu.Y)
		case serve.OpSetRadius:
			a = math.Float64bits(mu.R)
		case serve.OpAnneal:
			a, b = uint64(mu.Iters), uint64(mu.Seed)
		}
		dst = append(dst, byte(mu.Op))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(mu.Node))
		dst = binary.LittleEndian.AppendUint64(dst, a)
		dst = binary.LittleEndian.AppendUint64(dst, b)
		dst = binary.LittleEndian.AppendUint64(dst, c)
	}
	return dst
}

// DecodeOps parses an op block into the caller's slice (appended to, so
// pass into[:0] to reuse). The count word is cross-checked against the
// actual byte length before any slice growth.
func DecodeOps(p []byte, into []serve.Mutation) ([]serve.Mutation, []byte, error) {
	if len(p) < 4 {
		return into, nil, fmt.Errorf("%w: op count cut short", ErrBadPayload)
	}
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if count < 0 || len(p) < count*OpRecordSize {
		return into, nil, fmt.Errorf("%w: %d ops but %d payload bytes", ErrBadPayload, count, len(p))
	}
	for i := 0; i < count; i++ {
		rec := p[i*OpRecordSize : (i+1)*OpRecordSize]
		op := serve.Op(rec[0])
		if op < serve.OpAdd || op > serve.OpAnneal {
			return into, nil, fmt.Errorf("%w: unknown op %d", ErrBadPayload, rec[0])
		}
		mu := serve.Mutation{
			Op:   op,
			Node: int64(binary.LittleEndian.Uint64(rec[1:9])),
		}
		a := binary.LittleEndian.Uint64(rec[9:17])
		b := binary.LittleEndian.Uint64(rec[17:25])
		switch op {
		case serve.OpAdd, serve.OpMove:
			mu.X, mu.Y = math.Float64frombits(a), math.Float64frombits(b)
		case serve.OpSetRadius:
			mu.R = math.Float64frombits(a)
		case serve.OpAnneal:
			if a > math.MaxInt32 {
				return into, nil, fmt.Errorf("%w: anneal iters %d out of range", ErrBadPayload, a)
			}
			mu.Iters = int(a)
			mu.Seed = int64(b)
		}
		into = append(into, mu)
	}
	return into, p[count*OpRecordSize:], nil
}

// AppendIDs appends a MsgMutateOK payload: the ids assigned to OpAdd
// mutations, in order.
func AppendIDs(dst []byte, ids []int64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(id))
	}
	return dst
}

// DecodeIDs parses a MsgMutateOK payload into the caller's slice.
func DecodeIDs(p []byte, into []int64) ([]int64, error) {
	if len(p) < 4 {
		return into, fmt.Errorf("%w: id count cut short", ErrBadPayload)
	}
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) != count*8 {
		return into, fmt.Errorf("%w: %d ids but %d payload bytes", ErrBadPayload, count, len(p))
	}
	for i := 0; i < count; i++ {
		into = append(into, int64(binary.LittleEndian.Uint64(p[i*8:])))
	}
	return into, nil
}

// Points: uint32 count + 16 bytes (x, y float bits) each, the MsgCreate
// instance payload after the session id.

// AppendPoints appends a point block.
func AppendPoints(dst []byte, pts []geom.Point) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pts)))
	for _, p := range pts {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Y))
	}
	return dst
}

// DecodePoints parses a point block into the caller's slice.
func DecodePoints(p []byte, into []geom.Point) ([]geom.Point, []byte, error) {
	if len(p) < 4 {
		return into, nil, fmt.Errorf("%w: point count cut short", ErrBadPayload)
	}
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if count < 0 || len(p) < count*16 {
		return into, nil, fmt.Errorf("%w: %d points but %d payload bytes", ErrBadPayload, count, len(p))
	}
	for i := 0; i < count; i++ {
		rec := p[i*16 : i*16+16]
		into = append(into, geom.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8])),
			math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16])),
		))
	}
	return into, p[count*16:], nil
}

// GenSpec is the MsgCreateGen payload after the session id: generate a
// uniform instance server-side instead of shipping n points.
type GenSpec struct {
	N    uint32
	Seed int64
	Side float64
}

// AppendGenSpec appends a generation spec.
func AppendGenSpec(dst []byte, g GenSpec) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, g.N)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(g.Seed))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(g.Side))
}

// DecodeGenSpec parses a generation spec.
func DecodeGenSpec(p []byte) (GenSpec, error) {
	if len(p) != 20 {
		return GenSpec{}, fmt.Errorf("%w: gen spec is %d bytes (want 20)", ErrBadPayload, len(p))
	}
	return GenSpec{
		N:    binary.LittleEndian.Uint32(p[0:4]),
		Seed: int64(binary.LittleEndian.Uint64(p[4:12])),
		Side: math.Float64frombits(binary.LittleEndian.Uint64(p[12:20])),
	}, nil
}

// summarySize is the fixed MsgSummaryOK payload length.
const summarySize = 48

// AppendSummary appends the fixed summary record.
func AppendSummary(dst []byte, s Summary) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, s.N)
	dst = binary.LittleEndian.AppendUint32(dst, s.Max)
	dst = binary.LittleEndian.AppendUint32(dst, s.Edges)
	dst = binary.LittleEndian.AppendUint32(dst, s.Events)
	dst = binary.LittleEndian.AppendUint32(dst, s.Rebuilds)
	dst = binary.LittleEndian.AppendUint32(dst, s.Queue)
	dst = binary.LittleEndian.AppendUint64(dst, s.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Avg))
	return binary.LittleEndian.AppendUint64(dst, uint64(s.AgeNS))
}

// DecodeSummary parses a fixed summary record.
func DecodeSummary(p []byte) (Summary, error) {
	if len(p) != summarySize {
		return Summary{}, fmt.Errorf("%w: summary is %d bytes (want %d)", ErrBadPayload, len(p), summarySize)
	}
	return Summary{
		N:        binary.LittleEndian.Uint32(p[0:4]),
		Max:      binary.LittleEndian.Uint32(p[4:8]),
		Edges:    binary.LittleEndian.Uint32(p[8:12]),
		Events:   binary.LittleEndian.Uint32(p[12:16]),
		Rebuilds: binary.LittleEndian.Uint32(p[16:20]),
		Queue:    binary.LittleEndian.Uint32(p[20:24]),
		Seq:      binary.LittleEndian.Uint64(p[24:32]),
		Avg:      math.Float64frombits(binary.LittleEndian.Uint64(p[32:40])),
		AgeNS:    int64(binary.LittleEndian.Uint64(p[40:48])),
	}, nil
}

// nodeRecordSize is the fixed per-node record length in a MsgNodesOK
// payload: id, x, y, r, i.
const nodeRecordSize = 36

// AppendNodes appends a MsgNodesOK payload from a published snapshot:
// seq, count, then one fixed record per node.
func AppendNodes(dst []byte, seq uint64, nodes []serve.NodeState) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(nodes)))
	for i := range nodes {
		n := &nodes[i]
		dst = binary.LittleEndian.AppendUint64(dst, uint64(n.ID))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(n.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(n.Y))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(n.R))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n.I))
	}
	return dst
}

// DecodeNodes parses a MsgNodesOK payload into the caller's slice.
func DecodeNodes(p []byte, into []Node) (seq uint64, nodes []Node, err error) {
	if len(p) < 12 {
		return 0, into, fmt.Errorf("%w: nodes header cut short", ErrBadPayload)
	}
	seq = binary.LittleEndian.Uint64(p[0:8])
	count := int(binary.LittleEndian.Uint32(p[8:12]))
	p = p[12:]
	if count < 0 || len(p) != count*nodeRecordSize {
		return 0, into, fmt.Errorf("%w: %d nodes but %d payload bytes", ErrBadPayload, count, len(p))
	}
	for i := 0; i < count; i++ {
		rec := p[i*nodeRecordSize : (i+1)*nodeRecordSize]
		into = append(into, Node{
			ID: int64(binary.LittleEndian.Uint64(rec[0:8])),
			X:  math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16])),
			Y:  math.Float64frombits(binary.LittleEndian.Uint64(rec[16:24])),
			R:  math.Float64frombits(binary.LittleEndian.Uint64(rec[24:32])),
			I:  binary.LittleEndian.Uint32(rec[32:36]),
		})
	}
	return seq, into, nil
}

// AppendU64 / DecodeU64 cover the single-word payloads (MsgFlushOK seq,
// MsgCreateOK n as uint32 via the dedicated helpers below).
func AppendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// DecodeU64 parses a single-uint64 payload.
func DecodeU64(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: %d bytes (want 8)", ErrBadPayload, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// AppendU32 appends a single uint32 payload word.
func AppendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

// DecodeU32 parses a single-uint32 payload.
func DecodeU32(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("%w: %d bytes (want 4)", ErrBadPayload, len(p))
	}
	return binary.LittleEndian.Uint32(p), nil
}
