package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/serve"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Len: 0xDEADBEEF, Type: MsgMutate, Flags: FlagCRC, Status: StatusAgain, ID: 1<<63 + 17}
	var b [HeaderSize]byte
	PutHeader(b[:], h)
	if got := DecodeHeader(b[:]); got != h {
		t.Fatalf("header round trip: got %+v want %+v", got, h)
	}
}

func readAll(t *testing.T, stream []byte, max int) []frame {
	t.Helper()
	r := NewReader(bytes.NewReader(stream), max)
	var out []frame
	for {
		h, p, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, frame{h, append([]byte(nil), p...)})
	}
}

type frame struct {
	h Header
	p []byte
}

func TestFrameRoundTrip(t *testing.T) {
	for _, crc := range []bool{false, true} {
		var stream []byte
		stream = AppendFrame(stream, MsgPing, 0, 1, nil, crc)
		stream = AppendFrame(stream, MsgErr, StatusBad, 2, []byte("boom"), crc)
		stream = AppendFrame(stream, MsgSummaryOK, 0, 3, make([]byte, summarySize), crc)

		frames := readAll(t, stream, 0)
		if len(frames) != 3 {
			t.Fatalf("crc=%v: decoded %d frames, want 3", crc, len(frames))
		}
		if frames[0].h.Type != MsgPing || frames[0].h.ID != 1 || len(frames[0].p) != 0 {
			t.Errorf("crc=%v: frame 0 = %+v", crc, frames[0])
		}
		if frames[1].h.Status != StatusBad || string(frames[1].p) != "boom" {
			t.Errorf("crc=%v: frame 1 = %+v", crc, frames[1])
		}
		wantFlags := uint8(0)
		if crc {
			wantFlags = FlagCRC
		}
		if frames[2].h.Flags != wantFlags {
			t.Errorf("crc=%v: frame 2 flags = %d", crc, frames[2].h.Flags)
		}
	}
}

func TestBeginEndFrame(t *testing.T) {
	var buf []byte
	start := len(buf)
	buf = BeginFrame(buf, MsgNodesOK, 0, 9)
	buf = AppendU64(buf, 42)
	buf = EndFrame(buf, start, true)

	frames := readAll(t, buf, 0)
	if len(frames) != 1 {
		t.Fatalf("decoded %d frames, want 1", len(frames))
	}
	v, err := DecodeU64(frames[0].p)
	if err != nil || v != 42 {
		t.Fatalf("payload = %d, %v", v, err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	p := AppendHello(nil)
	if err := CheckHello(p); err != nil {
		t.Fatalf("CheckHello(valid): %v", err)
	}
	if err := CheckHello([]byte("rimwirex")); err == nil {
		t.Fatal("CheckHello accepted wrong magic")
	}
	bad := AppendHello(nil)
	bad[len(bad)-1] = 99
	if err := CheckHello(bad); err == nil {
		t.Fatal("CheckHello accepted wrong version")
	}
}

func TestStringRoundTrip(t *testing.T) {
	p := AppendString(nil, "bench")
	p = AppendU32(p, 7)
	s, rest, err := ReadString(p)
	if err != nil || string(s) != "bench" {
		t.Fatalf("ReadString: %q, %v", s, err)
	}
	if v, _ := DecodeU32(rest); v != 7 {
		t.Fatalf("rest = %v", rest)
	}
	if _, _, err := ReadString([]byte{5}); err == nil {
		t.Fatal("accepted truncated length prefix")
	}
	if _, _, err := ReadString([]byte{5, 0, 'a'}); err == nil {
		t.Fatal("accepted truncated string body")
	}
}

func TestOpsRoundTrip(t *testing.T) {
	ops := []serve.Mutation{
		serve.Add(1.5, -2.5),
		serve.Remove(42),
		serve.Move(7, 0.25, 0.75),
		serve.SetRadius(3, 1.125),
		serve.AnnealStep(500, -12345),
	}
	p := AppendOps(nil, ops)
	if want := 4 + len(ops)*OpRecordSize; len(p) != want {
		t.Fatalf("encoded %d bytes, want %d", len(p), want)
	}
	got, rest, err := DecodeOps(p, nil)
	if err != nil {
		t.Fatalf("DecodeOps: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Errorf("op %d: got %+v want %+v", i, got[i], ops[i])
		}
	}
}

func TestOpsAdversarial(t *testing.T) {
	// Count word larger than the actual byte run must be rejected before
	// any slice growth.
	p := binary.LittleEndian.AppendUint32(nil, 1<<30)
	if _, _, err := DecodeOps(p, nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("oversized count: %v", err)
	}
	// Unknown op byte.
	bad := AppendOps(nil, []serve.Mutation{serve.Remove(1)})
	bad[4] = 200
	if _, _, err := DecodeOps(bad, nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("unknown op: %v", err)
	}
	// Anneal iteration counts beyond int32 are rejected (they would wrap
	// through int on 32-bit builds and bypass MaxAnnealIters).
	huge := AppendOps(nil, []serve.Mutation{serve.AnnealStep(1, 0)})
	binary.LittleEndian.PutUint64(huge[4+9:], uint64(math.MaxInt64))
	if _, _, err := DecodeOps(huge, nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("huge anneal iters: %v", err)
	}
}

func TestPointsIDsGenSpecRoundTrip(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1.5, -0.5), geom.Pt(math.Pi, math.E)}
	p := AppendPoints(nil, pts)
	got, rest, err := DecodePoints(p, nil)
	if err != nil || len(rest) != 0 || len(got) != len(pts) {
		t.Fatalf("DecodePoints: %v %v %v", got, rest, err)
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Errorf("point %d: got %v want %v", i, got[i], pts[i])
		}
	}

	ids := []int64{1, -5, 1 << 40}
	gotIDs, err := DecodeIDs(AppendIDs(nil, ids), nil)
	if err != nil || len(gotIDs) != 3 || gotIDs[1] != -5 || gotIDs[2] != 1<<40 {
		t.Fatalf("DecodeIDs: %v %v", gotIDs, err)
	}

	g := GenSpec{N: 4096, Seed: -77, Side: 12.8}
	gotG, err := DecodeGenSpec(AppendGenSpec(nil, g))
	if err != nil || gotG != g {
		t.Fatalf("DecodeGenSpec: %+v %v", gotG, err)
	}
}

func TestSummaryNodesRoundTrip(t *testing.T) {
	s := Summary{N: 10, Max: 4, Edges: 20, Events: 3, Rebuilds: 1, Queue: 2, Seq: 99, Avg: 2.25, AgeNS: -1}
	got, err := DecodeSummary(AppendSummary(nil, s))
	if err != nil || got != s {
		t.Fatalf("DecodeSummary: %+v %v", got, err)
	}

	nodes := []serve.NodeState{
		{ID: 0, X: 1, Y: 2, R: 3, I: 4},
		{ID: 1 << 33, X: -1, Y: -2, R: 0.5, I: 0},
	}
	p := AppendNodes(nil, 7, nodes)
	seq, gotN, err := DecodeNodes(p, nil)
	if err != nil || seq != 7 || len(gotN) != 2 {
		t.Fatalf("DecodeNodes: seq=%d n=%d err=%v", seq, len(gotN), err)
	}
	for i, n := range nodes {
		want := Node{ID: n.ID, X: n.X, Y: n.Y, R: n.R, I: uint32(n.I)}
		if gotN[i] != want {
			t.Errorf("node %d: got %+v want %+v", i, gotN[i], want)
		}
	}
}

// TestReaderOversizedRejectedBeforeAllocation is the allocation-bomb
// guard: a frame whose length word exceeds the limit must be refused on
// the header alone, with the reader's payload buffer untouched.
func TestReaderOversizedRejectedBeforeAllocation(t *testing.T) {
	var hb [HeaderSize]byte
	PutHeader(hb[:], Header{Len: 1 << 30, Type: MsgMutate, ID: 1})
	r := NewReader(bytes.NewReader(hb[:]), 1<<16)
	_, _, err := r.Next()
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
	if r.buf != nil {
		t.Fatalf("payload buffer grew to %d bytes on a rejected length", cap(r.buf))
	}
}

func TestReaderTruncation(t *testing.T) {
	// Header cut short.
	r := NewReader(bytes.NewReader([]byte{1, 2, 3}), 0)
	if _, _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	// Payload torn mid-frame.
	full := AppendFrame(nil, MsgErr, StatusBad, 9, []byte("payload"), false)
	r = NewReader(bytes.NewReader(full[:len(full)-3]), 0)
	if _, _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn payload: %v", err)
	}
	// Clean EOF at a frame boundary is io.EOF, not ErrTruncated.
	r = NewReader(bytes.NewReader(full), 0)
	if _, _, err := r.Next(); err != nil {
		t.Fatalf("whole frame: %v", err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("at boundary: %v, want io.EOF", err)
	}
}

func TestReaderCRCMismatch(t *testing.T) {
	stream := AppendFrame(nil, MsgErr, StatusBad, 9, []byte("payload"), true)
	stream[HeaderSize+2] ^= 0xFF // corrupt the payload under the CRC
	r := NewReader(bytes.NewReader(stream), 0)
	if _, _, err := r.Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// loopReader replays one byte stream forever — an endless frame source
// for steady-state decode measurement.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// TestCodecZeroAlloc locks the tentpole's core property: once buffers
// have reached steady-state size, encoding and decoding a mutate frame
// allocates nothing.
func TestCodecZeroAlloc(t *testing.T) {
	ops := []serve.Mutation{
		serve.SetRadius(3, 1.125),
		serve.Move(7, 0.25, 0.75),
		serve.Add(1, 2),
	}

	// Encode: append a full request frame into a reused buffer.
	buf := make([]byte, 0, 512)
	encode := func() {
		start := 0
		buf = BeginFrame(buf[:0], MsgMutate, 0, 42)
		buf = AppendString(buf, "bench")
		buf = AppendOps(buf, ops)
		buf = EndFrame(buf, start, false)
	}
	encode()
	if allocs := testing.AllocsPerRun(1000, encode); allocs != 0 {
		t.Errorf("encode allocates %v per frame, want 0", allocs)
	}

	// Decode: reader + op slice reuse across frames. The error paths
	// panic with constants so nothing in the hot path escapes to the
	// heap (a t.Fatalf referencing locals would itself cost an alloc).
	r := NewReader(&loopReader{data: buf}, 0)
	muts := make([]serve.Mutation, 0, 8)
	decode := func() {
		h, p, err := r.Next()
		if err != nil || h.Type != MsgMutate {
			panic("decode: bad frame")
		}
		_, rest, err := ReadString(p)
		if err != nil {
			panic("decode: bad session id")
		}
		muts, _, err = DecodeOps(rest, muts[:0])
		if err != nil || len(muts) != 3 {
			panic("decode: bad ops")
		}
	}
	decode()
	if allocs := testing.AllocsPerRun(1000, decode); allocs != 0 {
		t.Errorf("decode allocates %v per frame, want 0", allocs)
	}
}
