package wire

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sub"
)

// Client speaks rimwire v1 over a small pool of persistent connections.
// Every connection multiplexes any number of in-flight requests: a
// writer goroutine drains a submission channel and batches frames into
// single socket writes (the syscall amortization that makes pipelining
// pay), a reader goroutine matches responses to callers by request id.
// The synchronous methods (Mutate, Summary, ...) are one-liners over
// the asynchronous Go* methods; a caller that wants deep pipelines
// holds several Pending results before waiting on any of them.
type Client struct {
	cfg    ClientConfig
	conns  []*clientConn
	next   atomic.Uint64
	closed atomic.Bool
}

// ClientConfig parameterizes Dial.
type ClientConfig struct {
	// Addr is the rimwire server's TCP address.
	Addr string
	// Conns is the pool size; <= 0 means 1.
	Conns int
	// CRC opts every frame (both directions) into CRC32-C trailers.
	CRC bool
	// MaxFrame bounds response payloads; <= 0 means the package default.
	MaxFrame int
	// Trace negotiates the distributed-tracing capability (FlagTrace on
	// the hello). When the server echoes it, GoMutateTraced attaches
	// trace-context blocks to mutate frames; otherwise those frames are
	// byte-identical to untraced ones.
	Trace bool
	// DialTimeout bounds each connection attempt; <= 0 means 5s.
	DialTimeout time.Duration
	// OnEvent receives server-push subscription events (MsgEvent frames).
	// It is called from the connection's read loop, so it must not block —
	// hand the event to a channel or queue and return. Required before
	// calling Subscribe: a push event arriving with no handler fails the
	// connection (the strict-whitelist discipline, see IsResponseType).
	OnEvent func(sub.Event)
}

// Dial connects the pool and runs the rimwire handshake on every
// connection.
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	c := &Client{cfg: cfg}
	for i := 0; i < cfg.Conns; i++ {
		cc, err := dialConn(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cc)
	}
	return c, nil
}

// Close tears down every connection and fails any in-flight requests.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, cc := range c.conns {
		cc.close(fmt.Errorf("wire: client closed"))
	}
	return nil
}

// pick spreads requests round-robin across the pool.
func (c *Client) pick() *clientConn {
	return c.conns[c.next.Add(1)%uint64(len(c.conns))]
}

// clientConn is one pooled connection: submission channel, writer and
// reader goroutines, and the in-flight table keyed by request id.
type clientConn struct {
	c       net.Conn
	crc     bool
	trace   bool // both sides negotiated FlagTrace at hello
	onEvent func(sub.Event)
	wch     chan *Pending
	stop    chan struct{}

	mu       sync.Mutex
	inflight map[uint64]*Pending
	dead     error

	ids  atomic.Uint64
	done sync.WaitGroup
}

func dialConn(cfg ClientConfig) (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", cfg.Addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // the writer already batches; don't add Nagle on top
	}
	cc := &clientConn{
		c:        nc,
		crc:      cfg.CRC,
		onEvent:  cfg.OnEvent,
		wch:      make(chan *Pending, 256),
		stop:     make(chan struct{}),
		inflight: make(map[uint64]*Pending),
	}

	// Handshake synchronously before the goroutines take over the socket.
	var hello []byte
	start := len(hello)
	hello = BeginFrame(hello, MsgHello, 0, 0)
	hello = AppendHello(hello)
	hello = EndFrame(hello, start, cfg.CRC)
	if cfg.Trace {
		// Capability bits ride the header flags: CheckHello pins the
		// payload to an exact length, so the payload cannot grow.
		hello[start+5] |= FlagTrace
	}
	if _, err := nc.Write(hello); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	r := NewReader(nc, cfg.MaxFrame)
	h, p, err := r.Next()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: hello response: %w", err)
	}
	if h.Type != MsgHelloOK || CheckHello(p) != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: server is not rimwire v%d", Version)
	}
	cc.trace = cfg.Trace && h.Flags&FlagTrace != 0

	cc.done.Add(2)
	go cc.writeLoop()
	go cc.readLoop(r)
	return cc, nil
}

// close fails in-flight requests with cause, tears the socket down, and
// waits for both loop goroutines to exit.
func (cc *clientConn) close(cause error) {
	cc.fail(cause)
	cc.c.Close()
	cc.done.Wait()
}

// fail marks the connection dead (idempotently), releases the writer
// via the stop channel, and fails everything in flight.
func (cc *clientConn) fail(cause error) {
	cc.mu.Lock()
	if cc.dead == nil {
		cc.dead = cause
		close(cc.stop)
	}
	pend := make([]*Pending, 0, len(cc.inflight))
	for id, p := range cc.inflight {
		delete(cc.inflight, id)
		pend = append(pend, p)
	}
	cc.mu.Unlock()
	for _, p := range pend {
		p.err = cause
		p.ch <- struct{}{}
	}
}

// writeLoop drains the submission channel, concatenating every frame
// already waiting into one socket write.
func (cc *clientConn) writeLoop() {
	defer cc.done.Done()
	var buf []byte
	for {
		var p *Pending
		select {
		case p = <-cc.wch:
		case <-cc.stop:
			return
		}
		buf = append(buf[:0], p.req...)
		// Batch whatever else is already queued — this is where a deep
		// pipeline collapses N requests into one syscall.
	drain:
		for {
			select {
			case q := <-cc.wch:
				buf = append(buf, q.req...)
			default:
				break drain
			}
		}
		if _, err := cc.c.Write(buf); err != nil {
			cc.fail(fmt.Errorf("wire: write: %w", err))
			cc.c.Close()
			return
		}
	}
}

// readLoop dispatches response frames to their waiting Pendings.
func (cc *clientConn) readLoop(r *Reader) {
	defer cc.done.Done()
	for {
		h, payload, err := r.Next()
		if err != nil {
			cc.fail(fmt.Errorf("wire: read: %w", err))
			cc.c.Close()
			return
		}
		if h.Type == MsgEvent {
			// Server-push subscription event: demux to the handler before
			// the response whitelist — its header id is a subscription id,
			// not a request id, and must never touch the in-flight table.
			if cc.onEvent == nil {
				cc.fail(fmt.Errorf("%w: push event with no OnEvent handler", ErrUnknownType))
				cc.c.Close()
				return
			}
			ev, err := DecodeEvent(payload)
			if err != nil {
				cc.fail(fmt.Errorf("wire: event: %w", err))
				cc.c.Close()
				return
			}
			cc.onEvent(ev)
			continue
		}
		if !IsResponseType(h.Type) {
			// A frame outside the response whitelist (a push stream like
			// MsgReplRecords, or a future type) must not be matched to a
			// waiting request just because the ids collide — that would
			// hand the caller a mis-typed payload. Fail the connection
			// loudly instead.
			cc.fail(fmt.Errorf("%w: type %d on response stream", ErrUnknownType, h.Type))
			cc.c.Close()
			return
		}
		cc.mu.Lock()
		p := cc.inflight[h.ID]
		delete(cc.inflight, h.ID)
		cc.mu.Unlock()
		if p == nil {
			continue // response to an abandoned request
		}
		p.h = h
		p.resp = append(p.resp[:0], payload...)
		p.ch <- struct{}{}
	}
}

// submit registers p and hands it to the writer.
func (cc *clientConn) submit(p *Pending) {
	cc.mu.Lock()
	if cc.dead != nil {
		err := cc.dead
		cc.mu.Unlock()
		p.err = err
		p.ch <- struct{}{}
		return
	}
	cc.inflight[p.id] = p
	cc.mu.Unlock()
	select {
	case cc.wch <- p:
	case <-cc.stop:
		// Raced with teardown. fail() may already have claimed p from
		// the in-flight table — only signal it if we remove it here.
		cc.mu.Lock()
		_, mine := cc.inflight[p.id]
		delete(cc.inflight, p.id)
		cause := cc.dead
		cc.mu.Unlock()
		if mine {
			p.err = cause
			p.ch <- struct{}{}
		}
	}
}

// Pending is one in-flight request. Obtain it from a Go* method, then
// either call the matching decode method (which waits) or Wait + Err.
// Release returns it to the pool; the typed decode helpers release
// automatically. Pendings are pooled — do not use one after release.
type Pending struct {
	cc    *clientConn
	id    uint64
	req   []byte
	flags uint8 // extra header flags ORed in at seal (FlagTrace)
	h     Header
	resp  []byte
	err   error
	ch    chan struct{}
}

var pendingPool = sync.Pool{New: func() any {
	return &Pending{ch: make(chan struct{}, 1)}
}}

func (c *Client) pending() *Pending {
	cc := c.pick()
	p := pendingPool.Get().(*Pending)
	p.cc = cc
	p.id = cc.ids.Add(1)
	p.req = p.req[:0]
	p.flags = 0
	p.err = nil
	return p
}

// Traced reports whether the pool negotiated the tracing capability with
// the server (ClientConfig.Trace set and echoed at hello).
func (c *Client) Traced() bool {
	return len(c.conns) > 0 && c.conns[0].trace
}

// Wait blocks until the response (or a connection failure) arrives. It
// returns the transport-level error; a server-side MsgErr surfaces from
// the decode methods (or Err) as *Error.
func (p *Pending) Wait() error {
	<-p.ch
	return p.err
}

// Err waits and folds a MsgErr response into an *Error.
func (p *Pending) Err() error {
	if err := p.Wait(); err != nil {
		return err
	}
	if p.h.Type == MsgErr {
		return &Error{Status: int(p.h.Status), Msg: string(p.resp)}
	}
	return nil
}

// Release returns p to the pool. Safe only after Wait has returned.
func (p *Pending) Release() {
	p.cc = nil
	p.resp = p.resp[:0]
	pendingPool.Put(p)
}

// finish is the shared tail of the typed decode helpers: surface
// errors, verify the response type, and release on any failure.
func (p *Pending) finish(want uint8) error {
	if err := p.Err(); err != nil {
		p.Release()
		return err
	}
	if p.h.Type != want {
		t := p.h.Type
		p.Release()
		return fmt.Errorf("%w: response type %d (want %d)", ErrBadPayload, t, want)
	}
	return nil
}

// --- request constructors -------------------------------------------------

func (p *Pending) seal(typ uint8) {
	p.req = EndFrame(p.req, 0, p.cc.crc)
	hb := p.req[:HeaderSize]
	hb[4] = typ
	hb[5] |= p.flags
	p.cc.submit(p)
}

func (p *Pending) begin() {
	p.req = BeginFrame(p.req[:0], 0, 0, p.id)
}

// GoPing submits a liveness probe.
func (c *Client) GoPing() *Pending {
	p := c.pending()
	p.begin()
	p.seal(MsgPing)
	return p
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	p := c.GoPing()
	if err := p.finish(MsgPong); err != nil {
		return err
	}
	p.Release()
	return nil
}

// GoCreate submits session creation from explicit points.
func (c *Client) GoCreate(session string, pts []geom.Point) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendString(p.req, session)
	p.req = AppendPoints(p.req, pts)
	p.seal(MsgCreate)
	return p
}

// Create creates a session from explicit points and returns its size.
func (c *Client) Create(session string, pts []geom.Point) (int, error) {
	return c.createWait(c.GoCreate(session, pts))
}

// GoCreateGen submits server-side session generation.
func (c *Client) GoCreateGen(session string, g GenSpec) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendString(p.req, session)
	p.req = AppendGenSpec(p.req, g)
	p.seal(MsgCreateGen)
	return p
}

// CreateGen creates a generated session and returns its size.
func (c *Client) CreateGen(session string, g GenSpec) (int, error) {
	return c.createWait(c.GoCreateGen(session, g))
}

func (c *Client) createWait(p *Pending) (int, error) {
	if err := p.finish(MsgCreateOK); err != nil {
		return 0, err
	}
	n, err := DecodeU32(p.resp)
	p.Release()
	return int(n), err
}

// GoMutate submits a mutation batch for enqueue.
func (c *Client) GoMutate(session string, ops []serve.Mutation) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendString(p.req, session)
	p.req = AppendOps(p.req, ops)
	p.seal(MsgMutate)
	return p
}

// GoMutateTraced submits a mutation batch carrying a distributed trace
// context: the 17-byte block rides after the op records and the frame is
// marked FlagTrace. Downgrades to a byte-identical GoMutate when the
// connection did not negotiate tracing or tc is the zero context.
func (c *Client) GoMutateTraced(session string, ops []serve.Mutation, tc obs.TraceContext) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendString(p.req, session)
	p.req = AppendOps(p.req, ops)
	if p.cc.trace && tc.Valid() {
		p.req = AppendTraceContext(p.req, tc)
		p.flags |= FlagTrace
	}
	p.seal(MsgMutate)
	return p
}

// MutateIDs decodes a GoMutate response into the caller's id slice
// (appended; pass ids[:0] to reuse). The ids are those assigned to the
// batch's OpAdd mutations, in order.
func (p *Pending) MutateIDs(ids []int64) ([]int64, error) {
	if err := p.finish(MsgMutateOK); err != nil {
		return ids, err
	}
	ids, err := DecodeIDs(p.resp, ids)
	p.Release()
	return ids, err
}

// Mutate enqueues a batch and returns the assigned OpAdd ids.
func (c *Client) Mutate(session string, ops []serve.Mutation) ([]int64, error) {
	return c.GoMutate(session, ops).MutateIDs(nil)
}

// GoSummary submits a summary read.
func (c *Client) GoSummary(session string) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendString(p.req, session)
	p.seal(MsgSummary)
	return p
}

// Summary decodes a GoSummary response.
func (p *Pending) Summary() (Summary, error) {
	if err := p.finish(MsgSummaryOK); err != nil {
		return Summary{}, err
	}
	s, err := DecodeSummary(p.resp)
	p.Release()
	return s, err
}

// Summary reads the session summary.
func (c *Client) Summary(session string) (Summary, error) {
	return c.GoSummary(session).Summary()
}

// GoNodes submits a node-state read.
func (c *Client) GoNodes(session string) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendString(p.req, session)
	p.seal(MsgNodes)
	return p
}

// Nodes decodes a GoNodes response into the caller's slice (appended;
// pass nodes[:0] to reuse).
func (p *Pending) Nodes(nodes []Node) (uint64, []Node, error) {
	if err := p.finish(MsgNodesOK); err != nil {
		return 0, nodes, err
	}
	seq, nodes, err := DecodeNodes(p.resp, nodes)
	p.Release()
	return seq, nodes, err
}

// Nodes reads per-node state, returning the snapshot seq.
func (c *Client) Nodes(session string, into []Node) (uint64, []Node, error) {
	return c.GoNodes(session).Nodes(into)
}

// GoFlush submits a queue-drain barrier.
func (c *Client) GoFlush(session string) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendString(p.req, session)
	p.seal(MsgFlush)
	return p
}

// Flush blocks until the session queue drains, returning the seq.
func (c *Client) Flush(session string) (uint64, error) {
	p := c.GoFlush(session)
	if err := p.finish(MsgFlushOK); err != nil {
		return 0, err
	}
	seq, err := DecodeU64(p.resp)
	p.Release()
	return seq, err
}

// GoDrop submits a session drop.
func (c *Client) GoDrop(session string) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendString(p.req, session)
	p.seal(MsgDrop)
	return p
}

// Drop drops a session.
func (c *Client) Drop(session string) error {
	p := c.GoDrop(session)
	if err := p.finish(MsgDropOK); err != nil {
		return err
	}
	p.Release()
	return nil
}

// GoSubscribe submits a standing-predicate registration. Events for the
// subscription are pushed on the connection that carried the request, so
// they arrive at this client's OnEvent handler regardless of pool size.
func (c *Client) GoSubscribe(session string, pred sub.Predicate) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendString(p.req, session)
	p.req = AppendPredicate(p.req, pred)
	p.seal(MsgSubscribe)
	return p
}

// SubID decodes a GoSubscribe response into the subscription id.
func (p *Pending) SubID() (uint64, error) {
	if err := p.finish(MsgSubscribeOK); err != nil {
		return 0, err
	}
	id, err := DecodeU64(p.resp)
	p.Release()
	return id, err
}

// Subscribe registers a standing predicate and returns its subscription
// id. ClientConfig.OnEvent must be set.
func (c *Client) Subscribe(session string, pred sub.Predicate) (uint64, error) {
	return c.GoSubscribe(session, pred).SubID()
}

// GoUnsubscribe submits a subscription detach. Events already queued
// server-side may still arrive after the acknowledgment.
func (c *Client) GoUnsubscribe(id uint64) *Pending {
	p := c.pending()
	p.begin()
	p.req = AppendU64(p.req, id)
	p.seal(MsgUnsubscribe)
	return p
}

// Unsubscribe detaches a subscription by id.
func (c *Client) Unsubscribe(id uint64) error {
	p := c.GoUnsubscribe(id)
	if err := p.finish(MsgUnsubscribeOK); err != nil {
		return err
	}
	p.Release()
	return nil
}
