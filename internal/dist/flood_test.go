package dist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/highway"
	"repro/internal/udg"
)

func TestFloodDeltaMatchesGlobalMax(t *testing.T) {
	rng := rand.New(rand.NewSource(1501))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(80)
		pts := gen.UniformSquare(rng, n, 1.5+rng.Float64()*3)
		values, _ := FloodDelta(pts)
		base := udg.Build(pts)
		label, _ := base.Components()
		// Per component, every node must hold that component's max degree.
		wantByComp := map[int]int{}
		for v := 0; v < n; v++ {
			if d := base.Degree(v); d > wantByComp[label[v]] {
				wantByComp[label[v]] = d
			}
		}
		for v := 0; v < n; v++ {
			if values[v] != wantByComp[label[v]] {
				t.Fatalf("trial %d node %d: flooded %d, component max %d", trial, v, values[v], wantByComp[label[v]])
			}
		}
	}
}

func TestFloodDeltaIsolatedAndEmpty(t *testing.T) {
	values, _ := FloodDelta([]geom.Point{geom.Pt(0, 0), geom.Pt(9, 9)})
	if values[0] != 0 || values[1] != 0 {
		t.Error("isolated nodes flood 0")
	}
	if v, _ := FloodDelta(nil); v != nil {
		t.Error("empty flood wrong")
	}
}

func TestFloodThenDistributedAGenEndToEnd(t *testing.T) {
	// The full distributed pipeline: flood Δ, derive the spacing, run the
	// A_gen protocol — the result must equal the centralized construction
	// parameterized with the true Δ.
	rng := rand.New(rand.NewSource(1502))
	pts := gen.HighwayUniform(rng, 180, 12)
	values, _ := FloodDelta(pts)
	delta := values[0] // connected instance: every node agrees
	for _, v := range values {
		if v != delta {
			t.Fatal("flood disagreed on a connected instance")
		}
	}
	sp := int(math.Ceil(math.Sqrt(float64(delta))))
	if sp < 1 {
		sp = 1
	}
	got := NewRuntime(pts, NewAGenNode(sp, pts[0].X)).Run(10)
	want := highway.AGenSpacing(pts, sp)
	if got.M() != want.M() {
		t.Fatalf("edges %d vs %d", got.M(), want.M())
	}
	for _, e := range want.Edges() {
		if !got.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge (%d,%d)", e.U, e.V)
		}
	}
}

func TestDeltaNodePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDeltaNode(0)
}
