package dist

import "repro/internal/geom"

// Distributed aggregation flood — computes the global maximum of a
// per-node integer (here: UDG degree, yielding Δ) by flooding maxima for
// n rounds. Any graph's diameter is below its node count, so after n
// rounds every node holds the true maximum of its component; n is the
// usual "nodes know the network size" assumption of the LOCAL model,
// and this protocol is what justifies handing the global ⌈√Δ⌉ spacing
// to the distributed A_gen protocol as a parameter.
//
// Cost: ≤ n rounds; a node re-broadcasts only when its value improves,
// so each node sends O(log-diameter improvements) broadcasts in the
// typical case and O(n) rounds only bound the worst case.

// maxFlood is the message: the best value seen so far.
type maxFlood int

// DeltaNode floods UDG degrees; after Run, Value() of any node is Δ of
// its component.
type DeltaNode struct {
	env    *Env
	n      int // termination horizon = network size
	value  int
	degree int
}

// NewDeltaNode returns a factory for a Δ-flood over a network of size n.
func NewDeltaNode(n int) func() Node {
	if n < 1 {
		panic("dist: DeltaNode needs the network size")
	}
	return func() Node { return &DeltaNode{n: n} }
}

// Value returns the flooded maximum (valid after the runtime finishes).
func (d *DeltaNode) Value() int { return d.value }

// Init implements Node.
func (d *DeltaNode) Init(_ int, _ geom.Point, neighbors []int, env *Env) {
	d.env = env
	d.degree = len(neighbors)
	d.value = d.degree
}

// Round implements Node.
func (d *DeltaNode) Round(round int, inbox map[int]Message) bool {
	improved := round == 0 // everyone announces in round 0
	for _, m := range inbox {
		if v := int(m.(maxFlood)); v > d.value {
			d.value = v
			improved = true
		}
	}
	if improved && d.degree > 0 {
		d.env.Broadcast(maxFlood(d.value))
	}
	// Terminate after n rounds: every component's diameter is < n, so the
	// maximum has certainly reached everyone.
	return round >= d.n-1
}

// FloodDelta is the convenience wrapper: it runs the Δ-flood over pts and
// returns each node's final value (Δ of its UDG component).
func FloodDelta(pts []geom.Point) ([]int, *Runtime) {
	n := len(pts)
	if n == 0 {
		return nil, NewRuntime(nil, NewDeltaNode(1))
	}
	rt := NewRuntime(pts, NewDeltaNode(n))
	rt.Run(n + 1)
	out := make([]int, n)
	for i, node := range rt.nodes {
		out[i] = node.(*DeltaNode).Value()
	}
	return out, rt
}
