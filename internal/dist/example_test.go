package dist_test

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/topology"
)

// XTC as an actual message-passing protocol: two synchronous rounds, and
// the distributed result matches the centralized construction
// edge-for-edge.
func ExampleNewRuntime() {
	pts := gen.UniformSquare(rand.New(rand.NewSource(1)), 50, 2)
	rt := dist.NewRuntime(pts, dist.NewXTCNode)
	got := rt.Run(10)
	want := topology.XTC(pts)
	fmt.Println("rounds:", rt.Rounds)
	fmt.Println("matches centralized:", got.M() == want.M())
	// Output:
	// rounds: 2
	// matches centralized: true
}
