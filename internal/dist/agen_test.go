package dist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/highway"
	"repro/internal/udg"
)

func agenSpacingFor(pts []geom.Point) int {
	delta := udg.MaxDegree(pts, udg.Radius)
	sp := int(math.Ceil(math.Sqrt(float64(delta))))
	if sp < 1 {
		sp = 1
	}
	return sp
}

func TestDistributedAGenMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	instances := [][]geom.Point{
		gen.HighwayUniform(rng, 150, 10),
		gen.HighwayUniform(rng, 250, 4), // dense
		gen.HighwayBursty(rng, 200, 5, 20, 0.3),
		gen.HighwayExpFragments(rng, 4, 7, 15),
		gen.ExpChain(24, 1),
	}
	for i, pts := range instances {
		sp := agenSpacingFor(pts)
		anchor := 0.0
		if len(pts) > 0 {
			anchor = pts[0].X
		}
		rt := NewRuntime(pts, NewAGenNode(sp, anchor))
		got := rt.Run(10)
		want := highway.AGenSpacing(pts, sp)
		if got.M() != want.M() {
			t.Fatalf("instance %d: edges %d vs %d", i, got.M(), want.M())
		}
		for _, e := range want.Edges() {
			if !got.HasEdge(e.U, e.V) {
				t.Fatalf("instance %d: missing edge (%d,%d)", i, e.U, e.V)
			}
		}
		if rt.Rounds != 2 {
			t.Errorf("instance %d: %d rounds, want 2", i, rt.Rounds)
		}
	}
}

func TestDistributedAGenPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(150)
		pts := gen.HighwayUniform(rng, n, 2+rng.Float64()*30)
		sp := agenSpacingFor(pts)
		got := NewRuntime(pts, NewAGenNode(sp, pts[0].X)).Run(10)
		base := udg.Build(pts)
		if !graph.SameComponents(base, got) {
			t.Fatalf("trial %d: connectivity broken", trial)
		}
	}
}

func TestDistributedAGenSingletonSegments(t *testing.T) {
	// Isolated nodes in their own segments, some joinable, some not.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(0.9, 0), // adjacent segments, within range
		geom.Pt(3.5, 0), // unreachable
	}
	got := NewRuntime(pts, NewAGenNode(2, 0)).Run(10)
	if !got.HasEdge(0, 1) {
		t.Error("cross-segment join missing")
	}
	if got.Degree(2) != 0 {
		t.Error("unreachable node should stay isolated")
	}
}

func TestNewAGenNodePanicsOnBadSpacing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewAGenNode(0, 0)
}
