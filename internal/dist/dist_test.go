package dist

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

func sameTopology(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("%s: node counts differ", name)
	}
	if a.M() != b.M() {
		t.Fatalf("%s: edge counts differ: %d vs %d", name, a.M(), b.M())
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("%s: edge (%d,%d) missing from counterpart", name, e.U, e.V)
		}
	}
}

func TestDistributedXTCMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(80)
		pts := gen.UniformSquare(rng, n, 1.5+rng.Float64()*3)
		rt := NewRuntime(pts, NewXTCNode)
		got := rt.Run(10)
		want := topology.XTC(pts)
		sameTopology(t, "XTC", got, want)
		if rt.Rounds != 2 {
			t.Errorf("trial %d: XTC took %d rounds, want 2", trial, rt.Rounds)
		}
	}
}

func TestDistributedNNFMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(80)
		pts := gen.UniformSquare(rng, n, 2+rng.Float64()*3)
		rt := NewRuntime(pts, NewNNFNode)
		got := rt.Run(10)
		want := topology.NNF(pts)
		sameTopology(t, "NNF", got, want)
	}
}

func TestDistributedLMSTMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(60)
		pts := gen.UniformSquare(rng, n, 1.5+rng.Float64()*2)
		rt := NewRuntime(pts, NewLMSTNode)
		got := rt.Run(10)
		want := topology.LMST(pts)
		sameTopology(t, "LMST", got, want)
	}
}

func TestDistributedProtocolsOnGadget(t *testing.T) {
	// The Theorem 4.1 gadget has extreme distance ratios; the protocols
	// must still match their centralized versions there.
	pts := gen.DoubleExpChain(16)
	sameTopology(t, "XTC-gadget", NewRuntime(pts, NewXTCNode).Run(10), topology.XTC(pts))
	sameTopology(t, "NNF-gadget", NewRuntime(pts, NewNNFNode).Run(10), topology.NNF(pts))
}

func TestRuntimeCostAccounting(t *testing.T) {
	pts := gen.UniformSquare(rand.New(rand.NewSource(504)), 30, 2)
	rt := NewRuntime(pts, NewNNFNode)
	rt.Run(10)
	if rt.Messages == 0 {
		t.Error("message count should be positive")
	}
	// NNF broadcasts once per node: messages = Σ degrees = 2·|E_udg|.
	udgEdges := int64(0)
	rt2 := NewRuntime(pts, NewNNFNode)
	udgEdges = int64(rt2.udg.M())
	if rt.Messages != 2*udgEdges {
		t.Errorf("messages = %d, want 2·|E| = %d", rt.Messages, 2*udgEdges)
	}
}

func TestRuntimeIsolatedNodes(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(10, 0)}
	for _, factory := range []func() Node{NewXTCNode, NewNNFNode, NewLMSTNode} {
		g := NewRuntime(pts, factory).Run(10)
		if g.M() != 0 {
			t.Error("isolated nodes must produce no links")
		}
	}
}

func TestRuntimeEmpty(t *testing.T) {
	g := NewRuntime(nil, NewXTCNode).Run(5)
	if g.N() != 0 {
		t.Error("empty runtime wrong")
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0)}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	rt := NewRuntime(pts, func() Node { return &rogueNode{} })
	rt.Run(5)
}

// rogueNode tries to message a node outside its radio range.
type rogueNode struct {
	env *Env
	id  int
}

func (r *rogueNode) Init(id int, _ geom.Point, _ []int, env *Env) { r.id, r.env = id, env }
func (r *rogueNode) Round(int, map[int]Message) bool {
	r.env.Send(1-r.id, "hello") // nodes are 5 apart: not neighbors
	return true
}

func TestNonTerminatingProtocolPanics(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRuntime(pts, func() Node { return &foreverNode{} }).Run(3)
}

type foreverNode struct{}

func (foreverNode) Init(int, geom.Point, []int, *Env) {}
func (foreverNode) Round(int, map[int]Message) bool   { return false }

func TestOneSidedDeclarationYieldsNoLink(t *testing.T) {
	// A protocol where only node 0 declares: the handshake must reject.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}
	g := NewRuntime(pts, func() Node { return &oneSided{} }).Run(5)
	if g.M() != 0 {
		t.Error("one-sided declaration must not create a link")
	}
}

type oneSided struct {
	id  int
	env *Env
}

func (o *oneSided) Init(id int, _ geom.Point, _ []int, env *Env) { o.id, o.env = id, env }
func (o *oneSided) Round(int, map[int]Message) bool {
	if o.id == 0 {
		o.env.DeclareLink(1)
	}
	return true
}

func BenchmarkDistributedXTC(b *testing.B) {
	pts := gen.UniformSquare(rand.New(rand.NewSource(505)), 300, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRuntime(pts, NewXTCNode).Run(10)
	}
}

func TestDistributedGGAndRNGMatchCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(70)
		pts := gen.UniformSquare(rng, n, 1.5+rng.Float64()*2.5)
		sameTopology(t, "GG", NewRuntime(pts, NewGGNode).Run(10), topology.GG(pts))
		sameTopology(t, "RNG", NewRuntime(pts, NewRNGNode).Run(10), topology.RNG(pts))
	}
	// And on the adversarial gadget.
	g := gen.DoubleExpChain(12)
	sameTopology(t, "GG-gadget", NewRuntime(g, NewGGNode).Run(10), topology.GG(g))
	sameTopology(t, "RNG-gadget", NewRuntime(g, NewRNGNode).Run(10), topology.RNG(g))
}
