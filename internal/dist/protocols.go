package dist

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
)

// This file implements the protocol-style constructions as actual
// message-passing protocols on the Runtime. Each is cross-validated
// against its centralized counterpart in internal/topology by the tests.

// ---------------------------------------------------------------------
// Distributed XTC — 2 rounds, O(Δ) words per message.
//
// Round 0: every node broadcasts its total order over its neighbors
// (ranked by distance, ties by id), exactly the "order exchange" phase of
// the XTC paper. Round 1: with all neighbor orders known, each node
// locally runs the XTC selection rule — keep v unless some w is better
// than v from u's view and better than u from v's view — and declares the
// surviving links. XTC's selection is provably symmetric, so the
// both-ends handshake keeps exactly the links either endpoint computes.
// ---------------------------------------------------------------------

// xtcOrder is the ranking a node broadcasts: neighbor ids, best first.
type xtcOrder []int

// XTCNode is the per-node state of distributed XTC.
type XTCNode struct {
	id        int
	env       *Env
	neighbors []int
	rank      map[int]int // my rank of each neighbor (0 = best)
}

// NewXTCNode returns a protocol instance; use with NewRuntime.
func NewXTCNode() Node { return &XTCNode{} }

// Init implements Node.
func (x *XTCNode) Init(id int, _ geom.Point, neighbors []int, env *Env) {
	x.id = id
	x.env = env
	x.neighbors = neighbors
	ordered := append([]int(nil), neighbors...)
	sort.Slice(ordered, func(a, b int) bool {
		da, db := env.Dist(ordered[a]), env.Dist(ordered[b])
		if da != db {
			return da < db
		}
		return ordered[a] < ordered[b]
	})
	x.rank = make(map[int]int, len(ordered))
	for i, v := range ordered {
		x.rank[v] = i
	}
}

// Round implements Node.
func (x *XTCNode) Round(round int, inbox map[int]Message) bool {
	switch round {
	case 0:
		// Broadcast my order.
		order := make(xtcOrder, len(x.neighbors))
		for v, r := range x.rank {
			order[r] = v
		}
		x.env.Broadcast(order)
		return false
	default:
		// Reconstruct each neighbor's ranking from its broadcast.
		theirRank := make(map[int]map[int]int, len(inbox))
		for from, m := range inbox {
			order := m.(xtcOrder)
			r := make(map[int]int, len(order))
			for i, v := range order {
				r[v] = i
			}
			theirRank[from] = r
		}
		for _, v := range x.neighbors {
			vr, ok := theirRank[v]
			if !ok {
				continue // lost order: keep conservative silence
			}
			drop := false
			for _, w := range x.neighbors {
				if w == v {
					continue
				}
				wRankAtV, shared := vr[w]
				if !shared {
					continue // w is not v's neighbor: not a mutual shortcut
				}
				if x.rank[w] < x.rank[v] && wRankAtV < vr[x.id] {
					drop = true
					break
				}
			}
			if !drop {
				x.env.DeclareLink(v)
			}
		}
		return true
	}
}

// ---------------------------------------------------------------------
// Distributed NNF — 2 rounds, O(1) words per message.
//
// Round 0: broadcast the id of my nearest neighbor. Round 1: declare the
// link to my own pick and to everyone who picked me (the symmetric
// closure of nearest-neighbor selection — the NNF).
// ---------------------------------------------------------------------

type nnfPick int

// NNFNode is the per-node state of the distributed Nearest Neighbor
// Forest.
type NNFNode struct {
	id   int
	env  *Env
	pick int
}

// NewNNFNode returns a protocol instance; use with NewRuntime.
func NewNNFNode() Node { return &NNFNode{} }

// Init implements Node.
func (n *NNFNode) Init(id int, _ geom.Point, neighbors []int, env *Env) {
	n.id = id
	n.env = env
	n.pick = -1
	best := -1.0
	for _, v := range neighbors {
		d := env.Dist(v)
		if n.pick < 0 || d < best || (d == best && v < n.pick) {
			n.pick, best = v, d
		}
	}
}

// Round implements Node.
func (n *NNFNode) Round(round int, inbox map[int]Message) bool {
	switch round {
	case 0:
		if n.pick >= 0 {
			n.env.Broadcast(nnfPick(n.pick))
		}
		return n.pick < 0 // isolated nodes terminate immediately
	default:
		n.env.DeclareLink(n.pick)
		for from, m := range inbox {
			if int(m.(nnfPick)) == n.id {
				n.env.DeclareLink(from)
			}
		}
		return true
	}
}

// ---------------------------------------------------------------------
// Distributed LMST — 2 rounds, O(1) words per message.
//
// Round 0: broadcast my position. Round 1: build the Euclidean MST of my
// closed neighborhood from the received positions and declare my local
// tree edges; the runtime's both-ends handshake yields the symmetric
// intersection variant G₀⁻.
// ---------------------------------------------------------------------

type lmstPos geom.Point

// LMSTNode is the per-node state of distributed LMST.
type LMSTNode struct {
	id  int
	pos geom.Point
	env *Env
}

// NewLMSTNode returns a protocol instance; use with NewRuntime.
func NewLMSTNode() Node { return &LMSTNode{} }

// Init implements Node.
func (l *LMSTNode) Init(id int, pos geom.Point, _ []int, env *Env) {
	l.id = id
	l.pos = pos
	l.env = env
}

// Round implements Node.
func (l *LMSTNode) Round(round int, inbox map[int]Message) bool {
	switch round {
	case 0:
		l.env.Broadcast(lmstPos(l.pos))
		return false
	default:
		// Closed neighborhood in deterministic (id) order.
		ids := make([]int, 0, len(inbox)+1)
		ids = append(ids, l.id)
		for from := range inbox {
			ids = append(ids, from)
		}
		sort.Ints(ids)
		local := make([]geom.Point, len(ids))
		mine := -1
		for i, v := range ids {
			if v == l.id {
				local[i] = l.pos
				mine = i
			} else {
				local[i] = geom.Point(inbox[v].(lmstPos))
			}
		}
		lt := graph.EuclideanMST(local, 1)
		for i, v := range ids {
			if i != mine && lt.HasEdge(mine, i) {
				l.env.DeclareLink(v)
			}
		}
		return true
	}
}

// ---------------------------------------------------------------------
// Distributed Gabriel Graph and Relative Neighborhood Graph — 2 rounds,
// O(1) words per message.
//
// Both constructions prune a UDG edge {u, v} when a third node lies in a
// forbidden region (the diameter disk for GG, the lune for RNG). Any
// such blocker w satisfies |uw| < |uv| ≤ 1 and |wv| < |uv| ≤ 1, so it is
// a UDG neighbor of BOTH endpoints — one position broadcast therefore
// hands every node all the blockers it could ever need, and each
// endpoint decides each of its edges locally and symmetrically.
// ---------------------------------------------------------------------

type regionPos geom.Point

// regionNode implements both protocols; blocked selects the region.
type regionNode struct {
	id      int
	pos     geom.Point
	env     *Env
	blocked func(u, v, w geom.Point) bool
}

// NewGGNode returns a distributed Gabriel Graph protocol instance.
func NewGGNode() Node { return &regionNode{blocked: geom.InGabrielDisk} }

// NewRNGNode returns a distributed Relative Neighborhood Graph instance.
func NewRNGNode() Node { return &regionNode{blocked: geom.InLune} }

// Init implements Node.
func (r *regionNode) Init(id int, pos geom.Point, _ []int, env *Env) {
	r.id = id
	r.pos = pos
	r.env = env
}

// Round implements Node.
func (r *regionNode) Round(round int, inbox map[int]Message) bool {
	switch round {
	case 0:
		r.env.Broadcast(regionPos(r.pos))
		return false
	default:
		for v, mv := range inbox {
			pv := geom.Point(mv.(regionPos))
			keep := true
			for w, mw := range inbox {
				if w == v {
					continue
				}
				if r.blocked(r.pos, pv, geom.Point(mw.(regionPos))) {
					keep = false
					break
				}
			}
			if keep {
				r.env.DeclareLink(v)
			}
		}
		return true
	}
}
