package dist

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Distributed A_gen — 2 rounds, O(1) words per message.
//
// A_gen is presented in the paper as a centralized construction, but on a
// highway every unit segment is a clique of the UDG, so one position
// broadcast gives every node its entire segment: each node then computes
// the same hub assignment locally and declares exactly its own links.
// Cross-segment joining is local too: only adjacent segments can contain
// nodes within range, and the boundary nodes can identify each other
// among their neighbors (any closer candidate would also be a neighbor).
//
// The hub spacing ⌈√Δ⌉ needs the global maximum degree; in a deployment
// it is computed once by an aggregation flood, so the protocol takes it
// as a parameter (AGenSpacingOf derives it from the instance). AnchorX
// is the segment-grid origin — the paper anchors at the leftmost node;
// pass the instance minimum.
type AGenNode struct {
	id       int
	pos      geom.Point
	env      *Env
	spacing  int
	anchorX  float64
	segIndex int
}

// NewAGenNode returns a factory for distributed A_gen instances with the
// given hub spacing and segment anchor.
func NewAGenNode(spacing int, anchorX float64) func() Node {
	if spacing < 1 {
		panic("dist: AGen spacing must be >= 1")
	}
	return func() Node { return &AGenNode{spacing: spacing, anchorX: anchorX} }
}

type agenPos struct {
	X float64
}

// Init implements Node.
func (a *AGenNode) Init(id int, pos geom.Point, _ []int, env *Env) {
	a.id = id
	a.pos = pos
	a.env = env
	a.segIndex = int(math.Floor(pos.X - a.anchorX))
}

// member is a (position, id) pair ordered the way the centralized
// algorithm orders nodes: by coordinate, ties by id.
type member struct {
	x  float64
	id int
}

func sortMembers(ms []member) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].x != ms[j].x {
			return ms[i].x < ms[j].x
		}
		return ms[i].id < ms[j].id
	})
}

// Round implements Node.
func (a *AGenNode) Round(round int, inbox map[int]Message) bool {
	switch round {
	case 0:
		a.env.Broadcast(agenPos{X: a.pos.X})
		return false
	default:
		a.computeLinks(inbox)
		return true
	}
}

func (a *AGenNode) computeLinks(inbox map[int]Message) {
	seg := func(x float64) int { return int(math.Floor(x - a.anchorX)) }

	// Partition the visible world (me + neighbors) by segment.
	var mine []member        // my segment, includes me
	var left, right []member // adjacent segments
	mine = append(mine, member{a.pos.X, a.id})
	for from, m := range inbox {
		x := m.(agenPos).X
		switch seg(x) {
		case a.segIndex:
			mine = append(mine, member{x, from})
		case a.segIndex - 1:
			left = append(left, member{x, from})
		case a.segIndex + 1:
			right = append(right, member{x, from})
		}
	}
	sortMembers(mine)

	// My rank within the segment and the hub layout.
	n := len(mine)
	rank := -1
	for i, m := range mine {
		if m.id == a.id {
			rank = i
			break
		}
	}
	isHub := func(i int) bool { return i%a.spacing == 0 || i == n-1 }

	if n > 1 {
		if isHub(rank) {
			// Adjacent hubs.
			for i := rank - 1; i >= 0; i-- {
				if isHub(i) {
					a.env.DeclareLink(mine[i].id)
					break
				}
			}
			for i := rank + 1; i < n; i++ {
				if isHub(i) {
					a.env.DeclareLink(mine[i].id)
					break
				}
			}
			// Regular members whose nearest hub I am.
			for i, m := range mine {
				if isHub(i) {
					continue
				}
				if a.nearestHubOf(mine, i, isHub) == rank {
					a.env.DeclareLink(m.id)
				}
			}
		} else {
			a.env.DeclareLink(mine[a.nearestHubOf(mine, rank, isHub)].id)
		}
	}

	// Cross-segment joins: I am the rightmost of my segment and the
	// leftmost of the next segment is within range (and vice versa).
	if rank == n-1 && len(right) > 0 {
		sortMembers(right)
		first := right[0]
		if first.x-a.pos.X <= 1*(1+1e-9) {
			a.env.DeclareLink(first.id)
		}
	}
	if rank == 0 && len(left) > 0 {
		sortMembers(left)
		last := left[len(left)-1]
		if a.pos.X-last.x <= 1*(1+1e-9) {
			a.env.DeclareLink(last.id)
		}
	}
}

// nearestHubOf returns the index (within ms) of the nearest hub to the
// regular member at index i, ties resolved toward the left hub as in the
// centralized algorithm.
func (a *AGenNode) nearestHubOf(ms []member, i int, isHub func(int) bool) int {
	leftIdx, rightIdx := -1, -1
	for j := i - 1; j >= 0; j-- {
		if isHub(j) {
			leftIdx = j
			break
		}
	}
	for j := i + 1; j < len(ms); j++ {
		if isHub(j) {
			rightIdx = j
			break
		}
	}
	switch {
	case leftIdx < 0:
		return rightIdx
	case rightIdx < 0:
		return leftIdx
	}
	dl := ms[i].x - ms[leftIdx].x
	dr := ms[rightIdx].x - ms[i].x
	if dl <= dr {
		return leftIdx
	}
	return rightIdx
}
