// Package dist provides a synchronous message-passing execution substrate
// for distributed topology-control protocols, and distributed
// implementations of the constructions the paper discusses as protocols:
// XTC (Wattenhofer & Zollinger [19]), the Nearest Neighbor Forest, and
// LMST (Li, Hou & Sha [9]).
//
// The paper's setting is an ad-hoc network: nodes only talk to their UDG
// neighbors and must decide their links from local information. The
// substrate runs protocols in synchronous rounds (the standard LOCAL
// model): in each round every node reads the messages its neighbors sent
// in the previous round, updates its state, and sends new messages. The
// framework counts rounds and messages so protocol costs are measurable,
// and the resulting topologies are cross-validated against the
// centralized constructions in internal/topology.
package dist

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

// Message is an opaque protocol payload exchanged between UDG neighbors.
type Message interface{}

// Node is a protocol participant. Implementations hold per-node state.
type Node interface {
	// Init is called once before round 0 with the node's id, position,
	// and UDG neighborhood (ids and positions are the only global
	// knowledge, matching the paper's assumption of known distances to
	// neighbors).
	Init(id int, pos geom.Point, neighbors []int, env *Env)
	// Round processes the messages received this round (keyed by sender)
	// and returns true when the node has terminated. A terminated node's
	// Round is not called again.
	Round(round int, inbox map[int]Message) bool
}

// Env is the per-node interface to the runtime: sending messages and
// declaring topology links.
type Env struct {
	runtime *Runtime
	id      int
}

// Send queues a message to neighbor v for delivery next round. Sending
// to a non-neighbor panics: radios only reach UDG neighbors.
func (e *Env) Send(v int, m Message) {
	e.runtime.send(e.id, v, m)
}

// Broadcast queues a message to every UDG neighbor (one radio
// transmission in practice; counted as one message per receiver to keep
// the cost measure conservative).
func (e *Env) Broadcast(m Message) {
	for _, v := range e.runtime.udg.Neighbors(e.id) {
		e.runtime.send(e.id, v, m)
	}
}

// DeclareLink records that this node wants the symmetric link {id, v}.
// The final topology keeps a link iff both endpoints declared it, the
// usual handshake of link-based protocols.
func (e *Env) DeclareLink(v int) {
	e.runtime.declare(e.id, v)
}

// Dist returns the Euclidean distance to a UDG neighbor (local
// information: nodes know distances to their neighbors).
func (e *Env) Dist(v int) float64 {
	return e.runtime.pts[e.id].Dist(e.runtime.pts[v])
}

// NeighborPos returns a neighbor's position (available in the paper's
// model, where nodes know their neighborhood geometry).
func (e *Env) NeighborPos(v int) geom.Point { return e.runtime.pts[v] }

// Runtime executes a protocol over a UDG in synchronous rounds.
type Runtime struct {
	pts   []geom.Point
	udg   *graph.Graph
	nodes []Node
	// Mailboxes: next[v][u] = message u sent to v this round.
	next []map[int]Message
	// Link declarations: declared[u] has v iff u declared {u,v}.
	declared []map[int]bool
	done     []bool

	// Cost counters.
	Rounds   int
	Messages int64
}

// NewRuntime builds a runtime over pts; factory creates one protocol
// instance per node.
func NewRuntime(pts []geom.Point, factory func() Node) *Runtime {
	n := len(pts)
	rt := &Runtime{
		pts:      pts,
		udg:      udg.Build(pts),
		nodes:    make([]Node, n),
		next:     make([]map[int]Message, n),
		declared: make([]map[int]bool, n),
		done:     make([]bool, n),
	}
	for i := 0; i < n; i++ {
		rt.nodes[i] = factory()
		rt.next[i] = make(map[int]Message)
		rt.declared[i] = make(map[int]bool)
	}
	for i := 0; i < n; i++ {
		neigh := append([]int(nil), rt.udg.Neighbors(i)...)
		sort.Ints(neigh)
		rt.nodes[i].Init(i, pts[i], neigh, &Env{runtime: rt, id: i})
	}
	return rt
}

func (rt *Runtime) send(u, v int, m Message) {
	if !rt.udg.HasEdge(u, v) {
		panic(fmt.Sprintf("dist: node %d sent to non-neighbor %d", u, v))
	}
	rt.next[v][u] = m
	rt.Messages++
}

func (rt *Runtime) declare(u, v int) {
	if !rt.udg.HasEdge(u, v) {
		panic(fmt.Sprintf("dist: node %d declared link to non-neighbor %d", u, v))
	}
	rt.declared[u][v] = true
}

// Run executes rounds until every node terminates or maxRounds elapses;
// it returns the declared symmetric topology. It panics if maxRounds is
// exhausted — a protocol bug, since all implemented protocols terminate
// in O(1) or O(diameter) rounds.
func (rt *Runtime) Run(maxRounds int) *graph.Graph {
	n := len(rt.pts)
	for round := 0; ; round++ {
		allDone := true
		for i := 0; i < n; i++ {
			if !rt.done[i] {
				allDone = false
				break
			}
		}
		if allDone {
			rt.Rounds = round
			break
		}
		if round >= maxRounds {
			panic(fmt.Sprintf("dist: protocol did not terminate within %d rounds", maxRounds))
		}
		// Swap mailboxes: messages sent during this round are delivered
		// next round.
		inboxes := rt.next
		rt.next = make([]map[int]Message, n)
		for i := range rt.next {
			rt.next[i] = make(map[int]Message)
		}
		for i := 0; i < n; i++ {
			if rt.done[i] {
				continue
			}
			if rt.nodes[i].Round(round, inboxes[i]) {
				rt.done[i] = true
			}
		}
	}
	// Assemble the symmetric topology.
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := range rt.declared[u] {
			if u < v && rt.declared[v][u] {
				g.AddEdge(u, v, rt.pts[u].Dist(rt.pts[v]))
			}
		}
	}
	return g
}
