package planar

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/udg"
)

func TestAGen2DPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(150)
		side := 1 + rng.Float64()*5
		pts := gen.UniformSquare(rng, n, side)
		base := udg.Build(pts)
		g := AGen2D(pts)
		if !graph.SameComponents(base, g) {
			t.Fatalf("trial %d: connectivity broken (n=%d side=%.2f)", trial, n, side)
		}
	}
}

func TestAGen2DIsUDGSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	pts := gen.UniformSquare(rng, 120, 3)
	base := udg.Build(pts)
	g := AGen2D(pts)
	for _, e := range g.Edges() {
		if !base.HasEdge(e.U, e.V) {
			t.Errorf("edge (%d,%d) length %v exceeds unit range", e.U, e.V, e.W)
		}
	}
}

func TestAGen2DTrivial(t *testing.T) {
	if g := AGen2D(nil); g.N() != 0 {
		t.Error("empty wrong")
	}
	if g := AGen2D([]geom.Point{geom.Pt(0, 0)}); g.M() != 0 {
		t.Error("singleton wrong")
	}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.3, 0.3)}
	if g := AGen2D(pts); !g.HasEdge(0, 1) {
		t.Error("pair should connect")
	}
}

func TestAGen2DSublinearOnGadget(t *testing.T) {
	// On the Theorem 4.1 gadget the NNF-containing zoo is Ω(n); the hub
	// construction (like LIFE, it does not chain nearest neighbors) must
	// grow sublinearly. Measured: I ≈ √n-ish (15, 21, 29, 42 at n = 60,
	// 120, 240, 480) vs MST's linear 23, 43, 83, 163.
	iAt := func(k int) (hub, mst int) {
		pts := gen.DoubleExpChain(k)
		return core.Interference(pts, AGen2D(pts)).Max(),
			core.Interference(pts, topology.MST(pts)).Max()
	}
	hubSmall, mstSmall := iAt(20)
	hubBig, mstBig := iAt(160)
	if mstBig < 6*mstSmall {
		t.Fatalf("setup: MST should grow ~linearly on the gadget (got %d -> %d)", mstSmall, mstBig)
	}
	// 8x more nodes: sublinear growth means well under 8x interference.
	if hubBig >= 4*hubSmall {
		t.Errorf("AGen2D grew %d -> %d over 8x nodes — not sublinear", hubSmall, hubBig)
	}
	if hubBig >= mstBig/2 {
		t.Errorf("AGen2D I=%d not clearly below MST's %d at n=480", hubBig, mstBig)
	}
}

func TestAGen2DSpacingSweepConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	pts := gen.Clustered(rng, 200, 5, 4, 0.3)
	base := udg.Build(pts)
	for _, sp := range []int{1, 2, 4, 8, 64} {
		g := AGen2DSpacing(pts, sp)
		if !graph.SameComponents(base, g) {
			t.Errorf("spacing %d: connectivity broken", sp)
		}
	}
}

func TestAGen2DInterferenceScalesLikeSqrtDelta(t *testing.T) {
	// Empirical sanity on dense uniform instances: I should grow far
	// slower than Δ (the open-problem conjecture, tested as a smoke
	// bound: I ≤ 4·√Δ + 8 across densities).
	rng := rand.New(rand.NewSource(604))
	for _, n := range []int{100, 400, 1600} {
		pts := gen.UniformSquare(rng, n, math.Sqrt(float64(n))/4)
		delta := udg.MaxDegree(pts, udg.Radius)
		got := core.Interference(pts, AGen2D(pts)).Max()
		if float64(got) > 4*math.Sqrt(float64(delta))+8 {
			t.Errorf("n=%d: I=%d vs Δ=%d — exceeded 4√Δ+8", n, got, delta)
		}
	}
}

func TestAGen2DDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	pts := gen.UniformSquare(rng, 150, 3)
	a, b := AGen2D(pts), AGen2D(pts)
	if a.M() != b.M() {
		t.Fatal("nondeterministic edge count")
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatal("nondeterministic edges")
		}
	}
}

func BenchmarkAGen2D(b *testing.B) {
	rng := rand.New(rand.NewSource(606))
	pts := gen.UniformSquare(rng, 1000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AGen2D(pts)
	}
}

func TestBest2DNeverLosesToMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	for trial := 0; trial < 5; trial++ {
		pts := gen.Clustered(rng, 100, 3, 3, 0.25)
		g, pick := Best2D(pts)
		best := core.Interference(pts, g).Max()
		for name, build := range map[string]func([]geom.Point) *graph.Graph{
			"mst": topology.MST, "life": topology.LIFE, "agen2d": AGen2D,
		} {
			if i := core.Interference(pts, build(pts)).Max(); best > i {
				t.Fatalf("trial %d: Best2D (%s, I=%d) lost to %s (I=%d)", trial, pick, best, name, i)
			}
		}
		if pick == "" {
			t.Fatal("empty pick")
		}
	}
}
