// Package planar takes up the paper's stated future work: "Adaptation of
// our approach to higher dimensions remains an open problem." It
// generalizes Algorithm A_gen's segment/hub construction from the highway
// to the plane and provides the measurement harness to judge it against
// the classical constructions and the annealing upper bound on the
// optimum.
//
// # AGen2D
//
// The highway construction partitions the line into unit segments, makes
// every ⌈√Δ⌉-th node a hub, connects hubs linearly, and attaches regular
// nodes to their nearest hub. The planar generalization:
//
//   - partition the plane into square cells of side 1/√2, so any two
//     nodes in a cell are within unit range (the 2-D analogue of "within
//     a segment each node can reach every other");
//   - within each cell, order nodes lexicographically and make every
//     ⌈√Δ⌉-th one a hub (plus the last), bounding both the number of
//     hubs per cell (≤ √Δ + 1) and the number of regular nodes a hub
//     serves (≤ √Δ, each at short range);
//   - connect the cell's hubs by their Euclidean MST (the 2-D "linear"
//     order of hubs), and every regular node to its nearest hub in its
//     cell;
//   - for every pair of cells joined by at least one UDG edge, add the
//     shortest such crossing edge, preserving connectivity exactly.
//
// No approximation guarantee is claimed — that is precisely the open
// problem — but the same two forces the 1-D proof balances (few hubs
// seen by any node vs. short regular-node radii) act here, and the
// experiments in internal/exp show the construction tracking the
// annealing upper bound within small factors on uniform and clustered
// instances while beating the NNF-containing zoo on adversarial ones.
package planar

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/udg"
)

// cellSide is the 2-D cell size: side 1/√2 gives diameter exactly 1, so
// cells are cliques of the UDG.
var cellSide = 1 / math.Sqrt2

// AGen2D builds the planar hub construction with the paper's ⌈√Δ⌉ hub
// spacing.
func AGen2D(pts []geom.Point) *graph.Graph {
	return AGen2DSpacing(pts, 0)
}

// AGen2DSpacing is AGen2D with an explicit hub spacing (0 means ⌈√Δ⌉),
// for the ablation sweep.
func AGen2DSpacing(pts []geom.Point, spacing int) *graph.Graph {
	g := graph.New(len(pts))
	if len(pts) < 2 {
		return g
	}
	if spacing <= 0 {
		delta := udg.MaxDegree(pts, udg.Radius)
		spacing = int(math.Ceil(math.Sqrt(float64(delta))))
		if spacing < 1 {
			spacing = 1
		}
	}
	b := geom.Bounds(pts)
	cellOf := func(p geom.Point) [2]int {
		return [2]int{
			int(math.Floor((p.X - b.Min.X) / cellSide)),
			int(math.Floor((p.Y - b.Min.Y) / cellSide)),
		}
	}
	cells := make(map[[2]int][]int)
	for i, p := range pts {
		c := cellOf(p)
		cells[c] = append(cells[c], i)
	}
	// Deterministic cell iteration order.
	keys := make([][2]int, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	for _, k := range keys {
		buildCell(pts, g, cells[k], spacing)
	}
	joinCells(pts, g, cells, cellOf)
	return g
}

// buildCell wires one cell: every spacing-th node (in lexicographic
// order) plus the last is a hub; hubs joined by their MST; regular nodes
// to the nearest hub.
func buildCell(pts []geom.Point, g *graph.Graph, members []int, spacing int) {
	if len(members) < 2 {
		return
	}
	ordered := append([]int(nil), members...)
	sort.Slice(ordered, func(a, b int) bool {
		pa, pb := pts[ordered[a]], pts[ordered[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return ordered[a] < ordered[b]
	})
	isHub := make([]bool, len(ordered))
	for i := 0; i < len(ordered); i += spacing {
		isHub[i] = true
	}
	isHub[len(ordered)-1] = true
	var hubs []int
	for i, h := range isHub {
		if h {
			hubs = append(hubs, ordered[i])
		}
	}
	// Hub backbone: Euclidean MST over the hubs (all within range: cell
	// diameter is 1).
	hubPts := make([]geom.Point, len(hubs))
	for i, h := range hubs {
		hubPts[i] = pts[h]
	}
	mst := graph.EuclideanMST(hubPts, udg.Radius)
	for _, e := range mst.Edges() {
		g.AddEdge(hubs[e.U], hubs[e.V], e.W)
	}
	// Regular nodes to their nearest hub.
	for i, v := range ordered {
		if isHub[i] {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for _, h := range hubs {
			d := pts[v].Dist(pts[h])
			if d < bestD || (d == bestD && h < best) {
				best, bestD = h, d
			}
		}
		g.AddEdge(v, best, bestD)
	}
}

// joinCells adds, for every pair of cells connected by at least one UDG
// edge, the shortest such crossing edge.
func joinCells(pts []geom.Point, g *graph.Graph, cells map[[2]int][]int, cellOf func(geom.Point) [2]int) {
	type pairKey struct{ a, b [2]int }
	best := make(map[pairKey]graph.Edge)
	grid := geom.NewGrid(pts, cellSide)
	buf := make([]int, 0, 64)
	for u, p := range pts {
		cu := cellOf(p)
		buf = grid.Within(p, udg.Radius, buf[:0])
		for _, v := range buf {
			if v <= u {
				continue
			}
			cv := cellOf(pts[v])
			if cu == cv {
				continue
			}
			a, b := cu, cv
			if b[0] < a[0] || (b[0] == a[0] && b[1] < a[1]) {
				a, b = b, a
			}
			key := pairKey{a, b}
			d := p.Dist(pts[v])
			if cur, ok := best[key]; !ok || d < cur.W || (d == cur.W && (u < cur.U || (u == cur.U && v < cur.V))) {
				best[key] = graph.NewEdge(u, v, d)
			}
		}
	}
	// Deterministic insertion order.
	keys := make([]pairKey, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		if ki.a != kj.a {
			if ki.a[0] != kj.a[0] {
				return ki.a[0] < kj.a[0]
			}
			return ki.a[1] < kj.a[1]
		}
		if ki.b[0] != kj.b[0] {
			return ki.b[0] < kj.b[0]
		}
		return ki.b[1] < kj.b[1]
	})
	for _, k := range keys {
		e := best[k]
		g.AddEdge(e.U, e.V, e.W)
	}
}
