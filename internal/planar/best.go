package planar

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

// Best2D is the 2-D analogue of the paper's hybrid A_apx, built as a
// portfolio: evaluate a small set of connectivity-preserving candidates —
// the Euclidean MST (benign instances), LIFE (sender-coverage-aware
// forest), and the AGen2D hub construction (adversarial, NNF-defeating
// instances) — under the receiver-centric measure and keep the best.
//
// In 1-D, A_apx detects hard instances with the critical-set size γ and
// switches constructions; in 2-D no analogous detector with a proved
// guarantee is known (the paper's open problem), but measuring the actual
// objective on a constant number of candidates costs one interference
// evaluation each and inherits the best behavior of all of them: within
// ×1 of MST on uniform instances and within ×1 of AGen2D on the
// Theorem 4.1 gadget.
func Best2D(pts []geom.Point) (*graph.Graph, string) {
	candidates := []struct {
		name  string
		build func([]geom.Point) *graph.Graph
	}{
		{"mst", topology.MST},
		{"life", topology.LIFE},
		{"agen2d", AGen2D},
	}
	// One evaluator serves all candidates: the spatial grid is built once
	// and each candidate costs a BatchSet over it instead of a fresh
	// evaluation from scratch.
	ev := core.NewEvaluator(pts)
	var bestG *graph.Graph
	bestI := -1
	bestName := ""
	for _, c := range candidates {
		g := c.build(pts)
		ev.BatchSet(core.Radii(pts, g), 0)
		i := ev.Max()
		if bestI < 0 || i < bestI {
			bestG, bestI, bestName = g, i, c.name
		}
	}
	return bestG, bestName
}
