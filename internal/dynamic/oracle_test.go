package dynamic_test

import (
	"math/rand"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/oracle"
)

// Differential test against internal/oracle: the Maintainer's whole
// point is that it never recomputes from scratch — arrivals and
// departures are evaluator deltas and I(G') is an O(1) read. Here a
// full rebuild happens anyway, after every single churn event, and the
// maintained state must match it exactly: the O(1) interference against
// a quadratic recompute of the maintained topology, and the maintained
// partition against the naive UDG component oracle.

// churn drives one maintainer through a scripted random event sequence,
// cross-checking after every event.
func churn(t *testing.T, seed int64, rebuildFactor float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := gen.UniformSquare(rng, 20, 2)
	m := dynamic.New(pts, rebuildFactor)
	check := func(step int, what string) {
		cur := m.Points()
		topo := m.Topology()
		if got, want := m.Interference(), oracle.InterferenceOf(cur, topo); got != want {
			t.Fatalf("step %d (%s, n=%d): maintained I=%d, full recompute %d", step, what, len(cur), got, want)
		}
		if err := oracle.Check(cur, topo); err != nil {
			t.Fatalf("step %d (%s): %v", step, what, err)
		}
		wantLabel, wantK := oracle.Components(cur)
		gotLabel, gotK := topo.Components()
		if gotK != wantK {
			t.Fatalf("step %d (%s): maintained topology has %d components, UDG has %d", step, what, gotK, wantK)
		}
		for i := range gotLabel {
			for j := i + 1; j < len(gotLabel); j++ {
				if (gotLabel[i] == gotLabel[j]) != (wantLabel[i] == wantLabel[j]) {
					t.Fatalf("step %d (%s): partition differs from UDG at (%d,%d)", step, what, i, j)
				}
			}
		}
	}
	check(0, "initial")
	for step := 1; step <= 60; step++ {
		n := len(m.Points())
		if rng.Intn(2) == 0 || n <= 3 {
			p := geom.Pt(rng.Float64()*2, rng.Float64()*2)
			if rng.Intn(8) == 0 {
				// Occasionally land far away: a fresh singleton component.
				p = p.Add(geom.Pt(10, 10))
			}
			m.Insert(p)
			check(step, "insert")
		} else {
			m.Remove(rng.Intn(n))
			check(step, "remove")
		}
	}
	if m.Events() != 60 {
		t.Fatalf("maintainer counted %d events, drove 60", m.Events())
	}
}

func TestMaintainerAgainstOracleEveryEvent(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seed   int64
		factor float64
	}{
		{"default-factor", 1, 0},
		{"lazy-rebuilds", 2, 8},       // high factor: local rules run long before a rebuild fires
		{"rebuild-every-event", 3, 1}, // factor <= 1 disables maintenance entirely
		{"default-second-seed", 4, 0},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			churn(t, tc.seed, tc.factor)
		})
	}
}
