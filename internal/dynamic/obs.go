package dynamic

import "repro/internal/obs"

// Maintainer metrics: event mix, drift-triggered rebuilds, and how much
// repair the departure path actually does.
var (
	obsEvents = obs.Default().Counter("rim_dynamic_events_total",
		"Maintenance events applied (insert, remove, set-radius, anneal).")
	obsRebuilds = obs.Default().Counter("rim_dynamic_rebuilds_total",
		"Full greedy rebuilds (initial construction included).")
	obsRepairEdges = obs.Default().Counter("rim_dynamic_repair_edges_total",
		"Edges added by departure connectivity repair.")
)
