package dynamic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
)

func TestMaintainerEventHook(t *testing.T) {
	var got []Event
	m := New(gen.UniformSquare(rand.New(rand.NewSource(2201)), 10, 1.5), 100)
	m.OnEvent = func(ev Event) { got = append(got, ev) }

	idx := m.Insert(geom.Pt(0.7, 0.7))
	m.SetRadius(idx, 0.5)
	m.Remove(idx)
	m.Anneal(9, 100)

	kinds := make([]EventKind, len(got))
	for i, ev := range got {
		kinds[i] = ev.Kind
	}
	want := []EventKind{EventInsert, EventSetRadius, EventRemove, EventAnneal}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if got[0].Index != idx || got[1].Index != idx {
		t.Errorf("insert/set events carry index %d/%d, want %d", got[0].Index, got[1].Index, idx)
	}
	if got[3].Index != -1 {
		t.Errorf("anneal event index = %d, want -1", got[3].Index)
	}
	for i, ev := range got {
		if ev.Max != 0 && ev.Max < 0 {
			t.Errorf("event %d: bad max %d", i, ev.Max)
		}
	}
	// Events() counts applied operations, including the radius override
	// and the anneal.
	if m.Events() != 4 {
		t.Errorf("Events() = %d, want 4", m.Events())
	}
}

func TestMaintainerRebuildFiresEvent(t *testing.T) {
	var rebuilds int
	m := New(gen.UniformSquare(rand.New(rand.NewSource(2202)), 12, 1.5), 1) // rebuild every event
	m.OnEvent = func(ev Event) {
		if ev.Kind == EventRebuild {
			rebuilds++
		}
	}
	for i := 0; i < 5; i++ {
		m.Insert(geom.Pt(0.1*float64(i), 0.2))
	}
	// One rebuild per insert (the hook was installed after the initial
	// construction's rebuild, so exactly 5 fire here).
	if rebuilds != 5 {
		t.Errorf("rebuild events = %d, want 5", rebuilds)
	}
	if m.Rebuilds() != 6 {
		t.Errorf("Rebuilds() = %d, want 6", m.Rebuilds())
	}
}

// countingEngine wraps the production evaluator to prove factory injection
// routes every engine call through the configured engine, including
// post-rebuild replacements.
type countingEngine struct {
	Engine
	calls *int
}

func (c *countingEngine) SetRadius(u int, r float64) float64 {
	*c.calls++
	return c.Engine.SetRadius(u, r)
}

func TestNewWithEngineFactoryInjection(t *testing.T) {
	calls, built := 0, 0
	factory := func(pts []geom.Point) Engine {
		built++
		return &countingEngine{Engine: core.NewEvaluator(pts), calls: &calls}
	}
	m := NewWithEngine(gen.UniformSquare(rand.New(rand.NewSource(2203)), 15, 1.5), 1, factory)
	if built != 1 {
		t.Fatalf("factory built %d engines at construction", built)
	}
	m.SetRadius(0, 0.4)
	if calls == 0 {
		t.Fatalf("SetRadius bypassed the injected engine")
	}
	// RebuildFactor 1: the next structural event rebuilds, and the rebuild
	// must go through the factory again.
	m.Insert(geom.Pt(0.3, 0.3))
	if built != 2 {
		t.Fatalf("rebuild bypassed the factory: built = %d", built)
	}
}

func TestMaintainerSetRadiusSemantics(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(1.0, 0)}
	m := New(pts, 100)
	old := m.SetRadius(0, 0.9)
	if old != 0.5 {
		t.Fatalf("previous radius = %v, want the topology-implied 0.5", old)
	}
	// Radius 0.9 now covers both other nodes: their I includes node 0.
	st := m.Engine().ExportState(nil)
	if st.Radii[0] != 0.9 {
		t.Fatalf("radius not applied: %v", st.Radii[0])
	}
	if want := core.InterferenceRadii(pts, st.Radii).Max(); m.Interference() != want {
		t.Fatalf("maintained I = %d, recomputed %d", m.Interference(), want)
	}

	defer func() {
		if recover() == nil {
			t.Error("out-of-range SetRadius must panic")
		}
	}()
	m.SetRadius(99, 1)
}

func TestMaintainerAnneal(t *testing.T) {
	rng := rand.New(rand.NewSource(2204))
	pts := gen.UniformSquare(rng, 30, 1.8)
	m := New(pts, 100)

	got := m.Anneal(7, 3000)
	if got != m.Interference() {
		t.Fatalf("Anneal returned %d, maintained %d", got, m.Interference())
	}
	// Adopted state is self-consistent: radii realize the adopted topology's
	// interference, and connectivity matches the UDG (anneal preserves it).
	st := m.Engine().ExportState(nil)
	if want := core.InterferenceRadii(pts, st.Radii).Max(); got != want {
		t.Fatalf("adopted I = %d, recomputed %d", got, want)
	}

	// Determinism: same seed, same budget, same instance → same result.
	m2 := New(pts, 100)
	if again := m2.Anneal(7, 3000); again != got {
		t.Fatalf("anneal nondeterministic: %d vs %d", got, again)
	}

	// No-ops: tiny instances and zero budgets leave state untouched.
	single := New([]geom.Point{geom.Pt(0, 0)}, 100)
	if single.Anneal(1, 100) != 0 {
		t.Errorf("singleton anneal changed interference")
	}
	before := m.Interference()
	if m.Anneal(1, 0) != before {
		t.Errorf("zero-budget anneal changed state")
	}
}
