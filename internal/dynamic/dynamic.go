// Package dynamic maintains a low-interference topology online, under
// node arrivals and departures, without rebuilding from scratch on every
// event — the engineering payoff of the measure's robustness property.
//
// The maintainer applies cheap local rules per event and keeps the exact
// interference bookkeeping incrementally:
//
//   - Arrival: the newcomer links to its nearest neighbor (one new edge;
//     the nearest neighbor raises its radius just enough to answer).
//     Receiver-centric interference of any existing node grows by at
//     most 1 from the newcomer's own disk, plus whatever the single
//     answering radius increase adds — a local, bounded change, exactly
//     the behavior Figure 1 shows the sender-centric measure lacks.
//   - Departure: the node's edges vanish; its former neighbors shrink
//     their radii to their remaining farthest neighbors. If the victim
//     was a cut vertex of the maintained topology, the maintainer
//     reconnects the pieces with the shortest available UDG edges
//     between them (a local repair, not a rebuild).
//
// Every event is an evaluator delta: a persistent core.Evaluator carries
// the point set, the per-node interference vector, and I(G') across
// events, so an arrival costs the newcomer's disk query plus the
// answering node's annulus, and a departure costs the shrinking annuli
// plus an O(n) index shift — never a full re-evaluation. The maintained
// I(G') is therefore O(1) to read after every event.
//
// Drift control: local rules accumulate suboptimality, so the maintainer
// tracks I(G') incrementally and rebuilds with the greedy constructor
// when the maintained value exceeds RebuildFactor times the last
// rebuild's value. The X8-style test measures how rarely that fires.
package dynamic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/topology"
	"repro/internal/udg"
)

// Engine is the incremental-evaluator surface the maintainer drives.
// It is an alias for core.Measure: *core.Evaluator implements it for
// the graph measure, phys.Evaluator for the physical (SINR) model, and
// the differential oracle's Diff*Evaluator wrappers shadow either one
// behind the same surface, so a whole maintenance (or serving) pipeline
// can run against any measure without code changes.
type Engine = core.Measure

var _ Engine = (*core.Evaluator)(nil)

// EngineFactory builds the engine for an instance; the maintainer calls
// it at construction and again on every full rebuild. It is an alias
// for core.MeasureFactory so factories flow into opt's *With searchers
// unchanged.
type EngineFactory = core.MeasureFactory

// EventKind labels a maintainer event for hook consumers.
type EventKind uint8

const (
	EventInsert EventKind = iota + 1
	EventRemove
	EventSetRadius
	EventAnneal
	EventRebuild
	EventMove
)

// String names the kind for traces and logs.
func (k EventKind) String() string {
	switch k {
	case EventInsert:
		return "insert"
	case EventRemove:
		return "remove"
	case EventSetRadius:
		return "set-radius"
	case EventAnneal:
		return "anneal"
	case EventRebuild:
		return "rebuild"
	case EventMove:
		return "move"
	}
	return "unknown"
}

// Event is the notification delivered to OnEvent after each applied
// operation. Index is the affected node for Insert/Remove/SetRadius
// (-1 otherwise); Max is the maintained I(G') after the operation.
type Event struct {
	Kind  EventKind
	Index int
	Max   int
}

// Maintainer holds the evolving instance and topology.
type Maintainer struct {
	// RebuildFactor triggers a full greedy rebuild when the maintained
	// interference exceeds factor × the post-rebuild baseline. <= 1
	// disables maintenance (rebuild every event); 0 means the default 2.
	RebuildFactor float64

	// OnEvent, when non-nil, is called synchronously after every applied
	// operation (and after every full rebuild, including those triggered
	// mid-operation by drift control). The serving pipeline hooks its
	// metrics and trace recording here.
	OnEvent func(Event)

	// OnTouch, when non-nil, is called synchronously for every radius the
	// maintainer changes through the engine — the newcomer's answer
	// radius and its neighbor's growth on Insert, the neighbor shrinks
	// and the vanished disk on Remove, repair-edge growth, and expert
	// SetRadius overrides. Each call reports the node's position and the
	// larger of its old and new radius: the disk within which any other
	// node's received interference may have changed. Anneal and full
	// rebuilds do NOT report touches — consumers must treat the
	// EventAnneal/EventRebuild notifications as "everything dirty". The
	// serving layer accumulates these into its per-batch dirty summary.
	OnTouch func(at geom.Point, r float64)

	factory  EngineFactory
	eng      Engine
	topo     *graph.Graph
	baseline int // I(G') right after the last rebuild
	rebuilds int
	events   int

	// Batch deferral (BeginBatch/EndBatch): while deferring, connectivity
	// repair and drift control are postponed and latched here, so a batch
	// of k operations pays for one connectivity pass instead of k.
	deferring  bool
	needRepair bool
	needCheck  bool
}

// New starts a maintainer over the initial instance, built with the
// greedy constructor and the production core.Evaluator engine.
func New(pts []geom.Point, rebuildFactor float64) *Maintainer {
	return NewWithEngine(pts, rebuildFactor, nil)
}

// NewWithEngine is New with an explicit engine factory (nil selects
// core.NewEvaluator). Tests pass a factory returning the oracle's
// DiffEvaluator to shadow-check every maintenance op.
func NewWithEngine(pts []geom.Point, rebuildFactor float64, factory EngineFactory) *Maintainer {
	m := &Maintainer{RebuildFactor: rebuildFactor, factory: factory}
	if m.RebuildFactor == 0 {
		m.RebuildFactor = 2
	}
	if m.factory == nil {
		m.factory = func(pts []geom.Point) Engine { return core.NewEvaluator(pts) }
	}
	m.rebuild(pts)
	return m
}

// RestoreState is a behavioral snapshot of a Maintainer: everything a
// Restore needs to continue exactly where the source left off — same
// maintained topology, same radii, same drift baseline, same counters.
// The serving layer's checkpoint files serialize this.
type RestoreState struct {
	Points   []geom.Point
	Radii    []float64
	Edges    []graph.Edge
	Baseline int
	Events   int
	Rebuilds int
}

// Snapshot captures the maintainer's full behavioral state. The returned
// slices are copies; mutating them does not affect the maintainer.
func (m *Maintainer) Snapshot() RestoreState {
	var st core.State
	m.eng.ExportState(&st)
	return RestoreState{
		Points:   st.Points,
		Radii:    st.Radii,
		Edges:    append([]graph.Edge(nil), m.topo.Edges()...),
		Baseline: m.baseline,
		Events:   m.events,
		Rebuilds: m.rebuilds,
	}
}

// Restore reconstructs a maintainer from a Snapshot without running the
// greedy constructor: the engine is built from the snapshot's points and
// radii, the topology from its edge list, and the drift baseline and
// counters carry over. A restored maintainer is behaviorally identical
// to the one snapshotted — the crash-recovery property test holds it
// against a from-scratch replay. nil factory selects core.NewEvaluator.
func Restore(st RestoreState, rebuildFactor float64, factory EngineFactory) (*Maintainer, error) {
	if len(st.Radii) != len(st.Points) {
		return nil, fmt.Errorf("dynamic: restore: %d radii for %d points", len(st.Radii), len(st.Points))
	}
	m := &Maintainer{RebuildFactor: rebuildFactor, factory: factory}
	if m.RebuildFactor == 0 {
		m.RebuildFactor = 2
	}
	if m.factory == nil {
		m.factory = func(pts []geom.Point) Engine { return core.NewEvaluator(pts) }
	}
	m.topo = graph.New(len(st.Points))
	for _, e := range st.Edges {
		if e.U < 0 || e.U >= len(st.Points) || e.V < 0 || e.V >= len(st.Points) {
			return nil, fmt.Errorf("dynamic: restore: edge (%d,%d) out of range for %d points", e.U, e.V, len(st.Points))
		}
		m.topo.AddEdge(e.U, e.V, e.W)
	}
	m.eng = m.factory(st.Points)
	m.eng.BatchSet(st.Radii, 0)
	m.baseline = st.Baseline
	m.events = st.Events
	m.rebuilds = st.Rebuilds
	return m, nil
}

// points returns the current instance (shared with the evaluator; treat
// as read-only).
func (m *Maintainer) points() []geom.Point { return m.eng.Points() }

// Engine returns the maintainer's evaluator engine (shared; callers must
// not mutate it behind the maintainer's back — use the maintenance ops).
// The serving layer reads snapshots through Engine().ExportState.
func (m *Maintainer) Engine() Engine { return m.eng }

// Points returns a snapshot of the current instance.
func (m *Maintainer) Points() []geom.Point {
	return append([]geom.Point(nil), m.points()...)
}

// Topology returns the maintained topology (shared; treat as read-only).
func (m *Maintainer) Topology() *graph.Graph { return m.topo }

// Interference returns the maintained I(G'), read from the incremental
// evaluator in O(1).
func (m *Maintainer) Interference() int { return m.eng.Max() }

// Rebuilds returns how many full rebuilds have happened (including the
// initial construction).
func (m *Maintainer) Rebuilds() int { return m.rebuilds }

// Events returns how many arrivals/departures were applied.
func (m *Maintainer) Events() int { return m.events }

func (m *Maintainer) rebuild(pts []geom.Point) {
	sp := obs.Start("dynamic.rebuild")
	defer sp.End()
	if obs.On() {
		obsRebuilds.Inc()
	}
	m.topo = topology.GreedyMinI(pts)
	m.eng = m.factory(pts)
	m.eng.BatchSet(core.Radii(pts, m.topo), 0)
	m.baseline = m.eng.Max()
	m.rebuilds++
	m.fire(Event{Kind: EventRebuild, Index: -1, Max: m.baseline})
}

func (m *Maintainer) fire(ev Event) {
	if m.OnEvent != nil {
		m.OnEvent(ev)
	}
}

// touch reports a changed coverage disk to OnTouch. r is the larger of
// the node's old and new radius, so the disk over-approximates every
// receiver whose interference the change can have altered.
func (m *Maintainer) touch(at geom.Point, r float64) {
	if m.OnTouch != nil {
		m.OnTouch(at, r)
	}
}

// Insert adds a node and returns its index. The newcomer links to its
// nearest in-range neighbor (if any); out-of-range newcomers start a new
// component, which is correct — the UDG is disconnected there too.
func (m *Maintainer) Insert(p geom.Point) int {
	sp := obs.Start("dynamic.insert")
	defer sp.End()
	if obs.On() {
		obsEvents.Inc()
	}
	m.events++
	idx := m.eng.AddPoint(p)
	grown := graph.New(idx + 1)
	for _, e := range m.topo.Edges() {
		grown.AddEdge(e.U, e.V, e.W)
	}
	m.topo = grown
	// Nearest in-range neighbor, straight off the evaluator's grid.
	if best, bestD := m.eng.Grid().Nearest(idx); best >= 0 && bestD <= udg.Radius*(1+1e-9) {
		m.topo.AddEdge(idx, best, bestD)
		m.eng.SetRadius(idx, bestD)
		old := m.eng.GrowTo(best, bestD)
		m.touch(m.points()[best], math.Max(old, bestD))
	}
	// The newcomer's own disk (radius 0 when no neighbor answered —
	// still a disk: coincident nodes are covered at distance zero).
	m.touch(p, m.eng.Radius(idx))
	m.fire(Event{Kind: EventInsert, Index: idx, Max: m.eng.Max()})
	m.maybeRebuild()
	return idx
}

// Remove deletes the node at index idx (indices above shift down by one,
// matching slice semantics). It panics on out-of-range indices.
func (m *Maintainer) Remove(idx int) {
	if idx < 0 || idx >= len(m.points()) {
		panic(fmt.Sprintf("dynamic: remove index %d out of range", idx))
	}
	sp := obs.Start("dynamic.remove")
	defer sp.End()
	if obs.On() {
		obsEvents.Inc()
	}
	m.events++
	// The victim's disk vanishes: every receiver it covered is dirty.
	m.touch(m.points()[idx], m.eng.Radius(idx))
	// The victim's former neighbors shrink to their remaining farthest
	// neighbor; each shrink is one annulus update.
	for _, v := range m.topo.Neighbors(idx) {
		far := 0.0
		for _, w := range m.topo.Neighbors(v) {
			if w == idx {
				continue
			}
			if d, ok := m.topo.EdgeWeight(v, w); ok && d > far {
				far = d
			}
		}
		old := m.eng.SetRadius(v, far)
		m.touch(m.points()[v], math.Max(old, far))
	}
	m.eng.RemovePoint(idx)
	// Rebuild the topology over the surviving nodes with edges remapped.
	remap := func(v int) int {
		if v > idx {
			return v - 1
		}
		return v
	}
	ng := graph.New(len(m.points()))
	for _, e := range m.topo.Edges() {
		if e.U == idx || e.V == idx {
			continue
		}
		ng.AddEdge(remap(e.U), remap(e.V), e.W)
	}
	m.topo = ng
	m.repairConnectivity()
	m.fire(Event{Kind: EventRemove, Index: idx, Max: m.eng.Max()})
	m.maybeRebuild()
}

// SetRadius overrides node idx's transmission radius through the engine
// and returns the previous value. The override is advisory: the
// maintained topology is left untouched (a radius below the farthest
// topology neighbor makes that edge unrealizable until the next rebuild),
// and any later event's drift control may rebuild over it. It exists for
// the serving pipeline's expert set-radius mutation. Panics on negative
// radii or out-of-range indices, mirroring the engine's contract.
func (m *Maintainer) SetRadius(idx int, r float64) float64 {
	if idx < 0 || idx >= len(m.points()) {
		panic(fmt.Sprintf("dynamic: set-radius index %d out of range", idx))
	}
	sp := obs.Start("dynamic.set-radius")
	defer sp.End()
	if obs.On() {
		obsEvents.Inc()
	}
	m.events++
	old := m.eng.SetRadius(idx, r)
	m.touch(m.points()[idx], math.Max(old, r))
	m.fire(Event{Kind: EventSetRadius, Index: idx, Max: m.eng.Max()})
	return old
}

// Anneal runs the simulated-annealing optimizer over the current instance
// for iters iterations (seeded deterministically by seed) and adopts the
// resulting radius assignment and topology wholesale, resetting the drift
// baseline. It returns the new maintained I(G'). Instances with fewer
// than two nodes are a no-op.
func (m *Maintainer) Anneal(seed int64, iters int) int {
	sp := obs.Start("dynamic.anneal")
	defer sp.End()
	if obs.On() {
		obsEvents.Inc()
	}
	m.events++
	if len(m.points()) >= 2 && iters > 0 {
		// Optimize against the session's own measure: a physical-model
		// maintainer anneals the SINR objective, not the disk counts.
		res := opt.AnnealWith(m.factory, m.points(), rand.New(rand.NewSource(seed)), iters)
		m.eng.BatchSet(res.Radii, 0)
		m.topo = res.Topology
		m.baseline = m.eng.Max()
	}
	m.fire(Event{Kind: EventAnneal, Index: -1, Max: m.eng.Max()})
	return m.eng.Max()
}

// Move relocates node idx to p, preserving its index — the serving
// layer's waypoint-churn primitive. Semantically it matches Remove
// followed by Insert at the new position (old edges drop, former
// neighbors shrink to their remaining farthest neighbor, the node
// re-links to its nearest in-range neighbor), but costs only the touched
// disks: no index shift, no topology copy, and — under BeginBatch — no
// per-operation connectivity pass.
func (m *Maintainer) Move(idx int, p geom.Point) {
	if idx < 0 || idx >= len(m.points()) {
		panic(fmt.Sprintf("dynamic: move index %d out of range", idx))
	}
	sp := obs.Start("dynamic.move")
	defer sp.End()
	if obs.On() {
		obsEvents.Inc()
	}
	m.events++
	// The disk leaves its old position: everyone it covered there is
	// dirty, capped by the node's former radius.
	m.touch(m.points()[idx], m.eng.Radius(idx))
	// Former neighbors shrink exactly as on Remove.
	nbrs := append([]int(nil), m.topo.Neighbors(idx)...)
	for _, v := range nbrs {
		m.topo.RemoveEdge(idx, v)
	}
	for _, v := range nbrs {
		far := 0.0
		for _, w := range m.topo.Neighbors(v) {
			if d, ok := m.topo.EdgeWeight(v, w); ok && d > far {
				far = d
			}
		}
		old := m.eng.SetRadius(v, far)
		m.touch(m.points()[v], math.Max(old, far))
	}
	// Silence before relocating so the engine's move pays only the
	// receiver-side recount, then re-link like an arrival.
	m.eng.SetRadius(idx, 0)
	m.eng.MovePoint(idx, p)
	if best, bestD := m.eng.Grid().Nearest(idx); best >= 0 && bestD <= udg.Radius*(1+1e-9) {
		m.topo.AddEdge(idx, best, bestD)
		m.eng.SetRadius(idx, bestD)
		old := m.eng.GrowTo(best, bestD)
		m.touch(m.points()[best], math.Max(old, bestD))
	}
	m.touch(p, m.eng.Radius(idx))
	m.repairConnectivity()
	m.fire(Event{Kind: EventMove, Index: idx, Max: m.eng.Max()})
	m.maybeRebuild()
}

// BeginBatch defers connectivity repair and drift control until the
// matching EndBatch, so a batch of k mutations pays one UDG-sized
// connectivity pass instead of k (the passes were the dominant cost of
// sustained churn: each is O(n) even when the operation itself touches a
// constant-size neighborhood). Interference bookkeeping stays exact
// throughout — only reconnection and rebuild decisions are postponed, so
// mid-batch the maintained topology may transiently disagree with the
// UDG's component structure. With RebuildFactor <= 1 ("rebuild every
// event") a deferred batch rebuilds once, at EndBatch. Batches do not
// nest.
func (m *Maintainer) BeginBatch() {
	if m.deferring {
		panic("dynamic: nested BeginBatch")
	}
	m.deferring = true
}

// EndBatch runs the connectivity repair and drift control deferred since
// BeginBatch. When the repair ran, the topology's components are known
// to match the UDG's (repairConnectivity loops until they do), so the
// drift check skips the redundant connectivity probe and tests only the
// interference bound.
func (m *Maintainer) EndBatch() {
	if !m.deferring {
		panic("dynamic: EndBatch without BeginBatch")
	}
	m.deferring = false
	repaired := m.needRepair
	m.needRepair = false
	if repaired {
		m.repairConnectivity()
	}
	if !m.needCheck {
		return
	}
	m.needCheck = false
	if m.RebuildFactor <= 1 {
		m.rebuild(m.points())
		return
	}
	if float64(m.eng.Max()) > m.RebuildFactor*float64(m.baseline)+1e-9 ||
		(!repaired && !m.connectivityOK()) {
		m.rebuild(m.points())
	}
}

// repairConnectivity reconnects topology components that the UDG still
// joins, using the shortest available crossing edge per component pair
// (iterated until the component structures agree). Every repair edge
// grows its endpoints' radii through the evaluator, keeping the
// maintained interference exact. Under BeginBatch the repair is latched
// for EndBatch instead of running.
func (m *Maintainer) repairConnectivity() {
	if m.deferring {
		m.needRepair = true
		return
	}
	tl, tk := m.topo.Components()
	if tk == 1 {
		// The topology is a subgraph of the UDG, so a connected topology
		// already matches the UDG partition — no UDG build needed.
		return
	}
	// Repeatedly joining the globally shortest UDG edge that crosses two
	// topology components is Kruskal's algorithm restricted to crossing
	// edges: sort them once and merge with a union-find over the
	// component labels. The edge set chosen is identical to the iterated
	// global-minimum greedy (same (W, U, V) tie-break), without the
	// per-edge O(n + m) relabeling that dominated batch-churn profiles.
	//
	// The crossing edges are enumerated without materializing the UDG:
	// every crossing edge has at least one endpoint outside the largest
	// topology component (two giant-labeled endpoints cannot cross), so
	// only fragment nodes need a disk query against the engine's live
	// grid — under churn that is a few nodes, not n, and building the
	// full UDG graph here dominated the batch pipeline's CPU.
	size := make([]int, tk)
	for _, l := range tl {
		size[l]++
	}
	giant := 0
	for l, s := range size {
		if s > size[giant] {
			giant = l
		}
	}
	pts := m.points()
	grid := m.eng.Grid()
	var cross []graph.Edge
	var buf []int
	for u, lu := range tl {
		if lu == giant {
			continue
		}
		buf = grid.Within(pts[u], udg.Radius, buf[:0])
		for _, v := range buf {
			if v == u || tl[v] == lu {
				continue
			}
			if tl[v] != giant && v < u {
				continue // fragment–fragment pair: emitted once, at the lower index
			}
			a, b := u, v
			if b < a {
				a, b = b, a
			}
			cross = append(cross, graph.Edge{U: a, V: b, W: pts[u].Dist(pts[v])})
		}
	}
	if len(cross) == 0 {
		return // partitions already agree (UDG is disconnected the same way)
	}
	sort.Slice(cross, func(i, j int) bool {
		a, b := cross[i], cross[j]
		if a.W != b.W {
			return a.W < b.W
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	parent := make([]int, tk)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range cross {
		ru, rv := find(tl[e.U]), find(tl[e.V])
		if ru == rv {
			continue
		}
		parent[ru] = rv
		m.topo.AddEdge(e.U, e.V, e.W)
		oldU := m.eng.GrowTo(e.U, e.W)
		oldV := m.eng.GrowTo(e.V, e.W)
		m.touch(m.points()[e.U], math.Max(oldU, e.W))
		m.touch(m.points()[e.V], math.Max(oldV, e.W))
		if obs.On() {
			obsRepairEdges.Inc()
		}
	}
}

func (m *Maintainer) maybeRebuild() {
	if m.deferring {
		m.needCheck = true
		return
	}
	if m.RebuildFactor <= 1 {
		m.rebuild(m.points())
		return
	}
	if float64(m.eng.Max()) > m.RebuildFactor*float64(m.baseline)+1e-9 || !m.connectivityOK() {
		m.rebuild(m.points())
	}
}

// connectivityOK checks the maintained topology still matches the UDG's
// component structure.
func (m *Maintainer) connectivityOK() bool {
	return graph.SameComponents(udg.Build(m.points()), m.topo)
}
