// Package dynamic maintains a low-interference topology online, under
// node arrivals and departures, without rebuilding from scratch on every
// event — the engineering payoff of the measure's robustness property.
//
// The maintainer applies cheap local rules per event and keeps the exact
// interference bookkeeping incrementally:
//
//   - Arrival: the newcomer links to its nearest neighbor (one new edge;
//     the nearest neighbor raises its radius just enough to answer).
//     Receiver-centric interference of any existing node grows by at
//     most 1 from the newcomer's own disk, plus whatever the single
//     answering radius increase adds — a local, bounded change, exactly
//     the behavior Figure 1 shows the sender-centric measure lacks.
//   - Departure: the node's edges vanish; its former neighbors shrink
//     their radii to their remaining farthest neighbors. If the victim
//     was a cut vertex of the maintained topology, the maintainer
//     reconnects the pieces with the shortest available UDG edges
//     between them (a local repair, not a rebuild).
//
// Every event is an evaluator delta: a persistent core.Evaluator carries
// the point set, the per-node interference vector, and I(G') across
// events, so an arrival costs the newcomer's disk query plus the
// answering node's annulus, and a departure costs the shrinking annuli
// plus an O(n) index shift — never a full re-evaluation. The maintained
// I(G') is therefore O(1) to read after every event.
//
// Drift control: local rules accumulate suboptimality, so the maintainer
// tracks I(G') incrementally and rebuilds with the greedy constructor
// when the maintained value exceeds RebuildFactor times the last
// rebuild's value. The X8-style test measures how rarely that fires.
package dynamic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/udg"
)

// Maintainer holds the evolving instance and topology.
type Maintainer struct {
	// RebuildFactor triggers a full greedy rebuild when the maintained
	// interference exceeds factor × the post-rebuild baseline. <= 1
	// disables maintenance (rebuild every event); 0 means the default 2.
	RebuildFactor float64

	ev       *core.Evaluator
	topo     *graph.Graph
	baseline int // I(G') right after the last rebuild
	rebuilds int
	events   int
}

// New starts a maintainer over the initial instance, built with the
// greedy constructor.
func New(pts []geom.Point, rebuildFactor float64) *Maintainer {
	m := &Maintainer{RebuildFactor: rebuildFactor}
	if m.RebuildFactor == 0 {
		m.RebuildFactor = 2
	}
	m.rebuild(pts)
	return m
}

// points returns the current instance (shared with the evaluator; treat
// as read-only).
func (m *Maintainer) points() []geom.Point { return m.ev.Points() }

// Points returns a snapshot of the current instance.
func (m *Maintainer) Points() []geom.Point {
	return append([]geom.Point(nil), m.points()...)
}

// Topology returns the maintained topology (shared; treat as read-only).
func (m *Maintainer) Topology() *graph.Graph { return m.topo }

// Interference returns the maintained I(G'), read from the incremental
// evaluator in O(1).
func (m *Maintainer) Interference() int { return m.ev.Max() }

// Rebuilds returns how many full rebuilds have happened (including the
// initial construction).
func (m *Maintainer) Rebuilds() int { return m.rebuilds }

// Events returns how many arrivals/departures were applied.
func (m *Maintainer) Events() int { return m.events }

func (m *Maintainer) rebuild(pts []geom.Point) {
	m.topo = topology.GreedyMinI(pts)
	m.ev = core.NewEvaluator(pts)
	m.ev.BatchSet(core.Radii(pts, m.topo), 0)
	m.baseline = m.ev.Max()
	m.rebuilds++
}

// Insert adds a node and returns its index. The newcomer links to its
// nearest in-range neighbor (if any); out-of-range newcomers start a new
// component, which is correct — the UDG is disconnected there too.
func (m *Maintainer) Insert(p geom.Point) int {
	m.events++
	idx := m.ev.AddPoint(p)
	grown := graph.New(idx + 1)
	for _, e := range m.topo.Edges() {
		grown.AddEdge(e.U, e.V, e.W)
	}
	m.topo = grown
	// Nearest in-range neighbor, straight off the evaluator's grid.
	if best, bestD := m.ev.Grid().Nearest(idx); best >= 0 && bestD <= udg.Radius*(1+1e-9) {
		m.topo.AddEdge(idx, best, bestD)
		m.ev.SetRadius(idx, bestD)
		m.ev.GrowTo(best, bestD)
	}
	m.maybeRebuild()
	return idx
}

// Remove deletes the node at index idx (indices above shift down by one,
// matching slice semantics). It panics on out-of-range indices.
func (m *Maintainer) Remove(idx int) {
	if idx < 0 || idx >= len(m.points()) {
		panic(fmt.Sprintf("dynamic: remove index %d out of range", idx))
	}
	m.events++
	// The victim's former neighbors shrink to their remaining farthest
	// neighbor; each shrink is one annulus update.
	for _, v := range m.topo.Neighbors(idx) {
		far := 0.0
		for _, w := range m.topo.Neighbors(v) {
			if w == idx {
				continue
			}
			if d, ok := m.topo.EdgeWeight(v, w); ok && d > far {
				far = d
			}
		}
		m.ev.SetRadius(v, far)
	}
	m.ev.RemovePoint(idx)
	// Rebuild the topology over the surviving nodes with edges remapped.
	remap := func(v int) int {
		if v > idx {
			return v - 1
		}
		return v
	}
	ng := graph.New(len(m.points()))
	for _, e := range m.topo.Edges() {
		if e.U == idx || e.V == idx {
			continue
		}
		ng.AddEdge(remap(e.U), remap(e.V), e.W)
	}
	m.topo = ng
	m.repairConnectivity()
	m.maybeRebuild()
}

// repairConnectivity reconnects topology components that the UDG still
// joins, using the shortest available crossing edge per component pair
// (iterated until the component structures agree). Every repair edge
// grows its endpoints' radii through the evaluator, keeping the
// maintained interference exact.
func (m *Maintainer) repairConnectivity() {
	base := udg.Build(m.points())
	for {
		tl, tk := m.topo.Components()
		_, bk := base.Components()
		if tk == bk {
			// Same number of components; since the topology is a subgraph
			// of the UDG, equal counts mean equal partitions.
			return
		}
		// Find the shortest UDG edge joining two topology components.
		var best graph.Edge
		found := false
		for _, e := range base.Edges() {
			if tl[e.U] == tl[e.V] {
				continue
			}
			if !found || e.W < best.W || (e.W == best.W && (e.U < best.U || (e.U == best.U && e.V < best.V))) {
				best, found = e, true
			}
		}
		if !found {
			return // nothing joinable (shouldn't happen when counts differ)
		}
		m.topo.AddEdge(best.U, best.V, best.W)
		m.ev.GrowTo(best.U, best.W)
		m.ev.GrowTo(best.V, best.W)
	}
}

func (m *Maintainer) maybeRebuild() {
	if m.RebuildFactor <= 1 {
		m.rebuild(m.points())
		return
	}
	if float64(m.ev.Max()) > m.RebuildFactor*float64(m.baseline)+1e-9 || !m.connectivityOK() {
		m.rebuild(m.points())
	}
}

// connectivityOK checks the maintained topology still matches the UDG's
// component structure.
func (m *Maintainer) connectivityOK() bool {
	return graph.SameComponents(udg.Build(m.points()), m.topo)
}
