package dynamic_test

import (
	"math/rand"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/oracle"
)

// checkMaintained cross-checks every maintained observable against the
// naive oracles: exact interference of the maintained topology, radii
// realizability, and the UDG component partition.
func checkMaintained(t *testing.T, m *dynamic.Maintainer, step int, what string) {
	t.Helper()
	cur := m.Points()
	topo := m.Topology()
	if got, want := m.Interference(), oracle.InterferenceOf(cur, topo); got != want {
		t.Fatalf("step %d (%s, n=%d): maintained I=%d, full recompute %d", step, what, len(cur), got, want)
	}
	if err := oracle.Check(cur, topo); err != nil {
		t.Fatalf("step %d (%s): %v", step, what, err)
	}
	wantLabel, wantK := oracle.Components(cur)
	gotLabel, gotK := topo.Components()
	if gotK != wantK {
		t.Fatalf("step %d (%s): maintained topology has %d components, UDG has %d", step, what, gotK, wantK)
	}
	for i := range gotLabel {
		for j := i + 1; j < len(gotLabel); j++ {
			if (gotLabel[i] == gotLabel[j]) != (wantLabel[i] == wantLabel[j]) {
				t.Fatalf("step %d (%s): partition differs from UDG at (%d,%d)", step, what, i, j)
			}
		}
	}
}

// TestMaintainerMoveAgainstOracle drives waypoint-style relocations
// (mixed with churn) through Maintainer.Move and cross-checks the full
// maintained state after every event — Move must be indistinguishable
// from Remove+Insert to every oracle.
func TestMaintainerMoveAgainstOracle(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seed   int64
		factor float64
	}{
		{"default-factor", 11, 0},
		{"lazy-rebuilds", 12, 8},
		{"rebuild-every-event", 13, 1},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(tc.seed))
			m := dynamic.New(gen.UniformSquare(rng, 20, 2), tc.factor)
			for step := 1; step <= 80; step++ {
				n := len(m.Points())
				switch roll := rng.Intn(10); {
				case roll < 6:
					p := geom.Pt(rng.Float64()*2, rng.Float64()*2)
					if rng.Intn(8) == 0 {
						p = p.Add(geom.Pt(10, 10)) // far hop: breaks/forms components
					}
					m.Move(rng.Intn(n), p)
					checkMaintained(t, m, step, "move")
				case roll < 8:
					m.Insert(geom.Pt(rng.Float64()*2, rng.Float64()*2))
					checkMaintained(t, m, step, "insert")
				default:
					if n > 4 {
						m.Remove(rng.Intn(n))
						checkMaintained(t, m, step, "remove")
					}
				}
			}
		})
	}
}

// TestMaintainerBatchDeferral drives the same mixed churn inside
// BeginBatch/EndBatch windows: mid-batch only the interference
// bookkeeping must stay exact (connectivity repair is deferred by
// design); at every EndBatch the whole state must pass the oracles
// again.
func TestMaintainerBatchDeferral(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := dynamic.New(gen.UniformSquare(rng, 24, 2), 0)
	for batch := 0; batch < 40; batch++ {
		m.BeginBatch()
		for op := 0; op < 6; op++ {
			n := len(m.Points())
			switch roll := rng.Intn(10); {
			case roll < 6:
				m.Move(rng.Intn(n), geom.Pt(rng.Float64()*2, rng.Float64()*2))
			case roll < 8:
				m.Insert(geom.Pt(rng.Float64()*2, rng.Float64()*2))
			default:
				if n > 4 {
					m.Remove(rng.Intn(n))
				}
			}
			// Mid-batch: interference must already be exact for the
			// maintained radii, even though connectivity repair waits.
			cur := m.Points()
			radii := make([]float64, len(cur))
			for i := range radii {
				radii[i] = m.Engine().Radius(i)
			}
			if got, want := m.Interference(), oracle.Interference(cur, radii).Max(); got != want {
				t.Fatalf("batch %d op %d: maintained I=%d, recompute %d", batch, op, got, want)
			}
		}
		m.EndBatch()
		checkMaintained(t, m, batch, "end-batch")
	}
}
