package dynamic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/udg"
)

func TestMaintainerChurnInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1101))
	m := New(gen.UniformSquare(rng, 40, 2), 2)
	for step := 0; step < 200; step++ {
		if rng.Float64() < 0.5 || len(m.Points()) < 5 {
			m.Insert(geom.Pt(rng.Float64()*2, rng.Float64()*2))
		} else {
			m.Remove(rng.Intn(len(m.Points())))
		}
		if step%17 == 0 {
			pts := m.Points()
			base := udg.Build(pts)
			if !graph.SameComponents(base, m.Topology()) {
				t.Fatalf("step %d: connectivity diverged from UDG", step)
			}
		}
	}
	// Bounded drift: the maintained interference stays within the rebuild
	// factor of a fresh greedy build (plus one event's slack).
	pts := m.Points()
	fresh := core.Interference(pts, topology.GreedyMinI(pts)).Max()
	if cur := m.Interference(); float64(cur) > 2*float64(fresh)+4 {
		t.Errorf("maintained I=%d too far above fresh rebuild %d", cur, fresh)
	}
}

func TestMaintainerRebuildsAreRare(t *testing.T) {
	rng := rand.New(rand.NewSource(1102))
	m := New(gen.UniformSquare(rng, 60, 2), 2)
	for step := 0; step < 300; step++ {
		if rng.Float64() < 0.5 {
			m.Insert(geom.Pt(rng.Float64()*2, rng.Float64()*2))
		} else if len(m.Points()) > 10 {
			m.Remove(rng.Intn(len(m.Points())))
		}
	}
	// The whole point: far fewer rebuilds than events.
	if m.Rebuilds()*4 > m.Events() {
		t.Errorf("rebuilds %d of %d events — maintenance isn't amortizing", m.Rebuilds(), m.Events())
	}
}

func TestMaintainerRebuildEveryEventMode(t *testing.T) {
	rng := rand.New(rand.NewSource(1103))
	m := New(gen.UniformSquare(rng, 20, 1.5), 1) // factor <= 1: rebuild always
	for i := 0; i < 10; i++ {
		m.Insert(geom.Pt(rng.Float64()*1.5, rng.Float64()*1.5))
	}
	if m.Rebuilds() != 11 { // initial + each event
		t.Errorf("rebuilds = %d, want 11", m.Rebuilds())
	}
}

func TestMaintainerCutVertexRepair(t *testing.T) {
	// A path a—b—c where b is the articulation point; removing b must
	// reconnect a and c if the UDG still allows it.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(1.0, 0)}
	m := New(pts, 100) // huge factor: no interference-triggered rebuilds
	m.Remove(1)
	if got := len(m.Points()); got != 2 {
		t.Fatalf("points = %d", got)
	}
	// a and c are at distance 1.0: still UDG-connected; repair must link
	// them.
	if !m.Topology().Connected() {
		t.Error("cut-vertex removal not repaired")
	}
}

func TestMaintainerDisconnectionAccepted(t *testing.T) {
	// If the UDG itself splits, the maintainer must NOT invent edges.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.9, 0), geom.Pt(1.8, 0)}
	m := New(pts, 100)
	m.Remove(1) // survivors at distance 1.8: disconnected UDG
	_, k := m.Topology().Components()
	if k != 2 {
		t.Errorf("components = %d, want 2", k)
	}
}

func TestMaintainerInsertOutOfRange(t *testing.T) {
	m := New([]geom.Point{geom.Pt(0, 0)}, 100)
	idx := m.Insert(geom.Pt(5, 5))
	if m.Topology().Degree(idx) != 0 {
		t.Error("out-of-range newcomer must stay isolated")
	}
}

func TestMaintainerRemovePanicsOutOfRange(t *testing.T) {
	m := New([]geom.Point{geom.Pt(0, 0)}, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Remove(5)
}

func BenchmarkMaintainerChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(1104))
	m := New(gen.UniformSquare(rng, 100, 2.5), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			m.Insert(geom.Pt(rng.Float64()*2.5, rng.Float64()*2.5))
		} else if len(m.Points()) > 50 {
			m.Remove(rng.Intn(len(m.Points())))
		}
	}
}

func TestMaintainerEvaluatorStaysExact(t *testing.T) {
	// The maintainer never re-evaluates interference from scratch between
	// rebuilds — every event is an evaluator delta. This churn drives the
	// maintainer and re-derives, at every step, both the radius assignment
	// implied by the topology and the interference it induces, so any
	// drift in the incremental bookkeeping surfaces immediately.
	rng := rand.New(rand.NewSource(1105))
	m := New(gen.UniformSquare(rng, 30, 2), 3)
	for step := 0; step < 150; step++ {
		if rng.Float64() < 0.5 || len(m.Points()) < 5 {
			m.Insert(geom.Pt(rng.Float64()*2, rng.Float64()*2))
		} else {
			m.Remove(rng.Intn(len(m.Points())))
		}
		pts := m.Points()
		wantRadii := core.Radii(pts, m.Topology())
		for u, r := range m.Engine().ExportState(nil).Radii {
			if r != wantRadii[u] {
				t.Fatalf("step %d: radius[%d] = %v, topology implies %v", step, u, r, wantRadii[u])
			}
		}
		if want := core.InterferenceRadii(pts, wantRadii).Max(); m.Interference() != want {
			t.Fatalf("step %d: maintained I = %d, recomputed %d", step, m.Interference(), want)
		}
	}
}
