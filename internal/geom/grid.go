package geom

import "math"

// Grid is a uniform-cell spatial index over a fixed point set. It supports
// the two queries the interference machinery needs:
//
//   - Within(c, r): indices of all points within distance r of c, and
//   - Nearest(i): the nearest other point to point i.
//
// Cells have side length equal to the construction cell size; a radius-r
// query touches ⌈r/cell⌉+1 cells per axis. For the Unit Disk Graphs used
// throughout the paper, cell = 1 makes neighbor enumeration near-linear in
// output size.
type Grid struct {
	pts   []Point
	cell  float64
	minX  float64
	minY  float64
	nx    int
	ny    int
	cells [][]int32 // cells[cy*nx+cx] lists point indices
}

// NewGrid indexes pts with the given cell size. The points slice is
// retained (not copied); callers must not mutate it while the grid is in
// use. cell must be positive.
func NewGrid(pts []Point, cell float64) *Grid {
	if cell <= 0 || math.IsNaN(cell) || math.IsInf(cell, 0) {
		panic("geom: NewGrid with non-positive cell size")
	}
	g := &Grid{pts: pts, cell: cell}
	if len(pts) == 0 {
		g.nx, g.ny = 1, 1
		g.cells = make([][]int32, 1)
		return g
	}
	b := Bounds(pts)
	g.minX, g.minY = b.Min.X, b.Min.Y
	g.nx = int(math.Floor(b.Width()/cell)) + 1
	g.ny = int(math.Floor(b.Height()/cell)) + 1
	g.cells = make([][]int32, g.nx*g.ny)
	for i, p := range pts {
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], int32(i))
	}
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Points returns the indexed point slice (shared, not a copy).
func (g *Grid) Points() []Point { return g.pts }

func (g *Grid) cellOf(p Point) int {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// Within appends to dst the indices of every indexed point p with
// c.Dist(p) <= r (boundary-inclusive, with the same epsilon tolerance as
// InDisk) and returns the extended slice. The center point itself is
// included when it is part of the indexed set and within range — callers
// that need to exclude a self index filter it out.
func (g *Grid) Within(c Point, r float64, dst []int) []int {
	if r < 0 || len(g.pts) == 0 {
		return dst
	}
	r2 := r * r * diskGrow
	cx0 := int(math.Floor((c.X - r - g.minX) / g.cell))
	cx1 := int(math.Floor((c.X + r - g.minX) / g.cell))
	cy0 := int(math.Floor((c.Y - r - g.minY) / g.cell))
	cy1 := int(math.Floor((c.Y + r - g.minY) / g.cell))
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx1 >= g.nx {
		cx1 = g.nx - 1
	}
	if cy1 >= g.ny {
		cy1 = g.ny - 1
	}
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, idx := range g.cells[row+cx] {
				if c.Dist2(g.pts[idx]) <= r2 {
					dst = append(dst, int(idx))
				}
			}
		}
	}
	return dst
}

// CountWithin returns the number of indexed points within distance r of c.
// It is Within without the allocation, used on the hot path of
// interference evaluation.
func (g *Grid) CountWithin(c Point, r float64) int {
	if r < 0 || len(g.pts) == 0 {
		return 0
	}
	r2 := r * r * diskGrow
	cx0 := int(math.Floor((c.X - r - g.minX) / g.cell))
	cx1 := int(math.Floor((c.X + r - g.minX) / g.cell))
	cy0 := int(math.Floor((c.Y - r - g.minY) / g.cell))
	cy1 := int(math.Floor((c.Y + r - g.minY) / g.cell))
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx1 >= g.nx {
		cx1 = g.nx - 1
	}
	if cy1 >= g.ny {
		cy1 = g.ny - 1
	}
	n := 0
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, idx := range g.cells[row+cx] {
				if c.Dist2(g.pts[idx]) <= r2 {
					n++
				}
			}
		}
	}
	return n
}

// Nearest returns the index of the nearest indexed point to point i other
// than i itself, together with the distance. It returns (-1, +Inf) when
// the set has fewer than two points. Ties are broken toward the smaller
// index so results are deterministic.
func (g *Grid) Nearest(i int) (int, float64) {
	if len(g.pts) < 2 {
		return -1, math.Inf(1)
	}
	p := g.pts[i]
	best, bestD2 := -1, math.Inf(1)
	// Expand rings of cells outward until the best candidate distance is
	// certainly smaller than anything in an unexplored ring.
	pcx := int((p.X - g.minX) / g.cell)
	pcy := int((p.Y - g.minY) / g.cell)
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		if best >= 0 {
			// Any point in a cell of ring `ring` is at distance at least
			// (ring-1)*cell from p; stop once that exceeds the best found.
			lo := float64(ring-1) * g.cell
			if lo > 0 && lo*lo > bestD2 {
				break
			}
		}
		scanned := false
		for cy := pcy - ring; cy <= pcy+ring; cy++ {
			if cy < 0 || cy >= g.ny {
				continue
			}
			for cx := pcx - ring; cx <= pcx+ring; cx++ {
				if cx < 0 || cx >= g.nx {
					continue
				}
				// Only the ring's border cells (interior handled earlier).
				if ring > 0 && cx != pcx-ring && cx != pcx+ring && cy != pcy-ring && cy != pcy+ring {
					continue
				}
				scanned = true
				for _, idx := range g.cells[cy*g.nx+cx] {
					j := int(idx)
					if j == i {
						continue
					}
					d2 := p.Dist2(g.pts[j])
					if d2 < bestD2 || (d2 == bestD2 && j < best) {
						best, bestD2 = j, d2
					}
				}
			}
		}
		if !scanned && best >= 0 {
			break
		}
	}
	return best, math.Sqrt(bestD2)
}

// NearestBrute is the O(n) reference implementation of Nearest, kept for
// cross-validation in tests.
func NearestBrute(pts []Point, i int) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	for j, q := range pts {
		if j == i {
			continue
		}
		d2 := pts[i].Dist2(q)
		if d2 < bestD2 || (d2 == bestD2 && j < best) {
			best, bestD2 = j, d2
		}
	}
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD2)
}

// WithinBrute is the O(n) reference implementation of Within.
func WithinBrute(pts []Point, c Point, r float64, dst []int) []int {
	r2 := r * r * diskGrow
	for j, q := range pts {
		if c.Dist2(q) <= r2 {
			dst = append(dst, j)
		}
	}
	return dst
}
