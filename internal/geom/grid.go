package geom

import "math"

// Grid is a uniform-cell spatial index over a fixed point set. It supports
// the two queries the interference machinery needs:
//
//   - Within(c, r): indices of all points within distance r of c, and
//   - Nearest(i): the nearest other point to point i.
//
// Cells have side length equal to the construction cell size; a radius-r
// query touches ⌈r/cell⌉+1 cells per axis. For the Unit Disk Graphs used
// throughout the paper, cell = 1 makes neighbor enumeration near-linear in
// output size.
type Grid struct {
	pts   []Point
	cell  float64
	minX  float64
	minY  float64
	nx    int
	ny    int
	cells [][]int32 // cells[cy*nx+cx] lists point indices
	// strays records that Add clamped at least one out-of-bounds point
	// into a border cell. Border cells then hold points outside their
	// rectangle, so rectangle-based cell pruning must skip them.
	strays bool
}

// NewGrid indexes pts with the given cell size. The points slice is
// retained (not copied); callers must not mutate it while the grid is in
// use. cell must be positive.
func NewGrid(pts []Point, cell float64) *Grid {
	if cell <= 0 || math.IsNaN(cell) || math.IsInf(cell, 0) {
		panic("geom: NewGrid with non-positive cell size")
	}
	g := &Grid{pts: pts, cell: cell}
	if len(pts) == 0 {
		g.nx, g.ny = 1, 1
		g.cells = make([][]int32, 1)
		return g
	}
	b := Bounds(pts)
	g.minX, g.minY = b.Min.X, b.Min.Y
	g.nx = int(math.Floor(b.Width()/cell)) + 1
	g.ny = int(math.Floor(b.Height()/cell)) + 1
	g.cells = make([][]int32, g.nx*g.ny)
	for i, p := range pts {
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], int32(i))
	}
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Points returns the indexed point slice (shared, not a copy).
func (g *Grid) Points() []Point { return g.pts }

// clampRange clamps the inclusive cell-coordinate range [lo, hi] into
// [0, n-1]. A range lying entirely outside the grid projects onto the
// nearest border line instead of emptying: border cells hold clamped
// out-of-bounds strays, so a query centered beyond the bounding box must
// still scan them (the distance test filters false candidates).
func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	} else if lo >= n {
		lo = n - 1
	}
	if hi >= n {
		hi = n - 1
	} else if hi < 0 {
		hi = 0
	}
	return lo, hi
}

func (g *Grid) cellOf(p Point) int {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// Within appends to dst the indices of every indexed point p with
// c.Dist(p) <= r (boundary-inclusive, with the same epsilon tolerance as
// InDisk) and returns the extended slice. The center point itself is
// included when it is part of the indexed set and within range — callers
// that need to exclude a self index filter it out.
func (g *Grid) Within(c Point, r float64, dst []int) []int {
	if r < 0 || len(g.pts) == 0 {
		return dst
	}
	r2 := r * r * diskGrow
	cx0, cx1 := clampRange(
		int(math.Floor((c.X-r-g.minX)/g.cell)),
		int(math.Floor((c.X+r-g.minX)/g.cell)), g.nx)
	cy0, cy1 := clampRange(
		int(math.Floor((c.Y-r-g.minY)/g.cell)),
		int(math.Floor((c.Y+r-g.minY)/g.cell)), g.ny)
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, idx := range g.cells[row+cx] {
				if c.Dist2(g.pts[idx]) <= r2 {
					dst = append(dst, int(idx))
				}
			}
		}
	}
	return dst
}

// WithinAnnulus appends to dst the indices of every indexed point p in
// the closed annulus between radii lo < hi around c: p satisfies the
// Within test for hi but not the Within test for lo (so the union of
// WithinAnnulus(c, lo, hi) and Within(c, lo) is exactly Within(c, hi),
// with identical boundary epsilons). A non-positive lo degenerates to
// Within(c, hi) — the inner disk is empty, matching the convention that
// a silent node covers nothing.
//
// This is the query behind O(|annulus|) incremental radius updates:
// cells wholly inside the inner disk or wholly outside the outer disk
// are skipped without touching their points.
func (g *Grid) WithinAnnulus(c Point, lo, hi float64, dst []int) []int {
	if hi < 0 || len(g.pts) == 0 {
		return dst
	}
	hi2 := hi * hi * diskGrow
	lo2 := lo * lo * diskGrow
	cx0, cx1 := clampRange(
		int(math.Floor((c.X-hi-g.minX)/g.cell)),
		int(math.Floor((c.X+hi-g.minX)/g.cell)), g.nx)
	cy0, cy1 := clampRange(
		int(math.Floor((c.Y-hi-g.minY)/g.cell)),
		int(math.Floor((c.Y+hi-g.minY)/g.cell)), g.ny)
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.nx
		// Rectangle bounds of this cell row on the y axis.
		ry0 := g.minY + float64(cy)*g.cell
		ry1 := ry0 + g.cell
		for cx := cx0; cx <= cx1; cx++ {
			pts := g.cells[row+cx]
			if len(pts) == 0 {
				continue
			}
			// Cell-level pruning by rectangle distance bounds. Border
			// cells of a grid with strays hold points outside their
			// rectangle, so the bounds don't apply there.
			if !g.strays || (cx > 0 && cx < g.nx-1 && cy > 0 && cy < g.ny-1) {
				rx0 := g.minX + float64(cx)*g.cell
				rx1 := rx0 + g.cell
				nearD2, farD2 := rectDist2(c, rx0, ry0, rx1, ry1)
				if nearD2 > hi2 {
					continue // every point beyond the outer disk
				}
				if lo > 0 && farD2 <= lo*lo {
					// Every point is within lo of c, hence inside the
					// inner disk under the (more permissive) epsilon test.
					continue
				}
			}
			for _, idx := range pts {
				d2 := c.Dist2(g.pts[idx])
				if d2 > hi2 {
					continue
				}
				if lo > 0 && d2 <= lo2 {
					continue // inside both disks
				}
				dst = append(dst, int(idx))
			}
		}
	}
	return dst
}

// rectDist2 returns the squared distances from c to the nearest and
// farthest points of the axis-aligned rectangle [x0,x1]×[y0,y1].
func rectDist2(c Point, x0, y0, x1, y1 float64) (near, far float64) {
	var ndx, ndy float64
	if c.X < x0 {
		ndx = x0 - c.X
	} else if c.X > x1 {
		ndx = c.X - x1
	}
	if c.Y < y0 {
		ndy = y0 - c.Y
	} else if c.Y > y1 {
		ndy = c.Y - y1
	}
	fdx := c.X - x0
	if d := x1 - c.X; d > fdx {
		fdx = d
	}
	fdy := c.Y - y0
	if d := y1 - c.Y; d > fdy {
		fdy = d
	}
	return ndx*ndx + ndy*ndy, fdx*fdx + fdy*fdy
}

// WithinAnnulusBrute is the O(n) reference implementation of
// WithinAnnulus, kept for cross-validation in tests.
func WithinAnnulusBrute(pts []Point, c Point, lo, hi float64, dst []int) []int {
	hi2 := hi * hi * diskGrow
	lo2 := lo * lo * diskGrow
	for j, q := range pts {
		d2 := c.Dist2(q)
		if d2 > hi2 || (lo > 0 && d2 <= lo2) {
			continue
		}
		dst = append(dst, j)
	}
	return dst
}

// Add appends p to the indexed set and returns its index. Points outside
// the construction bounding box are clamped into border cells; queries
// remain correct (the clamp is monotone, so a clamped point's cell is
// always inside any query's clamped cell range that covers the point),
// at the price of disabling rectangle pruning for border cells.
//
// The grid's point slice may be reallocated by the append; callers
// sharing it must re-fetch it via Points.
func (g *Grid) Add(p Point) int {
	g.pts = append(g.pts, p)
	idx := len(g.pts) - 1
	if p.X < g.minX || p.X > g.minX+float64(g.nx)*g.cell ||
		p.Y < g.minY || p.Y > g.minY+float64(g.ny)*g.cell {
		g.strays = true
	}
	c := g.cellOf(p)
	g.cells[c] = append(g.cells[c], int32(idx))
	return idx
}

// Move relocates the point at index idx in place: same index, new
// position. Destinations outside the construction bounding box clamp
// into border cells exactly as Add does. Cost is one bucket scan of the
// old cell — there is no index shift, which is what makes it the right
// primitive under sustained waypoint churn (Remove+Add would pay O(n)
// per relocation).
func (g *Grid) Move(idx int, p Point) {
	if p.X < g.minX || p.X > g.minX+float64(g.nx)*g.cell ||
		p.Y < g.minY || p.Y > g.minY+float64(g.ny)*g.cell {
		g.strays = true
	}
	oldC := g.cellOf(g.pts[idx])
	g.pts[idx] = p
	newC := g.cellOf(p)
	if newC == oldC {
		return
	}
	list := g.cells[oldC]
	for i, v := range list {
		if int(v) == idx {
			g.cells[oldC] = append(list[:i], list[i+1:]...)
			break
		}
	}
	g.cells[newC] = append(g.cells[newC], int32(idx))
}

// Remove deletes the point at index idx from the indexed set. Indices
// above idx shift down by one, matching slice semantics. Cost is O(n):
// every stored index above idx is decremented.
func (g *Grid) Remove(idx int) {
	c := g.cellOf(g.pts[idx])
	list := g.cells[c]
	for i, v := range list {
		if int(v) == idx {
			g.cells[c] = append(list[:i], list[i+1:]...)
			break
		}
	}
	for ci := range g.cells {
		for i, v := range g.cells[ci] {
			if int(v) > idx {
				g.cells[ci][i] = v - 1
			}
		}
	}
	g.pts = append(g.pts[:idx], g.pts[idx+1:]...)
}

// CountWithin returns the number of indexed points within distance r of c.
// It is Within without the allocation, used on the hot path of
// interference evaluation.
func (g *Grid) CountWithin(c Point, r float64) int {
	if r < 0 || len(g.pts) == 0 {
		return 0
	}
	r2 := r * r * diskGrow
	cx0, cx1 := clampRange(
		int(math.Floor((c.X-r-g.minX)/g.cell)),
		int(math.Floor((c.X+r-g.minX)/g.cell)), g.nx)
	cy0, cy1 := clampRange(
		int(math.Floor((c.Y-r-g.minY)/g.cell)),
		int(math.Floor((c.Y+r-g.minY)/g.cell)), g.ny)
	n := 0
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, idx := range g.cells[row+cx] {
				if c.Dist2(g.pts[idx]) <= r2 {
					n++
				}
			}
		}
	}
	return n
}

// Nearest returns the index of the nearest indexed point to point i other
// than i itself, together with the distance. It returns (-1, +Inf) when
// the set has fewer than two points. Ties are broken toward the smaller
// index so results are deterministic.
func (g *Grid) Nearest(i int) (int, float64) {
	if len(g.pts) < 2 {
		return -1, math.Inf(1)
	}
	p := g.pts[i]
	best, bestD2 := -1, math.Inf(1)
	// Expand rings of cells outward until the best candidate distance is
	// certainly smaller than anything in an unexplored ring. The center
	// cell is clamped for out-of-bounds points (which Add stores in
	// border cells); the ring lower bound stays valid because clamping
	// projects onto the grid rectangle, which never increases distances
	// to indexed cells.
	pcx := int((p.X - g.minX) / g.cell)
	pcy := int((p.Y - g.minY) / g.cell)
	if pcx < 0 {
		pcx = 0
	} else if pcx >= g.nx {
		pcx = g.nx - 1
	}
	if pcy < 0 {
		pcy = 0
	} else if pcy >= g.ny {
		pcy = g.ny - 1
	}
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		if best >= 0 {
			// Any point in a cell of ring `ring` is at distance at least
			// (ring-1)*cell from p; stop once that exceeds the best found.
			lo := float64(ring-1) * g.cell
			if lo > 0 && lo*lo > bestD2 {
				break
			}
		}
		scanned := false
		for cy := pcy - ring; cy <= pcy+ring; cy++ {
			if cy < 0 || cy >= g.ny {
				continue
			}
			for cx := pcx - ring; cx <= pcx+ring; cx++ {
				if cx < 0 || cx >= g.nx {
					continue
				}
				// Only the ring's border cells (interior handled earlier).
				if ring > 0 && cx != pcx-ring && cx != pcx+ring && cy != pcy-ring && cy != pcy+ring {
					continue
				}
				scanned = true
				for _, idx := range g.cells[cy*g.nx+cx] {
					j := int(idx)
					if j == i {
						continue
					}
					d2 := p.Dist2(g.pts[j])
					if d2 < bestD2 || (d2 == bestD2 && j < best) {
						best, bestD2 = j, d2
					}
				}
			}
		}
		if !scanned && best >= 0 {
			break
		}
	}
	// Report the distance through Dist so the result is bit-identical to
	// every other distance in the system (Dist uses Hypot, which can
	// differ from √Dist2 by one ulp); callers store it as an edge weight
	// next to Dist-derived weights.
	return best, p.Dist(g.pts[best])
}

// NearestBrute is the O(n) reference implementation of Nearest, kept for
// cross-validation in tests.
func NearestBrute(pts []Point, i int) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	for j, q := range pts {
		if j == i {
			continue
		}
		d2 := pts[i].Dist2(q)
		if d2 < bestD2 || (d2 == bestD2 && j < best) {
			best, bestD2 = j, d2
		}
	}
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, pts[i].Dist(pts[best])
}

// WithinBrute is the O(n) reference implementation of Within.
func WithinBrute(pts []Point, c Point, r float64, dst []int) []int {
	r2 := r * r * diskGrow
	for j, q := range pts {
		if c.Dist2(q) <= r2 {
			dst = append(dst, j)
		}
	}
	return dst
}
