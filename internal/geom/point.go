// Package geom provides the small computational-geometry substrate used by
// the interference model and the topology-control algorithms: points,
// distances, bounding boxes, a uniform grid spatial index, and cone
// sectors for Yao-style constructions.
//
// All coordinates are float64 and all distances Euclidean. The package is
// deliberately dependency-free and allocation-conscious: the grid index is
// built once per point set and reused by every range query.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. One-dimensional (highway) instances
// use Y == 0 throughout.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It is the
// preferred comparison primitive: it avoids the square root and is exact
// for comparisons whenever the products do not overflow.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s about the origin.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Mid returns the midpoint of the segment pq.
func (p Point) Mid(q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Angle returns the polar angle of the vector from p to q in [0, 2π).
func (p Point) Angle(q Point) float64 {
	a := math.Atan2(q.Y-p.Y, q.X-p.X)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g,%.6g)", p.X, p.Y) }

// Rect is an axis-aligned bounding box. Min is the lower-left corner and
// Max the upper-right; a Rect with Min == Max contains exactly one point.
type Rect struct {
	Min, Max Point
}

// Bounds returns the bounding box of pts. It panics if pts is empty,
// because an empty bounding box has no meaningful representation.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: Bounds of empty point set")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// InDisk reports whether point p lies within (or on) the disk of radius r
// centered at c. This is the containment test behind the paper's
// D(u, r_u) interference disks.
func InDisk(c Point, r float64, p Point) bool {
	return c.Dist2(p) <= r*r*diskGrow
}

// diskGrow/diskShrink absorb floating-point noise in disk-boundary tests
// as a RELATIVE factor on the squared radius: the paper's constructions
// place nodes exactly on disk boundaries (a node's farthest neighbor is
// exactly at distance r_u), and exponential node chains mix distances
// spanning hundreds of orders of magnitude, so an absolute epsilon would
// either miss boundaries at large scales or swallow whole sub-chains at
// tiny ones.
const (
	diskGrow   = 1 + 1e-9
	diskShrink = 1 - 1e-9
)

// InGabrielDisk reports whether w lies strictly inside the disk having the
// segment uv as diameter, the emptiness test of the Gabriel graph.
func InGabrielDisk(u, v, w Point) bool {
	c := u.Mid(v)
	r2 := u.Dist2(v) / 4
	return c.Dist2(w) < r2*diskShrink
}

// InLune reports whether w lies strictly inside the lune of u and v: the
// intersection of the open disks of radius |uv| centered at u and at v.
// This is the emptiness test of the Relative Neighborhood Graph.
func InLune(u, v, w Point) bool {
	d2 := u.Dist2(v) * diskShrink
	return u.Dist2(w) < d2 && v.Dist2(w) < d2
}

// ConeIndex returns which of k equal cones around u (cone 0 starting at
// polar angle 0) contains the direction from u to v. Used by Yao graphs.
func ConeIndex(u, v Point, k int) int {
	if k <= 0 {
		panic("geom: ConeIndex with non-positive k")
	}
	a := u.Angle(v)
	idx := int(a / (2 * math.Pi / float64(k)))
	if idx >= k { // guard against a == 2π from rounding
		idx = k - 1
	}
	return idx
}
