package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// TestGridMutationsAgainstBrute drives a randomized mix of in-place
// moves, arrivals, and departures through the grid and cross-checks
// Within and WithinAnnulus against the brute-force scans. Moves and
// queries deliberately land outside the construction bounding box: strays
// clamp into border cells, and a query centered entirely beyond the box
// must still scan the border line it projects onto (the clampRange
// regression — an empty cell range silently hid strays).
func TestGridMutationsAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts []Point
	for i := 0; i < 30; i++ {
		pts = append(pts, Pt(rng.Float64()*2, rng.Float64()*2))
	}
	g := NewGrid(append([]Point(nil), pts...), 1)
	queries := 0
	for step := 0; step < 4000; step++ {
		switch roll := rng.Intn(10); {
		case roll < 5:
			g.Move(rng.Intn(g.Len()), Pt(rng.Float64()*3-0.5, rng.Float64()*3-0.5))
		case roll < 7:
			g.Add(Pt(rng.Float64()*3-0.5, rng.Float64()*3-0.5))
		case roll < 8:
			if g.Len() > 5 {
				g.Remove(rng.Intn(g.Len()))
			}
		default:
			queries++
			c := Pt(rng.Float64()*3-0.5, rng.Float64()*3-0.5)
			r := rng.Float64() * 1.5
			got := append([]int(nil), g.Within(c, r, nil)...)
			want := WithinBrute(g.Points(), c, r, nil)
			sort.Ints(got)
			sort.Ints(want)
			if !equalInts(got, want) {
				t.Fatalf("step %d: Within(%v, %v) = %v, brute %v", step, c, r, got, want)
			}
			lo := r * rng.Float64()
			ga := append([]int(nil), g.WithinAnnulus(c, lo, r, nil)...)
			wa := WithinAnnulusBrute(g.Points(), c, lo, r, nil)
			sort.Ints(ga)
			sort.Ints(wa)
			if !equalInts(ga, wa) {
				t.Fatalf("step %d: WithinAnnulus(%v, %v, %v) = %v, brute %v", step, c, lo, r, ga, wa)
			}
			if n := g.CountWithin(c, r); n != len(want) {
				t.Fatalf("step %d: CountWithin(%v, %v) = %d, brute %d", step, c, r, n, len(want))
			}
		}
	}
	if queries < 300 {
		t.Fatalf("only %d query steps — the mix is broken", queries)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
