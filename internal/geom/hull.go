package geom

import (
	"math"
	"sort"
)

// ConvexHull returns the convex hull of pts in counter-clockwise order
// (Andrew's monotone chain), starting from the lexicographically smallest
// point. Collinear points on hull edges are dropped. Degenerate inputs
// return what they can: fewer than three distinct points yield the
// distinct points themselves.
func ConvexHull(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	s := append([]Point(nil), pts...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].X != s[j].X {
			return s[i].X < s[j].X
		}
		return s[i].Y < s[j].Y
	})
	// Deduplicate.
	uniq := s[:1]
	for _, p := range s[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	s = uniq
	if len(s) < 3 {
		return s
	}
	cross := func(o, a, b Point) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	var hull []Point
	// Lower chain.
	for _, p := range s {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper chain.
	lower := len(hull) + 1
	for i := len(s) - 2; i >= 0; i-- {
		p := s[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1] // last point repeats the first
}

// PolygonArea returns the signed-area magnitude of the polygon (shoelace
// formula); 0 for fewer than three vertices.
func PolygonArea(poly []Point) float64 {
	if len(poly) < 3 {
		return 0
	}
	a := 0.0
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		a += p.X*q.Y - q.X*p.Y
	}
	return math.Abs(a) / 2
}

// ClosestPair returns the indices and distance of the closest pair of
// points (divide and conquer, O(n log n)). It returns (-1, -1, +Inf) for
// fewer than two points. Ties resolve to the pair with lexicographically
// smallest indices, so results are deterministic.
func ClosestPair(pts []Point) (i, j int, d float64) {
	n := len(pts)
	if n < 2 {
		return -1, -1, math.Inf(1)
	}
	idx := make([]int, n)
	for k := range idx {
		idx[k] = k
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return idx[a] < idx[b]
	})
	best := pairResult{i: -1, j: -1, d2: math.Inf(1)}
	buf := make([]int, n)
	cpRec(pts, idx, buf, &best)
	return best.i, best.j, math.Sqrt(best.d2)
}

type pairResult struct {
	i, j int
	d2   float64
}

// update keeps the smaller distance; ties keep the lexicographically
// smaller index pair.
func (r *pairResult) update(pts []Point, a, b int) {
	if a > b {
		a, b = b, a
	}
	d2 := pts[a].Dist2(pts[b])
	if d2 < r.d2 || (d2 == r.d2 && (a < r.i || (a == r.i && b < r.j))) {
		r.i, r.j, r.d2 = a, b, d2
	}
}

// cpRec processes idx (sorted by x) and leaves it sorted by y (classic
// merge-based variant). buf is scratch of the same length as idx.
func cpRec(pts []Point, idx, buf []int, best *pairResult) {
	n := len(idx)
	if n <= 3 {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				best.update(pts, idx[a], idx[b])
			}
		}
		sort.Slice(idx, func(a, b int) bool { return pts[idx[a]].Y < pts[idx[b]].Y })
		return
	}
	mid := n / 2
	midX := pts[idx[mid]].X
	cpRec(pts, idx[:mid], buf[:mid], best)
	cpRec(pts, idx[mid:], buf[mid:], best)
	// Merge by y into buf, then copy back.
	l, r, k := 0, mid, 0
	for l < mid && r < n {
		if pts[idx[l]].Y <= pts[idx[r]].Y {
			buf[k] = idx[l]
			l++
		} else {
			buf[k] = idx[r]
			r++
		}
		k++
	}
	for l < mid {
		buf[k] = idx[l]
		l++
		k++
	}
	for r < n {
		buf[k] = idx[r]
		r++
		k++
	}
	copy(idx, buf[:n])
	// Strip pass: points within the best distance of the dividing line,
	// each checked against the following few in y order.
	d := math.Sqrt(best.d2)
	strip := buf[:0]
	for _, id := range idx {
		if math.Abs(pts[id].X-midX) <= d {
			strip = append(strip, id)
		}
	}
	for a := 0; a < len(strip); a++ {
		for b := a + 1; b < len(strip) && pts[strip[b]].Y-pts[strip[a]].Y <= d; b++ {
			best.update(pts, strip[a], strip[b])
		}
	}
}
