package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1),
		Pt(0.5, 0.5), Pt(0.2, 0.8), // interior
		Pt(0.5, 0), // collinear on an edge
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4 (%v)", len(hull), hull)
	}
	if a := PolygonArea(hull); math.Abs(a-1) > 1e-12 {
		t.Errorf("hull area = %v, want 1", a)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Error("empty hull wrong")
	}
	if h := ConvexHull([]Point{Pt(1, 1)}); len(h) != 1 {
		t.Error("single-point hull wrong")
	}
	if h := ConvexHull([]Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}); len(h) != 1 {
		t.Error("coincident hull wrong")
	}
	// Collinear points: hull is the two extremes.
	h := ConvexHull([]Point{Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0)})
	if len(h) != 2 {
		t.Fatalf("collinear hull size = %d, want 2 (%v)", len(h), h)
	}
	if PolygonArea(h) != 0 {
		t.Error("degenerate area should be 0")
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1401))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(200)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*4, rng.Float64()*4)
		}
		hull := ConvexHull(pts)
		// Every point lies inside or on the hull: all cross products of
		// consecutive hull edges vs the point are >= 0 (CCW hull).
		for _, p := range pts {
			for i := range hull {
				a, b := hull[i], hull[(i+1)%len(hull)]
				cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
				if cross < -1e-9 {
					t.Fatalf("trial %d: point %v outside hull edge %v->%v", trial, p, a, b)
				}
			}
		}
		// Hull vertices are a subset of the input.
		for _, h := range hull {
			found := false
			for _, p := range pts {
				if p == h {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("hull vertex %v not an input point", h)
			}
		}
	}
}

func TestClosestPairMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1402))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(300)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*5, rng.Float64()*5)
		}
		i, j, d := ClosestPair(pts)
		bi, bj, bd := closestBrute(pts)
		if math.Abs(d-bd) > 1e-12 {
			t.Fatalf("trial %d: distance %v vs brute %v", trial, d, bd)
		}
		if pts[i].Dist(pts[j]) != pts[bi].Dist(pts[bj]) {
			t.Fatalf("trial %d: pair (%d,%d) vs brute (%d,%d)", trial, i, j, bi, bj)
		}
	}
}

func closestBrute(pts []Point) (int, int, float64) {
	bi, bj, bd2 := -1, -1, math.Inf(1)
	for a := 0; a < len(pts); a++ {
		for b := a + 1; b < len(pts); b++ {
			d2 := pts[a].Dist2(pts[b])
			if d2 < bd2 {
				bi, bj, bd2 = a, b, d2
			}
		}
	}
	return bi, bj, math.Sqrt(bd2)
}

func TestClosestPairDegenerate(t *testing.T) {
	if i, j, d := ClosestPair(nil); i != -1 || j != -1 || !math.IsInf(d, 1) {
		t.Error("empty wrong")
	}
	if i, j, d := ClosestPair([]Point{Pt(0, 0)}); i != -1 || j != -1 || !math.IsInf(d, 1) {
		t.Error("single wrong")
	}
	// Coincident points: distance zero.
	if _, _, d := ClosestPair([]Point{Pt(1, 1), Pt(1, 1), Pt(2, 2)}); d != 0 {
		t.Errorf("coincident distance = %v", d)
	}
}

func TestClosestPairOnChain(t *testing.T) {
	// The exponential chain's closest pair is its first gap.
	pts := []Point{Pt(0, 0), Pt(0.1, 0), Pt(0.3, 0), Pt(0.7, 0)}
	i, j, d := ClosestPair(pts)
	if i != 0 || j != 1 || math.Abs(d-0.1) > 1e-12 {
		t.Errorf("pair = (%d,%d,%v)", i, j, d)
	}
}

func BenchmarkClosestPair(b *testing.B) {
	rng := rand.New(rand.NewSource(1403))
	pts := make([]Point, 5000)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*10, rng.Float64()*10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClosestPair(pts)
	}
}
