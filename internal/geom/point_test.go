package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(1, 0), Pt(2, 0), 1},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); math.Abs(got-c.want*c.want) > 1e-9 {
			t.Errorf("Dist2(%v,%v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by))
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by)), Pt(clamp(cx), clamp(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps arbitrary quick-generated floats into a sane finite range so
// the geometric identities are not destroyed by overflow or NaN.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestBounds(t *testing.T) {
	pts := []Point{Pt(1, 2), Pt(-3, 5), Pt(4, -1)}
	b := Bounds(pts)
	if b.Min != Pt(-3, -1) || b.Max != Pt(4, 5) {
		t.Errorf("Bounds = %+v", b)
	}
	if b.Width() != 7 || b.Height() != 6 {
		t.Errorf("Width/Height = %v/%v", b.Width(), b.Height())
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bounds should contain %v", p)
		}
	}
	if b.Contains(Pt(10, 10)) {
		t.Error("bounds should not contain (10,10)")
	}
}

func TestBoundsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bounds(nil) should panic")
		}
	}()
	Bounds(nil)
}

func TestMidAddSubScale(t *testing.T) {
	p, q := Pt(2, 4), Pt(4, 8)
	if m := p.Mid(q); m != Pt(3, 6) {
		t.Errorf("Mid = %v", m)
	}
	if s := p.Add(q); s != Pt(6, 12) {
		t.Errorf("Add = %v", s)
	}
	if d := q.Sub(p); d != Pt(2, 4) {
		t.Errorf("Sub = %v", d)
	}
	if s := p.Scale(0.5); s != Pt(1, 2) {
		t.Errorf("Scale = %v", s)
	}
}

func TestInDiskBoundary(t *testing.T) {
	// A point exactly on the boundary must count as inside: the paper's
	// disks D(u, r_u) always have the farthest neighbor on the boundary.
	c := Pt(0, 0)
	if !InDisk(c, 1, Pt(1, 0)) {
		t.Error("boundary point should be inside the disk")
	}
	if !InDisk(c, 1, Pt(0, -1)) {
		t.Error("boundary point should be inside the disk")
	}
	if InDisk(c, 1, Pt(1.0001, 0)) {
		t.Error("exterior point should be outside the disk")
	}
	if !InDisk(c, 0, c) {
		t.Error("zero-radius disk should contain its center")
	}
}

func TestInGabrielDisk(t *testing.T) {
	u, v := Pt(0, 0), Pt(2, 0)
	if !InGabrielDisk(u, v, Pt(1, 0.5)) {
		t.Error("(1,0.5) is inside the diameter disk of (0,0)-(2,0)")
	}
	if InGabrielDisk(u, v, Pt(1, 1)) {
		t.Error("(1,1) is on the boundary, not strictly inside")
	}
	if InGabrielDisk(u, v, Pt(3, 0)) {
		t.Error("(3,0) is outside")
	}
}

func TestInLune(t *testing.T) {
	u, v := Pt(0, 0), Pt(2, 0)
	if !InLune(u, v, Pt(1, 0.2)) {
		t.Error("(1,0.2) is inside the lune")
	}
	if InLune(u, v, Pt(0, 1.99)) {
		t.Error("(0,1.99) is outside the lune (too far from v)")
	}
	if InLune(u, v, Pt(2, 0)) {
		t.Error("an endpoint is not strictly inside the lune")
	}
}

func TestAngle(t *testing.T) {
	u := Pt(0, 0)
	cases := []struct {
		v    Point
		want float64
	}{
		{Pt(1, 0), 0},
		{Pt(0, 1), math.Pi / 2},
		{Pt(-1, 0), math.Pi},
		{Pt(0, -1), 3 * math.Pi / 2},
	}
	for _, c := range cases {
		if got := u.Angle(c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Angle to %v = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestConeIndex(t *testing.T) {
	u := Pt(0, 0)
	k := 6
	// Directions in the middle of each of the six cones.
	for i := 0; i < k; i++ {
		a := (float64(i) + 0.5) * 2 * math.Pi / float64(k)
		v := Pt(math.Cos(a), math.Sin(a))
		if got := ConeIndex(u, v, k); got != i {
			t.Errorf("ConeIndex mid-cone %d = %d", i, got)
		}
	}
	// A full turn must never return k.
	if got := ConeIndex(u, Pt(1, -1e-18), k); got < 0 || got >= k {
		t.Errorf("ConeIndex near 2π out of range: %d", got)
	}
}

func TestConeIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ConeIndex with k=0 should panic")
		}
	}()
	ConeIndex(Pt(0, 0), Pt(1, 1), 0)
}

func TestPointString(t *testing.T) {
	if s := Pt(1, 2).String(); s != "(1,2)" {
		t.Errorf("String = %q", s)
	}
}
