package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(rng *rand.Rand, n int, w, h float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*w, rng.Float64()*h)
	}
	return pts
}

func TestGridWithinMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(200)
		pts := randomPoints(rng, n, 10, 10)
		g := NewGrid(pts, 1)
		for q := 0; q < 10; q++ {
			c := Pt(rng.Float64()*12-1, rng.Float64()*12-1)
			r := rng.Float64() * 3
			got := g.Within(c, r, nil)
			want := WithinBrute(pts, c, r, nil)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Within returned %d points, brute %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Within mismatch at %d: %d vs %d", trial, i, got[i], want[i])
				}
			}
			if cn := g.CountWithin(c, r); cn != len(want) {
				t.Fatalf("trial %d: CountWithin = %d, want %d", trial, cn, len(want))
			}
		}
	}
}

func TestGridNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(150)
		pts := randomPoints(rng, n, 8, 3)
		g := NewGrid(pts, 0.7)
		for i := 0; i < n; i++ {
			gi, gd := g.Nearest(i)
			bi, bd := NearestBrute(pts, i)
			if gi != bi {
				// Equal distances with different indices are a tie-break bug.
				t.Fatalf("trial %d point %d: Nearest = %d (%v), brute = %d (%v)", trial, i, gi, gd, bi, bd)
			}
			if math.Abs(gd-bd) > 1e-12 {
				t.Fatalf("trial %d point %d: distance %v vs %v", trial, i, gd, bd)
			}
		}
	}
}

func TestGridDegenerate(t *testing.T) {
	// Empty set.
	g := NewGrid(nil, 1)
	if g.Len() != 0 {
		t.Error("empty grid should have Len 0")
	}
	if got := g.Within(Pt(0, 0), 5, nil); len(got) != 0 {
		t.Error("Within on empty grid should return nothing")
	}
	if i, _ := g.Nearest(0); i != -1 {
		t.Error("Nearest on empty grid should return -1")
	}
	// Single point.
	g = NewGrid([]Point{Pt(3, 3)}, 1)
	if i, _ := g.Nearest(0); i != -1 {
		t.Error("Nearest with one point should return -1")
	}
	if got := g.Within(Pt(3, 3), 0, nil); len(got) != 1 {
		t.Error("Within r=0 at the point should return it")
	}
	// Coincident points: all at the same location.
	pts := []Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}
	g = NewGrid(pts, 1)
	if i, d := g.Nearest(1); i != 0 || d != 0 {
		t.Errorf("Nearest among coincident points = (%d,%v), want (0,0)", i, d)
	}
	if got := g.Within(Pt(1, 1), 0, nil); len(got) != 3 {
		t.Errorf("Within r=0 should return all coincident points, got %d", len(got))
	}
}

func TestGridNegativeRadius(t *testing.T) {
	g := NewGrid([]Point{Pt(0, 0)}, 1)
	if got := g.Within(Pt(0, 0), -1, nil); len(got) != 0 {
		t.Error("negative radius should match nothing")
	}
	if got := g.CountWithin(Pt(0, 0), -1); got != 0 {
		t.Error("negative radius should count nothing")
	}
}

func TestGridPanicsOnBadCell(t *testing.T) {
	for _, cell := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(cell=%v) should panic", cell)
				}
			}()
			NewGrid([]Point{Pt(0, 0)}, cell)
		}()
	}
}

func TestGridExponentialSpread(t *testing.T) {
	// The exponential node chain concentrates points near the origin while
	// spanning a large extent; verify the grid still answers correctly.
	pts := make([]Point, 20)
	x := 0.0
	for i := range pts {
		pts[i] = Pt(x, 0)
		x += math.Pow(2, float64(i)) * 1e-5
	}
	g := NewGrid(pts, 0.01)
	for i := range pts {
		gi, _ := g.Nearest(i)
		bi, _ := NearestBrute(pts, i)
		if gi != bi {
			t.Fatalf("point %d: Nearest = %d, brute = %d", i, gi, bi)
		}
	}
	all := g.Within(Pt(0, 0), x, nil)
	if len(all) != len(pts) {
		t.Fatalf("Within full radius found %d of %d", len(all), len(pts))
	}
}

func BenchmarkGridWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 10000, 100, 100)
	g := NewGrid(pts, 1)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(pts[i%len(pts)], 1, buf[:0])
	}
}

func BenchmarkGridNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 10000, 100, 100)
	g := NewGrid(pts, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Nearest(i % len(pts))
	}
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func TestWithinAnnulusMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randomPoints(rng, 400, 8, 8)
	g := NewGrid(pts, 0.5)
	for trial := 0; trial < 300; trial++ {
		c := Pt(rng.Float64()*10-1, rng.Float64()*10-1)
		hi := rng.Float64() * 6
		lo := hi * rng.Float64()
		if trial%7 == 0 {
			lo = 0 // degenerate annulus = full disk
		}
		if trial%11 == 0 {
			c = pts[rng.Intn(len(pts))] // centered on an indexed point
		}
		got := sortedCopy(g.WithinAnnulus(c, lo, hi, nil))
		want := sortedCopy(WithinAnnulusBrute(pts, c, lo, hi, nil))
		if len(got) != len(want) {
			t.Fatalf("trial %d: annulus(%v,%g,%g) = %d points, brute %d", trial, c, lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: annulus mismatch at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestWithinAnnulusComplementsWithin(t *testing.T) {
	// Within(hi) must equal Within(lo) ∪ WithinAnnulus(lo, hi) exactly,
	// including boundary epsilons — the invariant incremental radius
	// updates depend on.
	rng := rand.New(rand.NewSource(22))
	pts := randomPoints(rng, 300, 5, 5)
	g := NewGrid(pts, 0.4)
	for trial := 0; trial < 200; trial++ {
		c := pts[rng.Intn(len(pts))]
		hi := rng.Float64() * 4
		lo := hi * rng.Float64()
		inner := g.Within(c, lo, nil)
		ann := g.WithinAnnulus(c, lo, hi, nil)
		outer := sortedCopy(g.Within(c, hi, nil))
		union := sortedCopy(append(inner, ann...))
		if len(union) != len(outer) {
			t.Fatalf("trial %d: |inner|+|annulus| = %d, |outer| = %d", trial, len(union), len(outer))
		}
		for i := range union {
			if union[i] != outer[i] {
				t.Fatalf("trial %d: union mismatch at %d", trial, i)
			}
		}
	}
}

func TestWithinAnnulusBoundaryExact(t *testing.T) {
	// Points exactly on the inner and outer boundaries: the inner
	// boundary is excluded (it belongs to the inner disk under the
	// inclusive InDisk convention), the outer boundary included.
	pts := []Point{Pt(1, 0), Pt(2, 0), Pt(1.5, 0), Pt(0, 0)}
	g := NewGrid(pts, 0.5)
	got := sortedCopy(g.WithinAnnulus(Pt(0, 0), 1, 2, nil))
	want := []int{1, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("boundary annulus = %v, want %v", got, want)
	}
	// lo = 0 keeps coincident points (distance 0) in the result.
	if got := g.WithinAnnulus(Pt(0, 0), 0, 1, nil); len(got) != 2 { // points 0 and 3
		t.Fatalf("lo=0 annulus = %v, want the unit disk incl. center", got)
	}
}

func TestGridAddRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 50, 4, 4)
	g := NewGrid(pts, 0.5)
	live := append([]Point(nil), pts...)
	for step := 0; step < 400; step++ {
		switch {
		case len(live) < 5 || rng.Float64() < 0.55:
			var p Point
			if rng.Float64() < 0.2 {
				p = Pt(rng.Float64()*20-8, rng.Float64()*20-8) // often out of bounds
			} else {
				p = Pt(rng.Float64()*4, rng.Float64()*4)
			}
			if idx := g.Add(p); idx != len(live) {
				t.Fatalf("step %d: Add index %d, want %d", step, idx, len(live))
			}
			live = append(live, p)
		default:
			idx := rng.Intn(len(live))
			g.Remove(idx)
			live = append(live[:idx], live[idx+1:]...)
		}
		if g.Len() != len(live) {
			t.Fatalf("step %d: Len %d, want %d", step, g.Len(), len(live))
		}
		if step%13 == 0 {
			c := Pt(rng.Float64()*6-1, rng.Float64()*6-1)
			r := rng.Float64() * 5
			got := sortedCopy(g.Within(c, r, nil))
			want := sortedCopy(WithinBrute(live, c, r, nil))
			if len(got) != len(want) {
				t.Fatalf("step %d: Within %d vs brute %d", step, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: Within mismatch", step)
				}
			}
			lo := r * rng.Float64()
			gotA := sortedCopy(g.WithinAnnulus(c, lo, r, nil))
			wantA := sortedCopy(WithinAnnulusBrute(live, c, lo, r, nil))
			if len(gotA) != len(wantA) {
				t.Fatalf("step %d: annulus %d vs brute %d", step, len(gotA), len(wantA))
			}
			for i := range gotA {
				if gotA[i] != wantA[i] {
					t.Fatalf("step %d: annulus mismatch", step)
				}
			}
			// Nearest stays correct under churn, including strays.
			i := rng.Intn(len(live))
			gi, _ := g.Nearest(i)
			bi, _ := NearestBrute(live, i)
			if gi != bi {
				t.Fatalf("step %d: Nearest(%d) = %d, brute %d", step, i, gi, bi)
			}
		}
	}
}

func BenchmarkGridWithinAnnulus(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 10000, 100, 100)
	g := NewGrid(pts, 1)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.WithinAnnulus(pts[i%len(pts)], 9.5, 10, buf[:0])
	}
}
