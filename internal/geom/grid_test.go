package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(rng *rand.Rand, n int, w, h float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*w, rng.Float64()*h)
	}
	return pts
}

func TestGridWithinMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(200)
		pts := randomPoints(rng, n, 10, 10)
		g := NewGrid(pts, 1)
		for q := 0; q < 10; q++ {
			c := Pt(rng.Float64()*12-1, rng.Float64()*12-1)
			r := rng.Float64() * 3
			got := g.Within(c, r, nil)
			want := WithinBrute(pts, c, r, nil)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Within returned %d points, brute %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Within mismatch at %d: %d vs %d", trial, i, got[i], want[i])
				}
			}
			if cn := g.CountWithin(c, r); cn != len(want) {
				t.Fatalf("trial %d: CountWithin = %d, want %d", trial, cn, len(want))
			}
		}
	}
}

func TestGridNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(150)
		pts := randomPoints(rng, n, 8, 3)
		g := NewGrid(pts, 0.7)
		for i := 0; i < n; i++ {
			gi, gd := g.Nearest(i)
			bi, bd := NearestBrute(pts, i)
			if gi != bi {
				// Equal distances with different indices are a tie-break bug.
				t.Fatalf("trial %d point %d: Nearest = %d (%v), brute = %d (%v)", trial, i, gi, gd, bi, bd)
			}
			if math.Abs(gd-bd) > 1e-12 {
				t.Fatalf("trial %d point %d: distance %v vs %v", trial, i, gd, bd)
			}
		}
	}
}

func TestGridDegenerate(t *testing.T) {
	// Empty set.
	g := NewGrid(nil, 1)
	if g.Len() != 0 {
		t.Error("empty grid should have Len 0")
	}
	if got := g.Within(Pt(0, 0), 5, nil); len(got) != 0 {
		t.Error("Within on empty grid should return nothing")
	}
	if i, _ := g.Nearest(0); i != -1 {
		t.Error("Nearest on empty grid should return -1")
	}
	// Single point.
	g = NewGrid([]Point{Pt(3, 3)}, 1)
	if i, _ := g.Nearest(0); i != -1 {
		t.Error("Nearest with one point should return -1")
	}
	if got := g.Within(Pt(3, 3), 0, nil); len(got) != 1 {
		t.Error("Within r=0 at the point should return it")
	}
	// Coincident points: all at the same location.
	pts := []Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}
	g = NewGrid(pts, 1)
	if i, d := g.Nearest(1); i != 0 || d != 0 {
		t.Errorf("Nearest among coincident points = (%d,%v), want (0,0)", i, d)
	}
	if got := g.Within(Pt(1, 1), 0, nil); len(got) != 3 {
		t.Errorf("Within r=0 should return all coincident points, got %d", len(got))
	}
}

func TestGridNegativeRadius(t *testing.T) {
	g := NewGrid([]Point{Pt(0, 0)}, 1)
	if got := g.Within(Pt(0, 0), -1, nil); len(got) != 0 {
		t.Error("negative radius should match nothing")
	}
	if got := g.CountWithin(Pt(0, 0), -1); got != 0 {
		t.Error("negative radius should count nothing")
	}
}

func TestGridPanicsOnBadCell(t *testing.T) {
	for _, cell := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(cell=%v) should panic", cell)
				}
			}()
			NewGrid([]Point{Pt(0, 0)}, cell)
		}()
	}
}

func TestGridExponentialSpread(t *testing.T) {
	// The exponential node chain concentrates points near the origin while
	// spanning a large extent; verify the grid still answers correctly.
	pts := make([]Point, 20)
	x := 0.0
	for i := range pts {
		pts[i] = Pt(x, 0)
		x += math.Pow(2, float64(i)) * 1e-5
	}
	g := NewGrid(pts, 0.01)
	for i := range pts {
		gi, _ := g.Nearest(i)
		bi, _ := NearestBrute(pts, i)
		if gi != bi {
			t.Fatalf("point %d: Nearest = %d, brute = %d", i, gi, bi)
		}
	}
	all := g.Within(Pt(0, 0), x, nil)
	if len(all) != len(pts) {
		t.Fatalf("Within full radius found %d of %d", len(all), len(pts))
	}
}

func BenchmarkGridWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 10000, 100, 100)
	g := NewGrid(pts, 1)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(pts[i%len(pts)], 1, buf[:0])
	}
}

func BenchmarkGridNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 10000, 100, 100)
	g := NewGrid(pts, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Nearest(i % len(pts))
	}
}
